// Ablations over RHIK's design choices (DESIGN.md §5):
//   1. hopinfo width H (Eq. 1 trades records-per-page vs collision room)
//   2. 64- vs 128-bit key signatures (§IV-A3 membership alternative)
//   3. DRAM cache budget (the Fig. 5 pressure knob)
//   4. stop-the-world vs incremental resize (§VI real-time scaling)
#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "hash/murmur.hpp"
#include "index/rhik/rhik_index.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

struct Rig {
  Rig(index::RhikConfig cfg, std::uint64_t cache_bytes)
      : nand(flash::Geometry::with_capacity(1ull << 30),
             flash::NandLatency::kvemu_defaults(), &clock),
        alloc(&nand, 4),
        store(&nand, &alloc),
        index(&nand, &alloc, cfg, cache_bytes),
        gc(&nand, &alloc, &store, &index) {}
  void pump() {
    if (alloc.needs_gc()) gc.collect(alloc.gc_reserve() + 4);
    index.pump_maintenance(0);  // the device's background migration quantum
  }
  SimClock clock;
  flash::NandDevice nand;
  ftl::PageAllocator alloc;
  ftl::FlashKvStore store;
  index::RhikIndex index;
  ftl::GarbageCollector gc;
};

void ablate_hopinfo() {
  std::printf("\n[1] hopinfo width H (Eq. 1: R = p / (kh + ppa + H/8))\n");
  std::printf("%-6s %-16s %-14s %-14s\n", "H", "records/page", "collision%",
              "capacity@2^10dir");
  for (const std::uint32_t h : {8u, 16u, 32u}) {
    index::RhikConfig cfg;
    cfg.hop_range = h;
    Rig rig(cfg, 16ull << 20);
    Rng rng(7);
    const std::uint64_t n = 400'000;
    for (std::uint64_t i = 0; i < n; ++i) {
      rig.pump();
      rig.index.put(rng.next(), i);
    }
    const double coll =
        100.0 * static_cast<double>(rig.index.op_stats().collision_aborts) /
        static_cast<double>(n);
    std::printf("%-6u %-16u %-14.4f %-14llu\n", h,
                cfg.records_per_page(32 * 1024), coll,
                static_cast<unsigned long long>(
                    std::uint64_t{1024} * cfg.records_per_page(32 * 1024)));
  }
  bench::note("narrower hopinfo packs more records per page but collides");
  bench::note("earlier; H=32 (paper default) balances both.");
}

void ablate_signature_width() {
  std::printf("\n[2] signature width: empirical collision probability\n");
  std::printf("%-12s %-16s %-16s\n", "keys", "64-bit collisions",
              "128-bit collisions");
  for (const std::uint64_t n : {1'000'000ull, 4'000'000ull}) {
    std::unordered_set<std::uint64_t> s64;
    std::unordered_set<std::uint64_t> s128;  // lo ^ mixed hi: full width proxy
    s64.reserve(n * 2);
    s128.reserve(n * 2);
    std::uint64_t c64 = 0, c128 = 0;
    for (std::uint64_t id = 0; id < n; ++id) {
      const Bytes key = workload::key_for_id(id, 16);
      if (!s64.insert(hash::murmur2_64(key)).second) ++c64;
      const auto w = hash::murmur3_128(key);
      if (!s128.insert(w.lo ^ hash::mix64(w.hi)).second) ++c128;
    }
    std::printf("%-12llu %-16llu %-16llu\n", static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(c64),
                static_cast<unsigned long long>(c128));
  }
  bench::note("birthday bound: ~n^2/2^65 for 64-bit -> both ~0 at emulator");
  bench::note("scale; at the paper's billions of keys 64-bit needs the");
  bench::note("full-key recheck (kept), 128-bit would not (Eq. 1: R drops");
  bench::note("from 1927 to 1310 records/page).");
}

void ablate_cache_budget() {
  std::printf("\n[3] DRAM cache budget (zipfian reads over 400k keys)\n");
  std::printf("%-12s %-12s %-14s %-12s\n", "cache", "miss-ratio",
              "reads/lookup", "sim Mops/s");
  const std::uint64_t keys = 400'000;
  for (const std::uint64_t mb : {1ull, 2ull, 5ull, 10ull, 20ull}) {
    index::RhikConfig cfg;
    cfg.anticipated_keys = keys;
    Rig rig(cfg, mb << 20);
    Rng rng(9);
    for (std::uint64_t i = 0; i < keys; ++i) {
      rig.pump();
      rig.index.put(hash::mix64(i) | 1, i);
    }
    rig.index.reset_op_stats();
    Zipfian zipf(keys, 0.99);
    const std::uint64_t lookups = 500'000;
    const SimTime t0 = rig.clock.now();
    for (std::uint64_t i = 0; i < lookups; ++i) {
      rig.index.get(hash::mix64(zipf.next(rng)) | 1);
    }
    const auto& st = rig.index.op_stats();
    const SimTime elapsed = rig.clock.now() - t0;
    char mops[24];
    if (elapsed == 0) {
      // Fully cached: zero simulated flash time, i.e. DRAM-speed.
      std::snprintf(mops, sizeof(mops), "DRAM-bound");
    } else {
      std::snprintf(mops, sizeof(mops), "%.3f", ops_per_sec(lookups, elapsed) / 1e6);
    }
    std::printf("%-12s %-12.3f %-14.3f %-12s\n",
                (std::to_string(mb) + "MB").c_str(),
                static_cast<double>(st.flash_reads) /
                    static_cast<double>(lookups),
                st.reads_per_lookup.mean(), mops);
  }
  bench::note("even at the smallest budget, reads/lookup never exceeds 1 —");
  bench::note("the cache only changes how often that single read happens.");
}

void ablate_local_overflow() {
  std::printf("\n[5] hyper-local overflow (§VI collision management)\n");
  std::printf("%-14s %-14s %-16s %-16s\n", "mode", "collision%",
              "overflow-recs", "reads/lookup-max");
  for (const bool overflow : {false, true}) {
    index::RhikConfig cfg;
    cfg.local_overflow = overflow;
    cfg.hop_range = 4;           // collide often enough to matter
    cfg.resize_threshold = 0.95; // resize late: stress local handling
    Rig rig(cfg, 16ull << 20);
    Rng rng(21);
    const std::uint64_t n = 300'000;
    for (std::uint64_t i = 0; i < n; ++i) {
      rig.pump();
      rig.index.put(rng.next(), i);
    }
    const auto& st = rig.index.op_stats();
    std::printf("%-14s %-14.4f %-16llu %-16llu\n",
                overflow ? "overflow" : "reject",
                100.0 * static_cast<double>(st.collision_aborts) /
                    static_cast<double>(n),
                static_cast<unsigned long long>(st.overflow_inserts),
                static_cast<unsigned long long>(st.reads_per_lookup.max()));
  }
  bench::note("overflow converts rejects into records at the cost of a");
  bench::note("second flash read on overflowed buckets (max 2 vs 1).");
}

void ablate_resize_mode() {
  std::printf("\n[4] stop-the-world vs incremental resize (§VI)\n");
  std::printf("%-16s %-12s %-14s %-14s %-12s\n", "mode", "resizes",
              "max-put(us)", "p99.9-put(us)", "stall(ms)");
  for (const bool incremental : {false, true}) {
    index::RhikConfig cfg;
    cfg.incremental_resize = incremental;
    Rig rig(cfg, 16ull << 20);
    Rng rng(11);
    Histogram put_ns;
    const std::uint64_t n = 600'000;
    for (std::uint64_t i = 0; i < n; ++i) {
      rig.pump();
      const SimTime t0 = rig.clock.now();
      rig.index.put(rng.next(), i);
      put_ns.record(rig.clock.now() - t0);
    }
    std::printf("%-16s %-12llu %-14.1f %-14.1f %-12.2f\n",
                incremental ? "incremental" : "stop-the-world",
                static_cast<unsigned long long>(rig.index.op_stats().resizes),
                static_cast<double>(put_ns.max()) / 1e3,
                put_ns.percentile(99.9) / 1e3,
                static_cast<double>(rig.clock.total_stall()) / 1e6);
  }
  bench::note("stop-the-world: worst put latency == the whole migration;");
  bench::note("incremental spreads it, cutting tail latency by orders of");
  bench::note("magnitude at zero stall (the paper's §VI future work).");
}

}  // namespace

int main() {
  bench::heading("RHIK design-choice ablations", "DESIGN.md §5 / paper §IV, §VI");
  ablate_hopinfo();
  ablate_signature_width();
  ablate_cache_budget();
  ablate_resize_mode();
  ablate_local_overflow();
  return 0;
}
