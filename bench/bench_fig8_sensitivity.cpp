// Fig. 8 — sensitivity analysis (paper §V-C):
//  (a) % of collisions vs number of keys, for 16 B vs 128 B keys —
//      collision trends are key-size independent;
//  (b) % of collisions vs index occupancy threshold (60/70/80/90%) —
//      collision handling degrades heavily above 80%.
//
// "Collision" is the paper's uncorrectable index-local collision
// (§IV-A1): a hopscotch insert whose displacement search fails, counted
// against all store attempts.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "hash/murmur.hpp"
#include "index/rhik/rhik_index.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

struct Rig {
  explicit Rig(index::RhikConfig cfg)
      : nand(flash::Geometry::with_capacity(1ull << 30),
             flash::NandLatency::kvemu_defaults(), &clock),
        alloc(&nand, 4),
        store(&nand, &alloc),
        // Cache big enough to keep the record layer resident: the
        // collision metric is cache-independent and this keeps the
        // multi-million-key sweep fast.
        index(&nand, &alloc, cfg, 64ull << 20),
        gc(&nand, &alloc, &store, &index) {}
  void pump() {
    if (alloc.needs_gc()) gc.collect(alloc.gc_reserve() + 4);
  }
  SimClock clock;
  flash::NandDevice nand;
  ftl::PageAllocator alloc;
  ftl::FlashKvStore store;
  index::RhikIndex index;
  ftl::GarbageCollector gc;
};

/// Inserts up to `total` distinct keys of `key_size` bytes; reports the
/// cumulative collision percentage at each checkpoint.
std::vector<double> collision_curve(index::RhikConfig cfg, std::uint32_t key_size,
                                    const std::vector<std::uint64_t>& checkpoints) {
  Rig rig(cfg);
  std::vector<double> curve;
  std::uint64_t id = 0;
  std::uint64_t attempts = 0;
  for (const std::uint64_t target : checkpoints) {
    while (rig.index.size() < target) {
      rig.pump();
      const Bytes key = workload::key_for_id(id++, key_size);
      rig.index.put(hash::murmur2_64(key), id);
      ++attempts;
    }
    curve.push_back(100.0 *
                    static_cast<double>(rig.index.op_stats().collision_aborts) /
                    static_cast<double>(attempts));
  }
  return curve;
}

}  // namespace

int main() {
  bench::heading("Fig. 8 — collision sensitivity",
                 "RHIK paper Fig. 8a (key size) and 8b (occupancy threshold)");

  const std::vector<std::uint64_t> checkpoints{100'000, 250'000, 500'000,
                                               1'000'000, 2'000'000};

  // (a) key-size independence at the default 80% threshold.
  std::printf("\n(a) %% collisions vs keys in index (threshold 80%%)\n");
  std::printf("%-14s %-12s %-12s\n", "keys(million)", "16B keys", "128B keys");
  index::RhikConfig cfg;
  const auto c16 = collision_curve(cfg, 16, checkpoints);
  const auto c128 = collision_curve(cfg, 128, checkpoints);
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    std::printf("%-14.2f %-12.4f %-12.4f\n",
                static_cast<double>(checkpoints[i]) / 1e6, c16[i], c128[i]);
  }
  bench::note("expected: both curves flat and nearly identical (paper:");
  bench::note("~0.125-0.2%% regardless of key size).");

  // (b) occupancy-threshold sweep with 16 B keys.
  std::printf("\n(b) %% collisions vs occupancy threshold\n");
  const std::vector<double> thresholds{0.60, 0.70, 0.80, 0.90};
  const std::vector<std::uint64_t> cps{100'000, 300'000, 600'000, 1'000'000};
  std::printf("%-14s", "keys(million)");
  for (const double t : thresholds) std::printf("  %8.0f%%", t * 100);
  std::printf("\n");
  std::vector<std::vector<double>> curves;
  for (const double t : thresholds) {
    index::RhikConfig c;
    c.resize_threshold = t;
    curves.push_back(collision_curve(c, 16, cps));
  }
  for (std::size_t i = 0; i < cps.size(); ++i) {
    std::printf("%-14.2f", static_cast<double>(cps[i]) / 1e6);
    for (const auto& curve : curves) std::printf("  %8.4f", curve[i]);
    std::printf("\n");
  }
  bench::note("expected: <= 80%% thresholds stay near zero; 90%% degrades");
  bench::note("heavily (paper: collision handling degrades above 80%%).");
  return 0;
}
