// Table I: request-size diversity and the implied key counts a 4 TB
// KVSSD must index (paper §III).
//
// Pure analysis over the published distributions — no device needed. The
// point of the table: real deployments imply key counts (up to hundreds
// of billions) far beyond the ~3.1 billion cap the authors measured on
// the PM983, motivating a resizable index.
#include <cinttypes>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "workload/size_dist.hpp"

using namespace rhik;
using workload::SizeDistribution;

namespace {

void print_distribution(const char* name, const SizeDistribution& dist) {
  std::printf("\n%s\n", name);
  std::printf("  %-18s %-10s\n", "request size", "weight %");
  double total = 0;
  for (const auto& b : dist.buckets()) total += b.weight;
  for (const auto& b : dist.buckets()) {
    std::printf("  %8s-%-9s %6.1f%%\n", bench::size_label(b.lo).c_str(),
                bench::size_label(b.hi).c_str(), 100.0 * b.weight / total);
  }
}

void print_projection(const char* name, const SizeDistribution& dist,
                      std::uint64_t capacity) {
  const auto fmt = [](double pairs) {
    char buf[32];
    if (pairs >= 1e9) {
      std::snprintf(buf, sizeof(buf), "%.1f B", pairs / 1e9);
    } else {
      std::snprintf(buf, sizeof(buf), "%.1f M", pairs / 1e6);
    }
    return std::string(buf);
  };
  const auto range = dist.pair_count_range(capacity);
  std::printf("  %-22s mean req %10.1f B  -> %10s pairs (expected)\n", name,
              dist.mean(), fmt(dist.expected_pairs(capacity)).c_str());
  std::printf("  %-22s key-count range: %s ... %s pairs\n", "",
              fmt(range.min_pairs).c_str(), fmt(range.max_pairs).c_str());
}

}  // namespace

int main() {
  bench::heading("Table I — workload request-size diversity",
                 "RHIK paper Table I (§III)");

  print_distribution("Baidu Atlas — write requests",
                     SizeDistribution::atlas_write());
  print_distribution("Facebook Memcached — ETC",
                     SizeDistribution::fb_memcached_etc());

  constexpr std::uint64_t k4TB = 4ull << 40;
  std::printf("\nKey-count projections for a 4 TB KVSSD:\n");
  print_projection("Baidu Atlas (write)", SizeDistribution::atlas_write(), k4TB);
  print_projection("FB Memcached ETC", SizeDistribution::fb_memcached_etc(), k4TB);
  print_projection("RocksDB UDB", SizeDistribution::rocksdb_udb(), k4TB);
  print_projection("RocksDB ZippyDB", SizeDistribution::rocksdb_zippydb(), k4TB);
  print_projection("RocksDB UP2X", SizeDistribution::rocksdb_up2x(), k4TB);

  bench::note("paper quotes: Atlas 34M-2.7B keys; ETC 24B-744B keys;");
  bench::note("RocksDB deployments imply 26B-700B keys on 4TB.");
  bench::note("PM983 measured cap: ~3.1B keys -> fixed indexes cannot cover");
  bench::note("these workloads; RHIK's resizing closes the gap.");

  // Empirical sanity: sampled means match the analytic means.
  Rng rng(1);
  for (const auto* which : {"atlas", "etc"}) {
    const SizeDistribution d = which[0] == 'a'
                                   ? SizeDistribution::atlas_write()
                                   : SizeDistribution::fb_memcached_etc();
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
    std::printf("\nsampled mean (%s): %.1f B (analytic %.1f B)\n", which,
                sum / n, d.mean());
  }
  return 0;
}
