// Garbage-collection behaviour under update churn (paper §IV-B and the
// §IV-A2 acknowledgment that hash-based management adds GC work for
// stale index pages).
//
// Sweeps steady-state fill level (effective over-provisioning) and value
// size, reporting write amplification (user + relocated bytes over user
// bytes), GC block reclaims, and the share of relocations caused by
// stale *index* pages vs data. A second section compares the original
// synchronous greedy collector against the hot/cold-aware incremental
// one (DESIGN.md §9) on a 90/10 skew at 80% fill, with acceptance
// guards: >= 20% write-amp reduction, p99 put latency no worse, and an
// erase-count spread bounded by the wear-leveling threshold.
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

struct GcRunResult {
  double write_amp = 0;
  std::uint64_t blocks_reclaimed = 0;
  std::uint64_t data_pairs_moved = 0;
  std::uint64_t index_pages_moved = 0;
  double sim_mib_s = 0;
};

GcRunResult run(double fill_fraction, std::uint32_t value_size) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(256ull << 20);
  // Generous cache: this bench isolates *data* GC behaviour; the
  // index-churn write amplification of a starved cache is Fig. 2/5's
  // story, not this one's.
  cfg.dram_cache_bytes = 16ull << 20;
  kvssd::KvssdDevice dev(cfg);

  // Flash footprint per pair: small pairs pack into shared head pages
  // (page size / pairs-per-page); pairs over a page occupy whole extents.
  const std::uint64_t pair = ftl::FlashKvStore::pair_bytes(16, value_size);
  const bool packed = ftl::DataPageBuilder::fits_in_empty_page(
      cfg.geometry.page_size, pair);
  std::uint64_t footprint;
  if (packed) {
    const std::uint64_t per_page =
        (cfg.geometry.page_size - ftl::PageFooter::kCountSize) /
        (pair + ftl::PageFooter::kSigSize);
    footprint = cfg.geometry.page_size / std::max<std::uint64_t>(1, per_page);
  } else {
    footprint = std::uint64_t{ftl::extent_pages(cfg.geometry, pair)} *
                cfg.geometry.page_size;
  }
  const std::uint64_t working_set =
      static_cast<std::uint64_t>(fill_fraction *
                                 static_cast<double>(cfg.geometry.capacity_bytes())) /
      footprint;

  // Load phase.
  Bytes value(value_size);
  for (std::uint64_t id = 0; id < working_set; ++id) {
    workload::fill_value(id, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
  }

  // Churn phase: overwrite 2x the working set uniformly.
  dev.nand().reset_stats();
  const auto gc0 = dev.gc().stats();
  Rng rng(5);
  const std::uint64_t churn_ops = working_set * 2;
  std::uint64_t user_bytes = 0;
  const SimTime t0 = dev.clock().now();
  for (std::uint64_t i = 0; i < churn_ops; ++i) {
    const std::uint64_t id = rng.next_below(working_set);
    workload::fill_value(id + 1, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
    user_bytes += value_size;
  }
  const SimTime dt = dev.clock().now() - t0;

  GcRunResult r;
  const auto& gc = dev.gc().stats();
  r.blocks_reclaimed = gc.blocks_reclaimed - gc0.blocks_reclaimed;
  r.data_pairs_moved = gc.pairs_relocated - gc0.pairs_relocated;
  r.index_pages_moved = gc.index_pages_relocated - gc0.index_pages_relocated;
  r.write_amp = user_bytes == 0
                    ? 0
                    : static_cast<double>(dev.nand().stats().bytes_programmed) /
                          static_cast<double>(user_bytes);
  r.sim_mib_s = mib_per_sec(user_bytes, dt);
  return r;
}

void guard(bool pass, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  guard: ");
  std::vprintf(fmt, args);
  std::printf(" — %s\n", pass ? "PASS" : "FAIL");
  va_end(args);
}

struct PolicyRunResult {
  double write_amp = 0;
  std::uint64_t p99_put_ns = 0;
  double erase_spread = 1.0;
  std::uint64_t background_quanta = 0;
  std::uint64_t wear_migrations = 0;
};

/// 90/10 skewed overwrite churn at 80% fill under one GC configuration.
/// `original` selects the pre-§9 collector (synchronous greedy, mixed
/// hot/cold, no wear pass); otherwise the device defaults apply
/// (cost-benefit victims, hot/cold separation, background quanta, wear
/// leveling at 1.5x).
PolicyRunResult run_policy(bool original) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(256ull << 20);
  cfg.dram_cache_bytes = 16ull << 20;
  if (original) {
    cfg.gc.policy = ftl::GcPolicy::kGreedy;
    cfg.gc.hot_cold_separation = false;
    cfg.gc.background_free_blocks = 0;
    cfg.gc.wear_leveling_threshold = 0.0;
  }
  kvssd::KvssdDevice dev(cfg);

  constexpr std::uint32_t kValueSize = 4096;
  // 4 KiB pairs pack several to a 32 KiB head page; size the working set
  // from the packed footprint so the device really sits at 80% fill.
  const std::uint64_t pair = ftl::FlashKvStore::pair_bytes(16, kValueSize);
  const std::uint64_t per_page =
      (cfg.geometry.page_size - ftl::PageFooter::kCountSize) /
      (pair + ftl::PageFooter::kSigSize);
  const std::uint64_t footprint = cfg.geometry.page_size / per_page;
  const std::uint64_t working_set = static_cast<std::uint64_t>(
      0.8 * static_cast<double>(cfg.geometry.capacity_bytes()) /
      static_cast<double>(footprint));

  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < working_set; ++id) {
    workload::fill_value(id, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
  }

  // Churn: 90% of overwrites land on the hottest 10% of keys, for 4x
  // the working set. Write amplification is measured over the second
  // half only — the first half is the transient where the mixed log
  // laid down by the load phase untangles itself; the separation payoff
  // (and greedy's fragmentation penalty) is a steady-state property.
  Rng rng(5);
  const std::uint64_t hot_set = working_set / 10;
  const std::uint64_t churn_ops = working_set * 4;
  std::uint64_t user_bytes = 0;
  for (std::uint64_t i = 0; i < churn_ops; ++i) {
    if (i == churn_ops / 2) {
      dev.nand().reset_stats();
      user_bytes = 0;
    }
    const bool hot = rng.next_below(100) < 90;
    const std::uint64_t id = hot ? rng.next_below(hot_set)
                                 : hot_set + rng.next_below(working_set - hot_set);
    workload::fill_value(id + i, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
    user_bytes += kValueSize;
  }

  PolicyRunResult r;
  r.write_amp = user_bytes == 0
                    ? 0
                    : static_cast<double>(dev.nand().stats().bytes_programmed) /
                          static_cast<double>(user_bytes);
  // Churn dominates the op count 4:1, so the whole-run p99 tracks churn
  // behaviour (the sim clock is deterministic — no host noise).
  r.p99_put_ns = dev.stats_snapshot().put_latency_ns.percentile(99);
  r.erase_spread = ftl::erase_spread(dev.nand(), dev.allocator().first_reserved_block());
  r.background_quanta = dev.gc().stats().background_quanta;
  r.wear_migrations = dev.gc().stats().wear_migrations;
  return r;
}

void hot_cold_acceptance() {
  bench::heading(
      "Hot/cold-aware incremental GC vs original greedy (90/10 skew, 80% fill)",
      "DESIGN.md §9 — write-amp / tail-latency / wear acceptance guards");
  bench::note("256 MiB device, 4 KiB values, overwrites of 4x the working");
  bench::note("set: 90%% of them on the hottest 10%% of keys; write-amp");
  bench::note("measured over the steady-state second half of the churn");

  const PolicyRunResult greedy = run_policy(/*original=*/true);
  const PolicyRunResult hc = run_policy(/*original=*/false);

  std::printf("\n  %-22s %-10s %-12s %-10s %-10s %-8s\n", "collector",
              "write-amp", "p99-put(us)", "spread", "quanta", "wear-mv");
  std::printf("  %-22s %-10.3f %-12.1f %-10.2f %-10llu %-8llu\n",
              "greedy+sync (orig)", greedy.write_amp,
              static_cast<double>(greedy.p99_put_ns) / 1000.0,
              greedy.erase_spread,
              static_cast<unsigned long long>(greedy.background_quanta),
              static_cast<unsigned long long>(greedy.wear_migrations));
  std::printf("  %-22s %-10.3f %-12.1f %-10.2f %-10llu %-8llu\n",
              "hot/cold+bg+wear (§9)", hc.write_amp,
              static_cast<double>(hc.p99_put_ns) / 1000.0, hc.erase_spread,
              static_cast<unsigned long long>(hc.background_quanta),
              static_cast<unsigned long long>(hc.wear_migrations));

  const double reduction =
      greedy.write_amp == 0
          ? 0
          : 100.0 * (greedy.write_amp - hc.write_amp) / greedy.write_amp;
  guard(reduction >= 20.0,
        "hot/cold separation cut write amplification by %.1f%% (>= 20%%)",
        reduction);
  guard(hc.p99_put_ns <= greedy.p99_put_ns,
        "p99 put %.1f us vs %.1f us — incremental quanta did not worsen "
        "the tail", static_cast<double>(hc.p99_put_ns) / 1000.0,
        static_cast<double>(greedy.p99_put_ns) / 1000.0);
  guard(hc.erase_spread <= 1.5,
        "erase-count spread %.2f stays within the 1.5x wear threshold",
        hc.erase_spread);
  bench::note("cold relocations stop re-mixing with the hot stream, so");
  bench::note("victim blocks converge to mostly-stale (cheap) or mostly-");
  bench::note("live-cold (rarely chosen) — the classic separation win");
}

/// Write amplification across three equal churn windows on one device:
/// steady state, then the same churn with a snapshot pinned (every
/// overwrite defers its stale version to the retainer), then again
/// after release. Acceptance (ISSUE 9): the post-release window lands
/// within 5% of the pre-pin steady state — retention is a debt the
/// release must actually repay, not a permanent WA regression.
void pin_release_acceptance() {
  bench::heading(
      "Write amplification around a snapshot pin (pin -> release -> recover)",
      "DESIGN.md §13 — released pins restore steady-state GC behaviour");
  bench::note("256 MiB device at 60%% fill, 4 KiB values; three uniform-");
  bench::note("churn windows of 2x the working set: no pin, pinned, after");
  bench::note("release; write-amp per window");

  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(256ull << 20);
  cfg.dram_cache_bytes = 16ull << 20;
  kvssd::KvssdDevice dev(cfg);

  constexpr std::uint32_t kValueSize = 4096;
  const std::uint64_t pair = ftl::FlashKvStore::pair_bytes(16, kValueSize);
  const std::uint64_t per_page =
      (cfg.geometry.page_size - ftl::PageFooter::kCountSize) /
      (pair + ftl::PageFooter::kSigSize);
  const std::uint64_t footprint = cfg.geometry.page_size / per_page;
  const std::uint64_t working_set = static_cast<std::uint64_t>(
      0.6 * static_cast<double>(cfg.geometry.capacity_bytes()) /
      static_cast<double>(footprint));

  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < working_set; ++id) {
    workload::fill_value(id, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) return;
  }

  Rng rng(7);
  const auto churn_window = [&](const char* label) -> double {
    dev.nand().reset_stats();
    std::uint64_t user_bytes = 0;
    for (std::uint64_t i = 0; i < working_set * 2; ++i) {
      const std::uint64_t id = rng.next_below(working_set);
      workload::fill_value(id + i, value);
      if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
      user_bytes += kValueSize;
    }
    const double wa =
        user_bytes == 0
            ? 0
            : static_cast<double>(dev.nand().stats().bytes_programmed) /
                  static_cast<double>(user_bytes);
    std::printf("  %-22s %-10.3f retained=%s\n", label, wa,
                bench::size_label(dev.snapshots().registry.retained_bytes())
                    .c_str());
    return wa;
  };

  std::printf("\n  %-22s %-10s\n", "window", "write-amp");
  const double before = churn_window("steady (no pin)");
  auto snap = dev.open_snapshot();
  if (!snap) {
    guard(false, "open_snapshot failed");
    std::exit(1);
  }
  const double pinned = churn_window("pinned");
  (void)dev.release_snapshot(*snap);
  const double after = churn_window("after release");

  const double drift =
      before == 0 ? 0 : 100.0 * (after - before) / before;
  guard(std::abs(drift) <= 5.0,
        "post-release write-amp %.3f is within 5%% of steady-state %.3f "
        "(%+.1f%%)", after, before, drift);
  bench::note("the pinned window defers stale-version reclaim (retained");
  bench::note("bytes grow, victim blocks keep live-but-superseded pages);");
  bench::note("release hands the debt to the retainer and GC catches up");
  if (std::abs(drift) > 5.0) {
    std::printf("\n  RESULT: FAIL\n");
    std::exit(1);
  }
  (void)pinned;
}

}  // namespace

int main() {
  bench::heading("GC under update churn",
                 "paper §IV-B (GC design) / §IV-A2 (index GC overhead)");
  bench::note("256 MiB device, 16 B keys, uniform overwrites of 2x the");
  bench::note("working set after filling to the stated fraction");

  std::printf("\n%-8s %-8s %-10s %-10s %-12s %-12s %-10s\n", "fill", "value",
              "write-amp", "reclaims", "data-moved", "index-moved", "MiB/s");
  for (const double fill : {0.45, 0.6, 0.75}) {
    for (const std::uint32_t vs : {512u, 4096u, 24576u}) {
      const GcRunResult r = run(fill, vs);
      std::printf("%-8.2f %-8s %-10.2f %-10llu %-12llu %-12llu %-10.1f\n", fill,
                  bench::size_label(vs).c_str(), r.write_amp,
                  static_cast<unsigned long long>(r.blocks_reclaimed),
                  static_cast<unsigned long long>(r.data_pairs_moved),
                  static_cast<unsigned long long>(r.index_pages_moved),
                  r.sim_mib_s);
    }
  }
  bench::note("expected: write amplification rises with fill level (less");
  bench::note("over-provisioning); index-page relocations stay a small");
  bench::note("fraction of data relocations.");

  hot_cold_acceptance();
  pin_release_acceptance();
  return 0;
}
