// Garbage-collection behaviour under update churn (paper §IV-B and the
// §IV-A2 acknowledgment that hash-based management adds GC work for
// stale index pages).
//
// Sweeps steady-state fill level (effective over-provisioning) and value
// size, reporting write amplification (user + relocated bytes over user
// bytes), GC block reclaims, and the share of relocations caused by
// stale *index* pages vs data.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

struct GcRunResult {
  double write_amp = 0;
  std::uint64_t blocks_reclaimed = 0;
  std::uint64_t data_pairs_moved = 0;
  std::uint64_t index_pages_moved = 0;
  double sim_mib_s = 0;
};

GcRunResult run(double fill_fraction, std::uint32_t value_size) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(256ull << 20);
  // Generous cache: this bench isolates *data* GC behaviour; the
  // index-churn write amplification of a starved cache is Fig. 2/5's
  // story, not this one's.
  cfg.dram_cache_bytes = 16ull << 20;
  kvssd::KvssdDevice dev(cfg);

  // Flash footprint per pair: small pairs pack into shared head pages
  // (page size / pairs-per-page); pairs over a page occupy whole extents.
  const std::uint64_t pair = ftl::FlashKvStore::pair_bytes(16, value_size);
  const bool packed = ftl::DataPageBuilder::fits_in_empty_page(
      cfg.geometry.page_size, pair);
  std::uint64_t footprint;
  if (packed) {
    const std::uint64_t per_page =
        (cfg.geometry.page_size - ftl::PageFooter::kCountSize) /
        (pair + ftl::PageFooter::kSigSize);
    footprint = cfg.geometry.page_size / std::max<std::uint64_t>(1, per_page);
  } else {
    footprint = std::uint64_t{ftl::extent_pages(cfg.geometry, pair)} *
                cfg.geometry.page_size;
  }
  const std::uint64_t working_set =
      static_cast<std::uint64_t>(fill_fraction *
                                 static_cast<double>(cfg.geometry.capacity_bytes())) /
      footprint;

  // Load phase.
  Bytes value(value_size);
  for (std::uint64_t id = 0; id < working_set; ++id) {
    workload::fill_value(id, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
  }

  // Churn phase: overwrite 2x the working set uniformly.
  dev.nand().reset_stats();
  const auto gc0 = dev.gc().stats();
  Rng rng(5);
  const std::uint64_t churn_ops = working_set * 2;
  std::uint64_t user_bytes = 0;
  const SimTime t0 = dev.clock().now();
  for (std::uint64_t i = 0; i < churn_ops; ++i) {
    const std::uint64_t id = rng.next_below(working_set);
    workload::fill_value(id + 1, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
    user_bytes += value_size;
  }
  const SimTime dt = dev.clock().now() - t0;

  GcRunResult r;
  const auto& gc = dev.gc().stats();
  r.blocks_reclaimed = gc.blocks_reclaimed - gc0.blocks_reclaimed;
  r.data_pairs_moved = gc.pairs_relocated - gc0.pairs_relocated;
  r.index_pages_moved = gc.index_pages_relocated - gc0.index_pages_relocated;
  r.write_amp = user_bytes == 0
                    ? 0
                    : static_cast<double>(dev.nand().stats().bytes_programmed) /
                          static_cast<double>(user_bytes);
  r.sim_mib_s = mib_per_sec(user_bytes, dt);
  return r;
}

}  // namespace

int main() {
  bench::heading("GC under update churn",
                 "paper §IV-B (GC design) / §IV-A2 (index GC overhead)");
  bench::note("256 MiB device, 16 B keys, uniform overwrites of 2x the");
  bench::note("working set after filling to the stated fraction");

  std::printf("\n%-8s %-8s %-10s %-10s %-12s %-12s %-10s\n", "fill", "value",
              "write-amp", "reclaims", "data-moved", "index-moved", "MiB/s");
  for (const double fill : {0.45, 0.6, 0.75}) {
    for (const std::uint32_t vs : {512u, 4096u, 24576u}) {
      const GcRunResult r = run(fill, vs);
      std::printf("%-8.2f %-8s %-10.2f %-10llu %-12llu %-12llu %-10.1f\n", fill,
                  bench::size_label(vs).c_str(), r.write_amp,
                  static_cast<unsigned long long>(r.blocks_reclaimed),
                  static_cast<unsigned long long>(r.data_pairs_moved),
                  static_cast<unsigned long long>(r.index_pages_moved),
                  r.sim_mib_s);
    }
  }
  bench::note("expected: write amplification rises with fill level (less");
  bench::note("over-provisioning); index-page relocations stay a small");
  bench::note("fraction of data relocations.");
  return 0;
}
