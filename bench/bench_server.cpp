// Serving-layer connection scaling (DESIGN.md §12).
//
// Three phases against one 4-shard api::KvsDevice:
//
//   0. anchor — bench_sharded_throughput's Part-A closed loop (same
//      array geometry, preload, mix, drain cadence) replicated on a
//      fresh array. This is the closed-loop wall-clock number the
//      serving layer is held to.
//   1. connection scaling — an epoll load driver opens N pipelined
//      loopback connections per step (up to 1024+) against net::KvServer
//      and reports wall-clock Mops/s plus p50/p99 per connection count.
//      Guard: peak served throughput (driver-CPU-corrected) >= 80% of
//      an anchor run measured adjacent to the step.
//   2. multi-tenant isolation — tenant A solo, then A + a rate-limited
//      tenant B concurrently, then A solo again. Guards: B is actually
//      capped near its quota (and sees KVS_ERR_QUEUE_FULL, never
//      silence), and A's p99 under flood stays <= 1.5x the slower of
//      its two bracketing solo runs.
//
// The connection-count vs p50/p99 curve and both tenant runs land in
// the metrics JSON (RHIK_METRICS_JSON) as bench.* counters/timers, with
// the server's own net.* metrics merged in. --smoke shrinks the op
// counts for CI; guards stay on. Any guard failure exits nonzero.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/kvs.hpp"
#include "bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

using namespace rhik;

namespace {

// Workload and array parameters track bench_sharded_throughput Part A
// exactly: the guard compares against that bench's closed-loop number,
// so both sides must run the same mix on the same geometry.
constexpr std::uint32_t kValueSize = 1024;
constexpr std::uint64_t kKeySpace = 20'000;
constexpr std::uint32_t kKeyBytes = 16;
// The write-heavy Part-A mix (5% get / 95% put): insert throughput is
// the paper's headline metric, and puts keep the device's flash-write +
// index cost in the denominator on both sides of the guard.
constexpr unsigned kGetPct = 5;
constexpr std::uint64_t kArrayCapacity = 256ull << 20;
constexpr std::uint64_t kArrayDram = 4ull << 20;
constexpr std::size_t kDrainEvery = 512;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t backend_shards() {
  // RHIK_BENCH_SHARDS overrides the 4-shard default — a single-core
  // host can compare against a shard-free backend, where the server's
  // event loop drives the device itself and no worker threads compete.
  if (const char* env = std::getenv("RHIK_BENCH_SHARDS")) {
    const int v = std::atoi(env);
    if (v >= 1 && v <= 64) return static_cast<std::uint32_t>(v);
  }
  return 4;
}

api::KvsDeviceOptions device_opts() {
  api::KvsDeviceOptions opts;
  opts.capacity_bytes = kArrayCapacity;
  opts.dram_cache_bytes = kArrayDram;
  // Same scaled erase blocks the anchor array uses (bench_util's
  // scaled_geometry default): geometry parity is part of the guard.
  opts.pages_per_block = 64;
  opts.num_shards = backend_shards();
  opts.anticipated_keys = kKeySpace;
  return opts;
}

// -- Phase 0: the anchor ------------------------------------------------------

struct Anchor {
  double mops = 0;           ///< ops / wall seconds (millions)
  double cpu_us_per_op = 0;  ///< process CPU burned per op (all threads)
};

Anchor anchor_run(std::uint64_t ops);

// -- The epoll load driver ----------------------------------------------------

struct DriverConn {
  int fd = -1;
  std::uint64_t index = 0;
  net::ResponseDecoder dec;
  Bytes out;
  std::size_t out_pos = 0;
  bool want_write = false;  ///< EPOLLOUT armed (only while out is nonempty)
  std::unordered_map<std::uint64_t, std::uint64_t> sent_ns;
  std::uint64_t next_id = 1;
  Rng rng{0};
};

struct DriverResult {
  std::uint64_t completed = 0;  ///< responses received (any status)
  std::uint64_t ok = 0;
  std::uint64_t queue_full = 0;
  double mops = 0;        ///< completed / wall seconds (millions)
  double wall_s = 0;      ///< wall-clock seconds of the drive loop
  double driver_cpu_s = 0;  ///< CPU the load driver itself burned
  /// Server-side saturated throughput: completed divided by the wall
  /// time not spent running the load generator. On a multi-core host
  /// the driver overlaps the server and this approaches `mops`; on a
  /// single core the driver steals server cycles one-for-one, so the
  /// serving layer's own capacity is the colocation-corrected number.
  double srv_mops = 0;
  /// Process CPU per op with the load driver's own CPU subtracted: the
  /// serving layer + device cost of one networked op. CPU time ignores
  /// scheduler noise, CPU steal and frequency drift, so this is the
  /// number the throughput guard compares against the closed loop.
  double srv_cpu_us_per_op = 0;
  Histogram latency;
};

double thread_cpu_s() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

/// CPU seconds burned by the whole process (every thread: server
/// workers, shard workers, drivers). Robust against scheduler noise,
/// CPU steal and frequency drift in a way wall clock is not.
double process_cpu_s() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

/// bench_sharded_throughput's Part-A loop, verbatim: fresh array, same
/// geometry/preload/mix/drain cadence, raw backend seam, counting sink.
/// A fresh array per call keeps the anchor free of aging drift, and
/// calling it adjacent to each scaling step keeps it free of machine
/// drift (the host slows measurably over a multi-second run).
Anchor anchor_run(std::uint64_t ops) {
  shard::ShardedConfig sc;
  sc.num_shards = backend_shards();
  sc.device.geometry = bench::scaled_geometry(kArrayCapacity / sc.num_shards);
  sc.device.dram_cache_bytes = kArrayDram / sc.num_shards;
  sc.device.index_kind = kvssd::IndexKind::kRhik;
  sc.device.rhik.anticipated_keys = kKeySpace / sc.num_shards;
  shard::ShardedKvssd arr(sc);
  std::atomic<std::uint64_t> completed{0};
  arr.set_completion_sink(
      [&completed](std::vector<api::TaggedCompletion>&& batch) {
        completed.fetch_add(batch.size(), std::memory_order_relaxed);
      });
  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < kKeySpace; ++id) {
    workload::fill_value(id, value);
    arr.submit_put_tagged(id, workload::key_for_id(id, kKeyBytes), value);
    if (id % kDrainEvery == 0) arr.drain();
  }
  arr.drain();

  Rng rng(42);
  const double cpu0 = process_cpu_s();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t id = rng.next_below(kKeySpace);
    if (rng.next_below(100) < kGetPct) {
      arr.submit_get_tagged(i, workload::key_for_id(id, kKeyBytes));
    } else {
      workload::fill_value(id, value);
      arr.submit_put_tagged(i, workload::key_for_id(id, kKeyBytes), value);
    }
    if (i % kDrainEvery == 0) arr.drain();
  }
  arr.drain();
  Anchor a;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  a.mops = secs > 0 ? static_cast<double>(ops) / secs / 1e6 : 0;
  a.cpu_us_per_op =
      ops > 0 ? (process_cpu_s() - cpu0) / static_cast<double>(ops) * 1e6 : 0;
  return a;
}

/// Opens `conns` connections for `tenant`, keeps `window` requests
/// pipelined on each, stops after `total_ops` responses. Latency is
/// measured per request, encode-to-decode. With `pace_ops_s` nonzero
/// the driver is open-loop instead: submissions are released at that
/// fixed rate (still window-capped per connection), which models an
/// abusive-but-remote tenant without turning the load generator into
/// a CPU hog on the server's own host.
DriverResult drive(std::uint16_t port, std::uint32_t tenant,
                   std::size_t conns, std::size_t window,
                   std::uint64_t total_ops, std::uint64_t pace_ops_s = 0) {
  DriverResult res;
  const int ep = epoll_create1(EPOLL_CLOEXEC);
  std::vector<std::unique_ptr<DriverConn>> cs;
  cs.reserve(conns);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  for (std::size_t i = 0; i < conns; ++i) {
    auto c = std::make_unique<DriverConn>();
    c->fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (c->fd < 0 ||
        connect(c->fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      std::fprintf(stderr, "connect %zu failed: %s\n", i, strerror(errno));
      std::exit(1);
    }
    int one = 1;
    setsockopt(c->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    // Non-blocking after connect: the driver itself must never park.
    const int fl = fcntl(c->fd, F_GETFL);
    fcntl(c->fd, F_SETFL, fl | O_NONBLOCK);
    c->rng = Rng(static_cast<std::uint64_t>(i) * 7919 + 13);
    c->index = i;
    epoll_event ev{};
    // EPOLLOUT is armed only while a send backs up: a level-triggered
    // always-writable socket would turn every epoll_wait into a busy
    // spin, and on this single-core host the spinning driver would
    // steal the very cycles the server is being measured on.
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    epoll_ctl(ep, EPOLL_CTL_ADD, c->fd, &ev);
    cs.push_back(std::move(c));
  }

  std::uint64_t submitted = 0;
  Bytes value(kValueSize);
  auto submit_one = [&](DriverConn& c) {
    net::RequestFrame f;
    f.tenant_id = tenant;
    f.request_id = c.next_id++;
    const std::uint64_t id = c.rng.next_below(kKeySpace);
    f.key = workload::key_for_id(id, kKeyBytes);
    if (c.rng.next_below(100) < kGetPct) {
      f.opcode = net::Opcode::kGet;
    } else {
      f.opcode = net::Opcode::kPut;
      workload::fill_value(id, value);
      f.value = value;
    }
    c.sent_ns[f.request_id] = now_ns();
    encode_request(f, &c.out);
    submitted++;
  };
  auto set_write_interest = [&](DriverConn& c, bool on) {
    if (c.want_write == on) return;
    c.want_write = on;
    epoll_event ev{};
    ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
    ev.data.u64 = c.index;
    epoll_ctl(ep, EPOLL_CTL_MOD, c.fd, &ev);
  };
  auto flush = [&](DriverConn& c) {
    while (c.out_pos < c.out.size()) {
      const ssize_t s = send(c.fd, c.out.data() + c.out_pos,
                             c.out.size() - c.out_pos, MSG_NOSIGNAL);
      if (s <= 0) {
        set_write_interest(c, true);  // EAGAIN: EPOLLOUT resumes us
        return;
      }
      c.out_pos += static_cast<std::size_t>(s);
    }
    c.out.clear();
    c.out_pos = 0;
    set_write_interest(c, false);
  };

  // Prime every connection with a full window (paced drivers start
  // cold and release work from the loop instead).
  if (pace_ops_s == 0) {
    for (auto& c : cs) {
      for (std::size_t j = 0; j < window && submitted < total_ops; ++j) {
        submit_one(*c);
      }
      flush(*c);
    }
  }

  std::vector<epoll_event> events(256);
  std::uint8_t buf[64 * 1024];
  const double pcpu0 = process_cpu_s();
  const double cpu0 = thread_cpu_s();
  const auto t0 = std::chrono::steady_clock::now();
  while (res.completed < total_ops) {
    if (pace_ops_s != 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const auto budget = static_cast<std::uint64_t>(
          elapsed * static_cast<double>(pace_ops_s));
      for (auto& c : cs) {
        while (submitted < total_ops && submitted < budget &&
               c->sent_ns.size() < window) {
          submit_one(*c);
        }
        flush(*c);
      }
    }
    const int n = epoll_wait(ep, events.data(),
                             static_cast<int>(events.size()),
                             pace_ops_s != 0 ? 1 : 1000);
    for (int i = 0; i < n; ++i) {
      DriverConn& c = *cs[events[static_cast<std::size_t>(i)].data.u64];
      if (events[static_cast<std::size_t>(i)].events & EPOLLOUT) flush(c);
      if (!(events[static_cast<std::size_t>(i)].events & EPOLLIN)) continue;
      for (;;) {
        const ssize_t r = recv(c.fd, buf, sizeof buf, 0);
        if (r <= 0) break;
        c.dec.feed(ByteSpan(buf, static_cast<std::size_t>(r)));
        net::ResponseFrame f;
        while (c.dec.next(&f) == net::DecodeStatus::kFrame) {
          const auto it = c.sent_ns.find(f.request_id);
          if (it != c.sent_ns.end()) {
            res.latency.record(now_ns() - it->second);
            c.sent_ns.erase(it);
          }
          res.completed++;
          if (f.status == api::KvsResult::KVS_SUCCESS ||
              f.status == api::KvsResult::KVS_ERR_KEY_NOT_EXIST) {
            res.ok++;
          } else if (f.status == api::KvsResult::KVS_ERR_QUEUE_FULL) {
            res.queue_full++;
          }
        }
        if (r < static_cast<ssize_t>(sizeof buf)) break;
      }
      // Burst refill: top the window back up once it half-drains,
      // rather than replacing one request per response. One-for-one
      // replacement degenerates into lockstep at steady state — every
      // op pays its own send and recv on both sides — where a real
      // pipelined client (and the anchor's closed loop, which submits
      // 512 ops per drain) amortizes syscalls over bursts.
      if (pace_ops_s == 0 && c.sent_ns.size() * 2 <= window) {
        while (submitted < total_ops && c.sent_ns.size() < window) {
          submit_one(c);
        }
      }
      flush(c);
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.wall_s = secs;
  res.driver_cpu_s = thread_cpu_s() - cpu0;
  res.mops = secs > 0 ? static_cast<double>(res.completed) / secs / 1e6 : 0;
  // Colocation correction: the share of the wall the driver spent on
  // the CPU was unavailable to the server on a saturated single-core
  // host. Floored at half the wall so a mismeasured clock can never
  // more than double the raw number.
  const double srv_secs = std::max(secs - res.driver_cpu_s, secs * 0.5);
  res.srv_mops =
      srv_secs > 0 ? static_cast<double>(res.completed) / srv_secs / 1e6 : 0;
  const double srv_cpu = process_cpu_s() - pcpu0 - res.driver_cpu_s;
  res.srv_cpu_us_per_op =
      res.completed > 0
          ? std::max(srv_cpu, 0.0) / static_cast<double>(res.completed) * 1e6
          : 0;
  for (auto& c : cs) close(c->fd);
  close(ep);
  return res;
}

void record_result(obs::MetricsSnapshot* snap, const std::string& base,
                   const DriverResult& r) {
  snap->add_counter(base + ".ops", r.completed);
  snap->add_counter(base + ".queue_full", r.queue_full);
  snap->set_gauge(base + ".kops_s", static_cast<std::int64_t>(r.mops * 1e3));
  snap->set_gauge(base + ".srv_kops_s",
                  static_cast<std::int64_t>(r.srv_mops * 1e3));
  snap->set_gauge(base + ".driver_cpu_pct",
                  static_cast<std::int64_t>(
                      r.wall_s > 0 ? 100.0 * r.driver_cpu_s / r.wall_s : 0));
  snap->add_timer(base + ".latency_ns", r.latency);
}

/// Writes the full keyspace through the facade so gets hit — the same
/// preload the anchor array gets, behind tenant 0's namespace prefix.
void preload(api::KvsDevice& dev) {
  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < kKeySpace; ++id) {
    workload::fill_value(id, value);
    dev.store_async(Bytes(workload::key_for_id(id, kKeyBytes)), Bytes(value));
  }
  std::vector<api::KvsCompletion> done;
  std::uint64_t got = 0;
  while (got < kKeySpace) got += dev.poll_completions(&done);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  bench::heading("Serving layer: connection scaling + tenant isolation",
                 "networked front-end over the §II-A array (DESIGN.md §12)");

  const std::uint64_t scale_ops = smoke ? 20'000 : 120'000;
  const std::vector<std::size_t> conn_steps =
      smoke ? std::vector<std::size_t>{16, 128, 1024}
            : std::vector<std::size_t>{16, 64, 256, 1024};
  // Per-connection pipeline depth. Saturating a flash array through a
  // network takes deep queues: at shallow windows every connection has
  // ~one response in flight per round trip, so neither side can batch
  // its syscalls and per-op overhead is dominated by send/recv, not
  // serving. 64 keeps the device backlogged and lets responses coalesce
  // per connection (the wire protocol pipelines by contract).
  const std::size_t window = 64;
  const std::size_t tenant_window = 16;

  net::ServerConfig scfg;
  scfg.num_workers = 1;  // one event loop; the host decides core count
  // 1024 conns x window 64 = 65536 requests legitimately in flight;
  // leave the global brake well above the bench's working depth (the
  // admission path itself is exercised by the tenant phase and tests).
  scfg.max_global_inflight = 1u << 17;
  obs::MetricsSnapshot out;

  bench::note("backend: %u shard(s), %u B values, %llu-key space, %u%% get mix",
              backend_shards(), kValueSize,
              static_cast<unsigned long long>(kKeySpace), kGetPct);

  std::printf("\nconnection scaling (%llu ops per step, window %zu)\n",
              static_cast<unsigned long long>(scale_ops), window);
  std::printf("%-8s %9s %9s %8s %9s %9s %11s %11s %9s\n", "conns", "Mops/s",
              "srv Mops", "drv cpu", "cpu/op", "anchor", "p50 us", "p99 us",
              "vs anchr");
  double peak_mops = 0;
  double peak_srv_mops = 0;
  double best_ratio = 0;
  double anchor_mops_sum = 0;
  // Tail-latency sanity per step: with W requests pipelined against a
  // server running at rate R, p50 sits near W/R by Little's law — an
  // absolute p99 cap would just re-test the chosen window depth. The
  // guard instead allows 4x the queueing delay the step's own measured
  // rate implies (floored at 50 ms for fast steps), which still catches
  // head-of-line blocking, starvation and stall regressions.
  double worst_p99_ratio = 0;
  for (const std::size_t conns : conn_steps) {
    // Anchor adjacent to the step: the host drifts over a run (turbo
    // ramp, ambient load on a shared box) — early phases can measure 2x
    // faster than late ones, so a single up-front anchor would make the
    // comparison depend on WHEN a step ran.
    const Anchor base = anchor_run(scale_ops);
    anchor_mops_sum += base.mops;
    // A fresh device + server per step, mirroring the anchor's fresh
    // array: a device carried across steps accumulates log wrap and GC
    // state the anchor never sees, and the guard would then compare a
    // steady-state device against a pristine one.
    api::KvsDevice dev(device_opts());
    net::KvServer server(dev, scfg);
    if (server.start() != Status::kOk) {
      std::fprintf(stderr, "server start failed\n");
      return 1;
    }
    preload(dev);
    const DriverResult r = drive(server.port(), /*tenant=*/0, conns, window,
                                 scale_ops);
    server.stop();
    peak_mops = std::max(peak_mops, r.mops);
    peak_srv_mops = std::max(peak_srv_mops, r.srv_mops);
    const double ratio = base.mops > 0 ? r.srv_mops / base.mops : 0;
    best_ratio = std::max(best_ratio, ratio);
    const double p99_us = r.latency.percentile(99) / 1e3;
    const double outstanding = static_cast<double>(conns * window);
    const double queueing_us =
        r.mops > 0 ? outstanding / (r.mops * 1e6) * 1e6 : 0;
    const double bound_us = std::max(50'000.0, 4.0 * queueing_us);
    worst_p99_ratio = std::max(worst_p99_ratio, p99_us / bound_us);
    std::printf("%-8zu %9.3f %9.3f %7.0f%% %9.2f %9.3f %11.1f %11.1f %8.1f%%\n",
                conns, r.mops, r.srv_mops,
                r.wall_s > 0 ? 100.0 * r.driver_cpu_s / r.wall_s : 0,
                r.srv_cpu_us_per_op, base.mops,
                r.latency.percentile(50) / 1e3, p99_us, 100.0 * ratio);
    record_result(&out, "bench.conns." + std::to_string(conns), r);
  }
  out.set_gauge("bench.anchor.kops_s",
                static_cast<std::int64_t>(
                    anchor_mops_sum / conn_steps.size() * 1e3));
  out.set_gauge("bench.net.best_ratio_pct",
                static_cast<std::int64_t>(best_ratio * 100));

  // -- Phase 2: tenant isolation ---------------------------------------------
  const std::uint64_t tenant_ops = smoke ? 8'000 : 40'000;
  const std::uint64_t cap_ops_s = 2'000;
  api::KvsDevice dev(device_opts());
  net::KvServer server(dev, scfg);
  if (server.start() != Status::kOk) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  preload(dev);
  net::TenantConfig quota;
  quota.ops_per_sec = cap_ops_s;
  quota.burst = 256;
  server.tenants().configure(2, quota, net::KvServer::wall_now_ns());

  std::printf("\ntenant isolation (A unlimited, B capped at %llu ops/s)\n",
              static_cast<unsigned long long>(cap_ops_s));
  const DriverResult solo = drive(server.port(), /*tenant=*/1, 32,
                                  tenant_window, tenant_ops);
  const double solo_p99_us = solo.latency.percentile(99) / 1e3;
  std::printf("%-22s %10.3f Mops/s  p99 %10.1f us\n", "A solo", solo.mops,
              solo_p99_us);
  record_result(&out, "bench.tenant.solo_a", solo);

  DriverResult duo_a, duo_b;
  {
    // B floods from its own driver thread while A runs, paced at twice
    // its quota: persistently over-limit (so the bucket must reject),
    // but open-loop — a remote abuser's client cycles don't come out of
    // this host's server budget. B counts its QUEUE_FULL rejections
    // (each one is still a delivered response).
    std::thread b_thread([&] {
      duo_b = drive(server.port(), /*tenant=*/2, 4, 2, tenant_ops / 4,
                    /*pace_ops_s=*/2 * cap_ops_s);
    });
    // Let B's flood reach steady state before A's measured run starts.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    duo_a = drive(server.port(), /*tenant=*/1, 32, tenant_window, tenant_ops);
    b_thread.join();
  }
  // Bracket: a second solo run after the duo. The host is slower late
  // in a run than early, and the duo sits between the two solos — with
  // only the leading solo as reference, machine drift reads as tenant
  // interference. The guard references the slower bracket.
  const DriverResult solo2 = drive(server.port(), /*tenant=*/1, 32,
                                   tenant_window, tenant_ops);
  const double solo2_p99_us = solo2.latency.percentile(99) / 1e3;
  const double duo_p99_us = duo_a.latency.percentile(99) / 1e3;
  const double b_secs = duo_b.mops > 0
      ? static_cast<double>(duo_b.completed) / (duo_b.mops * 1e6)
      : 1;
  const double b_goodput_s = static_cast<double>(duo_b.ok) / b_secs;
  std::printf("%-22s %10.3f Mops/s  p99 %10.1f us\n", "A with B flooding",
              duo_a.mops, duo_p99_us);
  std::printf("%-22s %10.3f Mops/s  p99 %10.1f us\n", "A solo (re-run)",
              solo2.mops, solo2_p99_us);
  std::printf("%-22s goodput %.0f ops/s (cap %llu), %llu QUEUE_FULL\n",
              "B (rate limited)", b_goodput_s,
              static_cast<unsigned long long>(cap_ops_s),
              static_cast<unsigned long long>(duo_b.queue_full));
  record_result(&out, "bench.tenant.duo_a", duo_a);
  record_result(&out, "bench.tenant.duo_b", duo_b);
  record_result(&out, "bench.tenant.solo_a_post", solo2);

  // Server-side view (net.* incl. per-tenant slices) merges into the
  // export next to the bench.* curve.
  out.merge_from(server.metrics_snapshot());
  bench::maybe_export_json(out);
  server.stop();

  // -- Guards (exit nonzero so CI catches regressions) -----------------------
  int rc = 0;
  // Throughput guard: at saturation the serving layer must deliver at
  // least 80% of bench_sharded_throughput's closed-loop wall-clock rate
  // ("within 20%"). Each scaling step is compared against an anchor run
  // measured adjacent to it (same machine state), and the served rate is
  // driver-CPU-corrected: the load generator shares this host's single
  // core with the server, and its cycles (encode, epoll, decode, latency
  // bookkeeping) are work a remote client would burn on its own machine.
  // The best step must clear the bar — the curve's low-connection steps
  // are expected to sit below saturation.
  if (best_ratio < 0.8) {
    std::printf("FAIL: served throughput peaked at %.0f%% of the adjacent "
                "closed-loop anchor (need >= 80%%; peak %.3f Mops/s srv, "
                "%.3f raw)\n", 100.0 * best_ratio, peak_srv_mops, peak_mops);
    rc = 1;
  }
  if (worst_p99_ratio > 1.0) {
    std::printf("FAIL: a scaling step's p99 exceeded its queueing-delay "
                "bound by %.1fx (tail blowup)\n", worst_p99_ratio);
    rc = 1;
  }
  if (duo_b.queue_full == 0) {
    std::printf("FAIL: rate-limited tenant saw no QUEUE_FULL rejections\n");
    rc = 1;
  }
  // 3x the configured cap leaves room for burst credit + timing noise
  // while still proving the quota binds (an uncapped B would push Mops).
  if (b_goodput_s > 3.0 * static_cast<double>(cap_ops_s)) {
    std::printf("FAIL: capped tenant pushed %.0f ops/s through a %llu cap\n",
                b_goodput_s, static_cast<unsigned long long>(cap_ops_s));
    rc = 1;
  }
  const double solo_ref_us =
      std::max(std::max(solo_p99_us, solo2_p99_us), 100.0);
  if (duo_p99_us > 1.5 * solo_ref_us) {
    std::printf("FAIL: tenant A p99 %.1f us > 1.5x solo %.1f us\n",
                duo_p99_us, solo_ref_us);
    rc = 1;
  }
  std::printf("\n%s\n", rc == 0 ? "all serving-layer guards passed"
                                : "serving-layer guards FAILED");
  return rc;
}
