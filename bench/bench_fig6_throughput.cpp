// Fig. 6 — I/O throughput across value sizes, write/read x async/sync,
// comparing the Samsung KVSSD (analytic PM983 model), the stock
// emulator behaviour (KVEMU ~ multi-level hash index) and RHIK
// (paper §V-B).
//
// The paper plots throughput normalized per system; we normalize each
// cell to the KVEMU baseline so "KVEMU = 1.0" and RHIK's factor is the
// paper's claimed win. Workload: sequential 1 GiB (scaled to 256 MiB)
// per configuration, 16 B keys, as in §V-B.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kvssd/pm983_model.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

constexpr std::uint64_t kWorkloadBytes = 256ull << 20;

struct Cell {
  double kvssd_model = 0;  // MiB/s from the PM983 analytic model
  double kvemu = 0;        // emulated device, mlhash index
  double rhik = 0;         // emulated device, RHIK
};

kvssd::DeviceConfig make_config(bool rhik_index, std::uint64_t value_size) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(1ull << 30);
  // Scarce device DRAM, as on hardware: the index does not fit, so its
  // flash reads show up in read throughput too.
  cfg.dram_cache_bytes = 512ull << 10;
  // PM983-class page timings (aggregate channel throughput folded into
  // per-page costs: ~2.4 GB/s reads, ~0.9 GB/s programs at 32 KiB pages)
  // so index flash work and data transfers carry realistic relative
  // weight in the simulated clock.
  cfg.latency = flash::NandLatency{13 * kMicrosecond, 35 * kMicrosecond,
                                   1 * kMillisecond, 0};
  if (rhik_index) {
    cfg.index_kind = kvssd::IndexKind::kRhik;
  } else {
    cfg.index_kind = kvssd::IndexKind::kMlHash;
    const std::uint64_t keys = kWorkloadBytes / std::max<std::uint64_t>(value_size, 1);
    cfg.mlhash =
        index::MlHashConfig::for_keys(keys * 2 + 1000, cfg.geometry.page_size);
  }
  return cfg;
}

/// Runs a sequential write phase then a sequential read phase; returns
/// {write MiB/s, read MiB/s} in the given submission mode.
std::pair<double, double> run(bool rhik_index, bool async,
                              std::uint64_t value_size) {
  kvssd::KvssdDevice dev(make_config(rhik_index, value_size));
  const std::uint64_t n = std::max<std::uint64_t>(kWorkloadBytes / value_size, 8);

  Bytes value(value_size);
  const SimTime w0 = dev.clock().now();
  for (std::uint64_t id = 0; id < n; ++id) {
    workload::fill_value(id, value);
    const Bytes key = workload::key_for_id(id, 16);
    if (async) {
      dev.submit_put(key, value);
      if (id % dev.config().queue_depth == 0) dev.drain();
    } else {
      dev.put(key, value);
    }
  }
  if (async) dev.drain();
  const double write_mib = mib_per_sec(n * value_size, dev.clock().now() - w0);

  Bytes out;
  const SimTime r0 = dev.clock().now();
  for (std::uint64_t id = 0; id < n; ++id) {
    const Bytes key = workload::key_for_id(id, 16);
    if (async) {
      dev.submit_get(key);
      if (id % dev.config().queue_depth == 0) dev.drain();
    } else {
      dev.get(key, &out);
    }
  }
  if (async) dev.drain();
  const double read_mib = mib_per_sec(n * value_size, dev.clock().now() - r0);
  return {write_mib, read_mib};
}

void print_panel(const char* title, const std::vector<std::uint64_t>& sizes,
                 const std::vector<Cell>& cells) {
  std::printf("\n%s (normalized to KVEMU = 1.0)\n", title);
  std::printf("%-10s %12s %12s %12s\n", "value", "KVSSD", "KVEMU", "RHIK");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double base = cells[i].kvemu > 0 ? cells[i].kvemu : 1.0;
    std::printf("%-10s %12.2f %12.2f %12.2f\n",
                bench::size_label(sizes[i]).c_str(), cells[i].kvssd_model / base,
                1.0, cells[i].rhik / base);
  }
}

}  // namespace

int main() {
  bench::heading("Fig. 6 — throughput vs value size (write/read x async/sync)",
                 "RHIK paper Fig. 6a-6d (§V-B)");
  bench::note("workload %llu MiB sequential per cell (paper: 1 GB), 16 B keys",
              static_cast<unsigned long long>(kWorkloadBytes >> 20));
  bench::note("KVSSD series = analytic PM983 model (hardware substitution)");

  const std::vector<std::uint64_t> sizes{4ull << 10, 64ull << 10, 256ull << 10,
                                         2ull << 20};
  const kvssd::Pm983Model model;

  std::vector<Cell> wa(sizes.size()), ra(sizes.size()), ws(sizes.size()),
      rs(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::uint64_t vs = sizes[i];
    wa[i].kvssd_model = model.throughput_mib(kvssd::OpDir::kWrite, true, vs);
    ra[i].kvssd_model = model.throughput_mib(kvssd::OpDir::kRead, true, vs);
    ws[i].kvssd_model = model.throughput_mib(kvssd::OpDir::kWrite, false, vs);
    rs[i].kvssd_model = model.throughput_mib(kvssd::OpDir::kRead, false, vs);

    const auto ml_async = run(/*rhik=*/false, /*async=*/true, vs);
    const auto rk_async = run(/*rhik=*/true, /*async=*/true, vs);
    const auto ml_sync = run(/*rhik=*/false, /*async=*/false, vs);
    const auto rk_sync = run(/*rhik=*/true, /*async=*/false, vs);
    wa[i].kvemu = ml_async.first;
    wa[i].rhik = rk_async.first;
    ra[i].kvemu = ml_async.second;
    ra[i].rhik = rk_async.second;
    ws[i].kvemu = ml_sync.first;
    ws[i].rhik = rk_sync.first;
    rs[i].kvemu = ml_sync.second;
    rs[i].rhik = rk_sync.second;
  }

  print_panel("(a) async writes", sizes, wa);
  print_panel("(b) async reads", sizes, ra);
  print_panel("(c) sync writes", sizes, ws);
  print_panel("(d) sync reads", sizes, rs);

  std::printf("\nabsolute emulated throughput (MiB/s, simulated clock):\n");
  std::printf("%-10s %14s %14s %14s %14s\n", "value", "KVEMU w-async",
              "RHIK w-async", "KVEMU r-async", "RHIK r-async");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-10s %14.1f %14.1f %14.1f %14.1f\n",
                bench::size_label(sizes[i]).c_str(), wa[i].kvemu, wa[i].rhik,
                ra[i].kvemu, ra[i].rhik);
  }
  bench::note("expected shape: RHIK >= KVEMU across sizes, with the largest");
  bench::note("gains where index work dominates (small/medium values) and on");
  bench::note("reads of large values (single metadata read per lookup).");
  return 0;
}
