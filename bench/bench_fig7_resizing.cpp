// Fig. 7 — rate of change of the time to double the index capacity
// (paper §V-B).
//
// RHIK is filled with random keys on an index-only rig (no KV data —
// resizing never touches KV pairs, §IV-A2); every occupancy-triggered
// doubling records {keys migrated, stall duration}. The paper plots the
// *rate of change* of the resizing time: with capacity points from
// 0.003 M to 172 M keys it stays <= ~1, i.e. time-to-double grows no
// faster than the key count. We sweep 32 KiB-page geometry (R = 1927)
// up to several million keys.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "index/rhik/rhik_index.hpp"

using namespace rhik;

int main() {
  bench::heading("Fig. 7 — rate of change of index-resizing time",
                 "RHIK paper Fig. 7 (§V-B), and the 11M->5ms / 345M->172ms "
                 "examples");

  SimClock clock;
  // Index-only device: 2 GiB of 32 KiB pages for record tables.
  flash::NandDevice nand(flash::Geometry::with_capacity(2ull << 30),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 4);
  ftl::FlashKvStore store(&nand, &alloc);

  index::RhikConfig cfg;  // paper defaults: R = 1927, H = 32, 80% threshold
  // Generous cache: the paper's resize times (5 ms at 11 M keys) imply a
  // largely DRAM-resident record layer during migration; flash programs
  // are still charged through the simulated clock.
  index::RhikIndex index(&nand, &alloc, cfg, /*cache=*/192ull << 20);
  ftl::GarbageCollector gc(&nand, &alloc, &store, &index);

  const std::uint64_t target_keys = 4'000'000;
  Rng rng(42);
  std::uint64_t inserted = 0;
  while (inserted < target_keys) {
    if (alloc.needs_gc()) gc.collect(alloc.gc_reserve() + 4);
    if (ok(index.put(rng.next(), inserted))) ++inserted;
  }

  const auto& history = index.resize_history();
  std::printf("\n%-14s %-14s %-14s %-12s %-12s\n", "keys-before(M)",
              "capacity(M)", "resize-ms", "time-growth", "rate-of-chg");
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& ev = history[i];
    double time_growth = 0, rate = 0;
    if (i > 0 && history[i - 1].duration_ns > 0 && history[i - 1].keys_before > 0) {
      time_growth = static_cast<double>(ev.duration_ns) /
                    static_cast<double>(history[i - 1].duration_ns);
      const double key_growth = static_cast<double>(ev.keys_before) /
                                static_cast<double>(history[i - 1].keys_before);
      rate = time_growth / key_growth;
    }
    std::printf("%-14.4f %-14.4f %-14.3f %-12.2f %-12.2f\n",
                static_cast<double>(ev.keys_before) / 1e6,
                static_cast<double>(ev.capacity_before) / 1e6,
                static_cast<double>(ev.duration_ns) / 1e6, time_growth, rate);
  }

  std::printf("\ntotal submission-queue stall: %.1f ms over %zu resizes\n",
              static_cast<double>(clock.total_stall()) / 1e6, history.size());
  std::printf("final index: %llu keys, dir 2^%u, occupancy %.1f%%\n",
              static_cast<unsigned long long>(index.size()), index.dir_bits(),
              index.occupancy() * 100);
  bench::note("expected: rate-of-change ~<= 1 at every doubling (resize time");
  bench::note("grows linearly with keys); milliseconds at millions of keys,");
  bench::note("matching the paper's 11M->5ms / 345M->172ms calibration.");
  return 0;
}
