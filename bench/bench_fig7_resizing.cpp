// Fig. 7 — rate of change of the time to double the index capacity
// (paper §V-B), plus the halt-free resizing guard (DESIGN.md §11).
//
// Part A reproduces the paper's stop-the-world measurement: RHIK is
// filled with random keys on an index-only rig (no KV data — resizing
// never touches KV pairs, §IV-A2); every occupancy-triggered doubling
// records {keys migrated, stall duration}. The paper plots the *rate of
// change* of the resizing time: with capacity points from 0.003 M to
// 172 M keys it stays <= ~1, i.e. time-to-double grows no faster than
// the key count.
//
// Part B measures what the incremental default buys: per-put latency is
// sampled while a doubling migrates in background quanta vs steady
// state, on a cache sized well below the record-layer footprint so
// flash reads dominate the tail. The guard — p99 during a doubling must
// stay within 2x the steady-state p99 — exits non-zero on violation, so
// CI can hold the stall-free property.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "index/rhik/rhik_index.hpp"

using namespace rhik;

namespace {

std::uint64_t p99(std::vector<std::uint64_t>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, (v.size() * 99) / 100)];
}

/// Part A: the paper's Fig. 7 — stop-the-world doubling, stall per resize.
void run_stop_the_world() {
  SimClock clock;
  // Index-only device: 2 GiB of 32 KiB pages for record tables.
  flash::NandDevice nand(flash::Geometry::with_capacity(2ull << 30),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 4);
  ftl::FlashKvStore store(&nand, &alloc);

  index::RhikConfig cfg;  // paper defaults: R = 1927, H = 32, 80% threshold
  cfg.incremental_resize = false;  // the measurement the paper reports
  // Generous cache: the paper's resize times (5 ms at 11 M keys) imply a
  // largely DRAM-resident record layer during migration; flash programs
  // are still charged through the simulated clock.
  index::RhikIndex index(&nand, &alloc, cfg, /*cache=*/192ull << 20);
  ftl::GarbageCollector gc(&nand, &alloc, &store, &index);

  const std::uint64_t target_keys = 4'000'000;
  Rng rng(42);
  std::uint64_t inserted = 0;
  while (inserted < target_keys) {
    if (alloc.needs_gc()) gc.collect(alloc.gc_reserve() + 4);
    if (ok(index.put(rng.next(), inserted))) ++inserted;
  }

  const auto& history = index.resize_history();
  std::printf("\n-- part A: stop-the-world doubling (paper Fig. 7) --\n");
  std::printf("%-14s %-14s %-14s %-12s %-12s\n", "keys-before(M)",
              "capacity(M)", "resize-ms", "time-growth", "rate-of-chg");
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& ev = history[i];
    double time_growth = 0, rate = 0;
    if (i > 0 && history[i - 1].duration_ns > 0 && history[i - 1].keys_before > 0) {
      time_growth = static_cast<double>(ev.duration_ns) /
                    static_cast<double>(history[i - 1].duration_ns);
      const double key_growth = static_cast<double>(ev.keys_before) /
                                static_cast<double>(history[i - 1].keys_before);
      rate = time_growth / key_growth;
    }
    std::printf("%-14.4f %-14.4f %-14.3f %-12.2f %-12.2f\n",
                static_cast<double>(ev.keys_before) / 1e6,
                static_cast<double>(ev.capacity_before) / 1e6,
                static_cast<double>(ev.duration_ns) / 1e6, time_growth, rate);
  }

  std::printf("\ntotal submission-queue stall: %.1f ms over %zu resizes\n",
              static_cast<double>(clock.total_stall()) / 1e6, history.size());
  std::printf("final index: %llu keys, dir 2^%u, occupancy %.1f%%\n",
              static_cast<unsigned long long>(index.size()), index.dir_bits(),
              index.occupancy() * 100);
  bench::note("expected: rate-of-change ~<= 1 at every doubling (resize time");
  bench::note("grows linearly with keys); milliseconds at millions of keys,");
  bench::note("matching the paper's 11M->5ms / 345M->172ms calibration.");
}

/// Part B: incremental (default) doubling — p99 put latency during a
/// migration window vs steady state, with the <= 2x CI guard.
/// Returns 0 when the guard holds.
int run_halt_free_guard() {
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::with_capacity(2ull << 30),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 4);
  ftl::FlashKvStore store(&nand, &alloc);

  index::RhikConfig cfg;
  cfg.incremental_resize = true;  // halt-free path, regardless of env
  cfg.incremental_batch = 1;      // one bucket per quantum: long windows
  // ~800 k keys need ~16 MiB of record pages; an 8 MiB cache keeps half
  // the working set on flash so the latency tail is real.
  index::RhikIndex index(&nand, &alloc, cfg, /*cache=*/8ull << 20);
  ftl::GarbageCollector gc(&nand, &alloc, &store, &index);

  const std::uint64_t target_keys = 800'000;
  Rng rng(43);
  std::uint64_t inserted = 0;
  std::vector<std::uint64_t> steady, during;
  steady.reserve(target_keys);
  while (inserted < target_keys) {
    if (alloc.needs_gc()) gc.collect(alloc.gc_reserve() + 4);
    const bool migrating = index.migration_active();
    const std::uint64_t sig = rng.next();
    const SimTime t0 = clock.now();
    const bool stored = ok(index.put(sig, inserted));
    (migrating ? during : steady).push_back(clock.now() - t0);
    if (stored) ++inserted;
    // The device's idle pump: one bounded quantum per op, never charged
    // to the put above.
    index.pump_maintenance(0);
  }
  while (index.pump_maintenance(0)) {
  }

  const auto& history = index.resize_history();
  std::uint64_t keys_migrated = 0;
  for (const auto& ev : history) keys_migrated += ev.keys_before;

  const std::uint64_t p99_steady = p99(steady);
  const std::uint64_t p99_during = p99(during);
  std::printf("\n-- part B: halt-free doubling (incremental default) --\n");
  std::printf("%-26s %llu\n", "puts sampled steady:",
              static_cast<unsigned long long>(steady.size()));
  std::printf("%-26s %llu\n", "puts sampled mid-doubling:",
              static_cast<unsigned long long>(during.size()));
  std::printf("%-26s %.1f us\n", "p99 put steady:",
              static_cast<double>(p99_steady) / 1e3);
  std::printf("%-26s %.1f us\n", "p99 put mid-doubling:",
              static_cast<double>(p99_during) / 1e3);
  std::printf("%-26s %zu (%llu keys migrated)\n", "doublings drained:",
              history.size(),
              static_cast<unsigned long long>(keys_migrated));
  std::printf("%-26s %.1f ms\n", "submission-queue stall:",
              static_cast<double>(clock.total_stall()) / 1e6);
  bench::note("guard: p99 mid-doubling <= 2x steady-state p99 AND zero");
  bench::note("queue stall — the halt-free property CI holds.");

  if (p99_steady == 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state p99 is 0 — cache no longer misses, the "
                 "guard is vacuous; shrink the cache\n");
    return 1;
  }
  if (during.empty() || history.empty()) {
    std::fprintf(stderr, "FAIL: no doubling was sampled mid-migration\n");
    return 1;
  }
  if (clock.total_stall() != 0) {
    std::fprintf(stderr, "FAIL: incremental resize stalled the queue\n");
    return 1;
  }
  if (p99_during > 2 * p99_steady) {
    std::fprintf(stderr,
                 "FAIL: p99 during doubling (%llu ns) exceeds 2x steady-state "
                 "p99 (%llu ns)\n",
                 static_cast<unsigned long long>(p99_during),
                 static_cast<unsigned long long>(p99_steady));
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  bench::heading("Fig. 7 — rate of change of index-resizing time",
                 "RHIK paper Fig. 7 (§V-B), and the 11M->5ms / 345M->172ms "
                 "examples; DESIGN.md §11 halt-free guard");
  run_stop_the_world();
  return run_halt_free_guard();
}
