// Fig. 5 — IBM Cloud Object Store trace replay under a 10 MB FTL cache
// budget: (a) cache miss ratio per cluster, (b) flash accesses needed
// per metadata access (paper §V-B).
//
// The paper replays eight production COS clusters on a KVSSD whose FTL
// cache is limited to 10 MB and compares RHIK against an 8-level
// multi-level hash index. We synthesize cluster workloads with the same
// index-size-vs-cache relationships (substitution documented in
// DESIGN.md) at a reduced scale: same index/cache ratios, smaller keys.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "workload/ibm_cos.hpp"
#include "workload/replay.hpp"

using namespace rhik;

namespace {

constexpr double kScale = 0.05;
constexpr std::uint64_t kCacheBytes =
    static_cast<std::uint64_t>(10.0 * kScale * (1 << 20));  // 2 MB

struct ClusterResult {
  double miss_ratio = 0;
  double reads_p50 = 0, reads_p90 = 0, reads_p99 = 0;
  std::uint64_t reads_max = 0;
  double frac_le1 = 0;  ///< fraction of metadata accesses with <= 1 read
};

ClusterResult run(const workload::CosClusterProfile& profile, bool rhik_index,
                  obs::MetricsSnapshot* snap_out = nullptr) {
  kvssd::DeviceConfig cfg;
  // Size the device to the cluster's data (values scaled small — Fig. 5's
  // metrics depend on index pressure, not on value bytes).
  workload::CosClusterProfile p = profile;
  p.value_lo = 64;
  p.value_hi = 512;
  const std::uint64_t data_bytes = p.num_keys * (p.value_hi + 64) * 2;
  cfg.geometry =
      bench::scaled_geometry(std::max<std::uint64_t>(data_bytes, 64ull << 20));
  cfg.dram_cache_bytes = kCacheBytes;
  if (rhik_index) {
    cfg.index_kind = kvssd::IndexKind::kRhik;
  } else {
    cfg.index_kind = kvssd::IndexKind::kMlHash;
    cfg.mlhash = index::MlHashConfig::for_keys(p.num_keys * 5 / 4,
                                               cfg.geometry.page_size);
  }
  kvssd::KvssdDevice dev(cfg);

  // Load phase.
  workload::ReplayOptions opts;
  workload::replay(dev, workload::cos_load_trace(p, /*seed=*/100), opts);

  // Measured phase.
  dev.index().reset_op_stats();
  workload::replay(dev, workload::cos_measure_trace(p, /*seed=*/200), opts);

  ClusterResult r;
  const auto& stats = dev.index().op_stats();
  r.reads_p50 = stats.reads_per_lookup.percentile(50);
  r.reads_p90 = stats.reads_per_lookup.percentile(90);
  r.reads_p99 = stats.reads_per_lookup.percentile(99);
  r.reads_max = stats.reads_per_lookup.max();
  r.frac_le1 = stats.reads_per_lookup.cdf(1);
  // Fig. 5a's metric: misses of the FTL page cache per cache access.
  r.miss_ratio = dev.index().cache_stats().miss_ratio();
  if (snap_out) *snap_out = dev.metrics_snapshot();
  return r;
}

}  // namespace

int main() {
  bench::heading("Fig. 5 — IBM COS traces under a limited FTL cache",
                 "RHIK paper Fig. 5a (cache miss ratio) and 5b (flash "
                 "accesses per metadata access)");
  bench::note("scale %.2f: cache %llu KiB (paper: 10 MB), synthetic COS",
              kScale, static_cast<unsigned long long>(kCacheBytes >> 10));

  const auto profiles = workload::ibm_cos_profiles(kScale);

  // Paper Fig. 5a plots the miss ratio of the *multi-level* index; the
  // RHIK column is our addition for completeness (RHIK's bound shows up
  // in panel (b), where it caps flash accesses at one).
  std::printf("\n(a) FTL cache miss ratio\n");
  std::printf("%-9s %-10s %-12s %-12s %-10s\n", "cluster", "keys",
              "mlhash(8L)", "RHIK", "idx/cache");
  struct Row {
    ClusterResult ml, rk;
  };
  std::vector<Row> rows;
  obs::MetricsSnapshot rhik_snap;
  for (const auto& p : profiles) {
    Row row;
    row.ml = run(p, /*rhik_index=*/false);
    // Keep the last RHIK cluster's full metrics for the stage report.
    row.rk = run(p, /*rhik_index=*/true, &rhik_snap);
    const double ratio =
        static_cast<double>(p.index_bytes(32 * 1024, 1927)) / kCacheBytes;
    std::printf("%-9s %-10llu %-12.3f %-12.3f %-10.2f\n", p.name.c_str(),
                static_cast<unsigned long long>(p.num_keys), row.ml.miss_ratio,
                row.rk.miss_ratio, ratio);
    rows.push_back(row);
  }

  std::printf("\n(b) flash accesses per metadata access\n");
  std::printf("%-9s | %-28s | %-28s\n", "", "mlhash(8L)", "RHIK");
  std::printf("%-9s | %6s %6s %6s %6s | %6s %6s %6s %6s\n", "cluster", "p50",
              "p90", "p99", "max", "p50", "p90", "p99", "max");
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& p = profiles[i];
    const auto& r = rows[i];
    std::printf("%-9s | %6.1f %6.1f %6.1f %6llu | %6.1f %6.1f %6.1f %6llu\n",
                p.name.c_str(), r.ml.reads_p50, r.ml.reads_p90, r.ml.reads_p99,
                static_cast<unsigned long long>(r.ml.reads_max), r.rk.reads_p50,
                r.rk.reads_p90, r.rk.reads_p99,
                static_cast<unsigned long long>(r.rk.reads_max));
  }

  std::printf("\nfraction of metadata accesses needing <= 1 flash read:\n");
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    std::printf("  %-6s mlhash %.3f   RHIK %.3f\n", profiles[i].name.c_str(),
                rows[i].ml.frac_le1, rows[i].rk.frac_le1);
  }
  bench::note("expected: RHIK max == 1 for every cluster (the paper's");
  bench::note("guarantee); mlhash misses and multi-read lookups grow with");
  bench::note("index size on clusters 001/081/083/096.");

  std::printf("\nper-op stage metrics (RHIK, last cluster's measured phase)\n");
  bench::print_stage_metrics(rhik_snap);
  bench::maybe_export_json(rhik_snap);
  return 0;
}
