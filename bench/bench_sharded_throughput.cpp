// Sharded multi-device front-end scaling and index-aware batch drain.
//
// Part A: fixed-size array (capacity and DRAM split evenly) opened with
// 1/2/4/8 shards, driven with read-heavy and write-heavy async mixes.
// Two throughput figures per cell:
//   - wall clock: host ops/s. One worker thread per shard, so this
//     scales only with physical cores (on a 1-core host it stays flat).
//   - device clock: array ops/s on simulated time, where array time is
//     the MAX across shard clocks — shards are independent devices
//     advancing concurrently, so this is the whole-array throughput an
//     N-device deployment delivers.
// Part B: a single device under a skewed (zipfian) async read burst with
// a small index cache, drained with bucket-grouping off vs on; reports
// index flash reads per op for both orders.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "shard/sharded_kvssd.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

// -- Part A -------------------------------------------------------------------

constexpr std::uint64_t kArrayCapacity = 256ull << 20;  // whole array
constexpr std::uint64_t kArrayDram = 4ull << 20;
constexpr std::uint64_t kKeys = 20'000;
constexpr std::uint64_t kOps = 60'000;
constexpr std::uint32_t kValueSize = 1024;
constexpr std::size_t kDrainEvery = 512;

struct Throughput {
  double wall_mops = 0;  // host ops/s (millions)
  double sim_mops = 0;   // simulated array ops/s (millions)
};

shard::ShardedConfig make_array_config(std::uint32_t shards) {
  shard::ShardedConfig sc;
  sc.num_shards = shards;
  sc.device.geometry = bench::scaled_geometry(kArrayCapacity / shards);
  sc.device.dram_cache_bytes = kArrayDram / shards;
  sc.device.index_kind = kvssd::IndexKind::kRhik;
  sc.device.rhik.anticipated_keys = kKeys / shards;
  return sc;
}

Throughput run_mix(std::uint32_t shards, unsigned get_pct,
                   obs::MetricsSnapshot* snap_out = nullptr) {
  shard::ShardedKvssd arr(make_array_config(shards));

  // Completion-ring fast path: ops are tagged, completions cross from
  // the shard workers in whole drained batches (one sink call per
  // batch) instead of one callback dispatch per op.
  std::atomic<std::uint64_t> completed{0};
  arr.set_completion_sink(
      [&completed](std::vector<api::TaggedCompletion>&& batch) {
        completed.fetch_add(batch.size(), std::memory_order_relaxed);
      });

  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < kKeys; ++id) {
    workload::fill_value(id, value);
    arr.submit_put_tagged(id, workload::key_for_id(id, 16), value);
    if (id % kDrainEvery == 0) arr.drain();
  }
  arr.drain();

  Rng rng(42);
  const SimTime sim0 = arr.sim_time();
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t id = rng.next_below(kKeys);
    if (rng.next_below(100) < get_pct) {
      arr.submit_get_tagged(i, workload::key_for_id(id, 16));
    } else {
      workload::fill_value(id, value);
      arr.submit_put_tagged(i, workload::key_for_id(id, 16), value);
    }
    if (i % kDrainEvery == 0) arr.drain();
  }
  arr.drain();
  const auto wall1 = std::chrono::steady_clock::now();
  const SimTime sim1 = arr.sim_time();

  if (snap_out) *snap_out = arr.metrics_snapshot();

  Throughput t;
  const double wall_s =
      std::chrono::duration<double>(wall1 - wall0).count();
  const double sim_s = static_cast<double>(sim1 - sim0) / 1e9;
  if (wall_s > 0) t.wall_mops = kOps / wall_s / 1e6;
  if (sim_s > 0) t.sim_mops = kOps / sim_s / 1e6;
  return t;
}

// -- Part B -------------------------------------------------------------------

constexpr std::uint64_t kDrainKeys = 40'000;
constexpr std::size_t kDrainBatch = 4096;

/// Queues one large zipfian get burst and drains it once; returns index
/// flash reads per op.
double run_drain(bool grouped) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(256ull << 20);
  cfg.dram_cache_bytes = 4 * cfg.geometry.page_size;  // 4-page index cache
  cfg.rhik.anticipated_keys = kDrainKeys;
  cfg.batch_drain_grouping = grouped;
  kvssd::KvssdDevice dev(cfg);
  bench::load_keys(dev, kDrainKeys, 256);

  workload::KeyIdStream ids(workload::KeyPattern::kZipfian, kDrainKeys,
                            /*seed=*/7);
  dev.index().reset_op_stats();
  for (std::size_t i = 0; i < kDrainBatch; ++i) {
    dev.submit_get(workload::key_for_id(ids.next(), 16));
  }
  dev.drain();
  return static_cast<double>(dev.index().op_stats().flash_reads) / kDrainBatch;
}

}  // namespace

int main() {
  bench::heading("Sharded array scaling + index-aware batch drain",
                 "multi-device front-end (§II-A array deployments)");

  const std::vector<std::uint32_t> shard_counts{1, 2, 4, 8};
  bench::note("array: %llu MiB capacity / %llu MiB DRAM split across shards,",
              static_cast<unsigned long long>(kArrayCapacity >> 20),
              static_cast<unsigned long long>(kArrayDram >> 20));
  bench::note("%llu keys x %uB values preloaded, %llu async ops measured",
              static_cast<unsigned long long>(kKeys), kValueSize,
              static_cast<unsigned long long>(kOps));
  bench::note("device clock = simulated array time (max across shard clocks);");
  bench::note("wall clock adds host-side thread scaling (bounded by cores)");

  double one_shard_read = 0, four_shard_read = 0;
  obs::MetricsSnapshot array_snap;
  for (const unsigned get_pct : {95u, 5u}) {
    std::printf("\n%s mix (%u%% get / %u%% put)\n",
                get_pct >= 50 ? "read-heavy" : "write-heavy", get_pct,
                100 - get_pct);
    std::printf("%-8s %18s %18s %10s\n", "shards", "wall Mops/s",
                "device Mops/s", "scaling");
    double base_sim = 0;
    for (const std::uint32_t n : shard_counts) {
      const bool capture = get_pct == 95 && n == 4;
      const Throughput t =
          run_mix(n, get_pct, capture ? &array_snap : nullptr);
      if (n == 1) base_sim = t.sim_mops;
      const double scaling = base_sim > 0 ? t.sim_mops / base_sim : 0;
      std::printf("%-8u %18.3f %18.3f %9.2fx\n", n, t.wall_mops, t.sim_mops,
                  scaling);
      if (get_pct == 95 && n == 1) one_shard_read = t.sim_mops;
      if (get_pct == 95 && n == 4) four_shard_read = t.sim_mops;
    }
  }
  const double speedup =
      one_shard_read > 0 ? four_shard_read / one_shard_read : 0;
  std::printf("\n4-shard read-heavy speedup (device clock): %.2fx"
              " (target >= 2x)\n", speedup);

  std::printf("\nshard-merged array metrics (4 shards, read-heavy mix)\n");
  bench::print_stage_metrics(array_snap);
  bench::note("frontend.gets=%llu frontend.puts=%llu across %lld shards",
              static_cast<unsigned long long>(array_snap.counter("frontend.gets")),
              static_cast<unsigned long long>(array_snap.counter("frontend.puts")),
              static_cast<long long>(array_snap.gauge("frontend.shards")));
  bench::maybe_export_json(array_snap);

  std::printf("\nindex-aware batch drain — zipfian get burst of %zu on one"
              " device\n", kDrainBatch);
  bench::note("%llu keys, 4-page index cache: random completion order"
              " thrashes,", static_cast<unsigned long long>(kDrainKeys));
  bench::note("bucket-grouped order loads each record page ~once per drain");
  const double serial = run_drain(/*grouped=*/false);
  const double grouped = run_drain(/*grouped=*/true);
  std::printf("%-24s %12.3f index flash reads/op\n", "serial drain", serial);
  std::printf("%-24s %12.3f index flash reads/op\n", "grouped drain", grouped);
  std::printf("reduction: %.2fx fewer index flash reads/op\n",
              grouped > 0 ? serial / grouped : 0);
  return 0;
}
