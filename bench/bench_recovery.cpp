// Crash-recovery cost model: how long a full-device log scan takes, what
// the per-page CRC verification adds, and what a torn log costs in
// dropped pages.
//
// A KVSSD has no mapping-table snapshot to load — after power loss the
// whole data zone is scanned and the hash index rebuilt (the price of
// the paper's index-in-flash design). This bench reports host-side scan
// throughput across value sizes, the raw CRC32 rate that bounds it, and
// the truncation behaviour when the tail of the log was torn mid-program.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "flash/fault_injector.hpp"
#include "kvssd/recovery.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void crc_rate() {
  bench::heading("CRC32 verification rate (slicing-by-8)",
                 "recovery cost model — CRC bound");
  Bytes buf(1u << 20);
  Rng rng(42);
  for (auto& b : buf) b = static_cast<Bytes::value_type>(rng.next());
  // Warm up, then time enough passes to dominate clock noise.
  std::uint32_t sink = crc32(buf);
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kPasses = 2048;
  for (int i = 0; i < kPasses; ++i) sink ^= crc32(buf);
  const double secs = seconds_since(t0);
  std::printf("  %8.2f MB/s  (sink %08x)\n",
              static_cast<double>(kPasses) / secs, sink);
  bench::note("every recovered page is CRC-checked; this rate is the "
              "upper bound on scan throughput");
}

void scan_throughput(std::uint32_t value_size) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(64ull << 20);
  cfg.dram_cache_bytes = 8ull << 20;

  // Fill ~50% of the device, then a clean flush: the recovery scan walks
  // every programmed page.
  const std::uint64_t target =
      (cfg.geometry.capacity_bytes() / 2) /
      ftl::FlashKvStore::pair_bytes(16, value_size);
  cfg.rhik.anticipated_keys = target;  // index sized for the load phase
  auto dev = std::make_unique<kvssd::KvssdDevice>(cfg);
  if (!bench::load_keys(*dev, target, value_size)) {
    std::printf("  %-8s load failed (device full)\n",
                bench::size_label(value_size).c_str());
    return;
  }
  if (!ok(dev->flush())) return;

  auto nand = dev->release_nand();
  dev.reset();
  const auto t0 = std::chrono::steady_clock::now();
  kvssd::RecoveryStats stats;
  auto recovered =
      kvssd::KvssdDevice::recover(cfg, std::move(nand), &stats);
  const double secs = seconds_since(t0);
  if (!recovered.has_value()) return;

  const double scanned_mib =
      static_cast<double>(stats.blocks_adopted) *
      cfg.geometry.block_bytes() / (1u << 20);
  std::printf(
      "  %-8s %8.1f MB/s scan   %9.0f keys/s   %6llu keys  %4llu blocks\n",
      bench::size_label(value_size).c_str(), scanned_mib / secs,
      static_cast<double>(stats.keys_recovered) / secs,
      static_cast<unsigned long long>(stats.keys_recovered),
      static_cast<unsigned long long>(stats.blocks_adopted));
}

void torn_log() {
  bench::heading("Torn-log truncation after a mid-flush power cut",
                 "recovery correctness — CRC-guided truncation");
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(64ull << 20);
  cfg.dram_cache_bytes = 8ull << 20;
  auto dev = std::make_unique<kvssd::KvssdDevice>(cfg);
  if (!bench::load_keys(*dev, 20000, 512)) return;
  if (!ok(dev->flush())) return;

  // More writes, then tear the log tail mid-program.
  flash::FaultInjector fi(7);
  dev->nand().set_fault_injector(&fi);
  Bytes value(512);
  for (std::uint64_t id = 0; id < 4000; ++id) {
    workload::fill_value(id, value);
    (void)dev->put(workload::key_for_id(20000 + id, 16), value);
  }
  fi.arm_after(3, flash::TornWritePolicy::kGarbage);
  (void)dev->flush();  // dies at the cut

  auto nand = dev->release_nand();
  dev.reset();
  const auto t0 = std::chrono::steady_clock::now();
  kvssd::RecoveryStats stats;
  auto recovered =
      kvssd::KvssdDevice::recover(cfg, std::move(nand), &stats);
  const double secs = seconds_since(t0);
  if (!recovered.has_value()) return;
  std::printf(
      "  recovered in %.3fs: %llu keys, %llu torn pages dropped, "
      "%llu incomplete extents, %llu dead blocks swept\n",
      secs, static_cast<unsigned long long>(stats.keys_recovered),
      static_cast<unsigned long long>(stats.torn_pages_dropped),
      static_cast<unsigned long long>(stats.incomplete_extents_dropped),
      static_cast<unsigned long long>(stats.dead_blocks_reclaimed));
  bench::note("torn pages are detected by the device-stamped spare CRC and "
              "truncated from the per-block log, never parsed");

  // The recovered device's unified snapshot carries the scan's
  // `recovery.*` counters alongside the post-recovery device state.
  const obs::MetricsSnapshot snap = (*recovered)->metrics_snapshot();
  std::printf(
      "  snapshot: recovery.keys_recovered=%llu recovery.torn_pages_dropped="
      "%llu device.key_count=%lld\n",
      static_cast<unsigned long long>(snap.counter("recovery.keys_recovered")),
      static_cast<unsigned long long>(
          snap.counter("recovery.torn_pages_dropped")),
      static_cast<long long>(snap.gauge("device.key_count")));
  bench::maybe_export_json(snap);
}

}  // namespace

int main() {
  crc_rate();

  bench::heading("Recovery scan throughput vs value size (64 MB device, 50% full)",
                 "recovery cost model — full-log scan + index rebuild");
  std::printf("  %-8s %14s %15s %12s %10s\n", "value", "scan", "rebuild",
              "keys", "blocks");
  for (const std::uint32_t vs : {64u, 512u, 4096u, 8192u}) {
    scan_throughput(vs);
  }
  bench::note("small values stress the index rebuild (more keys per page); "
              "large values approach the raw CRC bound");

  torn_log();
  return 0;
}
