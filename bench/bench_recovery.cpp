// Crash-recovery cost model: how long a full-device log scan takes, what
// the per-page CRC verification adds, what a torn log costs in dropped
// pages — and how index checkpointing (DESIGN.md §8) collapses restart
// cost from O(device) to O(dirty).
//
// Without a checkpoint the whole data zone is scanned and the hash index
// rebuilt (the price of the paper's index-in-flash design). With the
// two-slot checkpoint + journal ring enabled, recovery reads the newest
// slot, replays the journal tail, and probes one spare per block for
// ghost pairs. The bench prints three acceptance guards: the checkpointed
// restart must read <= 10% of the pages a full scan reads on the
// standard 4 GiB device, steady-state journaling must cost < 5% of
// device clock, and recovery must fall back to the full scan when both
// checkpoint slots are corrupted.
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "bench_util.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "flash/fault_injector.hpp"
#include "kvssd/checkpoint.hpp"
#include "kvssd/recovery.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void crc_rate() {
  bench::heading("CRC32 verification rate (slicing-by-8)",
                 "recovery cost model — CRC bound");
  Bytes buf(1u << 20);
  Rng rng(42);
  for (auto& b : buf) b = static_cast<Bytes::value_type>(rng.next());
  // Warm up, then time enough passes to dominate clock noise.
  std::uint32_t sink = crc32(buf);
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kPasses = 2048;
  for (int i = 0; i < kPasses; ++i) sink ^= crc32(buf);
  const double secs = seconds_since(t0);
  std::printf("  %8.2f MB/s  (sink %08x)\n",
              static_cast<double>(kPasses) / secs, sink);
  bench::note("every recovered page is CRC-checked; this rate is the "
              "upper bound on scan throughput");
}

void scan_throughput(std::uint32_t value_size) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(64ull << 20);
  cfg.dram_cache_bytes = 8ull << 20;

  // Fill ~50% of the device, then a clean flush: the recovery scan walks
  // every programmed page.
  const std::uint64_t target =
      (cfg.geometry.capacity_bytes() / 2) /
      ftl::FlashKvStore::pair_bytes(16, value_size);
  cfg.rhik.anticipated_keys = target;  // index sized for the load phase
  auto dev = std::make_unique<kvssd::KvssdDevice>(cfg);
  if (!bench::load_keys(*dev, target, value_size)) {
    std::printf("  %-8s load failed (device full)\n",
                bench::size_label(value_size).c_str());
    return;
  }
  if (!ok(dev->flush())) return;

  auto nand = dev->release_nand();
  dev.reset();
  const auto t0 = std::chrono::steady_clock::now();
  kvssd::RecoveryStats stats;
  auto recovered =
      kvssd::KvssdDevice::recover(cfg, std::move(nand), &stats);
  const double secs = seconds_since(t0);
  if (!recovered.has_value()) return;

  const double scanned_mib =
      static_cast<double>(stats.blocks_adopted) *
      cfg.geometry.block_bytes() / (1u << 20);
  std::printf(
      "  %-8s %8.1f MB/s scan   %9.0f keys/s   %6llu keys  %4llu blocks\n",
      bench::size_label(value_size).c_str(), scanned_mib / secs,
      static_cast<double>(stats.keys_recovered) / secs,
      static_cast<unsigned long long>(stats.keys_recovered),
      static_cast<unsigned long long>(stats.blocks_adopted));
}

void torn_log() {
  bench::heading("Torn-log truncation after a mid-flush power cut",
                 "recovery correctness — CRC-guided truncation");
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(64ull << 20);
  cfg.dram_cache_bytes = 8ull << 20;
  auto dev = std::make_unique<kvssd::KvssdDevice>(cfg);
  if (!bench::load_keys(*dev, 20000, 512)) return;
  if (!ok(dev->flush())) return;

  // More writes, then tear the log tail mid-program.
  flash::FaultInjector fi(7);
  dev->nand().set_fault_injector(&fi);
  Bytes value(512);
  for (std::uint64_t id = 0; id < 4000; ++id) {
    workload::fill_value(id, value);
    (void)dev->put(workload::key_for_id(20000 + id, 16), value);
  }
  fi.arm_after(3, flash::TornWritePolicy::kGarbage);
  (void)dev->flush();  // dies at the cut

  auto nand = dev->release_nand();
  dev.reset();
  const auto t0 = std::chrono::steady_clock::now();
  kvssd::RecoveryStats stats;
  auto recovered =
      kvssd::KvssdDevice::recover(cfg, std::move(nand), &stats);
  const double secs = seconds_since(t0);
  if (!recovered.has_value()) return;
  std::printf(
      "  recovered in %.3fs: %llu keys, %llu torn pages dropped, "
      "%llu incomplete extents, %llu dead blocks swept\n",
      secs, static_cast<unsigned long long>(stats.keys_recovered),
      static_cast<unsigned long long>(stats.torn_pages_dropped),
      static_cast<unsigned long long>(stats.incomplete_extents_dropped),
      static_cast<unsigned long long>(stats.dead_blocks_reclaimed));
  bench::note("torn pages are detected by the device-stamped spare CRC and "
              "truncated from the per-block log, never parsed");

  // The recovered device's unified snapshot carries the scan's
  // `recovery.*` counters alongside the post-recovery device state.
  const obs::MetricsSnapshot snap = (*recovered)->metrics_snapshot();
  std::printf(
      "  snapshot: recovery.keys_recovered=%llu recovery.torn_pages_dropped="
      "%llu device.key_count=%lld\n",
      static_cast<unsigned long long>(snap.counter("recovery.keys_recovered")),
      static_cast<unsigned long long>(
          snap.counter("recovery.torn_pages_dropped")),
      static_cast<long long>(snap.gauge("device.key_count")));
  bench::maybe_export_json(snap);
}

void guard(bool pass, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  guard: ");
  std::vprintf(fmt, args);
  std::printf(" — %s\n", pass ? "PASS" : "FAIL");
  va_end(args);
}

// O(dirty) restart on the standard 4 GiB device: load 50% full (the
// same fill level as the scan-throughput rows above), take a checkpoint,
// dirty a few thousand pairs past it, power-cut, and compare the pages
// recovery reads on the fast path against the full-scan rebuild of the
// very same array (forced by erasing both checkpoint slots — which
// doubles as the fallback demonstration).
void checkpointed_restart() {
  bench::heading(
      "Checkpointed restart vs full-scan rebuild (4 GiB device, 50% full)",
      "DESIGN.md §8 — O(dirty) restart acceptance guards");
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(4ull << 30);
  cfg.dram_cache_bytes = 32ull << 20;
  cfg.checkpoint.enabled = true;

  constexpr std::uint32_t kValueSize = 4096;
  const std::uint64_t target =
      (cfg.geometry.capacity_bytes() / 2) /
      ftl::FlashKvStore::pair_bytes(16, kValueSize);
  cfg.rhik.anticipated_keys = target;
  auto dev = std::make_unique<kvssd::KvssdDevice>(cfg);
  if (!bench::load_keys(*dev, target, kValueSize)) {
    std::printf("  load failed (device full)\n");
    return;
  }
  if (!ok(dev->checkpoint_now())) return;
  // Dirty delta past the checkpoint: overwrites that only the journal
  // tail covers.
  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < 4000; ++id) {
    workload::fill_value(id + 1, value);
    (void)dev->put(workload::key_for_id(id, 16), value);
  }
  if (!ok(dev->flush())) return;

  auto nand = dev->release_nand();
  dev.reset();
  auto t0 = std::chrono::steady_clock::now();
  kvssd::RecoveryStats fast;
  auto recovered = kvssd::KvssdDevice::recover(cfg, std::move(nand), &fast);
  const double fast_secs = seconds_since(t0);
  if (!recovered.has_value()) return;
  std::printf(
      "  fast restart:  %8llu pages read  %6.3fs  (checkpoint v%llu, "
      "%llu journal records replayed, %llu keys)\n",
      static_cast<unsigned long long>(fast.pages_read), fast_secs,
      static_cast<unsigned long long>(fast.checkpoint_version),
      static_cast<unsigned long long>(fast.journal_records_replayed),
      static_cast<unsigned long long>(fast.keys_recovered));
  guard(fast.checkpoint_restored == 1 && fast.full_scan_fallback == 0,
        "restart restored from checkpoint + journal tail");

  // Corrupt BOTH checkpoint slots on the same array; recovery must fall
  // back to the full-device scan and still rebuild every key.
  nand = (*recovered)->release_nand();
  recovered->reset();
  const std::uint32_t reserved =
      kvssd::CheckpointManager::reserved_blocks(cfg.checkpoint);
  const std::uint32_t first_slot = cfg.geometry.num_blocks - reserved;
  for (std::uint32_t b = 0; b < 2 * cfg.checkpoint.slot_blocks; ++b) {
    (void)nand->erase_block(first_slot + b);
  }
  t0 = std::chrono::steady_clock::now();
  kvssd::RecoveryStats full;
  auto rescanned = kvssd::KvssdDevice::recover(cfg, std::move(nand), &full);
  const double full_secs = seconds_since(t0);
  if (!rescanned.has_value()) return;
  std::printf(
      "  full rebuild:  %8llu pages read  %6.3fs  (%llu data pages "
      "scanned, %llu keys)\n",
      static_cast<unsigned long long>(full.pages_read), full_secs,
      static_cast<unsigned long long>(full.data_pages_scanned),
      static_cast<unsigned long long>(full.keys_recovered));
  guard(full.full_scan_fallback == 1 && full.checkpoint_restored == 0,
        "both slots corrupted -> recovery fell back to the full scan");
  guard(full.keys_recovered == fast.keys_recovered,
        "fallback rebuilt the same %llu keys the fast path restored",
        static_cast<unsigned long long>(full.keys_recovered));

  const double ratio = full.pages_read == 0
                           ? 1.0
                           : static_cast<double>(fast.pages_read) /
                                 static_cast<double>(full.pages_read);
  guard(ratio <= 0.10,
        "checkpointed restart read %.1f%% of the full-scan pages (<= 10%%)",
        100.0 * ratio);
  bench::note("fast-path reads = checkpoint payload + journal tail + one "
              "spare probe per block for ghost pairs above the journal "
              "horizon");
}

// Steady-state cost of the always-on journal: the same load + overwrite
// workload with checkpointing off vs on, compared on the *device* clock
// (simulated NAND + firmware time), so the guard measures the extra
// programs the journal and incremental checkpoint pumps issue, not host
// CPU noise.
std::uint64_t steady_state_device_ns(bool checkpoints,
                                     kvssd::CheckpointStats* ckpt_stats) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(512ull << 20);
  cfg.dram_cache_bytes = 16ull << 20;
  cfg.checkpoint.enabled = checkpoints;

  constexpr std::uint32_t kValueSize = 4096;
  constexpr std::uint64_t kKeys = 20000;
  constexpr std::uint64_t kUpdates = 40000;
  cfg.rhik.anticipated_keys = kKeys;
  kvssd::KvssdDevice dev(cfg);
  if (!bench::load_keys(dev, kKeys, kValueSize)) return 0;
  Rng rng(11);
  Bytes value(kValueSize);
  for (std::uint64_t u = 0; u < kUpdates; ++u) {
    const std::uint64_t id = rng.next() % kKeys;
    workload::fill_value(id ^ u, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) return 0;
    if ((u + 1) % 512 == 0 && !ok(dev.flush())) return 0;
  }
  if (!ok(dev.flush())) return 0;
  if (checkpoints && ckpt_stats != nullptr && dev.checkpoint_manager()) {
    *ckpt_stats = dev.checkpoint_manager()->stats();
  }
  return dev.nand().clock().now();
}

void journaling_overhead() {
  bench::heading(
      "Steady-state journaling overhead (device clock, 512 MiB, 60k ops)",
      "DESIGN.md §8 — < 5% device-clock overhead guard");
  const std::uint64_t base_ns = steady_state_device_ns(false, nullptr);
  kvssd::CheckpointStats cs;
  const std::uint64_t ckpt_ns = steady_state_device_ns(true, &cs);
  if (base_ns == 0 || ckpt_ns == 0) {
    std::printf("  workload failed\n");
    return;
  }
  const double overhead =
      100.0 * (static_cast<double>(ckpt_ns) - static_cast<double>(base_ns)) /
      static_cast<double>(base_ns);
  std::printf(
      "  baseline %.3f ms   checkpointed %.3f ms   (+%llu journal pages, "
      "%llu records, %llu checkpoints)\n",
      static_cast<double>(base_ns) / 1e6, static_cast<double>(ckpt_ns) / 1e6,
      static_cast<unsigned long long>(cs.journal_pages_written),
      static_cast<unsigned long long>(cs.journal_records),
      static_cast<unsigned long long>(cs.checkpoints_completed));
  guard(overhead < 5.0,
        "journaling + checkpoint pumps cost %.2f%% device clock (< 5%%)",
        overhead);
  bench::note("journal records are 14 bytes, buffered in RAM and flushed "
              "one page per device flush / page-fill — the delta is a few "
              "page programs per thousand ops");
}

}  // namespace

int main() {
  crc_rate();

  bench::heading("Recovery scan throughput vs value size (64 MB device, 50% full)",
                 "recovery cost model — full-log scan + index rebuild");
  std::printf("  %-8s %14s %15s %12s %10s\n", "value", "scan", "rebuild",
              "keys", "blocks");
  for (const std::uint32_t vs : {64u, 512u, 4096u, 8192u}) {
    scan_throughput(vs);
  }
  bench::note("small values stress the index rebuild (more keys per page); "
              "large values approach the raw CRC bound");

  torn_log();
  checkpointed_restart();
  journaling_overhead();
  return 0;
}
