// Consistent scans and their cost to the foreground (DESIGN.md §13).
//
// Two sections. The first streams a full-prefix scan through the
// SNIA-style handle iterator and reports keys/s (sim clock) at several
// batch sizes — the streaming API's headline number, plus what the
// snapshot machinery adds over the deprecated collect-all scan. The
// second measures what a *pinned* scan costs everyone else: the same
// overwrite/get churn runs with no snapshot open (baseline) and then
// with a scan holding a pin across the whole churn (every overwrite of
// a scanned-epoch version is deferred to the retainer instead of freed,
// and the scan drains batches between op bursts). Acceptance guard:
// point-op p99 under the pinned scan stays within 2x the scan-free
// baseline — MVCC retention must price in as bookkeeping, not as a
// foreground stall.
#include <cstdio>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "kvssd/device.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

constexpr std::uint32_t kValueSize = 256;
constexpr std::uint32_t kKeySize = 16;

kvssd::DeviceConfig device_config() {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(128ull << 20);
  cfg.dram_cache_bytes = 4ull << 20;
  cfg.prefix_signatures = true;  // iterator class filter needs them
  return cfg;
}

void guard(bool pass, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  guard: ");
  std::vprintf(fmt, args);
  std::printf(" — %s\n", pass ? "PASS" : "FAIL");
  va_end(args);
}

// All bench keys share the 4-byte class window "k000" (ids < 16^12).
const Bytes kPrefix{'k', '0', '0', '0'};

/// bench::load_keys with the failing op surfaced (a capacity-sizing
/// mistake should name itself, not print "load failed").
bool load_or_explain(kvssd::KvssdDevice& dev, std::uint64_t n) {
  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < n; ++id) {
    workload::fill_value(id, value);
    const Status s = dev.put(workload::key_for_id(id, kKeySize), value);
    if (!ok(s)) {
      std::printf("  load failed at key %llu/%llu: %.*s\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(n),
                  static_cast<int>(to_string(s).size()), to_string(s).data());
      return false;
    }
  }
  return true;
}

// -- Section 1: streaming scan throughput -------------------------------------

void scan_throughput(std::uint64_t num_keys, bool* all_pass) {
  bench::heading("Full-prefix streaming scan throughput",
                 "DESIGN.md §13 — handle iterator vs collect-all");
  bench::note("%llu keys, %uB values, fresh device per row; keys/s is",
              static_cast<unsigned long long>(num_keys), kValueSize);
  bench::note("simulated-device time for the whole drain (open..exhausted)");

  std::printf("\n  %-18s %-12s %-14s %-10s\n", "mode", "batch", "keys",
              "Mkeys/s(sim)");
  for (const std::size_t batch : {32ul, 256ul, 4096ul}) {
    kvssd::KvssdDevice dev(device_config());
    if (!load_or_explain(dev, num_keys)) {
      *all_pass = false;
      return;
    }
    const SimTime t0 = dev.clock().now();
    auto it = dev.kvs_open_iterator(kPrefix, nullptr);
    if (!it) {
      std::printf("  open_iterator failed\n");
      *all_pass = false;
      return;
    }
    std::uint64_t scanned = 0;
    std::vector<Bytes> keys;
    for (;;) {
      keys.clear();
      const Status s = dev.kvs_iterator_next(*it, batch, &keys);
      scanned += keys.size();
      if (s == Status::kNotFound) break;
      if (!ok(s)) {
        std::printf("  iterator_next: %.*s\n",
                    static_cast<int>(to_string(s).size()), to_string(s).data());
        *all_pass = false;
        return;
      }
    }
    dev.kvs_close_iterator(*it);
    const SimTime dt = dev.clock().now() - t0;
    const double mkeys_s =
        dt == 0 ? 0.0
                : static_cast<double>(scanned) * 1000.0 / static_cast<double>(dt);
    std::printf("  %-18s %-12zu %-14llu %-10.2f\n", "handle-iterator", batch,
                static_cast<unsigned long long>(scanned), mkeys_s);
    if (scanned != num_keys) {
      guard(false, "scan returned %llu of %llu keys",
            static_cast<unsigned long long>(scanned),
            static_cast<unsigned long long>(num_keys));
      *all_pass = false;
    }
  }
}

// -- Section 2: point-op tail under a pinned scan -----------------------------

struct ChurnResult {
  std::uint64_t p99_put_ns = 0;
  std::uint64_t p99_get_ns = 0;
  std::uint64_t scanned = 0;
  std::uint64_t retained_peak = 0;
  bool scan_completed = true;
  obs::MetricsSnapshot metrics;
};

/// Uniform overwrite/get churn over a preloaded keyspace; with
/// `pinned_scan`, a snapshot-bound iterator drains one batch every 64
/// ops, reopening at exhaustion so a pin is held for the WHOLE churn.
ChurnResult run_churn(std::uint64_t num_keys, std::uint64_t ops,
                      bool pinned_scan, bool* all_pass) {
  ChurnResult r;
  kvssd::KvssdDevice dev(device_config());
  if (!load_or_explain(dev, num_keys)) {
    *all_pass = false;
    return r;
  }

  api::SnapshotHandle snap{};
  std::uint64_t iter = 0;
  const auto reopen = [&]() -> bool {
    auto s = dev.open_snapshot();
    if (!s) return false;
    snap = *s;
    auto it = dev.kvs_open_iterator(kPrefix, &snap);
    if (!it) {
      dev.release_snapshot(snap);
      return false;
    }
    iter = *it;
    return true;
  };
  const auto close_scan = [&] {
    dev.kvs_close_iterator(iter);
    dev.release_snapshot(snap);
  };
  if (pinned_scan && !reopen()) {
    *all_pass = false;
    return r;
  }

  Rng rng(0x5ca9be9c);
  Bytes value(kValueSize);
  Bytes out;
  std::vector<Bytes> batch;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t id = rng.next_below(num_keys);
    if (i % 10 == 9) {
      dev.get(workload::key_for_id(id, kKeySize), &out);
    } else {
      workload::fill_value(id * 131 + i, value);
      const Status s = dev.put(workload::key_for_id(id, kKeySize), value);
      if (!ok(s)) {
        std::printf("  churn put: %.*s\n",
                    static_cast<int>(to_string(s).size()), to_string(s).data());
        *all_pass = false;
        break;
      }
    }
    if (pinned_scan && i % 64 == 63) {
      batch.clear();
      const Status s = dev.kvs_iterator_next(iter, 128, &batch);
      r.scanned += batch.size();
      if (s == Status::kNotFound) {
        close_scan();
        if (!reopen()) {
          r.scan_completed = false;
          break;
        }
      } else if (s == Status::kSnapshotTooOld) {
        // Retention evicted the pin: legitimate under pressure — note it
        // and re-pin rather than failing the run.
        close_scan();
        r.scan_completed = false;
        if (!reopen()) break;
      } else if (!ok(s)) {
        std::printf("  scan next: %.*s\n",
                    static_cast<int>(to_string(s).size()), to_string(s).data());
        *all_pass = false;
        break;
      }
      r.retained_peak =
          std::max(r.retained_peak, dev.snapshots().registry.retained_bytes());
    }
  }
  if (pinned_scan) close_scan();

  r.metrics = dev.metrics_snapshot();
  if (const Histogram* h = r.metrics.timer("op.put.total_ns")) {
    r.p99_put_ns = h->percentile(99);
  }
  if (const Histogram* h = r.metrics.timer("op.get.total_ns")) {
    r.p99_get_ns = h->percentile(99);
  }
  return r;
}

void scan_isolation(std::uint64_t num_keys, std::uint64_t ops,
                    bool* all_pass) {
  bench::heading("Point-op tail under a pinned scan",
                 "DESIGN.md §13 — retention prices in as bookkeeping");
  bench::note("%llu keys churned by %llu uniform ops (90%% overwrite /",
              static_cast<unsigned long long>(num_keys),
              static_cast<unsigned long long>(ops));
  bench::note("10%% get); scan arm drains a 128-key batch every 64 ops,");
  bench::note("re-pinning at exhaustion so retention never goes idle");

  const ChurnResult base = run_churn(num_keys, ops, /*pinned_scan=*/false,
                                     all_pass);
  const ChurnResult scan = run_churn(num_keys, ops, /*pinned_scan=*/true,
                                     all_pass);

  std::printf("\n  %-18s %-14s %-14s %-12s %-14s\n", "arm", "p99-put(us)",
              "p99-get(us)", "scanned", "peak-retained");
  std::printf("  %-18s %-14.1f %-14.1f %-12s %-14s\n", "no-scan",
              static_cast<double>(base.p99_put_ns) / 1000.0,
              static_cast<double>(base.p99_get_ns) / 1000.0, "-", "-");
  std::printf("  %-18s %-14.1f %-14.1f %-12llu %-14s\n", "pinned-scan",
              static_cast<double>(scan.p99_put_ns) / 1000.0,
              static_cast<double>(scan.p99_get_ns) / 1000.0,
              static_cast<unsigned long long>(scan.scanned),
              bench::size_label(scan.retained_peak).c_str());

  const bool put_ok = scan.p99_put_ns <= 2 * base.p99_put_ns;
  const bool get_ok = scan.p99_get_ns <= 2 * base.p99_get_ns;
  guard(put_ok, "p99 put %.1f us under pinned scan vs %.1f us baseline (<= 2x)",
        static_cast<double>(scan.p99_put_ns) / 1000.0,
        static_cast<double>(base.p99_put_ns) / 1000.0);
  guard(get_ok, "p99 get %.1f us under pinned scan vs %.1f us baseline (<= 2x)",
        static_cast<double>(scan.p99_get_ns) / 1000.0,
        static_cast<double>(base.p99_get_ns) / 1000.0);
  guard(scan.scanned > 0, "scan streamed %llu keys while churn ran",
        static_cast<unsigned long long>(scan.scanned));
  *all_pass = *all_pass && put_ok && get_ok && scan.scanned > 0;

  if (const Histogram* h = scan.metrics.timer("op.put.total_ns")) {
    (void)h;
    bench::print_stage_metrics(scan.metrics);
  }
  bench::maybe_export_json(scan.metrics);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  const std::uint64_t num_keys = smoke ? 8'000 : 60'000;
  const std::uint64_t churn_ops = smoke ? 30'000 : 300'000;

  bool all_pass = true;
  scan_throughput(num_keys, &all_pass);
  scan_isolation(num_keys, churn_ops, &all_pass);
  if (!all_pass) {
    std::printf("\n  RESULT: FAIL\n");
    return 1;
  }
  std::printf("\n  RESULT: PASS\n");
  return 0;
}
