// Microbenchmarks of RHIK's hot primitives (google-benchmark): key
// hashing, hopscotch table ops, record-page codec, index and device ops.
// These report *host* time for the implementation itself, complementing
// the simulated-clock figure benches.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "hash/hopscotch.hpp"
#include "hash/murmur.hpp"
#include "index/rhik/record_page.hpp"
#include "index/rhik/rhik_index.hpp"
#include "kvssd/device.hpp"
#include "workload/keygen.hpp"

namespace {

using namespace rhik;

void BM_Murmur2_64(benchmark::State& state) {
  const Bytes key = workload::key_for_id(12345, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur2_64(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur2_64)->Arg(16)->Arg(128)->Arg(1024);

void BM_Murmur3_128(benchmark::State& state) {
  const Bytes key = workload::key_for_id(12345, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur3_128(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur3_128)->Arg(16)->Arg(128);

void BM_HopscotchInsertFind(benchmark::State& state) {
  const auto fill = static_cast<double>(state.range(0)) / 100.0;
  hash::HopscotchTable table(1927, 32);
  Rng rng(1);
  std::vector<std::uint64_t> sigs;
  while (table.occupancy() < fill) {
    const std::uint64_t sig = rng.next();
    if (ok(table.insert(sig, 1))) sigs.push_back(sig);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(sigs[i++ % sigs.size()]));
  }
}
BENCHMARK(BM_HopscotchInsertFind)->Arg(50)->Arg(80);

void BM_RecordPageEncode(benchmark::State& state) {
  index::RhikConfig cfg;
  index::RecordPageCodec codec(cfg, 32 * 1024);
  hash::HopscotchTable table = codec.make_table();
  Rng rng(2);
  while (table.occupancy() < 0.8) table.insert(rng.next(), 1);
  Bytes page(32 * 1024);
  for (auto _ : state) {
    codec.encode(table, page);
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_RecordPageEncode);

void BM_RecordPageDecode(benchmark::State& state) {
  index::RhikConfig cfg;
  index::RecordPageCodec codec(cfg, 32 * 1024);
  hash::HopscotchTable table = codec.make_table();
  Rng rng(3);
  while (table.occupancy() < 0.8) table.insert(rng.next(), 1);
  Bytes page(32 * 1024);
  codec.encode(table, page);
  hash::HopscotchTable out = codec.make_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(page, &out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_RecordPageDecode);

void BM_RhikCachedGet(benchmark::State& state) {
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::with_capacity(256ull << 20),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 4);
  index::RhikConfig cfg;
  cfg.anticipated_keys = 100'000;
  index::RhikIndex index(&nand, &alloc, cfg, 64ull << 20);
  Rng rng(4);
  std::vector<std::uint64_t> sigs;
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(index.put(sig, i))) sigs.push_back(sig);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.get(sigs[i++ % sigs.size()]));
  }
}
BENCHMARK(BM_RhikCachedGet);

void BM_DevicePutSmall(benchmark::State& state) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(1ull << 30);
  kvssd::KvssdDevice dev(cfg);
  Bytes value(256);
  std::uint64_t id = 0;
  for (auto _ : state) {
    workload::fill_value(id, value);
    benchmark::DoNotOptimize(dev.put(workload::key_for_id(id, 16), value));
    ++id;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_DevicePutSmall);

void BM_ZipfianDraw(benchmark::State& state) {
  Rng rng(5);
  Zipfian zipf(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianDraw);

// -- Observability overhead guard ----------------------------------------------
// Runs the same read-heavy microbench with the obs layer fully on
// (per-op traces sampled every op) and fully off, and asserts the
// device-clock throughput delta stays under 5%. The obs layer charges no
// simulated time by design, so the sim-clock delta must be ~0; host
// wall-clock delta (the real bookkeeping cost) is reported alongside.
struct OverheadRun {
  double device_mops = 0;  ///< ops per simulated second (millions)
  double wall_mops = 0;    ///< ops per host second (millions)
};

OverheadRun run_read_heavy(bool metrics_on) {
  constexpr std::uint64_t kKeys = 20'000;
  constexpr std::uint64_t kOps = 100'000;
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(256ull << 20);
  cfg.rhik.anticipated_keys = kKeys;
  cfg.obs.metrics = metrics_on;
  cfg.obs.trace_sample_every = 1;  // worst case: every op hits the ring
  kvssd::KvssdDevice dev(cfg);

  Bytes value(256);
  for (std::uint64_t id = 0; id < kKeys; ++id) {
    workload::fill_value(id, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
  }

  Rng rng(42);
  Bytes out;
  const SimTime sim0 = dev.clock().now();
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t id = rng.next_below(kKeys);
    benchmark::DoNotOptimize(dev.get(workload::key_for_id(id, 16), &out));
  }
  const auto wall1 = std::chrono::steady_clock::now();
  const SimTime sim1 = dev.clock().now();

  OverheadRun r;
  const double sim_s = static_cast<double>(sim1 - sim0) / 1e9;
  const double wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  if (sim_s > 0) r.device_mops = kOps / sim_s / 1e6;
  if (wall_s > 0) r.wall_mops = kOps / wall_s / 1e6;
  return r;
}

/// Returns 0 when the guard passes, 1 when obs overhead breaks the budget.
int metrics_overhead_guard() {
  std::printf("\n-- metrics overhead guard (read-heavy sync gets) --\n");
  const OverheadRun off = run_read_heavy(/*metrics_on=*/false);
  const OverheadRun on = run_read_heavy(/*metrics_on=*/true);
  const double device_delta =
      off.device_mops > 0
          ? (off.device_mops - on.device_mops) / off.device_mops
          : 0.0;
  const double wall_delta =
      off.wall_mops > 0 ? (off.wall_mops - on.wall_mops) / off.wall_mops : 0.0;
  std::printf("metrics off: %8.3f device Mops/s  %8.3f wall Mops/s\n",
              off.device_mops, off.wall_mops);
  std::printf("metrics on:  %8.3f device Mops/s  %8.3f wall Mops/s"
              " (trace_sample_every=1)\n", on.device_mops, on.wall_mops);
  std::printf("device-clock delta: %+.2f%% (budget < 5%%)   host wall-clock"
              " delta: %+.2f%% (informational)\n",
              device_delta * 100, wall_delta * 100);
  if (device_delta >= 0.05) {
    std::printf("FAIL: obs layer costs simulated time — it must not\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return metrics_overhead_guard();
}
