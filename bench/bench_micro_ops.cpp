// Microbenchmarks of RHIK's hot primitives (google-benchmark): key
// hashing, hopscotch table ops, record-page codec, index and device ops.
// These report *host* time for the implementation itself, complementing
// the simulated-clock figure benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "hash/hopscotch.hpp"
#include "hash/murmur.hpp"
#include "index/rhik/record_page.hpp"
#include "index/rhik/rhik_index.hpp"
#include "kvssd/device.hpp"
#include "workload/keygen.hpp"

namespace {

using namespace rhik;

void BM_Murmur2_64(benchmark::State& state) {
  const Bytes key = workload::key_for_id(12345, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur2_64(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur2_64)->Arg(16)->Arg(128)->Arg(1024);

void BM_Murmur3_128(benchmark::State& state) {
  const Bytes key = workload::key_for_id(12345, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur3_128(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur3_128)->Arg(16)->Arg(128);

void BM_HopscotchInsertFind(benchmark::State& state) {
  const auto fill = static_cast<double>(state.range(0)) / 100.0;
  hash::HopscotchTable table(1927, 32);
  Rng rng(1);
  std::vector<std::uint64_t> sigs;
  while (table.occupancy() < fill) {
    const std::uint64_t sig = rng.next();
    if (ok(table.insert(sig, 1))) sigs.push_back(sig);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(sigs[i++ % sigs.size()]));
  }
}
BENCHMARK(BM_HopscotchInsertFind)->Arg(50)->Arg(80);

void BM_RecordPageEncode(benchmark::State& state) {
  index::RhikConfig cfg;
  index::RecordPageCodec codec(cfg, 32 * 1024);
  hash::HopscotchTable table = codec.make_table();
  Rng rng(2);
  while (table.occupancy() < 0.8) table.insert(rng.next(), 1);
  Bytes page(32 * 1024);
  for (auto _ : state) {
    codec.encode(table, page);
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_RecordPageEncode);

void BM_RecordPageDecode(benchmark::State& state) {
  index::RhikConfig cfg;
  index::RecordPageCodec codec(cfg, 32 * 1024);
  hash::HopscotchTable table = codec.make_table();
  Rng rng(3);
  while (table.occupancy() < 0.8) table.insert(rng.next(), 1);
  Bytes page(32 * 1024);
  codec.encode(table, page);
  hash::HopscotchTable out = codec.make_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(page, &out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_RecordPageDecode);

void BM_RhikCachedGet(benchmark::State& state) {
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::with_capacity(256ull << 20),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 4);
  index::RhikConfig cfg;
  cfg.anticipated_keys = 100'000;
  index::RhikIndex index(&nand, &alloc, cfg, 64ull << 20);
  Rng rng(4);
  std::vector<std::uint64_t> sigs;
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(index.put(sig, i))) sigs.push_back(sig);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.get(sigs[i++ % sigs.size()]));
  }
}
BENCHMARK(BM_RhikCachedGet);

void BM_DevicePutSmall(benchmark::State& state) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(1ull << 30);
  kvssd::KvssdDevice dev(cfg);
  Bytes value(256);
  std::uint64_t id = 0;
  for (auto _ : state) {
    workload::fill_value(id, value);
    benchmark::DoNotOptimize(dev.put(workload::key_for_id(id, 16), value));
    ++id;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_DevicePutSmall);

void BM_ZipfianDraw(benchmark::State& state) {
  Rng rng(5);
  Zipfian zipf(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianDraw);

}  // namespace
