// Microbenchmarks of RHIK's hot primitives (google-benchmark): key
// hashing, hopscotch table ops, record-page codec, index and device ops.
// These report *host* time for the implementation itself, complementing
// the simulated-clock figure benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "api/kvs.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "hash/hopscotch.hpp"
#include "hash/murmur.hpp"
#include "index/rhik/record_page.hpp"
#include "index/rhik/rhik_index.hpp"
#include "kvssd/device.hpp"
#include "workload/keygen.hpp"

namespace {

using namespace rhik;

void BM_Murmur2_64(benchmark::State& state) {
  const Bytes key = workload::key_for_id(12345, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur2_64(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur2_64)->Arg(16)->Arg(128)->Arg(1024);

void BM_Murmur3_128(benchmark::State& state) {
  const Bytes key = workload::key_for_id(12345, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::murmur3_128(key));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Murmur3_128)->Arg(16)->Arg(128);

void BM_HopscotchInsertFind(benchmark::State& state) {
  const auto fill = static_cast<double>(state.range(0)) / 100.0;
  hash::HopscotchTable table(1927, 32);
  Rng rng(1);
  std::vector<std::uint64_t> sigs;
  while (table.occupancy() < fill) {
    const std::uint64_t sig = rng.next();
    if (ok(table.insert(sig, 1))) sigs.push_back(sig);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(sigs[i++ % sigs.size()]));
  }
}
BENCHMARK(BM_HopscotchInsertFind)->Arg(50)->Arg(80);

void BM_RecordPageEncode(benchmark::State& state) {
  index::RhikConfig cfg;
  index::RecordPageCodec codec(cfg, 32 * 1024);
  hash::HopscotchTable table = codec.make_table();
  Rng rng(2);
  while (table.occupancy() < 0.8) table.insert(rng.next(), 1);
  Bytes page(32 * 1024);
  for (auto _ : state) {
    codec.encode(table, page);
    benchmark::DoNotOptimize(page.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_RecordPageEncode);

void BM_RecordPageDecode(benchmark::State& state) {
  index::RhikConfig cfg;
  index::RecordPageCodec codec(cfg, 32 * 1024);
  hash::HopscotchTable table = codec.make_table();
  Rng rng(3);
  while (table.occupancy() < 0.8) table.insert(rng.next(), 1);
  Bytes page(32 * 1024);
  codec.encode(table, page);
  hash::HopscotchTable out = codec.make_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(page, &out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32768);
}
BENCHMARK(BM_RecordPageDecode);

void BM_RhikCachedGet(benchmark::State& state) {
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::with_capacity(256ull << 20),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 4);
  index::RhikConfig cfg;
  cfg.anticipated_keys = 100'000;
  index::RhikIndex index(&nand, &alloc, cfg, 64ull << 20);
  Rng rng(4);
  std::vector<std::uint64_t> sigs;
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(index.put(sig, i))) sigs.push_back(sig);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.get(sigs[i++ % sigs.size()]));
  }
}
BENCHMARK(BM_RhikCachedGet);

void BM_DevicePutSmall(benchmark::State& state) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(1ull << 30);
  kvssd::KvssdDevice dev(cfg);
  Bytes value(256);
  std::uint64_t id = 0;
  for (auto _ : state) {
    workload::fill_value(id, value);
    benchmark::DoNotOptimize(dev.put(workload::key_for_id(id, 16), value));
    ++id;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_DevicePutSmall);

void BM_ZipfianDraw(benchmark::State& state) {
  Rng rng(5);
  Zipfian zipf(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianDraw);

// -- Observability overhead guard ----------------------------------------------
// Runs the same read-heavy microbench with the obs layer fully on
// (per-op traces sampled every op) and fully off, and asserts the
// device-clock throughput delta stays under 5%. The obs layer charges no
// simulated time by design, so the sim-clock delta must be ~0; host
// wall-clock delta (the real bookkeeping cost) is reported alongside.
struct OverheadRun {
  double device_mops = 0;  ///< ops per simulated second (millions)
  double wall_mops = 0;    ///< ops per host second (millions)
};

OverheadRun run_read_heavy(bool metrics_on) {
  constexpr std::uint64_t kKeys = 20'000;
  constexpr std::uint64_t kOps = 100'000;
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(256ull << 20);
  cfg.rhik.anticipated_keys = kKeys;
  cfg.obs.metrics = metrics_on;
  cfg.obs.trace_sample_every = 1;  // worst case: every op hits the ring
  kvssd::KvssdDevice dev(cfg);

  Bytes value(256);
  for (std::uint64_t id = 0; id < kKeys; ++id) {
    workload::fill_value(id, value);
    if (!ok(dev.put(workload::key_for_id(id, 16), value))) break;
  }

  Rng rng(42);
  Bytes out;
  const SimTime sim0 = dev.clock().now();
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t id = rng.next_below(kKeys);
    benchmark::DoNotOptimize(dev.get(workload::key_for_id(id, 16), &out));
  }
  const auto wall1 = std::chrono::steady_clock::now();
  const SimTime sim1 = dev.clock().now();

  OverheadRun r;
  const double sim_s = static_cast<double>(sim1 - sim0) / 1e9;
  const double wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  if (sim_s > 0) r.device_mops = kOps / sim_s / 1e6;
  if (wall_s > 0) r.wall_mops = kOps / wall_s / 1e6;
  return r;
}

/// Returns 0 when the guard passes, 1 when obs overhead breaks the budget.
int metrics_overhead_guard() {
  std::printf("\n-- metrics overhead guard (read-heavy sync gets) --\n");
  const OverheadRun off = run_read_heavy(/*metrics_on=*/false);
  const OverheadRun on = run_read_heavy(/*metrics_on=*/true);
  const double device_delta =
      off.device_mops > 0
          ? (off.device_mops - on.device_mops) / off.device_mops
          : 0.0;
  const double wall_delta =
      off.wall_mops > 0 ? (off.wall_mops - on.wall_mops) / off.wall_mops : 0.0;
  std::printf("metrics off: %8.3f device Mops/s  %8.3f wall Mops/s\n",
              off.device_mops, off.wall_mops);
  std::printf("metrics on:  %8.3f device Mops/s  %8.3f wall Mops/s"
              " (trace_sample_every=1)\n", on.device_mops, on.wall_mops);
  std::printf("device-clock delta: %+.2f%% (budget < 5%%)   host wall-clock"
              " delta: %+.2f%% (informational)\n",
              device_delta * 100, wall_delta * 100);
  if (device_delta >= 0.05) {
    std::printf("FAIL: obs layer costs simulated time — it must not\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

// -- Probe length --------------------------------------------------------------
// Mean/max candidate slots a find() touches in the hopscotch
// neighbourhood at representative fills: the figure the SIMD probe
// compresses (several candidates per vector compare instead of one per
// scalar step).
void probe_length_report() {
  std::printf("\n-- hopscotch probe length (capacity 1927, H=32, %s probe) --\n",
              hash::HopscotchTable::simd_backend());
  for (const int fill_pct : {50, 80}) {
    hash::HopscotchTable table(1927, 32);
    Rng rng(7);
    std::vector<std::uint64_t> sigs;
    while (table.occupancy() < fill_pct / 100.0) {
      const std::uint64_t sig = rng.next();
      if (ok(table.insert(sig, 1))) sigs.push_back(sig);
    }
    std::uint64_t total = 0;
    std::uint32_t max = 0;
    for (const std::uint64_t sig : sigs) {
      const std::uint32_t len = table.probe_length(sig);
      total += len;
      max = std::max(max, len);
    }
    std::printf("fill %2d%%: mean %.2f  max %u  (over %zu resident keys)\n",
                fill_pct, static_cast<double>(total) / sigs.size(), max,
                sigs.size());
  }
}

// -- Async completion-ring path ------------------------------------------------
// Drives the SNIA-style async verbs end to end: submissions flow through
// the device queue and completed batches cross into the caller-visible
// ring, harvested with poll_completions() — one ring pass per batch, no
// per-op callbacks. The wall-clock ops/s line is the headline figure the
// ≥2x acceptance guard tracks; the device-clock line must not move when
// only host-side code changes.
int async_ring_throughput() {
  constexpr std::uint64_t kKeys = 20'000;
  constexpr std::uint64_t kOps = 100'000;
  constexpr std::uint32_t kValueSize = 256;
  constexpr std::uint64_t kPollEvery = 256;

  api::KvsDeviceOptions opts;
  opts.capacity_bytes = 256ull << 20;
  opts.dram_cache_bytes = 10ull << 20;
  opts.anticipated_keys = kKeys;
  api::KvsDevice dev(opts);

  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < kKeys; ++id) {
    workload::fill_value(id, value);
    const Bytes key = workload::key_for_id(id, 16);
    const std::string k(reinterpret_cast<const char*>(key.data()), key.size());
    if (dev.store(k, ByteSpan{value}) != api::KvsResult::KVS_SUCCESS) return 1;
  }

  Rng rng(11);
  std::vector<api::KvsCompletion> done;
  done.reserve(kOps);
  const SimTime sim0 = dev.metrics_snapshot().captured_at_ns;
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::uint64_t id = rng.next_below(kKeys);
    const Bytes key = workload::key_for_id(id, 16);
    const std::string k(reinterpret_cast<const char*>(key.data()), key.size());
    if (i % 20 == 0) {
      Bytes v(kValueSize);
      workload::fill_value(id, v);
      dev.store_async(k, std::move(v));
    } else {
      dev.retrieve_async(k);
    }
    if (i % kPollEvery == kPollEvery - 1) dev.poll_completions(&done);
  }
  while (done.size() < kOps) {
    if (dev.poll_completions(&done) == 0 && done.size() < kOps) continue;
  }
  const auto wall1 = std::chrono::steady_clock::now();
  obs::MetricsSnapshot snap = dev.metrics_snapshot();
  const SimTime sim1 = snap.captured_at_ns;

  std::size_t failed = 0;
  for (const api::KvsCompletion& c : done) {
    failed += c.result != api::KvsResult::KVS_SUCCESS;
  }
  const double wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  const double sim_s = static_cast<double>(sim1 - sim0) / 1e9;
  std::printf("\n-- async completion ring (95%% retrieve / 5%% store, 256B"
              " values) --\n");
  std::printf("%llu ops, poll_completions every %llu submissions, %zu"
              " failures\n", static_cast<unsigned long long>(kOps),
              static_cast<unsigned long long>(kPollEvery), failed);
  std::printf("wall-clock:   %8.3f Mops/s  <- headline host-side figure\n",
              wall_s > 0 ? kOps / wall_s / 1e6 : 0.0);
  std::printf("device-clock: %8.3f Mops/s  (must hold under host-only"
              " changes)\n", sim_s > 0 ? kOps / sim_s / 1e6 : 0.0);
  bench::maybe_export_json(snap);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  probe_length_report();
  const int ring_rc = async_ring_throughput();
  const int guard_rc = metrics_overhead_guard();
  return ring_rc != 0 ? ring_rc : guard_rc;
}
