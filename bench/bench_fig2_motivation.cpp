// Fig. 2 — write bandwidth drops as the index grows (paper §III).
//
// The paper fills a real 3.84 TB PM983 with fixed-size values (2 MB ->
// 11 B) and shows normalized write bandwidth collapsing once the
// (fixed, multi-level hash) index outgrows the SSD DRAM, plus a hard
// key-count cap (~3.1 B keys). We reproduce the shape on a scaled
// device: a multi-level-hash KVSSD whose DRAM cache holds only a small
// slice of the index. Large values => tiny index => flat bandwidth;
// small values => index >> cache => bandwidth decays with utilization,
// and the smallest size hits the index key cap before the device fills.
//
// Scale: 128 MiB device (paper: 3.84 TB), 256 KiB cache (paper: device
// DRAM), value sizes 256 KiB / 32 KiB / 2 KiB / 64 B (paper: 2 MB /
// 32 KB / 2 KB / 11 B).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workload/keygen.hpp"

using namespace rhik;

namespace {

constexpr std::uint64_t kDeviceBytes = 64ull << 20;
constexpr std::uint64_t kCacheBytes = 256ull << 10;
constexpr int kWindows = 10;  // utilization buckets (10% each)
// Key cap keeps the smallest-value series tractable on the emulator; the
// per-window normalization is unaffected (windows are deciles of each
// series' own fill).
constexpr std::uint64_t kMaxKeys = 60'000;

struct Series {
  std::uint64_t value_size;
  std::vector<double> bw_mib;       // per utilization window
  std::uint64_t keys_stored = 0;
  bool index_full = false;
  double fill_fraction = 1.0;
};

Series run(std::uint64_t value_size) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = bench::scaled_geometry(kDeviceBytes);
  cfg.dram_cache_bytes = kCacheBytes;
  cfg.index_kind = kvssd::IndexKind::kMlHash;
  // Fixed provisioning, as in the real device: sized for a mid-range
  // workload; the smallest-value series overflows it (the §III key cap).
  cfg.mlhash =
      index::MlHashConfig::for_keys(40'000, cfg.geometry.page_size, /*levels=*/4);
  kvssd::KvssdDevice dev(cfg);

  Series s;
  s.value_size = value_size;
  const std::uint64_t pair = ftl::FlashKvStore::pair_bytes(16, value_size);
  // Fill to ~80% of raw capacity (GC headroom + extent/index overhead).
  const std::uint64_t target_bytes = kDeviceBytes * 80 / 100;
  const std::uint64_t total_keys = std::min(target_bytes / pair, kMaxKeys);
  const std::uint64_t window_keys = total_keys / kWindows;

  Bytes value(value_size);
  std::uint64_t id = 0;
  for (int w = 0; w < kWindows; ++w) {
    const SimTime t0 = dev.clock().now();
    std::uint64_t written = 0;
    for (std::uint64_t i = 0; i < window_keys; ++i, ++id) {
      workload::fill_value(id, value);
      const Status st = dev.put(workload::key_for_id(id, 16), value);
      if (st == Status::kIndexFull || st == Status::kCollisionAbort) {
        s.index_full = true;
        break;
      }
      if (st == Status::kDeviceFull) break;
      written += value_size;
    }
    const SimTime dt = dev.clock().now() - t0;
    s.bw_mib.push_back(mib_per_sec(written, dt));
    if (s.index_full || written < window_keys * value_size) {
      s.fill_fraction = (static_cast<double>(w) + 1.0) / kWindows;
      break;
    }
  }
  s.keys_stored = dev.key_count();
  return s;
}

}  // namespace

int main() {
  bench::heading("Fig. 2 — write bandwidth vs device utilization",
                 "RHIK paper Fig. 2a-2d (§III motivation)");
  bench::note("device %llu MiB, FTL cache %llu KiB, multi-level hash index",
              static_cast<unsigned long long>(kDeviceBytes >> 20),
              static_cast<unsigned long long>(kCacheBytes >> 10));
  bench::note("paper: 3.84TB PM983; value sizes 2MB/32KB/2KB/11B; key cap 3.1B");

  // 30 KiB (not 32 KiB) keeps the mid-size pair within one 32 KiB page:
  // our extent layout starts multi-page pairs on page boundaries, so a
  // pair just over the page size would waste half its extent.
  const std::vector<std::uint64_t> sizes{256ull << 10, 30ull << 10, 2ull << 10,
                                         64};
  std::vector<Series> all;
  for (const auto vs : sizes) all.push_back(run(vs));

  std::printf("\nnormalized write bandwidth per 10%% utilization window\n");
  std::printf("%-10s", "util%");
  for (const auto& s : all) {
    std::printf("%12s", bench::size_label(s.value_size).c_str());
  }
  std::printf("\n");
  // Normalize each series to its first window (paper normalizes too).
  for (int w = 0; w < kWindows; ++w) {
    std::printf("%-10d", (w + 1) * 10);
    for (const auto& s : all) {
      if (w < static_cast<int>(s.bw_mib.size()) && s.bw_mib[0] > 0) {
        std::printf("%12.3f", s.bw_mib[w] / s.bw_mib[0]);
      } else {
        std::printf("%12s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\n");
  for (const auto& s : all) {
    std::printf("value %-8s keys stored %9llu  first-window bw %8.1f MiB/s%s\n",
                bench::size_label(s.value_size).c_str(),
                static_cast<unsigned long long>(s.keys_stored),
                s.bw_mib.empty() ? 0.0 : s.bw_mib[0],
                s.index_full
                    ? "  << INDEX FULL before device full (paper: 3.1B key cap)"
                    : "");
  }
  bench::note("expected shape: large values flat; smaller values decay as the");
  bench::note("index outgrows the cache; smallest size hits the index key cap.");
  return 0;
}
