// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints the rows/series of one table or figure from the
// paper. Absolute numbers come from the emulator's simulated clock and a
// scaled-down device (documented per bench); the *shape* — who wins, by
// what factor, where the knees fall — is the reproduction target
// (EXPERIMENTS.md records paper-vs-measured for each).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "kvssd/device.hpp"
#include "obs/metrics.hpp"
#include "workload/keygen.hpp"

namespace rhik::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  # ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

/// Paper-style geometry (32 KiB pages) scaled to a small capacity with
/// proportionally smaller erase blocks, so the scaled device still has
/// enough blocks (>= ~32) for GC to operate the way it does at full
/// scale. Keeping the paper's 256 pages/block on a 64 MiB device would
/// leave 8 monolithic blocks and permanent GC thrash.
inline flash::Geometry scaled_geometry(std::uint64_t capacity_bytes,
                                       std::uint32_t pages_per_block = 64) {
  flash::Geometry g;
  g.pages_per_block = pages_per_block;
  const std::uint64_t blocks = capacity_bytes / g.block_bytes();
  g.num_blocks = blocks == 0 ? 1 : static_cast<std::uint32_t>(blocks);
  return g;
}

/// Human-readable byte size ("11B", "4KB", "2MB").
inline std::string size_label(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMB",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= (1u << 10) && bytes % (1u << 10) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKB",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

/// Prints one stage-timer row: count + p50/p90/p99 (sim-clock ns).
inline void metrics_row(const obs::MetricsSnapshot& snap, const char* name) {
  const Histogram* h = snap.timer(name);
  if (h == nullptr || h->count() == 0) return;
  std::printf("  %-28s n=%-10llu p50=%-10llu p90=%-10llu p99=%llu\n", name,
              static_cast<unsigned long long>(h->count()),
              static_cast<unsigned long long>(h->percentile(50)),
              static_cast<unsigned long long>(h->percentile(90)),
              static_cast<unsigned long long>(h->percentile(99)));
}

/// Per-stage latency/read-amp section the obs-wired benches print: for
/// each op kind, total + stage breakdown + flash reads per op.
inline void print_stage_metrics(const obs::MetricsSnapshot& snap) {
  std::printf("  -- per-op stage percentiles (sim ns / reads per op) --\n");
  for (const char* op : {"put", "get", "del"}) {
    const std::string base = std::string("op.") + op;
    metrics_row(snap, (base + ".total_ns").c_str());
    metrics_row(snap, (base + ".queue_ns").c_str());
    metrics_row(snap, (base + ".index_ns").c_str());
    metrics_row(snap, (base + ".flash_ns").c_str());
    metrics_row(snap, (base + ".gc_ns").c_str());
    metrics_row(snap, (base + ".flash_reads").c_str());
    metrics_row(snap, (base + ".index_flash_reads").c_str());
  }
}

/// Honors RHIK_METRICS_JSON: when set, writes the snapshot's JSON export
/// there ("-" = stdout). Lets any bench feed dashboards without flags.
inline void maybe_export_json(const obs::MetricsSnapshot& snap) {
  const char* path = std::getenv("RHIK_METRICS_JSON");
  if (path == nullptr || *path == '\0') return;
  const std::string doc = snap.to_json();
  if (std::string_view(path) == "-") {
    std::printf("%s\n", doc.c_str());
    return;
  }
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    note("metrics JSON written to %s", path);
  } else {
    note("could not open %s for metrics JSON", path);
  }
}

/// Loads `n` sequential keys of fixed value size into a device.
/// Returns false on device-full / index-full.
inline bool load_keys(kvssd::KvssdDevice& dev, std::uint64_t n,
                      std::uint32_t value_size, std::uint32_t key_size = 16) {
  Bytes value(value_size);
  for (std::uint64_t id = 0; id < n; ++id) {
    workload::fill_value(id, value);
    const Status s = dev.put(workload::key_for_id(id, key_size), value);
    if (!ok(s)) return false;
  }
  return true;
}

}  // namespace rhik::bench
