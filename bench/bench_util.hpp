// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints the rows/series of one table or figure from the
// paper. Absolute numbers come from the emulator's simulated clock and a
// scaled-down device (documented per bench); the *shape* — who wins, by
// what factor, where the knees fall — is the reproduction target
// (EXPERIMENTS.md records paper-vs-measured for each).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "kvssd/device.hpp"
#include "workload/keygen.hpp"

namespace rhik::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  # ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

/// Paper-style geometry (32 KiB pages) scaled to a small capacity with
/// proportionally smaller erase blocks, so the scaled device still has
/// enough blocks (>= ~32) for GC to operate the way it does at full
/// scale. Keeping the paper's 256 pages/block on a 64 MiB device would
/// leave 8 monolithic blocks and permanent GC thrash.
inline flash::Geometry scaled_geometry(std::uint64_t capacity_bytes,
                                       std::uint32_t pages_per_block = 64) {
  flash::Geometry g;
  g.pages_per_block = pages_per_block;
  const std::uint64_t blocks = capacity_bytes / g.block_bytes();
  g.num_blocks = blocks == 0 ? 1 : static_cast<std::uint32_t>(blocks);
  return g;
}

/// Human-readable byte size ("11B", "4KB", "2MB").
inline std::string size_label(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMB",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= (1u << 10) && bytes % (1u << 10) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKB",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

/// Loads `n` sequential keys of fixed value size into a device.
/// Returns false on device-full / index-full.
inline bool load_keys(kvssd::KvssdDevice& dev, std::uint64_t n,
                      std::uint32_t value_size, std::uint32_t key_size = 16) {
  Bytes value(value_size);
  for (std::uint64_t id = 0; id < n; ++id) {
    workload::fill_value(id, value);
    const Status s = dev.put(workload::key_for_id(id, key_size), value);
    if (!ok(s)) return false;
  }
  return true;
}

}  // namespace rhik::bench
