# Empty dependencies file for atlas_store.
# This may be replaced when dependencies are built.
