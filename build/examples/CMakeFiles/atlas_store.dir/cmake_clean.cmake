file(REMOVE_RECURSE
  "CMakeFiles/atlas_store.dir/atlas_store.cpp.o"
  "CMakeFiles/atlas_store.dir/atlas_store.cpp.o.d"
  "atlas_store"
  "atlas_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
