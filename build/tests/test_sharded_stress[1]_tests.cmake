add_test([=[ShardedStress.ConcurrentSubmittersAndDrainBarriers]=]  /root/repo/build/tests/test_sharded_stress [==[--gtest_filter=ShardedStress.ConcurrentSubmittersAndDrainBarriers]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ShardedStress.ConcurrentSubmittersAndDrainBarriers]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] LABELS stress)
set(  test_sharded_stress_TESTS ShardedStress.ConcurrentSubmittersAndDrainBarriers)
