# Empty dependencies file for test_sharded_stress.
# This may be replaced when dependencies are built.
