file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_stress.dir/test_sharded_stress.cpp.o"
  "CMakeFiles/test_sharded_stress.dir/test_sharded_stress.cpp.o.d"
  "test_sharded_stress"
  "test_sharded_stress.pdb"
  "test_sharded_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
