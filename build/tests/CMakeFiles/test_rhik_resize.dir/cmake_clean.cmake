file(REMOVE_RECURSE
  "CMakeFiles/test_rhik_resize.dir/test_rhik_resize.cpp.o"
  "CMakeFiles/test_rhik_resize.dir/test_rhik_resize.cpp.o.d"
  "test_rhik_resize"
  "test_rhik_resize.pdb"
  "test_rhik_resize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhik_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
