# Empty dependencies file for test_rhik_resize.
# This may be replaced when dependencies are built.
