file(REMOVE_RECURSE
  "CMakeFiles/test_ftl_store.dir/test_ftl_store.cpp.o"
  "CMakeFiles/test_ftl_store.dir/test_ftl_store.cpp.o.d"
  "test_ftl_store"
  "test_ftl_store.pdb"
  "test_ftl_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftl_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
