# Empty dependencies file for test_ftl_store.
# This may be replaced when dependencies are built.
