# Empty dependencies file for test_rhik.
# This may be replaced when dependencies are built.
