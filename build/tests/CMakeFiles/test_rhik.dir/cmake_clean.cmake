file(REMOVE_RECURSE
  "CMakeFiles/test_rhik.dir/test_rhik.cpp.o"
  "CMakeFiles/test_rhik.dir/test_rhik.cpp.o.d"
  "test_rhik"
  "test_rhik.pdb"
  "test_rhik[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhik.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
