file(REMOVE_RECURSE
  "CMakeFiles/test_ftl_alloc.dir/test_ftl_alloc.cpp.o"
  "CMakeFiles/test_ftl_alloc.dir/test_ftl_alloc.cpp.o.d"
  "test_ftl_alloc"
  "test_ftl_alloc.pdb"
  "test_ftl_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftl_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
