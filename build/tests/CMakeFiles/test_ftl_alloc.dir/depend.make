# Empty dependencies file for test_ftl_alloc.
# This may be replaced when dependencies are built.
