file(REMOVE_RECURSE
  "CMakeFiles/test_rhik_overflow.dir/test_rhik_overflow.cpp.o"
  "CMakeFiles/test_rhik_overflow.dir/test_rhik_overflow.cpp.o.d"
  "test_rhik_overflow"
  "test_rhik_overflow.pdb"
  "test_rhik_overflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rhik_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
