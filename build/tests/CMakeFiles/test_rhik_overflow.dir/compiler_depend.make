# Empty compiler generated dependencies file for test_rhik_overflow.
# This may be replaced when dependencies are built.
