file(REMOVE_RECURSE
  "CMakeFiles/test_ftl_gc.dir/test_ftl_gc.cpp.o"
  "CMakeFiles/test_ftl_gc.dir/test_ftl_gc.cpp.o.d"
  "test_ftl_gc"
  "test_ftl_gc.pdb"
  "test_ftl_gc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftl_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
