# Empty dependencies file for test_hopscotch.
# This may be replaced when dependencies are built.
