file(REMOVE_RECURSE
  "CMakeFiles/test_hopscotch.dir/test_hopscotch.cpp.o"
  "CMakeFiles/test_hopscotch.dir/test_hopscotch.cpp.o.d"
  "test_hopscotch"
  "test_hopscotch.pdb"
  "test_hopscotch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hopscotch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
