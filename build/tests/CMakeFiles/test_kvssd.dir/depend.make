# Empty dependencies file for test_kvssd.
# This may be replaced when dependencies are built.
