file(REMOVE_RECURSE
  "CMakeFiles/test_kvssd.dir/test_kvssd.cpp.o"
  "CMakeFiles/test_kvssd.dir/test_kvssd.cpp.o.d"
  "test_kvssd"
  "test_kvssd.pdb"
  "test_kvssd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
