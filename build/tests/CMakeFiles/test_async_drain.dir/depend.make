# Empty dependencies file for test_async_drain.
# This may be replaced when dependencies are built.
