file(REMOVE_RECURSE
  "CMakeFiles/test_async_drain.dir/test_async_drain.cpp.o"
  "CMakeFiles/test_async_drain.dir/test_async_drain.cpp.o.d"
  "test_async_drain"
  "test_async_drain.pdb"
  "test_async_drain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
