
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_async_drain.cpp" "tests/CMakeFiles/test_async_drain.dir/test_async_drain.cpp.o" "gcc" "tests/CMakeFiles/test_async_drain.dir/test_async_drain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhik_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/rhik_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/rhik_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/rhik_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rhik_index.dir/DependInfo.cmake"
  "/root/repo/build/src/kvssd/CMakeFiles/rhik_kvssd.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/rhik_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/rhik_api.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rhik_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
