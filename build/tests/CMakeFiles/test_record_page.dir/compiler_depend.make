# Empty compiler generated dependencies file for test_record_page.
# This may be replaced when dependencies are built.
