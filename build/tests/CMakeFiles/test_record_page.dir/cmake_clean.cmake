file(REMOVE_RECURSE
  "CMakeFiles/test_record_page.dir/test_record_page.cpp.o"
  "CMakeFiles/test_record_page.dir/test_record_page.cpp.o.d"
  "test_record_page"
  "test_record_page.pdb"
  "test_record_page[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
