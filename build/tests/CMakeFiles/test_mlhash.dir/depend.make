# Empty dependencies file for test_mlhash.
# This may be replaced when dependencies are built.
