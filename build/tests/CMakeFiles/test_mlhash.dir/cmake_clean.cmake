file(REMOVE_RECURSE
  "CMakeFiles/test_mlhash.dir/test_mlhash.cpp.o"
  "CMakeFiles/test_mlhash.dir/test_mlhash.cpp.o.d"
  "test_mlhash"
  "test_mlhash.pdb"
  "test_mlhash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlhash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
