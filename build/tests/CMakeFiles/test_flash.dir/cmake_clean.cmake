file(REMOVE_RECURSE
  "CMakeFiles/test_flash.dir/test_flash.cpp.o"
  "CMakeFiles/test_flash.dir/test_flash.cpp.o.d"
  "test_flash"
  "test_flash.pdb"
  "test_flash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
