file(REMOVE_RECURSE
  "CMakeFiles/test_iterator.dir/test_iterator.cpp.o"
  "CMakeFiles/test_iterator.dir/test_iterator.cpp.o.d"
  "test_iterator"
  "test_iterator.pdb"
  "test_iterator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iterator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
