# Empty compiler generated dependencies file for test_iterator.
# This may be replaced when dependencies are built.
