file(REMOVE_RECURSE
  "CMakeFiles/test_ftl_layout.dir/test_ftl_layout.cpp.o"
  "CMakeFiles/test_ftl_layout.dir/test_ftl_layout.cpp.o.d"
  "test_ftl_layout"
  "test_ftl_layout.pdb"
  "test_ftl_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftl_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
