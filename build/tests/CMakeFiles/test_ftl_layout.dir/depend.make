# Empty dependencies file for test_ftl_layout.
# This may be replaced when dependencies are built.
