file(REMOVE_RECURSE
  "CMakeFiles/test_sharded.dir/test_sharded.cpp.o"
  "CMakeFiles/test_sharded.dir/test_sharded.cpp.o.d"
  "test_sharded"
  "test_sharded.pdb"
  "test_sharded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
