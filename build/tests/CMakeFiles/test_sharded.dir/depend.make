# Empty dependencies file for test_sharded.
# This may be replaced when dependencies are built.
