# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_hopscotch[1]_include.cmake")
include("/root/repo/build/tests/test_flash[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_ftl_layout[1]_include.cmake")
include("/root/repo/build/tests/test_ftl_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_ftl_store[1]_include.cmake")
include("/root/repo/build/tests/test_ftl_gc[1]_include.cmake")
include("/root/repo/build/tests/test_record_page[1]_include.cmake")
include("/root/repo/build/tests/test_rhik[1]_include.cmake")
include("/root/repo/build/tests/test_rhik_resize[1]_include.cmake")
include("/root/repo/build/tests/test_mlhash[1]_include.cmake")
include("/root/repo/build/tests/test_kvssd[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_iterator[1]_include.cmake")
include("/root/repo/build/tests/test_rhik_overflow[1]_include.cmake")
include("/root/repo/build/tests/test_async_drain[1]_include.cmake")
include("/root/repo/build/tests/test_sharded[1]_include.cmake")
include("/root/repo/build/tests/test_sharded_stress[1]_include.cmake")
