# Empty compiler generated dependencies file for bench_fig5_ibm_traces.
# This may be replaced when dependencies are built.
