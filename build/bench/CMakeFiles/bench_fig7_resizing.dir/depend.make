# Empty dependencies file for bench_fig7_resizing.
# This may be replaced when dependencies are built.
