file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_resizing.dir/bench_fig7_resizing.cpp.o"
  "CMakeFiles/bench_fig7_resizing.dir/bench_fig7_resizing.cpp.o.d"
  "bench_fig7_resizing"
  "bench_fig7_resizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_resizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
