# Empty compiler generated dependencies file for bench_fig8_sensitivity.
# This may be replaced when dependencies are built.
