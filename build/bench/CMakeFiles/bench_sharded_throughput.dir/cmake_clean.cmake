file(REMOVE_RECURSE
  "CMakeFiles/bench_sharded_throughput.dir/bench_sharded_throughput.cpp.o"
  "CMakeFiles/bench_sharded_throughput.dir/bench_sharded_throughput.cpp.o.d"
  "bench_sharded_throughput"
  "bench_sharded_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharded_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
