# Empty dependencies file for bench_sharded_throughput.
# This may be replaced when dependencies are built.
