# Empty compiler generated dependencies file for bench_ablation_rhik.
# This may be replaced when dependencies are built.
