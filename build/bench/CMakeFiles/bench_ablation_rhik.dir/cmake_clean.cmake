file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rhik.dir/bench_ablation_rhik.cpp.o"
  "CMakeFiles/bench_ablation_rhik.dir/bench_ablation_rhik.cpp.o.d"
  "bench_ablation_rhik"
  "bench_ablation_rhik.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rhik.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
