# Empty dependencies file for rhik_api.
# This may be replaced when dependencies are built.
