file(REMOVE_RECURSE
  "librhik_api.a"
)
