file(REMOVE_RECURSE
  "CMakeFiles/rhik_api.dir/kvs.cpp.o"
  "CMakeFiles/rhik_api.dir/kvs.cpp.o.d"
  "librhik_api.a"
  "librhik_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
