file(REMOVE_RECURSE
  "CMakeFiles/rhik_common.dir/histogram.cpp.o"
  "CMakeFiles/rhik_common.dir/histogram.cpp.o.d"
  "CMakeFiles/rhik_common.dir/sim_clock.cpp.o"
  "CMakeFiles/rhik_common.dir/sim_clock.cpp.o.d"
  "CMakeFiles/rhik_common.dir/status.cpp.o"
  "CMakeFiles/rhik_common.dir/status.cpp.o.d"
  "librhik_common.a"
  "librhik_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
