# Empty dependencies file for rhik_common.
# This may be replaced when dependencies are built.
