file(REMOVE_RECURSE
  "librhik_common.a"
)
