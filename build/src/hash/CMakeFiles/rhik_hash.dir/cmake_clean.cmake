file(REMOVE_RECURSE
  "CMakeFiles/rhik_hash.dir/hopscotch.cpp.o"
  "CMakeFiles/rhik_hash.dir/hopscotch.cpp.o.d"
  "CMakeFiles/rhik_hash.dir/murmur.cpp.o"
  "CMakeFiles/rhik_hash.dir/murmur.cpp.o.d"
  "librhik_hash.a"
  "librhik_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
