file(REMOVE_RECURSE
  "librhik_hash.a"
)
