# Empty dependencies file for rhik_hash.
# This may be replaced when dependencies are built.
