# Empty compiler generated dependencies file for rhik_workload.
# This may be replaced when dependencies are built.
