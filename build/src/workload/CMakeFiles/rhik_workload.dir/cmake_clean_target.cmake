file(REMOVE_RECURSE
  "librhik_workload.a"
)
