file(REMOVE_RECURSE
  "CMakeFiles/rhik_workload.dir/ibm_cos.cpp.o"
  "CMakeFiles/rhik_workload.dir/ibm_cos.cpp.o.d"
  "CMakeFiles/rhik_workload.dir/keygen.cpp.o"
  "CMakeFiles/rhik_workload.dir/keygen.cpp.o.d"
  "CMakeFiles/rhik_workload.dir/replay.cpp.o"
  "CMakeFiles/rhik_workload.dir/replay.cpp.o.d"
  "CMakeFiles/rhik_workload.dir/size_dist.cpp.o"
  "CMakeFiles/rhik_workload.dir/size_dist.cpp.o.d"
  "CMakeFiles/rhik_workload.dir/trace.cpp.o"
  "CMakeFiles/rhik_workload.dir/trace.cpp.o.d"
  "librhik_workload.a"
  "librhik_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
