# Empty compiler generated dependencies file for rhik_kvssd.
# This may be replaced when dependencies are built.
