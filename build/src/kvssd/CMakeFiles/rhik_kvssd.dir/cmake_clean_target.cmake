file(REMOVE_RECURSE
  "librhik_kvssd.a"
)
