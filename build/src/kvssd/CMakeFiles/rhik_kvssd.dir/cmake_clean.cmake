file(REMOVE_RECURSE
  "CMakeFiles/rhik_kvssd.dir/device.cpp.o"
  "CMakeFiles/rhik_kvssd.dir/device.cpp.o.d"
  "CMakeFiles/rhik_kvssd.dir/iterator.cpp.o"
  "CMakeFiles/rhik_kvssd.dir/iterator.cpp.o.d"
  "CMakeFiles/rhik_kvssd.dir/pm983_model.cpp.o"
  "CMakeFiles/rhik_kvssd.dir/pm983_model.cpp.o.d"
  "CMakeFiles/rhik_kvssd.dir/recovery.cpp.o"
  "CMakeFiles/rhik_kvssd.dir/recovery.cpp.o.d"
  "librhik_kvssd.a"
  "librhik_kvssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_kvssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
