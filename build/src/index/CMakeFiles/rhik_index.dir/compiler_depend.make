# Empty compiler generated dependencies file for rhik_index.
# This may be replaced when dependencies are built.
