
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/mlhash/mlhash_index.cpp" "src/index/CMakeFiles/rhik_index.dir/mlhash/mlhash_index.cpp.o" "gcc" "src/index/CMakeFiles/rhik_index.dir/mlhash/mlhash_index.cpp.o.d"
  "/root/repo/src/index/rhik/record_page.cpp" "src/index/CMakeFiles/rhik_index.dir/rhik/record_page.cpp.o" "gcc" "src/index/CMakeFiles/rhik_index.dir/rhik/record_page.cpp.o.d"
  "/root/repo/src/index/rhik/rhik_index.cpp" "src/index/CMakeFiles/rhik_index.dir/rhik/rhik_index.cpp.o" "gcc" "src/index/CMakeFiles/rhik_index.dir/rhik/rhik_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhik_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/rhik_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/rhik_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/rhik_ftl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
