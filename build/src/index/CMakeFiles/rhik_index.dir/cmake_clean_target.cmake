file(REMOVE_RECURSE
  "librhik_index.a"
)
