file(REMOVE_RECURSE
  "CMakeFiles/rhik_index.dir/mlhash/mlhash_index.cpp.o"
  "CMakeFiles/rhik_index.dir/mlhash/mlhash_index.cpp.o.d"
  "CMakeFiles/rhik_index.dir/rhik/record_page.cpp.o"
  "CMakeFiles/rhik_index.dir/rhik/record_page.cpp.o.d"
  "CMakeFiles/rhik_index.dir/rhik/rhik_index.cpp.o"
  "CMakeFiles/rhik_index.dir/rhik/rhik_index.cpp.o.d"
  "librhik_index.a"
  "librhik_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
