# Empty dependencies file for rhik_flash.
# This may be replaced when dependencies are built.
