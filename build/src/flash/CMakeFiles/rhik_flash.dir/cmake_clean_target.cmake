file(REMOVE_RECURSE
  "librhik_flash.a"
)
