file(REMOVE_RECURSE
  "CMakeFiles/rhik_flash.dir/nand.cpp.o"
  "CMakeFiles/rhik_flash.dir/nand.cpp.o.d"
  "librhik_flash.a"
  "librhik_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
