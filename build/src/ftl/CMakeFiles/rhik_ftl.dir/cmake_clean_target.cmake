file(REMOVE_RECURSE
  "librhik_ftl.a"
)
