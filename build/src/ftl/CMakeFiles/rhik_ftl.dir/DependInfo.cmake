
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/gc.cpp" "src/ftl/CMakeFiles/rhik_ftl.dir/gc.cpp.o" "gcc" "src/ftl/CMakeFiles/rhik_ftl.dir/gc.cpp.o.d"
  "/root/repo/src/ftl/kv_store.cpp" "src/ftl/CMakeFiles/rhik_ftl.dir/kv_store.cpp.o" "gcc" "src/ftl/CMakeFiles/rhik_ftl.dir/kv_store.cpp.o.d"
  "/root/repo/src/ftl/layout.cpp" "src/ftl/CMakeFiles/rhik_ftl.dir/layout.cpp.o" "gcc" "src/ftl/CMakeFiles/rhik_ftl.dir/layout.cpp.o.d"
  "/root/repo/src/ftl/page_allocator.cpp" "src/ftl/CMakeFiles/rhik_ftl.dir/page_allocator.cpp.o" "gcc" "src/ftl/CMakeFiles/rhik_ftl.dir/page_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rhik_common.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/rhik_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/rhik_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
