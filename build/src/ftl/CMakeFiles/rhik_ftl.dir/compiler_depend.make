# Empty compiler generated dependencies file for rhik_ftl.
# This may be replaced when dependencies are built.
