file(REMOVE_RECURSE
  "CMakeFiles/rhik_ftl.dir/gc.cpp.o"
  "CMakeFiles/rhik_ftl.dir/gc.cpp.o.d"
  "CMakeFiles/rhik_ftl.dir/kv_store.cpp.o"
  "CMakeFiles/rhik_ftl.dir/kv_store.cpp.o.d"
  "CMakeFiles/rhik_ftl.dir/layout.cpp.o"
  "CMakeFiles/rhik_ftl.dir/layout.cpp.o.d"
  "CMakeFiles/rhik_ftl.dir/page_allocator.cpp.o"
  "CMakeFiles/rhik_ftl.dir/page_allocator.cpp.o.d"
  "librhik_ftl.a"
  "librhik_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
