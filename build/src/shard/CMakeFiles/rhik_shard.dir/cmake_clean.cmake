file(REMOVE_RECURSE
  "CMakeFiles/rhik_shard.dir/sharded_kvssd.cpp.o"
  "CMakeFiles/rhik_shard.dir/sharded_kvssd.cpp.o.d"
  "librhik_shard.a"
  "librhik_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhik_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
