file(REMOVE_RECURSE
  "librhik_shard.a"
)
