# Empty dependencies file for rhik_shard.
# This may be replaced when dependencies are built.
