// Baseline: multi-level hash index (Samsung KVSSD style, paper §II-B and
// the 8-level comparator of Fig. 5).
//
// L levels of flash-resident record pages; a key hashes (with a per-level
// salt) to one page per level. Lookups probe level by level — each probe
// is a page access through the shared DRAM cache, so a cold lookup can
// cost up to L flash reads (vs RHIK's one). Inserts go to the first level
// with room. There is NO resizing: when every level's target page is
// full, the index rejects the key — reproducing the "limited number of
// keys" behaviour the paper measures on real hardware (§III).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.hpp"
#include "flash/nand.hpp"
#include "ftl/page_allocator.hpp"
#include "index/index.hpp"
#include "index/rhik/record_page.hpp"

namespace rhik::index {

struct MlHashConfig {
  std::uint32_t levels = 8;
  /// Record pages in level 0; level i holds level0_pages << i pages.
  std::uint64_t level0_pages = 4;
  std::uint32_t hop_range = 32;
  std::uint32_t sig_bytes = 8;
  std::uint32_t ppa_bytes = 5;

  /// Sizes level 0 so the whole pyramid holds ~`keys` records at 100%
  /// occupancy (levels sum to level0 * (2^L - 1) pages).
  static MlHashConfig for_keys(std::uint64_t keys, std::uint32_t page_size,
                               std::uint32_t levels = 8);
};

class MlHashIndex final : public IIndex {
 public:
  MlHashIndex(flash::NandDevice* nand, ftl::PageAllocator* alloc, MlHashConfig cfg,
              std::uint64_t cache_budget_bytes);

  // -- IIndex -----------------------------------------------------------------
  Status put(std::uint64_t sig, flash::Ppa ppa) override;
  std::optional<flash::Ppa> get(std::uint64_t sig) override;
  Result<std::optional<flash::Ppa>> lookup(std::uint64_t sig) override;
  Status erase(std::uint64_t sig) override;
  [[nodiscard]] std::uint64_t size() const override { return num_keys_; }
  [[nodiscard]] std::uint64_t capacity() const override { return capacity_; }
  [[nodiscard]] std::uint64_t dram_bytes() const override;
  Status flush() override;
  Status scan(const std::function<void(std::uint64_t, flash::Ppa)>& fn) override;
  [[nodiscard]] const IndexOpStats& op_stats() const override { return stats_; }
  void reset_op_stats() override {
    stats_ = {};
    cache_.reset_stats();
  }

  // -- GcIndexHooks --------------------------------------------------------------
  std::optional<flash::Ppa> gc_lookup(std::uint64_t sig) override;
  Status gc_update_location(std::uint64_t sig, flash::Ppa new_ppa) override;
  bool gc_is_live_index_page(flash::Ppa ppa) const override;
  Status gc_relocate_index_page(flash::Ppa ppa) override;

  [[nodiscard]] const MlHashConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t level_pages(std::uint32_t level) const {
    return dirs_[level].size();
  }
  [[nodiscard]] const cache::CacheStats& cache_stats() const noexcept override {
    return cache_.stats();
  }

  // -- Checkpointing hooks (IIndex) ------------------------------------------
  void set_journal(IndexJournal* journal) override { journal_ = journal; }
  Status serialize_image(Bytes& out) override;
  Status load_image(ByteSpan image) override;
  Status apply_journal_repoint(
      std::uint64_t slot_key, flash::Ppa ppa,
      const std::function<bool(flash::Ppa)>& data_durable = {}) override;
  Status recount_keys() override;

 private:
  static constexpr std::uint64_t make_key(std::uint32_t level, std::uint64_t page) {
    return (std::uint64_t{level} << 40) | page;
  }
  static constexpr std::uint32_t key_level(std::uint64_t key) {
    return static_cast<std::uint32_t>(key >> 40);
  }
  static constexpr std::uint64_t key_page(std::uint64_t key) {
    return key & ((std::uint64_t{1} << 40) - 1);
  }

  [[nodiscard]] std::uint64_t page_for(std::uint32_t level, std::uint64_t sig) const;

  Result<hash::HopscotchTable*> load_table(std::uint32_t level, std::uint64_t page,
                                           std::uint64_t* reads);
  Status write_table(std::uint32_t level, std::uint64_t page,
                     const hash::HopscotchTable& table, bool for_gc);

  /// Finds the level currently holding `sig`; probes levels in order.
  struct Located {
    std::uint32_t level;
    std::uint64_t page;
    flash::Ppa ppa;
  };
  Result<std::optional<Located>> locate(std::uint64_t sig, std::uint64_t* reads);

  flash::NandDevice* nand_;
  ftl::PageAllocator* alloc_;
  MlHashConfig cfg_;
  RecordPageCodec codec_;

  /// Per-level page tables (flash PPAs), DRAM resident.
  std::vector<std::vector<flash::Ppa>> dirs_;
  std::vector<std::uint64_t> salts_;
  std::uint64_t capacity_ = 0;

  struct CachedTable {
    hash::HopscotchTable table;
  };
  cache::LruCache<std::uint64_t, CachedTable> cache_;
  std::unordered_map<flash::Ppa, std::uint64_t> page_owner_;

  std::uint64_t num_keys_ = 0;
  IndexOpStats stats_;
  IndexJournal* journal_ = nullptr;
};

}  // namespace rhik::index
