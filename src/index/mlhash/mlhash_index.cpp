#include "index/mlhash/mlhash_index.hpp"

#include <cassert>

#include "common/rng.hpp"
#include "hash/murmur.hpp"

namespace rhik::index {

using flash::kInvalidPpa;
using flash::Ppa;

MlHashConfig MlHashConfig::for_keys(std::uint64_t keys, std::uint32_t page_size,
                                    std::uint32_t levels) {
  MlHashConfig cfg;
  cfg.levels = levels;
  RhikConfig sizing;  // reuse Eq. 1 record geometry
  sizing.hop_range = cfg.hop_range;
  sizing.sig_bytes = cfg.sig_bytes;
  sizing.ppa_bytes = cfg.ppa_bytes;
  const std::uint64_t r = sizing.records_per_page(page_size);
  const std::uint64_t pages = (keys + r - 1) / r;
  const std::uint64_t denom = (std::uint64_t{1} << levels) - 1;
  cfg.level0_pages = (pages + denom - 1) / denom;
  if (cfg.level0_pages == 0) cfg.level0_pages = 1;
  return cfg;
}

MlHashIndex::MlHashIndex(flash::NandDevice* nand, ftl::PageAllocator* alloc,
                         MlHashConfig cfg, std::uint64_t cache_budget_bytes)
    : nand_(nand),
      alloc_(alloc),
      cfg_(cfg),
      codec_(
          [&cfg] {
            RhikConfig rc;
            rc.hop_range = cfg.hop_range;
            rc.sig_bytes = cfg.sig_bytes;
            rc.ppa_bytes = cfg.ppa_bytes;
            return rc;
          }(),
          nand->geometry().page_size),
      cache_(cache_budget_bytes, nand->geometry().page_size) {
  assert(nand_ && alloc_);
  assert(cfg_.levels >= 1 && cfg_.levels <= 24);
  dirs_.resize(cfg_.levels);
  salts_.resize(cfg_.levels);
  std::uint64_t seed = 0x6d6c6861u;  // "mlha"
  for (std::uint32_t l = 0; l < cfg_.levels; ++l) {
    const std::uint64_t pages = cfg_.level0_pages << l;
    dirs_[l].assign(pages, kInvalidPpa);
    salts_[l] = splitmix64(seed);
    capacity_ += pages * codec_.records_per_page();
  }
  cache_.set_writeback([this](const std::uint64_t& key, CachedTable& v) {
    const Status s =
        write_table(key_level(key), key_page(key), v.table, /*for_gc=*/false);
    if (!ok(s)) stats_.writeback_failures++;
  });
}

std::uint64_t MlHashIndex::page_for(std::uint32_t level, std::uint64_t sig) const {
  return hash::mix64(sig ^ salts_[level]) % dirs_[level].size();
}

Result<hash::HopscotchTable*> MlHashIndex::load_table(std::uint32_t level,
                                                      std::uint64_t page,
                                                      std::uint64_t* reads) {
  const std::uint64_t key = make_key(level, page);
  if (CachedTable* hit = cache_.get(key)) return &hit->table;

  // Recycle the victim's table storage across the miss (see
  // RhikIndex::load_table): evict first, decode into the reclaimed
  // arrays, read the dir slot only after the write-back ran.
  std::optional<CachedTable> recycled = cache_.take_lru_if_full();
  CachedTable fresh =
      recycled ? std::move(*recycled) : CachedTable{codec_.make_table()};
  const Ppa ppa = dirs_[level][page];
  if (ppa != kInvalidPpa) {
    // Zero-copy page load, same as RhikIndex::load_table.
    ByteSpan buf, spare;
    if (Status s = nand_->read_page_view(ppa, &buf, &spare); !ok(s)) return s;
    if (ftl::SpareTag::decode(spare).kind != ftl::PageKind::kIndexRecord) {
      return Status::kCorruption;
    }
    if (Status s = codec_.decode(buf, &fresh.table); !ok(s)) return s;
    stats_.flash_reads++;
    if (reads) (*reads)++;
  } else if (recycled) {
    fresh.table.clear();
  }
  CachedTable* ins = cache_.insert(key, std::move(fresh), /*dirty=*/false);
  return &ins->table;
}

Status MlHashIndex::write_table(std::uint32_t level, std::uint64_t page,
                                const hash::HopscotchTable& table, bool for_gc) {
  const auto& g = nand_->geometry();
  const Ppa old = dirs_[level][page];
  const auto retire_old = [&] {
    if (old != kInvalidPpa) {
      page_owner_.erase(old);
      alloc_->sub_live(old, g.page_size);
    }
  };

  if (table.size() == 0) {
    retire_old();
    dirs_[level][page] = kInvalidPpa;
    if (journal_) journal_->journal_repoint(make_key(level, page), kInvalidPpa);
    return Status::kOk;
  }

  Bytes buf(g.page_size);
  Bytes spare(g.spare_size(), 0xFF);
  codec_.encode(table, buf);
  ftl::SpareTag{ftl::PageKind::kIndexRecord, ftl::Stream::kIndex}.encode(spare);
  IndexPageSpare meta;
  meta.generation = level;  // levels are static; reuse the field
  meta.bucket = page;
  meta.record_count = table.size();
  meta.encode(spare);

  auto ppa = alloc_->allocate(ftl::Stream::kIndex, for_gc);
  if (!ppa && ppa.status() == Status::kDeviceFull && !for_gc) {
    ppa = alloc_->allocate(ftl::Stream::kIndex, /*for_gc=*/true);
  }
  if (!ppa) return ppa.status();
  if (Status s = nand_->program_page(*ppa, buf, spare); !ok(s)) return s;
  stats_.flash_writes++;

  retire_old();
  dirs_[level][page] = *ppa;
  page_owner_[*ppa] = make_key(level, page);
  alloc_->add_live(*ppa, g.page_size);
  if (journal_) journal_->journal_repoint(make_key(level, page), *ppa);
  return Status::kOk;
}

Result<std::optional<MlHashIndex::Located>> MlHashIndex::locate(
    std::uint64_t sig, std::uint64_t* reads) {
  for (std::uint32_t l = 0; l < cfg_.levels; ++l) {
    const std::uint64_t page = page_for(l, sig);
    auto table = load_table(l, page, reads);
    if (!table) return table.status();
    if (auto ppa = (*table)->find(sig)) {
      return std::optional<Located>({l, page, *ppa});
    }
  }
  return std::optional<Located>(std::nullopt);
}

Result<std::optional<Ppa>> MlHashIndex::lookup(std::uint64_t sig) {
  stats_.gets++;
  std::uint64_t reads = 0;
  auto loc = locate(sig, &reads);
  stats_.reads_per_lookup.record(reads);
  // A metadata read failure propagates instead of masquerading as a miss.
  if (!loc) return loc.status();
  if (!*loc) return std::optional<Ppa>(std::nullopt);
  return std::optional<Ppa>((*loc)->ppa);
}

std::optional<Ppa> MlHashIndex::get(std::uint64_t sig) {
  auto r = lookup(sig);
  if (!r) return std::nullopt;
  return *r;
}

Status MlHashIndex::put(std::uint64_t sig, Ppa ppa) {
  stats_.puts++;
  std::uint64_t reads = 0;
  auto loc = locate(sig, &reads);
  if (!loc) return loc.status();
  if (*loc) {
    // Update in place at the level that already holds the signature.
    auto table = load_table((*loc)->level, (*loc)->page, &reads);
    stats_.reads_per_lookup.record(reads);
    if (!table) return table.status();
    const Status s = (*table)->insert(sig, ppa);
    if (ok(s)) {
      cache_.mark_dirty(make_key((*loc)->level, (*loc)->page));
      if (journal_) journal_->journal_put(sig, ppa);
    }
    return s;
  }
  // Insert at the first level with room.
  for (std::uint32_t l = 0; l < cfg_.levels; ++l) {
    const std::uint64_t page = page_for(l, sig);
    auto table = load_table(l, page, &reads);
    if (!table) return table.status();
    const Status s = (*table)->insert(sig, ppa);
    if (ok(s)) {
      num_keys_++;
      cache_.mark_dirty(make_key(l, page));
      if (journal_) journal_->journal_put(sig, ppa);
      stats_.reads_per_lookup.record(reads);
      return Status::kOk;
    }
  }
  // Every level's target page is full: the index cannot accept this key.
  stats_.collision_aborts++;
  stats_.reads_per_lookup.record(reads);
  return Status::kIndexFull;
}

Status MlHashIndex::erase(std::uint64_t sig) {
  stats_.erases++;
  std::uint64_t reads = 0;
  auto loc = locate(sig, &reads);
  stats_.reads_per_lookup.record(reads);
  if (!loc) return loc.status();
  if (!*loc) return Status::kNotFound;
  auto table = load_table((*loc)->level, (*loc)->page, &reads);
  if (!table) return table.status();
  (*table)->erase(sig);
  num_keys_--;
  cache_.mark_dirty(make_key((*loc)->level, (*loc)->page));
  if (journal_) journal_->journal_erase(sig);
  return Status::kOk;
}

std::optional<Ppa> MlHashIndex::gc_lookup(std::uint64_t sig) {
  std::uint64_t reads = 0;
  auto loc = locate(sig, &reads);
  if (!loc || !*loc) return std::nullopt;
  return (*loc)->ppa;
}

Status MlHashIndex::gc_update_location(std::uint64_t sig, Ppa new_ppa) {
  std::uint64_t reads = 0;
  auto loc = locate(sig, &reads);
  if (!loc) return loc.status();
  if (!*loc) return Status::kNotFound;
  auto table = load_table((*loc)->level, (*loc)->page, &reads);
  if (!table) return table.status();
  if (Status s = (*table)->insert(sig, new_ppa); !ok(s)) return s;
  cache_.mark_dirty(make_key((*loc)->level, (*loc)->page));
  if (journal_) journal_->journal_put(sig, new_ppa);
  return Status::kOk;
}

bool MlHashIndex::gc_is_live_index_page(Ppa ppa) const {
  return page_owner_.count(ppa) != 0;
}

Status MlHashIndex::gc_relocate_index_page(Ppa ppa) {
  const auto it = page_owner_.find(ppa);
  if (it == page_owner_.end()) return Status::kOk;
  const std::uint32_t level = key_level(it->second);
  const std::uint64_t page = key_page(it->second);
  auto table = load_table(level, page, nullptr);
  if (!table) return table.status();
  return write_table(level, page, **table, /*for_gc=*/true);
}

Status MlHashIndex::scan(const std::function<void(std::uint64_t, flash::Ppa)>& fn) {
  for (std::uint32_t l = 0; l < cfg_.levels; ++l) {
    for (std::uint64_t p = 0; p < dirs_[l].size(); ++p) {
      if (dirs_[l][p] == kInvalidPpa && !cache_.contains(make_key(l, p))) continue;
      auto table = load_table(l, p, nullptr);
      if (!table) return table.status();
      (*table)->for_each([&](const hash::Record& r) { fn(r.sig, r.ppa); });
    }
  }
  return Status::kOk;
}

std::uint64_t MlHashIndex::dram_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& d : dirs_) bytes += d.size() * cfg_.ppa_bytes;
  return bytes;
}

Status MlHashIndex::flush() {
  cache_.flush_all();
  return Status::kOk;
}

// -- Checkpointing -------------------------------------------------------------

namespace {
constexpr std::uint32_t kMlImageMagic = 0x4D4C4844;  // "MLHD"
}

Status MlHashIndex::serialize_image(Bytes& out) {
  // [magic u32][levels u32][level0_pages u64][num_keys u64]
  // [level 0 PPAs 5B each][level 1 PPAs]...  Salts are derived from a
  // fixed seed, so they need not be persisted.
  std::uint64_t total_pages = 0;
  for (const auto& d : dirs_) total_pages += d.size();
  out.assign(4 + 4 + 8 + 8 + total_pages * 5, 0);
  put_u32(out, 0, kMlImageMagic);
  put_u32(out, 4, cfg_.levels);
  put_u64(out, 8, cfg_.level0_pages);
  put_u64(out, 16, num_keys_);
  std::size_t off = 24;
  for (const auto& d : dirs_) {
    for (const Ppa p : d) {
      put_u40(out, off, p);
      off += 5;
    }
  }
  return Status::kOk;
}

Status MlHashIndex::load_image(ByteSpan image) {
  if (image.size() < 24) return Status::kCorruption;
  if (get_u32(image, 0) != kMlImageMagic) return Status::kCorruption;
  // The pyramid shape is fixed at construction; a mismatched image
  // belongs to a differently-configured device.
  if (get_u32(image, 4) != cfg_.levels ||
      get_u64(image, 8) != cfg_.level0_pages) {
    return Status::kCorruption;
  }
  std::uint64_t total_pages = 0;
  for (const auto& d : dirs_) total_pages += d.size();
  if (image.size() < 24 + total_pages * 5) return Status::kCorruption;

  cache_.clear();
  page_owner_.clear();
  num_keys_ = get_u64(image, 16);
  std::size_t off = 24;
  for (std::uint32_t l = 0; l < cfg_.levels; ++l) {
    for (std::uint64_t p = 0; p < dirs_[l].size(); ++p) {
      dirs_[l][p] = get_u40(image, off);
      off += 5;
      if (dirs_[l][p] != kInvalidPpa) page_owner_[dirs_[l][p]] = make_key(l, p);
    }
  }
  return Status::kOk;
}

Status MlHashIndex::apply_journal_repoint(
    std::uint64_t slot_key, Ppa ppa,
    const std::function<bool(Ppa)>& data_durable) {
  const std::uint32_t level = key_level(slot_key);
  const std::uint64_t page = key_page(slot_key);
  if (level >= cfg_.levels || page >= dirs_[level].size()) {
    return Status::kCorruption;
  }
  if (data_durable && ppa != kInvalidPpa) {
    ByteSpan buf, spare;
    if (Status s = nand_->read_page_view(ppa, &buf, &spare); !ok(s)) return s;
    if (ftl::SpareTag::decode(spare).kind != ftl::PageKind::kIndexRecord) {
      return Status::kCorruption;
    }
    hash::HopscotchTable table = codec_.make_table();
    if (Status s = codec_.decode(buf, &table); !ok(s)) return s;
    bool all_durable = true;
    table.for_each([&](const hash::Record& r) {
      all_durable = all_durable && data_durable(static_cast<Ppa>(r.ppa));
    });
    if (!all_durable) return Status::kOk;  // reject: keep the image's slot
  }
  Ppa& slot = dirs_[level][page];
  if (slot == ppa) return Status::kOk;
  cache_.erase(make_key(level, page));
  if (slot != kInvalidPpa) page_owner_.erase(slot);
  slot = ppa;
  if (ppa != kInvalidPpa) page_owner_[ppa] = slot_key;
  return Status::kOk;
}

Status MlHashIndex::recount_keys() {
  // Direct page reads: no cache eviction (a dirty victim would program
  // flash mid-restore), cached copies win over their flash page.
  std::uint64_t n = 0;
  hash::HopscotchTable scratch = codec_.make_table();
  for (std::uint32_t l = 0; l < cfg_.levels; ++l) {
    for (std::uint64_t p = 0; p < dirs_[l].size(); ++p) {
      if (const CachedTable* hit = cache_.get(make_key(l, p))) {
        n += hit->table.size();
        continue;
      }
      const Ppa ppa = dirs_[l][p];
      if (ppa == kInvalidPpa) continue;
      ByteSpan page, spare;
      if (Status s = nand_->read_page_view(ppa, &page, &spare); !ok(s)) {
        return s;
      }
      if (ftl::SpareTag::decode(spare).kind != ftl::PageKind::kIndexRecord) {
        return Status::kCorruption;
      }
      if (Status s = codec_.decode(page, &scratch); !ok(s)) return s;
      n += scratch.size();
    }
  }
  num_keys_ = n;
  return Status::kOk;
}

}  // namespace rhik::index
