// Common interface for KVSSD key-to-physical-location index schemes.
//
// Both RHIK (the paper's contribution) and the baseline multi-level hash
// index implement this interface, so the device, GC, benches and tests
// are index-agnostic. All methods operate on fixed-size key signatures:
// the device layer hashes application keys (§IV-A) before touching the
// index, and performs the full-key recheck that defeats signature
// collisions (§IV-A3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "cache/lru_cache.hpp"
#include "common/histogram.hpp"
#include "common/status.hpp"
#include "flash/address.hpp"
#include "ftl/gc.hpp"
#include "obs/metrics.hpp"

namespace rhik::index {

struct IndexOpStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t flash_reads = 0;        ///< metadata flash reads
  std::uint64_t flash_writes = 0;       ///< metadata flash programs
  std::uint64_t collision_aborts = 0;   ///< uncorrectable hopscotch aborts
  std::uint64_t resizes = 0;
  /// Dirty-table write-backs that failed (device wedged full). Always 0
  /// in a healthy device; tests assert on it.
  std::uint64_t writeback_failures = 0;
  /// Records placed in per-bucket overflow pages (hyper-local scaling,
  /// §VI) instead of being rejected.
  std::uint64_t overflow_inserts = 0;
  /// Flash reads needed per individual index lookup (paper Fig. 5b).
  Histogram reads_per_lookup;

  /// Registers these counters into a metrics snapshot (`index.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("index.puts", puts);
    snap.add_counter("index.gets", gets);
    snap.add_counter("index.erases", erases);
    snap.add_counter("index.flash_reads", flash_reads);
    snap.add_counter("index.flash_writes", flash_writes);
    snap.add_counter("index.collision_aborts", collision_aborts);
    snap.add_counter("index.resizes", resizes);
    snap.add_counter("index.writeback_failures", writeback_failures);
    snap.add_counter("index.overflow_inserts", overflow_inserts);
    snap.add_timer("index.reads_per_lookup", reads_per_lookup);
  }
};

/// One completed resize, for the Fig. 7 analysis.
struct ResizeEvent {
  std::uint64_t keys_before = 0;       ///< records migrated
  std::uint64_t capacity_before = 0;   ///< record capacity before doubling
  std::uint64_t duration_ns = 0;       ///< submission-queue stall time
};

class IIndex : public ftl::GcIndexHooks {
 public:
  ~IIndex() override = default;

  /// Maps `sig` to the pair's starting PPA (insert or update).
  virtual Status put(std::uint64_t sig, flash::Ppa ppa) = 0;

  /// Current mapping for `sig`, if any.
  virtual std::optional<flash::Ppa> get(std::uint64_t sig) = 0;

  /// Removes the mapping. kNotFound if absent.
  virtual Status erase(std::uint64_t sig) = 0;

  /// Probabilistic membership check by signature only (§IV-A3).
  virtual bool exists(std::uint64_t sig) { return get(sig).has_value(); }

  /// Locality group of a signature: operations in the same group hit the
  /// same flash-resident metadata page(s), so executing a batch grouped
  /// by this value loads each page once per group instead of once per
  /// op. Schemes without such locality return a constant (grouping then
  /// degenerates to submission order).
  [[nodiscard]] virtual std::uint64_t locality_group(
      std::uint64_t sig) const noexcept {
    (void)sig;
    return 0;
  }

  [[nodiscard]] virtual std::uint64_t size() const = 0;
  /// Total record capacity at the current configuration.
  [[nodiscard]] virtual std::uint64_t capacity() const = 0;
  [[nodiscard]] double occupancy() const {
    const std::uint64_t cap = capacity();
    return cap == 0 ? 0.0 : static_cast<double>(size()) / static_cast<double>(cap);
  }

  /// DRAM-resident footprint of the scheme's always-in-memory structures
  /// (directories), excluding the shared page cache.
  [[nodiscard]] virtual std::uint64_t dram_bytes() const = 0;

  /// Persists all dirty state (cached tables, directory checkpoint).
  virtual Status flush() = 0;

  /// Full scan over every (signature, PPA) record. Loads record pages as
  /// needed (flash reads are charged); used by the iterator extension
  /// (§VI) and by consistency checks.
  virtual Status scan(
      const std::function<void(std::uint64_t sig, flash::Ppa ppa)>& fn) = 0;

  [[nodiscard]] virtual const IndexOpStats& op_stats() const = 0;
  virtual void reset_op_stats() = 0;

  /// Statistics of the scheme's DRAM page cache (the paper's "FTL cache").
  [[nodiscard]] virtual const cache::CacheStats& cache_stats() const = 0;
};

}  // namespace rhik::index
