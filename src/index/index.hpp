// Common interface for KVSSD key-to-physical-location index schemes.
//
// Both RHIK (the paper's contribution) and the baseline multi-level hash
// index implement this interface, so the device, GC, benches and tests
// are index-agnostic. All methods operate on fixed-size key signatures:
// the device layer hashes application keys (§IV-A) before touching the
// index, and performs the full-key recheck that defeats signature
// collisions (§IV-A3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "cache/lru_cache.hpp"
#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "common/status.hpp"
#include "flash/address.hpp"
#include "ftl/gc.hpp"
#include "obs/metrics.hpp"

namespace rhik::index {

struct IndexOpStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t erases = 0;
  std::uint64_t flash_reads = 0;        ///< metadata flash reads
  std::uint64_t flash_writes = 0;       ///< metadata flash programs
  std::uint64_t collision_aborts = 0;   ///< uncorrectable hopscotch aborts
  std::uint64_t resizes = 0;
  /// Dirty-table write-backs that failed (device wedged full). Always 0
  /// in a healthy device; tests assert on it.
  std::uint64_t writeback_failures = 0;
  /// Records placed in per-bucket overflow pages (hyper-local scaling,
  /// §VI) instead of being rejected.
  std::uint64_t overflow_inserts = 0;
  /// Puts rejected because the directory reached its addressing limit
  /// (2^38 entries) and cannot double again.
  std::uint64_t index_full = 0;
  /// Flash reads needed per individual index lookup (paper Fig. 5b).
  Histogram reads_per_lookup;

  /// Registers these counters into a metrics snapshot (`index.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("index.puts", puts);
    snap.add_counter("index.gets", gets);
    snap.add_counter("index.erases", erases);
    snap.add_counter("index.flash_reads", flash_reads);
    snap.add_counter("index.flash_writes", flash_writes);
    snap.add_counter("index.collision_aborts", collision_aborts);
    snap.add_counter("index.resizes", resizes);
    snap.add_counter("index.writeback_failures", writeback_failures);
    snap.add_counter("index.overflow_inserts", overflow_inserts);
    snap.add_counter("index.index_full", index_full);
    snap.add_timer("index.reads_per_lookup", reads_per_lookup);
  }
};

/// One completed resize, for the Fig. 7 analysis.
struct ResizeEvent {
  std::uint64_t keys_before = 0;       ///< records migrated
  std::uint64_t capacity_before = 0;   ///< record capacity before doubling
  std::uint64_t duration_ns = 0;       ///< submission-queue stall time
};

/// Sink for index-delta records emitted on the write path (checkpoint
/// journaling, DESIGN.md §8). The index reports every durable mapping
/// change so that `checkpoint image + journal tail` reconstructs its
/// state without a device scan:
///  - journal_put / journal_erase: a signature's mapping changed;
///  - journal_repoint: a metadata-page slot moved to a new PPA (record
///    table write-back, GC relocation), keyed by the index's own slot id;
///  - journal_resize: a directory doubling began (new generation opened);
///    replay re-opens the same migration window before applying later
///    records;
///  - journal_migrated: one old-generation bucket finished migrating into
///    the new generation (its new-generation repoints precede this
///    record), so replay retires the old bucket exactly where the live
///    index did.
class IndexJournal {
 public:
  virtual ~IndexJournal() = default;
  virtual void journal_put(std::uint64_t sig, flash::Ppa ppa) = 0;
  virtual void journal_erase(std::uint64_t sig) = 0;
  virtual void journal_repoint(std::uint64_t slot_key, flash::Ppa ppa) = 0;
  virtual void journal_resize(std::uint32_t new_gen, std::uint32_t new_bits) {
    (void)new_gen;
    (void)new_bits;
  }
  virtual void journal_migrated(std::uint64_t old_slot_key) {
    (void)old_slot_key;
  }
};

class IIndex : public ftl::GcIndexHooks {
 public:
  ~IIndex() override = default;

  /// Maps `sig` to the pair's starting PPA (insert or update).
  virtual Status put(std::uint64_t sig, flash::Ppa ppa) = 0;

  /// Current mapping for `sig`, if any.
  virtual std::optional<flash::Ppa> get(std::uint64_t sig) = 0;

  /// Status-carrying lookup: distinguishes "no mapping" (kOk + nullopt)
  /// from a metadata I/O failure (non-kOk). The device layer uses this on
  /// every data-path probe so a torn metadata page surfaces as kIoError
  /// instead of a phantom miss that could overwrite live data.
  virtual Result<std::optional<flash::Ppa>> lookup(std::uint64_t sig) {
    return get(sig);
  }

  /// Removes the mapping. kNotFound if absent.
  virtual Status erase(std::uint64_t sig) = 0;

  /// Probabilistic membership check by signature only (§IV-A3).
  virtual bool exists(std::uint64_t sig) { return get(sig).has_value(); }

  /// Locality group of a signature: operations in the same group hit the
  /// same flash-resident metadata page(s), so executing a batch grouped
  /// by this value loads each page once per group instead of once per
  /// op. Schemes without such locality return a constant (grouping then
  /// degenerates to submission order).
  [[nodiscard]] virtual std::uint64_t locality_group(
      std::uint64_t sig) const noexcept {
    (void)sig;
    return 0;
  }

  [[nodiscard]] virtual std::uint64_t size() const = 0;
  /// Total record capacity at the current configuration.
  [[nodiscard]] virtual std::uint64_t capacity() const = 0;
  [[nodiscard]] double occupancy() const {
    const std::uint64_t cap = capacity();
    return cap == 0 ? 0.0 : static_cast<double>(size()) / static_cast<double>(cap);
  }

  /// DRAM-resident footprint of the scheme's always-in-memory structures
  /// (directories), excluding the shared page cache.
  [[nodiscard]] virtual std::uint64_t dram_bytes() const = 0;

  /// Persists all dirty state (cached tables, directory checkpoint).
  virtual Status flush() = 0;

  /// Full scan over every (signature, PPA) record. Loads record pages as
  /// needed (flash reads are charged); used by the iterator extension
  /// (§VI) and by consistency checks.
  virtual Status scan(
      const std::function<void(std::uint64_t sig, flash::Ppa ppa)>& fn) = 0;

  [[nodiscard]] virtual const IndexOpStats& op_stats() const = 0;
  virtual void reset_op_stats() = 0;

  /// Statistics of the scheme's DRAM page cache (the paper's "FTL cache").
  [[nodiscard]] virtual const cache::CacheStats& cache_stats() const = 0;

  // -- Checkpointing hooks (DESIGN.md §8) ----------------------------------
  /// Installs (or clears, with nullptr) the delta-record sink. Schemes
  /// that support checkpointing report every durable mapping change.
  virtual void set_journal(IndexJournal* journal) { (void)journal; }

  /// Serializes the scheme's DRAM-resident state (directories, metadata
  /// page PPAs) into `out`. Empty result = not supported.
  virtual Status serialize_image(Bytes& out) {
    (void)out;
    return Status::kUnsupported;
  }

  /// Restores state produced by serialize_image(). The caller owns
  /// allocator liveness accounting; this only rebuilds DRAM structures.
  virtual Status load_image(ByteSpan image) {
    (void)image;
    return Status::kUnsupported;
  }

  /// Replays a journal_repoint record: rewrites the slot's PPA
  /// (last-writer-wins, idempotent). No allocator liveness side effects.
  /// When `data_durable` is provided, the repointed record page is decoded
  /// and the repoint is silently rejected (slot left unchanged, kOk) if
  /// any entry references a non-durable data location: a page written
  /// back under cache pressure may map signatures to extents that were
  /// still in the store's RAM buffer at a power cut. The rejected page's
  /// durable content is reconstructible — every mapping in it is either
  /// pre-checkpoint (in the image's page) or in the journal tail.
  virtual Status apply_journal_repoint(
      std::uint64_t slot_key, flash::Ppa ppa,
      const std::function<bool(flash::Ppa)>& data_durable = {}) {
    (void)slot_key;
    (void)ppa;
    (void)data_durable;
    return Status::kUnsupported;
  }

  /// True while a structural maintenance operation (incremental resize)
  /// is in flight; checkpoints are deferred until it completes.
  [[nodiscard]] virtual bool maintenance_active() const { return false; }

  /// Advances in-flight structural maintenance (incremental migration) by
  /// up to `budget` work units; 0 means the scheme's default quantum.
  /// Called from the device background pump (gc_tick / idle loop), so a
  /// quiescent device still drains a doubling. Returns true iff progress
  /// was made — callers stop pumping when it returns false, so a wedged
  /// migration (e.g. device full) must not report progress forever.
  virtual bool pump_maintenance(std::uint32_t budget = 0) {
    (void)budget;
    return false;
  }

  /// Replays a journal_resize record: re-opens the same migration window
  /// (old generation -> new generation with `new_bits` directory bits)
  /// the live index had when it journaled the doubling. kCorruption if
  /// the record is inconsistent with the restored image (caller falls
  /// back to the full scan).
  virtual Status apply_journal_resize(std::uint32_t new_gen,
                                      std::uint32_t new_bits) {
    (void)new_gen;
    (void)new_bits;
    return Status::kUnsupported;
  }

  /// Replays a journal_migrated record: retires one old-generation bucket
  /// whose new-generation repoints were already applied from earlier
  /// records in the same journal prefix.
  virtual Status apply_journal_migrate(std::uint64_t old_slot_key) {
    (void)old_slot_key;
    return Status::kUnsupported;
  }

  /// Replays a journal_put record. Unlike put(), replay must never
  /// trigger structural changes (resize, bucket migration): structural
  /// transitions replay only from explicit resize/migrate records, so a
  /// restored index matches the crashed one bucket for bucket. A scheme
  /// that cannot place the record without structural work returns non-kOk
  /// and the caller falls back to the full scan.
  virtual Status apply_journal_put(std::uint64_t sig, flash::Ppa ppa) {
    return put(sig, ppa);
  }

  /// Replays a journal_erase record (idempotent: kNotFound is success).
  virtual Status apply_journal_erase(std::uint64_t sig) {
    const Status s = erase(sig);
    return s == Status::kNotFound ? Status::kOk : s;
  }

  /// Recomputes the live key count from actual table occupancy. Called
  /// once at the end of a checkpoint fast-restore: journal repoints can
  /// fast-forward directory slots to pages that already hold keys the
  /// put/erase overlay then re-applies as no-ops, so the incrementally
  /// maintained count drifts from the tables it summarizes. For a
  /// growing index the drift is load-bearing — a low count starves the
  /// resize trigger until inserts physically fail with collision aborts
  /// on a table the threshold said had headroom.
  virtual Status recount_keys() { return Status::kOk; }
};

}  // namespace rhik::index
