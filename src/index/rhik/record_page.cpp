#include "index/rhik/record_page.hpp"

#include <cassert>

namespace rhik::index {

void IndexPageSpare::encode(MutByteSpan spare) const noexcept {
  assert(spare.size() >= kEncodedSize);
  std::size_t off = ftl::SpareTag::kEncodedSize;  // tag written separately
  put_u32(spare, off, generation); off += 4;
  put_u64(spare, off, bucket); off += 8;
  put_u32(spare, off, record_count); off += 4;
  put_u32(spare, off, checkpoint_id); off += 4;
  put_u16(spare, off, fragment); off += 2;
  put_u16(spare, off, fragments_total);
}

IndexPageSpare IndexPageSpare::decode(ByteSpan spare) noexcept {
  IndexPageSpare s;
  if (spare.size() < kEncodedSize) return s;
  std::size_t off = ftl::SpareTag::kEncodedSize;
  s.generation = get_u32(spare, off); off += 4;
  s.bucket = get_u64(spare, off); off += 8;
  s.record_count = get_u32(spare, off); off += 4;
  s.checkpoint_id = get_u32(spare, off); off += 4;
  s.fragment = get_u16(spare, off); off += 2;
  s.fragments_total = get_u16(spare, off);
  return s;
}

RecordPageCodec::RecordPageCodec(const RhikConfig& cfg, std::uint32_t page_size)
    : cfg_(cfg), page_size_(page_size), r_(cfg.records_per_page(page_size)) {
  assert(r_ >= cfg_.hop_range);
}

void RecordPageCodec::encode(const hash::HopscotchTable& table, MutByteSpan page) const {
  assert(table.capacity() == r_);
  assert(page.size() >= page_size_);
  std::fill(page.begin(), page.begin() + page_size_, 0);
  for (std::uint32_t i = 0; i < r_; ++i) {
    if (table.slot_used(i)) {
      const auto& rec = table.slot(i);
      put_u64(page, slot_off(i), rec.sig);
      put_u40(page, slot_off(i) + cfg_.sig_bytes, rec.ppa);
    }
    // hopinfo, little-endian truncated to hopinfo_bytes
    const std::uint32_t info = table.hopinfo(i);
    for (std::uint32_t b = 0; b < cfg_.hopinfo_bytes(); ++b) {
      page[hop_off(i) + b] = static_cast<std::uint8_t>(info >> (8 * b));
    }
  }
}

Status RecordPageCodec::decode(ByteSpan page, hash::HopscotchTable* out) const {
  assert(out != nullptr);
  if (page.size() < page_size_) return Status::kInvalidArgument;
  *out = make_table();
  for (std::uint32_t bucket = 0; bucket < r_; ++bucket) {
    std::uint32_t info = 0;
    for (std::uint32_t b = 0; b < cfg_.hopinfo_bytes(); ++b) {
      info |= std::uint32_t{page[hop_off(bucket) + b]} << (8 * b);
    }
    while (info != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
      info &= info - 1;
      if (bit >= cfg_.hop_range) return Status::kCorruption;
      const std::uint32_t idx = (bucket + bit) % r_;
      hash::Record rec;
      rec.sig = get_u64(page, slot_off(idx));
      rec.ppa = get_u40(page, slot_off(idx) + cfg_.sig_bytes);
      if (out->home_bucket(rec.sig) != bucket) return Status::kCorruption;
      if (out->slot_used(idx)) return Status::kCorruption;
      out->load_slot(idx, rec, bucket);
    }
  }
  return Status::kOk;
}

}  // namespace rhik::index
