#include "index/rhik/record_page.hpp"

#include <cassert>
#include <cstring>

namespace rhik::index {

void IndexPageSpare::encode(MutByteSpan spare) const noexcept {
  assert(spare.size() >= kEncodedSize);
  std::size_t off = ftl::SpareTag::kEncodedSize;  // tag written separately
  put_u32(spare, off, generation); off += 4;
  put_u64(spare, off, bucket); off += 8;
  put_u32(spare, off, record_count); off += 4;
  put_u32(spare, off, checkpoint_id); off += 4;
  put_u16(spare, off, fragment); off += 2;
  put_u16(spare, off, fragments_total);
}

IndexPageSpare IndexPageSpare::decode(ByteSpan spare) noexcept {
  IndexPageSpare s;
  if (spare.size() < kEncodedSize) return s;
  std::size_t off = ftl::SpareTag::kEncodedSize;
  s.generation = get_u32(spare, off); off += 4;
  s.bucket = get_u64(spare, off); off += 8;
  s.record_count = get_u32(spare, off); off += 4;
  s.checkpoint_id = get_u32(spare, off); off += 4;
  s.fragment = get_u16(spare, off); off += 2;
  s.fragments_total = get_u16(spare, off);
  return s;
}

RecordPageCodec::RecordPageCodec(const RhikConfig& cfg, std::uint32_t page_size)
    : cfg_(cfg), page_size_(page_size), r_(cfg.records_per_page(page_size)) {
  assert(r_ >= cfg_.hop_range);
}

void RecordPageCodec::encode(const hash::HopscotchTable& table, MutByteSpan page) const {
  assert(table.capacity() == r_);
  assert(page.size() >= page_size_);
  std::fill(page.begin(), page.begin() + page_size_, 0);

  // Hot path (default geometry: 8 B sig, 5 B ppa, 4 B hopinfo): walk the
  // occupancy words so only live slots are visited, and blit the hopinfo
  // array in one copy — the DRAM array is already the little-endian u32
  // sequence the page stores. The serializer used to touch all R slots.
  if (cfg_.sig_bytes == 8 && cfg_.ppa_bytes == 5 && cfg_.hopinfo_bytes() == 4) {
    std::uint8_t* const slots = page.data();
    const auto& words = table.used_words();
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const std::size_t i = (w << 6) + bit;
        const hash::Record rec = table.slot(static_cast<std::uint32_t>(i));
        std::uint8_t* const p = slots + i * 13;
        std::memcpy(p, &rec.sig, 8);
        std::memcpy(p + 8, &rec.ppa, 5);
      }
    }
    std::memcpy(slots + hop_off(0), table.hopinfo_words().data(),
                std::size_t{r_} * 4);
    return;
  }

  for (std::uint32_t i = 0; i < r_; ++i) {
    if (table.slot_used(i)) {
      const auto& rec = table.slot(i);
      put_u64(page, slot_off(i), rec.sig);
      put_u40(page, slot_off(i) + cfg_.sig_bytes, rec.ppa);
    }
    // hopinfo, little-endian truncated to hopinfo_bytes
    const std::uint32_t info = table.hopinfo(i);
    for (std::uint32_t b = 0; b < cfg_.hopinfo_bytes(); ++b) {
      page[hop_off(i) + b] = static_cast<std::uint8_t>(info >> (8 * b));
    }
  }
}

Status RecordPageCodec::decode(ByteSpan page, hash::HopscotchTable* out) const {
  assert(out != nullptr);
  if (page.size() < page_size_) return Status::kInvalidArgument;
  // Reuse the caller's table storage when the geometry matches; a fresh
  // make_table() would zero-initialize four arrays per decode.
  const bool reuse = out->capacity() == r_ && out->hop_range() == cfg_.hop_range;
  if (!reuse) *out = make_table();

  const std::uint32_t hb = cfg_.hopinfo_bytes();
  const std::size_t hop0 = hop_off(0);

  if (cfg_.sig_bytes == 8 && cfg_.ppa_bytes == 5 && hb == 4) {
    // Hot path: adopt the page's hopinfo region wholesale (it is already
    // the little-endian u32 array the table keeps in DRAM), then walk it
    // two buckets per 64-bit load so runs of empty buckets cost one
    // compare. Slots are still validated bit by bit as they load.
    out->reset_with_hopinfo(page.data() + hop0);
    const std::uint8_t* const slots = page.data();
    Status bad = Status::kOk;
    const auto load_bucket = [&](std::uint32_t bucket, std::uint32_t info) {
      while (info != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
        info &= info - 1;
        if (bit >= cfg_.hop_range) { bad = Status::kCorruption; return false; }
        std::uint32_t idx = bucket + bit;
        if (idx >= r_) idx -= r_;
        hash::Record rec;
        std::memcpy(&rec.sig, slots + idx * 13, 8);
        rec.ppa = 0;
        std::memcpy(&rec.ppa, slots + idx * 13 + 8, 5);
        if (out->home_bucket(rec.sig) != bucket || out->slot_used(idx)) {
          bad = Status::kCorruption;
          return false;
        }
        out->load_slot(idx, rec, bucket);
      }
      return true;
    };
    std::uint32_t bucket = 0;
    for (; bucket + 2 <= r_; bucket += 2) {
      std::uint64_t two;
      std::memcpy(&two, page.data() + hop0 + std::size_t{bucket} * 4, 8);
      if (two == 0) continue;
#if defined(__GNUC__) || defined(__clang__)
      // The page is a cold zero-copy NAND view and records sit scattered
      // by hopinfo; start the slot lines of a populated bucket a few
      // steps ahead so its misses overlap this bucket's loads.
      if (bucket + 18 <= r_) {
        std::uint64_t ahead;
        std::memcpy(&ahead, page.data() + hop0 + std::size_t{bucket + 16} * 4, 8);
        if (ahead != 0) {
          __builtin_prefetch(slots + std::size_t{bucket + 16} * 13);
          __builtin_prefetch(slots + std::size_t{bucket + 16} * 13 + 64);
        }
      }
#endif
      if (!load_bucket(bucket, static_cast<std::uint32_t>(two)) ||
          !load_bucket(bucket + 1, static_cast<std::uint32_t>(two >> 32))) {
        return bad;
      }
    }
    if (bucket < r_ &&
        !load_bucket(bucket, get_u32(page, hop0 + std::size_t{bucket} * 4))) {
      return bad;
    }
    return Status::kOk;
  }

  if (reuse) out->clear();
  for (std::uint32_t bucket = 0; bucket < r_; ++bucket) {
    std::uint32_t info = 0;
    for (std::uint32_t b = 0; b < hb; ++b) {
      info |= std::uint32_t{page[hop_off(bucket) + b]} << (8 * b);
    }
    while (info != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
      info &= info - 1;
      if (bit >= cfg_.hop_range) return Status::kCorruption;
      std::uint32_t idx = bucket + bit;
      if (idx >= r_) idx -= r_;
      hash::Record rec;
      rec.sig = get_u64(page, slot_off(idx));
      rec.ppa = get_u40(page, slot_off(idx) + cfg_.sig_bytes);
      if (out->home_bucket(rec.sig) != bucket) return Status::kCorruption;
      if (out->slot_used(idx)) return Status::kCorruption;
      out->load_slot(idx, rec, bucket);
    }
  }
  return Status::kOk;
}

}  // namespace rhik::index
