// Serialization of record-layer hash tables to/from flash pages.
//
// A record-layer page is one independent hopscotch table (§IV-A): R slots
// of [key signature | PPA] followed by R hopinfo bitmaps. R follows Eq. 1
// exactly because the table header lives in the page's spare area, not in
// the main area. Empty slots are reconstructed from the hopinfo bitmaps,
// so their main-area bytes are irrelevant (left zeroed).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ftl/layout.hpp"
#include "hash/hopscotch.hpp"
#include "index/rhik/config.hpp"

namespace rhik::index {

/// Spare-area metadata of an index-zone page, after the generic SpareTag.
/// Record pages carry their owning directory bucket + index generation so
/// GC and recovery can re-home them; directory checkpoint pages carry a
/// checkpoint id and fragment position.
struct IndexPageSpare {
  std::uint32_t generation = 0;
  std::uint64_t bucket = 0;      ///< record pages: directory bucket
  std::uint32_t record_count = 0;
  // directory checkpoint fields
  std::uint32_t checkpoint_id = 0;
  std::uint16_t fragment = 0;
  std::uint16_t fragments_total = 0;

  static constexpr std::size_t kEncodedSize =
      ftl::SpareTag::kEncodedSize + 4 + 8 + 4 + 4 + 2 + 2;

  void encode(MutByteSpan spare) const noexcept;
  static IndexPageSpare decode(ByteSpan spare) noexcept;
};

class RecordPageCodec {
 public:
  explicit RecordPageCodec(const RhikConfig& cfg, std::uint32_t page_size);

  [[nodiscard]] std::uint32_t records_per_page() const noexcept { return r_; }

  /// Serializes a table into a page-size buffer. The table's capacity
  /// must equal records_per_page().
  void encode(const hash::HopscotchTable& table, MutByteSpan page) const;

  /// Rebuilds the table from a page image. Returns kCorruption on
  /// structurally invalid hopinfo.
  Status decode(ByteSpan page, hash::HopscotchTable* out) const;

  /// Fresh empty table with this codec's geometry.
  [[nodiscard]] hash::HopscotchTable make_table() const {
    return hash::HopscotchTable(r_, cfg_.hop_range);
  }

 private:
  [[nodiscard]] std::size_t slot_off(std::uint32_t i) const noexcept {
    return std::size_t{i} * (cfg_.sig_bytes + cfg_.ppa_bytes);
  }
  [[nodiscard]] std::size_t hop_off(std::uint32_t i) const noexcept {
    return std::size_t{r_} * (cfg_.sig_bytes + cfg_.ppa_bytes) +
           std::size_t{i} * cfg_.hopinfo_bytes();
  }

  RhikConfig cfg_;
  std::uint32_t page_size_;
  std::uint32_t r_;
};

}  // namespace rhik::index
