// RHIK — Re-configurable Hash-based Indexing for KVSSD (paper §IV).
//
// Two-level hash index:
//   * Directory layer: 2^D physical page addresses kept in SSD DRAM
//     (checkpointed to flash periodically). The D least-significant bits
//     of the 64-bit key signature select the directory entry.
//   * Record layer: one fixed-size hopscotch table per flash page (R
//     records, Eq. 1), served from flash through a byte-budgeted DRAM
//     cache. Dirty tables are written back on eviction (log-style: a new
//     page is programmed, the directory entry is repointed, the old page
//     goes stale for GC).
//
// Any record lookup therefore costs at most ONE flash read — the record
// page — which is the paper's headline property.
//
// Resizing (§IV-A2): when global occupancy crosses the threshold the
// index doubles. Legacy stop-the-world mode migrates everything at once
// while the submission queue is held (the stall is measured for Fig. 7);
// incremental mode (§VI "real-time index scaling", the default) opens a
// migration window instead: foreground ops are routed to whichever
// generation still owns their bucket, and the window drains in bounded
// background quanta via pump_maintenance() (DESIGN.md §11).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.hpp"
#include "flash/nand.hpp"
#include "ftl/page_allocator.hpp"
#include "index/index.hpp"
#include "index/rhik/config.hpp"
#include "index/rhik/record_page.hpp"

namespace rhik::index {

class RhikIndex final : public IIndex {
 public:
  RhikIndex(flash::NandDevice* nand, ftl::PageAllocator* alloc, RhikConfig cfg,
            std::uint64_t cache_budget_bytes);

  // -- IIndex ---------------------------------------------------------------
  Status put(std::uint64_t sig, flash::Ppa ppa) override;
  std::optional<flash::Ppa> get(std::uint64_t sig) override;
  Result<std::optional<flash::Ppa>> lookup(std::uint64_t sig) override;
  Status erase(std::uint64_t sig) override;
  [[nodiscard]] std::uint64_t size() const override { return num_keys_; }
  [[nodiscard]] std::uint64_t capacity() const override {
    return dir_size() * codec_.records_per_page();
  }
  [[nodiscard]] std::uint64_t dram_bytes() const override;
  Status flush() override;
  Status scan(const std::function<void(std::uint64_t, flash::Ppa)>& fn) override;
  /// Directory bucket: ops on the same bucket share one record page.
  [[nodiscard]] std::uint64_t locality_group(
      std::uint64_t sig) const noexcept override {
    return sig & dir_mask();
  }
  [[nodiscard]] const IndexOpStats& op_stats() const override { return stats_; }
  void reset_op_stats() override {
    stats_ = {};
    cache_.reset_stats();
  }

  // -- GcIndexHooks -----------------------------------------------------------
  std::optional<flash::Ppa> gc_lookup(std::uint64_t sig) override;
  Status gc_update_location(std::uint64_t sig, flash::Ppa new_ppa) override;
  bool gc_is_live_index_page(flash::Ppa ppa) const override;
  Status gc_relocate_index_page(flash::Ppa ppa) override;

  // -- Introspection ----------------------------------------------------------
  [[nodiscard]] std::uint32_t dir_bits() const noexcept { return dir_bits_; }
  [[nodiscard]] std::uint64_t dir_size() const noexcept {
    return std::uint64_t{1} << dir_bits_;
  }
  [[nodiscard]] std::uint32_t records_per_page() const noexcept {
    return codec_.records_per_page();
  }
  [[nodiscard]] const RhikConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<ResizeEvent>& resize_history() const noexcept {
    return resize_history_;
  }
  [[nodiscard]] bool migration_active() const noexcept { return mig_.has_value(); }
  /// Buckets currently carrying an overflow page (§VI extension).
  /// Maintained as a counter on overflow create/drop so callers can poll
  /// it per-op without an O(dir_size) scan.
  [[nodiscard]] std::uint64_t overflow_pages() const noexcept {
#ifndef NDEBUG
    std::uint64_t n = 0;
    for (const auto p : ov_dir_) n += (p != flash::kInvalidPpa);
    assert(n == ov_pages_);
#endif
    return ov_pages_;
  }
  [[nodiscard]] const cache::CacheStats& cache_stats() const noexcept override {
    return cache_.stats();
  }

  /// Serialized directory image (what a checkpoint page sequence holds);
  /// `load_directory` restores a flushed index from it. Together these
  /// give tests a clean-shutdown persistence path.
  [[nodiscard]] Bytes serialize_directory() const;
  Status load_directory(ByteSpan image);

  // -- Checkpointing hooks (IIndex) ------------------------------------------
  void set_journal(IndexJournal* journal) override { journal_ = journal; }
  Status serialize_image(Bytes& out) override {
    out = serialize_directory();
    return Status::kOk;
  }
  Status load_image(ByteSpan image) override;
  Status apply_journal_repoint(
      std::uint64_t slot_key, flash::Ppa ppa,
      const std::function<bool(flash::Ppa)>& data_durable = {}) override;
  Status apply_journal_resize(std::uint32_t new_gen,
                              std::uint32_t new_bits) override;
  Status apply_journal_migrate(std::uint64_t old_slot_key) override;
  Status apply_journal_put(std::uint64_t sig, flash::Ppa ppa) override;
  Status apply_journal_erase(std::uint64_t sig) override;
  Status recount_keys() override;
  [[nodiscard]] bool maintenance_active() const override {
    return migration_active();
  }
  bool pump_maintenance(std::uint32_t budget) override;

 private:
  /// Cache/owner key: generation in the top bits, bucket below. PPAs are
  /// 40-bit, so buckets are comfortably below 2^40. Bit 39 of the bucket
  /// field marks a per-bucket overflow table (hyper-local scaling, §VI).
  static constexpr std::uint64_t kOvBit = std::uint64_t{1} << 39;
  static constexpr std::uint64_t make_key(std::uint32_t gen, std::uint64_t bucket) {
    return (std::uint64_t{gen} << 40) | bucket;
  }
  static constexpr std::uint32_t key_gen(std::uint64_t key) {
    return static_cast<std::uint32_t>(key >> 40);
  }
  static constexpr std::uint64_t key_bucket(std::uint64_t key) {
    return key & ((std::uint64_t{1} << 40) - 1);
  }

  [[nodiscard]] std::uint64_t dir_mask() const noexcept { return dir_size() - 1; }

  /// Directory slot for a keyed bucket (primary or overflow) of the
  /// current generation or the migration source.
  flash::Ppa& dir_slot(std::uint32_t gen, std::uint64_t keyed_bucket);

  /// True if the bucket has an overflow table (persisted or cached).
  [[nodiscard]] bool has_overflow(std::uint32_t gen, std::uint64_t bucket);

  /// Loads (or materializes empty) the table for a bucket; counts flash
  /// reads into *reads.
  Result<hash::HopscotchTable*> load_table(std::uint32_t gen, std::uint64_t bucket,
                                           std::uint64_t* reads);

  /// Programs a table to a fresh index-zone page and repoints the
  /// directory entry; marks the previous page stale.
  Status write_table(std::uint32_t gen, std::uint64_t bucket,
                     const hash::HopscotchTable& table, bool for_gc);

  /// Which generation/bucket currently owns a signature: the migration
  /// source while its old bucket is unmigrated, else the current
  /// generation. Foreground ops target this home so a doubling charges
  /// them no migration work.
  struct Home {
    std::uint32_t gen;
    std::uint64_t bucket;
  };
  [[nodiscard]] Home window_home(std::uint64_t sig) const noexcept;

  /// Insert/update of sig->ppa in its home (primary or bucket-private
  /// overflow table); sets *existed to whether the signature was already
  /// mapped. No resize, no migration work.
  Status insert_at(const Home& home, std::uint64_t sig, flash::Ppa ppa,
                   bool* existed, std::uint64_t* reads);
  /// Removes sig from its home; sets *had.
  Status erase_at(const Home& home, std::uint64_t sig, bool* had,
                  std::uint64_t* reads);

  /// Splits one source bucket of a doubling into its two target buckets
  /// and persists them. Shared by both resize modes.
  Status migrate_bucket(std::uint64_t old_bucket);

  /// Moves the live directory into the migration snapshot and opens the
  /// doubled, empty new generation. Shared by maybe_resize and replay.
  void open_migration_window();
  /// Migrates up to `budget` pending source buckets.
  Status pump_migration(std::uint32_t budget);
  Status ensure_bucket_migrated(std::uint64_t old_bucket);
  void finish_migration();

  Status maybe_resize();
  /// True once the next doubling would exceed min(max_dir_bits, 38): the
  /// index can no longer grow, so a failed insert of a NEW key is
  /// kIndexFull (updates and fitting inserts still succeed).
  [[nodiscard]] bool growth_capped() const noexcept {
    return dir_bits_ + 1 > std::min(cfg_.max_dir_bits, 38u);
  }
  Status checkpoint_directory();

  /// get() without op accounting, for GC and internal exist checks.
  Result<std::optional<flash::Ppa>> lookup_internal(std::uint64_t sig,
                                                    std::uint64_t* reads);

  flash::NandDevice* nand_;
  ftl::PageAllocator* alloc_;
  RhikConfig cfg_;
  RecordPageCodec codec_;

  std::uint32_t dir_bits_ = 0;
  std::uint32_t gen_ = 0;
  std::vector<flash::Ppa> dir_;
  /// Per-bucket overflow record pages (all kInvalidPpa unless the
  /// local_overflow extension engages).
  std::vector<flash::Ppa> ov_dir_;
  /// Count of non-invalid ov_dir_ entries (== overflow_pages()).
  std::uint64_t ov_pages_ = 0;

  struct CachedTable {
    hash::HopscotchTable table;
  };
  cache::LruCache<std::uint64_t, CachedTable> cache_;

  /// Live index-zone record pages -> owning (gen, bucket) key.
  std::unordered_map<flash::Ppa, std::uint64_t> page_owner_;
  /// Live directory-checkpoint pages.
  std::vector<flash::Ppa> checkpoint_pages_;
  std::uint32_t checkpoint_id_ = 0;
  std::uint32_t writes_since_checkpoint_ = 0;

  std::uint64_t num_keys_ = 0;
  IndexOpStats stats_;
  std::vector<ResizeEvent> resize_history_;

  struct Migration {
    std::uint32_t old_bits = 0;
    std::uint32_t old_gen = 0;
    std::vector<flash::Ppa> old_dir;
    std::vector<flash::Ppa> old_ov;
    std::vector<bool> migrated;
    std::uint64_t next_bucket = 0;   ///< scan cursor over old buckets
    std::uint64_t pending = 0;       ///< old buckets not yet migrated
    // Snapshot for the ResizeEvent recorded at completion (Fig. 7).
    std::uint64_t keys_before = 0;
    std::uint64_t capacity_before = 0;
    SimTime start_time = 0;
  };
  std::optional<Migration> mig_;
  bool in_maintenance_ = false;  ///< guards reentrant resize/migration
  /// A kRecResize replayed since load_image(): journal repoints rejected
  /// by the durability vet must fall back to the full scan, because
  /// last-repoint-wins may have skipped a migration-target repoint whose
  /// source bucket a migrate record in the same tail retires — keeping
  /// the image's (empty) slot would lose pre-checkpoint mappings.
  bool replay_saw_resize_ = false;
  /// Delta-record sink for device-level checkpointing (may be null).
  IndexJournal* journal_ = nullptr;
};

}  // namespace rhik::index
