#include "index/rhik/rhik_index.hpp"

#include <algorithm>
#include <cassert>

namespace rhik::index {

using flash::kInvalidPpa;
using flash::Ppa;

RhikIndex::RhikIndex(flash::NandDevice* nand, ftl::PageAllocator* alloc,
                     RhikConfig cfg, std::uint64_t cache_budget_bytes)
    : nand_(nand),
      alloc_(alloc),
      cfg_(cfg),
      codec_(cfg, nand->geometry().page_size),
      cache_(cache_budget_bytes, nand->geometry().page_size) {
  assert(nand_ && alloc_);
  dir_bits_ = cfg_.initial_dir_bits(nand_->geometry().page_size);
  assert(dir_bits_ < 39);  // bucket ids must stay below the overflow bit
  dir_.assign(dir_size(), kInvalidPpa);
  ov_dir_.assign(dir_size(), kInvalidPpa);
  cache_.set_writeback([this](const std::uint64_t& key, CachedTable& v) {
    // Write-back of an evicted dirty table. Failure means the device is
    // wedged full (GC not keeping up); surfaced via stats since the
    // eviction path cannot propagate a status.
    const Status s = write_table(key_gen(key), key_bucket(key), v.table,
                                 /*for_gc=*/false);
    if (!ok(s)) stats_.writeback_failures++;
  });
}

Ppa& RhikIndex::dir_slot(std::uint32_t gen, std::uint64_t keyed_bucket) {
  const bool ov = (keyed_bucket & kOvBit) != 0;
  const std::uint64_t b = keyed_bucket & ~kOvBit;
  if (gen == gen_) return ov ? ov_dir_[b] : dir_[b];
  assert(mig_ && gen == mig_->old_gen);
  return ov ? mig_->old_ov[b] : mig_->old_dir[b];
}

bool RhikIndex::has_overflow(std::uint32_t gen, std::uint64_t bucket) {
  if (!cfg_.local_overflow) return false;
  const std::uint64_t keyed = bucket | kOvBit;
  return dir_slot(gen, keyed) != kInvalidPpa ||
         cache_.contains(make_key(gen, keyed));
}

Result<hash::HopscotchTable*> RhikIndex::load_table(std::uint32_t gen,
                                                    std::uint64_t bucket,
                                                    std::uint64_t* reads) {
  const std::uint64_t key = make_key(gen, bucket);
  if (CachedTable* hit = cache_.get(key)) return &hit->table;

  // Evict up front so the victim's table storage (four ~R-sized arrays)
  // can be recycled by the decode below instead of being freed here and
  // re-allocated zero-filled by make_table(). Eviction order and count
  // match what insert() would have done. The dir slot is read after the
  // eviction: a dirty write-back programs flash and may move pages.
  std::optional<CachedTable> recycled = cache_.take_lru_if_full();
  CachedTable fresh =
      recycled ? std::move(*recycled) : CachedTable{codec_.make_table()};
  const Ppa ppa = dir_slot(gen, bucket);
  if (ppa != kInvalidPpa) {
    // Zero-copy page load: decode straight out of NAND page storage
    // instead of allocating and filling a 32 KiB scratch buffer per miss.
    ByteSpan page, spare;
    if (Status s = nand_->read_page_view(ppa, &page, &spare); !ok(s)) return s;
    const ftl::SpareTag tag = ftl::SpareTag::decode(spare);
    if (tag.kind != ftl::PageKind::kIndexRecord) return Status::kCorruption;
    if (Status s = codec_.decode(page, &fresh.table); !ok(s)) return s;
    stats_.flash_reads++;
    if (reads) (*reads)++;
  } else if (recycled) {
    fresh.table.clear();
  }
  CachedTable* ins = cache_.insert(key, std::move(fresh), /*dirty=*/false);
  return &ins->table;
}

Status RhikIndex::write_table(std::uint32_t gen, std::uint64_t bucket,
                              const hash::HopscotchTable& table, bool for_gc) {
  const auto& g = nand_->geometry();
  Ppa& slot = dir_slot(gen, bucket);
  const Ppa old = slot;
  // Only current-generation overflow slots feed the overflow_pages()
  // counter (old-generation slots live in the migration snapshot).
  const bool count_ov = (bucket & kOvBit) != 0 && gen == gen_;

  const auto retire_old = [&] {
    if (old != kInvalidPpa) {
      page_owner_.erase(old);
      alloc_->sub_live(old, g.page_size);
    }
  };

  if (table.size() == 0) {
    // Lazy representation: an empty bucket has no record page at all.
    retire_old();
    slot = kInvalidPpa;
    if (count_ov && old != kInvalidPpa) ov_pages_--;
    if (journal_) journal_->journal_repoint(make_key(gen, bucket), kInvalidPpa);
    return Status::kOk;
  }

  Bytes page(g.page_size);
  Bytes spare(g.spare_size(), 0xFF);
  codec_.encode(table, page);
  ftl::SpareTag{ftl::PageKind::kIndexRecord, ftl::Stream::kIndex}.encode(spare);
  IndexPageSpare meta;
  meta.generation = gen;
  meta.bucket = bucket;
  meta.record_count = table.size();
  meta.encode(spare);

  auto ppa = alloc_->allocate(ftl::Stream::kIndex, for_gc);
  if (!ppa && ppa.status() == Status::kDeviceFull && !for_gc) {
    // Index write-back must not deadlock behind GC; dip into the reserve.
    ppa = alloc_->allocate(ftl::Stream::kIndex, /*for_gc=*/true);
  }
  if (!ppa) return ppa.status();
  if (Status s = nand_->program_page(*ppa, page, spare); !ok(s)) return s;
  stats_.flash_writes++;

  retire_old();
  slot = *ppa;
  if (count_ov && old == kInvalidPpa) ov_pages_++;
  page_owner_[*ppa] = make_key(gen, bucket);
  alloc_->add_live(*ppa, g.page_size);
  if (journal_) journal_->journal_repoint(make_key(gen, bucket), *ppa);

  if (gen == gen_ && !in_maintenance_ && !mig_) {
    if (++writes_since_checkpoint_ >= cfg_.dir_checkpoint_interval) {
      return checkpoint_directory();
    }
  }
  return Status::kOk;
}

Result<std::optional<Ppa>> RhikIndex::lookup_internal(std::uint64_t sig,
                                                      std::uint64_t* reads) {
  std::uint32_t gen = gen_;
  std::uint64_t bucket = sig & dir_mask();
  if (mig_) {
    const std::uint64_t ob = sig & ((std::uint64_t{1} << mig_->old_bits) - 1);
    if (!mig_->migrated[ob]) {
      gen = mig_->old_gen;
      bucket = ob;
    }
  }
  auto table = load_table(gen, bucket, reads);
  if (!table) return table.status();
  if (auto found = (*table)->find(sig)) return std::optional<Ppa>(found);
  // Hyper-local overflow (§VI): a second, bucket-private table may hold
  // the record — costing this lookup a second flash read.
  if (has_overflow(gen, bucket)) {
    auto ov = load_table(gen, bucket | kOvBit, reads);
    if (!ov) return ov.status();
    return (*ov)->find(sig);
  }
  return std::optional<Ppa>(std::nullopt);
}

Result<std::optional<Ppa>> RhikIndex::lookup(std::uint64_t sig) {
  stats_.gets++;
  std::uint64_t reads = 0;
  auto r = lookup_internal(sig, &reads);
  stats_.reads_per_lookup.record(reads);
  return r;
}

std::optional<Ppa> RhikIndex::get(std::uint64_t sig) {
  // Status-less convenience wrapper: an I/O failure degrades to "not
  // found" here; the device data path uses lookup() and sees the error.
  auto r = lookup(sig);
  if (!r) return std::nullopt;
  return *r;
}

RhikIndex::Home RhikIndex::window_home(std::uint64_t sig) const noexcept {
  if (mig_) {
    const std::uint64_t ob = sig & ((std::uint64_t{1} << mig_->old_bits) - 1);
    if (!mig_->migrated[ob]) return Home{mig_->old_gen, ob};
  }
  return Home{gen_, sig & dir_mask()};
}

Status RhikIndex::insert_at(const Home& home, std::uint64_t sig, Ppa ppa,
                            bool* existed, std::uint64_t* reads) {
  auto table = load_table(home.gen, home.bucket, reads);
  if (!table) return table.status();

  // If an overflow table exists, the record may already live there; an
  // update must land where the record is (one home per signature).
  bool via_overflow = false;
  *existed = (*table)->find(sig).has_value();
  if (!*existed && has_overflow(home.gen, home.bucket)) {
    auto ov = load_table(home.gen, home.bucket | kOvBit, reads);
    if (!ov) return ov.status();
    if ((*ov)->find(sig)) {
      *existed = true;
      via_overflow = true;
    }
  }

  Status st;
  if (via_overflow) {
    auto ov = load_table(home.gen, home.bucket | kOvBit, reads);
    if (!ov) return ov.status();
    st = (*ov)->insert(sig, ppa);
    if (ok(st)) cache_.mark_dirty(make_key(home.gen, home.bucket | kOvBit));
  } else {
    // Re-load: the overflow probe above may have evicted the primary.
    // With a minimal cache the reloaded table can diverge from the probed
    // one (a failed write-back resurfaces the stale flash page), so the
    // existence verdict is re-taken on the handle actually mutated.
    table = load_table(home.gen, home.bucket, reads);
    if (!table) return table.status();
    *existed = (*table)->find(sig).has_value();
    st = (*table)->insert(sig, ppa);
    if (ok(st)) {
      cache_.mark_dirty(make_key(home.gen, home.bucket));
    } else if (cfg_.local_overflow) {
      // Hyper-local scaling (§VI): park the record in a bucket-private
      // overflow page instead of rejecting it.
      auto ov = load_table(home.gen, home.bucket | kOvBit, reads);
      if (!ov) return ov.status();
      st = (*ov)->insert(sig, ppa);
      if (ok(st)) {
        cache_.mark_dirty(make_key(home.gen, home.bucket | kOvBit));
        stats_.overflow_inserts++;
      }
    }
  }
  return st;
}

Status RhikIndex::erase_at(const Home& home, std::uint64_t sig, bool* had,
                           std::uint64_t* reads) {
  auto table = load_table(home.gen, home.bucket, reads);
  if (!table) return table.status();
  *had = (*table)->erase(sig);
  if (*had) {
    cache_.mark_dirty(make_key(home.gen, home.bucket));
  } else if (has_overflow(home.gen, home.bucket)) {
    auto ov = load_table(home.gen, home.bucket | kOvBit, reads);
    if (!ov) return ov.status();
    *had = (*ov)->erase(sig);
    if (*had) cache_.mark_dirty(make_key(home.gen, home.bucket | kOvBit));
  }
  return Status::kOk;
}

Status RhikIndex::put(std::uint64_t sig, Ppa ppa) {
  stats_.puts++;
  if (!mig_) {
    if (Status s = maybe_resize(); !ok(s)) return s;
  }
  // Window routing: during a migration the put lands in whichever
  // generation still owns the bucket, so foreground latency stays at
  // steady-state cost — no migration work is charged here.
  std::uint64_t reads = 0;
  bool existed = false;
  Home home = window_home(sig);
  const auto table_full = [](Status s) {
    return s == Status::kCollisionAbort || s == Status::kIndexFull;
  };
  Status st = insert_at(home, sig, ppa, &existed, &reads);
  if (table_full(st) && home.gen != gen_) {
    // The (near-full) source bucket has no room left: migrate it now —
    // the doubling's whole point is the headroom — and retry in the new
    // generation. This is the only foreground path that migrates.
    if (Status s = ensure_bucket_migrated(home.bucket); !ok(s)) return s;
    home = window_home(sig);
    st = insert_at(home, sig, ppa, &existed, &reads);
  }
  stats_.reads_per_lookup.record(reads);
  if (!ok(st)) {
    if (!table_full(st)) return st;
    if (!existed && growth_capped()) {
      // The doubling that would have made room is refused at the dir-bits
      // cap: a new key that does not fit is the index genuinely full, not
      // a correctable collision.
      stats_.index_full++;
      return Status::kIndexFull;
    }
    // Both displacement failure and a full table are surfaced as the
    // paper's uncorrectable-collision abort (§IV-A1).
    stats_.collision_aborts++;
    return Status::kCollisionAbort;
  }
  if (!existed) num_keys_++;
  if (journal_) journal_->journal_put(sig, ppa);
  return Status::kOk;
}

Status RhikIndex::erase(std::uint64_t sig) {
  stats_.erases++;
  std::uint64_t reads = 0;
  bool had = false;
  const Home home = window_home(sig);
  if (Status s = erase_at(home, sig, &had, &reads); !ok(s)) return s;
  stats_.reads_per_lookup.record(reads);
  if (had) {
    num_keys_--;
    if (journal_) journal_->journal_erase(sig);
  }
  return had ? Status::kOk : Status::kNotFound;
}

void RhikIndex::open_migration_window() {
  Migration m;
  m.old_bits = dir_bits_;
  m.old_gen = gen_;
  m.old_dir = std::move(dir_);
  m.old_ov = std::move(ov_dir_);
  m.migrated.assign(m.old_dir.size(), false);
  m.pending = m.old_dir.size();
  m.keys_before = num_keys_;
  m.capacity_before = capacity();
  m.start_time = nand_->clock().now();
  mig_ = std::move(m);
  gen_++;
  dir_bits_++;
  dir_.assign(dir_size(), kInvalidPpa);
  ov_dir_.assign(dir_size(), kInvalidPpa);
  ov_pages_ = 0;  // old-generation overflow slots moved into mig_
}

Status RhikIndex::maybe_resize() {
  if (in_maintenance_ || mig_) return Status::kOk;
  const double threshold = cfg_.resize_threshold * static_cast<double>(capacity());
  if (static_cast<double>(num_keys_ + 1) <= threshold) return Status::kOk;

  // Bucket ids must stay below the overflow bit (2^38 directory entries)
  // regardless of the configured cap: past it the index cannot double
  // again. Let the put proceed anyway — overwrites of existing keys and
  // inserts into buckets with room still fit under the threshold's
  // headroom; put() surfaces kIndexFull only when an insert of a new key
  // actually fails.
  if (growth_capped()) return Status::kOk;

  stats_.resizes++;
  open_migration_window();
  // The resize record re-opens the same migration window on replay;
  // later generation-tagged repoint/migrate records keep the fast
  // restore exact across the doubling.
  if (journal_) journal_->journal_resize(gen_, dir_bits_);

  if (cfg_.incremental_resize) return Status::kOk;  // drained by pump_maintenance

  // Stop-the-world doubling (§IV-A2): the submission queue is held for
  // the whole migration; the window is accounted as stall time (Fig. 7).
  in_maintenance_ = true;
  const SimTime stall_begin = nand_->clock().stall_window_begin();
  const std::uint64_t n = mig_->old_dir.size();
  for (std::uint64_t ob = 0; ob < n; ++ob) {
    if (Status s = migrate_bucket(ob); !ok(s)) {
      in_maintenance_ = false;
      return s;
    }
  }
  nand_->clock().stall_window_end(stall_begin);
  in_maintenance_ = false;
  assert(!mig_);
  return Status::kOk;
}

Status RhikIndex::migrate_bucket(std::uint64_t old_bucket) {
  assert(mig_);
  assert(!mig_->migrated[old_bucket]);

  // Gather the source records (primary plus any overflow page), reusing
  // the signatures stored in them — the KV pairs themselves are never
  // touched (§IV-A2). Copied out because a second load may evict the
  // first table.
  std::uint64_t reads = 0;
  std::vector<hash::Record> records;
  {
    auto src = load_table(mig_->old_gen, old_bucket, &reads);
    if (!src) return src.status();
    records.reserve((*src)->size());
    (*src)->for_each([&](const hash::Record& rec) { records.push_back(rec); });
  }
  if (has_overflow(mig_->old_gen, old_bucket)) {
    auto ov = load_table(mig_->old_gen, old_bucket | kOvBit, &reads);
    if (!ov) return ov.status();
    (*ov)->for_each([&](const hash::Record& rec) { records.push_back(rec); });
  }

  // Re-bucket by the new directory bit. Resizing normally drains
  // overflow pages back into primaries; a destination overflow is only
  // re-created if a split target itself collides.
  hash::HopscotchTable lo = codec_.make_table();
  hash::HopscotchTable hi = codec_.make_table();
  std::optional<hash::HopscotchTable> lo_ov, hi_ov;
  const std::uint64_t split_bit = std::uint64_t{1} << mig_->old_bits;
  for (const hash::Record& rec : records) {
    const bool high = (rec.sig & split_bit) != 0;
    Status s = (high ? hi : lo).insert(rec.sig, rec.ppa);
    if (!ok(s) && cfg_.local_overflow) {
      auto& ov = high ? hi_ov : lo_ov;
      if (!ov) ov.emplace(codec_.make_table());
      s = ov->insert(rec.sig, rec.ppa);
      if (ok(s)) stats_.overflow_inserts++;
    }
    if (!ok(s)) return s;
  }
  nand_->clock().advance(cfg_.migrate_cpu_ns_per_record *
                         (records.empty() ? 1 : records.size()));

  if (Status s = write_table(gen_, old_bucket, lo, /*for_gc=*/false); !ok(s)) return s;
  if (Status s = write_table(gen_, old_bucket | split_bit, hi, /*for_gc=*/false);
      !ok(s)) {
    return s;
  }
  if (lo_ov) {
    if (Status s = write_table(gen_, old_bucket | kOvBit, *lo_ov, false); !ok(s)) return s;
  }
  if (hi_ov) {
    if (Status s = write_table(gen_, old_bucket | split_bit | kOvBit, *hi_ov, false);
        !ok(s)) {
      return s;
    }
  }

  // Retire the source bucket: drop cached copies without write-back and
  // mark the flash pages stale for GC.
  const auto retire = [&](std::uint64_t keyed) {
    cache_.erase(make_key(mig_->old_gen, keyed));
    Ppa& slot = dir_slot(mig_->old_gen, keyed);
    if (slot != kInvalidPpa) {
      page_owner_.erase(slot);
      alloc_->sub_live(slot, nand_->geometry().page_size);
      slot = kInvalidPpa;
    }
  };
  retire(old_bucket);
  retire(old_bucket | kOvBit);
  mig_->migrated[old_bucket] = true;
  // Journaled after the targets' repoints (same durable prefix): replay
  // retires the source bucket only once its split products are visible.
  // The pre-erase journal flush keeps the source pages readable on flash
  // until this record is durable.
  if (journal_) journal_->journal_migrated(make_key(mig_->old_gen, old_bucket));
  if (--mig_->pending == 0) finish_migration();
  return Status::kOk;
}

Status RhikIndex::ensure_bucket_migrated(std::uint64_t old_bucket) {
  if (!mig_ || mig_->migrated[old_bucket]) return Status::kOk;
  const bool was = in_maintenance_;
  in_maintenance_ = true;
  const Status s = migrate_bucket(old_bucket);
  in_maintenance_ = was;
  return s;
}

Status RhikIndex::pump_migration(std::uint32_t budget) {
  if (!mig_) return Status::kOk;
  const bool was = in_maintenance_;
  in_maintenance_ = true;
  Status st = Status::kOk;
  while (budget-- > 0 && mig_) {
    while (mig_->next_bucket < mig_->migrated.size() &&
           mig_->migrated[mig_->next_bucket]) {
      mig_->next_bucket++;
    }
    if (!mig_ || mig_->next_bucket >= mig_->migrated.size()) break;
    st = migrate_bucket(mig_->next_bucket);
    if (!ok(st)) break;
  }
  in_maintenance_ = was;
  return st;
}

void RhikIndex::finish_migration() {
  assert(mig_ && mig_->pending == 0);
  resize_history_.push_back(ResizeEvent{
      mig_->keys_before, mig_->capacity_before,
      nand_->clock().now() - mig_->start_time});
  mig_.reset();
  // A failed post-migration checkpoint (device wedged full) is not fatal:
  // the directory re-checkpoints at the next write-back cadence.
  if (!ok(checkpoint_directory())) stats_.writeback_failures++;
}

bool RhikIndex::pump_maintenance(std::uint32_t budget) {
  if (!mig_) return false;
  if (budget == 0) budget = cfg_.incremental_batch;
  const std::uint64_t pending_before = mig_->pending;
  (void)pump_migration(budget);
  // Progress means buckets drained or the migration finished; a wedged
  // pump (device full) reports false so idle loops stop spinning on it.
  return !mig_ || mig_->pending < pending_before;
}

// -- GC hooks -----------------------------------------------------------------

std::optional<Ppa> RhikIndex::gc_lookup(std::uint64_t sig) {
  std::uint64_t reads = 0;
  auto r = lookup_internal(sig, &reads);
  if (!r) return std::nullopt;
  return *r;
}

Status RhikIndex::gc_update_location(std::uint64_t sig, Ppa new_ppa) {
  // Window-routed like put: update the record where it lives, without
  // forcing the bucket through migration on the GC path.
  const Home home = window_home(sig);
  auto table = load_table(home.gen, home.bucket, nullptr);
  if (!table) return table.status();
  if ((*table)->find(sig)) {
    if (Status s = (*table)->insert(sig, new_ppa); !ok(s)) return s;
    cache_.mark_dirty(make_key(home.gen, home.bucket));
    if (journal_) journal_->journal_put(sig, new_ppa);
    return Status::kOk;
  }
  if (has_overflow(home.gen, home.bucket)) {
    auto ov = load_table(home.gen, home.bucket | kOvBit, nullptr);
    if (!ov) return ov.status();
    if ((*ov)->find(sig)) {
      if (Status s = (*ov)->insert(sig, new_ppa); !ok(s)) return s;
      cache_.mark_dirty(make_key(home.gen, home.bucket | kOvBit));
      if (journal_) journal_->journal_put(sig, new_ppa);
      return Status::kOk;
    }
  }
  return Status::kNotFound;
}

bool RhikIndex::gc_is_live_index_page(Ppa ppa) const {
  if (page_owner_.count(ppa) != 0) return true;
  return std::find(checkpoint_pages_.begin(), checkpoint_pages_.end(), ppa) !=
         checkpoint_pages_.end();
}

Status RhikIndex::gc_relocate_index_page(Ppa ppa) {
  if (std::find(checkpoint_pages_.begin(), checkpoint_pages_.end(), ppa) !=
      checkpoint_pages_.end()) {
    // Rewrite the whole checkpoint fresh; all old fragments go stale.
    return checkpoint_directory();
  }
  const auto it = page_owner_.find(ppa);
  if (it == page_owner_.end()) return Status::kOk;  // already stale
  const std::uint32_t gen = key_gen(it->second);
  const std::uint64_t bucket = key_bucket(it->second);
  auto table = load_table(gen, bucket, nullptr);
  if (!table) return table.status();
  return write_table(gen, bucket, **table, /*for_gc=*/true);
}

// -- Persistence ---------------------------------------------------------------

Bytes RhikIndex::serialize_directory() const {
  // [magic u32][dir_bits u32][gen u32][num_keys u64]
  // [primary entries: ppa 5B each][overflow entries: ppa 5B each]
  constexpr std::uint32_t kMagic = 0x52484B44;  // "RHKD"
  Bytes image(4 + 4 + 4 + 8 + dir_.size() * 5 * 2);
  put_u32(image, 0, kMagic);
  put_u32(image, 4, dir_bits_);
  put_u32(image, 8, gen_);
  put_u64(image, 12, num_keys_);
  for (std::size_t i = 0; i < dir_.size(); ++i) {
    put_u40(image, 20 + i * 5, dir_[i]);
    put_u40(image, 20 + (dir_.size() + i) * 5, ov_dir_[i]);
  }
  return image;
}

Status RhikIndex::load_directory(ByteSpan image) {
  if (mig_) return Status::kBusy;
  if (image.size() < 20) return Status::kCorruption;
  if (get_u32(image, 0) != 0x52484B44) return Status::kCorruption;
  const std::uint32_t bits = get_u32(image, 4);
  if (bits > 40) return Status::kCorruption;
  const std::uint64_t entries = std::uint64_t{1} << bits;
  if (image.size() < 20 + entries * 5 * 2) return Status::kCorruption;

  cache_.clear();
  page_owner_.clear();
  dir_bits_ = bits;
  gen_ = get_u32(image, 8);
  num_keys_ = get_u64(image, 12);
  dir_.assign(entries, kInvalidPpa);
  ov_dir_.assign(entries, kInvalidPpa);
  ov_pages_ = 0;
  for (std::uint64_t i = 0; i < entries; ++i) {
    dir_[i] = get_u40(image, 20 + i * 5);
    if (dir_[i] != kInvalidPpa) page_owner_[dir_[i]] = make_key(gen_, i);
    ov_dir_[i] = get_u40(image, 20 + (entries + i) * 5);
    if (ov_dir_[i] != kInvalidPpa) {
      page_owner_[ov_dir_[i]] = make_key(gen_, i | kOvBit);
      ov_pages_++;
    }
  }
  return Status::kOk;
}

Status RhikIndex::load_image(ByteSpan image) {
  // checkpoint_pages_ would otherwise carry PPAs from a previous life and
  // confuse gc_is_live_index_page.
  checkpoint_pages_.clear();
  writes_since_checkpoint_ = 0;
  replay_saw_resize_ = false;
  return load_directory(image);
}

Status RhikIndex::apply_journal_repoint(
    std::uint64_t slot_key, Ppa ppa,
    const std::function<bool(Ppa)>& data_durable) {
  const std::uint32_t gen = key_gen(slot_key);
  const std::uint64_t keyed = key_bucket(slot_key);
  const std::uint64_t b = keyed & ~kOvBit;
  const bool ov = (keyed & kOvBit) != 0;

  // Generation-tagged routing: records carry either the current
  // generation or — inside a replayed migration window — the source
  // generation (dirty write-backs of not-yet-migrated old buckets).
  Ppa* slot = nullptr;
  bool count_ov = false;
  if (gen == gen_) {
    if (b >= dir_size()) return Status::kCorruption;
    slot = ov ? &ov_dir_[b] : &dir_[b];
    count_ov = ov;
  } else if (mig_ && gen == mig_->old_gen) {
    if (b >= mig_->old_dir.size()) return Status::kCorruption;
    if (mig_->migrated[b]) return Status::kCorruption;  // retired bucket
    slot = ov ? &mig_->old_ov[b] : &mig_->old_dir[b];
  } else {
    return Status::kCorruption;
  }

  if (data_durable && ppa != kInvalidPpa) {
    ByteSpan page, spare;
    if (Status s = nand_->read_page_view(ppa, &page, &spare); !ok(s)) return s;
    if (ftl::SpareTag::decode(spare).kind != ftl::PageKind::kIndexRecord) {
      return Status::kCorruption;
    }
    hash::HopscotchTable table = codec_.make_table();
    if (Status s = codec_.decode(page, &table); !ok(s)) return s;
    bool all_durable = true;
    table.for_each([&](const hash::Record& r) {
      all_durable = all_durable && data_durable(static_cast<Ppa>(r.ppa));
    });
    if (!all_durable) {
      // Reject: keep the image's slot. For a plain write-back the page's
      // durable content is reconstructible from image + tail. But once a
      // resize record has replayed in this tail, a rejected repoint into
      // the current (new) generation may be — or, via last-repoint-wins,
      // may have superseded — a migration-target write whose source
      // bucket a migrate record retires (earlier or later in the same
      // tail). Keeping the image's slot (kInvalidPpa for a fresh split
      // target) would then silently drop every pre-checkpoint mapping
      // migrated into this bucket: phantom misses over intact data.
      // Force the full scan for any post-resize current-gen rejection;
      // the window having fully drained (mig_ already reset) makes the
      // retirement more certain, not less.
      if (gen == gen_ && (replay_saw_resize_ || mig_)) {
        return Status::kCorruption;
      }
      return Status::kOk;
    }
  }

  if (*slot == ppa) return Status::kOk;
  // Any cached copy predates the repointed page; drop it without
  // write-back so the next load reads the journaled location.
  cache_.erase(make_key(gen, keyed));
  if (*slot != kInvalidPpa) page_owner_.erase(*slot);
  if (count_ov) {
    if (*slot != kInvalidPpa && ppa == kInvalidPpa) ov_pages_--;
    if (*slot == kInvalidPpa && ppa != kInvalidPpa) ov_pages_++;
  }
  *slot = ppa;
  if (ppa != kInvalidPpa) page_owner_[ppa] = slot_key;
  return Status::kOk;
}

Status RhikIndex::apply_journal_resize(std::uint32_t new_gen,
                                       std::uint32_t new_bits) {
  // A second resize record is only legal once the first window fully
  // drained (all its migrate records preceded this one).
  if (mig_) return Status::kCorruption;
  if (new_gen != gen_ + 1 || new_bits != dir_bits_ + 1 || new_bits >= 39) {
    return Status::kCorruption;
  }
  open_migration_window();
  // Outlives the window (which a later migrate record may close): repoint
  // rejection must stay full-scan-strict for the rest of this replay.
  replay_saw_resize_ = true;
  return Status::kOk;
}

Status RhikIndex::apply_journal_migrate(std::uint64_t old_slot_key) {
  if (!mig_) return Status::kCorruption;
  if (key_gen(old_slot_key) != mig_->old_gen) return Status::kCorruption;
  const std::uint64_t ob = key_bucket(old_slot_key);
  if ((ob & kOvBit) != 0 || ob >= mig_->migrated.size()) {
    return Status::kCorruption;
  }
  if (mig_->migrated[ob]) return Status::kOk;  // idempotent
  // Retire the source slots. DRAM-only: the caller owns allocator
  // liveness accounting (it re-inits from flash after replay), and the
  // new-generation repoints for this bucket were applied from earlier
  // records in the same durable prefix.
  for (const std::uint64_t keyed : {ob, ob | kOvBit}) {
    cache_.erase(make_key(mig_->old_gen, keyed));
    Ppa& slot = (keyed & kOvBit) != 0 ? mig_->old_ov[ob] : mig_->old_dir[ob];
    if (slot != kInvalidPpa) {
      page_owner_.erase(slot);
      slot = kInvalidPpa;
    }
  }
  mig_->migrated[ob] = true;
  if (--mig_->pending == 0) {
    // The crashed index completed this migration; close the window
    // without the live path's directory checkpoint (replay must not
    // program flash).
    mig_.reset();
  }
  return Status::kOk;
}

Status RhikIndex::apply_journal_put(std::uint64_t sig, Ppa ppa) {
  // Replay is window-routed like the live put but must never trigger
  // structural work (resize / bucket migration): structure replays only
  // from explicit resize/migrate records. A record that cannot be placed
  // without it sends the caller to the full scan.
  std::uint64_t reads = 0;
  bool existed = false;
  const Home home = window_home(sig);
  if (Status s = insert_at(home, sig, ppa, &existed, &reads); !ok(s)) return s;
  if (!existed) num_keys_++;
  return Status::kOk;
}

Status RhikIndex::apply_journal_erase(std::uint64_t sig) {
  std::uint64_t reads = 0;
  bool had = false;
  const Home home = window_home(sig);
  if (Status s = erase_at(home, sig, &had, &reads); !ok(s)) return s;
  if (had) num_keys_--;
  return Status::kOk;
}

Status RhikIndex::recount_keys() {
  // Reads pages directly (no load_table) so the pass neither evicts the
  // replay's dirty cache entries nor programs flash; cached copies win
  // over their flash page — they may carry replay inserts.
  std::uint64_t n = 0;
  hash::HopscotchTable scratch = codec_.make_table();
  const auto count_slot = [&](std::uint32_t gen, std::uint64_t keyed,
                              Ppa ppa) -> Status {
    if (const CachedTable* hit = cache_.get(make_key(gen, keyed))) {
      n += hit->table.size();
      return Status::kOk;
    }
    if (ppa == kInvalidPpa) return Status::kOk;
    ByteSpan page, spare;
    if (Status s = nand_->read_page_view(ppa, &page, &spare); !ok(s)) return s;
    if (ftl::SpareTag::decode(spare).kind != ftl::PageKind::kIndexRecord) {
      return Status::kCorruption;
    }
    if (Status s = codec_.decode(page, &scratch); !ok(s)) return s;
    n += scratch.size();
    return Status::kOk;
  };
  for (std::uint64_t b = 0; b < dir_size(); ++b) {
    if (Status s = count_slot(gen_, b, dir_[b]); !ok(s)) return s;
    if (Status s = count_slot(gen_, b | kOvBit, ov_dir_[b]); !ok(s)) return s;
  }
  if (mig_) {
    // Keys of a half-drained doubling live in whichever generation still
    // owns their bucket; migrated source slots are already kInvalidPpa.
    for (std::uint64_t b = 0; b < mig_->old_dir.size(); ++b) {
      if (mig_->migrated[b]) continue;
      if (Status s = count_slot(mig_->old_gen, b, mig_->old_dir[b]); !ok(s)) {
        return s;
      }
      if (Status s = count_slot(mig_->old_gen, b | kOvBit, mig_->old_ov[b]);
          !ok(s)) {
        return s;
      }
    }
  }
  num_keys_ = n;
  return Status::kOk;
}

Status RhikIndex::checkpoint_directory() {
  const auto& g = nand_->geometry();
  // Retire the previous checkpoint fragments.
  for (const Ppa p : checkpoint_pages_) alloc_->sub_live(p, g.page_size);
  checkpoint_pages_.clear();
  checkpoint_id_++;

  const Bytes image = serialize_directory();
  const std::uint32_t fragments =
      static_cast<std::uint32_t>((image.size() + g.page_size - 1) / g.page_size);
  Bytes spare(g.spare_size(), 0xFF);
  for (std::uint32_t f = 0; f < fragments; ++f) {
    ftl::SpareTag{ftl::PageKind::kIndexDir, ftl::Stream::kIndex}.encode(spare);
    IndexPageSpare meta;
    meta.generation = gen_;
    meta.checkpoint_id = checkpoint_id_;
    meta.fragment = static_cast<std::uint16_t>(f);
    meta.fragments_total = static_cast<std::uint16_t>(fragments);
    meta.encode(spare);

    auto ppa = alloc_->allocate(ftl::Stream::kIndex, /*for_gc=*/false);
    if (!ppa && ppa.status() == Status::kDeviceFull) {
      ppa = alloc_->allocate(ftl::Stream::kIndex, /*for_gc=*/true);
    }
    if (!ppa) return ppa.status();
    const std::size_t off = std::size_t{f} * g.page_size;
    const std::size_t len = std::min<std::size_t>(g.page_size, image.size() - off);
    if (Status s = nand_->program_page(*ppa, ByteSpan{image.data() + off, len}, spare);
        !ok(s)) {
      return s;
    }
    stats_.flash_writes++;
    checkpoint_pages_.push_back(*ppa);
    alloc_->add_live(*ppa, g.page_size);
  }
  writes_since_checkpoint_ = 0;
  return Status::kOk;
}

Status RhikIndex::scan(const std::function<void(std::uint64_t, flash::Ppa)>& fn) {
  const auto visit = [&](std::uint32_t gen, std::uint64_t bucket) -> Status {
    for (const std::uint64_t keyed : {bucket, bucket | kOvBit}) {
      if (dir_slot(gen, keyed) == kInvalidPpa &&
          !cache_.contains(make_key(gen, keyed))) {
        continue;
      }
      auto table = load_table(gen, keyed, nullptr);
      if (!table) return table.status();
      (*table)->for_each([&](const hash::Record& r) { fn(r.sig, r.ppa); });
    }
    return Status::kOk;
  };

  // Visit migrated/new buckets plus any not-yet-migrated source buckets.
  for (std::uint64_t b = 0; b < dir_size(); ++b) {
    if (mig_) {
      const std::uint64_t ob = b & ((std::uint64_t{1} << mig_->old_bits) - 1);
      if (!mig_->migrated[ob]) continue;  // records still in the old bucket
    }
    if (Status s = visit(gen_, b); !ok(s)) return s;
  }
  if (mig_) {
    for (std::uint64_t ob = 0; ob < mig_->old_dir.size(); ++ob) {
      if (mig_->migrated[ob]) continue;
      if (Status s = visit(mig_->old_gen, ob); !ok(s)) return s;
    }
  }
  return Status::kOk;
}

std::uint64_t RhikIndex::dram_bytes() const {
  std::uint64_t bytes = (dir_.size() + ov_dir_.size()) * cfg_.ppa_bytes;
  if (mig_) {
    bytes += (mig_->old_dir.size() + mig_->old_ov.size()) * cfg_.ppa_bytes;
  }
  return bytes;
}

Status RhikIndex::flush() {
  // Drain any in-flight migration first: the serialized directory only
  // describes the current generation, so "persist all dirty state" must
  // close the window before checkpointing it. An explicit flush is a
  // durability barrier and may absorb the remaining quanta.
  while (mig_) {
    const std::uint64_t before = mig_->pending;
    const Status s = pump_migration(cfg_.incremental_batch);
    const bool wedged = ok(s) && mig_ && mig_->pending >= before;
    if (!ok(s) || wedged) {
      // The barrier fails, but still write back whatever dirty tables the
      // device will take so a failed flush leaves as much state durable
      // as possible (write-back failures land in writeback_failures).
      cache_.flush_all();
      return ok(s) ? Status::kBusy : s;
    }
  }
  cache_.flush_all();
  return checkpoint_directory();
}

}  // namespace rhik::index
