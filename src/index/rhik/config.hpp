// RHIK configuration and the paper's sizing equations.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "common/bytes.hpp"
#include "common/sim_clock.hpp"

namespace rhik::index {

/// Default for RhikConfig::incremental_resize. Incremental (halt-free)
/// migration is the production path; setting RHIK_STW_RESIZE=1 in the
/// environment flips the *default* back to the legacy stop-the-world
/// doubling so CI can keep the fallback green. Configs that set the flag
/// explicitly are unaffected.
inline bool default_incremental_resize() noexcept {
  const char* stw = std::getenv("RHIK_STW_RESIZE");
  return !(stw != nullptr && stw[0] == '1');
}

struct RhikConfig {
  /// kh — key signature size in bytes (Eq. 1). 8 by default; 16 models
  /// the 128-bit signature alternative of §IV-A3 (halves R, shrinks the
  /// signature-collision probability).
  std::uint32_t sig_bytes = 8;
  /// ppa — physical page address size in bytes (Eq. 1).
  std::uint32_t ppa_bytes = 5;
  /// Hopscotch neighbourhood width H; hopinfo occupies H/8 bytes per
  /// record slot (Eq. 1, hi). Default 32 (§IV-A1).
  std::uint32_t hop_range = 32;
  /// Occupancy fraction that triggers doubling (§IV-A2; default 80%).
  double resize_threshold = 0.80;
  /// Anticipated number of keys for initial sizing (Eq. 2). 0 means a
  /// conservative minimal directory (one entry) that grows on demand.
  std::uint64_t anticipated_keys = 0;
  /// Hard ceiling on directory bits: a doubling that would exceed it is
  /// refused instead of growing. Updates of existing keys and inserts
  /// that still fit keep succeeding; a NEW key whose insert fails at the
  /// cap gets Status::kIndexFull (counted in op stats). Bucket ids must
  /// stay below the overflow bit, so values above 38 are clamped to 38.
  std::uint32_t max_dir_bits = 38;
  /// §VI extension: migrate incrementally instead of halting the queue.
  /// On by default (halt-free resizing, DESIGN.md §11); RHIK_STW_RESIZE=1
  /// restores the legacy stop-the-world default.
  bool incremental_resize = default_incremental_resize();
  /// §VI "hyper-local scaling" extension: instead of rejecting a key on
  /// an uncorrectable local collision, give the affected bucket a
  /// private overflow record page. Overflowed buckets cost up to TWO
  /// flash reads per lookup (the trade-off the ablation quantifies);
  /// resizing drains overflow pages back into primaries.
  bool local_overflow = false;
  /// Old-index buckets migrated per background maintenance quantum
  /// (pump_maintenance with budget 0) in incremental mode. Foreground
  /// gets/puts are not charged migration work; the device background
  /// pump drains the doubling in these bounded quanta.
  std::uint32_t incremental_batch = 4;
  /// CPU cost charged per record rearranged during migration (the
  /// signature-reuse re-bucketing work of §IV-A2).
  SimTime migrate_cpu_ns_per_record = 20;
  /// Record-page write-backs between directory checkpoints to flash.
  std::uint32_t dir_checkpoint_interval = 1024;

  /// hi — hopinfo bytes per record (Eq. 1).
  [[nodiscard]] constexpr std::uint32_t hopinfo_bytes() const noexcept {
    return (hop_range + 7) / 8;
  }

  /// Eq. 1: R = ⌊ p / (kh + ppa + hi) ⌋ — records per record-layer page.
  /// With the paper defaults (p = 32 KiB, kh = 8, ppa = 5, hi = 4): 1927.
  [[nodiscard]] constexpr std::uint32_t records_per_page(
      std::uint32_t page_size) const noexcept {
    return page_size / (sig_bytes + ppa_bytes + hopinfo_bytes());
  }

  /// Eq. 2: D = anticipated keys / R, rounded up to a power of two so the
  /// directory can be addressed with the D least-significant signature
  /// bits. Returns the directory *bit count*.
  [[nodiscard]] constexpr std::uint32_t initial_dir_bits(
      std::uint32_t page_size) const noexcept {
    const std::uint32_t r = records_per_page(page_size);
    if (anticipated_keys == 0 || r == 0) return 0;
    const std::uint64_t entries = (anticipated_keys + r - 1) / r;
    return entries <= 1 ? 0 : 64 - std::countl_zero(entries - 1);
  }
};

}  // namespace rhik::index
