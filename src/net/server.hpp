// net::KvServer — the networked multi-tenant serving layer
// (DESIGN.md §12).
//
// A non-blocking epoll TCP front-end over one `api::KvsDevice`. Each of
// M worker threads owns an epoll instance and a disjoint subset of the
// client connections (accepted round-robin); a worker's loop
//
//   1. drains its epoll: accepts, reads (decode → admission → dispatch
//      through the async verb set), writes back-pressured buffers;
//   2. harvests the device's batched completion ring
//      (api::KvsDevice::poll_completions) and routes each completion to
//      the connection that issued it — directly when this worker owns
//      it, via the owning worker's inbox (eventfd-signalled) otherwise;
//   3. when fully idle, pumps backend background maintenance
//      (IKvsBackend::pump_background) so GC quanta and incremental
//      index migrations keep progressing on a single-device backend
//      with no other thread (a sharded array's own workers already
//      pump in their ring-idle windows).
//
// No thread is ever parked per request: requests pipeline freely per
// connection, and a response goes out whenever the device completes the
// command — out-of-order responses are the contract (clients match by
// request id).
//
// Admission control is two-layer and never silent: a global in-flight
// cap plus a per-connection pipeline cap answer with the retryable
// KVS_ERR_QUEUE_FULL, and per-tenant token buckets (net/tenant.hpp) do
// the same for quota overruns. Every accepted request is answered
// exactly once; completions whose connection died are reaped and
// counted (net.orphaned_completions), never delivered twice.
//
// Server metrics (MetricsRegistry, exported via metrics_snapshot):
//   net.accepted / net.closed / net.connections (gauge)
//   net.rx_bytes / net.tx_bytes
//   net.requests / net.responses / net.inflight (gauge)
//   net.throttled / net.admission_rejects / net.decode_errors
//   net.orphaned_completions / net.idle_pumps
//   net.recv_calls / net.send_calls / net.loop_iters /
//   net.harvest_batches (syscall- and batching-efficiency ratios:
//   requests/recv_calls, responses/send_calls, responses/harvest_batches)
//   net.cursors_opened / net.cursors_reaped / net.cursors (gauge —
//   cursored scans open right now; reaped counts cursors a dying
//   connection abandoned, not clean ITER_CLOSEs)
//   net.tenant.<id>.{ops,bytes,throttled,latency_ns}
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/kvs.hpp"
#include "net/protocol.hpp"
#include "net/tenant.hpp"
#include "obs/metrics.hpp"

namespace rhik::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  std::uint32_t num_workers = 1;
  /// Global admission cap: async commands in flight across the whole
  /// server. Above it, requests are answered KVS_ERR_QUEUE_FULL.
  std::size_t max_global_inflight = 16384;
  /// Per-connection pipeline cap (same retryable rejection).
  std::size_t max_conn_inflight = 4096;
  /// Ceiling on keys in one kIter (or kIterNext batch) response.
  std::size_t max_iter_keys = 65536;
  /// Open scan cursors per connection (kIterOpen). Each cursor pins a
  /// snapshot epoch on the device, holding superseded versions alive,
  /// so the cap bounds how much retention one client can hold hostage.
  /// Above it, kIterOpen answers KVS_ERR_ITERATOR_MAX.
  std::size_t max_conn_cursors = 4;
  /// Unknown tenant ids get an unlimited namespace on first sight when
  /// true; otherwise they are answered KVS_ERR_OPTION_INVALID.
  bool allow_unknown_tenants = true;
  WireLimits limits{};
  /// epoll timeout while fully idle (nothing in flight, no background
  /// work). Bounds stop() latency; idle CPU is ~zero either way.
  int idle_timeout_ms = 20;
  /// Graceful-stop bound: after this long stop() force-closes whatever
  /// is still in flight instead of waiting forever.
  int drain_timeout_ms = 10000;
};

class KvServer {
 public:
  /// The server dispatches into `dev` via the async verb set. For a
  /// non-sharded device (no internal threading) every backend call is
  /// serialized behind an internal mutex; a sharded backend's verbs are
  /// thread-safe already and workers run them concurrently.
  KvServer(api::KvsDevice& dev, ServerConfig cfg = {});
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Binds, listens and spawns the workers. kIoError on socket failure.
  Status start();
  /// Graceful shutdown: stops accepting and reading, keeps harvesting
  /// completions until every in-flight command has been answered and
  /// every response buffer flushed (bounded by drain_timeout_ms), then
  /// closes all sockets and joins the workers. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  /// Bound port (after start(); the ephemeral port when cfg.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] TenantTable& tenants() noexcept { return tenants_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// Snapshot of the server-side registry (net.* metrics). Device-side
  /// metrics stay on dev.metrics_snapshot() — merging implies a
  /// cross-shard barrier the serving layer should not hide.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot();
  }
  /// Device-side metrics, read under the backend serialization lock.
  /// While workers run, dev.metrics_snapshot() from another thread races
  /// whatever request or disconnect-reap is mid-flight (the sim clock is
  /// not atomic); this is the safe way to poll the device from outside.
  [[nodiscard]] obs::MetricsSnapshot device_metrics();

  /// Wall-clock monotonic ns (the serving layer's time domain).
  [[nodiscard]] static std::uint64_t wall_now_ns() noexcept;

 private:
  /// One open cursored scan (kIterOpen): a backend iterator handle plus
  /// the snapshot pin it reads at. Owned by the connection (reaped on
  /// close) and by the tenant that opened it (tokens are rejected
  /// across tenants).
  struct Cursor {
    std::uint64_t backend_iter = 0;
    api::SnapshotHandle snap{};
    std::uint32_t tenant = 0;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    RequestDecoder decoder;
    Bytes out;                 ///< encoded responses awaiting write
    std::size_t out_pos = 0;   ///< already-written prefix of `out`
    std::size_t inflight = 0;  ///< async commands not yet answered
    bool want_write = false;   ///< EPOLLOUT armed
    bool read_closed = false;  ///< peer EOF or stop(): no more requests
    std::unordered_map<std::uint64_t, Cursor> cursors;  ///< open scans
    std::uint64_t next_cursor_id = 1;
    explicit Conn(WireLimits limits) : decoder(limits) {}
  };

  struct OutMsg {
    std::uint64_t conn_id = 0;
    Bytes data;  ///< encoded response frame
  };

  struct Worker {
    std::uint32_t index = 0;
    int epfd = -1;
    int event_fd = -1;  ///< stop/inbox/handoff wakeup
    std::thread thread;
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::mutex inbox_mu;
    std::vector<OutMsg> inbox;    ///< responses routed from other workers
    std::vector<int> handoff;     ///< accepted fds to adopt
    /// Closes epfd/event_fd, so a partially-started server (or stop())
    /// never leaks descriptors.
    ~Worker();
  };

  /// One submitted-but-unanswered command.
  struct Pending {
    std::uint32_t worker = 0;
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    Opcode opcode = Opcode::kPut;
    std::uint32_t tenant = 0;
    std::uint64_t t0_ns = 0;       ///< dispatch wall time (latency metric)
    std::uint64_t req_bytes = 0;   ///< key+value bytes in (tenant accounting)
  };

  void worker_main(Worker& w);
  void accept_ready(Worker& w);
  void adopt_conn(Worker& w, int fd);
  void close_conn(Worker& w, Conn& c);
  void read_ready(Worker& w, Conn& c);
  void write_ready(Worker& w, Conn& c);
  /// Encodes `resp` onto the connection and tries to flush.
  void send_response(Worker& w, Conn& c, const ResponseFrame& resp);
  /// Encode only — callers batching many responses flush the touched
  /// connections once (one send syscall per harvest, not per response).
  void enqueue_response(Conn& c, const ResponseFrame& resp);
  void flush_out(Worker& w, Conn& c);
  /// flush_out for each distinct id in `touched` that still exists.
  void flush_touched(Worker& w, std::vector<std::uint64_t>& touched);
  void update_write_interest(Worker& w, Conn& c);
  void handle_request(Worker& w, Conn& c, RequestFrame&& f);
  /// kIterOpen / kIterNext / kIterClose (the cursored scan verbs).
  void handle_cursor_op(Worker& w, Conn& c, RequestFrame& f, Tenant& tenant,
                        std::uint64_t now_ns);
  /// Closes every backend iterator the connection still holds and
  /// releases their snapshot pins (connection close / server teardown) —
  /// an abandoned cursor must not pin retention forever.
  void reap_cursors(Conn& c);
  /// Immediate (non-device) answer: throttles, validation errors,
  /// ITER/STATUS results.
  void respond_now(Worker& w, Conn& c, const RequestFrame& f,
                   api::KvsResult result, Bytes&& value = {},
                   std::uint32_t extra = 0);
  /// Harvests the completion ring and routes completions; returns how
  /// many were handled.
  std::size_t harvest_completions(Worker& w);
  /// Routes one completion; own-worker deliveries are appended without
  /// flushing and their conn id is pushed onto `touched`.
  void route_completion(Worker& w, const Pending& p, api::KvsCompletion&& c,
                        std::vector<std::uint64_t>* touched);
  void drain_inbox(Worker& w);
  void apply_out_msg(Worker& w, OutMsg&& m,
                     std::vector<std::uint64_t>* touched);
  void wake(Worker& w);
  [[nodiscard]] bool fully_drained();

  api::KvsDevice& dev_;
  ServerConfig cfg_;
  /// Serializes backend access for a non-sharded device (the emulated
  /// device is single-threaded). Unused when dev_.sharded().
  std::mutex backend_mu_;
  const bool serialize_backend_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::uint32_t> next_accept_worker_{0};

  std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  /// Completions harvested before the submitter registered its Pending
  /// (poll from another worker can win that race); matched on insert.
  std::unordered_map<std::uint64_t, api::KvsCompletion> stray_;
  std::atomic<std::size_t> inflight_total_{0};

  obs::MetricsRegistry metrics_;
  TenantTable tenants_;
  obs::Counter* m_accepted_;
  obs::Counter* m_closed_;
  obs::Counter* m_rx_bytes_;
  obs::Counter* m_tx_bytes_;
  obs::Counter* m_requests_;
  obs::Counter* m_responses_;
  obs::Counter* m_throttled_;
  obs::Counter* m_admission_rejects_;
  obs::Counter* m_decode_errors_;
  obs::Counter* m_orphaned_;
  obs::Counter* m_idle_pumps_;
  obs::Counter* m_recv_calls_;
  obs::Counter* m_send_calls_;
  obs::Counter* m_loop_iters_;
  obs::Counter* m_harvest_batches_;
  obs::Counter* m_cursors_opened_;
  obs::Counter* m_cursors_reaped_;
  obs::Gauge* m_connections_;
  obs::Gauge* m_inflight_;
  obs::Gauge* m_cursors_;
};

}  // namespace rhik::net
