// Multi-tenancy for the serving layer (DESIGN.md §12).
//
// A tenant is a key-prefix namespace plus a quota. The 32-bit tenant id
// from the frame header is prepended to every user key as a fixed
// 4-byte prefix before the request reaches the backend, so tenants can
// never read or enumerate each other's keys — isolation is structural,
// not filtered. Quotas are classic token buckets over wall-clock time
// (the serving layer lives in the host's time domain, not the device's
// simulated one): `ops_per_sec` refills continuously, `burst` caps how
// far a tenant can save up. An over-quota request is answered with the
// retryable KVS_ERR_QUEUE_FULL — never silently dropped.
//
// Each tenant owns a slice of the server's MetricsRegistry:
//   net.tenant.<id>.ops         requests executed (post-admission)
//   net.tenant.<id>.bytes       key+value bytes moved (both directions)
//   net.tenant.<id>.throttled   quota rejections
//   net.tenant.<id>.latency_ns  wall-clock dispatch→completion (p50/p99)
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"

namespace rhik::net {

/// Width of the namespace prefix prepended to user keys on the device.
constexpr std::size_t kTenantPrefixLen = 4;

/// Device key = [u32 tenant id][user key]. Fixed-width, so the mapping
/// is unambiguous for arbitrary binary user keys.
[[nodiscard]] inline Bytes namespaced_key(std::uint32_t tenant,
                                          ByteSpan user_key) {
  Bytes k(kTenantPrefixLen + user_key.size());
  put_u32(k, 0, tenant);
  put_bytes(k, kTenantPrefixLen, user_key);
  return k;
}

/// Strips the tenant prefix off a device key (ITER results).
[[nodiscard]] inline ByteSpan strip_namespace(ByteSpan device_key) noexcept {
  return device_key.size() >= kTenantPrefixLen
             ? device_key.subspan(kTenantPrefixLen)
             : ByteSpan{};
}

struct TenantConfig {
  /// Sustained request quota; 0 = unlimited (no bucket consulted).
  std::uint64_t ops_per_sec = 0;
  /// Bucket capacity (max saved-up tokens); 0 = defaults to ops_per_sec.
  std::uint64_t burst = 0;
};

/// Token bucket over a caller-supplied monotonic clock (wall ns).
/// Refill happens lazily inside try_take, so no timer thread exists.
/// Mutex-protected: contention is per-tenant and try_take is a handful
/// of integer ops, far off any hot path that matters at event-loop rate.
class TokenBucket {
 public:
  /// rate 0 = unlimited. Tokens are tracked in nano-tokens (1 op =
  /// 1e9) so integer math refills exactly at any rate.
  void configure(std::uint64_t ops_per_sec, std::uint64_t burst,
                 std::uint64_t now_ns);
  [[nodiscard]] bool try_take(std::uint64_t now_ns);

 private:
  static constexpr std::uint64_t kScale = 1'000'000'000;
  std::mutex mu_;
  std::uint64_t rate_ = 0;       ///< ops/s; 0 = unlimited
  std::uint64_t cap_nano_ = 0;   ///< burst * kScale
  std::uint64_t tokens_nano_ = 0;
  std::uint64_t last_ns_ = 0;
};

struct Tenant {
  std::uint32_t id = 0;
  TenantConfig cfg;
  TokenBucket bucket;
  obs::Counter* ops = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* throttled = nullptr;
  obs::Timer* latency = nullptr;
};

/// Registry of tenants, keyed by the frame header's tenant id. Lookup is
/// a shared-lock-free mutex + hash map — cold enough for the event loop
/// (one lookup per request), and returned Tenant pointers are stable for
/// the table's lifetime.
class TenantTable {
 public:
  explicit TenantTable(obs::MetricsRegistry& registry) : registry_(registry) {}
  TenantTable(const TenantTable&) = delete;
  TenantTable& operator=(const TenantTable&) = delete;

  /// Creates or reconfigures a tenant. Reconfiguring resets the bucket
  /// to a full burst at `now_ns` (callers pass the current wall clock).
  Tenant& configure(std::uint32_t id, TenantConfig cfg, std::uint64_t now_ns);

  /// nullptr when the id was never configured.
  [[nodiscard]] Tenant* find(std::uint32_t id);

  /// find(), creating an unlimited default tenant on first sight (the
  /// server's allow_unknown_tenants policy).
  Tenant& find_or_default(std::uint32_t id, std::uint64_t now_ns);

 private:
  Tenant& create_locked(std::uint32_t id, TenantConfig cfg,
                        std::uint64_t now_ns);

  obs::MetricsRegistry& registry_;
  std::mutex mu_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace rhik::net
