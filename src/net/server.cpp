#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace rhik::net {

namespace {

/// epoll user-data tags below the first connection id.
constexpr std::uint64_t kTagListen = 0;
constexpr std::uint64_t kTagEvent = 1;
constexpr std::uint64_t kFirstConnId = 2;

/// The emulated device's key ceiling (kvssd::DeviceConfig::max_key_size
/// default); the tenant prefix rides inside it.
constexpr std::size_t kDeviceMaxKey = 255;

std::string_view as_sv(const Bytes& b) noexcept {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace

std::uint64_t KvServer::wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::MetricsSnapshot KvServer::device_metrics() {
  std::unique_lock<std::mutex> lk(backend_mu_, std::defer_lock);
  if (serialize_backend_) lk.lock();
  return dev_.metrics_snapshot();
}

KvServer::KvServer(api::KvsDevice& dev, ServerConfig cfg)
    : dev_(dev),
      cfg_(std::move(cfg)),
      serialize_backend_(!dev.sharded()),
      tenants_(metrics_) {
  next_conn_id_.store(kFirstConnId);
  m_accepted_ = &metrics_.counter("net.accepted");
  m_closed_ = &metrics_.counter("net.closed");
  m_rx_bytes_ = &metrics_.counter("net.rx_bytes");
  m_tx_bytes_ = &metrics_.counter("net.tx_bytes");
  m_requests_ = &metrics_.counter("net.requests");
  m_responses_ = &metrics_.counter("net.responses");
  m_throttled_ = &metrics_.counter("net.throttled");
  m_admission_rejects_ = &metrics_.counter("net.admission_rejects");
  m_decode_errors_ = &metrics_.counter("net.decode_errors");
  m_orphaned_ = &metrics_.counter("net.orphaned_completions");
  m_idle_pumps_ = &metrics_.counter("net.idle_pumps");
  m_recv_calls_ = &metrics_.counter("net.recv_calls");
  m_send_calls_ = &metrics_.counter("net.send_calls");
  m_loop_iters_ = &metrics_.counter("net.loop_iters");
  m_harvest_batches_ = &metrics_.counter("net.harvest_batches");
  m_cursors_opened_ = &metrics_.counter("net.cursors_opened");
  m_cursors_reaped_ = &metrics_.counter("net.cursors_reaped");
  m_connections_ = &metrics_.gauge("net.connections");
  m_inflight_ = &metrics_.gauge("net.inflight");
  m_cursors_ = &metrics_.gauge("net.cursors");
}

KvServer::~KvServer() { stop(); }

KvServer::Worker::~Worker() {
  if (event_fd >= 0) ::close(event_fd);
  if (epfd >= 0) ::close(epfd);
}

Status KvServer::start() {
  if (running_.load()) return Status::kAlreadyExists;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::kIoError;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 1024) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::kIoError;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  const std::uint32_t n = std::max<std::uint32_t>(1, cfg_.num_workers);
  workers_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->epfd < 0 || w->event_fd < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      // Worker dtors close the fds of `w` and every already-created
      // worker — no descriptor survives a partial start.
      workers_.clear();
      return Status::kIoError;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagEvent;
    ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, w->event_fd, &ev);
    if (i == 0) {
      epoll_event lv{};
      lv.events = EPOLLIN;
      lv.data.u64 = kTagListen;
      ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, listen_fd_, &lv);
    }
    workers_.push_back(std::move(w));
  }
  draining_.store(false);
  running_.store(true);
  for (auto& w : workers_) {
    w->thread = std::thread([this, wp = w.get()] { worker_main(*wp); });
  }
  // Completion batches land on the ring from shard worker threads; an
  // eventfd kick per batch replaces timer-polling the ring. (On a
  // non-sharded device completions only appear when a worker drives the
  // queue itself, so the self-wake is harmless.)
  dev_.set_completion_notify([this] {
    for (auto& w : workers_) wake(*w);
  });
  return Status::kOk;
}

void KvServer::stop() {
  if (workers_.empty()) return;
  draining_.store(true);
  running_.store(false);
  for (auto& w : workers_) wake(*w);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Straggler completions (commands orphaned past the drain deadline)
  // may still fire the notify from shard workers: detach it before the
  // eventfds it writes to are closed.
  dev_.set_completion_notify(nullptr);
  workers_.clear();  // Worker dtors close each epfd/event_fd
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Anything still registered here belonged to connections whose workers
  // force-closed at the drain deadline.
  std::lock_guard lk(pending_mu_);
  pending_.clear();
  stray_.clear();
  inflight_total_.store(0);
  draining_.store(false);
}

void KvServer::wake(Worker& w) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(w.event_fd, &one, sizeof one);
}

bool KvServer::fully_drained() {
  std::lock_guard lk(pending_mu_);
  return pending_.empty() && stray_.empty();
}

void KvServer::worker_main(Worker& w) {
  std::vector<epoll_event> events(512);
  std::uint64_t drain_deadline_ns = 0;
  bool pumping = false;
  for (;;) {
    const bool stopping = draining_.load(std::memory_order_relaxed);
    int timeout = cfg_.idle_timeout_ms;
    if (stopping) {
      timeout = 1;
    } else if (pumping ||
               (serialize_backend_ &&
                inflight_total_.load(std::memory_order_relaxed) > 0)) {
      // A non-sharded device completes work only when this loop drives
      // it, so keep driving. A sharded backend's completion batches
      // arrive via the eventfd notify — block normally.
      timeout = 0;
    }
    const int n = ::epoll_wait(w.epfd, events.data(),
                               static_cast<int>(events.size()), timeout);
    m_loop_iters_->inc();
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kTagListen) {
        accept_ready(w);
        continue;
      }
      if (ev.data.u64 == kTagEvent) {
        std::uint64_t buf;
        while (::read(w.event_fd, &buf, sizeof buf) > 0) {
        }
        continue;
      }
      auto it = w.conns.find(ev.data.u64);
      if (it == w.conns.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        close_conn(w, c);
        continue;
      }
      if ((ev.events & EPOLLIN) && !c.read_closed) {
        read_ready(w, c);
        // read_ready may close the connection; re-check before EPOLLOUT.
        if (w.conns.find(ev.data.u64) == w.conns.end()) continue;
      }
      if (ev.events & EPOLLOUT) write_ready(w, c);
    }

    // Adopt handed-off connections and apply routed responses.
    {
      std::vector<int> handoff;
      {
        std::lock_guard lk(w.inbox_mu);
        handoff.swap(w.handoff);
      }
      for (const int fd : handoff) adopt_conn(w, fd);
    }
    drain_inbox(w);

    const std::size_t done = harvest_completions(w);

    if (stopping) {
      const std::uint64_t now = wall_now_ns();
      if (drain_deadline_ns == 0) {
        drain_deadline_ns =
            now + static_cast<std::uint64_t>(cfg_.drain_timeout_ms) * 1'000'000;
        // No further requests: stop reading everywhere, keep writing.
        for (auto& [id, conn] : w.conns) {
          conn->read_closed = true;
          update_write_interest(w, *conn);
        }
      }
      bool flushed = true;
      for (auto& [id, conn] : w.conns) {
        if (conn->out_pos < conn->out.size()) flushed = false;
      }
      bool inbox_empty;
      {
        std::lock_guard lk(w.inbox_mu);
        inbox_empty = w.inbox.empty() && w.handoff.empty();
      }
      if ((fully_drained() && flushed && inbox_empty) ||
          now > drain_deadline_ns) {
        break;
      }
      continue;
    }

    // Fully idle: let the backend make background progress (GC quanta,
    // incremental index migration). A sharded array reports false here —
    // its own workers pump whenever their rings go idle.
    if (n == 0 && done == 0 &&
        inflight_total_.load(std::memory_order_relaxed) == 0) {
      bool worked;
      if (serialize_backend_) {
        std::lock_guard lk(backend_mu_);
        worked = dev_.backend().pump_background();
      } else {
        worked = dev_.backend().pump_background();
      }
      if (worked) m_idle_pumps_->inc();
      pumping = worked;
    } else {
      pumping = false;
    }
  }
  // Worker teardown: close whatever is left (drained or past deadline).
  for (auto& [id, conn] : w.conns) {
    reap_cursors(*conn);
    ::close(conn->fd);
    m_closed_->inc();
    m_connections_->add(-1);
  }
  w.conns.clear();
}

void KvServer::accept_ready(Worker& w) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: back to epoll
    if (draining_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::uint32_t target =
        next_accept_worker_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<std::uint32_t>(workers_.size());
    if (target == w.index) {
      adopt_conn(w, fd);
    } else {
      Worker& t = *workers_[target];
      {
        std::lock_guard lk(t.inbox_mu);
        t.handoff.push_back(fd);
      }
      wake(t);
    }
  }
}

void KvServer::adopt_conn(Worker& w, int fd) {
  auto c = std::make_unique<Conn>(cfg_.limits);
  c->fd = fd;
  c->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = c->id;
  if (::epoll_ctl(w.epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  m_accepted_->inc();
  m_connections_->add(1);
  w.conns.emplace(c->id, std::move(c));
}

void KvServer::reap_cursors(Conn& c) {
  if (c.cursors.empty()) return;
  std::unique_lock<std::mutex> lk(backend_mu_, std::defer_lock);
  if (serialize_backend_) lk.lock();
  for (auto& [id, cur] : c.cursors) {
    (void)dev_.kvs_close_iterator(cur.backend_iter);
    (void)dev_.release_snapshot(cur.snap);
    m_cursors_reaped_->inc();
    m_cursors_->add(-1);
  }
  c.cursors.clear();
}

void KvServer::close_conn(Worker& w, Conn& c) {
  // Idle-cursor reaping: a dying connection's scans release their
  // snapshot pins here, so an abandoned cursor never holds version
  // retention hostage.
  reap_cursors(c);
  // Pending completions for this connection stay registered; whoever
  // harvests them finds the connection gone and reaps them as orphans —
  // reaped exactly once, delivered zero times.
  ::epoll_ctl(w.epfd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  m_closed_->inc();
  m_connections_->add(-1);
  w.conns.erase(c.id);  // destroys c — callers must not touch it again
}

void KvServer::update_write_interest(Worker& w, Conn& c) {
  const bool want_write = c.out_pos < c.out.size();
  if (want_write == c.want_write && !c.read_closed) return;
  c.want_write = want_write;
  epoll_event ev{};
  ev.events = (c.read_closed ? 0u : static_cast<unsigned>(EPOLLIN)) |
              (want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(w.epfd, EPOLL_CTL_MOD, c.fd, &ev);
}

void KvServer::read_ready(Worker& w, Conn& c) {
  // handle_request can destroy `c` (a flush hitting EPIPE/ECONNRESET
  // closes the connection), so every post-dispatch liveness check must
  // use a saved id — reading c.id after the close is a use-after-free.
  const std::uint64_t conn_id = c.id;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
    m_recv_calls_->inc();
    if (r > 0) {
      m_rx_bytes_->inc(static_cast<std::uint64_t>(r));
      c.decoder.feed(ByteSpan(buf, static_cast<std::size_t>(r)));
      RequestFrame f;
      for (;;) {
        const DecodeStatus ds = c.decoder.next(&f);
        if (ds == DecodeStatus::kFrame) {
          handle_request(w, c, std::move(f));
          if (w.conns.find(conn_id) == w.conns.end()) return;  // closed
          continue;
        }
        if (ds == DecodeStatus::kNeedMore) break;
        // Framing is untrusted from here on: answer with a best-effort
        // error frame, then close. The raw send is only safe on an idle
        // stream — with a response partially flushed (out_pos mid-frame)
        // the error bytes would interleave mid-frame; just close then.
        m_decode_errors_->inc();
        if (c.out_pos >= c.out.size()) {
          ResponseFrame err;
          err.opcode = Opcode::kStatus;
          err.status = api::KvsResult::KVS_ERR_SYS_IO;
          Bytes enc;
          encode_response(err, &enc);
          [[maybe_unused]] const ssize_t sent =
              ::send(c.fd, enc.data(), enc.size(), MSG_NOSIGNAL);
        }
        close_conn(w, c);
        return;
      }
      if (r < static_cast<ssize_t>(sizeof buf)) return;  // drained socket
      continue;
    }
    if (r == 0) {
      // Peer finished sending. Keep the connection until every pipelined
      // response has been delivered (write side still open).
      c.read_closed = true;
      update_write_interest(w, c);
      if (c.inflight == 0 && c.out_pos >= c.out.size()) close_conn(w, c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(w, c);
    return;
  }
}

void KvServer::write_ready(Worker& w, Conn& c) {
  flush_out(w, c);
}

void KvServer::flush_out(Worker& w, Conn& c) {
  while (c.out_pos < c.out.size()) {
    const ssize_t s = ::send(c.fd, c.out.data() + c.out_pos,
                             c.out.size() - c.out_pos, MSG_NOSIGNAL);
    m_send_calls_->inc();
    if (s > 0) {
      m_tx_bytes_->inc(static_cast<std::uint64_t>(s));
      c.out_pos += static_cast<std::size_t>(s);
      continue;
    }
    if (s < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_write_interest(w, c);
      return;
    }
    if (s < 0 && errno == EINTR) continue;
    close_conn(w, c);  // EPIPE / ECONNRESET: peer died
    return;
  }
  c.out.clear();
  c.out_pos = 0;
  update_write_interest(w, c);
  if (c.read_closed && c.inflight == 0) close_conn(w, c);
}

void KvServer::enqueue_response(Conn& c, const ResponseFrame& resp) {
  encode_response(resp, &c.out);
  m_responses_->inc();
}

void KvServer::send_response(Worker& w, Conn& c, const ResponseFrame& resp) {
  enqueue_response(c, resp);
  flush_out(w, c);
}

void KvServer::flush_touched(Worker& w, std::vector<std::uint64_t>& touched) {
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint64_t id : touched) {
    auto it = w.conns.find(id);
    if (it != w.conns.end()) flush_out(w, *it->second);
  }
}

void KvServer::respond_now(Worker& w, Conn& c, const RequestFrame& f,
                           api::KvsResult result, Bytes&& value,
                           std::uint32_t extra) {
  ResponseFrame resp;
  resp.opcode = f.opcode;
  resp.status = result;
  resp.request_id = f.request_id;
  resp.extra = extra;
  resp.value = std::move(value);
  send_response(w, c, resp);
}

void KvServer::handle_request(Worker& w, Conn& c, RequestFrame&& f) {
  m_requests_->inc();
  const std::uint64_t now = wall_now_ns();

  Tenant* tenant;
  if (cfg_.allow_unknown_tenants) {
    tenant = &tenants_.find_or_default(f.tenant_id, now);
  } else {
    tenant = tenants_.find(f.tenant_id);
    if (tenant == nullptr) {
      respond_now(w, c, f, api::KvsResult::KVS_ERR_OPTION_INVALID);
      return;
    }
  }

  if (f.opcode == Opcode::kStatus) {
    // Monitoring stays exempt from quotas so a throttled tenant can
    // still observe its own throttling.
    const std::string json = metrics_snapshot().to_json();
    respond_now(w, c, f, api::KvsResult::KVS_SUCCESS,
                Bytes(json.begin(), json.end()));
    return;
  }

  // Per-tenant quota, then the global and per-connection admission
  // caps. All three answer with the retryable KVS_ERR_QUEUE_FULL —
  // an over-limit request is never silently dropped.
  if (!tenant->bucket.try_take(now)) {
    tenant->throttled->inc();
    m_throttled_->inc();
    respond_now(w, c, f, api::KvsResult::KVS_ERR_QUEUE_FULL);
    return;
  }

  if (f.opcode == Opcode::kIterOpen || f.opcode == Opcode::kIterNext ||
      f.opcode == Opcode::kIterClose) {
    handle_cursor_op(w, c, f, *tenant, now);
    return;
  }

  if (f.opcode == Opcode::kIter) {
    // Clamp to the wire limit too: a response above limits.max_iter_keys
    // would be rejected as kTooLarge by any same-config client decoder.
    const std::size_t ceiling =
        std::min(cfg_.max_iter_keys, cfg_.limits.max_iter_keys);
    const std::size_t limit =
        std::min<std::size_t>(f.limit == 0 ? ceiling : f.limit, ceiling);
    const Bytes prefix = namespaced_key(tenant->id, f.key);
    std::vector<std::string> keys;
    api::KvsResult r;
    if (serialize_backend_) {
      std::lock_guard lk(backend_mu_);
      r = dev_.iterate(as_sv(prefix), &keys);
    } else {
      r = dev_.iterate(as_sv(prefix), &keys);
    }
    Bytes payload;
    std::uint32_t count = 0;
    if (r == api::KvsResult::KVS_SUCCESS) {
      if (keys.size() > limit) keys.resize(limit);
      for (auto& k : keys) k.erase(0, kTenantPrefixLen);
      encode_key_list(keys, &payload);
      count = static_cast<std::uint32_t>(keys.size());
      std::uint64_t bytes_out = payload.size();
      tenant->ops->inc();
      tenant->bytes->inc(f.key.size() + bytes_out);
      tenant->latency->record(wall_now_ns() - now);
    }
    respond_now(w, c, f, r, std::move(payload), count);
    return;
  }

  // PUT / GET / DEL: the async path.
  if (f.key.empty() ||
      f.key.size() + kTenantPrefixLen > kDeviceMaxKey) {
    respond_now(w, c, f, api::KvsResult::KVS_ERR_KEY_LENGTH_INVALID);
    return;
  }
  if (inflight_total_.load(std::memory_order_relaxed) >=
          cfg_.max_global_inflight ||
      c.inflight >= cfg_.max_conn_inflight) {
    m_admission_rejects_->inc();
    respond_now(w, c, f, api::KvsResult::KVS_ERR_QUEUE_FULL);
    return;
  }

  Bytes nk = namespaced_key(tenant->id, f.key);
  Pending p;
  p.worker = w.index;
  p.conn_id = c.id;
  p.request_id = f.request_id;
  p.opcode = f.opcode;
  p.tenant = tenant->id;
  p.t0_ns = now;
  p.req_bytes = f.key.size() + f.value.size();

  std::uint64_t id;
  {
    std::unique_lock<std::mutex> lk(backend_mu_, std::defer_lock);
    if (serialize_backend_) lk.lock();
    switch (f.opcode) {
      case Opcode::kPut:
        id = dev_.store_async(std::move(nk), std::move(f.value));
        break;
      case Opcode::kGet:
        id = dev_.retrieve_async(std::move(nk));
        break;
      default:
        id = dev_.remove_async(std::move(nk));
        break;
    }
  }
  c.inflight++;
  inflight_total_.fetch_add(1, std::memory_order_relaxed);
  m_inflight_->add(1);

  // Register the pending entry — unless another worker already
  // harvested this command's completion (it parked it in stray_).
  bool routed = false;
  api::KvsCompletion early;
  {
    std::lock_guard lk(pending_mu_);
    auto sit = stray_.find(id);
    if (sit != stray_.end()) {
      early = std::move(sit->second);
      stray_.erase(sit);
      routed = true;
    } else {
      pending_.emplace(id, p);
    }
  }
  if (routed) {
    std::vector<std::uint64_t> touched;
    route_completion(w, p, std::move(early), &touched);
    flush_touched(w, touched);
    inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    m_inflight_->add(-1);
  }
}

void KvServer::handle_cursor_op(Worker& w, Conn& c, RequestFrame& f,
                                Tenant& tenant, std::uint64_t now_ns) {
  if (f.opcode == Opcode::kIterOpen) {
    if (c.cursors.size() >= cfg_.max_conn_cursors) {
      respond_now(w, c, f, api::KvsResult::KVS_ERR_ITERATOR_MAX);
      return;
    }
    const Bytes prefix = namespaced_key(tenant.id, f.key);
    api::SnapshotHandle snap{};
    std::uint64_t handle = 0;
    api::KvsResult r;
    {
      std::unique_lock<std::mutex> lk(backend_mu_, std::defer_lock);
      if (serialize_backend_) lk.lock();
      // The cursor pins its own snapshot explicitly (rather than the
      // iterator's internal one) so the pinned epoch can ride in the
      // continuation token and the reaper can release it by handle.
      r = dev_.open_snapshot(&snap);
      if (r == api::KvsResult::KVS_SUCCESS) {
        r = dev_.kvs_open_iterator(as_sv(prefix), &handle, &snap);
        if (r != api::KvsResult::KVS_SUCCESS) (void)dev_.release_snapshot(snap);
      }
    }
    if (r != api::KvsResult::KVS_SUCCESS) {
      respond_now(w, c, f, r);
      return;
    }
    const std::uint64_t cid = c.next_cursor_id++;
    c.cursors.emplace(cid, Cursor{handle, snap, tenant.id});
    m_cursors_opened_->inc();
    m_cursors_->add(1);
    Bytes token;
    encode_iter_token(IterToken{cid, snap.epoch}, &token);
    tenant.ops->inc();
    tenant.bytes->inc(f.key.size() + token.size());
    tenant.latency->record(wall_now_ns() - now_ns);
    respond_now(w, c, f, r, std::move(token));
    return;
  }

  // kIterNext / kIterClose: both start from the continuation token. A
  // token that does not name a live cursor of THIS connection and THIS
  // tenant is an invalid request, not an expired snapshot.
  IterToken t;
  auto found = c.cursors.end();
  if (decode_iter_token(ByteSpan(f.value), &t)) found = c.cursors.find(t.cursor_id);
  if (found == c.cursors.end() || found->second.tenant != tenant.id) {
    respond_now(w, c, f, api::KvsResult::KVS_ERR_OPTION_INVALID);
    return;
  }
  Cursor& cur = found->second;

  if (f.opcode == Opcode::kIterClose) {
    {
      std::unique_lock<std::mutex> lk(backend_mu_, std::defer_lock);
      if (serialize_backend_) lk.lock();
      (void)dev_.kvs_close_iterator(cur.backend_iter);
      (void)dev_.release_snapshot(cur.snap);
    }
    c.cursors.erase(found);
    m_cursors_->add(-1);
    respond_now(w, c, f, api::KvsResult::KVS_SUCCESS);
    return;
  }

  // kIterNext. Same batch ceiling as the one-shot path: a response
  // above limits.max_iter_keys would be rejected by the client decoder.
  const std::size_t ceiling =
      std::min(cfg_.max_iter_keys, cfg_.limits.max_iter_keys);
  const std::size_t limit =
      std::min<std::size_t>(f.limit == 0 ? ceiling : f.limit, ceiling);
  std::vector<std::string> keys;
  api::KvsResult r;
  {
    std::unique_lock<std::mutex> lk(backend_mu_, std::defer_lock);
    if (serialize_backend_) lk.lock();
    r = dev_.kvs_iterator_next(cur.backend_iter, limit, &keys);
  }
  if (r != api::KvsResult::KVS_SUCCESS) {
    // KVS_ERR_KEY_NOT_EXIST = clean end-of-scan (cursor stays open for
    // an explicit close); KVS_ERR_SNAPSHOT_TOO_OLD = the pin fell out
    // of retention mid-scan and the client must restart.
    respond_now(w, c, f, r);
    return;
  }
  for (auto& k : keys) k.erase(0, kTenantPrefixLen);
  Bytes payload;
  encode_key_list(keys, &payload);
  const auto count = static_cast<std::uint32_t>(keys.size());
  tenant.ops->inc();
  tenant.bytes->inc(f.key.size() + payload.size());
  tenant.latency->record(wall_now_ns() - now_ns);
  respond_now(w, c, f, r, std::move(payload), count);
}

std::size_t KvServer::harvest_completions(Worker& w) {
  if (inflight_total_.load(std::memory_order_relaxed) == 0) return 0;
  std::vector<api::KvsCompletion> comps;
  if (serialize_backend_) {
    // Single-threaded device: poll_completions drives its queue inline
    // (cheap, synchronous) — this loop IS the device's engine.
    std::lock_guard lk(backend_mu_);
    dev_.poll_completions(&comps);
  } else {
    // Sharded: poll_completions' queue drive is a cross-shard barrier
    // that would park this event loop mid-pipeline. Harvest only what
    // the shard workers already pushed; the notify eventfd guarantees
    // we run again when more lands.
    dev_.try_poll_completions(&comps);
  }
  std::vector<std::uint64_t> touched;
  for (api::KvsCompletion& comp : comps) {
    bool found = false;
    Pending p;
    {
      std::lock_guard lk(pending_mu_);
      auto it = pending_.find(comp.id);
      if (it == pending_.end()) {
        // Submit/harvest race: the submitter has not registered yet.
        // Park the completion; handle_request matches it on insert.
        stray_.emplace(comp.id, std::move(comp));
        continue;
      }
      p = it->second;
      found = true;
    }
    if (!found) continue;
    // Route BEFORE erasing the pending entry: a draining worker treats
    // "pending empty + inbox empty" as termination, so a message must
    // never be in flight to an inbox while the map looks empty.
    route_completion(w, p, std::move(comp), &touched);
    {
      std::lock_guard lk(pending_mu_);
      pending_.erase(comp.id);
    }
    inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    m_inflight_->add(-1);
  }
  if (!comps.empty()) m_harvest_batches_->inc();
  flush_touched(w, touched);
  return comps.size();
}

void KvServer::route_completion(Worker& w, const Pending& p,
                                api::KvsCompletion&& comp,
                                std::vector<std::uint64_t>* touched) {
  // Tenant accounting happens at completion (the command actually ran).
  if (Tenant* t = tenants_.find(p.tenant)) {
    t->ops->inc();
    t->bytes->inc(p.req_bytes + comp.value.size());
    t->latency->record(wall_now_ns() - p.t0_ns);
  }

  ResponseFrame resp;
  resp.opcode = p.opcode;
  resp.status = comp.result;
  resp.request_id = p.request_id;
  if (p.opcode == Opcode::kGet && comp.result == api::KvsResult::KVS_SUCCESS) {
    resp.value = std::move(comp.value);
  }

  if (p.worker == w.index) {
    auto it = w.conns.find(p.conn_id);
    if (it == w.conns.end()) {
      m_orphaned_->inc();
      return;
    }
    Conn& c = *it->second;
    if (c.inflight > 0) c.inflight--;
    enqueue_response(c, resp);
    touched->push_back(c.id);
    return;
  }
  Worker& owner = *workers_[p.worker];
  OutMsg m;
  m.conn_id = p.conn_id;
  encode_response(resp, &m.data);
  {
    std::lock_guard lk(owner.inbox_mu);
    owner.inbox.push_back(std::move(m));
  }
  wake(owner);
}

void KvServer::drain_inbox(Worker& w) {
  std::vector<OutMsg> msgs;
  {
    std::lock_guard lk(w.inbox_mu);
    msgs.swap(w.inbox);
  }
  std::vector<std::uint64_t> touched;
  for (OutMsg& m : msgs) apply_out_msg(w, std::move(m), &touched);
  flush_touched(w, touched);
}

void KvServer::apply_out_msg(Worker& w, OutMsg&& m,
                             std::vector<std::uint64_t>* touched) {
  auto it = w.conns.find(m.conn_id);
  if (it == w.conns.end()) {
    m_orphaned_->inc();
    return;
  }
  Conn& c = *it->second;
  if (c.inflight > 0) c.inflight--;
  c.out.insert(c.out.end(), m.data.begin(), m.data.end());
  m_responses_->inc();
  touched->push_back(c.id);
}

}  // namespace rhik::net
