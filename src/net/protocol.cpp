#include "net/protocol.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32.hpp"

namespace rhik::net {

const char* to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kPut: return "PUT";
    case Opcode::kGet: return "GET";
    case Opcode::kDel: return "DEL";
    case Opcode::kIter: return "ITER";
    case Opcode::kStatus: return "STATUS";
    case Opcode::kIterOpen: return "ITER_OPEN";
    case Opcode::kIterNext: return "ITER_NEXT";
    case Opcode::kIterClose: return "ITER_CLOSE";
  }
  return "UNKNOWN";
}

namespace {

constexpr std::uint8_t kMaxOpcode =
    static_cast<std::uint8_t>(Opcode::kIterClose);
constexpr std::uint8_t kMaxResult =
    static_cast<std::uint8_t>(api::KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD);

void append(Bytes* out, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out->insert(out->end(), p, p + n);
}

}  // namespace

void encode_request(const RequestFrame& f, Bytes* out) {
  std::uint8_t hdr[kRequestHeaderSize];
  MutByteSpan h(hdr);
  put_u32(h, 0, kRequestMagic);
  hdr[4] = static_cast<std::uint8_t>(f.opcode);
  hdr[5] = 0;  // flags (reserved)
  put_u16(h, 6, static_cast<std::uint16_t>(f.key.size()));
  put_u32(h, 8, static_cast<std::uint32_t>(f.value.size()));
  put_u32(h, 12, f.tenant_id);
  put_u64(h, 16, f.request_id);
  put_u32(h, 24, f.limit);
  put_u32(h, 28, crc32(ByteSpan(hdr, 28)));
  append(out, hdr, sizeof hdr);
  append(out, f.key.data(), f.key.size());
  append(out, f.value.data(), f.value.size());
}

void encode_response(const ResponseFrame& f, Bytes* out) {
  std::uint8_t hdr[kResponseHeaderSize];
  MutByteSpan h(hdr);
  put_u32(h, 0, kResponseMagic);
  hdr[4] = static_cast<std::uint8_t>(f.opcode);
  hdr[5] = static_cast<std::uint8_t>(f.status);
  put_u16(h, 6, 0);
  put_u64(h, 8, f.request_id);
  put_u32(h, 16, static_cast<std::uint32_t>(f.value.size()));
  put_u32(h, 20, f.extra);
  put_u32(h, 24, crc32(ByteSpan(hdr, 24)));
  append(out, hdr, sizeof hdr);
  append(out, f.value.data(), f.value.size());
}

namespace detail {

void FrameBuffer::feed(ByteSpan data) {
  // Compact before growing once the dead prefix dominates, so steady-
  // state pipelining reuses one allocation instead of creeping forever.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void FrameBuffer::consume(std::size_t n) {
  pos_ += n;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
}

}  // namespace detail

DecodeStatus RequestDecoder::next(RequestFrame* out) {
  if (poisoned_) return DecodeStatus::kBadFrame;
  const ByteSpan b = buf_.view();
  if (b.size() < kRequestHeaderSize) return DecodeStatus::kNeedMore;
  DecodeStatus err = DecodeStatus::kFrame;
  if (get_u32(b, 0) != kRequestMagic) {
    err = DecodeStatus::kBadMagic;
  } else if (get_u32(b, 28) != crc32(b.first(28))) {
    err = DecodeStatus::kBadCrc;
  } else if (b[4] == 0 || b[4] > kMaxOpcode || b[5] != 0) {
    err = DecodeStatus::kBadFrame;
  }
  if (err != DecodeStatus::kFrame) {
    poisoned_ = true;
    return err;
  }
  const std::size_t key_len = get_u16(b, 6);
  const std::size_t value_len = get_u32(b, 8);
  // Length checks happen before waiting for the body: an oversized
  // declaration is rejected immediately, not after buffering megabytes.
  if (key_len > limits_.max_key_len || value_len > limits_.max_value_len) {
    poisoned_ = true;
    return DecodeStatus::kTooLarge;
  }
  const std::size_t total = kRequestHeaderSize + key_len + value_len;
  if (b.size() < total) return DecodeStatus::kNeedMore;
  out->opcode = static_cast<Opcode>(b[4]);
  out->tenant_id = get_u32(b, 12);
  out->request_id = get_u64(b, 16);
  out->limit = get_u32(b, 24);
  out->key.assign(b.begin() + kRequestHeaderSize,
                  b.begin() + kRequestHeaderSize + key_len);
  out->value.assign(b.begin() + kRequestHeaderSize + key_len,
                    b.begin() + total);
  buf_.consume(total);
  return DecodeStatus::kFrame;
}

DecodeStatus ResponseDecoder::next(ResponseFrame* out) {
  if (poisoned_) return DecodeStatus::kBadFrame;
  const ByteSpan b = buf_.view();
  if (b.size() < kResponseHeaderSize) return DecodeStatus::kNeedMore;
  DecodeStatus err = DecodeStatus::kFrame;
  if (get_u32(b, 0) != kResponseMagic) {
    err = DecodeStatus::kBadMagic;
  } else if (get_u32(b, 24) != crc32(b.first(24))) {
    err = DecodeStatus::kBadCrc;
  } else if (b[4] == 0 || b[4] > kMaxOpcode || b[5] > kMaxResult) {
    err = DecodeStatus::kBadFrame;
  }
  if (err != DecodeStatus::kFrame) {
    poisoned_ = true;
    return err;
  }
  const std::size_t value_len = get_u32(b, 16);
  // Responses carry ITER key lists and STATUS JSON, which legitimately
  // exceed a request's value ceiling; allow (max_key_len + 2) bytes per
  // key for up to max_iter_keys keys on top — the same limit the server
  // clamps its ITER responses to, so a valid frame is never rejected.
  if (value_len >
      limits_.max_value_len + (limits_.max_key_len + 2) * limits_.max_iter_keys) {
    poisoned_ = true;
    return DecodeStatus::kTooLarge;
  }
  const std::size_t total = kResponseHeaderSize + value_len;
  if (b.size() < total) return DecodeStatus::kNeedMore;
  out->opcode = static_cast<Opcode>(b[4]);
  out->status = static_cast<api::KvsResult>(b[5]);
  out->request_id = get_u64(b, 8);
  out->extra = get_u32(b, 20);
  out->value.assign(b.begin() + kResponseHeaderSize, b.begin() + total);
  buf_.consume(total);
  return DecodeStatus::kFrame;
}

void encode_key_list(const std::vector<std::string>& keys, Bytes* out) {
  std::size_t need = 0;
  for (const auto& k : keys) need += 2 + k.size();
  out->reserve(out->size() + need);
  for (const auto& k : keys) {
    std::uint8_t len[2];
    put_u16(MutByteSpan(len), 0, static_cast<std::uint16_t>(k.size()));
    append(out, len, 2);
    append(out, k.data(), k.size());
  }
}

void encode_iter_token(const IterToken& t, Bytes* out) {
  std::uint8_t buf[kIterTokenSize];
  MutByteSpan b(buf);
  put_u64(b, 0, t.cursor_id);
  put_u64(b, 8, t.epoch);
  append(out, buf, sizeof buf);
}

bool decode_iter_token(ByteSpan payload, IterToken* out) {
  if (payload.size() != kIterTokenSize) return false;
  out->cursor_id = get_u64(payload, 0);
  out->epoch = get_u64(payload, 8);
  return true;
}

bool decode_key_list(ByteSpan payload, std::uint32_t count,
                     std::vector<std::string>* keys_out) {
  keys_out->clear();
  keys_out->reserve(count);
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (off + 2 > payload.size()) return false;
    const std::size_t len = get_u16(payload, off);
    off += 2;
    if (off + len > payload.size()) return false;
    keys_out->emplace_back(reinterpret_cast<const char*>(payload.data() + off),
                           len);
    off += len;
  }
  return off == payload.size();
}

}  // namespace rhik::net
