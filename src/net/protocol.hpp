// Wire protocol of the serving layer (DESIGN.md §12).
//
// Length-prefixed binary frames over TCP, little-endian like every other
// codec in the repo (common/bytes.hpp). A connection carries a stream of
// pipelined request frames client→server and a stream of response frames
// server→client; responses are matched to requests by the echoed 64-bit
// request id, NOT by order — the server completes commands as the device
// finishes them, so a pipelined client must not assume FIFO.
//
// Request frame (32-byte header + key bytes + value bytes):
//
//   off size field
//   0   4    magic "RKV1"
//   4   1    opcode (Opcode)
//   5   1    flags (must be 0 — reserved)
//   6   2    key_len
//   8   4    value_len
//   12  4    tenant_id    (namespace + quota selector, DESIGN.md §12)
//   16  8    request_id   (echoed verbatim in the response)
//   24  4    limit        (kIter: max keys; 0 elsewhere)
//   28  4    crc32 over header bytes [0, 28)
//
// Response frame (28-byte header + value bytes):
//
//   off size field
//   0   4    magic "RKR1"
//   4   1    opcode (echoed)
//   5   1    status (api::KvsResult)
//   6   2    reserved (0)
//   8   8    request_id
//   16  4    value_len
//   20  4    extra        (kIter: number of keys in the payload)
//   24  4    crc32 over header bytes [0, 24)
//
// The header CRC makes framing self-validating: a corrupted or
// misaligned stream fails magic/CRC checks instead of being parsed into
// a garbage frame, and the decoder reports a connection-fatal error (the
// stream cannot be resynchronized once framing is untrusted). Payload
// integrity is TCP's job; the CRC protects the *lengths* the decoder is
// about to trust.
//
// kIter / kIterNext response payloads are a key list: `extra` entries
// of [u16 len][len key bytes], concatenated (encode_key_list /
// decode_key_list).
//
// Cursored scans (kIterOpen / kIterNext / kIterClose) replace the
// one-shot kIter for anything that must not truncate: kIter silently
// capped a scan at WireLimits::max_iter_keys, cursored scans stream the
// whole prefix in bounded batches pinned to ONE snapshot epoch.
//   kIterOpen:  request key = prefix; response value = 16-byte
//               continuation token (IterToken: [cursor_id u64][epoch
//               u64] — the epoch the server pinned for the cursor).
//   kIterNext:  request value = the token, limit = max keys this batch;
//               response = key list (`extra` keys) while keys remain,
//               KVS_ERR_KEY_NOT_EXIST once exhausted (the cursor stays
//               open until kIterClose), KVS_ERR_SNAPSHOT_TOO_OLD when
//               the pinned epoch fell out of version retention.
//   kIterClose: request value = the token; releases the cursor and its
//               snapshot pin.
// Cursors are per-connection server state, owned by the tenant that
// opened them (a token is rejected across tenants) and reaped when the
// connection closes — an abandoned cursor never pins an epoch forever.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/kvs.hpp"
#include "common/bytes.hpp"

namespace rhik::net {

enum class Opcode : std::uint8_t {
  kPut = 1,
  kGet = 2,
  kDel = 3,
  /// One-shot prefix scan; key = prefix, limit = max keys. Deprecated:
  /// results silently truncate at WireLimits::max_iter_keys — use the
  /// cursored kIterOpen / kIterNext / kIterClose instead.
  kIter = 4,
  kStatus = 5,     ///< server metrics snapshot; response value = JSON
  kIterOpen = 6,   ///< open cursor; key = prefix, response = IterToken
  kIterNext = 7,   ///< value = IterToken, limit = batch; response = keys
  kIterClose = 8,  ///< value = IterToken; releases cursor + pin
};

[[nodiscard]] const char* to_string(Opcode op) noexcept;

constexpr std::uint32_t kRequestMagic = 0x31564B52u;   // "RKV1"
constexpr std::uint32_t kResponseMagic = 0x31524B52u;  // "RKR1"
constexpr std::size_t kRequestHeaderSize = 32;
constexpr std::size_t kResponseHeaderSize = 28;

/// Decoder-enforced frame-size ceilings. Anything larger is treated as a
/// framing error (connection-fatal), independent of what the backend
/// would accept for the key/value.
struct WireLimits {
  std::size_t max_key_len = 1024;
  std::size_t max_value_len = 4u << 20;
  /// Ceiling on keys in one kIter response payload. The response
  /// decoder derives its kTooLarge cap from this, so client and server
  /// must agree on it (the server clamps ServerConfig::max_iter_keys to
  /// this value when building ITER responses).
  std::size_t max_iter_keys = 65536;
};

struct RequestFrame {
  Opcode opcode = Opcode::kPut;
  std::uint32_t tenant_id = 0;
  std::uint64_t request_id = 0;
  std::uint32_t limit = 0;  ///< kIter only
  Bytes key;
  Bytes value;
};

struct ResponseFrame {
  Opcode opcode = Opcode::kPut;
  api::KvsResult status = api::KvsResult::KVS_SUCCESS;
  std::uint64_t request_id = 0;
  std::uint32_t extra = 0;  ///< kIter: key count in `value`
  Bytes value;
};

/// Appends the encoded frame to `out` (so many frames batch into one
/// buffer = one write syscall when pipelining).
void encode_request(const RequestFrame& f, Bytes* out);
void encode_response(const ResponseFrame& f, Bytes* out);

enum class DecodeStatus : std::uint8_t {
  kFrame = 0,   ///< one frame produced
  kNeedMore,    ///< partial frame buffered; feed more bytes
  kBadMagic,    ///< stream is not frame-aligned — connection-fatal
  kBadCrc,      ///< header corrupted — connection-fatal
  kBadFrame,    ///< unknown opcode / status / nonzero flags — fatal
  kTooLarge,    ///< declared lengths exceed WireLimits — fatal
};

[[nodiscard]] constexpr bool decode_fatal(DecodeStatus s) noexcept {
  return s != DecodeStatus::kFrame && s != DecodeStatus::kNeedMore;
}

namespace detail {
/// Incremental frame assembly shared by both decoders: buffers fed
/// bytes, compacts lazily, and hands complete frames to the typed
/// parsers below.
class FrameBuffer {
 public:
  void feed(ByteSpan data);
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] ByteSpan view() const noexcept {
    return ByteSpan(buf_).subspan(pos_);
  }
  void consume(std::size_t n);

 private:
  Bytes buf_;
  std::size_t pos_ = 0;
};
}  // namespace detail

/// Incremental request decoder (server side). feed() whatever recv()
/// produced, then call next() until it stops returning kFrame. Any
/// fatal status poisons the decoder — the connection must be closed.
class RequestDecoder {
 public:
  explicit RequestDecoder(WireLimits limits = {}) : limits_(limits) {}
  void feed(ByteSpan data) { buf_.feed(data); }
  DecodeStatus next(RequestFrame* out);

 private:
  WireLimits limits_;
  detail::FrameBuffer buf_;
  bool poisoned_ = false;
};

/// Incremental response decoder (client side).
class ResponseDecoder {
 public:
  explicit ResponseDecoder(WireLimits limits = {}) : limits_(limits) {}
  void feed(ByteSpan data) { buf_.feed(data); }
  DecodeStatus next(ResponseFrame* out);

 private:
  WireLimits limits_;
  detail::FrameBuffer buf_;
  bool poisoned_ = false;
};

/// kIter / kIterNext payload codec: `extra` entries of
/// [u16 len][key bytes].
void encode_key_list(const std::vector<std::string>& keys, Bytes* out);
/// Strict decode: every byte must be consumed and exactly `count`
/// entries present, else false (payload treated as corrupt).
[[nodiscard]] bool decode_key_list(ByteSpan payload, std::uint32_t count,
                                   std::vector<std::string>* keys_out);

/// Continuation token of a cursored scan: returned by kIterOpen, echoed
/// verbatim in every kIterNext / kIterClose. `cursor_id` names the
/// server-side cursor; `epoch` is the snapshot epoch the cursor pinned
/// (diagnostics — the server validates the id, the device validates the
/// pin).
struct IterToken {
  std::uint64_t cursor_id = 0;
  std::uint64_t epoch = 0;
};

constexpr std::size_t kIterTokenSize = 16;

/// Appends the 16-byte token encoding to `out`.
void encode_iter_token(const IterToken& t, Bytes* out);
/// Strict decode: exactly kIterTokenSize bytes, else false.
[[nodiscard]] bool decode_iter_token(ByteSpan payload, IterToken* out);

}  // namespace rhik::net
