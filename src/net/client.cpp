#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

namespace rhik::net {

Status KvClient::connect(const std::string& host, std::uint16_t port) {
  if (fd_ >= 0) return Status::kAlreadyExists;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::kIoError;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::kIoError;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Status::kOk;
}

void KvClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
  stash_.clear();
  decoder_ = ResponseDecoder(opts_.limits);
}

Status KvClient::send_all(const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t s = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (s < 0) {
      if (errno == EINTR) continue;
      return Status::kIoError;
    }
    off += static_cast<std::size_t>(s);
  }
  return Status::kOk;
}

api::KvsResult KvClient::validate_frame(std::string_view key,
                                        std::string_view value) const noexcept {
  if (key.size() > opts_.limits.max_key_len ||
      key.size() > std::numeric_limits<std::uint16_t>::max()) {
    return api::KvsResult::KVS_ERR_KEY_LENGTH_INVALID;
  }
  if (value.size() > opts_.limits.max_value_len ||
      value.size() > std::numeric_limits<std::uint32_t>::max()) {
    return api::KvsResult::KVS_ERR_VALUE_LENGTH_INVALID;
  }
  return api::KvsResult::KVS_SUCCESS;
}

std::uint64_t KvClient::encode_pending(Opcode op, std::string_view key,
                                       std::string_view value,
                                       std::uint32_t limit) {
  if (validate_frame(key, value) != api::KvsResult::KVS_SUCCESS) return 0;
  RequestFrame f;
  f.opcode = op;
  f.tenant_id = opts_.tenant_id;
  f.request_id = next_id_++;
  f.limit = limit;
  f.key.assign(key.begin(), key.end());
  f.value.assign(value.begin(), value.end());
  encode_request(f, &pending_);
  return f.request_id;
}

std::uint64_t KvClient::submit_put(std::string_view key,
                                   std::string_view value) {
  return encode_pending(Opcode::kPut, key, value, 0);
}

std::uint64_t KvClient::submit_get(std::string_view key) {
  return encode_pending(Opcode::kGet, key, {}, 0);
}

std::uint64_t KvClient::submit_del(std::string_view key) {
  return encode_pending(Opcode::kDel, key, {}, 0);
}

Status KvClient::flush() {
  if (fd_ < 0) return Status::kIoError;
  if (pending_.empty()) return Status::kOk;
  const Status s = send_all(pending_.data(), pending_.size());
  pending_.clear();
  return s;
}

Status KvClient::recv_response(ResponseFrame* out) {
  if (!stash_.empty()) {
    auto it = stash_.begin();
    *out = std::move(it->second);
    stash_.erase(it);
    return Status::kOk;
  }
  if (fd_ < 0) return Status::kIoError;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const DecodeStatus ds = decoder_.next(out);
    if (ds == DecodeStatus::kFrame) return Status::kOk;
    if (ds != DecodeStatus::kNeedMore) return Status::kCorruption;
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      decoder_.feed(ByteSpan(buf, static_cast<std::size_t>(r)));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return Status::kIoError;  // EOF or socket error
  }
}

Status KvClient::wait_for(std::uint64_t request_id, ResponseFrame* out) {
  auto it = stash_.find(request_id);
  if (it != stash_.end()) {
    *out = std::move(it->second);
    stash_.erase(it);
    return Status::kOk;
  }
  for (;;) {
    ResponseFrame f;
    // Bypass the arrival-order stash drain: we want one specific id.
    if (!stash_.empty()) {
      auto hit = stash_.find(request_id);
      if (hit != stash_.end()) {
        *out = std::move(hit->second);
        stash_.erase(hit);
        return Status::kOk;
      }
    }
    std::uint8_t buf[64 * 1024];
    const DecodeStatus ds = decoder_.next(&f);
    if (ds == DecodeStatus::kFrame) {
      if (f.request_id == request_id) {
        *out = std::move(f);
        return Status::kOk;
      }
      stash_.emplace(f.request_id, std::move(f));
      continue;
    }
    if (ds != DecodeStatus::kNeedMore) return Status::kCorruption;
    if (fd_ < 0) return Status::kIoError;
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      decoder_.feed(ByteSpan(buf, static_cast<std::size_t>(r)));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return Status::kIoError;
  }
}

Status KvClient::round_trip(Opcode op, std::string_view key,
                            std::string_view value, std::uint32_t limit,
                            ResponseFrame* out) {
  const std::uint64_t id = encode_pending(op, key, value, limit);
  if (id == 0) return Status::kInvalidArgument;
  Status s = flush();
  if (s != Status::kOk) return s;
  return wait_for(id, out);
}

api::KvsResult KvClient::put(std::string_view key, std::string_view value) {
  if (const auto v = validate_frame(key, value);
      v != api::KvsResult::KVS_SUCCESS) {
    return v;
  }
  ResponseFrame f;
  if (round_trip(Opcode::kPut, key, value, 0, &f) != Status::kOk) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  return f.status;
}

api::KvsResult KvClient::get(std::string_view key, Bytes* value_out) {
  if (const auto v = validate_frame(key, {});
      v != api::KvsResult::KVS_SUCCESS) {
    return v;
  }
  ResponseFrame f;
  if (round_trip(Opcode::kGet, key, {}, 0, &f) != Status::kOk) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  if (f.status == api::KvsResult::KVS_SUCCESS && value_out != nullptr) {
    *value_out = std::move(f.value);
  }
  return f.status;
}

api::KvsResult KvClient::del(std::string_view key) {
  if (const auto v = validate_frame(key, {});
      v != api::KvsResult::KVS_SUCCESS) {
    return v;
  }
  ResponseFrame f;
  if (round_trip(Opcode::kDel, key, {}, 0, &f) != Status::kOk) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  return f.status;
}

api::KvsResult KvClient::iter_open(std::string_view prefix,
                                   IterToken* token_out) {
  if (const auto v = validate_frame(prefix, {});
      v != api::KvsResult::KVS_SUCCESS) {
    return v;
  }
  ResponseFrame f;
  if (round_trip(Opcode::kIterOpen, prefix, {}, 0, &f) != Status::kOk) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  if (f.status != api::KvsResult::KVS_SUCCESS) return f.status;
  if (token_out != nullptr &&
      !decode_iter_token(ByteSpan(f.value), token_out)) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  return f.status;
}

api::KvsResult KvClient::iter_next(const IterToken& token, std::uint32_t limit,
                                   std::vector<std::string>* keys_out) {
  Bytes tok;
  encode_iter_token(token, &tok);
  const std::string_view tok_sv(reinterpret_cast<const char*>(tok.data()),
                                tok.size());
  ResponseFrame f;
  if (round_trip(Opcode::kIterNext, {}, tok_sv, limit, &f) != Status::kOk) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  if (f.status != api::KvsResult::KVS_SUCCESS) return f.status;
  if (keys_out != nullptr &&
      !decode_key_list(ByteSpan(f.value), f.extra, keys_out)) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  return f.status;
}

api::KvsResult KvClient::iter_close(const IterToken& token) {
  Bytes tok;
  encode_iter_token(token, &tok);
  const std::string_view tok_sv(reinterpret_cast<const char*>(tok.data()),
                                tok.size());
  ResponseFrame f;
  if (round_trip(Opcode::kIterClose, {}, tok_sv, 0, &f) != Status::kOk) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  return f.status;
}

api::KvsResult KvClient::iterate(std::string_view prefix, std::uint32_t limit,
                                 std::vector<std::string>* keys_out) {
  IterToken token;
  api::KvsResult r = iter_open(prefix, &token);
  if (r != api::KvsResult::KVS_SUCCESS) return r;
  // Drain the whole cursor even with a limit: the contract is the
  // lexicographically FIRST `limit` keys (a deterministic cut), and the
  // cursor streams in enumeration (hash) order — the cut can only be
  // taken after the full sorted view exists.
  std::vector<std::string> all;
  std::vector<std::string> batch;
  for (;;) {
    r = iter_next(token, 4096, &batch);
    if (r != api::KvsResult::KVS_SUCCESS) break;
    all.insert(all.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  (void)iter_close(token);
  if (r != api::KvsResult::KVS_ERR_KEY_NOT_EXIST) return r;
  std::sort(all.begin(), all.end());
  if (limit != 0 && all.size() > limit) all.resize(limit);
  if (keys_out != nullptr) *keys_out = std::move(all);
  return api::KvsResult::KVS_SUCCESS;
}

api::KvsResult KvClient::status_json(std::string* json_out) {
  ResponseFrame f;
  if (round_trip(Opcode::kStatus, {}, {}, 0, &f) != Status::kOk) {
    return api::KvsResult::KVS_ERR_SYS_IO;
  }
  if (f.status == api::KvsResult::KVS_SUCCESS && json_out != nullptr) {
    json_out->assign(f.value.begin(), f.value.end());
  }
  return f.status;
}

}  // namespace rhik::net
