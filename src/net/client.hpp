// net::KvClient — client library for the serving layer (DESIGN.md §12).
//
// A thin blocking TCP client over the wire protocol (net/protocol.hpp)
// with two usage styles:
//
//   * Blocking verbs (put/get/del/iterate/status_json): encode one
//     request, send, and wait for the matching response. Responses for
//     other outstanding pipelined requests that arrive first are
//     stashed, never dropped — mixing styles on one connection is safe.
//
//   * Pipelining: submit_put/submit_get/submit_del batch encoded frames
//     into one buffer; flush() pushes the batch in a single write;
//     recv_response() blocks for the next response frame in arrival
//     order (which is NOT submission order — match on request_id), and
//     wait_for(id) blocks until one specific request is answered.
//
// One KvClient is one connection and is not thread-safe; clients that
// want concurrency open more connections (that is the serving model the
// bench exercises).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/kvs.hpp"
#include "net/protocol.hpp"

namespace rhik::net {

class KvClient {
 public:
  struct Options {
    std::uint32_t tenant_id = 0;
    WireLimits limits{};
  };

  KvClient() : KvClient(Options{}) {}
  explicit KvClient(Options opts) : opts_(opts), decoder_(opts.limits) {}
  ~KvClient() { close(); }

  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;
  KvClient(KvClient&& other) noexcept
      : opts_(other.opts_),
        fd_(other.fd_),
        next_id_(other.next_id_),
        pending_(std::move(other.pending_)),
        decoder_(std::move(other.decoder_)),
        stash_(std::move(other.stash_)) {
    other.fd_ = -1;
  }
  KvClient& operator=(KvClient&&) = delete;

  /// Connects (blocking) to host:port. kIoError on failure.
  Status connect(const std::string& host, std::uint16_t port);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  // -- Blocking verbs ---------------------------------------------------------
  api::KvsResult put(std::string_view key, std::string_view value);
  api::KvsResult get(std::string_view key, Bytes* value_out);
  api::KvsResult del(std::string_view key);
  /// Prefix scan within this client's tenant namespace; limit 0 = no
  /// cap. Keys come back sorted (api::KvsDevice::iterate contract).
  /// Implemented over the cursored verbs below, so the whole scan is one
  /// consistent snapshot and never silently truncates at the server's
  /// per-response ceiling (the old one-shot ITER bug).
  api::KvsResult iterate(std::string_view prefix, std::uint32_t limit,
                         std::vector<std::string>* keys_out);

  // -- Cursored scans (ITER_OPEN / ITER_NEXT / ITER_CLOSE) --------------------
  /// Opens a server-side cursor over `prefix`, pinned to one snapshot
  /// epoch for its whole lifetime. The continuation token identifies the
  /// cursor in iter_next/iter_close. Cursors are per-connection state:
  /// they die with the connection (the server reaps them), but close
  /// promptly — an open cursor pins device version retention.
  api::KvsResult iter_open(std::string_view prefix, IterToken* token_out);
  /// Streams up to `limit` further keys (0 = server batch ceiling) into
  /// `keys_out` (replaced). KVS_SUCCESS while keys remain;
  /// KVS_ERR_KEY_NOT_EXIST once exhausted (cursor stays open);
  /// KVS_ERR_SNAPSHOT_TOO_OLD when the pinned epoch fell out of
  /// retention mid-scan — reopen and restart.
  api::KvsResult iter_next(const IterToken& token, std::uint32_t limit,
                           std::vector<std::string>* keys_out);
  /// Releases the cursor and its snapshot pin.
  api::KvsResult iter_close(const IterToken& token);
  /// Server metrics snapshot as JSON (the kStatus opcode).
  api::KvsResult status_json(std::string* json_out);

  // -- Pipelining -------------------------------------------------------------
  /// Encode into the pending batch; returns the request id to match the
  /// response with. Nothing hits the socket until flush(). Returns 0
  /// (never a valid id) without encoding anything when the key/value
  /// exceed the wire limits or header field widths — an unframeable
  /// request must fail per-call, not desync the stream.
  std::uint64_t submit_put(std::string_view key, std::string_view value);
  std::uint64_t submit_get(std::string_view key);
  std::uint64_t submit_del(std::string_view key);
  /// Sends the whole pending batch (one buffer, minimal syscalls).
  Status flush();
  /// Blocks for the next response frame, in arrival order. Consumes the
  /// stash first. kIoError on EOF/socket error or protocol violation.
  Status recv_response(ResponseFrame* out);
  /// Blocks until the response for `request_id` arrives, stashing any
  /// other responses that land first.
  Status wait_for(std::uint64_t request_id, ResponseFrame* out);
  /// Responses received but not yet consumed by wait_for().
  [[nodiscard]] std::size_t stashed() const noexcept { return stash_.size(); }

  [[nodiscard]] std::uint32_t tenant_id() const noexcept {
    return opts_.tenant_id;
  }

 private:
  /// Client-side wire validation: KVS_ERR_KEY/VALUE_LENGTH_INVALID when
  /// the request cannot be framed (WireLimits or the u16 key-len / u32
  /// value-len header fields would overflow), else KVS_SUCCESS.
  [[nodiscard]] api::KvsResult validate_frame(
      std::string_view key, std::string_view value) const noexcept;
  std::uint64_t encode_pending(Opcode op, std::string_view key,
                               std::string_view value, std::uint32_t limit);
  Status send_all(const std::uint8_t* data, std::size_t n);
  /// One send-and-wait round trip for the blocking verbs.
  Status round_trip(Opcode op, std::string_view key, std::string_view value,
                    std::uint32_t limit, ResponseFrame* out);

  Options opts_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  Bytes pending_;
  ResponseDecoder decoder_;
  std::unordered_map<std::uint64_t, ResponseFrame> stash_;
};

}  // namespace rhik::net
