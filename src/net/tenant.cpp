#include "net/tenant.hpp"

#include <algorithm>

namespace rhik::net {

void TokenBucket::configure(std::uint64_t ops_per_sec, std::uint64_t burst,
                            std::uint64_t now_ns) {
  std::lock_guard lk(mu_);
  rate_ = ops_per_sec;
  const std::uint64_t b = burst != 0 ? burst : std::max<std::uint64_t>(ops_per_sec, 1);
  cap_nano_ = b * kScale;
  tokens_nano_ = cap_nano_;  // start full: a fresh tenant gets its burst
  last_ns_ = now_ns;
}

bool TokenBucket::try_take(std::uint64_t now_ns) {
  std::lock_guard lk(mu_);
  if (rate_ == 0) return true;
  if (now_ns > last_ns_) {
    // rate_ tokens/s == rate_ nano-tokens/ns, so the refill is exact
    // integer math at any rate.
    const std::uint64_t refill = (now_ns - last_ns_) * rate_;
    tokens_nano_ = std::min(cap_nano_, tokens_nano_ + refill);
    last_ns_ = now_ns;
  }
  if (tokens_nano_ < kScale) return false;
  tokens_nano_ -= kScale;
  return true;
}

Tenant& TenantTable::configure(std::uint32_t id, TenantConfig cfg,
                               std::uint64_t now_ns) {
  std::lock_guard lk(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return create_locked(id, cfg, now_ns);
  it->second->cfg = cfg;
  it->second->bucket.configure(cfg.ops_per_sec, cfg.burst, now_ns);
  return *it->second;
}

Tenant* TenantTable::find(std::uint32_t id) {
  std::lock_guard lk(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Tenant& TenantTable::find_or_default(std::uint32_t id, std::uint64_t now_ns) {
  std::lock_guard lk(mu_);
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return *it->second;
  return create_locked(id, TenantConfig{}, now_ns);
}

Tenant& TenantTable::create_locked(std::uint32_t id, TenantConfig cfg,
                                   std::uint64_t now_ns) {
  auto t = std::make_unique<Tenant>();
  t->id = id;
  t->cfg = cfg;
  t->bucket.configure(cfg.ops_per_sec, cfg.burst, now_ns);
  const std::string base = "net.tenant." + std::to_string(id) + ".";
  t->ops = &registry_.counter(base + "ops");
  t->bytes = &registry_.counter(base + "bytes");
  t->throttled = &registry_.counter(base + "throttled");
  t->latency = &registry_.timer(base + "latency_ns");
  auto [it, inserted] = tenants_.emplace(id, std::move(t));
  (void)inserted;
  return *it->second;
}

}  // namespace rhik::net
