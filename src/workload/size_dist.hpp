// Request-size distributions (paper Table I).
//
// Piecewise-uniform buckets with relative weights, plus the presets the
// paper analyses: Baidu Atlas write sizes, Facebook Memcached ETC sizes,
// and the FAST'20 RocksDB deployment averages (UDB / ZippyDB / UP2X).
// The key-count projection methods reproduce the Table I analysis of how
// many KV pairs a 4 TB device must index for each workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rhik::workload {

class SizeDistribution {
 public:
  struct Bucket {
    std::uint64_t lo = 1;  ///< inclusive
    std::uint64_t hi = 1;  ///< inclusive
    double weight = 1.0;   ///< relative probability mass
  };

  explicit SizeDistribution(std::vector<Bucket> buckets);

  /// Draws a size: bucket by weight, uniform within the bucket.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  /// Expected request size.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Table I projection: number of pairs if a device of `capacity_bytes`
  /// were filled entirely with requests of the mean size.
  [[nodiscard]] double expected_pairs(std::uint64_t capacity_bytes) const {
    return static_cast<double>(capacity_bytes) / mean_;
  }

  /// Table I range: [capacity / mean(largest bucket),
  ///                 capacity / mean(smallest bucket)] — the spread of
  /// key counts between a workload of only-large and only-small requests.
  struct PairRange {
    double min_pairs = 0;
    double max_pairs = 0;
  };
  [[nodiscard]] PairRange pair_count_range(std::uint64_t capacity_bytes) const;

  [[nodiscard]] const std::vector<Bucket>& buckets() const noexcept {
    return buckets_;
  }

  // -- Presets -----------------------------------------------------------------
  /// Baidu Atlas write request sizes (Table I, left).
  static SizeDistribution atlas_write();
  /// Facebook Memcached ETC request sizes (Table I, right).
  static SizeDistribution fb_memcached_etc();
  /// RocksDB at Facebook (FAST'20): average pair sizes 57–153 B.
  static SizeDistribution rocksdb_udb();
  static SizeDistribution rocksdb_zippydb();
  static SizeDistribution rocksdb_up2x();
  /// Degenerate single size.
  static SizeDistribution fixed(std::uint64_t size);
  /// Uniform in [lo, hi].
  static SizeDistribution uniform(std::uint64_t lo, std::uint64_t hi);

 private:
  std::vector<Bucket> buckets_;
  std::vector<double> cdf_;
  double mean_ = 0;
};

}  // namespace rhik::workload
