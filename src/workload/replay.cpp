#include "workload/replay.hpp"

#include "workload/keygen.hpp"

namespace rhik::workload {

double ReplayResult::throughput_mib() const {
  return mib_per_sec(bytes_written + bytes_read, elapsed);
}

double ReplayResult::throughput_ops() const {
  return ops_per_sec(ops, elapsed);
}

ReplayResult replay(kvssd::KvssdDevice& device, const Trace& trace,
                    const ReplayOptions& opts) {
  ReplayResult result;
  const SimTime t0 = device.clock().now();
  Bytes value;
  std::uint32_t in_flight = 0;

  const auto note = [&result](Status s) {
    if (s == Status::kNotFound) {
      result.not_found++;
    } else if (!ok(s)) {
      result.failed_ops++;
    }
  };

  for (const TraceOp& op : trace) {
    const Bytes key = key_for_id(op.key_id, opts.key_size);
    switch (op.type) {
      case OpType::kPut: {
        value.resize(op.value_size);
        fill_value(op.key_id, value);
        result.bytes_written += value.size();
        if (opts.async) {
          device.submit_put(key, value, note);
          in_flight++;
        } else {
          note(device.put(key, value));
        }
        break;
      }
      case OpType::kGet: {
        if (opts.async) {
          device.submit_get(key, note);
          in_flight++;
        } else {
          const Status s = device.get(key, &value);
          note(s);
          if (ok(s)) {
            result.bytes_read += value.size();
            if (opts.verify_values && !check_value(op.key_id, value)) {
              result.failed_ops++;
            }
          }
        }
        break;
      }
      case OpType::kDel:
        if (opts.async) {
          device.submit_del(key, note);
          in_flight++;
        } else {
          note(device.del(key));
        }
        break;
      case OpType::kExist:
        note(device.exist(key));
        break;
    }
    result.ops++;
    if (opts.async && in_flight >= opts.async_batch) {
      device.drain();
      in_flight = 0;
    }
  }
  if (opts.async) device.drain();
  result.elapsed = device.clock().now() - t0;
  return result;
}

}  // namespace rhik::workload
