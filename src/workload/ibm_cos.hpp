// IBM Cloud Object Store trace synthesis (paper Fig. 5).
//
// The paper replays production IBM COS KV traces from eight clusters on a
// KVSSD whose FTL cache budget is 10 MB. We do not have the traces, so we
// synthesize per-cluster workloads with the properties Fig. 5 actually
// depends on (substitution documented in DESIGN.md):
//   * key cardinality relative to the cache budget — four clusters
//     (022, 026, 052, 072) need far less index than the cache holds, two
//     (001, 081) are near the budget, two (083, 096) far exceed it;
//   * object-storage access skew (zipfian) and a read-heavy mix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/keygen.hpp"
#include "workload/size_dist.hpp"
#include "workload/trace.hpp"

namespace rhik::workload {

struct CosClusterProfile {
  std::string name;
  std::uint64_t num_keys = 0;    ///< working-set cardinality
  double read_fraction = 0.9;    ///< GET share of the measured phase
  double zipf_theta = 0.9;
  std::uint64_t value_lo = 256;  ///< object size range (scaled down)
  std::uint64_t value_hi = 4096;
  std::uint64_t measured_ops = 0;  ///< ops in the measured phase

  /// Index pages this cluster's keys need (RHIK record geometry).
  [[nodiscard]] std::uint64_t index_bytes(std::uint32_t page_size,
                                          std::uint32_t records_per_page) const {
    const std::uint64_t pages =
        (num_keys + records_per_page - 1) / records_per_page;
    return pages * page_size;
  }
};

/// The eight clusters of Fig. 5, scaled by `scale` (1.0 reproduces the
/// default calibration: cache budget 10 MB <=> ~600 K keys of index).
std::vector<CosClusterProfile> ibm_cos_profiles(double scale = 1.0);

/// Load phase: one put per key (ids 0..num_keys-1).
Trace cos_load_trace(const CosClusterProfile& profile, std::uint64_t seed);

/// Measured phase: zipfian gets/puts per the profile's mix.
Trace cos_measure_trace(const CosClusterProfile& profile, std::uint64_t seed);

}  // namespace rhik::workload
