#include "workload/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace rhik::workload {

namespace {

const char* op_name(OpType t) {
  switch (t) {
    case OpType::kPut: return "put";
    case OpType::kGet: return "get";
    case OpType::kDel: return "del";
    case OpType::kExist: return "exist";
  }
  return "?";
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status save_trace(const Trace& trace, const std::string& path) {
  File f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::kIoError;
  for (const auto& op : trace) {
    if (std::fprintf(f.get(), "%s,%" PRIu64 ",%u\n", op_name(op.type), op.key_id,
                     op.value_size) < 0) {
      return Status::kIoError;
    }
  }
  return Status::kOk;
}

Result<Trace> load_trace(const std::string& path) {
  File f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::kIoError;
  Trace trace;
  char opbuf[16];
  std::uint64_t id = 0;
  unsigned size = 0;
  while (std::fscanf(f.get(), "%15[a-z],%" SCNu64 ",%u\n", opbuf, &id, &size) == 3) {
    TraceOp op;
    const std::string name(opbuf);
    if (name == "put") {
      op.type = OpType::kPut;
    } else if (name == "get") {
      op.type = OpType::kGet;
    } else if (name == "del") {
      op.type = OpType::kDel;
    } else if (name == "exist") {
      op.type = OpType::kExist;
    } else {
      return Status::kCorruption;
    }
    op.key_id = id;
    op.value_size = size;
    trace.push_back(op);
  }
  return trace;
}

}  // namespace rhik::workload
