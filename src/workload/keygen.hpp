// Deterministic key and value material for workload generation.
//
// KVBench-style: keys are derived from a 64-bit key id (sequential,
// uniform-random, or zipfian draw) and rendered into a fixed-size byte
// string; values are pattern-filled from the key id so they never need to
// be stored host-side to verify reads.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace rhik::workload {

enum class KeyPattern : std::uint8_t { kSequential, kUniform, kZipfian };

/// Renders key id `id` into exactly `key_size` bytes (>= 4). The encoding
/// is hex of the id plus deterministic padding, so ids map 1:1 to keys of
/// any requested size (paper experiments use 16 B and 128 B keys).
Bytes key_for_id(std::uint64_t id, std::uint32_t key_size);

/// Deterministic value for a key id: splitmix-derived bytes. Verifiable
/// on read without host-side storage of values.
void fill_value(std::uint64_t id, MutByteSpan out);
[[nodiscard]] bool check_value(std::uint64_t id, ByteSpan value);

/// Draws key ids according to a pattern over a keyspace of `n` keys.
class KeyIdStream {
 public:
  KeyIdStream(KeyPattern pattern, std::uint64_t n, std::uint64_t seed = 1)
      : pattern_(pattern), n_(n), rng_(seed) {
    if (pattern_ == KeyPattern::kZipfian) zipf_.emplace(n, 0.99);
  }

  std::uint64_t next() {
    switch (pattern_) {
      case KeyPattern::kSequential: return seq_++ % n_;
      case KeyPattern::kUniform: return rng_.next_below(n_);
      case KeyPattern::kZipfian: return zipf_->next(rng_);
    }
    return 0;
  }

  [[nodiscard]] std::uint64_t keyspace() const noexcept { return n_; }

 private:
  KeyPattern pattern_;
  std::uint64_t n_;
  std::uint64_t seq_ = 0;
  Rng rng_;
  std::optional<Zipfian> zipf_;
};

}  // namespace rhik::workload
