#include "workload/keygen.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rhik::workload {

Bytes key_for_id(std::uint64_t id, std::uint32_t key_size) {
  assert(key_size >= 4);
  Bytes key(key_size);
  // Leading tag + hex id (fits 16 B keys with "k" + 15 hex digits when
  // short); deterministic mixed padding beyond.
  static constexpr char kHex[] = "0123456789abcdef";
  key[0] = 'k';
  const std::uint32_t digits = std::min<std::uint32_t>(16, key_size - 1);
  for (std::uint32_t i = 0; i < digits; ++i) {
    key[1 + i] = static_cast<std::uint8_t>(
        kHex[(id >> (4 * (digits - 1 - i))) & 0xF]);
  }
  std::uint64_t pad = id ^ 0x70616464ULL;  // "padd"
  for (std::uint32_t i = 1 + digits; i < key_size; ++i) {
    key[i] = static_cast<std::uint8_t>('a' + (splitmix64(pad) % 26));
  }
  return key;
}

void fill_value(std::uint64_t id, MutByteSpan out) {
  std::uint64_t state = id * 0x9e3779b97f4a7c15ULL + 0x76616c75ULL;  // "valu"
  std::size_t i = 0;
  // Whole little-endian words (bytes match the old per-byte stores).
  while (i + 8 <= out.size()) {
    const std::uint64_t word = splitmix64(state);
    std::memcpy(out.data() + i, &word, 8);
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; i < out.size(); ++b) out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
  }
}

bool check_value(std::uint64_t id, ByteSpan value) {
  Bytes expect(value.size());
  fill_value(id, expect);
  return std::equal(value.begin(), value.end(), expect.begin());
}

}  // namespace rhik::workload
