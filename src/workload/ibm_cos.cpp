#include "workload/ibm_cos.hpp"

#include <cmath>

namespace rhik::workload {

std::vector<CosClusterProfile> ibm_cos_profiles(double scale) {
  // Cardinalities are calibrated against the Fig. 5 setup: a 10 MB FTL
  // cache holds ~320 record pages ~= 616 K keys at R = 1927. Clusters
  // 022/026/052/072 fit easily, 001/081 sit near the budget, 083/096
  // exceed it severalfold.
  const auto keys = [scale](double k) {
    return static_cast<std::uint64_t>(std::llround(k * scale));
  };
  std::vector<CosClusterProfile> profiles{
      {"001", keys(500'000), 0.88, 0.80, 256, 4096, 0},
      {"022", keys(40'000), 0.95, 0.90, 256, 4096, 0},
      {"026", keys(60'000), 0.92, 0.90, 256, 4096, 0},
      {"052", keys(25'000), 0.97, 0.85, 256, 4096, 0},
      {"072", keys(90'000), 0.90, 0.90, 256, 4096, 0},
      {"081", keys(700'000), 0.85, 0.80, 256, 4096, 0},
      {"083", keys(2'400'000), 0.90, 0.75, 128, 2048, 0},
      {"096", keys(3'200'000), 0.88, 0.75, 128, 2048, 0},
  };
  for (auto& p : profiles) {
    // Measured phase touches a multiple of the working set, capped so the
    // biggest clusters stay tractable on the emulator.
    p.measured_ops = std::min<std::uint64_t>(p.num_keys * 3, 100'000);
  }
  return profiles;
}

Trace cos_load_trace(const CosClusterProfile& profile, std::uint64_t seed) {
  Rng rng(seed);
  const SizeDistribution sizes =
      SizeDistribution::uniform(profile.value_lo, profile.value_hi);
  Trace trace;
  trace.reserve(profile.num_keys);
  for (std::uint64_t id = 0; id < profile.num_keys; ++id) {
    trace.push_back({OpType::kPut, id,
                     static_cast<std::uint32_t>(sizes.sample(rng))});
  }
  return trace;
}

Trace cos_measure_trace(const CosClusterProfile& profile, std::uint64_t seed) {
  Rng rng(seed);
  const Zipfian zipf(profile.num_keys, profile.zipf_theta);
  const SizeDistribution sizes =
      SizeDistribution::uniform(profile.value_lo, profile.value_hi);
  Trace trace;
  trace.reserve(profile.measured_ops);
  for (std::uint64_t i = 0; i < profile.measured_ops; ++i) {
    const std::uint64_t id = zipf.next(rng);
    if (rng.next_double() < profile.read_fraction) {
      trace.push_back({OpType::kGet, id, 0});
    } else {
      trace.push_back({OpType::kPut, id,
                       static_cast<std::uint32_t>(sizes.sample(rng))});
    }
  }
  return trace;
}

}  // namespace rhik::workload
