// Trace replay harness over an emulated KVSSD.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/sim_clock.hpp"
#include "kvssd/device.hpp"
#include "workload/trace.hpp"

namespace rhik::workload {

struct ReplayOptions {
  std::uint32_t key_size = 16;
  bool async = false;              ///< submit through the async queue
  std::uint32_t async_batch = 64;  ///< drain() every N submissions
  bool verify_values = false;      ///< check returned bytes on gets
};

struct ReplayResult {
  std::uint64_t ops = 0;
  std::uint64_t failed_ops = 0;       ///< statuses other than Ok/NotFound
  std::uint64_t not_found = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  SimTime elapsed = 0;                ///< simulated device time
  double throughput_mib() const;
  double throughput_ops() const;
};

/// Replays a trace; keys come from key_for_id, values from fill_value.
ReplayResult replay(kvssd::KvssdDevice& device, const Trace& trace,
                    const ReplayOptions& opts);

}  // namespace rhik::workload
