// Trace representation: an ordered list of KV operations on key ids.
//
// Traces are synthesized (IBM COS profiles, KVBench patterns) or loaded
// from a simple CSV so users can replay their own (examples/trace_replay).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace rhik::workload {

enum class OpType : std::uint8_t { kPut, kGet, kDel, kExist };

struct TraceOp {
  OpType type = OpType::kPut;
  std::uint64_t key_id = 0;
  std::uint32_t value_size = 0;  ///< puts only
};

using Trace = std::vector<TraceOp>;

/// CSV format, one op per line: `put|get|del|exist,<key_id>,<value_size>`.
Status save_trace(const Trace& trace, const std::string& path);
Result<Trace> load_trace(const std::string& path);

}  // namespace rhik::workload
