#include "workload/size_dist.hpp"

#include <cassert>

namespace rhik::workload {

SizeDistribution::SizeDistribution(std::vector<Bucket> buckets)
    : buckets_(std::move(buckets)) {
  assert(!buckets_.empty());
  double total = 0;
  for (const auto& b : buckets_) {
    assert(b.lo >= 1 && b.lo <= b.hi && b.weight > 0);
    total += b.weight;
  }
  double acc = 0;
  cdf_.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    acc += b.weight / total;
    cdf_.push_back(acc);
    mean_ += (b.weight / total) *
             (static_cast<double>(b.lo) + static_cast<double>(b.hi)) / 2.0;
  }
  cdf_.back() = 1.0;
}

std::uint64_t SizeDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  std::size_t i = 0;
  while (i + 1 < cdf_.size() && u >= cdf_[i]) ++i;
  return rng.next_range(buckets_[i].lo, buckets_[i].hi);
}

SizeDistribution::PairRange SizeDistribution::pair_count_range(
    std::uint64_t capacity_bytes) const {
  double smallest_mean = 0;
  double largest_mean = 0;
  std::uint64_t smallest_lo = UINT64_MAX;
  std::uint64_t largest_hi = 0;
  for (const auto& b : buckets_) {
    const double m = (static_cast<double>(b.lo) + static_cast<double>(b.hi)) / 2.0;
    if (b.lo < smallest_lo) {
      smallest_lo = b.lo;
      smallest_mean = m;
    }
    if (b.hi > largest_hi) {
      largest_hi = b.hi;
      largest_mean = m;
    }
  }
  return {static_cast<double>(capacity_bytes) / largest_mean,
          static_cast<double>(capacity_bytes) / smallest_mean};
}

SizeDistribution SizeDistribution::atlas_write() {
  constexpr std::uint64_t KB = 1024;
  return SizeDistribution({
      {1, 4 * KB, 1.2},
      {4 * KB + 1, 16 * KB, 1.0},
      {16 * KB + 1, 32 * KB, 0.8},
      {32 * KB + 1, 64 * KB, 1.2},
      {64 * KB + 1, 128 * KB, 1.7},
      {128 * KB + 1, 256 * KB, 94.1},
  });
}

SizeDistribution SizeDistribution::fb_memcached_etc() {
  constexpr std::uint64_t KB = 1024;
  return SizeDistribution({
      {1, 11, 40.0},
      {12, 100, 10.0},
      {101, KB, 45.0},
      {KB + 1, 1024 * KB, 5.0},
  });
}

SizeDistribution SizeDistribution::rocksdb_udb() {
  // UDB: avg key 27.1 B, avg value 126.7 B -> ~153 B pairs.
  return SizeDistribution({{64, 242, 1.0}});
}

SizeDistribution SizeDistribution::rocksdb_zippydb() {
  // ZippyDB: avg pair ~ 90 B.
  return SizeDistribution({{40, 140, 1.0}});
}

SizeDistribution SizeDistribution::rocksdb_up2x() {
  // UP2X: avg key 10.45 B, avg value 46.8 B -> ~57 B pairs.
  return SizeDistribution({{24, 90, 1.0}});
}

SizeDistribution SizeDistribution::fixed(std::uint64_t size) {
  return SizeDistribution({{size, size, 1.0}});
}

SizeDistribution SizeDistribution::uniform(std::uint64_t lo, std::uint64_t hi) {
  return SizeDistribution({{lo, hi, 1.0}});
}

}  // namespace rhik::workload
