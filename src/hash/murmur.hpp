// Key-signature hash functions.
//
// RHIK transforms variable-sized application keys into fixed-size key
// signatures with "a simple hash function such as MurmurHash2" (§IV-A).
// We provide MurmurHash2-64A (the paper default, 64-bit signatures) and
// MurmurHash3-x64-128 for the 128-bit alternative discussed in §IV-A3.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace rhik::hash {

/// MurmurHash2, 64-bit version for 64-bit platforms (MurmurHash64A).
[[nodiscard]] std::uint64_t murmur2_64(ByteSpan key, std::uint64_t seed = 0) noexcept;

/// 128-bit signature (MurmurHash3 x64 variant).
struct U128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const U128&, const U128&) = default;
};
[[nodiscard]] U128 murmur3_128(ByteSpan key, std::uint64_t seed = 0) noexcept;

/// Stateless 64->64 bit finalizer (splitmix-style). Used to derive the
/// record-layer bucket from a key signature: the directory layer consumes
/// the low D bits of the signature, so the intra-table hash must depend
/// on independent bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Iterator-friendly signature (§VI): 4 B prefix hash + 4 B suffix hash of
/// the original key, so keys sharing a prefix land in adjacent signature
/// ranges and prefix iteration can bound its scan.
[[nodiscard]] std::uint64_t prefix_signature(ByteSpan key, std::size_t prefix_len = 4) noexcept;

}  // namespace rhik::hash
