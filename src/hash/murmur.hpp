// Key-signature hash functions.
//
// RHIK transforms variable-sized application keys into fixed-size key
// signatures with "a simple hash function such as MurmurHash2" (§IV-A).
// We provide MurmurHash2-64A (the paper default, 64-bit signatures) and
// MurmurHash3-x64-128 for the 128-bit alternative discussed in §IV-A3.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace rhik::hash {

/// MurmurHash2, 64-bit version for 64-bit platforms (MurmurHash64A).
[[nodiscard]] std::uint64_t murmur2_64(ByteSpan key, std::uint64_t seed = 0) noexcept;

/// 128-bit signature (MurmurHash3 x64 variant).
struct U128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const U128&, const U128&) = default;
};
[[nodiscard]] U128 murmur3_128(ByteSpan key, std::uint64_t seed = 0) noexcept;

/// Stateless 64->64 bit finalizer (splitmix-style). Used to derive the
/// record-layer bucket from a key signature: the directory layer consumes
/// the low D bits of the signature, so the intra-table hash must depend
/// on independent bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Width of the class tag packed into the top of a prefix signature. The
/// tag only gates which signatures a prefix scan *inspects* — every
/// candidate is verified against the stored key bytes — so tag collisions
/// cost a wasted read, never a wrong result. The suffix hash, by
/// contrast, is the index identity within a class: a suffix collision is
/// an uncorrectable collision abort. 16/48 keeps the birthday bound at
/// ~2^24 keys per class (a 32/32 split started aborting near 65k).
inline constexpr unsigned kClassTagBits = 16;
inline constexpr unsigned kClassTagShift = 64 - kClassTagBits;

/// The class-tag portion of a prefix signature.
[[nodiscard]] constexpr std::uint64_t class_tag(std::uint64_t sig) noexcept {
  return sig >> kClassTagShift;
}

/// Iterator-friendly signature (§VI): 16-bit prefix-class tag in the high
/// bits + 48-bit suffix hash, so keys sharing a prefix land in adjacent
/// signature ranges and prefix iteration can bound its scan.
[[nodiscard]] std::uint64_t prefix_signature(ByteSpan key, std::size_t prefix_len = 4) noexcept;

}  // namespace rhik::hash
