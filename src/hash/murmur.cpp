#include "hash/murmur.hpp"

#include <cstring>

namespace rhik::hash {
namespace {

std::uint64_t load64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only (asserted by CI targets)
}

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace

std::uint64_t murmur2_64(ByteSpan key, std::uint64_t seed) noexcept {
  constexpr std::uint64_t m = 0xc6a4a7935bd1e995ULL;
  constexpr int r = 47;

  std::uint64_t h = seed ^ (key.size() * m);

  const std::uint8_t* data = key.data();
  const std::size_t nblocks = key.size() / 8;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k = load64(data + i * 8);
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }

  const std::uint8_t* tail = data + nblocks * 8;
  switch (key.size() & 7u) {
    case 7: h ^= std::uint64_t{tail[6]} << 48; [[fallthrough]];
    case 6: h ^= std::uint64_t{tail[5]} << 40; [[fallthrough]];
    case 5: h ^= std::uint64_t{tail[4]} << 32; [[fallthrough]];
    case 4: h ^= std::uint64_t{tail[3]} << 24; [[fallthrough]];
    case 3: h ^= std::uint64_t{tail[2]} << 16; [[fallthrough]];
    case 2: h ^= std::uint64_t{tail[1]} << 8; [[fallthrough]];
    case 1: h ^= std::uint64_t{tail[0]}; h *= m;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

U128 murmur3_128(ByteSpan key, std::uint64_t seed) noexcept {
  const std::uint8_t* data = key.data();
  const std::size_t nblocks = key.size() / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;

  constexpr std::uint64_t c1 = 0x87c37b91114253d5ULL;
  constexpr std::uint64_t c2 = 0x4cf5ad432745937fULL;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load64(data + i * 16);
    std::uint64_t k2 = load64(data + i * 16 + 8);

    k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
    h1 = rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52dce729;

    k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
    h2 = rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495ab5;
  }

  const std::uint8_t* tail = data + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (key.size() & 15u) {
    case 15: k2 ^= std::uint64_t{tail[14]} << 48; [[fallthrough]];
    case 14: k2 ^= std::uint64_t{tail[13]} << 40; [[fallthrough]];
    case 13: k2 ^= std::uint64_t{tail[12]} << 32; [[fallthrough]];
    case 12: k2 ^= std::uint64_t{tail[11]} << 24; [[fallthrough]];
    case 11: k2 ^= std::uint64_t{tail[10]} << 16; [[fallthrough]];
    case 10: k2 ^= std::uint64_t{tail[9]} << 8; [[fallthrough]];
    case 9:
      k2 ^= std::uint64_t{tail[8]};
      k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= std::uint64_t{tail[7]} << 56; [[fallthrough]];
    case 7: k1 ^= std::uint64_t{tail[6]} << 48; [[fallthrough]];
    case 6: k1 ^= std::uint64_t{tail[5]} << 40; [[fallthrough]];
    case 5: k1 ^= std::uint64_t{tail[4]} << 32; [[fallthrough]];
    case 4: k1 ^= std::uint64_t{tail[3]} << 24; [[fallthrough]];
    case 3: k1 ^= std::uint64_t{tail[2]} << 16; [[fallthrough]];
    case 2: k1 ^= std::uint64_t{tail[1]} << 8; [[fallthrough]];
    case 1:
      k1 ^= std::uint64_t{tail[0]};
      k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
  }

  h1 ^= key.size();
  h2 ^= key.size();
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return {h1, h2};
}

std::uint64_t prefix_signature(ByteSpan key, std::size_t prefix_len) noexcept {
  const std::size_t plen = key.size() < prefix_len ? key.size() : prefix_len;
  const ByteSpan prefix = key.subspan(0, plen);
  const ByteSpan suffix = key.subspan(plen);
  const std::uint64_t hi = murmur2_64(prefix, 0x9d) >> kClassTagShift;
  const std::uint64_t lo =
      murmur2_64(suffix, 0x1b) & ((std::uint64_t{1} << kClassTagShift) - 1);
  return (hi << kClassTagShift) | lo;
}

}  // namespace rhik::hash
