// Fixed-capacity hopscotch hash table.
//
// This is the record-layer building block (§IV-A1): every record-layer
// page of RHIK is one independent, fixed-size hopscotch table with a
// per-bucket neighbourhood bitmap ("hopinfo", default H = 32). The table
// never grows — when a displacement chain cannot free a slot inside the
// neighbourhood, the insert fails with kCollisionAbort and the caller
// (the index) surfaces an uncorrectable-collision abort, exactly as the
// paper specifies. Global growth happens through the RHIK resize path,
// not inside a table.
//
// Storage is struct-of-arrays (DESIGN.md §10): signatures, ppas and
// word-packed occupancy bits live in separate contiguous arrays so the
// probe loop touches only the signature lane and, when the build enables
// it (RHIK_SIMD), compares several stored signatures per step with
// SSE2/AVX2. Because a set hopinfo bit always points at a live slot (the
// check_invariants contract), candidate lanes are masked by hopinfo
// alone — stale signatures left behind by erase are never consulted.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.hpp"

namespace rhik::hash {

/// One record: 64-bit key signature + physical page address.
/// On flash this occupies kh (8 B) + ppa (5 B) per Eq. 1; in DRAM the
/// fields live in separate SoA arrays and `Record` is the exchange type
/// used by for_each / slot / load_slot.
struct Record {
  std::uint64_t sig = 0;
  std::uint64_t ppa = 0;
};

class HopscotchTable {
 public:
  /// `capacity` = R, number of record slots (Eq. 1).
  /// `hop_range` = H, neighbourhood width in buckets (hopinfo bits).
  HopscotchTable(std::uint32_t capacity, std::uint32_t hop_range = 32);

  /// Inserts or updates the record for `sig`.
  /// Returns kCollisionAbort if the displacement search fails and
  /// kIndexFull if no empty slot exists at all.
  Status insert(std::uint64_t sig, std::uint64_t ppa);

  /// Looks up the ppa stored for `sig`. O(H) probes, all in this table.
  [[nodiscard]] std::optional<std::uint64_t> find(std::uint64_t sig) const;

  /// Removes the record for `sig`. Returns false if absent.
  bool erase(std::uint64_t sig);

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t hop_range() const noexcept { return hop_range_; }
  [[nodiscard]] double occupancy() const noexcept {
    return capacity_ == 0 ? 0.0 : static_cast<double>(size_) / static_cast<double>(capacity_);
  }

  /// Visits every live record (migration path re-uses stored
  /// signatures). Templated visitor: the serialization/migration loops
  /// inline the body instead of paying a per-record indirect call.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < used_words_.size(); ++w) {
      std::uint64_t bits = used_words_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const std::size_t i = (w << 6) + bit;
        fn(Record{sigs_[i], ppas_[i]});
      }
    }
  }

  /// Bulk-loads from a snapshot; caller guarantees records fit. Used when
  /// deserializing a record page read from flash.
  void clear();

  /// Per-bucket hopinfo bitmap, exposed for serialization and invariant
  /// checks in tests.
  [[nodiscard]] std::uint32_t hopinfo(std::uint32_t bucket) const {
    return hopinfo_[bucket];
  }

  /// Slot accessor for serialization. A slot is live iff its bit is set
  /// in some bucket's hopinfo; `slot_used` tracks it directly.
  [[nodiscard]] Record slot(std::uint32_t i) const {
    return {sigs_[i], ppas_[i]};
  }
  [[nodiscard]] bool slot_used(std::uint32_t i) const {
    return (used_words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Raw slot writer for deserialization; does not run displacement
  /// logic. `bucket` is the home bucket whose hopinfo bit must cover `i`.
  /// Inline: the page decoder calls this once per stored record.
  void load_slot(std::uint32_t i, const Record& rec, std::uint32_t bucket) {
    assert(i < capacity_ && !slot_used(i));
    assert(dist(bucket, i) < hop_range_);
    sigs_[i] = rec.sig;
    ppas_[i] = rec.ppa;
    set_used(i);
    hopinfo_[bucket] |= (1u << dist(bucket, i));
    ++size_;
  }

  /// Deserialization fast path: resets occupancy and size, then adopts
  /// `info` (capacity() little-endian u32 bitmaps, any alignment) as the
  /// hopinfo array wholesale instead of zeroing it and re-OR-ing bit by
  /// bit. The caller walks the adopted bitmaps and re-populates the
  /// slots via load_slot, validating each bit as it goes.
  void reset_with_hopinfo(const std::uint8_t* info);

  /// Raw SoA views for the serialization fast path: word-packed
  /// occupancy bits (bit i of word i/64 = slot i live) and the
  /// per-bucket hopinfo array. Read-only; layouts match the DRAM
  /// representation, not the on-flash encoding.
  [[nodiscard]] const std::vector<std::uint64_t>& used_words() const noexcept {
    return used_words_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& hopinfo_words() const noexcept {
    return hopinfo_;
  }

  /// Home bucket for a signature (fixed intra-table hash, §IV-A:
  /// independent of the directory bits which consume the low bits).
  [[nodiscard]] std::uint32_t home_bucket(std::uint64_t sig) const noexcept;

  /// Validates hopinfo/slot consistency; used by property tests.
  [[nodiscard]] bool check_invariants() const;

  /// Number of candidate slots a find(`sig`) examines (the full
  /// neighbourhood population on a miss). Bench introspection only; the
  /// hot probe keeps no counters.
  [[nodiscard]] std::uint32_t probe_length(std::uint64_t sig) const;

  // -- SIMD dispatch ----------------------------------------------------------
  /// Compile-time backend selected by the RHIK_SIMD CMake option:
  /// "scalar", "sse2" or "avx2".
  [[nodiscard]] static const char* simd_backend() noexcept;
  /// Runtime kill-switch (process-wide). Defaults to enabled unless the
  /// RHIK_NO_SIMD environment variable is set; tests flip it to run the
  /// vectorised and scalar probes inside one binary.
  static void set_simd_enabled(bool on) noexcept;
  [[nodiscard]] static bool simd_enabled() noexcept;

 private:
  static constexpr std::uint32_t kNpos = UINT32_MAX;

  [[nodiscard]] std::uint32_t wrap(std::uint64_t i) const noexcept {
    return static_cast<std::uint32_t>(i % capacity_);
  }
  /// Distance from bucket `from` to slot index `to` going forward.
  [[nodiscard]] std::uint32_t dist(std::uint32_t from, std::uint32_t to) const noexcept {
    return to >= from ? to - from : to + capacity_ - from;
  }

  void set_used(std::uint32_t i) noexcept {
    used_words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void clear_used(std::uint32_t i) noexcept {
    used_words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Index of the live slot holding `sig` inside `home`'s neighbourhood
  /// (`info` = hopinfo_[home]), or kNpos. Dispatches to the vectorised
  /// compare when compiled in, enabled, and the neighbourhood does not
  /// wrap past the table tail (the wrap window falls back to scalar).
  [[nodiscard]] std::uint32_t probe(std::uint64_t sig, std::uint32_t home,
                                    std::uint32_t info) const;
  [[nodiscard]] std::uint32_t probe_scalar(std::uint64_t sig, std::uint32_t home,
                                           std::uint32_t info) const;

  /// Nearest free slot at or after `home` in circular order, or kNpos.
  [[nodiscard]] std::uint32_t find_free_from(std::uint32_t home) const noexcept;

  std::vector<std::uint64_t> sigs_;        ///< SoA: stored signatures
  std::vector<std::uint64_t> ppas_;        ///< SoA: parallel ppa lane
  std::vector<std::uint64_t> used_words_;  ///< word-packed occupancy bits
  std::vector<std::uint32_t> hopinfo_;
  std::uint32_t capacity_;
  std::uint32_t hop_range_;
  std::uint32_t size_ = 0;
};

}  // namespace rhik::hash
