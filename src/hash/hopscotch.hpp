// Fixed-capacity hopscotch hash table.
//
// This is the record-layer building block (§IV-A1): every record-layer
// page of RHIK is one independent, fixed-size hopscotch table with a
// per-bucket neighbourhood bitmap ("hopinfo", default H = 32). The table
// never grows — when a displacement chain cannot free a slot inside the
// neighbourhood, the insert fails with kCollisionAbort and the caller
// (the index) surfaces an uncorrectable-collision abort, exactly as the
// paper specifies. Global growth happens through the RHIK resize path,
// not inside a table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.hpp"

namespace rhik::hash {

/// One record slot: 64-bit key signature + physical page address.
/// On flash this occupies kh (8 B) + ppa (5 B) per Eq. 1; in DRAM we keep
/// the ppa in a full word for convenience.
struct Record {
  std::uint64_t sig = 0;
  std::uint64_t ppa = 0;
};

class HopscotchTable {
 public:
  /// `capacity` = R, number of record slots (Eq. 1).
  /// `hop_range` = H, neighbourhood width in buckets (hopinfo bits).
  HopscotchTable(std::uint32_t capacity, std::uint32_t hop_range = 32);

  /// Inserts or updates the record for `sig`.
  /// Returns kCollisionAbort if the displacement search fails and
  /// kIndexFull if no empty slot exists at all.
  Status insert(std::uint64_t sig, std::uint64_t ppa);

  /// Looks up the ppa stored for `sig`. O(H) probes, all in this table.
  [[nodiscard]] std::optional<std::uint64_t> find(std::uint64_t sig) const;

  /// Removes the record for `sig`. Returns false if absent.
  bool erase(std::uint64_t sig);

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] std::uint32_t hop_range() const noexcept { return hop_range_; }
  [[nodiscard]] double occupancy() const noexcept {
    return slots_.empty() ? 0.0 : static_cast<double>(size_) / static_cast<double>(slots_.size());
  }

  /// Visits every live record (migration path re-uses stored signatures).
  void for_each(const std::function<void(const Record&)>& fn) const;

  /// Bulk-loads from a snapshot; caller guarantees records fit. Used when
  /// deserializing a record page read from flash.
  void clear();

  /// Per-bucket hopinfo bitmap, exposed for serialization and invariant
  /// checks in tests.
  [[nodiscard]] std::uint32_t hopinfo(std::uint32_t bucket) const {
    return hopinfo_[bucket];
  }

  /// Slot accessor for serialization. A slot is live iff its bit is set
  /// in some bucket's hopinfo; `slot_used` tracks it directly.
  [[nodiscard]] const Record& slot(std::uint32_t i) const { return slots_[i]; }
  [[nodiscard]] bool slot_used(std::uint32_t i) const { return used_[i]; }

  /// Raw slot writer for deserialization; does not run displacement
  /// logic. `bucket` is the home bucket whose hopinfo bit must cover `i`.
  void load_slot(std::uint32_t i, const Record& rec, std::uint32_t bucket);

  /// Home bucket for a signature (fixed intra-table hash, §IV-A:
  /// independent of the directory bits which consume the low bits).
  [[nodiscard]] std::uint32_t home_bucket(std::uint64_t sig) const noexcept;

  /// Validates hopinfo/slot consistency; used by property tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  [[nodiscard]] std::uint32_t wrap(std::uint64_t i) const noexcept {
    return static_cast<std::uint32_t>(i % slots_.size());
  }
  /// Distance from bucket `from` to slot index `to` going forward.
  [[nodiscard]] std::uint32_t dist(std::uint32_t from, std::uint32_t to) const noexcept {
    const auto n = static_cast<std::uint32_t>(slots_.size());
    return to >= from ? to - from : to + n - from;
  }

  std::vector<Record> slots_;
  std::vector<bool> used_;
  std::vector<std::uint32_t> hopinfo_;
  std::uint32_t hop_range_;
  std::uint32_t size_ = 0;
};

}  // namespace rhik::hash
