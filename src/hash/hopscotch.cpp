#include "hash/hopscotch.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "hash/murmur.hpp"

#if defined(RHIK_SIMD_AVX2)
#include <immintrin.h>
#elif defined(RHIK_SIMD_SSE2)
#include <emmintrin.h>
#endif

namespace rhik::hash {

namespace {

/// Process-wide runtime kill-switch: RHIK_NO_SIMD in the environment
/// starts the process on the scalar probe; tests flip it per-case to
/// compare both paths in one binary.
std::atomic<bool> g_simd_enabled{std::getenv("RHIK_NO_SIMD") == nullptr};

#if defined(RHIK_SIMD_AVX2)

constexpr std::uint32_t kSimdLanes = 4;

/// Non-wrapping neighbourhood probe: compare 4 stored signatures per
/// step, mask equal lanes by the hopinfo window, first hit wins. Lanes
/// past hop_range read slots inside the table (the caller guarantees
/// home + rounded-window <= capacity) and are masked off by `info`.
std::uint32_t probe_simd(const std::uint64_t* sigs, std::uint64_t sig,
                         std::uint32_t home, std::uint32_t info,
                         std::uint32_t width) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(sig));
  for (std::uint32_t j = 0; j < width; j += 4) {
    const std::uint32_t grp = (info >> j) & 0xFu;
    if (grp == 0) continue;
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sigs + home + j));
    const auto eq = static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, needle))));
    const std::uint32_t hit = eq & grp;
    if (hit != 0) return home + j + static_cast<std::uint32_t>(__builtin_ctz(hit));
  }
  return UINT32_MAX;
}

#elif defined(RHIK_SIMD_SSE2)

constexpr std::uint32_t kSimdLanes = 2;

/// SSE2 has no 64-bit compare; compare 32-bit halves and AND each lane
/// with its swapped half so a lane is all-ones iff both halves matched.
std::uint32_t probe_simd(const std::uint64_t* sigs, std::uint64_t sig,
                         std::uint32_t home, std::uint32_t info,
                         std::uint32_t width) {
  const __m128i needle = _mm_set1_epi64x(static_cast<long long>(sig));
  for (std::uint32_t j = 0; j < width; j += 2) {
    const std::uint32_t grp = (info >> j) & 0x3u;
    if (grp == 0) continue;
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(sigs + home + j));
    const __m128i cmp32 = _mm_cmpeq_epi32(v, needle);
    const __m128i pair =
        _mm_and_si128(cmp32, _mm_shuffle_epi32(cmp32, _MM_SHUFFLE(2, 3, 0, 1)));
    const auto eq = static_cast<std::uint32_t>(
        _mm_movemask_pd(_mm_castsi128_pd(pair)));
    const std::uint32_t hit = eq & grp;
    if (hit != 0) return home + j + static_cast<std::uint32_t>(__builtin_ctz(hit));
  }
  return UINT32_MAX;
}

#endif

}  // namespace

const char* HopscotchTable::simd_backend() noexcept {
#if defined(RHIK_SIMD_AVX2)
  return "avx2";
#elif defined(RHIK_SIMD_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

void HopscotchTable::set_simd_enabled(bool on) noexcept {
  g_simd_enabled.store(on, std::memory_order_relaxed);
}

bool HopscotchTable::simd_enabled() noexcept {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

HopscotchTable::HopscotchTable(std::uint32_t capacity, std::uint32_t hop_range)
    : sigs_(capacity),
      ppas_(capacity),
      used_words_((capacity + 63) / 64, 0),
      hopinfo_(capacity, 0),
      capacity_(capacity),
      hop_range_(hop_range) {
  assert(capacity > 0);
  assert(hop_range >= 1 && hop_range <= 32);
  assert(hop_range <= capacity);
}

std::uint32_t HopscotchTable::home_bucket(std::uint64_t sig) const noexcept {
  // The directory layer consumes the low D bits of the signature, so the
  // intra-table hash must draw on independent bits: remix, then map onto
  // [0, capacity) with a multiply-shift (Lemire fastrange) — same
  // distribution as `% capacity_` but two multiplies instead of a
  // 64-bit divide, and it runs once per find/insert/decoded record.
  return static_cast<std::uint32_t>(
      (static_cast<unsigned __int128>(mix64(sig)) * capacity_) >> 64);
}

std::uint32_t HopscotchTable::probe_scalar(std::uint64_t sig, std::uint32_t home,
                                           std::uint32_t info) const {
  // A set hopinfo bit always covers a live slot (check_invariants), so
  // the signature compare alone decides — exactly like the SIMD lanes.
  while (info != 0) {
    const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
    info &= info - 1;
    const std::uint32_t idx = wrap(std::uint64_t{home} + bit);
    if (sigs_[idx] == sig) return idx;
  }
  return kNpos;
}

std::uint32_t HopscotchTable::probe(std::uint64_t sig, std::uint32_t home,
                                    std::uint32_t info) const {
#if defined(RHIK_SIMD_AVX2) || defined(RHIK_SIMD_SSE2)
  // Round the window up to whole vectors; the overshoot lanes are masked
  // by `info` but must still land inside the array. Neighbourhoods that
  // wrap past the tail (rare: the last H buckets) stay scalar.
  const std::uint32_t window = (hop_range_ + kSimdLanes - 1) & ~(kSimdLanes - 1);
  if (simd_enabled() && std::uint64_t{home} + window <= capacity_) {
    return probe_simd(sigs_.data(), sig, home, info, window);
  }
#endif
  return probe_scalar(sig, home, info);
}

std::uint32_t HopscotchTable::find_free_from(std::uint32_t home) const noexcept {
  // Word-wise circular scan for the nearest empty slot at/after `home`:
  // same slot the old per-bit linear probe chose, ~64 slots per step.
  const auto nwords = static_cast<std::uint32_t>(used_words_.size());
  const std::uint32_t tail_bits = capacity_ & 63;  // valid bits in last word
  std::uint32_t w = home >> 6;
  std::uint64_t free_bits = ~used_words_[w] & (~std::uint64_t{0} << (home & 63));
  for (std::uint32_t visit = 0; visit <= nwords; ++visit) {
    std::uint64_t bits = free_bits;
    if (tail_bits != 0 && w == nwords - 1) {
      bits &= (std::uint64_t{1} << tail_bits) - 1;  // past-capacity bits aren't slots
    }
    if (bits != 0) {
      return (w << 6) + static_cast<std::uint32_t>(__builtin_ctzll(bits));
    }
    w = (w + 1 == nwords) ? 0 : w + 1;
    free_bits = ~used_words_[w];
  }
  return kNpos;
}

Status HopscotchTable::insert(std::uint64_t sig, std::uint64_t ppa) {
  const std::uint32_t home = home_bucket(sig);

  // Update in place if the signature is already present.
  const std::uint32_t present = probe(sig, home, hopinfo_[home]);
  if (present != kNpos) {
    ppas_[present] = ppa;
    return Status::kOk;
  }

  if (size_ == capacity_) return Status::kIndexFull;

  std::uint32_t free_idx = find_free_from(home);
  if (free_idx == kNpos) return Status::kIndexFull;
  std::uint32_t free_dist = dist(home, free_idx);

  // Hopscotch displacement: move the empty slot backwards until it lies
  // inside the home neighbourhood.
  while (free_dist >= hop_range_) {
    bool moved = false;
    // Consider buckets starting hop_range_-1 before the free slot.
    for (std::uint32_t back = hop_range_ - 1; back >= 1; --back) {
      const std::uint32_t cand_bucket = wrap(std::uint64_t{free_idx} + capacity_ - back);
      std::uint32_t cinfo = hopinfo_[cand_bucket];
      // Find the earliest occupied slot of cand_bucket closer than back.
      while (cinfo != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctz(cinfo));
        cinfo &= cinfo - 1;
        if (bit >= back) break;  // bits ascend; nothing closer remains
        const std::uint32_t victim = wrap(std::uint64_t{cand_bucket} + bit);
        if (!slot_used(victim)) continue;
        // Move victim into the free slot.
        sigs_[free_idx] = sigs_[victim];
        ppas_[free_idx] = ppas_[victim];
        set_used(free_idx);
        clear_used(victim);
        hopinfo_[cand_bucket] &= ~(1u << bit);
        hopinfo_[cand_bucket] |= (1u << back);
        free_idx = victim;
        free_dist = dist(home, free_idx);
        moved = true;
        break;
      }
      if (moved) break;
    }
    if (!moved) {
      // Displacement failed: uncorrectable collision, operation aborted
      // (paper §IV-A1). The caller counts these; Fig. 8 reports the rate.
      return Status::kCollisionAbort;
    }
  }

  sigs_[free_idx] = sig;
  ppas_[free_idx] = ppa;
  set_used(free_idx);
  hopinfo_[home] |= (1u << free_dist);
  ++size_;
  return Status::kOk;
}

std::optional<std::uint64_t> HopscotchTable::find(std::uint64_t sig) const {
  const std::uint32_t home = home_bucket(sig);
#if defined(__GNUC__) || defined(__clang__)
  // SoA splits sig and ppa onto different cache lines; start the ppa
  // line towards L1 while the signature compare runs (hits cluster at
  // the front of the neighbourhood).
  __builtin_prefetch(ppas_.data() + home);
#endif
  const std::uint32_t idx = probe(sig, home, hopinfo_[home]);
  if (idx == kNpos) return std::nullopt;
  return ppas_[idx];
}

bool HopscotchTable::erase(std::uint64_t sig) {
  const std::uint32_t home = home_bucket(sig);
  const std::uint32_t idx = probe(sig, home, hopinfo_[home]);
  if (idx == kNpos) return false;
  clear_used(idx);
  hopinfo_[home] &= ~(1u << dist(home, idx));
  --size_;
  return true;
}

void HopscotchTable::clear() {
  std::fill(used_words_.begin(), used_words_.end(), 0u);
  std::fill(hopinfo_.begin(), hopinfo_.end(), 0u);
  size_ = 0;
}

void HopscotchTable::reset_with_hopinfo(const std::uint8_t* info) {
  std::memcpy(hopinfo_.data(), info, hopinfo_.size() * sizeof(std::uint32_t));
  std::fill(used_words_.begin(), used_words_.end(), 0u);
  size_ = 0;
}

std::uint32_t HopscotchTable::probe_length(std::uint64_t sig) const {
  const std::uint32_t home = home_bucket(sig);
  std::uint32_t info = hopinfo_[home];
  std::uint32_t probes = 0;
  while (info != 0) {
    const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
    info &= info - 1;
    ++probes;
    if (sigs_[wrap(std::uint64_t{home} + bit)] == sig) break;
  }
  return probes;
}

bool HopscotchTable::check_invariants() const {
  std::uint32_t live = 0;
  std::vector<bool> covered(capacity_, false);
  for (std::uint32_t b = 0; b < capacity_; ++b) {
    std::uint32_t info = hopinfo_[b];
    while (info != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
      info &= info - 1;
      if (bit >= hop_range_) return false;
      const std::uint32_t idx = wrap(std::uint64_t{b} + bit);
      if (!slot_used(idx)) return false;      // bitmap points at a dead slot
      if (covered[idx]) return false;         // slot owned by two buckets
      covered[idx] = true;
      if (home_bucket(sigs_[idx]) != b) return false;  // wrong home
      ++live;
    }
  }
  if (live != size_) return false;
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    if (slot_used(i) != covered[i]) return false;  // orphan slot
  }
  // Past-capacity bits in the last occupancy word must stay clear (the
  // free-slot word scan and for_each rely on it).
  if ((capacity_ & 63) != 0) {
    const std::uint64_t tail_mask = ~((std::uint64_t{1} << (capacity_ & 63)) - 1);
    if ((used_words_.back() & tail_mask) != 0) return false;
  }
  return true;
}

}  // namespace rhik::hash
