#include "hash/hopscotch.hpp"

#include <cassert>

#include "hash/murmur.hpp"

namespace rhik::hash {

HopscotchTable::HopscotchTable(std::uint32_t capacity, std::uint32_t hop_range)
    : slots_(capacity),
      used_(capacity, false),
      hopinfo_(capacity, 0),
      hop_range_(hop_range) {
  assert(capacity > 0);
  assert(hop_range >= 1 && hop_range <= 32);
  assert(hop_range <= capacity);
}

std::uint32_t HopscotchTable::home_bucket(std::uint64_t sig) const noexcept {
  // The directory layer consumes the low D bits of the signature, so the
  // intra-table hash must draw on independent bits: remix and fold.
  return static_cast<std::uint32_t>(mix64(sig) % slots_.size());
}

Status HopscotchTable::insert(std::uint64_t sig, std::uint64_t ppa) {
  const std::uint32_t home = home_bucket(sig);

  // Update in place if the signature is already present.
  std::uint32_t info = hopinfo_[home];
  while (info != 0) {
    const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
    info &= info - 1;
    const std::uint32_t idx = wrap(std::uint64_t{home} + bit);
    if (used_[idx] && slots_[idx].sig == sig) {
      slots_[idx].ppa = ppa;
      return Status::kOk;
    }
  }

  if (size_ == slots_.size()) return Status::kIndexFull;

  // Linear probe for the nearest empty slot.
  std::uint32_t free_dist = 0;
  std::uint32_t free_idx = home;
  while (free_dist < slots_.size() && used_[free_idx]) {
    ++free_dist;
    free_idx = wrap(std::uint64_t{home} + free_dist);
  }
  if (free_dist >= slots_.size()) return Status::kIndexFull;

  // Hopscotch displacement: move the empty slot backwards until it lies
  // inside the home neighbourhood.
  while (free_dist >= hop_range_) {
    bool moved = false;
    // Consider buckets starting hop_range_-1 before the free slot.
    for (std::uint32_t back = hop_range_ - 1; back >= 1; --back) {
      const std::uint32_t cand_bucket = wrap(std::uint64_t{free_idx} + slots_.size() - back);
      std::uint32_t cinfo = hopinfo_[cand_bucket];
      // Find the earliest occupied slot of cand_bucket closer than back.
      while (cinfo != 0) {
        const auto bit = static_cast<std::uint32_t>(__builtin_ctz(cinfo));
        cinfo &= cinfo - 1;
        if (bit >= back) break;  // bits ascend; nothing closer remains
        const std::uint32_t victim = wrap(std::uint64_t{cand_bucket} + bit);
        if (!used_[victim]) continue;
        // Move victim into the free slot.
        slots_[free_idx] = slots_[victim];
        used_[free_idx] = true;
        used_[victim] = false;
        hopinfo_[cand_bucket] &= ~(1u << bit);
        hopinfo_[cand_bucket] |= (1u << back);
        free_idx = victim;
        free_dist = dist(home, free_idx);
        moved = true;
        break;
      }
      if (moved) break;
    }
    if (!moved) {
      // Displacement failed: uncorrectable collision, operation aborted
      // (paper §IV-A1). The caller counts these; Fig. 8 reports the rate.
      return Status::kCollisionAbort;
    }
  }

  slots_[free_idx] = {sig, ppa};
  used_[free_idx] = true;
  hopinfo_[home] |= (1u << free_dist);
  ++size_;
  return Status::kOk;
}

std::optional<std::uint64_t> HopscotchTable::find(std::uint64_t sig) const {
  const std::uint32_t home = home_bucket(sig);
  std::uint32_t info = hopinfo_[home];
  while (info != 0) {
    const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
    info &= info - 1;
    const std::uint32_t idx = wrap(std::uint64_t{home} + bit);
    if (used_[idx] && slots_[idx].sig == sig) return slots_[idx].ppa;
  }
  return std::nullopt;
}

bool HopscotchTable::erase(std::uint64_t sig) {
  const std::uint32_t home = home_bucket(sig);
  std::uint32_t info = hopinfo_[home];
  while (info != 0) {
    const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
    info &= info - 1;
    const std::uint32_t idx = wrap(std::uint64_t{home} + bit);
    if (used_[idx] && slots_[idx].sig == sig) {
      used_[idx] = false;
      hopinfo_[home] &= ~(1u << bit);
      --size_;
      return true;
    }
  }
  return false;
}

void HopscotchTable::for_each(const std::function<void(const Record&)>& fn) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (used_[i]) fn(slots_[i]);
  }
}

void HopscotchTable::clear() {
  std::fill(used_.begin(), used_.end(), false);
  std::fill(hopinfo_.begin(), hopinfo_.end(), 0u);
  size_ = 0;
}

void HopscotchTable::load_slot(std::uint32_t i, const Record& rec, std::uint32_t bucket) {
  assert(i < slots_.size());
  assert(!used_[i]);
  const std::uint32_t d = dist(bucket, i);
  assert(d < hop_range_);
  slots_[i] = rec;
  used_[i] = true;
  hopinfo_[bucket] |= (1u << d);
  ++size_;
}

bool HopscotchTable::check_invariants() const {
  std::uint32_t live = 0;
  std::vector<bool> covered(slots_.size(), false);
  for (std::uint32_t b = 0; b < slots_.size(); ++b) {
    std::uint32_t info = hopinfo_[b];
    while (info != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
      info &= info - 1;
      if (bit >= hop_range_) return false;
      const std::uint32_t idx = wrap(std::uint64_t{b} + bit);
      if (!used_[idx]) return false;          // bitmap points at a dead slot
      if (covered[idx]) return false;         // slot owned by two buckets
      covered[idx] = true;
      if (home_bucket(slots_[idx].sig) != b) return false;  // wrong home
      ++live;
    }
  }
  if (live != size_) return false;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (used_[i] != covered[i]) return false;  // orphan slot
  }
  return true;
}

}  // namespace rhik::hash
