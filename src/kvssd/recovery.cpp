#include "kvssd/recovery.hpp"

#include <algorithm>
#include <unordered_map>

#include "ftl/layout.hpp"

namespace rhik::kvssd {

using flash::Ppa;

namespace {

/// A torn page can hold arbitrary spare bytes; only these tag values can
/// have been written by the store or the index layer.
bool tag_sane(const ftl::SpareTag& tag) noexcept {
  const bool kind_ok = tag.kind == ftl::PageKind::kDataHead ||
                       tag.kind == ftl::PageKind::kDataCont ||
                       tag.kind == ftl::PageKind::kIndexRecord ||
                       tag.kind == ftl::PageKind::kIndexDir;
  const bool stream_ok = tag.stream == ftl::Stream::kData ||
                         tag.stream == ftl::Stream::kIndex ||
                         tag.stream == ftl::Stream::kCold;
  return kind_ok && stream_ok;
}

}  // namespace

void RecoveryStats::merge_from(const RecoveryStats& other) noexcept {
  blocks_adopted += other.blocks_adopted;
  data_pages_scanned += other.data_pages_scanned;
  pairs_seen += other.pairs_seen;
  tombstones_seen += other.tombstones_seen;
  keys_recovered += other.keys_recovered;
  live_bytes += other.live_bytes;
  max_seq = std::max(max_seq, other.max_seq);
  max_epoch = std::max(max_epoch, other.max_epoch);
  torn_pages_dropped += other.torn_pages_dropped;
  incomplete_extents_dropped += other.incomplete_extents_dropped;
  wear_blocks_restored += other.wear_blocks_restored;
  dead_blocks_reclaimed += other.dead_blocks_reclaimed;
  pages_read += other.pages_read;
  checkpoint_restored += other.checkpoint_restored;
  full_scan_fallback += other.full_scan_fallback;
  journal_pages_replayed += other.journal_pages_replayed;
  journal_records_replayed += other.journal_records_replayed;
  checkpoint_version = std::max(checkpoint_version, other.checkpoint_version);
}

Result<RecoveryStats> recover_from_flash(flash::NandDevice& nand,
                                         ftl::PageAllocator& alloc,
                                         ftl::FlashKvStore& store,
                                         index::IIndex& index) {
  const auto& g = nand.geometry();
  RecoveryStats stats;

  // Newest version of each signature seen so far in the log. Ordering is
  // epoch-major, (seq, offset)-minor: GC relocates snapshot-retained OLD
  // versions into fresh pages (preserving their original epoch stamps),
  // so a higher page seq alone no longer implies a newer version. Epochs
  // strictly increase across a key's mutations; ops of one batch share a
  // stamp and are ordered by (seq, offset) as before (pre-MVCC pages all
  // decode epoch 0 and keep the legacy pure-seq behavior).
  struct Winner {
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    std::size_t offset = 0;
    Ppa ppa = flash::kInvalidPpa;
    std::uint64_t pair_bytes = 0;
    std::uint64_t head_bytes = 0;  ///< portion resident in the head page
    bool tombstone = false;
  };
  std::unordered_map<std::uint64_t, Winner> winners;

  Bytes page(g.page_size);
  Bytes spare(g.spare_size());
  std::vector<std::uint32_t> adopted;

  // The controller-reserved checkpoint tail is not part of the log; its
  // pages carry their own formats and are scanned by the checkpoint
  // manager, never adopted here.
  const std::uint32_t scan_end = alloc.first_reserved_block();
  for (std::uint32_t block = 0; block < scan_end; ++block) {
    const std::uint32_t programmed = nand.pages_programmed(block);
    if (programmed == 0) continue;
    stats.blocks_adopted++;
    adopted.push_back(block);

    // The first page names the block's stream and carries the wear
    // stamp. If it is torn, the power cut hit the block's very first
    // program: nothing in the block was ever acknowledged, and it is
    // adopted with zero valid pages (pure GC fodder — it cannot rejoin
    // the free list with a non-zero write point).
    if (Status s = nand.read_page(flash::make_ppa(g, block, 0), page, spare); !ok(s)) {
      return s;
    }
    if (!flash::page_crc_ok(g, page, spare) || !tag_sane(ftl::SpareTag::decode(spare))) {
      stats.torn_pages_dropped += programmed;
      if (Status s = alloc.adopt_block(block, ftl::Stream::kData, 0); !ok(s)) return s;
      continue;
    }
    const ftl::SpareTag first = ftl::SpareTag::decode(spare);
    nand.restore_erase_count(block, flash::spare_wear_stamp(g, spare));
    stats.wear_blocks_restored++;

    if (!ftl::is_data_stream(first.stream)) {
      // Index zone: contents are all stale (the index is rebuilt), but
      // only the leading run of intact pages is adopted so GC never
      // tries to decode a torn tail.
      std::uint32_t valid = 1;
      while (valid < programmed) {
        if (Status s = nand.read_page(flash::make_ppa(g, block, valid), page, spare);
            !ok(s)) {
          return s;
        }
        if (!flash::page_crc_ok(g, page, spare)) break;
        ++valid;
      }
      stats.torn_pages_dropped += programmed - valid;
      if (Status s = alloc.adopt_block(block, first.stream, valid); !ok(s)) return s;
      continue;
    }

    // Data block (hot or cold stream — identical layout): walk pages in
    // programming order and truncate the
    // block's log at the first page that is torn (CRC), mis-tagged
    // (orphan continuation, foreign kind) or structurally inconsistent.
    // Everything after such a page postdates the power cut's victim and
    // was never acknowledged.
    std::uint32_t valid = 0;
    std::uint32_t pg = 0;
    while (pg < programmed) {
      const Ppa ppa = flash::make_ppa(g, block, pg);
      if (Status s = nand.read_page(ppa, page, spare); !ok(s)) return s;
      if (!flash::page_crc_ok(g, page, spare)) break;
      const ftl::SpareTag tag = ftl::SpareTag::decode(spare);
      if (tag.kind != ftl::PageKind::kDataHead) break;
      const auto pairs = ftl::parse_head_page(page, g.page_size);
      if (!pairs) break;
      const std::uint64_t seq = ftl::DataPageSpare::decode(spare).seq;

      // A spilling pair is durable only if its whole continuation chain
      // was programmed intact. A crash mid-extent leaves a perfectly
      // valid head whose winner would shadow an older, complete version
      // of the same key — so an incomplete extent drops the head too.
      std::uint32_t span = 1;
      if (!pairs->empty() && pairs->back().spills) {
        const std::uint32_t need =
            ftl::continuation_pages(g, pairs->back().header.pair_bytes());
        bool complete = pg + 1 + need <= programmed;
        for (std::uint32_t c = 1; complete && c <= need; ++c) {
          if (Status s = nand.read_page(ppa + c, page, spare); !ok(s)) return s;
          complete = flash::page_crc_ok(g, page, spare) &&
                     ftl::SpareTag::decode(spare).kind == ftl::PageKind::kDataCont;
        }
        if (!complete) {
          stats.incomplete_extents_dropped++;
          break;
        }
        span = 1 + need;
      }

      stats.data_pages_scanned++;
      if (seq > stats.max_seq) stats.max_seq = seq;
      for (const auto& p : *pairs) {
        stats.pairs_seen++;
        if (p.header.tombstone) stats.tombstones_seen++;
        const std::uint64_t e = p.header.epoch;
        if (e > stats.max_epoch) stats.max_epoch = e;
        Winner& w = winners[p.header.sig];
        if (w.ppa == flash::kInvalidPpa || e > w.epoch ||
            (e == w.epoch &&
             (seq > w.seq || (seq == w.seq && p.offset > w.offset)))) {
          w = Winner{e,
                     seq,
                     p.offset,
                     ppa,
                     p.header.pair_bytes(),
                     p.in_page_bytes,
                     p.header.tombstone};
        }
      }
      pg += span;
      valid = pg;
    }
    stats.torn_pages_dropped += programmed - valid;
    if (Status s = alloc.adopt_block(block, first.stream, valid); !ok(s)) return s;
  }

  // Credit liveness first: live pairs and tombstones pin their pages so
  // GC preserves them. Liveness is credited page by page along the
  // extent, so a block holding only continuation pages of a live value
  // is never left at zero live bytes (which would make pick_victim erase
  // it out from under the extent).
  for (const auto& [sig, w] : winners) {
    std::uint64_t remaining = w.pair_bytes;
    std::uint64_t chunk = std::min<std::uint64_t>(w.head_bytes, remaining);
    Ppa p = w.ppa;
    while (remaining > 0) {
      alloc.add_live(p, chunk);
      remaining -= chunk;
      ++p;
      chunk = std::min<std::uint64_t>(g.page_size, remaining);
    }
  }

  // Sweep dead weight BEFORE rebuilding the index. Every old index-zone
  // block is stale by construction (the index is rebuilt from the data
  // log below), and repeated crash cycles also accumulate sealed data
  // blocks whose every pair lost — torn tails, superseded versions. A
  // device that crashed often enough would otherwise run out of free
  // blocks for the rebuilt index's own record pages, and the index would
  // silently shed entries on failed write-backs. Erasing here is
  // idempotent across a crash-during-recovery: the data log is untouched
  // and wear counts were already restored above.
  for (const std::uint32_t block : adopted) {
    if (alloc.block_live_bytes(block) != 0) continue;
    if (Status s = alloc.reclaim_block(block); !ok(s)) return s;
    stats.dead_blocks_reclaimed++;
  }

  // Install the winners: live pairs enter the index (tombstones stay
  // out — their pinned deletion record on flash is their only trace).
  for (const auto& [sig, w] : winners) {
    if (w.tombstone) continue;
    if (Status s = index.put(sig, w.ppa); !ok(s)) return s;
    stats.keys_recovered++;
    stats.live_bytes += w.pair_bytes;
  }

  store.set_next_seq(stats.max_seq + 1);
  return stats;
}

}  // namespace rhik::kvssd
