#include "kvssd/recovery.hpp"

#include <unordered_map>

#include "ftl/layout.hpp"

namespace rhik::kvssd {

using flash::Ppa;

Result<RecoveryStats> recover_from_flash(flash::NandDevice& nand,
                                         ftl::PageAllocator& alloc,
                                         ftl::FlashKvStore& store,
                                         index::IIndex& index) {
  const auto& g = nand.geometry();
  RecoveryStats stats;

  // Newest version of each signature seen so far in the log.
  struct Winner {
    std::uint64_t seq = 0;
    std::size_t offset = 0;
    Ppa ppa = flash::kInvalidPpa;
    std::uint64_t pair_bytes = 0;
    bool tombstone = false;
  };
  std::unordered_map<std::uint64_t, Winner> winners;

  Bytes page(g.page_size);
  Bytes spare(g.spare_size());

  for (std::uint32_t block = 0; block < g.num_blocks; ++block) {
    const std::uint32_t used = nand.pages_programmed(block);
    if (used == 0) continue;

    // The block's stream comes from its first page's tag.
    if (Status s = nand.read_page(flash::make_ppa(g, block, 0), {}, spare); !ok(s)) {
      return s;
    }
    const ftl::SpareTag first = ftl::SpareTag::decode(spare);
    if (Status s = alloc.adopt_block(block, first.stream, used); !ok(s)) return s;
    stats.blocks_adopted++;

    if (first.stream != ftl::Stream::kData) continue;  // index zone: all stale

    for (std::uint32_t pg = 0; pg < used; ++pg) {
      const Ppa ppa = flash::make_ppa(g, block, pg);
      if (Status s = nand.read_page(ppa, page, spare); !ok(s)) return s;
      const ftl::SpareTag tag = ftl::SpareTag::decode(spare);
      if (tag.kind != ftl::PageKind::kDataHead) continue;  // continuation
      stats.data_pages_scanned++;

      const std::uint64_t seq = ftl::DataPageSpare::decode(spare).seq;
      if (seq > stats.max_seq) stats.max_seq = seq;

      const auto pairs = ftl::parse_head_page(page, g.page_size);
      if (!pairs) return Status::kCorruption;
      for (const auto& p : *pairs) {
        stats.pairs_seen++;
        if (p.header.tombstone) stats.tombstones_seen++;
        Winner& w = winners[p.header.sig];
        if (w.ppa == flash::kInvalidPpa || seq > w.seq ||
            (seq == w.seq && p.offset > w.offset)) {
          w = Winner{seq, p.offset, ppa, p.header.pair_bytes(),
                     p.header.tombstone};
        }
      }
    }
  }

  // Install the winners: live pairs enter the index; tombstones (and
  // nothing else) keep their liveness so GC preserves them.
  for (const auto& [sig, w] : winners) {
    alloc.add_live(w.ppa, w.pair_bytes);
    if (w.tombstone) continue;
    if (Status s = index.put(sig, w.ppa); !ok(s)) return s;
    stats.keys_recovered++;
    stats.live_bytes += w.pair_bytes;
  }

  store.set_next_seq(stats.max_seq + 1);
  return stats;
}

}  // namespace rhik::kvssd
