#include "kvssd/device.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <limits>
#include <unordered_map>

#include "ftl/layout.hpp"
#include "hash/murmur.hpp"
#include "index/mlhash/mlhash_index.hpp"
#include "index/rhik/rhik_index.hpp"
#include "kvssd/recovery.hpp"

namespace rhik::kvssd {

using flash::Ppa;

KvssdDevice::KvssdDevice(DeviceConfig cfg)
    : KvssdDevice(cfg, std::unique_ptr<flash::NandDevice>()) {
  enable_journaling();
  if (ckpt_) ckpt_->init_from_flash();
}

KvssdDevice::KvssdDevice(DeviceConfig cfg, std::unique_ptr<flash::NandDevice> nand)
    : cfg_(cfg), trace_ring_(cfg.obs.trace_ring_capacity) {
  assert(cfg_.geometry.valid());
  if (nand) {
    nand_ = std::move(nand);
    nand_->rebind_clock(&clock_);
  } else {
    nand_ = std::make_unique<flash::NandDevice>(cfg_.geometry, cfg_.latency,
                                                &clock_);
  }
  alloc_ = std::make_unique<ftl::PageAllocator>(
      nand_.get(), cfg_.gc_reserve_blocks,
      CheckpointManager::reserved_blocks(cfg_.checkpoint));
  store_ = std::make_unique<ftl::FlashKvStore>(nand_.get(), alloc_.get());
  switch (cfg_.index_kind) {
    case IndexKind::kRhik:
      index_ = std::make_unique<index::RhikIndex>(nand_.get(), alloc_.get(),
                                                  cfg_.rhik, cfg_.dram_cache_bytes);
      break;
    case IndexKind::kMlHash:
      index_ = std::make_unique<index::MlHashIndex>(
          nand_.get(), alloc_.get(), cfg_.mlhash, cfg_.dram_cache_bytes);
      break;
  }
  store_->set_cold_separation(cfg_.gc.hot_cold_separation);
  alloc_->set_wear_aware(cfg_.gc.wear_leveling_threshold > 0.0);
  ftl::GcTuning tuning;
  tuning.policy = cfg_.gc.policy;
  tuning.background_free_blocks = cfg_.gc.background_free_blocks;
  tuning.quantum_pages = cfg_.gc.quantum_pages;
  tuning.wear_leveling_threshold = cfg_.gc.wear_leveling_threshold;
  tuning.wear_check_quanta = cfg_.gc.wear_check_quanta;
  gc_ = std::make_unique<ftl::GarbageCollector>(nand_.get(), alloc_.get(),
                                                store_.get(), index_.get(),
                                                tuning);
  if (cfg_.snapshots != nullptr) {
    snaps_ = cfg_.snapshots;  // array-shared: one epoch across all shards
  } else {
    owned_snaps_ = std::make_unique<ftl::SnapshotContext>();
    snaps_ = owned_snaps_.get();
  }
  snaps_->registry.set_retention_bytes(cfg_.snapshot_retention_bytes);
  retainer_ = std::make_unique<ftl::VersionRetainer>(&snaps_->registry);
  store_->set_epoch_source(&snaps_->epochs);
  gc_->set_version_retainer(retainer_.get());
  iter_mgr_ = std::make_unique<IteratorManager>(index_.get(), store_.get(),
                                                &snaps_->registry,
                                                retainer_.get());
  if (cfg_.checkpoint.enabled) {
    ckpt_ = std::make_unique<CheckpointManager>(nand_.get(), index_.get(),
                                                store_.get(), alloc_.get(),
                                                cfg_.checkpoint, &live_bytes_);
    ckpt_->set_index_kind(static_cast<std::uint32_t>(cfg_.index_kind));
    ckpt_->set_epoch_source(&snaps_->epochs);
  }
  if (cfg_.obs.metrics) {
    put_timers_ = make_stage_timers("put");
    get_timers_ = make_stage_timers("get");
    del_timers_ = make_stage_timers("del");
    next_dump_ns_ = cfg_.obs.dump_period_ns;
  }
}

KvssdDevice::~KvssdDevice() {
  // Clean shutdown takes a checkpoint so the next recover() restarts in
  // O(dirty). Best-effort: a failure just means a full scan later.
  if (ckpt_ && nand_) {
    (void)flush();
    (void)ckpt_->checkpoint_now();
  }
}

void KvssdDevice::enable_journaling() {
  if (!ckpt_) return;
  index_->set_journal(ckpt_.get());
  // A replayed journal record must never point into a block erased after
  // the record was produced: persist the buffer before any GC erase.
  alloc_->set_pre_erase_hook(
      [this](std::uint32_t) { (void)ckpt_->flush_journal(); });
}

Status KvssdDevice::checkpoint_now() {
  if (!ckpt_) return Status::kUnsupported;
  if (Status s = store_->flush(); !ok(s)) return s;
  return ckpt_->checkpoint_now();
}

Result<std::unique_ptr<KvssdDevice>> KvssdDevice::recover(
    DeviceConfig cfg, std::unique_ptr<flash::NandDevice> nand,
    RecoveryStats* stats_out) {
  if (!nand) return Status::kInvalidArgument;
  if (nand->geometry().capacity_bytes() != cfg.geometry.capacity_bytes() ||
      nand->geometry().page_size != cfg.geometry.page_size) {
    return Status::kInvalidArgument;
  }
  // Boot after power loss: volatile controller state (wear RAM, transfer
  // counters) is gone; the scan below re-derives wear from the spare
  // stamps. Also re-powers an attached fault injector.
  nand->power_cycle();
  std::unique_ptr<KvssdDevice> dev(new KvssdDevice(cfg, std::move(nand)));

  RecoveryStats stats;
  bool restored = false;
  if (dev->ckpt_) {
    if (auto found = CheckpointManager::find_newest(*dev->nand_, cfg.checkpoint)) {
      if (ok(dev->restore_from_checkpoint(*found, stats))) {
        restored = true;
      } else {
        // The fast path mutated index / allocator state before failing;
        // rebuild a fresh device over the same array and full-scan.
        auto array = dev->release_nand();
        dev.reset(new KvssdDevice(cfg, std::move(array)));
        stats = {};
      }
    }
  }
  if (!restored) {
    // Counted on every full-device scan, checkpointing or not, so the
    // restart path is always attributable from RecoveryStats alone.
    stats.full_scan_fallback = 1;
    if (dev->ckpt_) {
      // The scan's view of the log is about to become authoritative;
      // stale checkpoints and journal pages must not survive it (a crash
      // mid-scan would otherwise replay deltas onto the wrong base).
      dev->ckpt_->invalidate_checkpoints();
      dev->ckpt_->reset_journal();
    }
    auto scan = recover_from_flash(*dev->nand_, *dev->alloc_, *dev->store_,
                                   *dev->index_);
    if (!scan) return scan.status();
    scan->full_scan_fallback = stats.full_scan_fallback;
    stats = *scan;
  }
  stats.pages_read = dev->nand_->stats().page_reads;
  dev->live_bytes_ = stats.live_bytes;
  // Epochs must never regress across a restart: a reused stamp would make
  // two generations of a key indistinguishable to snapshot resolution.
  // Pins themselves do not survive the crash — their holders see
  // kSnapshotTooOld, never torn data.
  dev->snaps_->epochs.raise_to(stats.max_epoch);

  dev->enable_journaling();
  if (dev->ckpt_) {
    dev->ckpt_->init_from_flash();
    // Full-scan result: re-checkpoint immediately so the next restart is
    // O(dirty) again. Fast path: the restored state IS the checkpoint +
    // journal lineage; journaling just continues past the replayed tail.
    if (!restored) {
      (void)dev->ckpt_->checkpoint_now();
    } else {
      // Ghost pairs folded by the fast path exist only above the replayed
      // journal horizon. Append their records first, so any journal flush
      // this life (which advances the horizon past them) carries them.
      for (const auto& gh : dev->rejournal_) {
        if (gh.tombstone) {
          dev->ckpt_->journal_del_located(gh.sig, gh.ppa);
        } else {
          dev->ckpt_->journal_put(gh.sig, gh.ppa);
        }
      }
    }
    dev->rejournal_.clear();
  }
  dev->recovered_ = stats;
  if (stats_out) *stats_out = stats;
  return dev;
}

Status KvssdDevice::restore_from_checkpoint(const CheckpointManager::Found& found,
                                            RecoveryStats& stats) {
  const auto img = CheckpointManager::decode_payload(found.payload);
  if (!img) return Status::kCorruption;
  if (img->index_kind != static_cast<std::uint32_t>(cfg_.index_kind)) {
    return Status::kCorruption;
  }
  if (img->block_live.size() != alloc_->first_reserved_block()) {
    return Status::kCorruption;
  }
  if (Status s = index_->load_image(img->index_image); !ok(s)) return s;

  // Adopt every written block from its write point alone — no page-level
  // scan. Stream and wear come from the first page's spare; in-order,
  // program-once discipline means only the LAST programmed page of a
  // block can be torn, so dropping torn tails needs one read per block.
  const auto& g = nand_->geometry();
  Bytes page(g.page_size);
  Bytes spare(g.spare_size());
  std::vector<std::uint32_t> valid_pages(img->block_live.size(), 0);
  for (std::uint32_t block = 0; block < img->block_live.size(); ++block) {
    const std::uint32_t programmed = nand_->pages_programmed(block);
    if (programmed == 0) continue;
    stats.blocks_adopted++;
    ftl::Stream stream = ftl::Stream::kData;
    if (ok(nand_->read_page(flash::make_ppa(g, block, 0), page, spare)) &&
        flash::page_crc_ok(g, page, spare)) {
      stream = ftl::SpareTag::decode(spare).stream;
      nand_->restore_erase_count(block, flash::spare_wear_stamp(g, spare));
      stats.wear_blocks_restored++;
    }
    std::uint32_t valid = programmed;
    while (valid > 0) {
      const Status s =
          nand_->read_page(flash::make_ppa(g, block, valid - 1), page, spare);
      if (ok(s) && flash::page_crc_ok(g, page, spare)) break;
      stats.torn_pages_dropped++;
      --valid;
    }
    valid_pages[block] = valid;
    if (Status s = alloc_->adopt_block(block, stream, valid); !ok(s)) return s;
    // Live-byte credit is the checkpoint-time value: blocks (re)written
    // since are under-credited, which only skews victim selection — GC
    // validates every pair against the index before relocating, and
    // sub_live saturates at zero.
    if (img->block_live[block] > 0) {
      alloc_->add_live(flash::make_ppa(g, block, 0), img->block_live[block]);
    }
  }

  const auto tail =
      CheckpointManager::read_journal_tail(*nand_, cfg_.checkpoint,
                                           found.journal_mark);
  // A gap means part of the tail was erased (interrupted invalidation); a
  // barrier is a legacy record from a journal written before resizes were
  // replayable (generation-tagged resize/migrate records express them
  // now). Both are full-scan conditions.
  if (!tail.contiguous || tail.has_barrier) return Status::kCorruption;

  // Journal pages flush on their own cadence, so a durable put record may
  // reference a data extent that was still in the store's RAM buffer at
  // the cut. Such an extent is detectable: its pages sit at-or-past the
  // block's adopted write point, or the head page doesn't parse to a pair
  // of this key.
  const auto extent_durable = [&](std::uint64_t sig, flash::Ppa ppa) -> bool {
    const std::uint32_t block = flash::ppa_block(g, ppa);
    const std::uint32_t pg = flash::ppa_page(g, ppa);
    if (block >= valid_pages.size() || pg >= valid_pages[block]) return false;
    if (!ok(nand_->read_page(ppa, page, spare))) return false;
    if (!flash::page_crc_ok(g, page, spare) ||
        ftl::SpareTag::decode(spare).kind != ftl::PageKind::kDataHead) {
      return false;
    }
    const auto pairs = ftl::parse_head_page(page, g.page_size);
    if (!pairs) return false;
    for (const auto& p : *pairs) {
      if (p.header.sig != sig) continue;
      if (!p.spills) return true;
      // The continuation chain programs right behind the head; it is
      // durable iff it fits under the adopted write point.
      const std::uint32_t need =
          ftl::continuation_pages(g, p.header.pair_bytes());
      return pg + need < valid_pages[block];
    }
    return false;
  };

  // Fold the tail into each key's final durable state, in record order.
  // Put/del records live in the signature namespace and fold to a
  // last-write-wins overlay, applied after the structural pass below. A
  // non-durable put is a no-op rather than an error: no flush can have
  // succeeded after it (flush persists the store buffer before the
  // journal), so the previous resolved state is still at-or-after the
  // key's durability floor. Folding the whole sequence matters for GC
  // chains — an early put's page may have been legitimately erased
  // before the cut, but the collector's pre-erase journal flush then
  // guarantees the superseding repoint record is in this same tail.
  //
  // Repoint / resize / migrate records key directory SLOTS (or the
  // directory itself) and are applied inline, in record order: a resize
  // re-opens the crashed migration window, subsequent generation-tagged
  // repoints land in whichever generation owns their bucket, and a
  // migrate record retires its source bucket only after the records for
  // its split products — the exact order the live index produced them.
  // A record page written back under cache pressure can reference data
  // still in the store's RAM buffer at the cut, so each repointed page
  // is vetted: any entry at-or-past its block's adopted write point
  // rejects the repoint (the image's page plus this tail reconstructs
  // the same durable mappings). Below the write point is sufficient —
  // the index never references an incomplete extent (puts ack only
  // after the store programs the whole extent).
  const auto page_durable = [&](flash::Ppa p) -> bool {
    const std::uint32_t block = flash::ppa_block(g, p);
    return block < valid_pages.size() &&
           flash::ppa_page(g, p) < valid_pages[block];
  };
  // Only a slot's LAST repoint is applied (at its position in the
  // order): an intermediate repoint's page may have been index-GC-erased
  // before the cut, and the pre-erase journal flush guarantees the
  // superseding record is in this same tail.
  std::unordered_map<std::uint64_t, std::size_t> last_repoint;
  for (std::size_t i = 0; i < tail.records.size(); ++i) {
    if (tail.records[i].kind == CheckpointManager::kRecRepoint) {
      last_repoint[tail.records[i].key] = i;
    }
  }
  struct Resolved {
    enum class From : std::uint8_t { kImage, kMapped, kAbsent };
    From from = From::kImage;
    flash::Ppa ppa = flash::kInvalidPpa;
  };
  std::unordered_map<std::uint64_t, Resolved> resolved;
  // Tombstone locations from kRecDelAt records: deletion-epoch evidence
  // for the ghost fold below (the index holds no epoch for absence).
  std::unordered_map<std::uint64_t, flash::Ppa> del_at;
  for (std::size_t i = 0; i < tail.records.size(); ++i) {
    const auto& rec = tail.records[i];
    switch (rec.kind) {
      case CheckpointManager::kRecPut:
        if (extent_durable(rec.key, rec.ppa)) {
          resolved[rec.key] = {Resolved::From::kMapped, rec.ppa};
        }
        break;
      case CheckpointManager::kRecRepoint:
        if (last_repoint[rec.key] != i) break;  // superseded in this tail
        if (Status s =
                index_->apply_journal_repoint(rec.key, rec.ppa, page_durable);
            !ok(s)) {
          return s;
        }
        break;
      case CheckpointManager::kRecResize:
        if (Status s = index_->apply_journal_resize(
                static_cast<std::uint32_t>(rec.key >> 32),
                static_cast<std::uint32_t>(rec.key & 0xFFFFFFFFu));
            !ok(s)) {
          return s;
        }
        break;
      case CheckpointManager::kRecMigrate:
        if (Status s = index_->apply_journal_migrate(rec.key); !ok(s)) {
          return s;
        }
        break;
      case CheckpointManager::kRecDel:
        // Provisional: the index erased the mapping, but this record can
        // be durable while the deletion's tombstone is not (the pre-erase
        // hook used to flush only the journal; the store-first ordering
        // now prevents that, and replay keeps ignoring these for the
        // flush-boundary window between index erase and tombstone write).
        // Acting on it would make this restart disagree with a later
        // full scan, which only ever sees tombstones.
        break;
      case CheckpointManager::kRecDelAt:
        // Durable record implies durable tombstone (store-first flush),
        // and GC relocates unmapped tombstones, so no revalidation: the
        // raw log agrees the key is gone.
        resolved[rec.key] = {Resolved::From::kAbsent, flash::kInvalidPpa};
        del_at[rec.key] = rec.ppa;
        break;
      default:
        return Status::kCorruption;
    }
  }
  // The put/del overlay replays through the non-structural appliers: a
  // replay-triggered resize or bucket migration would be unjournaled and
  // desynchronize this restore from the crashed index, so a record that
  // cannot be placed without structural work aborts to the full scan.
  for (const auto& [sig, r] : resolved) {
    switch (r.from) {
      case Resolved::From::kImage:
        break;  // keep the checkpoint image's mapping (or absence)
      case Resolved::From::kMapped:
        if (Status s = index_->apply_journal_put(sig, r.ppa); !ok(s)) return s;
        break;
      case Resolved::From::kAbsent: {
        // Idempotent; a racing flush may have persisted the erase into
        // the image already.
        if (Status s = index_->apply_journal_erase(sig); !ok(s)) return s;
        break;
      }
    }
  }

  // Unjournaled suffix ("ghosts"): data pairs whose pages were programmed
  // after the last durable journal page were acknowledged, but their
  // records died buffered in the cut. The full scan would adopt them —
  // they carry the newest sequence numbers — so the fast path must fold
  // them too, or a later fallback scan would resurrect writes this
  // restart chose to drop. Within a block sequence numbers ascend with
  // program order, so the ghost region is the page suffix at-or-above
  // the horizon; a block untouched since the last flush settles in one
  // spare read.
  const std::uint64_t horizon = std::max(img->next_seq, tail.max_next_seq);
  struct Ghost {
    std::uint64_t epoch;
    std::uint64_t seq;
    std::size_t offset;
    std::uint64_t sig;
    flash::Ppa ppa;
    bool tombstone;
  };
  std::vector<Ghost> ghosts;
  std::uint64_t max_durable_seq = 0;
  std::uint64_t max_epoch_hw = 0;
  for (std::uint32_t block = 0; block < valid_pages.size(); ++block) {
    for (std::uint32_t pg = valid_pages[block]; pg-- > 0;) {
      const flash::Ppa ppa = flash::make_ppa(g, block, pg);
      if (!ok(nand_->read_page(ppa, page, spare))) continue;  // extent gap
      if (!flash::page_crc_ok(g, page, spare)) continue;
      const ftl::SpareTag tag = ftl::SpareTag::decode(spare);
      if (tag.kind == ftl::PageKind::kDataCont) continue;  // judged at head
      if (tag.kind != ftl::PageKind::kDataHead) break;     // index/meta block
      const ftl::DataPageSpare dspare = ftl::DataPageSpare::decode(spare);
      const std::uint64_t seq = dspare.seq;
      // Sequence numbers ascend with page order, so this first head page
      // read per block carries the block's maximum durable sequence; its
      // epoch high-water likewise bounds every stamp in the block (both
      // are monotone in program order).
      max_durable_seq = std::max(max_durable_seq, seq);
      max_epoch_hw = std::max(max_epoch_hw, dspare.epoch_hw);
      if (seq < horizon) break;  // everything below is journal-covered
      const auto pairs = ftl::parse_head_page(page, g.page_size);
      if (!pairs) continue;
      // Same rule as the full scan: an incomplete trailing extent drops
      // its whole head page (it only ever sits at a block's very top).
      if (!pairs->empty() && pairs->back().spills) {
        const std::uint32_t need =
            ftl::continuation_pages(g, pairs->back().header.pair_bytes());
        if (pg + need >= valid_pages[block]) continue;
      }
      for (const auto& p : *pairs) {
        ghosts.push_back(Ghost{p.header.epoch, seq, p.offset, p.header.sig,
                               ppa, p.header.tombstone});
      }
    }
  }
  // Epoch-major, like the full scan's winner ordering: GC may have
  // relocated a snapshot-retained OLD version above the horizon (crash
  // between the relocation flush and the pre-erase journal flush), and
  // such a pair carries its ORIGINAL stamp with a top-of-log sequence.
  std::sort(ghosts.begin(), ghosts.end(), [](const Ghost& a, const Ghost& b) {
    if (a.epoch != b.epoch) return a.epoch < b.epoch;
    return a.seq != b.seq ? a.seq < b.seq : a.offset < b.offset;
  });
  rejournal_.clear();
  for (const Ghost& gh : ghosts) {
    // Every legitimately-unjournaled op postdates the checkpoint build
    // (the checkpoint's own flush pushed anything older below the
    // horizon), so its stamp exceeds the image's epoch high-water. A
    // ghost at-or-below it can only be a relocated old version — already
    // superseded somewhere in the durable log — and must not fold: a put
    // would resurrect, a tombstone is a no-op against its absent sig.
    if (gh.epoch <= img->epoch) continue;
    // Same hazard when the superseding write is journal-resolved: fold
    // only if the ghost is at least as new as the sig's current mapping
    // (or, for an unmapped sig, its kRecDelAt tombstone).
    const auto cur = index_->lookup(gh.sig);
    if (!cur) return cur.status();
    if (*cur) {
      const auto meta = store_->read_pair_meta(**cur, gh.sig);
      if (meta && meta->epoch > gh.epoch) continue;
    } else if (const auto del = del_at.find(gh.sig); del != del_at.end()) {
      const auto meta = store_->read_pair_meta(del->second, gh.sig);
      if (meta && meta->tombstone && meta->epoch > gh.epoch) continue;
    }
    if (gh.tombstone) {
      if (Status s = index_->apply_journal_erase(gh.sig); !ok(s)) return s;
    } else {
      if (Status s = index_->apply_journal_put(gh.sig, gh.ppa); !ok(s)) return s;
    }
    rejournal_.push_back(Rejournal{gh.sig, gh.ppa, gh.tombstone});
  }

  // Data-page sequence numbers advance without journal records; the
  // journaled horizon plus the page population bounds that advance ONLY
  // while every erase writes a journal page — but an erase whose victim
  // produced no records (e.g. only tombstone relocations) records
  // nothing, and incremental background GC makes such erases routine.
  // The ghost scan above read the topmost head page of every data block,
  // i.e. the true maximum durable sequence, so combine both: never
  // hand out a sequence number a durable page could shadow.
  store_->set_next_seq(std::max(std::max(img->next_seq, tail.max_next_seq) +
                                    g.pages_total(),
                                max_durable_seq) +
                       1);
  // Approximate (checkpoint-time) figure; ops journaled after it shift
  // the true value. Introspection only — liveness accounting is per
  // block and self-corrects through GC validation.
  stats.live_bytes = img->live_bytes;
  // The image's key count predates the journal tail, and the repoint
  // records above fast-forwarded directory slots to pages that already
  // hold the tail's keys — the put/del overlay re-applied those as
  // updates, not inserts, so the incremental count stayed at the
  // checkpoint's value. Recount from table occupancy: an undercount
  // starves the resize trigger until inserts physically fail.
  if (Status s = index_->recount_keys(); !ok(s)) return s;
  stats.keys_recovered = index_->size();
  stats.journal_pages_replayed = tail.pages;
  stats.journal_records_replayed = tail.records.size();
  stats.checkpoint_restored = 1;
  stats.checkpoint_version = found.version;
  stats.max_seq = store_->next_seq() - 1;
  // Epoch high-water: the payload's value covers an idle device, the
  // topmost spare per data block covers everything programmed since.
  stats.max_epoch = std::max(max_epoch_hw, img->epoch);
  return Status::kOk;
}

std::unique_ptr<flash::NandDevice> KvssdDevice::release_nand() {
  return std::move(nand_);
}

std::uint64_t KvssdDevice::signature_for(const DeviceConfig& cfg, ByteSpan key) {
  if (cfg.prefix_signatures) return hash::prefix_signature(key);
  if (cfg.wide_signatures) return hash::murmur3_128(key).lo;
  return hash::murmur2_64(key);
}

std::uint64_t KvssdDevice::signature(ByteSpan key) const {
  return signature_for(cfg_, key);
}

void KvssdDevice::charge_command(bool async) {
  const SimTime cost =
      async ? cfg_.cmd_overhead_ns / std::max<std::uint32_t>(1, cfg_.queue_depth)
            : cfg_.cmd_overhead_ns;
  clock_.advance(cost);
}

void KvssdDevice::retire_version(std::uint64_t sig, Ppa ppa,
                                 std::uint64_t epoch,
                                 std::uint64_t total_bytes) {
  // A pinned snapshot may still need the dying version. The pin_count
  // check is racy only in the safe direction: open() bumps the count
  // BEFORE advancing the epoch (both seq_cst), so a zero read here means
  // any concurrent pin lands at-or-after this mutation's stamp and never
  // needed the old version. Same-stamp overwrites (one batch touching a
  // key twice) have an empty visibility window [e, e) — free immediately.
  if (snaps_->registry.pin_count() != 0 && epoch < mutation_epoch_) {
    retainer_->capture(sig,
                       ftl::RetainedVersion{ppa, epoch, mutation_epoch_,
                                            total_bytes});
  } else {
    store_->note_stale(ppa, total_bytes);
  }
}

void KvssdDevice::gc_tick() {
  // Best-effort: an IO failure here (powered-off injector, device full)
  // resurfaces on the next foreground op; the quantum itself must never
  // fail an already-completed command.
  (void)gc_->background_tick();
  // An in-flight index doubling drains on the same quantum cadence as
  // GC, so foreground ops are never charged migration work.
  (void)index_->pump_maintenance(0);
  // Retained versions whose windows dropped below the pin floor become
  // ordinary stale bytes for GC to reclaim.
  if (!retainer_->empty()) {
    retainer_->reclaim(
        [this](Ppa p, std::uint64_t bytes) { store_->note_stale(p, bytes); });
  }
}

bool KvssdDevice::pump_background() {
  bool did_work = false;
  (void)gc_->background_tick(&did_work);
  if (index_->pump_maintenance(0)) did_work = true;
  if (!retainer_->empty()) {
    retainer_->reclaim(
        [this](Ppa p, std::uint64_t bytes) { store_->note_stale(p, bytes); });
  }
  return did_work;
}

Status KvssdDevice::maybe_gc() {
  if (!alloc_->needs_gc()) return Status::kOk;
  stats_.gc_invocations++;
  const Status s = gc_->collect(cfg_.gc_target_free_blocks);
  // kDeviceFull from GC means nothing reclaimable; the caller decides
  // whether the foreground operation can still proceed.
  return s == Status::kDeviceFull ? Status::kOk : s;
}

Status KvssdDevice::put_locked(ByteSpan key, ByteSpan value) {
  if (key.empty() || key.size() > cfg_.max_key_size) return Status::kInvalidArgument;
  if (value.size() > store_->max_value_size(key.size())) {
    return Status::kInvalidArgument;
  }
  {
    obs::StageScope gc_span(active_trace_, obs::Stage::kGc, clock_);
    if (Status s = maybe_gc(); !ok(s)) return s;
  }

  const std::uint64_t sig = signature(key);

  // Key-exist check (§IV-A): if the signature maps to a stored pair we
  // must fetch its key — an update keeps the index entry, while a
  // different key with the same signature is an uncorrectable collision
  // the device rejects (§VI "Collision Management").
  const auto looked = [&] {
    obs::StageScope span(active_trace_, obs::Stage::kIndex, clock_);
    return index_->lookup(sig);
  }();
  // A metadata read failure must fail the put: treating it as "not found"
  // would let this write orphan a live pair under the same signature.
  if (!looked) return looked.status();
  const std::optional<Ppa> old_ppa = *looked;
  std::uint64_t old_total = 0;
  std::uint64_t old_epoch = 0;
  if (old_ppa) {
    obs::StageScope span(active_trace_, obs::Stage::kFlash, clock_);
    auto meta = store_->read_pair_meta(*old_ppa, sig);
    if (!meta) return meta.status();
    if (ByteSpan{meta->key} .size() != key.size() ||
        !std::equal(key.begin(), key.end(), meta->key.begin())) {
      stats_.collision_rejects++;
      return Status::kCollisionAbort;
    }
    old_total = meta->total_bytes;
    old_epoch = meta->epoch;
  }

  const auto timed_write = [&] {
    obs::StageScope span(active_trace_, obs::Stage::kFlash, clock_);
    return store_->write_pair(sig, key, value, /*for_gc=*/false,
                              mutation_epoch_);
  };
  auto new_ppa = timed_write();
  if (!new_ppa && new_ppa.status() == Status::kDeviceFull) {
    // Out of space mid-write: reclaim and retry once.
    stats_.gc_invocations++;
    {
      obs::StageScope gc_span(active_trace_, obs::Stage::kGc, clock_);
      if (Status s = gc_->collect(cfg_.gc_target_free_blocks);
          !ok(s) && s != Status::kDeviceFull) {
        return s;
      }
    }
    new_ppa = timed_write();
  }
  if (!new_ppa) {
    if (new_ppa.status() == Status::kDeviceFull) stats_.device_full++;
    return new_ppa.status();
  }

  const Status ist = [&] {
    obs::StageScope span(active_trace_, obs::Stage::kIndex, clock_);
    return index_->put(sig, *new_ppa);
  }();
  if (!ok(ist)) {
    // The pair hit flash but the index rejected the record: undo the
    // liveness accounting so GC reclaims the orphan bytes.
    store_->note_stale(*new_ppa,
                       ftl::FlashKvStore::pair_bytes(key.size(), value.size()));
    if (ist == Status::kCollisionAbort) stats_.collision_rejects++;
    return ist;
  }
  if (old_ppa) {
    retire_version(sig, *old_ppa, old_epoch, old_total);
    live_bytes_ -= old_total;
  }
  live_bytes_ += ftl::FlashKvStore::pair_bytes(key.size(), value.size());
  stats_.puts++;
  stats_.bytes_put += value.size() + key.size();
  return Status::kOk;
}

Status KvssdDevice::get_locked(ByteSpan key, Bytes* value_out) {
  if (key.empty() || key.size() > cfg_.max_key_size) return Status::kInvalidArgument;
  const std::uint64_t sig = signature(key);
  const auto looked = [&] {
    obs::StageScope span(active_trace_, obs::Stage::kIndex, clock_);
    return index_->lookup(sig);
  }();
  if (!looked) return looked.status();  // I/O error, not a miss
  const std::optional<Ppa> ppa = *looked;
  if (!ppa) {
    stats_.not_found++;
    return Status::kNotFound;
  }
  Bytes stored_key;
  {
    obs::StageScope span(active_trace_, obs::Stage::kFlash, clock_);
    if (Status s = store_->read_pair(*ppa, sig, &stored_key, value_out);
        !ok(s)) {
      return s;
    }
  }
  // Full-key recheck defeats signature collisions (§IV-A3).
  if (stored_key.size() != key.size() ||
      !std::equal(key.begin(), key.end(), stored_key.begin())) {
    stats_.not_found++;
    if (value_out) value_out->clear();
    return Status::kNotFound;
  }
  stats_.gets++;
  if (value_out) stats_.bytes_got += value_out->size();
  return Status::kOk;
}

Status KvssdDevice::del_locked(ByteSpan key) {
  if (key.empty() || key.size() > cfg_.max_key_size) return Status::kInvalidArgument;
  const std::uint64_t sig = signature(key);
  const auto looked = [&] {
    obs::StageScope span(active_trace_, obs::Stage::kIndex, clock_);
    return index_->lookup(sig);
  }();
  if (!looked) return looked.status();  // I/O error, not a miss
  const std::optional<Ppa> ppa = *looked;
  if (!ppa) {
    stats_.not_found++;
    return Status::kNotFound;
  }
  // Fetch and match the key before deleting (§IV-A), as a signature
  // collision must not delete a different application's pair.
  auto meta = [&] {
    obs::StageScope span(active_trace_, obs::Stage::kFlash, clock_);
    return store_->read_pair_meta(*ppa, sig);
  }();
  if (!meta) return meta.status();
  if (ByteSpan{meta->key}.size() != key.size() ||
      !std::equal(key.begin(), key.end(), meta->key.begin())) {
    stats_.not_found++;
    return Status::kNotFound;
  }
  {
    obs::StageScope span(active_trace_, obs::Stage::kIndex, clock_);
    if (Status s = index_->erase(sig); !ok(s)) return s;
  }
  retire_version(sig, *ppa, meta->epoch, meta->total_bytes);
  live_bytes_ -= meta->total_bytes;

  // Durable deletion record (crash recovery replays it). The bytes just
  // freed make GC productive if the log is out of space; if even GC
  // cannot help (everything else live), the tiny tombstone may dip into
  // the GC reserve — deletion must always be possible on a full device.
  const auto timed_tombstone = [&](bool for_gc) {
    obs::StageScope span(active_trace_, obs::Stage::kFlash, clock_);
    return store_->write_tombstone(sig, key, for_gc, mutation_epoch_);
  };
  auto ts = timed_tombstone(/*for_gc=*/false);
  if (!ts && ts.status() == Status::kDeviceFull) {
    stats_.gc_invocations++;
    {
      obs::StageScope gc_span(active_trace_, obs::Stage::kGc, clock_);
      if (Status s = gc_->collect(cfg_.gc_target_free_blocks);
          !ok(s) && s != Status::kDeviceFull) {
        return s;
      }
    }
    ts = timed_tombstone(/*for_gc=*/false);
    if (!ts && ts.status() == Status::kDeviceFull) {
      ts = timed_tombstone(/*for_gc=*/true);
    }
  }
  if (!ts) return ts.status();
  // Only now is the deletion replayable: the index's provisional record
  // could otherwise outlive a tombstone that never left the store buffer.
  if (ckpt_) ckpt_->journal_del_located(sig, *ts);
  stats_.deletes++;
  return Status::kOk;
}

Status KvssdDevice::put(ByteSpan key, ByteSpan value) {
  const SimTime t0 = clock_.now();
  charge_command(/*async=*/false);
  obs::OpTrace tr;
  const bool traced = obs_begin(tr, obs::OpKind::kPut, t0, /*enqueue_ns=*/t0);
  begin_mutation_batch();
  const Status s = put_locked(key, value);
  stats_.put_latency_ns.record(clock_.now() - t0);
  if (traced) obs_finish(tr, s, put_timers_);
  if (ckpt_) ckpt_->tick();
  gc_tick();
  return s;
}

Status KvssdDevice::get(ByteSpan key, Bytes* value_out) {
  const SimTime t0 = clock_.now();
  charge_command(/*async=*/false);
  obs::OpTrace tr;
  const bool traced = obs_begin(tr, obs::OpKind::kGet, t0, /*enqueue_ns=*/t0);
  const Status s = get_locked(key, value_out);
  stats_.get_latency_ns.record(clock_.now() - t0);
  if (traced) obs_finish(tr, s, get_timers_);
  return s;
}

Status KvssdDevice::del(ByteSpan key) {
  const SimTime t0 = clock_.now();
  charge_command(/*async=*/false);
  obs::OpTrace tr;
  const bool traced = obs_begin(tr, obs::OpKind::kDel, t0, /*enqueue_ns=*/t0);
  begin_mutation_batch();
  const Status s = del_locked(key);
  if (traced) obs_finish(tr, s, del_timers_);
  if (ckpt_) ckpt_->tick();
  gc_tick();
  return s;
}

Status KvssdDevice::exist(ByteSpan key) {
  if (key.empty() || key.size() > cfg_.max_key_size) return Status::kInvalidArgument;
  charge_command(/*async=*/false);
  stats_.exists++;
  return index_->exists(signature(key)) ? Status::kOk : Status::kNotFound;
}

Status KvssdDevice::iterate_prefix(ByteSpan prefix, std::vector<Bytes>* keys_out,
                                   std::size_t limit) {
  if (keys_out == nullptr) return Status::kInvalidArgument;
  auto handle = open_iterator(prefix);
  if (!handle) return handle.status();
  keys_out->clear();
  std::vector<IteratorEntry> batch;
  while (keys_out->size() < limit) {
    const std::size_t want = std::min<std::size_t>(limit - keys_out->size(), 64);
    const Status s = iterator_next(*handle, want, &batch);
    if (s == Status::kNotFound) break;
    if (!ok(s)) {
      close_iterator(*handle);
      return s;
    }
    for (auto& e : batch) keys_out->push_back(std::move(e.key));
  }
  return close_iterator(*handle);
}

Result<std::uint32_t> KvssdDevice::open_iterator(ByteSpan prefix,
                                                 IteratorOptions opts) {
  if (!cfg_.prefix_signatures) return Status::kUnsupported;
  charge_command(/*async=*/false);
  stats_.iterates++;
  return iter_mgr_->open(prefix, opts);
}

Status KvssdDevice::iterator_next(std::uint32_t handle, std::size_t max_entries,
                                  std::vector<IteratorEntry>* out) {
  if (!cfg_.prefix_signatures) return Status::kUnsupported;
  charge_command(/*async=*/false);
  return iter_mgr_->next(handle, max_entries, out);
}

Status KvssdDevice::close_iterator(std::uint32_t handle) {
  if (!cfg_.prefix_signatures) return Status::kUnsupported;
  charge_command(/*async=*/false);
  return iter_mgr_->close(handle);
}

Result<api::SnapshotHandle> KvssdDevice::open_snapshot() {
  charge_command(/*async=*/false);
  const ftl::SnapshotRegistry::Pin pin = snaps_->registry.open();
  return api::SnapshotHandle{pin.id, pin.epoch};
}

Status KvssdDevice::release_snapshot(const api::SnapshotHandle& snap) {
  charge_command(/*async=*/false);
  return snaps_->registry.release(snap.id, snap.epoch);
}

Status KvssdDevice::read_at(const api::SnapshotHandle& snap, ByteSpan key,
                            Bytes* value_out) {
  if (key.empty() || key.size() > cfg_.max_key_size) {
    return Status::kInvalidArgument;
  }
  charge_command(/*async=*/false);
  const auto epoch = snaps_->registry.epoch_of(snap.id);
  if (!epoch) return epoch.status();  // expired / unknown pin
  // A recycled pin id (the registry restarts after a power cycle) can
  // never share a stale handle's epoch — recovery raises the epoch
  // source past every durable stamp — so a mismatch identifies a pin
  // that did not survive. Erroring beats reading at the wrong epoch.
  if (snap.epoch != 0 && *epoch != snap.epoch) return Status::kSnapshotTooOld;

  const std::uint64_t sig = signature(key);
  const auto looked = index_->lookup(sig);
  if (!looked) return looked.status();
  if (*looked) {
    // Current version first: visible iff its stamp is at or below the
    // pinned epoch (an index hit is never a tombstone — deletes unmap).
    Bytes stored_key;
    Bytes value;
    std::uint64_t e = 0;
    if (Status s = store_->read_pair(**looked, sig, &stored_key, &value, &e);
        !ok(s)) {
      return s;
    }
    if (e <= *epoch) {
      if (stored_key.size() != key.size() ||
          !std::equal(key.begin(), key.end(), stored_key.begin())) {
        stats_.not_found++;
        return Status::kNotFound;  // signature collision (§IV-A3)
      }
      stats_.gets++;
      stats_.bytes_got += value.size();
      if (value_out) *value_out = std::move(value);
      return Status::kOk;
    }
  }
  // Superseded (or deleted) after the pin: the retainer holds the version
  // visible at the pinned epoch, if the key existed then at all.
  if (const ftl::RetainedVersion* v = retainer_->resolve(sig, *epoch)) {
    Bytes stored_key;
    Bytes value;
    bool tomb = false;
    if (Status s = store_->read_pair_at(v->ppa, sig, *epoch, &stored_key,
                                        &value, &tomb);
        !ok(s)) {
      return s;
    }
    if (!tomb && stored_key.size() == key.size() &&
        std::equal(key.begin(), key.end(), stored_key.begin())) {
      stats_.gets++;
      stats_.bytes_got += value.size();
      if (value_out) *value_out = std::move(value);
      return Status::kOk;
    }
  }
  stats_.not_found++;
  return Status::kNotFound;
}

Result<std::uint64_t> KvssdDevice::kvs_open_iterator(
    ByteSpan prefix, const api::SnapshotHandle* snap) {
  if (!cfg_.prefix_signatures) return Status::kUnsupported;
  charge_command(/*async=*/false);
  stats_.iterates++;
  if (snap != nullptr && snap->epoch != 0) {
    // Stale-handle guard (see read_at): a pin id recycled across a
    // power cycle never matches the old handle's epoch.
    const auto epoch = snaps_->registry.epoch_of(snap->id);
    if (!epoch) return epoch.status();
    if (*epoch != snap->epoch) return Status::kSnapshotTooOld;
  }
  const auto handle = snap != nullptr ? iter_mgr_->open_at(prefix, snap->id)
                                      : iter_mgr_->open(prefix);
  if (!handle) return handle.status();
  return static_cast<std::uint64_t>(*handle);
}

Status KvssdDevice::kvs_iterator_next(std::uint64_t handle,
                                      std::size_t max_keys,
                                      std::vector<Bytes>* keys_out) {
  if (!cfg_.prefix_signatures) return Status::kUnsupported;
  if (keys_out == nullptr) return Status::kInvalidArgument;
  if (handle > std::numeric_limits<std::uint32_t>::max()) {
    return Status::kInvalidArgument;
  }
  charge_command(/*async=*/false);
  keys_out->clear();
  std::vector<IteratorEntry> batch;
  const Status s =
      iter_mgr_->next(static_cast<std::uint32_t>(handle), max_keys, &batch);
  if (!ok(s)) return s;
  keys_out->reserve(batch.size());
  for (IteratorEntry& e : batch) keys_out->push_back(std::move(e.key));
  return Status::kOk;
}

Status KvssdDevice::kvs_close_iterator(std::uint64_t handle) {
  if (!cfg_.prefix_signatures) return Status::kUnsupported;
  if (handle > std::numeric_limits<std::uint32_t>::max()) {
    return Status::kInvalidArgument;
  }
  charge_command(/*async=*/false);
  return iter_mgr_->close(static_cast<std::uint32_t>(handle));
}

Status KvssdDevice::execute_batch(std::vector<BatchOp>& ops) {
  // One NVMe round trip for the whole group (compound command, [8]).
  charge_command(/*async=*/false);
  stats_.batches++;
  // One epoch per compound command: its ops are a single atomic batch to
  // snapshot readers (a snapshot sees all of it or none of it).
  begin_mutation_batch();
  for (BatchOp& op : ops) {
    const SimTime t0 = clock_.now();
    obs::OpTrace tr;
    bool traced = false;
    switch (op.kind) {
      case BatchOp::Kind::kPut:
        traced = obs_begin(tr, obs::OpKind::kPut, t0, /*enqueue_ns=*/t0);
        op.status = put_locked(op.key, op.value);
        if (traced) obs_finish(tr, op.status, put_timers_);
        break;
      case BatchOp::Kind::kGet:
        traced = obs_begin(tr, obs::OpKind::kGet, t0, /*enqueue_ns=*/t0);
        op.status = get_locked(op.key, &op.value);
        if (traced) obs_finish(tr, op.status, get_timers_);
        break;
      case BatchOp::Kind::kDel:
        traced = obs_begin(tr, obs::OpKind::kDel, t0, /*enqueue_ns=*/t0);
        op.status = del_locked(op.key);
        if (traced) obs_finish(tr, op.status, del_timers_);
        break;
      case BatchOp::Kind::kExist:
        stats_.exists++;
        op.status = index_->exists(signature(op.key)) ? Status::kOk
                                                      : Status::kNotFound;
        break;
    }
  }
  if (ckpt_) ckpt_->tick();
  gc_tick();
  return Status::kOk;
}

void KvssdDevice::submit_put(Bytes key, Bytes value, Callback cb) {
  queue_.push_back({OpType::kPut, std::move(key), std::move(value),
                    std::move(cb), {}, clock_.now()});
}

void KvssdDevice::submit_get(Bytes key, Callback cb) {
  queue_.push_back(
      {OpType::kGet, std::move(key), {}, std::move(cb), {}, clock_.now()});
}

void KvssdDevice::submit_get(Bytes key, GetCallback cb) {
  queue_.push_back(
      {OpType::kGet, std::move(key), {}, {}, std::move(cb), clock_.now()});
}

void KvssdDevice::submit_del(Bytes key, Callback cb) {
  queue_.push_back(
      {OpType::kDel, std::move(key), {}, std::move(cb), {}, clock_.now()});
}

void KvssdDevice::submit_put_tagged(std::uint64_t tag, Bytes key, Bytes value) {
  queue_.push_back({OpType::kPut, std::move(key), std::move(value), {}, {},
                    clock_.now(), tag, /*tagged=*/true});
}

void KvssdDevice::submit_get_tagged(std::uint64_t tag, Bytes key) {
  queue_.push_back({OpType::kGet, std::move(key), {}, {}, {}, clock_.now(),
                    tag, /*tagged=*/true});
}

void KvssdDevice::submit_del_tagged(std::uint64_t tag, Bytes key) {
  queue_.push_back({OpType::kDel, std::move(key), {}, {}, {}, clock_.now(),
                    tag, /*tagged=*/true});
}

std::size_t KvssdDevice::drain() {
  std::size_t completed = 0;
  std::vector<QueuedOp> ops;
  std::vector<std::uint32_t> order;
  std::vector<api::TaggedCompletion> batch;
  Bytes value;
  // Outer loop: callbacks may submit follow-up commands; they drain in
  // the same call, as with the previous strictly-serial implementation.
  while (!queue_.empty()) {
    ops.assign(std::make_move_iterator(queue_.begin()),
               std::make_move_iterator(queue_.end()));
    queue_.clear();
    // One epoch per drained batch (not per op): snapshot granularity is
    // the queue snapshot, matching the paper's batch-ack semantics.
    begin_mutation_batch();

    // Index-aware batch drain: execute the snapshot grouped by the
    // index's locality bucket, so a record page is loaded once per group
    // instead of once per op under cache pressure. The sort is stable
    // and same-key ops share a signature (hence a group), so per-key
    // ordering — the only ordering the async API guarantees — holds.
    order.resize(ops.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    if (cfg_.batch_drain_grouping && ops.size() > 1) {
      // (group, submit index) pairs under plain std::sort yield the same
      // permutation a stable sort by group alone would — the index
      // component breaks ties in submission order — without the merge
      // buffer and comparator indirection stable_sort pays per batch.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(ops.size());
      for (std::uint32_t i = 0; i < keyed.size(); ++i) {
        keyed[i] = {index_->locality_group(signature(ops[i].key)), i};
      }
      std::sort(keyed.begin(), keyed.end());
      for (std::size_t i = 0; i < keyed.size(); ++i) order[i] = keyed[i].second;
    }

    for (const std::uint32_t i : order) {
      QueuedOp& op = ops[i];
      const SimTime t0 = clock_.now();
      charge_command(/*async=*/true);
      obs::OpTrace tr;
      bool traced = false;
      Status s = Status::kOk;
      switch (op.type) {
        case OpType::kPut:
          traced = obs_begin(tr, obs::OpKind::kPut, t0, op.enqueue_ns);
          s = put_locked(op.key, op.value);
          stats_.put_latency_ns.record(clock_.now() - t0);
          if (traced) obs_finish(tr, s, put_timers_);
          break;
        case OpType::kGet:
          value.clear();
          traced = obs_begin(tr, obs::OpKind::kGet, t0, op.enqueue_ns);
          s = get_locked(op.key, &value);
          stats_.get_latency_ns.record(clock_.now() - t0);
          if (traced) obs_finish(tr, s, get_timers_);
          break;
        case OpType::kDel:
          traced = obs_begin(tr, obs::OpKind::kDel, t0, op.enqueue_ns);
          s = del_locked(op.key);
          if (traced) obs_finish(tr, s, del_timers_);
          break;
      }
      if (op.tagged) {
        // Fast path: no per-op dispatch — the whole batch crosses to the
        // sink in one call after the snapshot finishes.
        api::TaggedCompletion tc;
        tc.tag = op.tag;
        tc.op = op.type == OpType::kPut   ? api::TaggedCompletion::Op::kPut
                : op.type == OpType::kGet ? api::TaggedCompletion::Op::kGet
                                          : api::TaggedCompletion::Op::kDel;
        tc.status = s;
        tc.key = std::move(op.key);
        if (op.type == OpType::kGet) {
          tc.value = std::move(value);
          value.clear();
        }
        batch.push_back(std::move(tc));
      } else if (op.get_cb) {
        op.get_cb(s, std::move(value));
        value.clear();
      } else if (op.cb) {
        op.cb(s);
      }
      ++completed;
    }
    if (!batch.empty()) {
      if (sink_) sink_(std::move(batch));
      batch.clear();
    }
    if (ckpt_) ckpt_->tick();
    gc_tick();
  }
  return completed;
}

Status KvssdDevice::flush() {
  if (Status s = store_->flush(); !ok(s)) return s;
  if (Status s = index_->flush(); !ok(s)) return s;
  // Journal durability rides on flush: acked-but-unflushed ops are the
  // only ones a crash may roll back, so records for flushed ops must be
  // on flash before flush() reports success.
  return ckpt_ ? ckpt_->flush_journal() : Status::kOk;
}

// -- Observability -------------------------------------------------------------

KvssdDevice::StageTimers KvssdDevice::make_stage_timers(const char* op) {
  const std::string base = std::string("op.") + op;
  StageTimers t;
  t.total = &metrics_.timer(base + ".total_ns");
  t.queue = &metrics_.timer(base + ".queue_ns");
  t.index = &metrics_.timer(base + ".index_ns");
  t.flash = &metrics_.timer(base + ".flash_ns");
  t.gc = &metrics_.timer(base + ".gc_ns");
  t.flash_reads = &metrics_.timer(base + ".flash_reads");
  t.index_reads = &metrics_.timer(base + ".index_flash_reads");
  return t;
}

bool KvssdDevice::obs_begin(obs::OpTrace& tr, obs::OpKind kind,
                            SimTime exec_start, SimTime enqueue_ns) {
  if (!cfg_.obs.metrics) return false;
  tr.seq = op_seq_++;
  tr.kind = kind;
  tr.start_ns = exec_start;
  tr.queue_ns = exec_start - enqueue_ns;
  tr.nand_reads_at_start = nand_->stats().page_reads;
  tr.index_reads_at_start = index_->op_stats().flash_reads;
  active_trace_ = &tr;
  return true;
}

void KvssdDevice::obs_finish(obs::OpTrace& tr, Status s,
                             const StageTimers& timers) {
  active_trace_ = nullptr;
  tr.status = s;
  tr.total_ns = clock_.now() - tr.start_ns;
  tr.flash_reads = nand_->stats().page_reads - tr.nand_reads_at_start;
  tr.index_flash_reads =
      index_->op_stats().flash_reads - tr.index_reads_at_start;

  timers.total->record(tr.total_ns);
  timers.queue->record(tr.queue_ns);
  timers.index->record(tr.stage(obs::Stage::kIndex));
  timers.flash->record(tr.stage(obs::Stage::kFlash));
  timers.gc->record(tr.stage(obs::Stage::kGc));
  timers.flash_reads->record(tr.flash_reads);
  timers.index_reads->record(tr.index_flash_reads);

  if (cfg_.obs.trace_sample_every != 0 &&
      tr.seq % cfg_.obs.trace_sample_every == 0) {
    trace_ring_.push(tr);
  }
  if (dump_fn_ && cfg_.obs.dump_period_ns > 0 && clock_.now() >= next_dump_ns_) {
    // Catch up past periods in one fire (ops can jump the sim clock).
    const SimTime now = clock_.now();
    while (next_dump_ns_ <= now) next_dump_ns_ += cfg_.obs.dump_period_ns;
    dump_fn_(now, metrics_snapshot());
  }
}

void KvssdDevice::set_metrics_dump(MetricsDumpFn fn) {
  dump_fn_ = std::move(fn);
  next_dump_ns_ = clock_.now() + cfg_.obs.dump_period_ns;
}

obs::MetricsSnapshot KvssdDevice::metrics_snapshot() const {
  obs::MetricsSnapshot snap;
  snap.captured_at_ns = clock_.now();
  metrics_.snapshot_into(snap);
  stats_.publish(snap);
  nand_->stats().publish(snap);
  gc_->stats().publish(snap);
  store_->stats().publish(snap);
  index_->op_stats().publish(snap);
  index_->cache_stats().publish(snap);
  if (const flash::FaultInjector* fi = nand_->fault_injector()) {
    fi->stats().publish(snap);
  }
  if (ckpt_) ckpt_->stats().publish(snap);
  if (recovered_) recovered_->publish(snap);

  snap.add_counter("trace.recorded", trace_ring_.recorded());
  // Write amplification in milli-units: (user bytes + GC-relocated
  // bytes) / user bytes * 1000, so 1000 means no relocation overhead.
  const std::uint64_t user_bytes = stats_.bytes_put;
  const std::int64_t wa_milli =
      user_bytes == 0
          ? 1000
          : static_cast<std::int64_t>(
                (user_bytes + gc_->stats().bytes_relocated) * 1000 / user_bytes);
  snap.set_gauge("gc.wa", wa_milli, obs::MergeMode::kMax);
  // Max/mean block erase-count spread over the log region, milli-units.
  snap.set_gauge(
      "nand.erase_spread",
      static_cast<std::int64_t>(
          ftl::erase_spread(*nand_, alloc_->first_reserved_block()) * 1000.0),
      obs::MergeMode::kMax);
  snap.set_gauge("clock.now_ns", static_cast<std::int64_t>(clock_.now()),
                 obs::MergeMode::kMax);
  snap.set_gauge("clock.stall_ns",
                 static_cast<std::int64_t>(clock_.total_stall()),
                 obs::MergeMode::kMax);
  snap.set_gauge("device.live_bytes", static_cast<std::int64_t>(live_bytes_));
  // MVCC snapshot state. The registry/epoch gauges merge with kMax: in an
  // array every shard reports the SAME shared context, so summing would
  // multiply by the shard count.
  snaps_->registry.stats().publish(snap);
  retainer_->stats().publish(snap);
  snap.set_gauge("snapshot.epoch",
                 static_cast<std::int64_t>(snaps_->epochs.current()),
                 obs::MergeMode::kMax);
  snap.set_gauge("snapshot.open_pins",
                 static_cast<std::int64_t>(snaps_->registry.open_pins()),
                 obs::MergeMode::kMax);
  snap.set_gauge("snapshot.retained_bytes",
                 static_cast<std::int64_t>(snaps_->registry.retained_bytes()),
                 obs::MergeMode::kMax);
  snap.set_gauge("retainer.versions",
                 static_cast<std::int64_t>(retainer_->size()));
  snap.set_gauge("device.key_count", static_cast<std::int64_t>(index_->size()));
  snap.set_gauge("index.size", static_cast<std::int64_t>(index_->size()));
  snap.set_gauge("index.capacity", static_cast<std::int64_t>(index_->capacity()));
  snap.set_gauge("index.dram_bytes",
                 static_cast<std::int64_t>(index_->dram_bytes()));
  return snap;
}

}  // namespace rhik::kvssd
