// Emulated Key-Value SSD (paper §II, §IV-C).
//
// Wires the substrates together the way Fig. 3 draws them: NAND array,
// two allocation streams (KV zone / index zone), the log-structured KV
// data path, a pluggable index (RHIK or the multi-level baseline) behind
// a byte-budgeted DRAM cache, and the garbage collector.
//
// The command set mirrors the five vendor-specific NVMe commands of the
// Samsung KVSSD: put, get, delete, exist, iterate (§II-A). Commands can
// be issued synchronously or through an asynchronous submission queue;
// async submission pipelines the fixed per-command overhead across the
// queue depth, which is how the emulator reproduces the sync/async
// throughput gap of Fig. 6.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "common/histogram.hpp"
#include "common/sim_clock.hpp"
#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/mvcc.hpp"
#include "ftl/page_allocator.hpp"
#include "index/index.hpp"
#include "kvssd/checkpoint.hpp"
#include "kvssd/config.hpp"
#include "kvssd/iterator.hpp"
#include "kvssd/recovery.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rhik::kvssd {

struct DeviceStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t exists = 0;
  std::uint64_t iterates = 0;
  std::uint64_t bytes_put = 0;
  std::uint64_t bytes_got = 0;
  std::uint64_t not_found = 0;
  std::uint64_t batches = 0;            ///< compound commands executed
  std::uint64_t collision_rejects = 0;  ///< index collision aborts (§IV-A1)
  std::uint64_t device_full = 0;
  std::uint64_t gc_invocations = 0;
  Histogram put_latency_ns;
  Histogram get_latency_ns;

  /// Accumulates another device's stats (used by the sharded front-end
  /// to report whole-array figures).
  void merge_from(const DeviceStats& o) {
    puts += o.puts;
    gets += o.gets;
    deletes += o.deletes;
    exists += o.exists;
    iterates += o.iterates;
    bytes_put += o.bytes_put;
    bytes_got += o.bytes_got;
    not_found += o.not_found;
    batches += o.batches;
    collision_rejects += o.collision_rejects;
    device_full += o.device_full;
    gc_invocations += o.gc_invocations;
    put_latency_ns.merge(o.put_latency_ns);
    get_latency_ns.merge(o.get_latency_ns);
  }

  /// Registers these counters into a metrics snapshot (`device.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("device.puts", puts);
    snap.add_counter("device.gets", gets);
    snap.add_counter("device.deletes", deletes);
    snap.add_counter("device.exists", exists);
    snap.add_counter("device.iterates", iterates);
    snap.add_counter("device.bytes_put", bytes_put);
    snap.add_counter("device.bytes_got", bytes_got);
    snap.add_counter("device.not_found", not_found);
    snap.add_counter("device.batches", batches);
    snap.add_counter("device.collision_rejects", collision_rejects);
    snap.add_counter("device.device_full", device_full);
    snap.add_counter("device.gc_invocations", gc_invocations);
    snap.add_timer("device.put_latency_ns", put_latency_ns);
    snap.add_timer("device.get_latency_ns", get_latency_ns);
  }
};

class KvssdDevice : public api::IKvsBackend {
 public:
  explicit KvssdDevice(DeviceConfig cfg);
  ~KvssdDevice() override;

  /// Power-loss recovery: rebuilds a device over the NAND array of a
  /// previous instance (see kvssd/recovery.hpp). The config's geometry
  /// must match the array's. The array is power-cycled first (volatile
  /// wear RAM and stats cleared; an attached fault injector re-powered),
  /// then the log is scanned — torn pages are detected by CRC and
  /// truncated. Anything that was only in the previous device's RAM
  /// write buffer is lost, as on real hardware. Scan details are
  /// reported through `stats_out` when non-null.
  static Result<std::unique_ptr<KvssdDevice>> recover(
      DeviceConfig cfg, std::unique_ptr<flash::NandDevice> nand,
      RecoveryStats* stats_out = nullptr);

  /// Relinquishes the NAND array (simulating power-off); the device must
  /// not be used afterwards. Call flush() first for clean shutdown.
  std::unique_ptr<flash::NandDevice> release_nand();

  KvssdDevice(const KvssdDevice&) = delete;
  KvssdDevice& operator=(const KvssdDevice&) = delete;

  // -- Synchronous KV command set (the api::IKvsBackend verb set) -------------
  Status put(ByteSpan key, ByteSpan value) override;
  Status get(ByteSpan key, Bytes* value_out) override;
  Status del(ByteSpan key) override;
  /// Membership by key signature only — probabilistic (§IV-A3): may
  /// report kOk for an absent key on a signature collision.
  Status exist(ByteSpan key) override;
  /// §VI extension: enumerate stored keys sharing a prefix (one-shot
  /// convenience over the iterator commands below). Requires
  /// DeviceConfig::prefix_signatures. Keys are verified against the
  /// actual prefix (flash reads), so results are exact.
  Status iterate_prefix(ByteSpan prefix, std::vector<Bytes>* keys_out,
                        std::size_t limit = SIZE_MAX) override;

  // -- MVCC snapshots (DESIGN.md §13) ----------------------------------------
  /// Pins the current epoch. Reads through the handle see exactly the
  /// device state as of the pin, until release_snapshot (or expiry by
  /// the retention budget / a power cycle → kSnapshotTooOld).
  Result<api::SnapshotHandle> open_snapshot() override;
  Status release_snapshot(const api::SnapshotHandle& snap) override;
  /// Point read as of the snapshot's epoch: serves the current version
  /// when its stamp is old enough, else the retainer's covering version.
  Status read_at(const api::SnapshotHandle& snap, ByteSpan key,
                 Bytes* value_out) override;

  // -- Iterator command set (§II-A; key+value iteration is the §VI
  // -- extension absent from Samsung KVSSD) ----------------------------------
  /// Opens a device-level iterator. Pins its own snapshot internally, so
  /// every iterator is consistent by default (DESIGN.md §13).
  Result<std::uint32_t> open_iterator(ByteSpan prefix, IteratorOptions opts = {});
  /// kOk with entries while any remain; kNotFound at iterator end;
  /// kSnapshotTooOld if the backing pin was expired mid-scan.
  Status iterator_next(std::uint32_t handle, std::size_t max_entries,
                       std::vector<IteratorEntry>* out);
  Status close_iterator(std::uint32_t handle);

  // -- SNIA-style streaming key iterators (api::IKvsBackend) -----------------
  Result<std::uint64_t> kvs_open_iterator(ByteSpan prefix,
                                          const api::SnapshotHandle* snap) override;
  Status kvs_iterator_next(std::uint64_t handle, std::size_t max_keys,
                           std::vector<Bytes>* keys_out) override;
  Status kvs_close_iterator(std::uint64_t handle) override;

  /// Compound command (Kim et al., HotStorage'19 [8]): executes a group
  /// of KV operations under a single NVMe round trip — one fixed command
  /// overhead for the whole group. Per-op status (and get values) are
  /// written back into the ops.
  struct BatchOp {
    enum class Kind : std::uint8_t { kPut, kGet, kDel, kExist } kind = Kind::kPut;
    Bytes key;
    Bytes value;  ///< put input / get output
    Status status = Status::kOk;
  };
  Status execute_batch(std::vector<BatchOp>& ops);

  // -- Asynchronous submission --------------------------------------------------
  using Callback = api::IKvsBackend::Callback;
  using GetCallback = api::IKvsBackend::GetCallback;
  void submit_put(Bytes key, Bytes value, Callback cb = {}) override;
  void submit_get(Bytes key, Callback cb = {});
  /// Get whose completion receives the value read (empty on non-kOk).
  void submit_get(Bytes key, GetCallback cb) override;
  void submit_del(Bytes key, Callback cb = {}) override;
  /// Executes all queued commands; returns how many completed. When
  /// DeviceConfig::batch_drain_grouping is set, commands are executed
  /// grouped by the index's locality bucket (stable within a group, so
  /// same-key commands keep submission order).
  std::size_t drain() override;

  // -- Tagged submission (batched completion fast path) ------------------------
  /// Tagged ops complete through the sink, one call per drained batch,
  /// instead of one std::function dispatch per op (api::IKvsBackend).
  void set_completion_sink(api::IKvsBackend::CompletionSink sink) override {
    sink_ = std::move(sink);
  }
  void submit_put_tagged(std::uint64_t tag, Bytes key, Bytes value) override;
  void submit_get_tagged(std::uint64_t tag, Bytes key) override;
  void submit_del_tagged(std::uint64_t tag, Bytes key) override;

  /// Persists buffered data and index state (and, with checkpointing
  /// enabled, the buffered index-delta journal records).
  Status flush() override;

  /// Runs one background GC quantum if reclamation is pending
  /// (DeviceConfig::gc). Idle-window hook: the sharded front-end's
  /// workers call this while their submission ring is empty, and the
  /// device itself ticks it after every foreground op. Returns true when
  /// work was done (callers may keep pumping until false).
  bool pump_background() override;

  /// Synchronously takes an index checkpoint (DESIGN.md §8). kUnsupported
  /// unless DeviceConfig::checkpoint.enabled; kBusy while the index is
  /// mid-maintenance (resize migration). The destructor also checkpoints,
  /// so a cleanly destroyed device always restarts on the fast path.
  Status checkpoint_now();
  Status checkpoint() override { return checkpoint_now(); }

  /// Copy of the operation counters (api::IKvsBackend facade).
  DeviceStats stats_snapshot() override { return stats_; }

  /// The checkpoint manager, or nullptr when checkpointing is disabled.
  [[nodiscard]] CheckpointManager* checkpoint_manager() noexcept {
    return ckpt_.get();
  }

  // -- Introspection ---------------------------------------------------------------
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] flash::NandDevice& nand() noexcept { return *nand_; }
  [[nodiscard]] index::IIndex& index() noexcept { return *index_; }
  [[nodiscard]] ftl::PageAllocator& allocator() noexcept { return *alloc_; }
  [[nodiscard]] ftl::FlashKvStore& store() noexcept { return *store_; }
  [[nodiscard]] ftl::GarbageCollector& gc() noexcept { return *gc_; }
  /// The snapshot context (device-owned, or the shared one installed via
  /// DeviceConfig::snapshots) and the per-device version retainer.
  [[nodiscard]] ftl::SnapshotContext& snapshots() noexcept { return *snaps_; }
  [[nodiscard]] ftl::VersionRetainer& version_retainer() noexcept {
    return *retainer_;
  }
  [[nodiscard]] const DeviceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  // -- Observability ---------------------------------------------------------------
  /// One coherent snapshot across every layer of this device: the obs
  /// registry (per-stage op timers, trace-ring counters) plus every
  /// component's stats — device, NAND, GC, data log, index, index cache,
  /// the fault injector when one is attached, the recovery scan when
  /// this device was recovered — and the sim clock as max-merged gauges.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;
  obs::MetricsSnapshot metrics_snapshot() override {
    return static_cast<const KvssdDevice&>(*this).metrics_snapshot();
  }
  /// The device's metric registry. Callers may register further metrics;
  /// they ride along in metrics_snapshot().
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// Recent sampled per-op traces (ObsConfig::trace_sample_every).
  [[nodiscard]] const obs::TraceRing& trace_ring() const noexcept {
    return trace_ring_;
  }
  /// Periodic sim-clock-driven exporter: with ObsConfig::dump_period_ns
  /// > 0, `fn` receives a fresh snapshot every period of simulated time
  /// (checked at op completion, so a dump may fire late, never early).
  using MetricsDumpFn =
      std::function<void(SimTime, const obs::MetricsSnapshot&)>;
  void set_metrics_dump(MetricsDumpFn fn);

  /// Number of live KV pairs (== index size).
  [[nodiscard]] std::uint64_t key_count() const { return index_->size(); }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return nand_->geometry().capacity_bytes();
  }
  /// Bytes of live user data currently stored.
  [[nodiscard]] std::uint64_t live_bytes() const noexcept { return live_bytes_; }

  /// Key signature exactly as the device computes it (§IV-A).
  [[nodiscard]] std::uint64_t signature(ByteSpan key) const;
  /// Same computation without a device instance (the sharded front-end
  /// partitions by signature before any shard is consulted).
  [[nodiscard]] static std::uint64_t signature_for(const DeviceConfig& cfg,
                                                   ByteSpan key);

 private:
  /// Shared wiring; `nand` may be an adopted (recovered) array.
  KvssdDevice(DeviceConfig cfg, std::unique_ptr<flash::NandDevice> nand);

  enum class OpType : std::uint8_t { kPut, kGet, kDel };
  struct QueuedOp {
    OpType type;
    Bytes key;
    Bytes value;
    Callback cb;
    GetCallback get_cb;
    SimTime enqueue_ns = 0;  ///< submission time (trace queue-wait span)
    std::uint64_t tag = 0;   ///< tagged path: echoed in the completion
    bool tagged = false;     ///< complete via sink_, not cb/get_cb
  };

  Status put_locked(ByteSpan key, ByteSpan value);
  Status get_locked(ByteSpan key, Bytes* value_out);
  Status del_locked(ByteSpan key);

  /// Advances the global epoch and stamps this mutation batch with the
  /// new value. Called once per synchronous mutation and once per drain
  /// batch — ops of one batch share a stamp (DESIGN.md §13).
  void begin_mutation_batch() noexcept {
    mutation_epoch_ = snaps_->epochs.advance();
  }
  /// Overwrite/delete path: hands the dying version to the retainer when
  /// any snapshot is pinned, else surrenders its stale credit now.
  void retire_version(std::uint64_t sig, flash::Ppa ppa, std::uint64_t epoch,
                      std::uint64_t total_bytes);

  /// Charges the per-command cost; async commands amortize it over the
  /// queue depth.
  void charge_command(bool async);

  /// Runs foreground GC if free space is low. Returns kDeviceFull only
  /// when nothing could be reclaimed.
  Status maybe_gc();

  /// End-of-op background GC step (runs outside the op's latency
  /// window, like the checkpoint pump).
  void gc_tick();

  /// Connects the index's journal feed and the allocator's pre-erase
  /// flush to the checkpoint manager. Deferred until after recovery
  /// replay so the replay itself is not re-journaled.
  void enable_journaling();
  /// Checkpoint fast path: load the image, adopt blocks from write
  /// points alone, replay the journal tail. Any failure leaves the
  /// device partially mutated — the caller rebuilds it and full-scans.
  Status restore_from_checkpoint(const CheckpointManager::Found& found,
                                 RecoveryStats& stats);

  // -- Observability internals ------------------------------------------------
  /// Pre-resolved registry timers for one op kind (lookup once, record
  /// per op without touching the registry mutex).
  struct StageTimers {
    obs::Timer* total = nullptr;
    obs::Timer* queue = nullptr;
    obs::Timer* index = nullptr;
    obs::Timer* flash = nullptr;
    obs::Timer* gc = nullptr;
    obs::Timer* flash_reads = nullptr;
    obs::Timer* index_reads = nullptr;
  };
  StageTimers make_stage_timers(const char* op);
  /// Arms `tr` as the active trace (captures read-amp baselines).
  /// Returns false — and arms nothing — when obs metrics are off.
  bool obs_begin(obs::OpTrace& tr, obs::OpKind kind, SimTime exec_start,
                 SimTime enqueue_ns);
  /// Completes the active trace: records the stage timers, samples the
  /// ring, and fires the periodic dump hook when due.
  void obs_finish(obs::OpTrace& tr, Status s, const StageTimers& timers);
  const StageTimers& timers_for(OpType t) const noexcept {
    return t == OpType::kPut ? put_timers_
           : t == OpType::kGet ? get_timers_
                               : del_timers_;
  }

  DeviceConfig cfg_;
  SimClock clock_;
  std::unique_ptr<flash::NandDevice> nand_;
  std::unique_ptr<ftl::PageAllocator> alloc_;
  std::unique_ptr<ftl::FlashKvStore> store_;
  std::unique_ptr<index::IIndex> index_;
  std::unique_ptr<ftl::GarbageCollector> gc_;
  /// Owned when DeviceConfig::snapshots is null; `snaps_` always valid.
  std::unique_ptr<ftl::SnapshotContext> owned_snaps_;
  ftl::SnapshotContext* snaps_ = nullptr;
  std::unique_ptr<ftl::VersionRetainer> retainer_;
  /// Epoch stamped on the current mutation batch (begin_mutation_batch).
  std::uint64_t mutation_epoch_ = 0;
  std::unique_ptr<CheckpointManager> ckpt_;
  /// Ghost pairs folded by the last fast restore, pending re-journaling.
  /// See restore_from_checkpoint.
  struct Rejournal {
    std::uint64_t sig;
    flash::Ppa ppa;
    bool tombstone;
  };
  std::vector<Rejournal> rejournal_;

  std::deque<QueuedOp> queue_;
  api::IKvsBackend::CompletionSink sink_;  ///< tagged-batch completion sink
  std::unique_ptr<IteratorManager> iter_mgr_;
  std::uint64_t live_bytes_ = 0;
  DeviceStats stats_;

  obs::MetricsRegistry metrics_;
  obs::TraceRing trace_ring_;
  StageTimers put_timers_, get_timers_, del_timers_;
  obs::OpTrace* active_trace_ = nullptr;  ///< stage scopes write here
  std::uint64_t op_seq_ = 0;
  MetricsDumpFn dump_fn_;
  SimTime next_dump_ns_ = 0;
  std::optional<RecoveryStats> recovered_;  ///< set by recover()
};

}  // namespace rhik::kvssd
