// Emulated KVSSD device configuration.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/sim_clock.hpp"
#include "flash/geometry.hpp"
#include "flash/latency.hpp"
#include "ftl/page_allocator.hpp"
#include "index/mlhash/mlhash_index.hpp"
#include "index/rhik/config.hpp"
#include "obs/trace.hpp"

namespace rhik::ftl {
struct SnapshotContext;
}

namespace rhik::kvssd {

enum class IndexKind : std::uint8_t {
  kRhik,    ///< the paper's re-configurable two-level hash index
  kMlHash,  ///< baseline multi-level hash index (Samsung KVSSD style)
};

/// Index checkpointing + delta journaling (DESIGN.md §8). When enabled, a
/// tail region of the device is reserved for two alternating checkpoint
/// slots plus a journal ring, and `KvssdDevice::recover` restores the
/// index from the newest valid checkpoint + journal tail instead of
/// scanning every programmed page (falling back to the full scan when
/// both slots are corrupt).
struct CheckpointConfig {
  bool enabled = false;
  /// Erase blocks per checkpoint slot (two slots are reserved).
  std::uint32_t slot_blocks = 1;
  /// Erase blocks for the index-delta journal ring.
  std::uint32_t journal_blocks = 2;
  /// A checkpoint is started once this many pages were programmed since
  /// the last durable checkpoint. 0 = only explicit / destructor-time
  /// checkpoints.
  std::uint64_t dirty_pages = 4096;
  /// Checkpoint payload pages programmed per foreground-op pump step
  /// (incremental, like RHIK's pump_migration).
  std::uint32_t pump_pages = 8;
};

/// Garbage collection & wear leveling (DESIGN.md §9). The device default
/// is the hot/cold-aware incremental collector; set `policy = kGreedy`,
/// `hot_cold_separation = false` and `background_free_blocks = 0` to get
/// the original synchronous greedy reclaim back.
struct GcConfig {
  /// Victim selection: greedy least-live-bytes, or cost-benefit
  /// (1-u)/(2u)·age with an erase-count wear tiebreak.
  ftl::GcPolicy policy = ftl::GcPolicy::kCostBenefit;
  /// Steer GC-relocated (cold) pairs and fresh (hot) writes into
  /// separate open blocks (HashKV-style separation).
  bool hot_cold_separation = true;
  /// Background GC engages when the free pool drops below this many
  /// blocks (should sit above gc_reserve_blocks so foreground reclaim
  /// stays the exception). 0 disables background quanta entirely.
  std::uint32_t background_free_blocks = 8;
  /// Victim pages relocated per background quantum (`gc_quantum_pages`
  /// knob): bounds the work injected into one idle window.
  std::uint32_t quantum_pages = 32;
  /// Static wear pass triggers when max/mean block erase count exceeds
  /// this ratio (`wear_leveling_threshold` knob); <= 0 disables it.
  double wear_leveling_threshold = 1.5;
  /// Background ticks between static-wear checks.
  std::uint32_t wear_check_quanta = 64;
};

struct DeviceConfig {
  flash::Geometry geometry{};  ///< paper default: 32 KiB pages, 256/block
  flash::NandLatency latency = flash::NandLatency::kvemu_defaults();

  IndexKind index_kind = IndexKind::kRhik;
  index::RhikConfig rhik{};
  index::MlHashConfig mlhash{};

  /// SSD DRAM budget for the index page cache (Fig. 5 uses 10 MB for a
  /// 10 GB device — 1 MB per GB).
  std::uint64_t dram_cache_bytes = 10 * 1024 * 1024;

  /// Blocks withheld for GC relocation headroom.
  std::uint32_t gc_reserve_blocks = 4;
  /// Foreground GC runs until this many free blocks exist.
  std::uint32_t gc_target_free_blocks = 6;
  /// GC policy, hot/cold separation, background scheduling and wear
  /// leveling (DESIGN.md §9).
  GcConfig gc{};

  // -- Command processing model (KVEMU-style IOPS model) ---------------------
  /// Fixed firmware + NVMe round-trip cost charged per command. In async
  /// mode this cost is pipelined across the queue depth.
  SimTime cmd_overhead_ns = 6 * kMicrosecond;
  /// Queue depth for asynchronous submission.
  std::uint32_t queue_depth = 64;
  /// Index-aware batch drain: execute queued async commands grouped by
  /// the index's locality bucket (sig & dir_mask for RHIK) so each
  /// record page is loaded once per group instead of once per op.
  /// Same-signature commands keep their submission order; per-op status,
  /// callback and latency semantics are unchanged.
  bool batch_drain_grouping = true;

  /// SNIA KV API key length cap.
  std::uint32_t max_key_size = 255;

  /// §VI extension: derive key signatures from a 4 B key-prefix hash plus
  /// a 4 B suffix hash, enabling prefix iteration.
  bool prefix_signatures = false;
  /// §VI alternative: 128-bit signature generation for collision
  /// analysis (the index still addresses by the low 64 bits).
  bool wide_signatures = false;

  /// Observability: per-op stage metrics, trace-ring sampling and the
  /// periodic dump hook (see obs/trace.hpp for the knobs).
  obs::ObsConfig obs{};

  /// Index checkpointing for O(dirty) restart. Default off: recovery then
  /// always performs the full-device scan.
  CheckpointConfig checkpoint{};

  // -- MVCC snapshots (DESIGN.md §13) ----------------------------------------
  /// Shared epoch source + snapshot pin registry. Non-owning: the sharded
  /// array installs ONE context across every shard so a snapshot pins one
  /// device-global epoch. When null (the default) the device owns a
  /// private context — single-device snapshots still work.
  ftl::SnapshotContext* snapshots = nullptr;
  /// Budget for DRAM/flash bytes held only for pinned snapshots
  /// (superseded versions awaiting reclaim). When a mutation would push
  /// retention past this, the OLDEST pin is expired and its holder gets
  /// kSnapshotTooOld on next use — retryable with a fresh snapshot, and
  /// never torn data. 0 = unbounded.
  std::uint64_t snapshot_retention_bytes = 64ull * 1024 * 1024;
};

}  // namespace rhik::kvssd
