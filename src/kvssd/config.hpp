// Emulated KVSSD device configuration.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/sim_clock.hpp"
#include "flash/geometry.hpp"
#include "flash/latency.hpp"
#include "index/mlhash/mlhash_index.hpp"
#include "index/rhik/config.hpp"
#include "obs/trace.hpp"

namespace rhik::kvssd {

enum class IndexKind : std::uint8_t {
  kRhik,    ///< the paper's re-configurable two-level hash index
  kMlHash,  ///< baseline multi-level hash index (Samsung KVSSD style)
};

struct DeviceConfig {
  flash::Geometry geometry{};  ///< paper default: 32 KiB pages, 256/block
  flash::NandLatency latency = flash::NandLatency::kvemu_defaults();

  IndexKind index_kind = IndexKind::kRhik;
  index::RhikConfig rhik{};
  index::MlHashConfig mlhash{};

  /// SSD DRAM budget for the index page cache (Fig. 5 uses 10 MB for a
  /// 10 GB device — 1 MB per GB).
  std::uint64_t dram_cache_bytes = 10 * 1024 * 1024;

  /// Blocks withheld for GC relocation headroom.
  std::uint32_t gc_reserve_blocks = 4;
  /// Foreground GC runs until this many free blocks exist.
  std::uint32_t gc_target_free_blocks = 6;

  // -- Command processing model (KVEMU-style IOPS model) ---------------------
  /// Fixed firmware + NVMe round-trip cost charged per command. In async
  /// mode this cost is pipelined across the queue depth.
  SimTime cmd_overhead_ns = 6 * kMicrosecond;
  /// Queue depth for asynchronous submission.
  std::uint32_t queue_depth = 64;
  /// Index-aware batch drain: execute queued async commands grouped by
  /// the index's locality bucket (sig & dir_mask for RHIK) so each
  /// record page is loaded once per group instead of once per op.
  /// Same-signature commands keep their submission order; per-op status,
  /// callback and latency semantics are unchanged.
  bool batch_drain_grouping = true;

  /// SNIA KV API key length cap.
  std::uint32_t max_key_size = 255;

  /// §VI extension: derive key signatures from a 4 B key-prefix hash plus
  /// a 4 B suffix hash, enabling prefix iteration.
  bool prefix_signatures = false;
  /// §VI alternative: 128-bit signature generation for collision
  /// analysis (the index still addresses by the low 64 bits).
  bool wide_signatures = false;

  /// Observability: per-op stage metrics, trace-ring sampling and the
  /// periodic dump hook (see obs/trace.hpp for the knobs).
  obs::ObsConfig obs{};
};

}  // namespace rhik::kvssd
