// Emulated KVSSD device configuration.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/sim_clock.hpp"
#include "flash/geometry.hpp"
#include "flash/latency.hpp"
#include "index/mlhash/mlhash_index.hpp"
#include "index/rhik/config.hpp"
#include "obs/trace.hpp"

namespace rhik::kvssd {

enum class IndexKind : std::uint8_t {
  kRhik,    ///< the paper's re-configurable two-level hash index
  kMlHash,  ///< baseline multi-level hash index (Samsung KVSSD style)
};

/// Index checkpointing + delta journaling (DESIGN.md §8). When enabled, a
/// tail region of the device is reserved for two alternating checkpoint
/// slots plus a journal ring, and `KvssdDevice::recover` restores the
/// index from the newest valid checkpoint + journal tail instead of
/// scanning every programmed page (falling back to the full scan when
/// both slots are corrupt).
struct CheckpointConfig {
  bool enabled = false;
  /// Erase blocks per checkpoint slot (two slots are reserved).
  std::uint32_t slot_blocks = 1;
  /// Erase blocks for the index-delta journal ring.
  std::uint32_t journal_blocks = 2;
  /// A checkpoint is started once this many pages were programmed since
  /// the last durable checkpoint. 0 = only explicit / destructor-time
  /// checkpoints.
  std::uint64_t dirty_pages = 4096;
  /// Checkpoint payload pages programmed per foreground-op pump step
  /// (incremental, like RHIK's pump_migration).
  std::uint32_t pump_pages = 8;
};

struct DeviceConfig {
  flash::Geometry geometry{};  ///< paper default: 32 KiB pages, 256/block
  flash::NandLatency latency = flash::NandLatency::kvemu_defaults();

  IndexKind index_kind = IndexKind::kRhik;
  index::RhikConfig rhik{};
  index::MlHashConfig mlhash{};

  /// SSD DRAM budget for the index page cache (Fig. 5 uses 10 MB for a
  /// 10 GB device — 1 MB per GB).
  std::uint64_t dram_cache_bytes = 10 * 1024 * 1024;

  /// Blocks withheld for GC relocation headroom.
  std::uint32_t gc_reserve_blocks = 4;
  /// Foreground GC runs until this many free blocks exist.
  std::uint32_t gc_target_free_blocks = 6;

  // -- Command processing model (KVEMU-style IOPS model) ---------------------
  /// Fixed firmware + NVMe round-trip cost charged per command. In async
  /// mode this cost is pipelined across the queue depth.
  SimTime cmd_overhead_ns = 6 * kMicrosecond;
  /// Queue depth for asynchronous submission.
  std::uint32_t queue_depth = 64;
  /// Index-aware batch drain: execute queued async commands grouped by
  /// the index's locality bucket (sig & dir_mask for RHIK) so each
  /// record page is loaded once per group instead of once per op.
  /// Same-signature commands keep their submission order; per-op status,
  /// callback and latency semantics are unchanged.
  bool batch_drain_grouping = true;

  /// SNIA KV API key length cap.
  std::uint32_t max_key_size = 255;

  /// §VI extension: derive key signatures from a 4 B key-prefix hash plus
  /// a 4 B suffix hash, enabling prefix iteration.
  bool prefix_signatures = false;
  /// §VI alternative: 128-bit signature generation for collision
  /// analysis (the index still addresses by the low 64 bits).
  bool wide_signatures = false;

  /// Observability: per-op stage metrics, trace-ring sampling and the
  /// periodic dump hook (see obs/trace.hpp for the knobs).
  obs::ObsConfig obs{};

  /// Index checkpointing for O(dirty) restart. Default off: recovery then
  /// always performs the full-device scan.
  CheckpointConfig checkpoint{};
};

}  // namespace rhik::kvssd
