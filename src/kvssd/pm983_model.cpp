#include "kvssd/pm983_model.hpp"

#include <algorithm>

namespace rhik::kvssd {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

double Pm983Model::throughput_ops(OpDir dir, bool async,
                                  std::uint64_t value_size) const {
  const double size = static_cast<double>(std::max<std::uint64_t>(1, value_size));
  if (async) {
    const double iops = dir == OpDir::kWrite ? write_iops_cap : read_iops_cap;
    const double bw = (dir == OpDir::kWrite ? write_bw_mib : read_bw_mib) * kMiB;
    return std::min(iops, bw / size);
  }
  const double lat_us = dir == OpDir::kWrite ? write_latency_us : read_latency_us;
  const double bw = (dir == OpDir::kWrite ? write_bw_mib : read_bw_mib) * kMiB;
  // One outstanding command: fixed round trip plus transfer time.
  const double per_op_s = lat_us * 1e-6 + size / bw;
  return 1.0 / per_op_s;
}

double Pm983Model::throughput_mib(OpDir dir, bool async,
                                  std::uint64_t value_size) const {
  return throughput_ops(dir, async, value_size) *
         static_cast<double>(value_size) / kMiB;
}

}  // namespace rhik::kvssd
