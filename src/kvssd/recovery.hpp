// Crash / power-loss recovery.
//
// The paper motivates storing key signatures alongside the data in every
// flash page precisely so that "efficient garbage collection and crash
// consistency algorithms" can reconstruct state from flash (§I). This
// module implements that reconstruction for the emulated device:
//
//  1. Allocator state is rebuilt from the spare-area tags: every block
//     with programmed pages is adopted as sealed; empty blocks are free.
//  2. The index is rebuilt from the data log alone. Head pages carry a
//     monotonically increasing sequence number; pairs are globally
//     ordered by (epoch, page seq, in-page offset) — epoch-major because
//     GC may relocate snapshot-retained OLD versions into new pages with
//     their original MVCC stamps — so the newest version of every
//     signature wins, and a newest-version tombstone (durable deletion
//     record) means the key is absent.
//  3. Old index-zone pages are deliberately ignored: they carry no live
//     accounting after recovery, so GC reclaims them wholesale. The
//     directory-checkpoint fast path (RhikIndex::load_directory) remains
//     available for clean shutdowns. This also makes recovery immune to
//     an interrupted RHIK resize: old- and new-generation index pages
//     alike are dead weight, and the rebuilt index starts one clean
//     generation.
//
// The scan assumes the crash may have happened mid-operation:
//
//  - Every page carries a controller CRC in its reserved spare tail
//    (flash::kSpareReservedTail). A page whose CRC fails — torn by a
//    power cut — TRUNCATES the block's log at that page: later pages of
//    the block are unreachable by the in-order programming discipline
//    anyway. Torn pages are never parsed, so garbage spare bytes cannot
//    masquerade as a valid tag.
//  - A head page whose spilling pair lacks intact continuation pages is
//    dropped the same way: the pair was never acknowledged, and adopting
//    the head would shadow an older complete version of the key.
//  - Interrupted GC leaves the same pair in both source and destination
//    blocks; sequence order picks one winner and the loser stays stale.
//  - Per-block erase counts (volatile wear RAM on real hardware) are
//    re-derived from the wear stamp in each block's first intact page.
//
// Whatever sat in the device's RAM write buffer at crash time was never
// programmed and is — correctly — not recovered.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/page_allocator.hpp"
#include "index/index.hpp"

namespace rhik::kvssd {

struct RecoveryStats {
  std::uint64_t blocks_adopted = 0;
  std::uint64_t data_pages_scanned = 0;
  std::uint64_t pairs_seen = 0;
  std::uint64_t tombstones_seen = 0;
  std::uint64_t keys_recovered = 0;
  std::uint64_t live_bytes = 0;  ///< live user data after recovery
  std::uint64_t max_seq = 0;
  /// Highest MVCC epoch stamped on any durable pair — the epoch source
  /// is raised past this after a full scan so epochs never regress.
  std::uint64_t max_epoch = 0;
  std::uint64_t torn_pages_dropped = 0;       ///< programmed pages failing CRC/structure
  std::uint64_t incomplete_extents_dropped = 0;  ///< valid heads with a torn/missing tail
  std::uint64_t wear_blocks_restored = 0;     ///< erase counts re-derived from spare stamps
  /// Adopted blocks erased during recovery because nothing in them was
  /// live: stale index generations, torn tails, superseded data. Swept
  /// before the index rebuild so the rebuild cannot run out of space.
  std::uint64_t dead_blocks_reclaimed = 0;

  // -- Checkpoint fast path (DESIGN.md §8) ----------------------------------
  /// NAND pages read by recovery (the O(dirty) vs O(device) figure).
  std::uint64_t pages_read = 0;
  /// 1 when the index was restored from a checkpoint + journal tail.
  std::uint64_t checkpoint_restored = 0;
  /// 1 when checkpointing was enabled but recovery had to full-scan
  /// (no valid slot, torn journal tail, or a resize barrier).
  std::uint64_t full_scan_fallback = 0;
  std::uint64_t journal_pages_replayed = 0;
  std::uint64_t journal_records_replayed = 0;
  /// Version of the checkpoint restored (0 = none).
  std::uint64_t checkpoint_version = 0;

  /// Accumulates another shard's stats (max_seq takes the max).
  void merge_from(const RecoveryStats& other) noexcept;

  /// Registers these counters into a metrics snapshot (`recovery.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("recovery.blocks_adopted", blocks_adopted);
    snap.add_counter("recovery.data_pages_scanned", data_pages_scanned);
    snap.add_counter("recovery.pairs_seen", pairs_seen);
    snap.add_counter("recovery.tombstones_seen", tombstones_seen);
    snap.add_counter("recovery.keys_recovered", keys_recovered);
    snap.add_counter("recovery.torn_pages_dropped", torn_pages_dropped);
    snap.add_counter("recovery.incomplete_extents_dropped",
                     incomplete_extents_dropped);
    snap.add_counter("recovery.wear_blocks_restored", wear_blocks_restored);
    snap.add_counter("recovery.dead_blocks_reclaimed", dead_blocks_reclaimed);
    snap.add_counter("recovery.pages_read", pages_read);
    snap.add_counter("recovery.checkpoint_restored", checkpoint_restored);
    snap.add_counter("recovery.full_scan_fallback", full_scan_fallback);
    snap.add_counter("recovery.journal_pages_replayed", journal_pages_replayed);
    snap.add_counter("recovery.journal_records_replayed",
                     journal_records_replayed);
    snap.set_gauge("recovery.checkpoint_version",
                   static_cast<std::int64_t>(checkpoint_version),
                   obs::MergeMode::kMax);
    snap.add_counter("recovery.live_bytes", live_bytes);
    snap.set_gauge("recovery.max_seq", static_cast<std::int64_t>(max_seq),
                   obs::MergeMode::kMax);
    snap.set_gauge("recovery.max_epoch", static_cast<std::int64_t>(max_epoch),
                   obs::MergeMode::kMax);
  }
};

/// Scans the adopted NAND and reconstructs allocator, store sequence and
/// index state. `alloc`, `store` and `index` must be freshly constructed
/// over `nand` and untouched.
Result<RecoveryStats> recover_from_flash(flash::NandDevice& nand,
                                         ftl::PageAllocator& alloc,
                                         ftl::FlashKvStore& store,
                                         index::IIndex& index);

}  // namespace rhik::kvssd
