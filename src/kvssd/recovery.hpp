// Crash / power-loss recovery.
//
// The paper motivates storing key signatures alongside the data in every
// flash page precisely so that "efficient garbage collection and crash
// consistency algorithms" can reconstruct state from flash (§I). This
// module implements that reconstruction for the emulated device:
//
//  1. Allocator state is rebuilt from the spare-area tags: every block
//     with programmed pages is adopted as sealed; empty blocks are free.
//  2. The index is rebuilt from the data log alone. Head pages carry a
//     monotonically increasing sequence number; pairs are globally
//     ordered by (page seq, in-page offset), so the newest version of
//     every signature wins, and a newest-version tombstone (durable
//     deletion record) means the key is absent.
//  3. Old index-zone pages are deliberately ignored: they carry no live
//     accounting after recovery, so GC reclaims them wholesale. The
//     directory-checkpoint fast path (RhikIndex::load_directory) remains
//     available for clean shutdowns.
//
// Whatever sat in the device's RAM write buffer at crash time was never
// programmed and is — correctly — not recovered.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/page_allocator.hpp"
#include "index/index.hpp"

namespace rhik::kvssd {

struct RecoveryStats {
  std::uint64_t blocks_adopted = 0;
  std::uint64_t data_pages_scanned = 0;
  std::uint64_t pairs_seen = 0;
  std::uint64_t tombstones_seen = 0;
  std::uint64_t keys_recovered = 0;
  std::uint64_t live_bytes = 0;  ///< live user data after recovery
  std::uint64_t max_seq = 0;
};

/// Scans the adopted NAND and reconstructs allocator, store sequence and
/// index state. `alloc`, `store` and `index` must be freshly constructed
/// over `nand` and untouched.
Result<RecoveryStats> recover_from_flash(flash::NandDevice& nand,
                                         ftl::PageAllocator& alloc,
                                         ftl::FlashKvStore& store,
                                         index::IIndex& index);

}  // namespace rhik::kvssd
