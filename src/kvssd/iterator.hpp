// Iterator manager (paper §II-A, §VI; DESIGN.md §13).
//
// Samsung KVSSD exposes an `iterate` command that enumerates keys (or KV
// pairs) matching a search prefix, served by a log-structured iterator
// manager in firmware. RHIK §VI sketches how the same capability falls
// out of its structure: build signatures from a 4 B prefix hash plus a
// 4 B suffix hash, so all keys sharing a prefix form one signature class
// that an index scan can enumerate.
//
// Iterators are SNAPSHOT-BOUND: `open` pins an MVCC epoch (its own pin,
// or a caller-supplied snapshot via `open_at`) and gathers the candidate
// signature set — the index's current class members plus any retained
// versions covering the pinned epoch. `next` resolves every candidate AS
// OF that epoch: the current version when its stamp is old enough,
// otherwise the retainer's covering version, otherwise the key did not
// exist at the epoch. Keys mutated, deleted or GC-relocated mid-scan
// therefore still enumerate exactly their as-of-open state. The stored
// prefix is verified on every hit to weed out hash-class collisions.
// Like the real device, a bounded number of iterators may be open at
// once (kIteratorMax beyond that).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/mvcc.hpp"
#include "index/index.hpp"

namespace rhik::kvssd {

struct IteratorEntry {
  Bytes key;
  Bytes value;  ///< filled only for key+value iterators
};

struct IteratorOptions {
  bool include_values = false;  ///< KV iterator (absent in Samsung KVSSD, §VI)
};

class IteratorManager {
 public:
  /// Samsung firmware allows a handful of concurrent iterators.
  static constexpr std::uint32_t kMaxOpenIterators = 16;

  /// `registry`/`retainer` may be null (FTL-level tests): iterators then
  /// enumerate the open-time index snapshot without epoch resolution.
  IteratorManager(index::IIndex* index, ftl::FlashKvStore* store,
                  ftl::SnapshotRegistry* registry = nullptr,
                  ftl::VersionRetainer* retainer = nullptr);

  /// Opens an iterator over keys starting with `prefix`, pinning its own
  /// snapshot (released on close) so the view is consistent by default.
  Result<std::uint32_t> open(ByteSpan prefix, IteratorOptions opts = {});

  /// Opens an iterator bound to the caller's snapshot pin. The pin stays
  /// owned by the caller (close() does not release it); it must outlive
  /// the iterator or next() degrades to kSnapshotTooOld.
  Result<std::uint32_t> open_at(ByteSpan prefix, std::uint64_t pin_id,
                                IteratorOptions opts = {});

  /// Fetches up to `max_entries` further entries. Returns kOk while
  /// entries remain; kNotFound once the iterator is exhausted (the SNIA
  /// ITERATOR_END condition); kSnapshotTooOld when the backing pin was
  /// expired by the retention bound; kInvalidArgument for a bad handle.
  Status next(std::uint32_t handle, std::size_t max_entries,
              std::vector<IteratorEntry>* out);

  Status close(std::uint32_t handle);

  [[nodiscard]] std::size_t open_count() const noexcept { return iters_.size(); }

 private:
  struct OpenIterator {
    Bytes prefix;
    IteratorOptions opts;
    /// Candidate signatures with their open-time PPA. Pinned iterators
    /// re-resolve by signature at next() (the PPA is only a hint that
    /// may go stale under churn); unpinned legacy iterators read the
    /// hint directly.
    std::vector<std::pair<std::uint64_t, flash::Ppa>> candidates;
    std::size_t pos = 0;
    std::uint64_t pin_id = 0;  ///< 0 = unpinned (no registry) enumeration
    std::uint64_t epoch = ftl::kEpochMax;
    bool owns_pin = false;
  };

  Result<std::uint32_t> open_impl(ByteSpan prefix, IteratorOptions opts,
                                  std::uint64_t pin_id, std::uint64_t epoch,
                                  bool owns_pin);
  /// Resolves one candidate as of `it.epoch`; returns false to skip it.
  bool resolve_pinned(const OpenIterator& it, std::uint64_t sig,
                      IteratorEntry* entry);

  index::IIndex* index_;
  ftl::FlashKvStore* store_;
  ftl::SnapshotRegistry* registry_;
  ftl::VersionRetainer* retainer_;
  std::unordered_map<std::uint32_t, OpenIterator> iters_;
  std::uint32_t next_handle_ = 1;
};

}  // namespace rhik::kvssd
