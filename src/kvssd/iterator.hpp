// Iterator manager (paper §II-A, §VI).
//
// Samsung KVSSD exposes an `iterate` command that enumerates keys (or KV
// pairs) matching a search prefix, served by a log-structured iterator
// manager in firmware. RHIK §VI sketches how the same capability falls
// out of its structure: build signatures from a 4 B prefix hash plus a
// 4 B suffix hash, so all keys sharing a prefix form one signature class
// that an index scan can enumerate.
//
// This manager implements that design: `open` snapshots the matching
// (signature, PPA) set from the index; `next` returns batches of keys
// (optionally with values), verifying the actual stored prefix to weed
// out hash-class collisions. Like the real device, a bounded number of
// iterators may be open at once.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ftl/kv_store.hpp"
#include "index/index.hpp"

namespace rhik::kvssd {

struct IteratorEntry {
  Bytes key;
  Bytes value;  ///< filled only for key+value iterators
};

struct IteratorOptions {
  bool include_values = false;  ///< KV iterator (absent in Samsung KVSSD, §VI)
};

class IteratorManager {
 public:
  /// Samsung firmware allows a handful of concurrent iterators.
  static constexpr std::uint32_t kMaxOpenIterators = 16;

  IteratorManager(index::IIndex* index, ftl::FlashKvStore* store);

  /// Opens an iterator over keys starting with `prefix`. Snapshots the
  /// candidate set (later mutations are not reflected, matching the
  /// snapshot-ish semantics of the firmware iterator).
  Result<std::uint32_t> open(ByteSpan prefix, IteratorOptions opts = {});

  /// Fetches up to `max_entries` further entries. Returns kOk while
  /// entries remain; kNotFound once the iterator is exhausted (the SNIA
  /// ITERATOR_END condition); kInvalidArgument for a bad handle.
  Status next(std::uint32_t handle, std::size_t max_entries,
              std::vector<IteratorEntry>* out);

  Status close(std::uint32_t handle);

  [[nodiscard]] std::size_t open_count() const noexcept { return iters_.size(); }

 private:
  struct OpenIterator {
    Bytes prefix;
    IteratorOptions opts;
    std::vector<std::pair<std::uint64_t, flash::Ppa>> candidates;
    std::size_t pos = 0;
  };

  index::IIndex* index_;
  ftl::FlashKvStore* store_;
  std::unordered_map<std::uint32_t, OpenIterator> iters_;
  std::uint32_t next_handle_ = 1;
};

}  // namespace rhik::kvssd
