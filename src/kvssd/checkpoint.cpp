#include "kvssd/checkpoint.hpp"

#include <algorithm>
#include <cassert>

#include "common/crc32.hpp"
#include "ftl/mvcc.hpp"

namespace rhik::kvssd {

using flash::Ppa;

namespace {

constexpr std::uint32_t kPayloadMagic = 0x52434B50;  // "RCKP"
constexpr std::uint32_t kSuperMagic = 0x52434B53;    // "RCKS"
constexpr std::uint32_t kJournalMagic = 0x52434B4A;  // "RCKJ"
constexpr std::uint32_t kPayloadFormat = 2;  // 2: +epoch high-water (MVCC)

// Journal page header: [magic u32][page_seq u64][next_seq u64][count u16].
constexpr std::size_t kJournalHeader = 4 + 8 + 8 + 2;
// Record: [kind u8][key u64][ppa u40].
constexpr std::size_t kRecordSize = 1 + 8 + 5;

// Superblock page: [magic u32][version u64][payload_pages u32]
// [payload_len u64][payload_crc u32][journal_mark u64].
constexpr std::size_t kSuperSize = 4 + 8 + 4 + 8 + 4 + 8;

// Fixed payload header before the block table (see build_payload).
constexpr std::size_t kPayloadHeader = 4 + 4 + 8 + 8 + 8 + 8 + 4 + 4;

/// Reads a page and verifies the controller CRC stamp; returns the spare
/// tag on success.
std::optional<ftl::SpareTag> read_checked(flash::NandDevice& nand, Ppa ppa,
                                          Bytes& data, Bytes& spare) {
  const auto& g = nand.geometry();
  data.resize(g.page_size);
  spare.resize(g.spare_size());
  if (!ok(nand.read_page(ppa, data, spare))) return std::nullopt;
  if (!flash::page_crc_ok(g, data, spare)) return std::nullopt;
  return ftl::SpareTag::decode(spare);
}

}  // namespace

CheckpointManager::CheckpointManager(flash::NandDevice* nand,
                                     index::IIndex* index,
                                     ftl::FlashKvStore* store,
                                     ftl::PageAllocator* alloc,
                                     CheckpointConfig cfg,
                                     const std::uint64_t* live_bytes)
    : nand_(nand),
      index_(index),
      store_(store),
      alloc_(alloc),
      cfg_(cfg),
      live_bytes_(live_bytes),
      jmax_seq_(cfg.journal_blocks, 0) {
  assert(nand_ && index_ && store_ && alloc_ && live_bytes_);
  assert(cfg_.enabled && cfg_.slot_blocks > 0 && cfg_.journal_blocks > 0);
}

std::uint32_t CheckpointManager::first_reserved() const noexcept {
  return nand_->geometry().num_blocks - reserved_blocks(cfg_);
}

std::uint32_t CheckpointManager::slot_base(std::uint32_t slot) const noexcept {
  return first_reserved() + slot * cfg_.slot_blocks;
}

std::uint32_t CheckpointManager::journal_base() const noexcept {
  return first_reserved() + 2 * cfg_.slot_blocks;
}

std::uint32_t CheckpointManager::slot_pages() const noexcept {
  return cfg_.slot_blocks * nand_->geometry().pages_per_block;
}

std::uint32_t CheckpointManager::records_per_journal_page() const noexcept {
  return static_cast<std::uint32_t>(
      (nand_->geometry().page_size - kJournalHeader) / kRecordSize);
}

void CheckpointManager::init_from_flash() {
  if (auto found = find_newest(*nand_, cfg_)) {
    version_ = found->version;
    durable_mark_ = found->journal_mark;
    active_slot_ = found->slot;
    any_durable_ = true;
  }
  // Resume journal appending after the newest valid page; torn pages at
  // a ring tail just waste their slot (their intended sequence number is
  // reassigned to the next valid page, and replay skips them by CRC).
  std::uint64_t max_seq = 0;
  std::uint32_t cur = 0;
  const auto& g = nand_->geometry();
  Bytes data, spare;
  for (std::uint32_t i = 0; i < cfg_.journal_blocks; ++i) {
    const std::uint32_t blk = journal_base() + i;
    for (std::uint32_t p = 0; p < nand_->pages_programmed(blk); ++p) {
      const auto tag = read_checked(*nand_, flash::make_ppa(g, blk, p), data, spare);
      if (!tag || tag->kind != ftl::PageKind::kCkptJournal) continue;
      if (get_u32(data, 0) != kJournalMagic) continue;
      const std::uint64_t seq = get_u64(data, 4);
      jmax_seq_[i] = std::max(jmax_seq_[i], seq);
      if (seq >= max_seq) {
        max_seq = seq;
        cur = i;
      }
    }
  }
  next_page_seq_ = max_seq + 1;
  jcur_ = cur;
  programs_baseline_ = nand_->stats().page_programs;
  stats_.version = version_;
}

void CheckpointManager::invalidate_checkpoints() {
  stats_.invalidations++;
  // Newest slot first: if interrupted mid-way, recovery either sees the
  // stale older slot (whose journal-tail contiguity check fails) or no
  // slot at all — both resolve to the full scan.
  const std::uint32_t order[2] = {active_slot_, 1 - active_slot_};
  for (const std::uint32_t slot : order) {
    for (std::uint32_t b = 0; b < cfg_.slot_blocks; ++b) {
      const std::uint32_t blk = slot_base(slot) + b;
      if (nand_->pages_programmed(blk) > 0) (void)nand_->erase_block(blk);
    }
  }
  any_durable_ = false;
  durable_mark_ = 0;
  pending_.reset();
}

void CheckpointManager::reset_journal() {
  for (std::uint32_t i = 0; i < cfg_.journal_blocks; ++i) {
    const std::uint32_t blk = journal_base() + i;
    if (nand_->pages_programmed(blk) > 0) (void)nand_->erase_block(blk);
    jmax_seq_[i] = 0;
  }
  jcur_ = 0;
}

// -- Journal write path --------------------------------------------------------

void CheckpointManager::append(std::uint8_t kind, std::uint64_t key, Ppa ppa) {
  buffer_.push_back(JournalRecord{kind, key, ppa});
  stats_.journal_records++;
  if (buffer_.size() >= records_per_journal_page()) {
    (void)flush_journal();  // failure keeps records buffered
  }
}

void CheckpointManager::journal_put(std::uint64_t sig, Ppa ppa) {
  append(kRecPut, sig, ppa);
}

void CheckpointManager::journal_erase(std::uint64_t sig) {
  append(kRecDel, sig, 0);
}

void CheckpointManager::journal_del_located(std::uint64_t sig, Ppa ppa) {
  append(kRecDelAt, sig, ppa);
}

void CheckpointManager::journal_repoint(std::uint64_t slot_key, Ppa ppa) {
  append(kRecRepoint, slot_key, ppa);
}

void CheckpointManager::journal_resize(std::uint32_t new_gen,
                                       std::uint32_t new_bits) {
  stats_.resizes_journaled++;
  append(kRecResize, (std::uint64_t{new_gen} << 32) | new_bits, 0);
}

void CheckpointManager::journal_migrated(std::uint64_t old_slot_key) {
  stats_.resizes_journaled++;
  append(kRecMigrate, old_slot_key, 0);
}

Status CheckpointManager::rotate_journal() {
  const std::uint32_t n = cfg_.journal_blocks;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::uint32_t next = (jcur_ + 1) % n;
    const std::uint32_t blk = journal_base() + next;
    if (nand_->pages_programmed(blk) == 0) {
      jcur_ = next;
      return Status::kOk;
    }
    if (!any_durable_ || jmax_seq_[next] < durable_mark_) {
      if (Status s = nand_->erase_block(blk); !ok(s)) return s;
      jmax_seq_[next] = 0;
      jcur_ = next;
      return Status::kOk;
    }
    // Ring full behind the durable checkpoint: completing a checkpoint
    // advances the mark past every written page. When even that is
    // impossible (index maintenance in flight), erase both slots — with
    // no durable checkpoint the ring is free, and the next recovery
    // takes the always-correct full scan.
    if (rotating_) return Status::kBusy;
    rotating_ = true;
    stats_.journal_forced_checkpoints++;
    const Status s = checkpoint_now();
    rotating_ = false;
    if (!ok(s)) invalidate_checkpoints();
  }
  return Status::kDeviceFull;
}

Status CheckpointManager::flush_journal() {
  if (buffer_.empty()) return Status::kOk;
  stats_.journal_flushes++;
  // Store first, always: buffered records can reference pairs that are
  // still in the store's open page. Persisting them before the records
  // makes "record durable implies referenced data durable" a journal
  // invariant, whichever caller triggered this flush (explicit flush,
  // page-full cadence, or the collector's pre-erase hook).
  if (Status s = store_->flush(); !ok(s)) return s;
  const auto& g = nand_->geometry();
  const std::uint32_t per_page = records_per_journal_page();
  std::size_t done = 0;
  Status result = Status::kOk;
  Bytes page(g.page_size, 0);
  Bytes spare(g.spare_size(), 0xFF);
  while (done < buffer_.size()) {
    std::uint32_t blk = journal_base() + jcur_;
    if (nand_->pages_programmed(blk) == g.pages_per_block) {
      if (Status s = rotate_journal(); !ok(s)) {
        result = s;
        break;
      }
      blk = journal_base() + jcur_;
    }
    const std::size_t n =
        std::min<std::size_t>(buffer_.size() - done, per_page);
    std::fill(page.begin(), page.end(), 0);
    put_u32(page, 0, kJournalMagic);
    put_u64(page, 4, next_page_seq_);
    put_u64(page, 12, store_->next_seq());
    put_u16(page, 20, static_cast<std::uint16_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      const JournalRecord& r = buffer_[done + i];
      const std::size_t off = kJournalHeader + i * kRecordSize;
      page[off] = r.kind;
      put_u64(page, off + 1, r.key);
      put_u40(page, off + 9, r.ppa);
    }
    std::fill(spare.begin(), spare.end(), 0xFF);
    ftl::SpareTag{ftl::PageKind::kCkptJournal, ftl::Stream::kIndex}.encode(spare);
    const Ppa ppa = flash::make_ppa(g, blk, nand_->pages_programmed(blk));
    if (Status s = nand_->program_page(ppa, page, spare); !ok(s)) {
      result = s;
      break;
    }
    jmax_seq_[jcur_] = next_page_seq_;
    next_page_seq_++;
    stats_.journal_pages_written++;
    done += n;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(done));
  return result;
}

// -- Checkpoint state machine --------------------------------------------------

std::uint64_t CheckpointManager::dirty_pages_now() const noexcept {
  const std::uint64_t cur = nand_->stats().page_programs;
  return cur >= programs_baseline_ ? cur - programs_baseline_ : 0;
}

Bytes CheckpointManager::build_payload(std::uint64_t version) const {
  const std::uint32_t blocks = first_reserved();
  Bytes image;
  (void)index_->serialize_image(image);
  Bytes payload(kPayloadHeader + std::size_t{blocks} * 8 + 8 + image.size());
  put_u32(payload, 0, kPayloadMagic);
  put_u32(payload, 4, kPayloadFormat);
  put_u64(payload, 8, version);
  put_u64(payload, 16, store_->next_seq());
  put_u64(payload, 24, *live_bytes_);
  put_u64(payload, 32, epochs_ ? epochs_->current() : 0);
  put_u32(payload, 40, index_kind_);
  put_u32(payload, 44, blocks);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    put_u64(payload, kPayloadHeader + std::size_t{b} * 8,
            alloc_->block_live_bytes(b));
  }
  const std::size_t image_off = kPayloadHeader + std::size_t{blocks} * 8;
  put_u64(payload, image_off, image.size());
  if (!image.empty()) put_bytes(payload, image_off + 8, image);
  return payload;
}

Status CheckpointManager::begin() {
  if (pending_) return Status::kOk;
  if (index_->maintenance_active()) return Status::kBusy;
  // Persist the store's open data buffer first: the serialized image must
  // only map keys to extents that are durable on flash — a restart
  // adopts the image wholesale and cannot tell a RAM-buffered mapping
  // from a real one. (Journal-tail records get the same guarantee by
  // per-record extent validation at replay instead.)
  if (Status s = store_->flush(); !ok(s)) return s;
  // Write back dirty tables next so the serialized directory references
  // fully persisted pages; the repoint records this generates either land
  // below the mark or double-apply harmlessly on replay.
  if (Status s = index_->flush(); !ok(s)) return s;
  (void)flush_journal();

  Pending p;
  p.version = version_ + 1;
  p.mark = next_page_seq_;
  p.slot = any_durable_ ? 1 - active_slot_ : 0;
  p.payload = build_payload(p.version);
  const auto& g = nand_->geometry();
  const std::uint32_t payload_pages = static_cast<std::uint32_t>(
      (p.payload.size() + g.page_size - 1) / g.page_size);
  if (payload_pages + 1 > slot_pages()) {
    // Image outgrew the slot: checkpointing degrades to "never", and
    // recovery keeps working through the full scan.
    stats_.checkpoints_failed++;
    return Status::kDeviceFull;
  }
  pending_ = std::move(p);
  stats_.checkpoints_started++;
  return Status::kOk;
}

Status CheckpointManager::pump(std::uint32_t budget) {
  if (!pending_) return Status::kOk;
  const auto& g = nand_->geometry();
  Pending& p = *pending_;

  if (!p.erased) {
    for (std::uint32_t b = 0; b < cfg_.slot_blocks; ++b) {
      const std::uint32_t blk = slot_base(p.slot) + b;
      if (nand_->pages_programmed(blk) > 0) {
        if (Status s = nand_->erase_block(blk); !ok(s)) {
          stats_.checkpoints_failed++;
          pending_.reset();
          return s;
        }
      }
    }
    p.erased = true;
  }

  const std::uint32_t payload_pages = static_cast<std::uint32_t>(
      (p.payload.size() + g.page_size - 1) / g.page_size);
  Bytes spare(g.spare_size(), 0xFF);
  while (budget > 0 && p.next_page < payload_pages) {
    const std::uint32_t idx = p.next_page;
    const std::uint32_t blk = slot_base(p.slot) + idx / g.pages_per_block;
    const Ppa ppa = flash::make_ppa(g, blk, idx % g.pages_per_block);
    const std::size_t off = std::size_t{idx} * g.page_size;
    const std::size_t len =
        std::min<std::size_t>(g.page_size, p.payload.size() - off);
    std::fill(spare.begin(), spare.end(), 0xFF);
    ftl::SpareTag{ftl::PageKind::kIndexDir, ftl::Stream::kIndex}.encode(spare);
    if (Status s = nand_->program_page(ppa, ByteSpan{p.payload.data() + off, len},
                                       spare);
        !ok(s)) {
      stats_.checkpoints_failed++;
      pending_.reset();
      return s;
    }
    stats_.payload_pages_written++;
    p.next_page++;
    budget--;
  }
  if (p.next_page < payload_pages) return Status::kOk;  // more pumping later

  // Commit: the superblock is programmed last, so a cut before this point
  // leaves the previous checkpoint as the newest valid one.
  Bytes super(g.page_size, 0);
  put_u32(super, 0, kSuperMagic);
  put_u64(super, 4, p.version);
  put_u32(super, 12, payload_pages);
  put_u64(super, 16, p.payload.size());
  put_u32(super, 24, crc32(p.payload));
  put_u64(super, 28, p.mark);
  static_assert(kSuperSize == 36);
  std::fill(spare.begin(), spare.end(), 0xFF);
  ftl::SpareTag{ftl::PageKind::kCkptSuper, ftl::Stream::kIndex}.encode(spare);
  const std::uint32_t blk = slot_base(p.slot) + payload_pages / g.pages_per_block;
  const Ppa ppa = flash::make_ppa(g, blk, payload_pages % g.pages_per_block);
  if (Status s = nand_->program_page(ppa, super, spare); !ok(s)) {
    stats_.checkpoints_failed++;
    pending_.reset();
    return s;
  }

  version_ = p.version;
  durable_mark_ = p.mark;
  active_slot_ = p.slot;
  any_durable_ = true;
  programs_baseline_ = nand_->stats().page_programs;
  stats_.checkpoints_completed++;
  stats_.version = version_;
  pending_.reset();
  return Status::kOk;
}

void CheckpointManager::tick() {
  if (pending_) {
    (void)pump(cfg_.pump_pages);
    return;
  }
  if (cfg_.dirty_pages == 0) return;
  if (dirty_pages_now() < cfg_.dirty_pages) return;
  if (ok(begin())) (void)pump(cfg_.pump_pages);
}

Status CheckpointManager::checkpoint_now() {
  if (!pending_) {
    if (Status s = begin(); !ok(s)) return s;
  }
  while (pending_) {
    if (Status s = pump(UINT32_MAX); !ok(s)) return s;
  }
  return Status::kOk;
}

// -- Restore -------------------------------------------------------------------

std::optional<CheckpointManager::Found> CheckpointManager::find_newest(
    flash::NandDevice& nand, const CheckpointConfig& cfg) {
  const auto& g = nand.geometry();
  const std::uint32_t first = g.num_blocks - reserved_blocks(cfg);
  std::optional<Found> best;
  Bytes data, spare;
  for (std::uint32_t slot = 0; slot < 2; ++slot) {
    const std::uint32_t base = first + slot * cfg.slot_blocks;
    // Find the slot's superblock (there is at most one valid one: the
    // slot is erased before each rewrite; a torn rewrite has none).
    std::optional<std::uint64_t> version;
    std::uint32_t payload_pages = 0;
    std::uint64_t payload_len = 0;
    std::uint32_t payload_crc = 0;
    std::uint64_t mark = 0;
    for (std::uint32_t b = 0; b < cfg.slot_blocks; ++b) {
      const std::uint32_t blk = base + b;
      for (std::uint32_t p = 0; p < nand.pages_programmed(blk); ++p) {
        const auto tag = read_checked(nand, flash::make_ppa(g, blk, p), data, spare);
        if (!tag || tag->kind != ftl::PageKind::kCkptSuper) continue;
        if (get_u32(data, 0) != kSuperMagic) continue;
        const std::uint64_t v = get_u64(data, 4);
        if (version && *version >= v) continue;
        version = v;
        payload_pages = get_u32(data, 12);
        payload_len = get_u64(data, 16);
        payload_crc = get_u32(data, 24);
        mark = get_u64(data, 28);
      }
    }
    if (!version) continue;
    if (best && best->version >= *version) continue;
    if (payload_len > std::uint64_t{payload_pages} * g.page_size ||
        payload_pages >= cfg.slot_blocks * g.pages_per_block) {
      continue;
    }
    // Reassemble and verify the payload.
    Bytes payload;
    payload.reserve(payload_len);
    bool valid = true;
    for (std::uint32_t idx = 0; idx < payload_pages && valid; ++idx) {
      const std::uint32_t blk = base + idx / g.pages_per_block;
      const auto tag = read_checked(
          nand, flash::make_ppa(g, blk, idx % g.pages_per_block), data, spare);
      if (!tag || tag->kind != ftl::PageKind::kIndexDir) {
        valid = false;
        break;
      }
      const std::size_t take =
          std::min<std::size_t>(g.page_size, payload_len - payload.size());
      payload.insert(payload.end(), data.begin(),
                     data.begin() + static_cast<std::ptrdiff_t>(take));
    }
    if (!valid || payload.size() != payload_len) continue;
    if (crc32(payload) != payload_crc) continue;
    best = Found{std::move(payload), *version, mark, slot};
  }
  return best;
}

CheckpointManager::JournalTail CheckpointManager::read_journal_tail(
    flash::NandDevice& nand, const CheckpointConfig& cfg, std::uint64_t mark) {
  const auto& g = nand.geometry();
  const std::uint32_t jbase =
      g.num_blocks - reserved_blocks(cfg) + 2 * cfg.slot_blocks;
  struct PageEntry {
    std::uint64_t seq;
    Bytes data;
  };
  std::vector<PageEntry> pages;
  Bytes data, spare;
  for (std::uint32_t i = 0; i < cfg.journal_blocks; ++i) {
    const std::uint32_t blk = jbase + i;
    for (std::uint32_t p = 0; p < nand.pages_programmed(blk); ++p) {
      const auto tag = read_checked(nand, flash::make_ppa(g, blk, p), data, spare);
      if (!tag || tag->kind != ftl::PageKind::kCkptJournal) continue;
      if (get_u32(data, 0) != kJournalMagic) continue;
      const std::uint64_t seq = get_u64(data, 4);
      if (seq < mark) continue;
      pages.push_back(PageEntry{seq, data});
    }
  }
  std::sort(pages.begin(), pages.end(),
            [](const PageEntry& a, const PageEntry& b) { return a.seq < b.seq; });

  JournalTail tail;
  std::uint64_t expect = mark;
  for (const PageEntry& pe : pages) {
    if (pe.seq != expect) {
      // A hole means ring blocks carrying part of the tail were erased
      // (slot invalidation race); the replay would be incomplete.
      tail.contiguous = false;
      break;
    }
    expect++;
    tail.pages++;
    tail.max_next_seq = std::max(tail.max_next_seq, get_u64(pe.data, 12));
    const std::uint16_t count = get_u16(pe.data, 20);
    if (kJournalHeader + std::size_t{count} * kRecordSize > pe.data.size()) {
      tail.contiguous = false;
      break;
    }
    for (std::uint16_t i = 0; i < count; ++i) {
      const std::size_t off = kJournalHeader + std::size_t{i} * kRecordSize;
      JournalRecord rec;
      rec.kind = pe.data[off];
      rec.key = get_u64(pe.data, off + 1);
      rec.ppa = get_u40(pe.data, off + 9);
      if (rec.kind == kRecBarrier) tail.has_barrier = true;
      tail.records.push_back(rec);
    }
  }
  return tail;
}

std::optional<CheckpointManager::Image> CheckpointManager::decode_payload(
    ByteSpan payload) {
  if (payload.size() < kPayloadHeader) return std::nullopt;
  if (get_u32(payload, 0) != kPayloadMagic) return std::nullopt;
  if (get_u32(payload, 4) != kPayloadFormat) return std::nullopt;
  Image img;
  img.version = get_u64(payload, 8);
  img.next_seq = get_u64(payload, 16);
  img.live_bytes = get_u64(payload, 24);
  img.epoch = get_u64(payload, 32);
  img.index_kind = get_u32(payload, 40);
  const std::uint32_t blocks = get_u32(payload, 44);
  const std::size_t image_off = kPayloadHeader + std::size_t{blocks} * 8;
  if (payload.size() < image_off + 8) return std::nullopt;
  img.block_live.resize(blocks);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    img.block_live[b] = get_u64(payload, kPayloadHeader + std::size_t{b} * 8);
  }
  const std::uint64_t image_len = get_u64(payload, image_off);
  if (payload.size() < image_off + 8 + image_len) return std::nullopt;
  img.index_image.assign(payload.begin() + static_cast<std::ptrdiff_t>(image_off + 8),
                         payload.begin() +
                             static_cast<std::ptrdiff_t>(image_off + 8 + image_len));
  return img;
}

}  // namespace rhik::kvssd
