#include "kvssd/iterator.hpp"

#include <algorithm>
#include <cassert>

#include "hash/murmur.hpp"

namespace rhik::kvssd {

IteratorManager::IteratorManager(index::IIndex* index, ftl::FlashKvStore* store)
    : index_(index), store_(store) {
  assert(index_ && store_);
}

Result<std::uint32_t> IteratorManager::open(ByteSpan prefix, IteratorOptions opts) {
  if (prefix.empty()) return Status::kInvalidArgument;
  if (iters_.size() >= kMaxOpenIterators) return Status::kBusy;

  // Keys sharing the first 4 bytes share the high 32 signature bits
  // (§VI; the device builds signatures over a 4 B prefix window). Longer
  // user prefixes narrow within the class via the full-key check below.
  const std::uint64_t want = hash::prefix_signature(prefix) >> 32;
  OpenIterator it;
  it.prefix.assign(prefix.begin(), prefix.end());
  it.opts = opts;
  if (Status s = index_->scan([&](std::uint64_t sig, flash::Ppa ppa) {
        if ((sig >> 32) == want) it.candidates.emplace_back(sig, ppa);
      });
      !ok(s)) {
    return s;
  }
  // Deterministic enumeration order.
  std::sort(it.candidates.begin(), it.candidates.end());

  const std::uint32_t handle = next_handle_++;
  iters_.emplace(handle, std::move(it));
  return handle;
}

Status IteratorManager::next(std::uint32_t handle, std::size_t max_entries,
                             std::vector<IteratorEntry>* out) {
  if (out == nullptr || max_entries == 0) return Status::kInvalidArgument;
  const auto found = iters_.find(handle);
  if (found == iters_.end()) return Status::kInvalidArgument;
  OpenIterator& it = found->second;

  out->clear();
  while (out->size() < max_entries && it.pos < it.candidates.size()) {
    const auto [sig, ppa] = it.candidates[it.pos++];
    IteratorEntry entry;
    if (it.opts.include_values) {
      if (!ok(store_->read_pair(ppa, sig, &entry.key, &entry.value))) continue;
    } else {
      auto meta = store_->read_pair_meta(ppa, sig);
      if (!meta || meta->tombstone) continue;
      entry.key = std::move(meta->key);
    }
    // Weed out hash-class collisions with the real stored prefix.
    if (entry.key.size() < it.prefix.size() ||
        !std::equal(it.prefix.begin(), it.prefix.end(), entry.key.begin())) {
      continue;
    }
    out->push_back(std::move(entry));
  }
  if (out->empty() && it.pos >= it.candidates.size()) return Status::kNotFound;
  return Status::kOk;
}

Status IteratorManager::close(std::uint32_t handle) {
  return iters_.erase(handle) != 0 ? Status::kOk : Status::kInvalidArgument;
}

}  // namespace rhik::kvssd
