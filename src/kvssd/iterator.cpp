#include "kvssd/iterator.hpp"

#include <algorithm>
#include <cassert>

#include "hash/murmur.hpp"

namespace rhik::kvssd {

IteratorManager::IteratorManager(index::IIndex* index, ftl::FlashKvStore* store,
                                 ftl::SnapshotRegistry* registry,
                                 ftl::VersionRetainer* retainer)
    : index_(index), store_(store), registry_(registry), retainer_(retainer) {
  assert(index_ && store_);
}

Result<std::uint32_t> IteratorManager::open(ByteSpan prefix,
                                            IteratorOptions opts) {
  if (registry_ == nullptr) {
    return open_impl(prefix, opts, 0, ftl::kEpochMax, false);
  }
  const ftl::SnapshotRegistry::Pin pin = registry_->open();
  auto handle = open_impl(prefix, opts, pin.id, pin.epoch, /*owns_pin=*/true);
  if (!handle) (void)registry_->release(pin.id);
  return handle;
}

Result<std::uint32_t> IteratorManager::open_at(ByteSpan prefix,
                                               std::uint64_t pin_id,
                                               IteratorOptions opts) {
  if (registry_ == nullptr || pin_id == 0) return Status::kInvalidArgument;
  const auto epoch = registry_->epoch_of(pin_id);
  if (!epoch) return epoch.status();  // expired / unknown pin
  return open_impl(prefix, opts, pin_id, *epoch, /*owns_pin=*/false);
}

Result<std::uint32_t> IteratorManager::open_impl(ByteSpan prefix,
                                                 IteratorOptions opts,
                                                 std::uint64_t pin_id,
                                                 std::uint64_t epoch,
                                                 bool owns_pin) {
  if (prefix.empty()) return Status::kInvalidArgument;
  if (iters_.size() >= kMaxOpenIterators) return Status::kIteratorMax;

  // Keys sharing the first 4 bytes share the 16-bit class tag (§VI; the
  // device builds signatures over a 4 B prefix window). Tag collisions
  // and longer user prefixes both narrow via the full-key check below.
  const std::uint64_t want = hash::class_tag(hash::prefix_signature(prefix));
  OpenIterator it;
  it.prefix.assign(prefix.begin(), prefix.end());
  it.opts = opts;
  it.pin_id = pin_id;
  it.epoch = epoch;
  it.owns_pin = owns_pin;
  if (Status s = index_->scan([&](std::uint64_t sig, flash::Ppa ppa) {
        if (hash::class_tag(sig) == want) it.candidates.emplace_back(sig, ppa);
      });
      !ok(s)) {
    return s;
  }
  // A caller-supplied snapshot may predate this open: keys deleted since
  // the pin are gone from the index but their retained versions still
  // cover the pinned epoch — they are candidates too.
  if (pin_id != 0 && retainer_ != nullptr) {
    retainer_->for_each_covering(
        epoch, [&](std::uint64_t sig, const ftl::RetainedVersion& v) {
          if (hash::class_tag(sig) == want) {
            it.candidates.emplace_back(sig, v.ppa);
          }
        });
  }
  // Deterministic enumeration order; one resolution per signature.
  std::sort(it.candidates.begin(), it.candidates.end());
  it.candidates.erase(
      std::unique(it.candidates.begin(), it.candidates.end(),
                  [](const auto& a, const auto& b) { return a.first == b.first; }),
      it.candidates.end());

  const std::uint32_t handle = next_handle_++;
  iters_.emplace(handle, std::move(it));
  return handle;
}

bool IteratorManager::resolve_pinned(const OpenIterator& it, std::uint64_t sig,
                                     IteratorEntry* entry) {
  // Current version first: visible iff its stamp is at or below the
  // pinned epoch (an index hit is never a tombstone — deletes unmap).
  const auto looked = index_->lookup(sig);
  if (looked && *looked) {
    if (it.opts.include_values) {
      std::uint64_t e = 0;
      if (ok(store_->read_pair(**looked, sig, &entry->key, &entry->value, &e)) &&
          e <= it.epoch) {
        return true;
      }
    } else {
      const auto meta = store_->read_pair_meta(**looked, sig);
      if (meta && !meta->tombstone && meta->epoch <= it.epoch) {
        entry->key = std::move(meta->key);
        return true;
      }
    }
  }
  // Superseded at the pinned epoch: the retainer holds the covering
  // version (a covering tombstone means the key was already deleted).
  if (retainer_ == nullptr) return false;
  const ftl::RetainedVersion* v = retainer_->resolve(sig, it.epoch);
  if (v == nullptr) return false;
  bool tomb = false;
  entry->key.clear();
  entry->value.clear();
  if (!ok(store_->read_pair_at(v->ppa, sig, it.epoch, &entry->key,
                               &entry->value, &tomb))) {
    return false;
  }
  return !tomb;
}

Status IteratorManager::next(std::uint32_t handle, std::size_t max_entries,
                             std::vector<IteratorEntry>* out) {
  if (out == nullptr || max_entries == 0) return Status::kInvalidArgument;
  const auto found = iters_.find(handle);
  if (found == iters_.end()) return Status::kInvalidArgument;
  OpenIterator& it = found->second;
  if (it.pin_id != 0) {
    // The retention bound may have expired the pin mid-scan; erroring
    // here (instead of silently mixing epochs) is the §13 contract.
    const auto e = registry_->epoch_of(it.pin_id);
    if (!e) return e.status();
  }

  out->clear();
  while (out->size() < max_entries && it.pos < it.candidates.size()) {
    const auto [sig, ppa] = it.candidates[it.pos++];
    IteratorEntry entry;
    if (it.pin_id != 0) {
      if (!resolve_pinned(it, sig, &entry)) continue;
    } else if (it.opts.include_values) {
      if (!ok(store_->read_pair(ppa, sig, &entry.key, &entry.value))) continue;
    } else {
      auto meta = store_->read_pair_meta(ppa, sig);
      if (!meta || meta->tombstone) continue;
      entry.key = std::move(meta->key);
    }
    // Weed out hash-class collisions with the real stored prefix.
    if (entry.key.size() < it.prefix.size() ||
        !std::equal(it.prefix.begin(), it.prefix.end(), entry.key.begin())) {
      continue;
    }
    out->push_back(std::move(entry));
  }
  if (out->empty() && it.pos >= it.candidates.size()) return Status::kNotFound;
  return Status::kOk;
}

Status IteratorManager::close(std::uint32_t handle) {
  const auto found = iters_.find(handle);
  if (found == iters_.end()) return Status::kInvalidArgument;
  if (found->second.owns_pin && registry_ != nullptr) {
    (void)registry_->release(found->second.pin_id);
  }
  iters_.erase(found);
  return Status::kOk;
}

}  // namespace rhik::kvssd
