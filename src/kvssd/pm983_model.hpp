// Analytic throughput model of the Samsung PM983 KVSSD.
//
// The paper's Fig. 6 compares three systems: the real PM983 KVSSD, the
// stock OpenMPDK emulator, and RHIK. We do not have the hardware, so the
// "KVSSD" series is generated from this calibrated analytic model
// (substitution documented in DESIGN.md). Constants approximate the
// publicly reported behaviour of the PM983 KV firmware: key-handling
// dominates small-value ops (tens of kIOPS), large values saturate the
// channel bandwidth, and sync mode is round-trip-latency bound.
// Fig. 6 plots *normalized* throughput, so only the shape matters.
#pragma once

#include <cstdint>

namespace rhik::kvssd {

enum class OpDir : std::uint8_t { kRead, kWrite };

struct Pm983Model {
  // Async mode: min(IOPS cap, bandwidth cap).
  double write_iops_cap = 45e3;   ///< small-value KV write ops/s
  double write_bw_mib = 900.0;    ///< large-value write bandwidth
  double read_iops_cap = 220e3;   ///< small-value KV read ops/s
  double read_bw_mib = 2400.0;    ///< large-value read bandwidth
  // Sync mode: one command in flight; throughput = 1 / latency.
  double write_latency_us = 110.0;
  double read_latency_us = 95.0;

  /// Throughput in MiB/s for the given op, mode and value size.
  [[nodiscard]] double throughput_mib(OpDir dir, bool async,
                                      std::uint64_t value_size) const;

  /// Throughput in operations per second.
  [[nodiscard]] double throughput_ops(OpDir dir, bool async,
                                      std::uint64_t value_size) const;
};

}  // namespace rhik::kvssd
