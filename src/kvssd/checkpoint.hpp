// Index checkpointing + delta journaling (DESIGN.md §8).
//
// A tail region of the device is controller-reserved and split into two
// alternating checkpoint *slots* plus a journal *ring*:
//
//   [ data / index zone ... | slot A | slot B | journal ring ]
//
// A checkpoint serializes the index's DRAM state (directory PPAs, key
// count) plus the allocator's per-block live-byte table into payload
// pages, then commits them with a single superblock page carrying a
// monotonically increasing version, a CRC over the payload, and the
// journal *mark* — the sequence number of the first journal page the
// checkpoint does NOT cover. Because the superblock is programmed last,
// a torn checkpoint is simply invisible: recovery picks the newest slot
// whose superblock and payload verify, replays journal pages >= its
// mark, and falls back to the full-device scan when neither slot is
// valid (or the journal tail has a gap / resize barrier).
//
// On the write path the index reports every durable mapping change
// through the IndexJournal interface; records are buffered in RAM and
// flushed to journal pages when a page fills, on device flush(), and —
// crucially — before any block erase (a replayed mapping must never
// point into a block erased after the record was produced). Buffered
// records lost to a power cut correspond exactly to acked-but-unflushed
// operations, which the crash-consistency contract already allows to
// roll back.
//
// Checkpoints are triggered by a dirty-page threshold and pumped a few
// payload pages per foreground op (like RHIK's incremental resize), so
// foreground latency stays bounded.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/page_allocator.hpp"
#include "index/index.hpp"
#include "kvssd/config.hpp"
#include "obs/metrics.hpp"

namespace rhik::kvssd {

struct CheckpointStats {
  std::uint64_t checkpoints_started = 0;
  std::uint64_t checkpoints_completed = 0;
  std::uint64_t checkpoints_failed = 0;
  std::uint64_t payload_pages_written = 0;
  std::uint64_t journal_records = 0;
  std::uint64_t journal_pages_written = 0;
  std::uint64_t journal_flushes = 0;
  std::uint64_t journal_forced_checkpoints = 0;  ///< ring-full forced
  std::uint64_t resizes_journaled = 0;  ///< resize + migrate records emitted
  std::uint64_t invalidations = 0;  ///< both slots erased (poison to full scan)
  std::uint64_t version = 0;        ///< newest durable checkpoint version

  /// Registers these counters into a metrics snapshot (`checkpoint.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("checkpoint.started", checkpoints_started);
    snap.add_counter("checkpoint.completed", checkpoints_completed);
    snap.add_counter("checkpoint.failed", checkpoints_failed);
    snap.add_counter("checkpoint.payload_pages_written", payload_pages_written);
    snap.add_counter("checkpoint.journal_records", journal_records);
    snap.add_counter("checkpoint.journal_pages_written", journal_pages_written);
    snap.add_counter("checkpoint.journal_flushes", journal_flushes);
    snap.add_counter("checkpoint.journal_forced_checkpoints",
                     journal_forced_checkpoints);
    snap.add_counter("checkpoint.resizes_journaled", resizes_journaled);
    snap.add_counter("checkpoint.invalidations", invalidations);
    snap.set_gauge("checkpoint.version", static_cast<std::int64_t>(version),
                   obs::MergeMode::kMax);
  }
};

class CheckpointManager final : public index::IndexJournal {
 public:
  /// Blocks the config carves out of the device tail (0 when disabled).
  static constexpr std::uint32_t reserved_blocks(const CheckpointConfig& cfg) {
    return cfg.enabled ? 2 * cfg.slot_blocks + cfg.journal_blocks : 0;
  }

  /// Journal record kinds (on-flash encoding). kRecDel is the index's
  /// provisional erase notice — replay IGNORES it, because it can become
  /// durable before the deletion's tombstone does. kRecDelAt is appended
  /// by the device only after the tombstone write succeeded; combined
  /// with flush_journal's store-first ordering, a durable kRecDelAt
  /// implies a durable tombstone, so a fast restore honoring it can
  /// never disagree with a later full scan.
  /// kRecBarrier is a legacy kind (pre-replayable resizes); it is no
  /// longer produced, but a tail containing one still forces the full
  /// scan. kRecResize keys (new_gen << 32) | new_bits; kRecMigrate keys
  /// the retired source bucket's generation-tagged slot.
  static constexpr std::uint8_t kRecPut = 1;
  static constexpr std::uint8_t kRecDel = 2;
  static constexpr std::uint8_t kRecRepoint = 3;
  static constexpr std::uint8_t kRecBarrier = 4;
  static constexpr std::uint8_t kRecDelAt = 5;
  static constexpr std::uint8_t kRecResize = 6;
  static constexpr std::uint8_t kRecMigrate = 7;

  CheckpointManager(flash::NandDevice* nand, index::IIndex* index,
                    ftl::FlashKvStore* store, ftl::PageAllocator* alloc,
                    CheckpointConfig cfg, const std::uint64_t* live_bytes);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Scans the reserved region and adopts any existing checkpoint /
  /// journal state (version, durable mark, next journal sequence). Call
  /// once after construction, after any recovery replay has finished.
  void init_from_flash();

  /// Erases both checkpoint slots (and resets the durable mark), forcing
  /// the next recovery onto the full scan. This is the always-possible
  /// fallback when journal consistency can no longer be guaranteed, and
  /// the preparation step before the full-scan path re-checkpoints.
  void invalidate_checkpoints();

  /// Erases every journal ring block. Only legal when no checkpoint
  /// depends on the ring (after invalidate_checkpoints or right after a
  /// freshly completed checkpoint that marked past every written page).
  void reset_journal();

  // -- IndexJournal ---------------------------------------------------------
  void journal_put(std::uint64_t sig, flash::Ppa ppa) override;
  void journal_erase(std::uint64_t sig) override;
  void journal_repoint(std::uint64_t slot_key, flash::Ppa ppa) override;
  void journal_resize(std::uint32_t new_gen, std::uint32_t new_bits) override;
  void journal_migrated(std::uint64_t old_slot_key) override;

  /// Deletion record the replay acts on; emitted by the device once the
  /// deletion's tombstone landed at `ppa` (see kRecDelAt above).
  void journal_del_located(std::uint64_t sig, flash::Ppa ppa);

  /// Writes buffered journal records to the ring. On failure (ring
  /// blocked behind the durable mark and a checkpoint is impossible right
  /// now) the buffer is retained and the error returned.
  Status flush_journal();

  /// Per-foreground-op hook: starts a checkpoint when the dirty-page
  /// threshold is crossed and pumps an in-flight one by cfg.pump_pages.
  void tick();

  /// Synchronous checkpoint: begins one (completing any in flight) and
  /// pumps it to durability. kBusy while index maintenance is active.
  Status checkpoint_now();

  [[nodiscard]] bool in_progress() const noexcept { return pending_.has_value(); }
  [[nodiscard]] const CheckpointStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t durable_version() const noexcept { return version_; }

  /// Index-kind discriminator stored in the payload; restore refuses an
  /// image written by a different index implementation.
  void set_index_kind(std::uint32_t kind) noexcept { index_kind_ = kind; }

  /// MVCC: the payload records the epoch high-water at checkpoint time so
  /// a fast restore can re-seed the epoch source even when the ghost scan
  /// touches no data page (empty or all-marked device).
  void set_epoch_source(const ftl::EpochSource* epochs) noexcept {
    epochs_ = epochs;
  }

  // -- Restore support (static: runs before any manager exists) ------------
  struct Found {
    Bytes payload;
    std::uint64_t version = 0;
    std::uint64_t journal_mark = 0;
    std::uint32_t slot = 0;
  };
  /// Newest valid checkpoint across both slots, if any.
  static std::optional<Found> find_newest(flash::NandDevice& nand,
                                          const CheckpointConfig& cfg);

  struct JournalRecord {
    std::uint8_t kind = 0;
    std::uint64_t key = 0;
    flash::Ppa ppa = 0;
  };
  struct JournalTail {
    std::vector<JournalRecord> records;
    std::uint64_t pages = 0;
    std::uint64_t max_next_seq = 0;  ///< newest store seq recorded in the tail
    bool has_barrier = false;
    /// False when pages >= mark are missing (partially erased tail): the
    /// replay would be incomplete and recovery must fall back.
    bool contiguous = true;
  };
  /// Collects and orders the journal records with page sequence >= mark.
  static JournalTail read_journal_tail(flash::NandDevice& nand,
                                       const CheckpointConfig& cfg,
                                       std::uint64_t mark);

  /// Decoded checkpoint payload.
  struct Image {
    std::uint64_t version = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t live_bytes = 0;
    /// Epoch-source high-water at checkpoint time (0 = pre-MVCC image).
    std::uint64_t epoch = 0;
    std::uint32_t index_kind = 0;
    std::vector<std::uint64_t> block_live;  ///< per block below the region
    Bytes index_image;
  };
  static std::optional<Image> decode_payload(ByteSpan payload);

 private:
  struct Pending {
    Bytes payload;
    std::uint64_t version = 0;
    std::uint64_t mark = 0;
    std::uint32_t slot = 0;
    std::uint32_t next_page = 0;  ///< payload pages programmed so far
    bool erased = false;          ///< slot blocks wiped
  };

  [[nodiscard]] std::uint32_t first_reserved() const noexcept;
  [[nodiscard]] std::uint32_t slot_base(std::uint32_t slot) const noexcept;
  [[nodiscard]] std::uint32_t journal_base() const noexcept;
  [[nodiscard]] std::uint32_t slot_pages() const noexcept;
  [[nodiscard]] std::uint32_t records_per_journal_page() const noexcept;

  void append(std::uint8_t kind, std::uint64_t key, flash::Ppa ppa);
  /// Makes the next journal ring block writable (erasing it when its
  /// contents are no longer needed; forcing a checkpoint / invalidating
  /// the slots otherwise).
  Status rotate_journal();
  Status begin();
  Status pump(std::uint32_t budget);
  Bytes build_payload(std::uint64_t version) const;
  [[nodiscard]] std::uint64_t dirty_pages_now() const noexcept;

  flash::NandDevice* nand_;
  index::IIndex* index_;
  ftl::FlashKvStore* store_;
  ftl::PageAllocator* alloc_;
  CheckpointConfig cfg_;
  const std::uint64_t* live_bytes_;
  std::uint32_t index_kind_ = 0;
  const ftl::EpochSource* epochs_ = nullptr;

  std::uint64_t version_ = 0;        ///< newest durable checkpoint version
  std::uint64_t durable_mark_ = 0;   ///< its journal mark
  std::uint32_t active_slot_ = 1;    ///< slot holding the newest checkpoint
  bool any_durable_ = false;

  std::vector<JournalRecord> buffer_;
  std::uint64_t next_page_seq_ = 1;
  std::uint32_t jcur_ = 0;                 ///< ring block index being appended
  std::vector<std::uint64_t> jmax_seq_;    ///< max page seq per ring block
  std::uint64_t programs_baseline_ = 0;    ///< nand page_programs at last ckpt

  std::optional<Pending> pending_;
  CheckpointStats stats_;
  /// Guards against re-entry when begin()'s journal flush hits a full
  /// ring while a forced checkpoint is already resolving it.
  bool rotating_ = false;
};

}  // namespace rhik::kvssd
