#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace rhik {

std::size_t Histogram::bucket_for(std::uint64_t v) noexcept {
  if (v < kExact) return static_cast<std::size_t>(v);
  // v >= 128: log2(v) in [7, 63]. Each log2 range gets kSub sub-buckets.
  const unsigned lg = 63u - static_cast<unsigned>(std::countl_zero(v));
  const std::uint64_t base = std::uint64_t{1} << lg;
  const std::uint64_t sub = (v - base) / std::max<std::uint64_t>(1, base / kSub);
  return kExact + (lg - 7) * kSub + static_cast<std::size_t>(std::min<std::uint64_t>(sub, kSub - 1));
}

std::uint64_t Histogram::bucket_lo(std::size_t b) noexcept {
  if (b < kExact) return b;
  const std::size_t rel = b - kExact;
  const unsigned lg = static_cast<unsigned>(rel / kSub) + 7;
  const std::uint64_t base = std::uint64_t{1} << lg;
  return base + (rel % kSub) * (base / kSub);
}

std::uint64_t Histogram::bucket_hi(std::size_t b) noexcept {
  if (b < kExact) return b;
  const std::size_t rel = b - kExact;
  const unsigned lg = static_cast<unsigned>(rel / kSub) + 7;
  const std::uint64_t base = std::uint64_t{1} << lg;
  return base + ((rel % kSub) + 1) * (base / kSub) - 1;
}

void Histogram::record(std::uint64_t value) noexcept { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t n) noexcept {
  if (n == 0) return;
  buckets_[bucket_for(value)] += n;
  count_ += n;
  sum_ += value * n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::min() const noexcept { return count_ == 0 ? 0 : min_; }

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const std::uint64_t next = seen + buckets_[b];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(std::max(bucket_lo(b), min_));
      const double hi = static_cast<double>(std::min(bucket_hi(b), max_));
      const double frac =
          buckets_[b] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

double Histogram::cdf(std::uint64_t value) const noexcept {
  if (count_ == 0) return 0.0;
  const std::size_t vb = bucket_for(value);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b <= vb && b < kBuckets; ++b) below += buckets_[b];
  return static_cast<double>(below) / static_cast<double>(count_);
}

void Histogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

Histogram Histogram::from_buckets(const std::uint64_t* counts, std::size_t n,
                                  std::uint64_t sum, std::uint64_t min,
                                  std::uint64_t max) noexcept {
  Histogram h;
  n = std::min(n, kBuckets);
  for (std::size_t b = 0; b < n; ++b) {
    h.buckets_[b] = counts[b];
    h.count_ += counts[b];
  }
  if (h.count_ == 0) return h;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

std::string Histogram::to_json() const {
  std::string out;
  out.reserve(256);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
                "\"mean\":%.3f,\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,"
                "\"buckets\":[",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(sum_),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(max()), mean(), percentile(50),
                percentile(90), percentile(99));
  out += buf;
  bool first = true;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s[%llu,%llu,%llu]", first ? "" : ",",
                  static_cast<unsigned long long>(bucket_lo(b)),
                  static_cast<unsigned long long>(bucket_hi(b)),
                  static_cast<unsigned long long>(buckets_[b]));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.0f p99=%.0f max=%llu",
                static_cast<unsigned long long>(count_), mean(), percentile(50),
                percentile(99), static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace rhik
