// Byte-buffer helpers: little-endian fixed-width encode/decode.
//
// The on-flash structures (record pages, extent headers, page footers) are
// serialized explicitly rather than memcpy'ing structs, so the layout is
// well-defined regardless of host padding/endianness.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace rhik {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutByteSpan = std::span<std::uint8_t>;

// Little-endian fixed-width accessors. On little-endian hosts (the only
// targets we build for; enforced below) these compile to single moves.
static_assert(std::endian::native == std::endian::little,
              "on-flash codecs assume a little-endian host");

inline void put_u16(MutByteSpan dst, std::size_t off, std::uint16_t v) noexcept {
  assert(off + 2 <= dst.size());
  std::memcpy(dst.data() + off, &v, 2);
}

inline void put_u32(MutByteSpan dst, std::size_t off, std::uint32_t v) noexcept {
  assert(off + 4 <= dst.size());
  std::memcpy(dst.data() + off, &v, 4);
}

inline void put_u64(MutByteSpan dst, std::size_t off, std::uint64_t v) noexcept {
  assert(off + 8 <= dst.size());
  std::memcpy(dst.data() + off, &v, 8);
}

/// 40-bit (5-byte) little-endian store — the paper's physical page address
/// width (Eq. 1 uses ppa = 5 B).
inline void put_u40(MutByteSpan dst, std::size_t off, std::uint64_t v) noexcept {
  assert(off + 5 <= dst.size());
  assert(v < (std::uint64_t{1} << 40));
  for (int i = 0; i < 5; ++i) dst[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

[[nodiscard]] inline std::uint16_t get_u16(ByteSpan src, std::size_t off) noexcept {
  assert(off + 2 <= src.size());
  std::uint16_t v;
  std::memcpy(&v, src.data() + off, 2);
  return v;
}

[[nodiscard]] inline std::uint32_t get_u32(ByteSpan src, std::size_t off) noexcept {
  assert(off + 4 <= src.size());
  std::uint32_t v;
  std::memcpy(&v, src.data() + off, 4);
  return v;
}

[[nodiscard]] inline std::uint64_t get_u64(ByteSpan src, std::size_t off) noexcept {
  assert(off + 8 <= src.size());
  std::uint64_t v;
  std::memcpy(&v, src.data() + off, 8);
  return v;
}

[[nodiscard]] inline std::uint64_t get_u40(ByteSpan src, std::size_t off) noexcept {
  assert(off + 5 <= src.size());
  std::uint64_t v = 0;
  std::memcpy(&v, src.data() + off, 5);
  return v;
}

inline void put_bytes(MutByteSpan dst, std::size_t off, ByteSpan src) noexcept {
  assert(off + src.size() <= dst.size());
  if (!src.empty()) std::memcpy(dst.data() + off, src.data(), src.size());
}

[[nodiscard]] inline ByteSpan as_bytes(const std::string& s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

[[nodiscard]] inline std::string to_string(ByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Size literals.
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

}  // namespace rhik
