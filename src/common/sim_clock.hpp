// Deterministic simulated clock.
//
// All latency in the emulator (flash array timing, command processing
// overhead, resize stalls) is accounted against a SimClock instead of the
// wall clock. This keeps benches deterministic and lets a 150 GB device
// fill run in seconds of host time while still reporting device-accurate
// bandwidth/latency figures.
#pragma once

#include <cstdint>

namespace rhik {

/// Nanosecond-resolution virtual time.
using SimTime = std::uint64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

/// Monotonic virtual clock advanced explicitly by device components.
///
/// The clock distinguishes *elapsed device time* (advance) from *stall
/// time* (advance_stall) so experiments like Fig. 7 can report how long
/// the submission queue was held during an index resize.
class SimClock {
 public:
  SimClock() = default;

  /// Current virtual time since device power-on.
  [[nodiscard]] SimTime now() const noexcept { return now_ns_; }

  /// Advance time by `delta` nanoseconds of useful device work.
  void advance(SimTime delta) noexcept { now_ns_ += delta; }

  /// Advance time by `delta` nanoseconds during which the submission
  /// queue was halted (e.g. stop-the-world index migration).
  void advance_stall(SimTime delta) noexcept {
    now_ns_ += delta;
    stall_ns_ += delta;
  }

  /// Total time spent with the queue halted.
  [[nodiscard]] SimTime total_stall() const noexcept { return stall_ns_; }

  /// Reclassifies a window of already-advanced time as stall time:
  /// components that do their work through normal advance() calls (e.g.
  /// the flash ops of an index migration) bracket it with begin/end.
  [[nodiscard]] SimTime stall_window_begin() const noexcept { return now_ns_; }
  void stall_window_end(SimTime begin) noexcept {
    stall_ns_ += now_ns_ - begin;
  }

  void reset() noexcept {
    now_ns_ = 0;
    stall_ns_ = 0;
  }

 private:
  SimTime now_ns_ = 0;
  SimTime stall_ns_ = 0;
};

/// Converts a byte count and a duration into MiB/s; returns 0 for zero time.
double mib_per_sec(std::uint64_t bytes, SimTime elapsed) noexcept;

/// Converts an operation count and a duration into ops/s; 0 for zero time.
double ops_per_sec(std::uint64_t ops, SimTime elapsed) noexcept;

}  // namespace rhik
