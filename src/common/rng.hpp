// Deterministic random number generation for workload synthesis.
//
// Workload generators must be reproducible across runs and platforms, so
// we ship our own PRNG (splitmix64 / xoshiro256**) instead of relying on
// implementation-defined std::default_random_engine behaviour.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rhik {

/// splitmix64 — used for seeding and cheap stateless mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality generator for workload draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x52484948 /* "RHIK" */) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // workload generation does not need exact uniformity at 2^-64 scale.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Zipfian distribution over [0, n) with parameter theta (YCSB-style).
///
/// Uses the Gray et al. rejection-free inverse-CDF approximation so draws
/// are O(1) after O(1) setup (no harmonic-number table).
class Zipfian {
 public:
  Zipfian(std::uint64_t n, double theta = 0.99) noexcept
      : n_(n), theta_(theta) {
    assert(n > 0);
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next(Rng& rng) const noexcept {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  // Exact zeta is O(n); for large n we use the integral approximation,
  // which is accurate enough for workload skew purposes.
  static double zeta(std::uint64_t n, double theta) noexcept {
    if (n <= 1024 * 1024) {
      double z = 0;
      for (std::uint64_t i = 1; i <= n; ++i) z += std::pow(1.0 / static_cast<double>(i), theta);
      return z;
    }
    const double z1m = zeta(1024 * 1024, theta);
    // integral of x^-theta from 2^20 to n
    const double a = 1.0 - theta;
    return z1m + (std::pow(static_cast<double>(n), a) - std::pow(1048576.0, a)) / a;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace rhik
