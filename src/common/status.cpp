#include "common/status.hpp"

namespace rhik {

std::string_view to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kAlreadyExists: return "ALREADY_EXISTS";
    case Status::kDeviceFull: return "DEVICE_FULL";
    case Status::kIndexFull: return "INDEX_FULL";
    case Status::kCollisionAbort: return "COLLISION_ABORT";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kCorruption: return "CORRUPTION";
    case Status::kIoError: return "IO_ERROR";
    case Status::kBusy: return "BUSY";
    case Status::kUnsupported: return "UNSUPPORTED";
    case Status::kQueueFull: return "QUEUE_FULL";
    case Status::kSnapshotTooOld: return "SNAPSHOT_TOO_OLD";
    case Status::kIteratorMax: return "ITERATOR_MAX";
  }
  return "UNKNOWN";
}

}  // namespace rhik
