#include "common/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

#if defined(__x86_64__)
#include <emmintrin.h>
#include <wmmintrin.h>
#endif

// The 8-byte fold below loads input words with little-endian semantics.
static_assert(std::endian::native == std::endian::little,
              "crc32 slicing-by-8 fold assumes a little-endian host");

namespace rhik {

namespace {

// Eight derived tables; table[0] is the classic byte-at-a-time table and
// table[k][b] equals the CRC of byte b followed by k zero bytes, which is
// what lets eight input bytes be folded per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

constexpr Tables kTables{};

std::uint32_t update_table(std::uint32_t state, ByteSpan data) noexcept {
  const auto& t = kTables.t;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  while (n >= 8) {
    // Little-endian load of the first word folded with the running CRC;
    // memcpy keeps it alignment-safe.
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= state;
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
            t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) state = t[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
  return state;
}

#if defined(__x86_64__)

/// x^n mod P in the normal bit order (bit i = coefficient of x^i),
/// P = x^32 + 0x04C11DB7.
constexpr std::uint32_t xn_mod_p(unsigned n) {
  if (n < 32) return std::uint32_t{1} << n;
  std::uint32_t r = 0x04C11DB7u;  // x^32 mod P
  for (unsigned i = 32; i < n; ++i) {
    const bool hi = (r & 0x80000000u) != 0;
    r <<= 1;
    if (hi) r ^= 0x04C11DB7u;
  }
  return r;
}

constexpr std::uint32_t reflect32(std::uint32_t v) {
  std::uint32_t r = 0;
  for (int i = 0; i < 32; ++i) r |= ((v >> i) & 1u) << (31 - i);
  return r;
}

/// PCLMULQDQ operand that folds reflected data across a gap of `n` bits:
/// carry-less multiplying a bit-reflected 64-bit lane by
/// reflect(x^n mod P) << 1 yields the bit-reflected product with the
/// alignment the fold loop below expects (the <<1 absorbs the one-bit
/// offset a 64x64 reflected multiply introduces).
constexpr std::uint64_t fold_k(unsigned n) {
  return std::uint64_t{reflect32(xn_mod_p(n))} << 1;
}

// The 128-bit state x stands in for 16 literal message bytes ("message
// equivalence": crc(x-bytes ++ rest) == crc(consumed ++ rest)). Folding
// x across the next 16-byte block multiplies it by x^128; with the lane
// layout of a reflected CRC the low qword needs x^(128+32) and the high
// qword x^(128-32) (the reflected multiply contributes a fixed x^32).
constexpr std::uint64_t kFoldLo = fold_k(160);   // one 128-bit block
constexpr std::uint64_t kFoldHi = fold_k(96);
constexpr std::uint64_t kFold4Lo = fold_k(544);  // four blocks (64 B)
constexpr std::uint64_t kFold4Hi = fold_k(480);

/// Fold one 128-bit lane across the gap encoded in `k` and absorb the
/// next block.
__attribute__((target("pclmul"), always_inline)) inline __m128i fold(
    __m128i acc, __m128i k, __m128i next) {
  return _mm_xor_si128(_mm_xor_si128(_mm_clmulepi64_si128(acc, k, 0x00),
                                     _mm_clmulepi64_si128(acc, k, 0x11)),
                       next);
}

inline __m128i load(const std::uint8_t* q) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
}

/// Folded CRC32: four independent 128-bit lanes consume 64 bytes per
/// step, the lanes merge via single-block folds, and the 16-byte
/// residual state plus the input tail finish on the table path.
/// Bit-identical to update_table (tests compare the two).
__attribute__((target("pclmul")))
std::uint32_t update_clmul(std::uint32_t state, ByteSpan data) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  const __m128i k1 = _mm_set_epi64x(static_cast<long long>(kFoldHi),
                                    static_cast<long long>(kFoldLo));

  // Seed: XOR the incoming state into the first four message bytes —
  // identical to how the table loop consumes it.
  const __m128i seed = _mm_cvtsi32_si128(static_cast<int>(state));
  __m128i x;
  if (n >= 128) {
    const __m128i k4 = _mm_set_epi64x(static_cast<long long>(kFold4Hi),
                                      static_cast<long long>(kFold4Lo));
    __m128i x0 = _mm_xor_si128(load(p), seed);
    __m128i x1 = load(p + 16);
    __m128i x2 = load(p + 32);
    __m128i x3 = load(p + 48);
    p += 64;
    n -= 64;
    while (n >= 64) {
      x0 = fold(x0, k4, load(p));
      x1 = fold(x1, k4, load(p + 16));
      x2 = fold(x2, k4, load(p + 32));
      x3 = fold(x3, k4, load(p + 48));
      p += 64;
      n -= 64;
    }
    x = fold(fold(fold(x0, k1, x1), k1, x2), k1, x3);
  } else {
    x = _mm_xor_si128(load(p), seed);
    p += 16;
    n -= 16;
  }
  while (n >= 16) {
    x = fold(x, k1, load(p));
    p += 16;
    n -= 16;
  }
  alignas(16) std::uint8_t residual[16];
  _mm_store_si128(reinterpret_cast<__m128i*>(residual), x);
  state = update_table(0, ByteSpan{residual, 16});
  return update_table(state, ByteSpan{p, n});
}

#endif  // __x86_64__

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, ByteSpan data) noexcept {
#if defined(__x86_64__)
  // One-time CPUID probe; short inputs stay on the table path (the fold
  // needs >= 2 blocks and only wins once its setup amortizes).
  static const bool has_clmul = __builtin_cpu_supports("pclmul");
  if (has_clmul && data.size() >= 64) return update_clmul(state, data);
#endif
  return update_table(state, data);
}

std::uint32_t crc32(ByteSpan data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace rhik
