#include "common/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

// The 8-byte fold below loads input words with little-endian semantics.
static_assert(std::endian::native == std::endian::little,
              "crc32 slicing-by-8 fold assumes a little-endian host");

namespace rhik {

namespace {

// Eight derived tables; table[0] is the classic byte-at-a-time table and
// table[k][b] equals the CRC of byte b followed by k zero bytes, which is
// what lets eight input bytes be folded per iteration.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[k][i] = c;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, ByteSpan data) noexcept {
  const auto& t = kTables.t;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  while (n >= 8) {
    // Little-endian load of the first word folded with the running CRC;
    // memcpy keeps it alignment-safe.
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= state;
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
            t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) state = t[0][(state ^ *p++) & 0xFFu] ^ (state >> 8);
  return state;
}

std::uint32_t crc32(ByteSpan data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace rhik
