#include "common/sim_clock.hpp"

namespace rhik {

double mib_per_sec(std::uint64_t bytes, SimTime elapsed) noexcept {
  if (elapsed == 0) return 0.0;
  const double secs = static_cast<double>(elapsed) / static_cast<double>(kSecond);
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / secs;
}

double ops_per_sec(std::uint64_t ops, SimTime elapsed) noexcept {
  if (elapsed == 0) return 0.0;
  const double secs = static_cast<double>(elapsed) / static_cast<double>(kSecond);
  return static_cast<double>(ops) / secs;
}

}  // namespace rhik
