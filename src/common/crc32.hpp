// Software CRC-32 (the reflected 0xEDB88320 polynomial used by zlib,
// Ethernet, SATA), slicing-by-8 so integrity checks stay cheap even on
// 32 KiB pages. The device uses it to stamp every programmed page; the
// recovery scan uses it to tell a torn page from a valid one.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace rhik {

/// One-shot CRC-32 of `data`.
[[nodiscard]] std::uint32_t crc32(ByteSpan data) noexcept;

/// Streaming interface for checksumming discontiguous buffers (e.g. a
/// page's data area followed by its spare area):
///
///   state = crc32_init();
///   state = crc32_update(state, a);
///   state = crc32_update(state, b);
///   crc    = crc32_final(state);
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, ByteSpan data) noexcept;
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace rhik
