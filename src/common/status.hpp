// Status and Result types used across the RHIK codebase.
//
// The emulator models a storage device: most operations can fail for
// device-level reasons (device full, key not found, uncorrectable index
// collision, ...). We follow the C++ Core Guidelines advice of making
// errors explicit in signatures rather than throwing across module
// boundaries on expected conditions.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace rhik {

/// Device-level status codes, loosely mirroring the SNIA KV API result
/// codes the paper's host stack uses.
enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound,            ///< key does not exist
  kAlreadyExists,       ///< insert of a key that is present (when disallowed)
  kDeviceFull,          ///< no free flash capacity left
  kIndexFull,           ///< index cannot accept more records (pre-resize)
  kCollisionAbort,      ///< hopscotch displacement failed (paper §IV-A1)
  kInvalidArgument,     ///< malformed key/value/config
  kCorruption,          ///< on-flash structure failed validation
  kIoError,             ///< flash-level failure (bad block, rule violation)
  kBusy,                ///< device is resizing / migrating and queueing halted
  kUnsupported,         ///< operation not supported by this configuration
  kQueueFull,           ///< admission/quota rejection — transient, retry later
  kSnapshotTooOld,      ///< pin outlived the version-retention bound (retryable
                        ///< with a fresh snapshot; never returns torn data)
  kIteratorMax,         ///< all iterator handles in use — close one and retry
};

/// Human-readable name for a status code (stable, for logs and tests).
std::string_view to_string(Status s) noexcept;

constexpr bool ok(Status s) noexcept { return s == Status::kOk; }

/// Minimal expected-like carrier: either a value or a non-kOk Status.
/// (std::expected is C++23; this is the subset we need.)
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), status_(Status::kOk) {}  // NOLINT
  Result(Status s) : status_(s) { assert(s != Status::kOk); }          // NOLINT

  [[nodiscard]] bool has_value() const noexcept { return status_ == Status::kOk; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] Status status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::move(*value_);
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace rhik
