// Log-bucketed histogram for latency and count distributions.
//
// Used by the bench harness to report the percentile series the paper
// plots (e.g. Fig. 5b: percentile of flash accesses per metadata access).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace rhik {

/// Histogram over non-negative 64-bit samples with hybrid buckets:
/// exact buckets for small values (0..127) and log2 sub-buckets above.
/// Percentile queries interpolate within a bucket.
class Histogram {
 public:
  Histogram() = default;

  void record(std::uint64_t value) noexcept;
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;

  /// Merge another histogram into this one.
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  /// Value at percentile `p` in [0, 100]. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const noexcept;

  /// Fraction of samples <= value (empirical CDF).
  [[nodiscard]] double cdf(std::uint64_t value) const noexcept;

  void reset() noexcept;

  /// One-line summary (count/mean/p50/p99/max) for logging.
  [[nodiscard]] std::string summary() const;

  // -- Bucket iteration (exporters; obs::Timer shares the mapping) -----------
  // The bucket layout is part of the exporter contract: 128 exact buckets
  // for values 0..127, then 8 linear sub-buckets per log2 range above.

  /// Total number of buckets (fixed at compile time).
  [[nodiscard]] static constexpr std::size_t bucket_count() noexcept {
    return kBuckets;
  }
  /// Bucket index a value falls into.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    return bucket_for(v);
  }
  /// Smallest / largest value mapping to bucket `b`.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t b) noexcept {
    return bucket_lo(b);
  }
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept {
    return bucket_hi(b);
  }
  /// Sample count recorded in bucket `b`.
  [[nodiscard]] std::uint64_t bucket_value(std::size_t b) const noexcept {
    return buckets_[b];
  }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }

  /// Rebuilds a histogram from per-bucket counts (length `bucket_count()`)
  /// plus the scalar moments — the inverse of bucket iteration, used by
  /// obs::Timer snapshots and the JSON importer. Buckets beyond `n` are
  /// zero. `min`/`max` are ignored when every bucket is empty.
  [[nodiscard]] static Histogram from_buckets(const std::uint64_t* counts,
                                              std::size_t n, std::uint64_t sum,
                                              std::uint64_t min,
                                              std::uint64_t max) noexcept;

  /// JSON object with scalar moments, p50/p90/p99, and the non-empty
  /// buckets as [lower, upper, count] triples:
  ///   {"count":N,"sum":S,"min":m,"max":M,"mean":..,"p50":..,"p90":..,
  ///    "p99":..,"buckets":[[lo,hi,n],...]}
  [[nodiscard]] std::string to_json() const;

 private:
  // 128 exact buckets + 57 log2 ranges * 8 sub-buckets.
  static constexpr std::size_t kExact = 128;
  static constexpr std::size_t kSub = 8;
  static constexpr std::size_t kBuckets = kExact + (64 - 7) * kSub;

  static std::size_t bucket_for(std::uint64_t v) noexcept;
  static std::uint64_t bucket_lo(std::size_t b) noexcept;
  static std::uint64_t bucket_hi(std::size_t b) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace rhik
