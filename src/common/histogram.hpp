// Log-bucketed histogram for latency and count distributions.
//
// Used by the bench harness to report the percentile series the paper
// plots (e.g. Fig. 5b: percentile of flash accesses per metadata access).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace rhik {

/// Histogram over non-negative 64-bit samples with hybrid buckets:
/// exact buckets for small values (0..127) and log2 sub-buckets above.
/// Percentile queries interpolate within a bucket.
class Histogram {
 public:
  Histogram() = default;

  void record(std::uint64_t value) noexcept;
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;

  /// Merge another histogram into this one.
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  /// Value at percentile `p` in [0, 100]. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const noexcept;

  /// Fraction of samples <= value (empirical CDF).
  [[nodiscard]] double cdf(std::uint64_t value) const noexcept;

  void reset() noexcept;

  /// One-line summary (count/mean/p50/p99/max) for logging.
  [[nodiscard]] std::string summary() const;

 private:
  // 128 exact buckets + 57 log2 ranges * 8 sub-buckets.
  static constexpr std::size_t kExact = 128;
  static constexpr std::size_t kSub = 8;
  static constexpr std::size_t kBuckets = kExact + (64 - 7) * kSub;

  static std::size_t bucket_for(std::uint64_t v) noexcept;
  static std::uint64_t bucket_lo(std::size_t b) noexcept;
  static std::uint64_t bucket_hi(std::size_t b) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace rhik
