// Per-op trace spans and the bounded trace ring.
//
// Every device command (when ObsConfig::metrics is on) carries an
// OpTrace down the submit → drain → index → flash path. Stage scopes
// accumulate sim-clock time per stage (queue wait, index probing, data-
// log flash, GC interference) and the device stamps flash-read deltas at
// completion, giving per-op read amplification. Completed traces feed
// the registry's stage timers (always) and a bounded ring of recent
// traces (every `trace_sample_every`-th op) for postmortem inspection.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.hpp"
#include "common/status.hpp"

namespace rhik::obs {

/// Observability knobs (kvssd::DeviceConfig::obs).
struct ObsConfig {
  /// Master switch for per-op stage metrics and tracing. The component
  /// counters (NandStats, IndexOpStats, …) are always maintained; this
  /// gates only the obs layer's per-op work.
  bool metrics = true;
  /// Record every Nth completed op into the trace ring; 0 disables the
  /// ring entirely (stage timers still aggregate).
  std::uint32_t trace_sample_every = 32;
  /// Bounded ring of recent traces (oldest evicted first).
  std::size_t trace_ring_capacity = 1024;
  /// >0: fire the device's metrics-dump hook every this many sim-clock
  /// nanoseconds (see KvssdDevice::set_metrics_dump).
  SimTime dump_period_ns = 0;
};

enum class OpKind : std::uint8_t { kPut, kGet, kDel, kExist, kBatch };

[[nodiscard]] const char* to_string(OpKind k) noexcept;

/// Stages an op passes through; indexes OpTrace::stage_ns.
enum class Stage : std::uint8_t {
  kIndex = 0,  ///< index probe/update (includes its metadata flash I/O)
  kFlash = 1,  ///< data-log reads/writes (FlashKvStore)
  kGc = 2,     ///< foreground GC charged to this op
  kCount = 3,
};

[[nodiscard]] const char* to_string(Stage s) noexcept;

/// One command's record. Stage times overlap is possible (index flash
/// reads are inside the index stage, not the flash stage) and stages
/// need not sum to total_ns (command overhead, bookkeeping).
struct OpTrace {
  std::uint64_t seq = 0;  ///< per-device op sequence number
  OpKind kind = OpKind::kGet;
  Status status = Status::kOk;
  SimTime start_ns = 0;    ///< sim time at execution start
  SimTime queue_ns = 0;    ///< submit → execution start (async only)
  SimTime total_ns = 0;    ///< execution start → completion
  std::array<SimTime, static_cast<std::size_t>(Stage::kCount)> stage_ns{};
  std::uint64_t flash_reads = 0;        ///< NAND page reads this op (read amp)
  std::uint64_t index_flash_reads = 0;  ///< metadata subset of the above

  // Baselines captured at op start (not part of the exported record).
  std::uint64_t nand_reads_at_start = 0;
  std::uint64_t index_reads_at_start = 0;

  [[nodiscard]] SimTime stage(Stage s) const noexcept {
    return stage_ns[static_cast<std::size_t>(s)];
  }

  /// One-line rendering for dumps/debugging.
  [[nodiscard]] std::string to_string() const;
};

/// RAII span: adds elapsed sim time to one stage of the active trace.
/// Null trace → no-op, so un-instrumented call sites cost one branch.
class StageScope {
 public:
  StageScope(OpTrace* t, Stage s, const SimClock& clock) noexcept
      : t_(t), clock_(&clock), s_(s), t0_(t ? clock.now() : 0) {}
  ~StageScope() {
    if (t_ != nullptr) {
      t_->stage_ns[static_cast<std::size_t>(s_)] += clock_->now() - t0_;
    }
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  OpTrace* t_;
  const SimClock* clock_;
  Stage s_;
  SimTime t0_;
};

/// Bounded ring of recent traces. Pushes come from the device's owner
/// thread; reads (tests, exporters) may come from elsewhere, so access
/// is mutex-guarded — pushes are already down-sampled, so the lock is
/// uncontended in steady state.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {}

  void push(const OpTrace& t) {
    std::lock_guard lk(mu_);
    if (ring_.size() < cap_) {
      ring_.push_back(t);
    } else {
      ring_[head_] = t;
      head_ = (head_ + 1) % cap_;
    }
    recorded_++;
  }

  /// Copies out the retained traces, oldest first.
  [[nodiscard]] std::vector<OpTrace> recent() const {
    std::lock_guard lk(mu_);
    std::vector<OpTrace> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  /// Total traces ever pushed (recorded - size == evicted).
  [[nodiscard]] std::uint64_t recorded() const {
    std::lock_guard lk(mu_);
    return recorded_;
  }

  void clear() {
    std::lock_guard lk(mu_);
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::size_t cap_;
  std::size_t head_ = 0;  ///< oldest element once the ring is full
  std::uint64_t recorded_ = 0;
  std::vector<OpTrace> ring_;
};

}  // namespace rhik::obs
