// Unified metrics subsystem (observability tentpole).
//
// One registry of named counters, gauges and Histogram-backed timers
// replaces the per-bench ad-hoc reporting over the repo's scattered
// `*Stats` structs. Design constraints:
//
//  - Hot-path cheap. Counter increments are striped across cache-line-
//    padded relaxed atomics (one stripe per thread, assigned round-robin
//    on first use) — no locks, no contention between shard workers.
//    Timer::record is a handful of relaxed atomic adds into the shared
//    Histogram bucket layout.
//  - Snapshot/merge, not live aggregation. A MetricsSnapshot is a plain
//    value object: counters sum on merge, gauges merge by a per-gauge
//    mode (sum, or max for sim-clock-style values), timers merge their
//    histograms. ShardedKvssd reports one coherent array view by merging
//    per-shard snapshots.
//  - Exportable. to_json() / from_json() round-trip the snapshot
//    (including histogram buckets, so percentiles survive); to_text()
//    is the human dump the benches print.
//
// The existing component structs (NandStats, GcStats, IndexOpStats, …)
// stay as the single-threaded owners of their counters; they publish
// into a snapshot through small `publish()` members (see each header).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.hpp"
#include "common/sim_clock.hpp"
#include "common/status.hpp"

namespace rhik::obs {

/// How a gauge combines across shards when snapshots merge.
enum class MergeMode : std::uint8_t {
  kSum,  ///< additive quantity (live bytes, key count)
  kMax,  ///< high-water / clock quantity (sim time, stall time)
  kMin,
};

/// Monotonic counter, striped so concurrent writers (shard workers,
/// producer threads) never contend on a cache line. Increments are
/// relaxed atomic adds on the calling thread's stripe; value() sums the
/// stripes (a racing read may miss in-flight increments, which is fine
/// for monitoring — quiesce first for exact totals).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    slots_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };

  /// Stable per-thread stripe, assigned round-robin on first use; shared
  /// by every Counter so one thread_local covers them all.
  static std::size_t stripe_index() noexcept;

  std::array<Slot, kStripes> slots_{};
};

/// Point-in-time value (queue depth, occupancy, clock). Single atomic —
/// gauges are set/adjusted rarely compared to counter increments.
class Gauge {
 public:
  explicit Gauge(MergeMode mode = MergeMode::kSum) : mode_(mode) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] MergeMode mode() const noexcept { return mode_; }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
  MergeMode mode_;
};

/// Histogram-backed timer (or any distribution: flash reads per op, …).
/// Lock-free: shares Histogram's bucket layout but keeps the buckets as
/// relaxed atomics; snapshot() rebuilds a plain Histogram.
class Timer {
 public:
  Timer() = default;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void record(std::uint64_t v) noexcept {
    buckets_[Histogram::bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomic_floor(min_, v);
    atomic_ceil(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// Materializes the distribution recorded so far.
  [[nodiscard]] Histogram snapshot() const;

  void reset() noexcept;

 private:
  static void atomic_floor(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_ceil(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, Histogram::bucket_count()> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Plain-value snapshot of a registry plus anything components publish
/// into it. Mergeable and serializable; the unit every exporter speaks.
struct MetricsSnapshot {
  struct GaugeValue {
    std::int64_t value = 0;
    MergeMode mode = MergeMode::kSum;
  };

  /// Sim-clock capture time; maxed on merge (array time is the slowest
  /// shard's clock).
  SimTime captured_at_ns = 0;
  std::map<std::string, std::uint64_t> counters;  ///< summed on merge
  std::map<std::string, GaugeValue> gauges;       ///< merged per mode
  std::map<std::string, Histogram> timers;        ///< histogram-merged

  /// Accumulates into the named counter (additive, so repeated publishes
  /// of distinct sources compose).
  void add_counter(std::string name, std::uint64_t v) {
    counters[std::move(name)] += v;
  }
  void set_gauge(std::string name, std::int64_t v,
                 MergeMode mode = MergeMode::kSum) {
    gauges[std::move(name)] = GaugeValue{v, mode};
  }
  /// Merges the histogram into the named timer.
  void add_timer(std::string name, const Histogram& h) {
    timers[std::move(name)].merge(h);
  }

  [[nodiscard]] std::uint64_t counter(std::string_view name,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t gauge(std::string_view name,
                                   std::int64_t fallback = 0) const;
  /// nullptr when absent.
  [[nodiscard]] const Histogram* timer(std::string_view name) const;

  /// Merges another snapshot: counters sum, gauges combine per their
  /// mode, timers merge histograms, captured_at_ns maxes.
  void merge_from(const MetricsSnapshot& other);

  /// Full JSON document:
  ///   {"captured_at_ns":..,"counters":{..},"gauges":{..},"timers":{..}}
  /// Timer values use Histogram::to_json(); gauge values carry their
  /// merge mode so a parsed snapshot merges identically.
  [[nodiscard]] std::string to_json() const;

  /// Parses a document produced by to_json(). Percentile fields are
  /// recomputed from the buckets, so to_json(from_json(s)) is stable.
  [[nodiscard]] static Result<MetricsSnapshot> from_json(std::string_view json);

  /// Human-readable dump (sorted, one metric per line).
  [[nodiscard]] std::string to_text() const;
};

/// Named-metric registry. Registration/lookup take a mutex (cold path);
/// the returned references are stable for the registry's lifetime and
/// their mutation paths are lock-free (see Counter/Gauge/Timer).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric with this name, creating it on first use.
  Counter& counter(std::string_view name);
  /// `mode` only applies on creation; later lookups keep the original.
  Gauge& gauge(std::string_view name, MergeMode mode = MergeMode::kSum);
  Timer& timer(std::string_view name);

  /// Merges every registered metric into `out` (names collide additively
  /// with what is already there).
  void snapshot_into(MetricsSnapshot& out) const;
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

}  // namespace rhik::obs
