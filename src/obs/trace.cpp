#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace rhik::obs {

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kPut: return "put";
    case OpKind::kGet: return "get";
    case OpKind::kDel: return "del";
    case OpKind::kExist: return "exist";
    case OpKind::kBatch: return "batch";
  }
  return "?";
}

const char* to_string(Stage s) noexcept {
  switch (s) {
    case Stage::kIndex: return "index";
    case Stage::kFlash: return "flash";
    case Stage::kGc: return "gc";
    case Stage::kCount: break;
  }
  return "?";
}

std::string OpTrace::to_string() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "#%" PRIu64 " %-5s %-12s total=%" PRIu64 "ns queue=%" PRIu64
                " index=%" PRIu64 " flash=%" PRIu64 " gc=%" PRIu64
                " reads=%" PRIu64 " (index %" PRIu64 ")",
                seq, obs::to_string(kind),
                std::string(rhik::to_string(status)).c_str(), total_ns,
                queue_ns, stage(Stage::kIndex), stage(Stage::kFlash),
                stage(Stage::kGc), flash_reads, index_flash_reads);
  return buf;
}

}  // namespace rhik::obs
