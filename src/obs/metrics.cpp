#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace rhik::obs {

// -- Counter -------------------------------------------------------------------

std::size_t Counter::stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

// -- Timer ---------------------------------------------------------------------

Histogram Timer::snapshot() const {
  std::array<std::uint64_t, Histogram::bucket_count()> counts;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return Histogram::from_buckets(counts.data(), counts.size(),
                                 sum_.load(std::memory_order_relaxed),
                                 min_.load(std::memory_order_relaxed),
                                 max_.load(std::memory_order_relaxed));
}

void Timer::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -- MetricsRegistry -----------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, MergeMode mode) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>(mode)).first;
  }
  return *it->second;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

void MetricsRegistry::snapshot_into(MetricsSnapshot& out) const {
  std::lock_guard lk(mu_);
  for (const auto& [name, c] : counters_) out.add_counter(name, c->value());
  for (const auto& [name, g] : gauges_) {
    out.set_gauge(name, g->value(), g->mode());
  }
  for (const auto& [name, t] : timers_) out.add_timer(name, t->snapshot());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snapshot_into(snap);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

// -- MetricsSnapshot -----------------------------------------------------------

std::uint64_t MetricsSnapshot::counter(std::string_view name,
                                       std::uint64_t fallback) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name,
                                    std::int64_t fallback) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? fallback : it->second.value;
}

const Histogram* MetricsSnapshot::timer(std::string_view name) const {
  const auto it = timers.find(std::string(name));
  return it == timers.end() ? nullptr : &it->second;
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  captured_at_ns = std::max(captured_at_ns, other.captured_at_ns);
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, gv] : other.gauges) {
    auto it = gauges.find(name);
    if (it == gauges.end()) {
      gauges[name] = gv;
      continue;
    }
    switch (gv.mode) {
      case MergeMode::kSum:
        it->second.value += gv.value;
        break;
      case MergeMode::kMax:
        it->second.value = std::max(it->second.value, gv.value);
        break;
      case MergeMode::kMin:
        it->second.value = std::min(it->second.value, gv.value);
        break;
    }
  }
  for (const auto& [name, h] : other.timers) timers[name].merge(h);
}

namespace {

const char* mode_name(MergeMode m) noexcept {
  switch (m) {
    case MergeMode::kSum: return "sum";
    case MergeMode::kMax: return "max";
    case MergeMode::kMin: return "min";
  }
  return "sum";
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(1024);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"captured_at_ns\":%" PRIu64,
                captured_at_ns);
  out += buf;
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, v);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gv] : gauges) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    std::snprintf(buf, sizeof(buf), ":{\"value\":%" PRId64 ",\"mode\":\"%s\"}",
                  gv.value, mode_name(gv.mode));
    out += buf;
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, h] : timers) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += h.to_json();
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "captured_at_ns %" PRIu64 "\n",
                captured_at_ns);
  out += buf;
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%-36s %" PRIu64 "\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, gv] : gauges) {
    std::snprintf(buf, sizeof(buf), "%-36s %" PRId64 " (%s)\n", name.c_str(),
                  gv.value, mode_name(gv.mode));
    out += buf;
  }
  for (const auto& [name, h] : timers) {
    std::snprintf(buf, sizeof(buf), "%-36s %s\n", name.c_str(),
                  h.summary().c_str());
    out += buf;
  }
  return out;
}

// -- JSON import ---------------------------------------------------------------
//
// Minimal recursive-descent parser over the subset to_json() emits:
// objects, arrays, strings with \" and \\ escapes, and numbers
// (decimal fractions are accepted and truncated toward zero — the
// serialized percentile fields are recomputed from buckets anyway).

namespace {

class JsonReader {
 public:
  explicit JsonReader(std::string_view s) : s_(s) {}

  bool skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ < s_.size();
  }

  bool consume(char c) {
    if (!skip_ws() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  [[nodiscard]] bool peek_is(char c) {
    return skip_ws() && s_[pos_] == c;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        *out += s_[pos_++];
      } else {
        *out += c;
      }
    }
    return false;
  }

  /// Parses a number; fractional digits are discarded.
  bool parse_int(std::int64_t* out) {
    if (!skip_ws()) return false;
    bool neg = false;
    if (s_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      return false;
    }
    std::uint64_t v = 0;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_++] - '0');
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {  // drop the fraction
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    *out = neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
    return true;
  }

  bool parse_u64(std::uint64_t* out) {
    if (!skip_ws()) return false;
    if (!std::isdigit(static_cast<unsigned char>(s_[pos_]))) return false;
    std::uint64_t v = 0;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_++] - '0');
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    *out = v;
    return true;
  }

  /// Iterates `{"key": <value-parsed-by-fn>}`; fn returns false to abort.
  template <typename Fn>
  bool parse_object(Fn&& fn) {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      std::string key;
      if (!parse_string(&key) || !consume(':')) return false;
      if (!fn(key)) return false;
    } while (consume(','));
    return consume('}');
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

bool parse_histogram(JsonReader& r, Histogram* out) {
  std::uint64_t sum = 0, min = 0, max = 0;
  std::vector<std::uint64_t> counts(Histogram::bucket_count(), 0);
  const bool ok = r.parse_object([&](const std::string& key) {
    if (key == "buckets") {
      if (!r.consume('[')) return false;
      if (r.consume(']')) return true;
      do {
        std::uint64_t lo = 0, hi = 0, n = 0;
        if (!r.consume('[') || !r.parse_u64(&lo) || !r.consume(',') ||
            !r.parse_u64(&hi) || !r.consume(',') || !r.parse_u64(&n) ||
            !r.consume(']')) {
          return false;
        }
        counts[Histogram::bucket_index(lo)] += n;
      } while (r.consume(','));
      return r.consume(']');
    }
    std::uint64_t v = 0;
    if (!r.parse_u64(&v)) return false;
    if (key == "sum") sum = v;
    if (key == "min") min = v;
    if (key == "max") max = v;
    return true;  // count/mean/p* recomputed from buckets
  });
  if (!ok) return false;
  *out = Histogram::from_buckets(counts.data(), counts.size(), sum, min, max);
  return true;
}

}  // namespace

Result<MetricsSnapshot> MetricsSnapshot::from_json(std::string_view json) {
  MetricsSnapshot snap;
  JsonReader r(json);
  const bool ok = r.parse_object([&](const std::string& section) {
    if (section == "captured_at_ns") {
      return r.parse_u64(&snap.captured_at_ns);
    }
    if (section == "counters") {
      return r.parse_object([&](const std::string& name) {
        std::uint64_t v = 0;
        if (!r.parse_u64(&v)) return false;
        snap.counters[name] = v;
        return true;
      });
    }
    if (section == "gauges") {
      return r.parse_object([&](const std::string& name) {
        GaugeValue gv;
        const bool inner = r.parse_object([&](const std::string& field) {
          if (field == "value") return r.parse_int(&gv.value);
          if (field == "mode") {
            std::string mode;
            if (!r.parse_string(&mode)) return false;
            gv.mode = mode == "max"   ? MergeMode::kMax
                      : mode == "min" ? MergeMode::kMin
                                      : MergeMode::kSum;
            return true;
          }
          return false;
        });
        if (!inner) return false;
        snap.gauges[name] = gv;
        return true;
      });
    }
    if (section == "timers") {
      return r.parse_object([&](const std::string& name) {
        Histogram h;
        if (!parse_histogram(r, &h)) return false;
        snap.timers[name] = std::move(h);
        return true;
      });
    }
    return false;  // unknown section
  });
  if (!ok) return Status::kInvalidArgument;
  return snap;
}

}  // namespace rhik::obs
