#include "ftl/layout.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rhik::ftl {

void SpareTag::encode(MutByteSpan spare) const noexcept {
  assert(spare.size() >= kEncodedSize);
  spare[0] = static_cast<std::uint8_t>(kind);
  spare[1] = static_cast<std::uint8_t>(stream);
}

SpareTag SpareTag::decode(ByteSpan spare) noexcept {
  SpareTag tag;
  if (spare.size() >= kEncodedSize) {
    tag.kind = static_cast<PageKind>(spare[0]);
    tag.stream = static_cast<Stream>(spare[1]);
  }
  return tag;
}

void PairHeader::encode(MutByteSpan dst, std::size_t off) const noexcept {
  assert((key_len & kTombstoneBit) == 0);
  put_u64(dst, off, sig);
  put_u16(dst, off + 8,
          static_cast<std::uint16_t>(key_len | (tombstone ? kTombstoneBit : 0)));
  put_u32(dst, off + 10, val_len);
  put_u64(dst, off + 14, epoch);
}

PairHeader PairHeader::decode(ByteSpan src, std::size_t off) noexcept {
  PairHeader h;
  h.sig = get_u64(src, off);
  const std::uint16_t raw = get_u16(src, off + 8);
  h.tombstone = (raw & kTombstoneBit) != 0;
  h.key_len = static_cast<std::uint16_t>(raw & ~kTombstoneBit);
  h.val_len = get_u32(src, off + 10);
  h.epoch = get_u64(src, off + 14);
  return h;
}

void DataPageSpare::encode(MutByteSpan spare) const noexcept {
  assert(spare.size() >= kEncodedSize);
  put_u64(spare, SpareTag::kEncodedSize, seq);
  put_u64(spare, SpareTag::kEncodedSize + 8, epoch_hw);
}

DataPageSpare DataPageSpare::decode(ByteSpan spare) noexcept {
  DataPageSpare s;
  if (spare.size() >= kEncodedSize) {
    s.seq = get_u64(spare, SpareTag::kEncodedSize);
    s.epoch_hw = get_u64(spare, SpareTag::kEncodedSize + 8);
  }
  return s;
}

void PageFooter::encode(MutByteSpan page, const std::vector<std::uint64_t>& sigs) noexcept {
  const std::size_t n = sigs.size();
  assert(size_for(n) <= page.size());
  put_u16(page, page.size() - kCountSize, static_cast<std::uint16_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    put_u64(page, page.size() - kCountSize - (i + 1) * kSigSize, sigs[i]);
  }
}

std::optional<std::vector<std::uint64_t>> PageFooter::decode(ByteSpan page) noexcept {
  if (page.size() < kCountSize) return std::nullopt;
  const std::uint16_t n = get_u16(page, page.size() - kCountSize);
  if (size_for(n) > page.size()) return std::nullopt;
  std::vector<std::uint64_t> sigs(n);
  for (std::size_t i = 0; i < n; ++i) {
    sigs[i] = get_u64(page, page.size() - kCountSize - (i + 1) * kSigSize);
  }
  return sigs;
}

DataPageBuilder::DataPageBuilder(std::uint32_t page_size)
    : buf_(page_size, 0xFF), page_size_(page_size) {
  assert(page_size >= PairHeader::kSize + PageFooter::size_for(1));
}

std::size_t DataPageBuilder::remaining() const noexcept {
  const std::size_t footer_after = PageFooter::size_for(sigs_.size() + 1);
  if (write_off_ + footer_after >= page_size_) return 0;
  return page_size_ - footer_after - write_off_;
}

bool DataPageBuilder::fits(std::uint64_t pair_bytes) const noexcept {
  return pair_bytes <= remaining();
}

bool DataPageBuilder::fits_in_empty_page(std::uint32_t page_size,
                                         std::uint64_t pair_bytes) noexcept {
  return pair_bytes + PageFooter::size_for(1) <= page_size;
}

std::size_t DataPageBuilder::append(const PairHeader& hdr, ByteSpan key, ByteSpan value) {
  assert(fits(hdr.pair_bytes()));
  assert(key.size() == hdr.key_len && value.size() == hdr.val_len);
  const std::size_t off = write_off_;
  hdr.encode(buf_, off);
  put_bytes(buf_, off + PairHeader::kSize, key);
  put_bytes(buf_, off + PairHeader::kSize + key.size(), value);
  write_off_ = off + static_cast<std::size_t>(hdr.pair_bytes());
  sigs_.push_back(hdr.sig);
  return off;
}

void DataPageBuilder::begin_extent(const PairHeader& hdr, ByteSpan key,
                                   ByteSpan value_prefix) {
  assert(empty() && write_off_ == 0);
  assert(key.size() == hdr.key_len);
  const std::size_t cap = page_size_ - PageFooter::size_for(1);
  assert(PairHeader::kSize + key.size() + value_prefix.size() == cap);
  hdr.encode(buf_, 0);
  put_bytes(buf_, PairHeader::kSize, key);
  put_bytes(buf_, PairHeader::kSize + key.size(), value_prefix);
  write_off_ = cap;
  sigs_.push_back(hdr.sig);
}

bool DataPageBuilder::contains(std::uint64_t sig) const noexcept {
  return std::find(sigs_.begin(), sigs_.end(), sig) != sigs_.end();
}

ByteSpan DataPageBuilder::finalize() {
  PageFooter::encode(buf_, sigs_);
  return buf_;
}

void DataPageBuilder::reset() {
  std::fill(buf_.begin(), buf_.end(), 0xFF);
  sigs_.clear();
  write_off_ = 0;
}

std::optional<std::vector<ParsedPair>> parse_head_page(ByteSpan page,
                                                       std::uint32_t page_size) {
  if (page.size() < page_size) return std::nullopt;
  const auto sigs = PageFooter::decode(page.subspan(0, page_size));
  if (!sigs) return std::nullopt;
  const std::size_t footer = PageFooter::size_for(sigs->size());
  const std::size_t data_cap = page_size - footer;

  std::vector<ParsedPair> pairs;
  pairs.reserve(sigs->size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < sigs->size(); ++i) {
    if (off + PairHeader::kSize > data_cap) return std::nullopt;
    ParsedPair p;
    p.header = PairHeader::decode(page, off);
    if (p.header.sig != (*sigs)[i]) return std::nullopt;  // footer mismatch
    p.offset = off;
    const std::uint64_t total = p.header.pair_bytes();
    const std::size_t avail = data_cap - off;
    if (total <= avail) {
      p.in_page_bytes = static_cast<std::size_t>(total);
      p.spills = false;
      off += p.in_page_bytes;
    } else {
      // A spilling pair is always alone in its head page.
      if (i + 1 != sigs->size()) return std::nullopt;
      p.in_page_bytes = avail;
      p.spills = true;
    }
    pairs.push_back(p);
  }
  return pairs;
}

PageFind find_pair_in_page(ByteSpan page, std::uint32_t page_size,
                           std::uint64_t sig, ParsedPair* out) noexcept {
  if (page.size() < page_size || page_size < PageFooter::kCountSize) {
    return PageFind::kCorrupt;
  }
  const std::uint16_t n = get_u16(page, page_size - PageFooter::kCountSize);
  if (PageFooter::size_for(n) > page_size) return PageFind::kCorrupt;
#if defined(__GNUC__) || defined(__clang__)
  // The page is a zero-copy view of NAND storage, usually cache-cold;
  // issue all footer-line loads up front so the scan below overlaps the
  // misses instead of paying them one by one.
  {
    const std::size_t lo = (page_size - PageFooter::size_for(n)) & ~std::size_t{63};
    for (std::size_t o = lo; o < page_size; o += 64) __builtin_prefetch(page.data() + o);
    __builtin_prefetch(page.data());  // first header line
  }
#endif
  const auto footer_sig = [&](std::size_t i) {
    return get_u64(page, page_size - PageFooter::kCountSize -
                             (i + 1) * PageFooter::kSigSize);
  };

  // Newest wins: the footer lists pairs in append order, so the last
  // matching slot is the winner. Scanning backwards lets the first hit
  // end the search; a miss costs only this scan.
  std::size_t last = n;
  for (std::size_t i = n; i-- > 0;) {
    if (footer_sig(i) == sig) {
      last = i;
      break;
    }
  }
  if (last == n) return PageFind::kAbsent;

  // Skip the pairs in front of the winner reading only their length
  // fields; the winner alone gets the full header decode + footer
  // cross-check. (A spilling pair is never in front: it is alone in its
  // head page, so anything oversized before `last` is corruption.)
  const std::size_t data_cap = page_size - PageFooter::size_for(n);
  std::size_t off = 0;
  for (std::size_t i = 0; i < last; ++i) {
    if (off + PairHeader::kSize > data_cap) return PageFind::kCorrupt;
    const std::uint16_t key_len = static_cast<std::uint16_t>(
        get_u16(page, off + 8) & ~PairHeader::kTombstoneBit);
    const std::uint64_t total =
        PairHeader::kSize + key_len + get_u32(page, off + 10);
    if (total > data_cap - off) return PageFind::kCorrupt;
#if defined(__GNUC__) || defined(__clang__)
    // Headers chain through variable strides, so on a cold view each
    // header load waits out the previous miss. Pair sizes inside one
    // page are usually uniform; prefetch a few current-stride multiples
    // ahead to overlap those misses, seeding a deep pipeline on the
    // first iteration (the chain is fully serial until guesses land).
    // A wrong guess is just a wasted prefetch — correctness never rests
    // on the prediction.
    const std::uint64_t depth = (i == 0) ? 16 : 4;
    for (std::uint64_t k = 1; k <= depth; ++k) {
      const std::uint64_t guess = off + k * total;
      if (guess >= data_cap) break;
      __builtin_prefetch(page.data() + guess);
    }
#endif
    off += static_cast<std::size_t>(total);
  }

  if (off + PairHeader::kSize > data_cap) return PageFind::kCorrupt;
  ParsedPair p;
  p.header = PairHeader::decode(page, off);
  if (p.header.sig != sig) return PageFind::kCorrupt;  // footer mismatch
  p.offset = off;
  const std::uint64_t total = p.header.pair_bytes();
  const std::size_t avail = data_cap - off;
  if (total <= avail) {
    p.in_page_bytes = static_cast<std::size_t>(total);
    p.spills = false;
  } else {
    // A spilling pair is always alone in its head page.
    if (last + 1 != n) return PageFind::kCorrupt;
    p.in_page_bytes = avail;
    p.spills = true;
  }
  *out = p;
  return PageFind::kFound;
}

PageFind find_pair_in_page_at(ByteSpan page, std::uint32_t page_size,
                              std::uint64_t sig, std::uint64_t max_epoch,
                              ParsedPair* out) noexcept {
  if (page.size() < page_size || page_size < PageFooter::kCountSize) {
    return PageFind::kCorrupt;
  }
  const std::uint16_t n = get_u16(page, page_size - PageFooter::kCountSize);
  if (PageFooter::size_for(n) > page_size) return PageFind::kCorrupt;
  const auto footer_sig = [&](std::size_t i) {
    return get_u64(page, page_size - PageFooter::kCountSize -
                             (i + 1) * PageFooter::kSigSize);
  };

  // Forward walk with full decodes, keeping the LAST match whose epoch
  // fits under the cap — the newest version the snapshot may see here.
  const std::size_t data_cap = page_size - PageFooter::size_for(n);
  std::size_t off = 0;
  bool found = false;
  ParsedPair best;
  for (std::size_t i = 0; i < n; ++i) {
    if (off + PairHeader::kSize > data_cap) return PageFind::kCorrupt;
    ParsedPair p;
    p.header = PairHeader::decode(page, off);
    if (p.header.sig != footer_sig(i)) return PageFind::kCorrupt;
    p.offset = off;
    const std::uint64_t total = p.header.pair_bytes();
    const std::size_t avail = data_cap - off;
    if (total <= avail) {
      p.in_page_bytes = static_cast<std::size_t>(total);
      p.spills = false;
      off += p.in_page_bytes;
    } else {
      // A spilling pair is always alone in its head page.
      if (i + 1 != n) return PageFind::kCorrupt;
      p.in_page_bytes = avail;
      p.spills = true;
    }
    if (p.header.sig == sig && p.header.epoch <= max_epoch) {
      best = p;
      found = true;
    }
    if (p.spills) break;
  }
  if (!found) return PageFind::kAbsent;
  *out = best;
  return PageFind::kFound;
}

std::uint32_t continuation_pages(const flash::Geometry& g, std::uint64_t pair_bytes) {
  const std::uint64_t head_cap = g.page_size - PageFooter::size_for(1);
  if (pair_bytes <= head_cap) return 0;
  const std::uint64_t rest = pair_bytes - head_cap;
  return static_cast<std::uint32_t>((rest + g.page_size - 1) / g.page_size);
}

std::uint32_t extent_pages(const flash::Geometry& g, std::uint64_t pair_bytes) {
  return 1 + continuation_pages(g, pair_bytes);
}

}  // namespace rhik::ftl
