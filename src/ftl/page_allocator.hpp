// Log-structured page allocation over the NAND array.
//
// Two append streams (KV data zone, index zone — paper Fig. 3) each own an
// active erase block and hand out pages strictly in programming order.
// The allocator also keeps the per-block live-byte accounting that GC uses
// for victim selection, and reserves a few blocks of headroom so GC
// relocation can always make progress (standard over-provisioning).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/layout.hpp"

namespace rhik::ftl {

/// GC victim-selection policy.
enum class GcPolicy : std::uint8_t {
  kGreedy,       ///< least live bytes (original synchronous collector)
  kCostBenefit,  ///< (1-u)/(2u) * age with an erase-count wear tiebreak
};

/// Block-state census (free + active + sealed + reserved == num_blocks).
struct BlockCounts {
  std::uint32_t free = 0;
  std::uint32_t active = 0;
  std::uint32_t sealed = 0;
  std::uint32_t reserved = 0;
};

class PageAllocator {
 public:
  /// `gc_reserve_blocks` blocks are withheld from normal allocation so
  /// the garbage collector can always relocate live data.
  /// `reserved_tail_blocks` blocks at the *end* of the device are carved
  /// out entirely (checkpoint slots + journal ring); they never enter the
  /// free pool and are managed by their owner directly against the NAND.
  PageAllocator(flash::NandDevice* nand, std::uint32_t gc_reserve_blocks = 4,
                std::uint32_t reserved_tail_blocks = 0);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Next page of the stream's active block, opening a fresh block when
  /// the current one is full. `for_gc` allocations may dip into the GC
  /// reserve. Fails with kDeviceFull when no block is available.
  Result<flash::Ppa> allocate(Stream stream, bool for_gc = false);

  /// A physically contiguous run of `npages` pages within one erase
  /// block, for multi-page extents. Seals the current block (abandoning
  /// its unwritten tail) if it lacks room. npages must fit in a block.
  Result<flash::Ppa> allocate_extent(Stream stream, std::uint32_t npages,
                                     bool for_gc = false);

  // -- Liveness accounting ------------------------------------------------
  void add_live(flash::Ppa ppa, std::uint64_t bytes);
  void sub_live(flash::Ppa ppa, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t block_live_bytes(std::uint32_t block) const {
    return blocks_[block].live_bytes;
  }

  // -- GC support ----------------------------------------------------------
  /// Victim among sealed blocks, if any sealed block exists. kGreedy picks
  /// least live bytes; kCostBenefit maximizes (1-u)/(2u) * age (u = live
  /// utilization, age = allocation ticks since the block last took a
  /// write) and breaks near-ties (within 10% of the best score) toward
  /// the lower erase count, so reclamation pressure spreads wear.
  [[nodiscard]] std::optional<std::uint32_t> pick_victim(
      GcPolicy policy = GcPolicy::kGreedy) const;

  /// Erases the block and returns it to the free pool. The caller must
  /// have relocated all live data first.
  Status reclaim_block(std::uint32_t block);

  /// Recovery path: registers a block that already contains programmed
  /// pages (adopted NAND). The block is sealed — new writes go to fresh
  /// blocks; GC reclaims it once its live bytes justify it. Must be
  /// called before any allocation touches the block.
  Status adopt_block(std::uint32_t block, Stream stream, std::uint32_t pages_used);

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] std::uint32_t free_blocks() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] std::uint32_t gc_reserve() const noexcept { return gc_reserve_; }
  /// True when normal allocation is at (or past) the reserve floor and the
  /// device should run GC before accepting more writes.
  [[nodiscard]] bool needs_gc() const noexcept { return free_.size() <= gc_reserve_; }

  [[nodiscard]] Stream block_stream(std::uint32_t block) const {
    return blocks_[block].stream;
  }
  [[nodiscard]] bool is_sealed(std::uint32_t block) const {
    return blocks_[block].state == BlockState::kSealed;
  }
  [[nodiscard]] bool is_free(std::uint32_t block) const {
    return blocks_[block].state == BlockState::kFree;
  }
  /// Pages handed out so far in `block` (valid parse range for GC scans).
  [[nodiscard]] std::uint32_t pages_used(std::uint32_t block) const {
    return blocks_[block].next_page;
  }
  /// Allocation tick at which `block` last received a page (cost-benefit
  /// age input; 0 for never-written blocks).
  [[nodiscard]] std::uint64_t write_stamp(std::uint32_t block) const {
    return blocks_[block].write_stamp;
  }
  /// Monotonic allocation tick (advances once per page handed out).
  [[nodiscard]] std::uint64_t alloc_seq() const noexcept { return alloc_seq_; }
  /// Exact block-state census (invariant checks).
  [[nodiscard]] BlockCounts block_counts() const noexcept;

  /// Wear-aware open-block selection: hot/index streams take the
  /// least-erased free block, the cold stream the most-erased one (cold
  /// blocks stay sealed longest, resting the worn cells). Off by default
  /// so allocation order stays byte-for-byte deterministic for the
  /// existing unit tests.
  void set_wear_aware(bool on) noexcept { wear_aware_ = on; }

  /// Upper bound on bytes still allocatable without reclaiming anything.
  [[nodiscard]] std::uint64_t free_bytes_estimate() const noexcept;

  /// First block of the reserved tail region; equals num_blocks when no
  /// tail is reserved. Recovery scans stop here.
  [[nodiscard]] std::uint32_t first_reserved_block() const noexcept {
    return static_cast<std::uint32_t>(blocks_.size()) - reserved_tail_;
  }
  [[nodiscard]] std::uint32_t reserved_tail_blocks() const noexcept {
    return reserved_tail_;
  }

  /// Invoked with the block id right before any erase issued through
  /// reclaim_block(). The checkpoint journal uses this to flush buffered
  /// delta records: a replayed mapping must never point into a block that
  /// was erased after the record was produced but before it was durable.
  void set_pre_erase_hook(std::function<void(std::uint32_t)> hook) {
    pre_erase_hook_ = std::move(hook);
  }

 private:
  enum class BlockState : std::uint8_t { kFree, kActive, kSealed, kReserved };

  struct BlockInfo {
    BlockState state = BlockState::kFree;
    Stream stream = Stream::kData;
    std::uint32_t next_page = 0;
    std::uint64_t live_bytes = 0;
    std::uint64_t write_stamp = 0;  ///< alloc tick of the latest page
  };

  /// Opens a fresh block for the stream; respects the GC reserve.
  Result<std::uint32_t> open_block(Stream stream, bool for_gc);
  void seal(std::uint32_t block);

  flash::NandDevice* nand_;
  std::uint32_t gc_reserve_;
  std::uint32_t reserved_tail_ = 0;
  bool wear_aware_ = false;
  std::uint64_t alloc_seq_ = 0;
  std::vector<BlockInfo> blocks_;
  std::deque<std::uint32_t> free_;
  std::function<void(std::uint32_t)> pre_erase_hook_;
  /// Active block per stream; kNoBlock until first allocation.
  static constexpr std::uint32_t kNoBlock = UINT32_MAX;
  std::uint32_t active_[kNumStreams] = {kNoBlock, kNoBlock, kNoBlock};
};

}  // namespace rhik::ftl
