// Log-structured page allocation over the NAND array.
//
// Two append streams (KV data zone, index zone — paper Fig. 3) each own an
// active erase block and hand out pages strictly in programming order.
// The allocator also keeps the per-block live-byte accounting that GC uses
// for victim selection, and reserves a few blocks of headroom so GC
// relocation can always make progress (standard over-provisioning).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/layout.hpp"

namespace rhik::ftl {

class PageAllocator {
 public:
  /// `gc_reserve_blocks` blocks are withheld from normal allocation so
  /// the garbage collector can always relocate live data.
  PageAllocator(flash::NandDevice* nand, std::uint32_t gc_reserve_blocks = 4);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Next page of the stream's active block, opening a fresh block when
  /// the current one is full. `for_gc` allocations may dip into the GC
  /// reserve. Fails with kDeviceFull when no block is available.
  Result<flash::Ppa> allocate(Stream stream, bool for_gc = false);

  /// A physically contiguous run of `npages` pages within one erase
  /// block, for multi-page extents. Seals the current block (abandoning
  /// its unwritten tail) if it lacks room. npages must fit in a block.
  Result<flash::Ppa> allocate_extent(Stream stream, std::uint32_t npages,
                                     bool for_gc = false);

  // -- Liveness accounting ------------------------------------------------
  void add_live(flash::Ppa ppa, std::uint64_t bytes);
  void sub_live(flash::Ppa ppa, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t block_live_bytes(std::uint32_t block) const {
    return blocks_[block].live_bytes;
  }

  // -- GC support ----------------------------------------------------------
  /// Sealed block with the least live data, if any sealed block exists.
  [[nodiscard]] std::optional<std::uint32_t> pick_victim() const;

  /// Erases the block and returns it to the free pool. The caller must
  /// have relocated all live data first.
  Status reclaim_block(std::uint32_t block);

  /// Recovery path: registers a block that already contains programmed
  /// pages (adopted NAND). The block is sealed — new writes go to fresh
  /// blocks; GC reclaims it once its live bytes justify it. Must be
  /// called before any allocation touches the block.
  Status adopt_block(std::uint32_t block, Stream stream, std::uint32_t pages_used);

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] std::uint32_t free_blocks() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] std::uint32_t gc_reserve() const noexcept { return gc_reserve_; }
  /// True when normal allocation is at (or past) the reserve floor and the
  /// device should run GC before accepting more writes.
  [[nodiscard]] bool needs_gc() const noexcept { return free_.size() <= gc_reserve_; }

  [[nodiscard]] Stream block_stream(std::uint32_t block) const {
    return blocks_[block].stream;
  }
  [[nodiscard]] bool is_sealed(std::uint32_t block) const {
    return blocks_[block].state == BlockState::kSealed;
  }
  [[nodiscard]] bool is_free(std::uint32_t block) const {
    return blocks_[block].state == BlockState::kFree;
  }
  /// Pages handed out so far in `block` (valid parse range for GC scans).
  [[nodiscard]] std::uint32_t pages_used(std::uint32_t block) const {
    return blocks_[block].next_page;
  }

  /// Upper bound on bytes still allocatable without reclaiming anything.
  [[nodiscard]] std::uint64_t free_bytes_estimate() const noexcept;

 private:
  enum class BlockState : std::uint8_t { kFree, kActive, kSealed };

  struct BlockInfo {
    BlockState state = BlockState::kFree;
    Stream stream = Stream::kData;
    std::uint32_t next_page = 0;
    std::uint64_t live_bytes = 0;
  };

  /// Opens a fresh block for the stream; respects the GC reserve.
  Result<std::uint32_t> open_block(Stream stream, bool for_gc);
  void seal(std::uint32_t block);

  flash::NandDevice* nand_;
  std::uint32_t gc_reserve_;
  std::vector<BlockInfo> blocks_;
  std::deque<std::uint32_t> free_;
  /// Active block per stream; kNoBlock until first allocation.
  static constexpr std::uint32_t kNoBlock = UINT32_MAX;
  std::uint32_t active_[kNumStreams] = {kNoBlock, kNoBlock};
};

}  // namespace rhik::ftl
