// Log-structured page allocation over the NAND array.
//
// Two append streams (KV data zone, index zone — paper Fig. 3) each own an
// active erase block and hand out pages strictly in programming order.
// The allocator also keeps the per-block live-byte accounting that GC uses
// for victim selection, and reserves a few blocks of headroom so GC
// relocation can always make progress (standard over-provisioning).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/layout.hpp"

namespace rhik::ftl {

class PageAllocator {
 public:
  /// `gc_reserve_blocks` blocks are withheld from normal allocation so
  /// the garbage collector can always relocate live data.
  /// `reserved_tail_blocks` blocks at the *end* of the device are carved
  /// out entirely (checkpoint slots + journal ring); they never enter the
  /// free pool and are managed by their owner directly against the NAND.
  PageAllocator(flash::NandDevice* nand, std::uint32_t gc_reserve_blocks = 4,
                std::uint32_t reserved_tail_blocks = 0);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  /// Next page of the stream's active block, opening a fresh block when
  /// the current one is full. `for_gc` allocations may dip into the GC
  /// reserve. Fails with kDeviceFull when no block is available.
  Result<flash::Ppa> allocate(Stream stream, bool for_gc = false);

  /// A physically contiguous run of `npages` pages within one erase
  /// block, for multi-page extents. Seals the current block (abandoning
  /// its unwritten tail) if it lacks room. npages must fit in a block.
  Result<flash::Ppa> allocate_extent(Stream stream, std::uint32_t npages,
                                     bool for_gc = false);

  // -- Liveness accounting ------------------------------------------------
  void add_live(flash::Ppa ppa, std::uint64_t bytes);
  void sub_live(flash::Ppa ppa, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t block_live_bytes(std::uint32_t block) const {
    return blocks_[block].live_bytes;
  }

  // -- GC support ----------------------------------------------------------
  /// Sealed block with the least live data, if any sealed block exists.
  [[nodiscard]] std::optional<std::uint32_t> pick_victim() const;

  /// Erases the block and returns it to the free pool. The caller must
  /// have relocated all live data first.
  Status reclaim_block(std::uint32_t block);

  /// Recovery path: registers a block that already contains programmed
  /// pages (adopted NAND). The block is sealed — new writes go to fresh
  /// blocks; GC reclaims it once its live bytes justify it. Must be
  /// called before any allocation touches the block.
  Status adopt_block(std::uint32_t block, Stream stream, std::uint32_t pages_used);

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] std::uint32_t free_blocks() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }
  [[nodiscard]] std::uint32_t gc_reserve() const noexcept { return gc_reserve_; }
  /// True when normal allocation is at (or past) the reserve floor and the
  /// device should run GC before accepting more writes.
  [[nodiscard]] bool needs_gc() const noexcept { return free_.size() <= gc_reserve_; }

  [[nodiscard]] Stream block_stream(std::uint32_t block) const {
    return blocks_[block].stream;
  }
  [[nodiscard]] bool is_sealed(std::uint32_t block) const {
    return blocks_[block].state == BlockState::kSealed;
  }
  [[nodiscard]] bool is_free(std::uint32_t block) const {
    return blocks_[block].state == BlockState::kFree;
  }
  /// Pages handed out so far in `block` (valid parse range for GC scans).
  [[nodiscard]] std::uint32_t pages_used(std::uint32_t block) const {
    return blocks_[block].next_page;
  }

  /// Upper bound on bytes still allocatable without reclaiming anything.
  [[nodiscard]] std::uint64_t free_bytes_estimate() const noexcept;

  /// First block of the reserved tail region; equals num_blocks when no
  /// tail is reserved. Recovery scans stop here.
  [[nodiscard]] std::uint32_t first_reserved_block() const noexcept {
    return static_cast<std::uint32_t>(blocks_.size()) - reserved_tail_;
  }
  [[nodiscard]] std::uint32_t reserved_tail_blocks() const noexcept {
    return reserved_tail_;
  }

  /// Invoked with the block id right before any erase issued through
  /// reclaim_block(). The checkpoint journal uses this to flush buffered
  /// delta records: a replayed mapping must never point into a block that
  /// was erased after the record was produced but before it was durable.
  void set_pre_erase_hook(std::function<void(std::uint32_t)> hook) {
    pre_erase_hook_ = std::move(hook);
  }

 private:
  enum class BlockState : std::uint8_t { kFree, kActive, kSealed, kReserved };

  struct BlockInfo {
    BlockState state = BlockState::kFree;
    Stream stream = Stream::kData;
    std::uint32_t next_page = 0;
    std::uint64_t live_bytes = 0;
  };

  /// Opens a fresh block for the stream; respects the GC reserve.
  Result<std::uint32_t> open_block(Stream stream, bool for_gc);
  void seal(std::uint32_t block);

  flash::NandDevice* nand_;
  std::uint32_t gc_reserve_;
  std::uint32_t reserved_tail_ = 0;
  std::vector<BlockInfo> blocks_;
  std::deque<std::uint32_t> free_;
  std::function<void(std::uint32_t)> pre_erase_hook_;
  /// Active block per stream; kNoBlock until first allocation.
  static constexpr std::uint32_t kNoBlock = UINT32_MAX;
  std::uint32_t active_[kNumStreams] = {kNoBlock, kNoBlock};
};

}  // namespace rhik::ftl
