// Garbage collector (paper §IV-B).
//
// Victim blocks are chosen greedily by least live bytes, or — under
// GcPolicy::kCostBenefit — by the cost-benefit score with an erase-count
// wear tiebreak. For KV-zone blocks the collector scans each head page's
// key-signature information area and validates every pair against the
// global index: a pair is live iff the index still maps its signature to
// this extent's starting PPA. Live pairs are relocated through the normal
// log write path (onto the cold stream when hot/cold separation is on)
// and the index is updated. Index-zone blocks (record pages made stale by
// a resize, old directory checkpoints) are validated and relocated
// through the owning index's hooks.
//
// Besides the synchronous collect()/collect_one() paths, the collector
// can run *incrementally*: background_tick() processes one bounded work
// quantum (at most GcTuning::quantum_pages victim pages) per call, so the
// device can fold reclamation into idle windows instead of stalling a
// foreground write behind a whole-block relocation. A partially collected
// victim is crash-safe by construction — relocations are flushed before
// the erase, and until the erase the originals remain the durable copies.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/layout.hpp"
#include "ftl/page_allocator.hpp"
#include "obs/metrics.hpp"

namespace rhik::ftl {

class VersionRetainer;

/// Callbacks the index scheme provides so GC can validate and relocate.
class GcIndexHooks {
 public:
  virtual ~GcIndexHooks() = default;

  /// Current starting PPA for a key signature, or nullopt if unmapped.
  virtual std::optional<flash::Ppa> gc_lookup(std::uint64_t sig) = 0;

  /// Point the signature's record at the pair's new location.
  virtual Status gc_update_location(std::uint64_t sig, flash::Ppa new_ppa) = 0;

  /// Liveness of an index-zone page (record table / directory checkpoint).
  virtual bool gc_is_live_index_page(flash::Ppa ppa) const = 0;

  /// Rewrite a live index-zone page elsewhere and update internal
  /// pointers. The old page is considered stale afterwards.
  virtual Status gc_relocate_index_page(flash::Ppa ppa) = 0;
};

struct GcStats {
  std::uint64_t blocks_reclaimed = 0;
  std::uint64_t pairs_relocated = 0;
  std::uint64_t index_pages_relocated = 0;
  std::uint64_t retained_relocated = 0;  ///< snapshot-retained version moves
  std::uint64_t bytes_relocated = 0;  ///< write amplification source
  std::uint64_t runs = 0;
  std::uint64_t background_quanta = 0;  ///< incremental work slices executed
  std::uint64_t wear_migrations = 0;    ///< static wear-leveling block moves

  /// Registers these counters into a metrics snapshot (`gc.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("gc.blocks_reclaimed", blocks_reclaimed);
    snap.add_counter("gc.pairs_relocated", pairs_relocated);
    snap.add_counter("gc.index_pages_relocated", index_pages_relocated);
    snap.add_counter("gc.retained_relocated", retained_relocated);
    snap.add_counter("gc.bytes_relocated", bytes_relocated);
    snap.add_counter("gc.runs", runs);
    snap.add_counter("gc.background_quanta", background_quanta);
    snap.add_counter("gc.wear_migrations", wear_migrations);
  }
};

/// Collector behavior knobs. The defaults reproduce the original
/// collector exactly: greedy victims, no background quanta, no static
/// wear pass (existing unit tests construct the collector without one).
struct GcTuning {
  GcPolicy policy = GcPolicy::kGreedy;
  /// background_tick() starts reclaiming once the free pool drops below
  /// this; 0 disables incremental background GC entirely.
  std::uint32_t background_free_blocks = 0;
  /// Victim pages processed per background quantum.
  std::uint32_t quantum_pages = 32;
  /// Static wear pass triggers when max/mean block erase count exceeds
  /// this; <= 0 disables the pass.
  double wear_leveling_threshold = 0.0;
  /// Background ticks between static-wear checks (the pass migrates a
  /// whole block, so it must stay rare).
  std::uint32_t wear_check_quanta = 64;
};

/// Max/mean block erase count over the first `nblocks` blocks (the log
/// region — the reserved checkpoint tail wears on its own schedule).
/// Returns 1.0 while no block has been erased.
double erase_spread(const flash::NandDevice& nand, std::uint32_t nblocks);

class GarbageCollector {
 public:
  GarbageCollector(flash::NandDevice* nand, PageAllocator* alloc,
                   FlashKvStore* store, GcIndexHooks* hooks,
                   GcTuning tuning = {});

  /// Reclaims blocks until at least `target_free` blocks are free (or no
  /// further progress is possible). Returns kDeviceFull when nothing
  /// reclaimable remains below the target.
  Status collect(std::uint32_t target_free);

  /// Reclaims exactly one victim block (finishing the background victim
  /// first if one is mid-flight). kDeviceFull if no victim exists.
  Status collect_one();

  /// Incremental background step: processes at most one quantum of
  /// victim pages (GcTuning::quantum_pages), finishing with the erase
  /// once the victim is fully relocated. Also runs the periodic static
  /// wear pass. Sets `*did_work` when anything was processed, so idle
  /// loops know whether to call again. No-op (kOk, no work) while the
  /// free pool sits above GcTuning::background_free_blocks.
  Status background_tick(bool* did_work = nullptr);

  /// True when a partially relocated background victim is in flight.
  [[nodiscard]] bool background_in_progress() const noexcept {
    return bg_.has_value();
  }
  /// True when the next background_tick() would find work to do.
  [[nodiscard]] bool background_pending() const noexcept {
    return tuning_.background_free_blocks != 0 &&
           (bg_.has_value() ||
            alloc_->free_blocks() < tuning_.background_free_blocks);
  }

  [[nodiscard]] const GcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const GcTuning& tuning() const noexcept { return tuning_; }

  /// MVCC: when set, a pair is also live while the retainer holds it for
  /// a pinned snapshot. Such versions are relocated with their ORIGINAL
  /// epoch stamps (a relocation moves a version, it does not create one)
  /// and the retainer is repointed to the new location.
  void set_version_retainer(VersionRetainer* retainer) noexcept {
    retainer_ = retainer;
  }

 private:
  /// Relocates live contents of `block` starting at `*page`, at most
  /// `max_pages` pages; `*page` advances to the first unprocessed page.
  Status relocate_pages(std::uint32_t block, std::uint32_t* page,
                        std::uint32_t max_pages);
  Status relocate_data_head(flash::Ppa ppa);
  /// Flushes relocation buffers and erases a fully relocated victim.
  Status finish_victim(std::uint32_t block, std::uint64_t pairs_before);
  /// Full synchronous relocation + erase of one block.
  Status collect_block(std::uint32_t block);
  /// Sealed low-wear block worth migrating, when spread exceeds the
  /// threshold; nullopt otherwise.
  [[nodiscard]] std::optional<std::uint32_t> wear_victim() const;

  flash::NandDevice* nand_;
  PageAllocator* alloc_;
  FlashKvStore* store_;
  GcIndexHooks* hooks_;
  VersionRetainer* retainer_ = nullptr;
  GcTuning tuning_;
  GcStats stats_;

  /// Background victim mid-relocation (survives across quanta).
  struct InProgress {
    std::uint32_t block = 0;
    std::uint32_t next_page = 0;
    std::uint64_t pairs_before = 0;
  };
  std::optional<InProgress> bg_;
  std::uint32_t wear_check_countdown_ = 0;

  /// Every signature seen in the current victim's head pages. Checked
  /// against the hot write buffer at finish time: if the victim holds
  /// the durable copy of a signature whose newest (acknowledged)
  /// version is still buffered, the buffer is flushed before the erase
  /// — otherwise a power cut after the erase would destroy the only
  /// durable version. With the pre-separation shared buffer this held
  /// implicitly (the relocation flush persisted host writes too); with
  /// a dedicated cold stream it must be enforced explicitly.
  std::unordered_set<std::uint64_t> victim_sigs_;
};

}  // namespace rhik::ftl
