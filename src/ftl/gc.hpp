// Garbage collector (paper §IV-B).
//
// Victim blocks are chosen greedily by least live bytes. For KV-zone
// blocks the collector scans each head page's key-signature information
// area and validates every pair against the global index: a pair is live
// iff the index still maps its signature to this extent's starting PPA.
// Live pairs are relocated through the normal log write path and the
// index is updated. Index-zone blocks (record pages made stale by a
// resize, old directory checkpoints) are validated and relocated through
// the owning index's hooks.
#pragma once

#include <cstdint>
#include <optional>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/layout.hpp"
#include "ftl/page_allocator.hpp"
#include "obs/metrics.hpp"

namespace rhik::ftl {

/// Callbacks the index scheme provides so GC can validate and relocate.
class GcIndexHooks {
 public:
  virtual ~GcIndexHooks() = default;

  /// Current starting PPA for a key signature, or nullopt if unmapped.
  virtual std::optional<flash::Ppa> gc_lookup(std::uint64_t sig) = 0;

  /// Point the signature's record at the pair's new location.
  virtual Status gc_update_location(std::uint64_t sig, flash::Ppa new_ppa) = 0;

  /// Liveness of an index-zone page (record table / directory checkpoint).
  virtual bool gc_is_live_index_page(flash::Ppa ppa) const = 0;

  /// Rewrite a live index-zone page elsewhere and update internal
  /// pointers. The old page is considered stale afterwards.
  virtual Status gc_relocate_index_page(flash::Ppa ppa) = 0;
};

struct GcStats {
  std::uint64_t blocks_reclaimed = 0;
  std::uint64_t pairs_relocated = 0;
  std::uint64_t index_pages_relocated = 0;
  std::uint64_t bytes_relocated = 0;  ///< write amplification source
  std::uint64_t runs = 0;

  /// Registers these counters into a metrics snapshot (`gc.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("gc.blocks_reclaimed", blocks_reclaimed);
    snap.add_counter("gc.pairs_relocated", pairs_relocated);
    snap.add_counter("gc.index_pages_relocated", index_pages_relocated);
    snap.add_counter("gc.bytes_relocated", bytes_relocated);
    snap.add_counter("gc.runs", runs);
  }
};

class GarbageCollector {
 public:
  GarbageCollector(flash::NandDevice* nand, PageAllocator* alloc,
                   FlashKvStore* store, GcIndexHooks* hooks);

  /// Reclaims blocks until at least `target_free` blocks are free (or no
  /// further progress is possible). Returns kDeviceFull when nothing
  /// reclaimable remains below the target.
  Status collect(std::uint32_t target_free);

  /// Reclaims exactly one victim block. kDeviceFull if no victim exists.
  Status collect_one();

  [[nodiscard]] const GcStats& stats() const noexcept { return stats_; }

 private:
  Status relocate_block(std::uint32_t block);
  Status relocate_data_head(flash::Ppa ppa);

  flash::NandDevice* nand_;
  PageAllocator* alloc_;
  FlashKvStore* store_;
  GcIndexHooks* hooks_;
  GcStats stats_;
};

}  // namespace rhik::ftl
