#include "ftl/kv_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "ftl/mvcc.hpp"

namespace rhik::ftl {

using flash::Ppa;

FlashKvStore::FlashKvStore(flash::NandDevice* nand, PageAllocator* alloc)
    : nand_(nand),
      alloc_(alloc),
      hot_(nand->geometry().page_size),
      cold_(nand->geometry().page_size) {
  assert(nand_ != nullptr && alloc_ != nullptr);
  cold_.stream = Stream::kCold;
}

std::uint64_t FlashKvStore::max_value_size(std::size_t key_len) const noexcept {
  const auto& g = nand_->geometry();
  const std::uint64_t head_cap = g.page_size - PageFooter::size_for(1);
  const std::uint64_t extent_cap =
      head_cap + std::uint64_t{g.pages_per_block - 1} * g.page_size;
  const std::uint64_t overhead = PairHeader::kSize + key_len;
  return overhead >= extent_cap ? 0 : extent_cap - overhead;
}

Status FlashKvStore::program_open_page(OpenPage& open) {
  assert(open.ppa.has_value());
  Bytes spare(nand_->geometry().spare_size(), 0xFF);
  SpareTag{PageKind::kDataHead, open.stream}.encode(spare);
  DataPageSpare{next_seq_++, epochs_ ? epochs_->current() : 0}.encode(spare);
  const Status s = nand_->program_page(*open.ppa, open.builder.finalize(), spare);
  open.ppa.reset();
  open.builder.reset();
  return s;
}

Status FlashKvStore::flush() {
  if (hot_.ppa) {
    if (Status s = program_open_page(hot_); !ok(s)) return s;
  }
  if (cold_.ppa) {
    if (Status s = program_open_page(cold_); !ok(s)) return s;
  }
  return Status::kOk;
}

Status FlashKvStore::flush_relocations() {
  OpenPage& open = open_for(/*for_gc=*/true);
  if (!open.ppa) return Status::kOk;
  return program_open_page(open);
}

Status FlashKvStore::flush_hot() {
  if (!hot_.ppa) return Status::kOk;
  return program_open_page(hot_);
}

Status FlashKvStore::flush_block(std::uint32_t block) {
  const auto& g = nand_->geometry();
  if (hot_.ppa && flash::ppa_block(g, *hot_.ppa) == block) {
    if (Status s = program_open_page(hot_); !ok(s)) return s;
  }
  if (cold_.ppa && flash::ppa_block(g, *cold_.ppa) == block) {
    if (Status s = program_open_page(cold_); !ok(s)) return s;
  }
  return Status::kOk;
}

Result<Ppa> FlashKvStore::write_pair(std::uint64_t sig, ByteSpan key, ByteSpan value,
                                     bool for_gc, std::uint64_t epoch) {
  return write_internal(sig, key, value, /*tombstone=*/false, for_gc, epoch);
}

Result<Ppa> FlashKvStore::write_tombstone(std::uint64_t sig, ByteSpan key,
                                          bool for_gc, std::uint64_t epoch) {
  auto ppa = write_internal(sig, key, {}, /*tombstone=*/true, for_gc, epoch);
  if (ppa) stats_.tombstones_written++;
  return ppa;
}

Result<Ppa> FlashKvStore::write_internal(std::uint64_t sig, ByteSpan key,
                                         ByteSpan value, bool tombstone,
                                         bool for_gc, std::uint64_t epoch) {
  const auto& g = nand_->geometry();
  if (key.empty() || key.size() > UINT16_MAX) return Status::kInvalidArgument;
  if (value.size() > max_value_size(key.size())) return Status::kInvalidArgument;
  // The key (plus header) must fit the head page for extent layout.
  if (PairHeader::kSize + key.size() + PageFooter::size_for(1) > g.page_size) {
    return Status::kInvalidArgument;
  }

  // Ordering hazard between the streams: page sequence numbers are
  // assigned at program time, so a stale GC-relocated copy of `sig`
  // buffered in the cold open page would reach flash AFTER this fresher
  // write with a higher sequence — and win recovery's newest-wins scan.
  // Flush the cold buffer first so flash order matches logical order.
  if (!for_gc && cold_.ppa && cold_.builder.contains(sig)) {
    if (Status s = program_open_page(cold_); !ok(s)) return s;
  }

  PairHeader hdr;
  hdr.sig = sig;
  hdr.key_len = static_cast<std::uint16_t>(key.size());
  hdr.val_len = static_cast<std::uint32_t>(value.size());
  hdr.epoch = epoch;
  hdr.tombstone = tombstone;
  const std::uint64_t total = hdr.pair_bytes();
  OpenPage& open = open_for(for_gc);

  if (DataPageBuilder::fits_in_empty_page(g.page_size, total)) {
    // Small pair: pack into the stream's open head page.
    if (open.ppa && !open.builder.fits(total)) {
      if (Status s = program_open_page(open); !ok(s)) return s;
    }
    if (!open.ppa) {
      auto ppa = alloc_->allocate(open.stream, for_gc);
      if (!ppa) return ppa.status();
      open.ppa = *ppa;
      open.builder.reset();
    }
    open.builder.append(hdr, key, value);
    alloc_->add_live(*open.ppa, total);
    stats_.pairs_written++;
    if (for_gc) stats_.gc_pairs_written++;
    return *open.ppa;
  }

  // Large pair: its own extent of physically contiguous pages. Flush the
  // stream's open page first so in-block programming stays in order (the
  // other stream's open page sits in a different active block).
  if (open.ppa) {
    if (Status s = program_open_page(open); !ok(s)) return s;
  }

  const std::uint32_t npages = extent_pages(g, total);
  auto base = alloc_->allocate_extent(open.stream, npages, for_gc);
  if (!base) return base.status();

  const std::size_t head_cap = g.page_size - PageFooter::size_for(1);
  const std::size_t prefix_len = head_cap - PairHeader::kSize - key.size();
  DataPageBuilder head(g.page_size);
  head.begin_extent(hdr, key, value.subspan(0, prefix_len));

  Bytes spare(g.spare_size(), 0xFF);
  SpareTag{PageKind::kDataHead, open.stream}.encode(spare);
  DataPageSpare{next_seq_++, epochs_ ? epochs_->current() : 0}.encode(spare);
  if (Status s = nand_->program_page(*base, head.finalize(), spare); !ok(s)) return s;
  std::fill(spare.begin(), spare.end(), 0xFF);

  SpareTag{PageKind::kDataCont, open.stream}.encode(spare);
  std::size_t off = prefix_len;
  for (std::uint32_t p = 1; p < npages; ++p) {
    const std::size_t chunk = std::min<std::size_t>(g.page_size, value.size() - off);
    if (Status s = nand_->program_page(*base + p, value.subspan(off, chunk), spare);
        !ok(s)) {
      return s;
    }
    off += chunk;
  }
  assert(off == value.size());

  alloc_->add_live(*base, total);
  stats_.pairs_written++;
  stats_.extents_written++;
  if (for_gc) stats_.gc_pairs_written++;
  return *base;
}

Result<ByteSpan> FlashKvStore::load_head_page(Ppa ppa, ByteSpan* spare_out) {
  for (OpenPage* open : {&hot_, &cold_}) {
    if (open->ppa && *open->ppa == ppa) {
      // Serve straight from the write buffer: finalize() patches the
      // footer in place and hands back a view of the builder's image.
      if (spare_out != nullptr) *spare_out = {};
      return open->builder.finalize();
    }
  }
  ByteSpan page, spare;
  if (Status s = nand_->read_page_view(ppa, &page, &spare); !ok(s)) return s;
  if (spare_out != nullptr) {
    *spare_out = spare;
    return page;
  }
  const SpareTag tag = SpareTag::decode(spare);
  if (tag.kind != PageKind::kDataHead) return Status::kCorruption;
  return page;
}

Status FlashKvStore::read_pair(Ppa start, std::uint64_t sig, Bytes* key_out,
                               Bytes* value_out, std::uint64_t* epoch_out) {
  const auto& g = nand_->geometry();
  ByteSpan spare;
  const auto page = load_head_page(start, &spare);
  if (!page) return page.status();
  ParsedPair pair;
  const PageFind found = find_pair_in_page(*page, g.page_size, sig, &pair);
  // Deferred tag check (see load_head_page): runs before any parse
  // result is trusted, after the scan covered the spare line's miss.
  if (!spare.empty() && SpareTag::decode(spare).kind != PageKind::kDataHead) {
    return Status::kCorruption;
  }
  switch (found) {
    case PageFind::kCorrupt: return Status::kCorruption;
    case PageFind::kAbsent: return Status::kNotFound;
    case PageFind::kFound: break;
  }
  const ParsedPair* p = &pair;
  if (epoch_out) *epoch_out = p->header.epoch;

  const std::size_t key_off = p->offset + PairHeader::kSize;
  if (key_out) {
    const ByteSpan k = page->subspan(key_off, p->header.key_len);
    key_out->assign(k.begin(), k.end());
  }
  if (value_out) {
    value_out->clear();
    value_out->reserve(p->header.val_len);
    const std::size_t val_off = key_off + p->header.key_len;
    const std::size_t in_page_val = p->in_page_bytes - PairHeader::kSize - p->header.key_len;
    const ByteSpan v = page->subspan(val_off, in_page_val);
    value_out->insert(value_out->end(), v.begin(), v.end());
    std::size_t remaining = p->header.val_len - in_page_val;
    Ppa next = start + 1;
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(g.page_size, remaining);
      ByteSpan cont;
      if (Status s = nand_->read_page_view(next, &cont, nullptr,
                                           static_cast<std::uint32_t>(chunk));
          !ok(s)) {
        return s;
      }
      value_out->insert(value_out->end(), cont.begin(),
                        cont.begin() + static_cast<std::ptrdiff_t>(chunk));
      remaining -= chunk;
      ++next;
    }
  }
  stats_.pairs_read++;
  return Status::kOk;
}

Status FlashKvStore::read_pair_at(Ppa start, std::uint64_t sig,
                                  std::uint64_t max_epoch, Bytes* key_out,
                                  Bytes* value_out, bool* tombstone_out) {
  const auto& g = nand_->geometry();
  if (tombstone_out) *tombstone_out = false;
  ByteSpan spare;
  const auto page = load_head_page(start, &spare);
  if (!page) return page.status();
  ParsedPair p;
  const PageFind found =
      find_pair_in_page_at(*page, g.page_size, sig, max_epoch, &p);
  if (!spare.empty() && SpareTag::decode(spare).kind != PageKind::kDataHead) {
    return Status::kCorruption;
  }
  switch (found) {
    case PageFind::kCorrupt: return Status::kCorruption;
    case PageFind::kAbsent: return Status::kNotFound;
    case PageFind::kFound: break;
  }

  const std::size_t key_off = p.offset + PairHeader::kSize;
  if (key_out) {
    const ByteSpan k = page->subspan(key_off, p.header.key_len);
    key_out->assign(k.begin(), k.end());
  }
  if (p.header.tombstone) {
    if (tombstone_out) *tombstone_out = true;
    return Status::kOk;
  }
  if (value_out) {
    value_out->clear();
    value_out->reserve(p.header.val_len);
    const std::size_t val_off = key_off + p.header.key_len;
    const std::size_t in_page_val =
        p.in_page_bytes - PairHeader::kSize - p.header.key_len;
    const ByteSpan v = page->subspan(val_off, in_page_val);
    value_out->insert(value_out->end(), v.begin(), v.end());
    std::size_t remaining = p.header.val_len - in_page_val;
    Ppa next = start + 1;
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(g.page_size, remaining);
      ByteSpan cont;
      if (Status s = nand_->read_page_view(next, &cont, nullptr,
                                           static_cast<std::uint32_t>(chunk));
          !ok(s)) {
        return s;
      }
      value_out->insert(value_out->end(), cont.begin(),
                        cont.begin() + static_cast<std::ptrdiff_t>(chunk));
      remaining -= chunk;
      ++next;
    }
  }
  stats_.pairs_read++;
  return Status::kOk;
}

Result<PairMeta> FlashKvStore::read_pair_meta(Ppa start, std::uint64_t sig) {
  ByteSpan spare;
  const auto page = load_head_page(start, &spare);
  if (!page) return page.status();
  ParsedPair p;
  const PageFind found =
      find_pair_in_page(*page, nand_->geometry().page_size, sig, &p);
  if (!spare.empty() && SpareTag::decode(spare).kind != PageKind::kDataHead) {
    return Status::kCorruption;
  }
  switch (found) {
    case PageFind::kCorrupt: return Status::kCorruption;
    case PageFind::kAbsent: return Status::kNotFound;
    case PageFind::kFound: break;
  }

  PairMeta meta;
  const std::size_t key_off = p.offset + PairHeader::kSize;
  const ByteSpan k = page->subspan(key_off, p.header.key_len);
  meta.key.assign(k.begin(), k.end());
  meta.value_len = p.header.val_len;
  meta.total_bytes = p.header.pair_bytes();
  meta.epoch = p.header.epoch;
  meta.tombstone = p.header.tombstone;
  return meta;
}

void FlashKvStore::note_stale(Ppa start, std::uint64_t total_bytes) {
  alloc_->sub_live(start, total_bytes);
}

}  // namespace rhik::ftl
