// MVCC snapshot machinery (DESIGN.md §13).
//
// Three cooperating pieces give the device epoch-versioned reads:
//
//   * EpochSource — a device-global monotonic epoch counter. Every
//     record-layer pair is stamped with the epoch current at write time;
//     the counter advances once per mutation batch (and once per
//     snapshot open), so an epoch names a prefix of the mutation
//     history. On a sharded array ONE source is shared by every shard:
//     a key's version order is per-shard anyway, and cross-shard
//     causality (client completes op on shard A, then issues to shard
//     B) is preserved because the second stamp reads the same atomic no
//     earlier than the first.
//
//   * SnapshotRegistry — the pin table. open() advances the epoch and
//     pins its pre-advance value; mutations that overwrite a version
//     while any pin exists hand the dying version to the retainer
//     instead of freeing it. The registry tracks the min-pinned-epoch
//     watermark ("floor") that reclamation honors, and the global
//     retained-byte budget: when deferred garbage exceeds the bound,
//     the OLDEST pin is expired — its holder gets kSnapshotTooOld on
//     next use, never a torn view.
//
//     Memory ordering (why no cross-shard barrier is needed): open()
//     increments pin_count and THEN advances the epoch, both seq_cst;
//     a mutation stamps the epoch (seq_cst load) and then checks
//     pin_count. If the mutation read pin_count == 0, the pin's
//     epoch-advance had not yet happened in the seq_cst total order,
//     so the pin's epoch is >= the mutation's stamp and the NEW version
//     is the one the snapshot reads — skipping retention was safe.
//
//   * VersionRetainer — per-device (worker-thread-owned) table of
//     superseded versions kept alive for pinned snapshots. An entry is
//     a closed-open validity window [begin, end): `begin` is the
//     version's own stamp, `end` the stamp of the overwrite that killed
//     it; a pin at epoch e reads the entry iff begin <= e < end. The
//     stale-byte credit normally surrendered to the allocator at
//     overwrite time (FlashKvStore::note_stale) is deferred with the
//     entry and surrendered when the floor passes `end` — so GC victim
//     accounting never sees a pinned version as reclaimable space.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "flash/nand.hpp"
#include "obs/metrics.hpp"

namespace rhik::ftl {

/// Epochs start at 1; 0 is "never stamped" (pre-MVCC pages decode as 0,
/// visible to every snapshot). kEpochMax as a read cap means "current".
constexpr std::uint64_t kEpochMax = ~std::uint64_t{0};

class EpochSource {
 public:
  [[nodiscard]] std::uint64_t current() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }
  /// Advances to the next epoch; returns the NEW value. Called once per
  /// mutation batch, not per op — ops of one batch share a stamp.
  std::uint64_t advance() noexcept {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }
  /// Recovery: epochs must never regress across a power cycle, so the
  /// counter is raised past every epoch found stamped on flash.
  void raise_to(std::uint64_t e) noexcept {
    std::uint64_t cur = epoch_.load(std::memory_order_seq_cst);
    while (cur < e &&
           !epoch_.compare_exchange_weak(cur, e, std::memory_order_seq_cst)) {
    }
  }

 private:
  std::atomic<std::uint64_t> epoch_{1};
};

struct SnapshotStats {
  std::uint64_t opened = 0;
  std::uint64_t released = 0;
  std::uint64_t expired = 0;  ///< evicted by the retained-byte bound

  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("snapshot.opened", opened);
    snap.add_counter("snapshot.released", released);
    snap.add_counter("snapshot.expired", expired);
  }
};

class SnapshotRegistry {
 public:
  explicit SnapshotRegistry(EpochSource* epochs) : epochs_(epochs) {}

  /// Bytes of superseded versions retainers may hold before the oldest
  /// pin is expired. 0 = unbounded.
  void set_retention_bytes(std::uint64_t cap) noexcept {
    retention_cap_.store(cap, std::memory_order_relaxed);
  }

  struct Pin {
    std::uint64_t id = 0;
    std::uint64_t epoch = 0;
  };

  /// Pins the current epoch and advances the source, so every mutation
  /// after open stamps strictly above the pinned epoch.
  Pin open();
  /// kOk when the pin existed (valid or already expired). With `epoch`
  /// nonzero the pin is released only if its pinned epoch matches —
  /// the stale-handle guard (see read_at): a pre-crash handle whose pin
  /// id got recycled must not release the NEW owner's pin.
  Status release(std::uint64_t id, std::uint64_t epoch = 0);
  /// The pinned epoch, or kSnapshotTooOld if the id is unknown (stale
  /// handle / post-crash) or was expired by the retention bound.
  [[nodiscard]] Result<std::uint64_t> epoch_of(std::uint64_t id) const;

  /// Fast mutation-path check — nonzero means "defer the dying version
  /// to the retainer". seq_cst; see the header comment for the ordering
  /// argument.
  [[nodiscard]] std::uint64_t pin_count() const noexcept {
    return pin_count_.load(std::memory_order_seq_cst);
  }
  /// Reclamation watermark: the minimum VALID pinned epoch, or the
  /// current epoch when nothing is pinned. Entries whose window ends
  /// at-or-below the floor are invisible to every pin.
  [[nodiscard]] std::uint64_t floor() const;

  /// Retained-byte accounting (called by retainers). add() enforces the
  /// bound: pins are expired oldest-first until the budget fits again
  /// (their retainer entries unwind on the owners' next reclaim pass).
  void add_retained(std::uint64_t bytes);
  void sub_retained(std::uint64_t bytes) noexcept {
    retained_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t retained_bytes() const noexcept {
    return retained_bytes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t open_pins() const;
  [[nodiscard]] SnapshotStats stats() const;

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    bool expired = false;
  };

  void recompute_floor_locked();

  EpochSource* epochs_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> pins_;
  std::uint64_t next_id_ = 1;
  /// Cached min valid pinned epoch (kEpochMax when none) so floor() is
  /// one load on the hot reclamation path.
  std::atomic<std::uint64_t> floor_{kEpochMax};
  std::atomic<std::uint64_t> pin_count_{0};
  std::atomic<std::uint64_t> retained_bytes_{0};
  std::atomic<std::uint64_t> retention_cap_{0};
  SnapshotStats stats_;
};

/// EpochSource + SnapshotRegistry bundle. One per device, or one shared
/// across every shard of an array (kvssd::DeviceConfig::snapshots).
struct SnapshotContext {
  EpochSource epochs;
  SnapshotRegistry registry{&epochs};
};

/// A superseded version kept alive for pinned snapshots.
struct RetainedVersion {
  flash::Ppa ppa = flash::kInvalidPpa;
  std::uint64_t begin_epoch = 0;  ///< the version's own stamp
  std::uint64_t end_epoch = 0;    ///< stamp of the overwrite that killed it
  std::uint64_t total_bytes = 0;  ///< deferred note_stale credit
};

struct RetainerStats {
  std::uint64_t captured = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t resolved = 0;      ///< snapshot reads served from here
  std::uint64_t repointed = 0;     ///< GC relocations of retained versions

  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("retainer.captured", captured);
    snap.add_counter("retainer.reclaimed", reclaimed);
    snap.add_counter("retainer.resolved", resolved);
    snap.add_counter("retainer.repointed", repointed);
  }
};

/// Per-device table of retained versions. Owned and touched only by the
/// device's (worker) thread — no locking; cross-shard coordination goes
/// through the shared SnapshotRegistry's atomics.
class VersionRetainer {
 public:
  explicit VersionRetainer(SnapshotRegistry* registry) : registry_(registry) {}

  /// Defers a dying version instead of freeing it. Called from the
  /// overwrite/delete path when pin_count() was nonzero.
  void capture(std::uint64_t sig, const RetainedVersion& v);

  /// The retained version visible at epoch `e` (begin <= e < end), if
  /// any. At most one window can cover an epoch: windows of one sig are
  /// the key's contiguous version history.
  [[nodiscard]] const RetainedVersion* resolve(std::uint64_t sig,
                                               std::uint64_t e);

  /// GC liveness: true when `ppa` holds a retained version of `sig`.
  [[nodiscard]] bool is_retained(std::uint64_t sig,
                                 flash::Ppa ppa) const noexcept;
  /// Every retained version of `sig` located at `ppa` (GC relocates each
  /// of them — a victim page can hold several versions of one key).
  [[nodiscard]] std::vector<RetainedVersion> versions_at(
      std::uint64_t sig, flash::Ppa ppa) const;
  /// GC relocated a retained version: update its location.
  void repoint(std::uint64_t sig, std::uint64_t begin_epoch, flash::Ppa to);

  /// Visits (sig, version) for every entry visible at epoch `e` — the
  /// iterator's retained-candidate source.
  void for_each_covering(
      std::uint64_t e,
      const std::function<void(std::uint64_t, const RetainedVersion&)>& fn)
      const;

  /// Frees every entry invisible below the registry floor, surrendering
  /// its deferred stale credit through `note_stale(ppa, bytes)`. Called
  /// from the device's background tick.
  void reclaim(const std::function<void(flash::Ppa, std::uint64_t)>& note_stale);

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return total_versions_; }
  [[nodiscard]] const RetainerStats& stats() const noexcept { return stats_; }

 private:
  SnapshotRegistry* registry_;
  /// Versions per signature, ordered oldest-first (capture order).
  std::unordered_map<std::uint64_t, std::vector<RetainedVersion>> entries_;
  std::size_t total_versions_ = 0;
  RetainerStats stats_;
};

}  // namespace rhik::ftl
