// On-flash page layouts (paper Fig. 4).
//
// KVSSD stores variable-length KV pairs log-style. Each *head* data page
// carries, at the tail of its main area, a "key signature information
// area": a 2 B pair count plus one 8 B key signature per pair starting in
// the page. GC scans exactly this area to identify candidate pairs and
// validates them against the global index (§IV-B). Values larger than a
// page continue into physically consecutive *continuation* pages of the
// same erase block (extent-based packing; the index stores only the
// starting PPA, which is what removes the max-value-size limit, §IV-A5).
//
// The spare (out-of-band) area stores a page kind tag and the owning
// stream, mirroring how real FTLs use OOB bytes for GC and recovery.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "flash/geometry.hpp"

namespace rhik::ftl {

/// Allocation streams: KV data zone vs index zone (paper Fig. 3), plus a
/// cold data stream (HashKV-style hot/cold separation): GC-relocated
/// pairs — survivors of at least one reclaim cycle — are appended to
/// their own open block so update-churned hot pairs never re-mix with
/// them. Cold blocks are data blocks in every other respect (same page
/// layouts, same recovery scan).
enum class Stream : std::uint8_t { kData = 0, kIndex = 1, kCold = 2 };
constexpr std::size_t kNumStreams = 3;

/// Data-zone membership: pages of both the hot and the cold stream hold
/// the same head/continuation layouts and carry winners for recovery.
constexpr bool is_data_stream(Stream s) noexcept {
  return s == Stream::kData || s == Stream::kCold;
}

/// Page kind tag kept in the spare area.
enum class PageKind : std::uint8_t {
  kFree = 0xFF,        ///< erased / never written
  kDataHead = 0x01,    ///< data page holding pair starts + signature area
  kDataCont = 0x02,    ///< continuation page of a multi-page extent
  kIndexRecord = 0x11, ///< serialized record-layer hash table
  kIndexDir = 0x12,    ///< persisted directory checkpoint
  kCkptSuper = 0x21,   ///< checkpoint superblock (slot commit record)
  kCkptJournal = 0x22, ///< index-delta journal page
};

/// Spare-area encoding: [kind u8][stream u8]. The remaining spare bytes
/// model ECC / bad-block markers and are left 0xFF.
struct SpareTag {
  PageKind kind = PageKind::kFree;
  Stream stream = Stream::kData;

  void encode(MutByteSpan spare) const noexcept;
  static SpareTag decode(ByteSpan spare) noexcept;
  static constexpr std::size_t kEncodedSize = 2;
};

/// Per-pair record header preceding the key and value bytes in the data
/// area: [sig u64][key_len u16][val_len u32][epoch u64]. The top bit of
/// the key_len field marks a *tombstone* — the durable deletion record
/// that crash recovery needs (key lengths are capped at 255 by the
/// device, so the bit is always free). `epoch` is the MVCC version
/// stamp (DESIGN.md §13): the device-global epoch current when the pair
/// was written; GC relocations preserve the original stamp, so a pair's
/// epoch names its position in the key's version history wherever the
/// pair physically lives. 0 means "pre-MVCC" and is visible to every
/// snapshot.
struct PairHeader {
  std::uint64_t sig = 0;
  std::uint16_t key_len = 0;
  std::uint32_t val_len = 0;
  std::uint64_t epoch = 0;
  bool tombstone = false;

  static constexpr std::size_t kSize = 8 + 2 + 4 + 8;
  static constexpr std::uint16_t kTombstoneBit = 0x8000;

  [[nodiscard]] std::uint64_t pair_bytes() const noexcept {
    return kSize + key_len + val_len;
  }

  void encode(MutByteSpan dst, std::size_t off) const noexcept;
  static PairHeader decode(ByteSpan src, std::size_t off) noexcept;
};

/// Spare-area metadata of a data *head* page, after the generic tag:
/// a monotonically increasing sequence number. Pairs are globally
/// ordered by (page seq, in-page offset), which is what recovery uses to
/// pick the newest version of each signature.
///
/// `epoch_hw` is the device-global epoch HIGH-WATER at program time —
/// not the max of this page's pair stamps but the counter itself, so it
/// is monotone with program order on every stream (GC relocations carry
/// old PAIR stamps but a current page stamp). The checkpoint fast
/// restore reads the topmost head page of each data block anyway (ghost
/// scan); the max of those spare stamps bounds every durable pair epoch,
/// which is how the epoch source is restored without a journal record
/// per batch (DESIGN.md §13).
struct DataPageSpare {
  std::uint64_t seq = 0;
  std::uint64_t epoch_hw = 0;

  static constexpr std::size_t kEncodedSize = SpareTag::kEncodedSize + 16;

  void encode(MutByteSpan spare) const noexcept;
  static DataPageSpare decode(ByteSpan spare) noexcept;
};

/// Footer ("key signature information area") bookkeeping for a head page.
/// Layout, growing from the page end: ... [sig_n]..[sig_1][pair_count u16].
class PageFooter {
 public:
  static constexpr std::size_t kCountSize = 2;
  static constexpr std::size_t kSigSize = 8;

  /// Bytes the footer occupies for `n` pairs.
  static constexpr std::size_t size_for(std::size_t n) noexcept {
    return kCountSize + n * kSigSize;
  }

  /// Writes count + signatures into the tail of `page`.
  static void encode(MutByteSpan page, const std::vector<std::uint64_t>& sigs) noexcept;

  /// Reads the signature list back from a head page. Returns nullopt if
  /// the footer is structurally invalid for the page size.
  static std::optional<std::vector<std::uint64_t>> decode(ByteSpan page) noexcept;
};

/// Writable in-memory image of a head data page being filled.
///
/// Small pairs are appended until the page is full; a pair that cannot fit
/// in an *empty* page is a large extent and is laid out by
/// `plan_extent()`. Invariant relied on by the parser: a head page either
/// contains only fully-resident pairs, or exactly one pair that spills
/// into continuation pages.
class DataPageBuilder {
 public:
  explicit DataPageBuilder(std::uint32_t page_size);

  /// Bytes still available for pair data, accounting for footer growth
  /// (one more signature slot) if a pair is added.
  [[nodiscard]] std::size_t remaining() const noexcept;

  /// True if a pair of `pair_bytes` total size fits entirely.
  [[nodiscard]] bool fits(std::uint64_t pair_bytes) const noexcept;

  /// True if the pair fits in a completely empty page of this size.
  static bool fits_in_empty_page(std::uint32_t page_size, std::uint64_t pair_bytes) noexcept;

  /// Appends a fully-resident pair. Caller must have checked fits().
  /// Returns the byte offset of the pair within the page.
  std::size_t append(const PairHeader& hdr, ByteSpan key, ByteSpan value);

  /// Appends the head fragment of a spilling pair into an empty builder:
  /// header + key + leading `value_prefix` bytes. Page is full afterwards.
  void begin_extent(const PairHeader& hdr, ByteSpan key, ByteSpan value_prefix);

  [[nodiscard]] std::size_t pair_count() const noexcept { return sigs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sigs_.empty(); }

  /// True if a pair or tombstone with this signature is buffered here.
  [[nodiscard]] bool contains(std::uint64_t sig) const noexcept;

  /// Finalizes the footer and returns the full page image.
  [[nodiscard]] ByteSpan finalize();

  /// Raw in-progress image (for serving reads from the open page buffer).
  [[nodiscard]] ByteSpan image() const noexcept { return buf_; }

  void reset();

 private:
  Bytes buf_;
  std::vector<std::uint64_t> sigs_;
  std::size_t write_off_ = 0;
  std::uint32_t page_size_;
};

/// A pair located during a head-page parse.
struct ParsedPair {
  PairHeader header;
  std::size_t offset = 0;       ///< byte offset of the header in the page
  std::size_t in_page_bytes = 0;///< portion of the pair inside this page
  bool spills = false;          ///< continues into continuation pages
};

/// Parses the pairs of a head page. Returns nullopt on structural
/// corruption (footer count inconsistent with data area contents).
std::optional<std::vector<ParsedPair>> parse_head_page(ByteSpan page,
                                                       std::uint32_t page_size);

/// Read-path fast scan: locates the newest pair matching `sig` in a head
/// page without materializing the pair list. The footer signature area
/// is scanned in place (no allocation — parse_head_page allocates two
/// vectors per call, which dominated the hot get path), and headers are
/// decoded only up to the match. A miss is decided from the footer alone.
/// Structural validation covers the footer and the walked header prefix;
/// corruption past the match goes undetected here (the full parser and
/// the page CRC still catch it on GC/recovery scans).
enum class PageFind : std::uint8_t { kFound, kAbsent, kCorrupt };
PageFind find_pair_in_page(ByteSpan page, std::uint32_t page_size,
                           std::uint64_t sig, ParsedPair* out) noexcept;

/// Snapshot-read variant: the newest pair matching `sig` whose epoch
/// stamp is <= `max_epoch`. Versions of one key written into the same
/// page are time-contiguous (appends are strictly sequential and GC
/// relocates a key's retained history in order), so "newest at-or-below
/// the cap in this page" is the version a snapshot at `max_epoch` must
/// see when it resolves here. Forward walk with full header decodes —
/// the snapshot path, not the hot get path.
PageFind find_pair_in_page_at(ByteSpan page, std::uint32_t page_size,
                              std::uint64_t sig, std::uint64_t max_epoch,
                              ParsedPair* out) noexcept;

/// Number of continuation pages a spilling pair needs after its head page.
std::uint32_t continuation_pages(const flash::Geometry& g, std::uint64_t pair_bytes);

/// Total pages (head + continuation) for a pair written as an extent.
std::uint32_t extent_pages(const flash::Geometry& g, std::uint64_t pair_bytes);

}  // namespace rhik::ftl
