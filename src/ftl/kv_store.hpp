// Log-structured KV data path over the NAND array.
//
// Implements the paper's data layout (§IV-A5, Fig. 4): variable-length KV
// pairs are appended log-style. Small pairs share head pages through an
// open write buffer (as the device DRAM write buffer would); a pair too
// large for one page is written as a physically contiguous extent — head
// page plus raw continuation pages — inside a single erase block. The
// index stores only the extent's starting PPA.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/layout.hpp"
#include "ftl/page_allocator.hpp"
#include "obs/metrics.hpp"

namespace rhik::ftl {

/// Header + key of a stored pair, as needed by update/delete paths to
/// verify the key and account the stale bytes exactly.
struct PairMeta {
  Bytes key;
  std::uint32_t value_len = 0;
  std::uint64_t total_bytes = 0;  ///< header + key + value
  bool tombstone = false;         ///< durable deletion record
};

struct KvStoreStats {
  std::uint64_t pairs_written = 0;
  std::uint64_t pairs_read = 0;
  std::uint64_t extents_written = 0;   ///< multi-page pairs
  std::uint64_t gc_pairs_written = 0;  ///< relocations (write amplification)
  std::uint64_t tombstones_written = 0;

  /// Registers these counters into a metrics snapshot (`store.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("store.pairs_written", pairs_written);
    snap.add_counter("store.pairs_read", pairs_read);
    snap.add_counter("store.extents_written", extents_written);
    snap.add_counter("store.gc_pairs_written", gc_pairs_written);
    snap.add_counter("store.tombstones_written", tombstones_written);
  }
};

class FlashKvStore {
 public:
  FlashKvStore(flash::NandDevice* nand, PageAllocator* alloc);

  FlashKvStore(const FlashKvStore&) = delete;
  FlashKvStore& operator=(const FlashKvStore&) = delete;

  /// Appends a pair to the log; returns its starting PPA.
  /// `for_gc` marks relocation writes (may use the GC block reserve).
  Result<flash::Ppa> write_pair(std::uint64_t sig, ByteSpan key, ByteSpan value,
                                bool for_gc = false);

  /// Appends a tombstone — the durable deletion record crash recovery
  /// replays. Not indexed; GC keeps it until a newer version of the
  /// signature exists.
  Result<flash::Ppa> write_tombstone(std::uint64_t sig, ByteSpan key,
                                     bool for_gc = false);

  /// Reads the pair with signature `sig` starting at `start`. When a page
  /// holds several versions of the same signature, the most recently
  /// appended one wins.
  Status read_pair(flash::Ppa start, std::uint64_t sig, Bytes* key_out,
                   Bytes* value_out);

  /// Reads only the header + key (update/delete verification path).
  Result<PairMeta> read_pair_meta(flash::Ppa start, std::uint64_t sig);

  /// Marks a previously written pair stale (update/delete) so GC victim
  /// selection sees the reclaimed bytes.
  void note_stale(flash::Ppa start, std::uint64_t total_bytes);

  /// Programs the partially filled open page, if any. Reads are served
  /// from the open buffer transparently, so this is only needed for
  /// power-cycle persistence.
  Status flush();

  /// Largest value storable with a key of `key_len` bytes (extent must
  /// fit one erase block).
  [[nodiscard]] std::uint64_t max_value_size(std::size_t key_len) const noexcept;

  /// Total bytes (header+key+value) a pair occupies in the log.
  [[nodiscard]] static std::uint64_t pair_bytes(std::size_t key_len,
                                                std::size_t value_len) noexcept {
    return PairHeader::kSize + key_len + value_len;
  }

  [[nodiscard]] const KvStoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::optional<flash::Ppa> open_page() const noexcept {
    return open_ppa_;
  }

  /// Head-page sequence counter (global pair ordering for recovery).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  void set_next_seq(std::uint64_t seq) noexcept { next_seq_ = seq; }

 private:
  Result<flash::Ppa> write_internal(std::uint64_t sig, ByteSpan key, ByteSpan value,
                                    bool tombstone, bool for_gc);
  /// Loads a head page image into `page_buf_` either from flash or from
  /// the open write buffer.
  Status load_head_page(flash::Ppa ppa);

  Status program_open_page();

  flash::NandDevice* nand_;
  PageAllocator* alloc_;
  DataPageBuilder builder_;
  std::optional<flash::Ppa> open_ppa_;
  bool open_for_gc_ = false;  ///< open page was allocated from GC reserve
  Bytes page_buf_;            ///< scratch for head-page reads
  Bytes spare_buf_;
  std::uint64_t next_seq_ = 1;
  KvStoreStats stats_;
};

}  // namespace rhik::ftl
