// Log-structured KV data path over the NAND array.
//
// Implements the paper's data layout (§IV-A5, Fig. 4): variable-length KV
// pairs are appended log-style. Small pairs share head pages through an
// open write buffer (as the device DRAM write buffer would); a pair too
// large for one page is written as a physically contiguous extent — head
// page plus raw continuation pages — inside a single erase block. The
// index stores only the extent's starting PPA.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "flash/nand.hpp"
#include "ftl/layout.hpp"
#include "ftl/page_allocator.hpp"
#include "obs/metrics.hpp"

namespace rhik::ftl {

class EpochSource;

/// Header + key of a stored pair, as needed by update/delete paths to
/// verify the key and account the stale bytes exactly.
struct PairMeta {
  Bytes key;
  std::uint32_t value_len = 0;
  std::uint64_t total_bytes = 0;  ///< header + key + value
  std::uint64_t epoch = 0;        ///< MVCC version stamp (0 = pre-MVCC)
  bool tombstone = false;         ///< durable deletion record
};

struct KvStoreStats {
  std::uint64_t pairs_written = 0;
  std::uint64_t pairs_read = 0;
  std::uint64_t extents_written = 0;   ///< multi-page pairs
  std::uint64_t gc_pairs_written = 0;  ///< relocations (write amplification)
  std::uint64_t tombstones_written = 0;

  /// Registers these counters into a metrics snapshot (`store.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("store.pairs_written", pairs_written);
    snap.add_counter("store.pairs_read", pairs_read);
    snap.add_counter("store.extents_written", extents_written);
    snap.add_counter("store.gc_pairs_written", gc_pairs_written);
    snap.add_counter("store.tombstones_written", tombstones_written);
  }
};

class FlashKvStore {
 public:
  FlashKvStore(flash::NandDevice* nand, PageAllocator* alloc);

  FlashKvStore(const FlashKvStore&) = delete;
  FlashKvStore& operator=(const FlashKvStore&) = delete;

  /// Appends a pair to the log; returns its starting PPA.
  /// `for_gc` marks relocation writes (may use the GC block reserve).
  /// `epoch` is the MVCC version stamp recorded in the pair header — the
  /// current device epoch for fresh writes, the pair's ORIGINAL stamp
  /// for GC relocations (a relocation moves a version, it does not
  /// create one).
  Result<flash::Ppa> write_pair(std::uint64_t sig, ByteSpan key, ByteSpan value,
                                bool for_gc = false, std::uint64_t epoch = 0);

  /// Appends a tombstone — the durable deletion record crash recovery
  /// replays. Not indexed; GC keeps it until a newer version of the
  /// signature exists.
  Result<flash::Ppa> write_tombstone(std::uint64_t sig, ByteSpan key,
                                     bool for_gc = false,
                                     std::uint64_t epoch = 0);

  /// Reads the pair with signature `sig` starting at `start`. When a page
  /// holds several versions of the same signature, the most recently
  /// appended one wins. `epoch_out`, when given, receives the winner's
  /// version stamp.
  Status read_pair(flash::Ppa start, std::uint64_t sig, Bytes* key_out,
                   Bytes* value_out, std::uint64_t* epoch_out = nullptr);

  /// Snapshot read: the newest version of `sig` in the head page at
  /// `start` whose epoch stamp is <= `max_epoch`. Used only on the
  /// retained-version path, where the caller knows a version satisfying
  /// the cap lives at `start`. A tombstone resolving under the cap
  /// returns kOk with `*tombstone_out = true` and no value — the caller
  /// maps it to "key absent at this snapshot" after verifying the key.
  Status read_pair_at(flash::Ppa start, std::uint64_t sig,
                      std::uint64_t max_epoch, Bytes* key_out, Bytes* value_out,
                      bool* tombstone_out = nullptr);

  /// Reads only the header + key (update/delete verification path).
  Result<PairMeta> read_pair_meta(flash::Ppa start, std::uint64_t sig);

  /// Marks a previously written pair stale (update/delete) so GC victim
  /// selection sees the reclaimed bytes.
  void note_stale(flash::Ppa start, std::uint64_t total_bytes);

  /// Programs the partially filled open pages (hot and cold), if any.
  /// Reads are served from the open buffers transparently, so this is
  /// only needed for power-cycle persistence.
  Status flush();

  /// Programs whichever open page (hot or cold) targets `block`, if any.
  /// GC calls this before scanning a victim so buffered pairs are seen
  /// and before erasing it so they are never destroyed.
  Status flush_block(std::uint32_t block);

  /// Programs the open page GC relocations are buffered in (the cold
  /// page under cold separation, otherwise the shared hot page). GC
  /// calls this before a victim erase so relocated pairs are never the
  /// only copy in RAM.
  Status flush_relocations();

  /// Programs the hot open page, if one is buffered. GC calls this
  /// before a victim erase when the victim holds the durable copy of a
  /// signature whose newer version still sits in the hot buffer — the
  /// erase must never destroy the only durable version of an
  /// acknowledged write.
  Status flush_hot();

  /// True if a pair or tombstone for `sig` is buffered (volatile) in
  /// the hot open page.
  [[nodiscard]] bool hot_buffer_contains(std::uint64_t sig) const noexcept {
    return hot_.ppa.has_value() && hot_.builder.contains(sig);
  }

  /// Hot/cold separation (HashKV-style): when on, `for_gc` writes —
  /// relocated survivors, by definition colder than fresh traffic — are
  /// packed into their own open page on the Stream::kCold append stream
  /// instead of re-mixing with fresh writes. Off by default (single
  /// open page, original behavior).
  void set_cold_separation(bool on) noexcept { cold_separation_ = on; }
  [[nodiscard]] bool cold_separation() const noexcept { return cold_separation_; }

  /// Largest value storable with a key of `key_len` bytes (extent must
  /// fit one erase block).
  [[nodiscard]] std::uint64_t max_value_size(std::size_t key_len) const noexcept;

  /// Total bytes (header+key+value) a pair occupies in the log.
  [[nodiscard]] static std::uint64_t pair_bytes(std::size_t key_len,
                                                std::size_t value_len) noexcept {
    return PairHeader::kSize + key_len + value_len;
  }

  [[nodiscard]] const KvStoreStats& stats() const noexcept { return stats_; }
  /// The hot open page (fresh writes), if one is buffered.
  [[nodiscard]] std::optional<flash::Ppa> open_page() const noexcept {
    return hot_.ppa;
  }
  /// The cold open page (GC relocations under cold separation), if any.
  [[nodiscard]] std::optional<flash::Ppa> cold_open_page() const noexcept {
    return cold_.ppa;
  }

  /// Head-page sequence counter (global pair ordering for recovery).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  void set_next_seq(std::uint64_t seq) noexcept { next_seq_ = seq; }

  /// MVCC: when set, every programmed head page records the device
  /// epoch high-water in its spare (DataPageSpare::epoch_hw), which is
  /// how the checkpoint fast restore re-seeds the epoch counter.
  void set_epoch_source(const EpochSource* epochs) noexcept { epochs_ = epochs; }

 private:
  /// One buffered head page being filled (the device DRAM write buffer).
  /// The hot instance takes fresh writes on Stream::kData; the cold one
  /// takes GC relocations on Stream::kCold when cold separation is on.
  struct OpenPage {
    explicit OpenPage(std::uint32_t page_size) : builder(page_size) {}
    DataPageBuilder builder;
    std::optional<flash::Ppa> ppa;
    Stream stream = Stream::kData;
  };

  Result<flash::Ppa> write_internal(std::uint64_t sig, ByteSpan key, ByteSpan value,
                                    bool tombstone, bool for_gc,
                                    std::uint64_t epoch);
  /// Zero-copy view of a head page image, either straight into NAND page
  /// storage or into an open write buffer. Valid until the next write /
  /// flush / erase touching the source — callers parse and copy out what
  /// they keep before returning.
  ///
  /// With `spare_out` the kDataHead tag check is handed to the caller:
  /// `*spare_out` gets the spare view ({} when the page came from an open
  /// write buffer, which needs no check). Deferring the check past the
  /// caller's first scan of the page hides the spare line's cache miss
  /// behind that work — the caller must validate before using any parse
  /// result.
  Result<ByteSpan> load_head_page(flash::Ppa ppa, ByteSpan* spare_out = nullptr);

  Status program_open_page(OpenPage& open);
  /// The buffer a write of this class lands in under the current policy.
  OpenPage& open_for(bool for_gc) noexcept {
    return for_gc && cold_separation_ ? cold_ : hot_;
  }

  flash::NandDevice* nand_;
  PageAllocator* alloc_;
  OpenPage hot_;
  OpenPage cold_;
  bool cold_separation_ = false;
  std::uint64_t next_seq_ = 1;
  const EpochSource* epochs_ = nullptr;
  KvStoreStats stats_;
};

}  // namespace rhik::ftl
