#include "ftl/page_allocator.hpp"

#include <algorithm>
#include <cassert>

namespace rhik::ftl {

using flash::Ppa;

PageAllocator::PageAllocator(flash::NandDevice* nand, std::uint32_t gc_reserve_blocks,
                             std::uint32_t reserved_tail_blocks)
    : nand_(nand),
      gc_reserve_(gc_reserve_blocks),
      reserved_tail_(reserved_tail_blocks),
      blocks_(nand->geometry().num_blocks) {
  assert(nand_ != nullptr);
  assert(gc_reserve_ + reserved_tail_ < nand_->geometry().num_blocks);
  const std::uint32_t first_reserved =
      nand_->geometry().num_blocks - reserved_tail_;
  for (std::uint32_t b = 0; b < first_reserved; ++b) free_.push_back(b);
  for (std::uint32_t b = first_reserved; b < nand_->geometry().num_blocks; ++b) {
    blocks_[b].state = BlockState::kReserved;
  }
}

Result<std::uint32_t> PageAllocator::open_block(Stream stream, bool for_gc) {
  const std::size_t floor = for_gc ? 0 : gc_reserve_;
  if (free_.size() <= floor) return Status::kDeviceFull;
  auto it = free_.begin();
  if (wear_aware_) {
    // Cold data rarely churns, so a cold block keeps its erase count
    // frozen for a long time: park cold data on the MOST worn free block
    // (it rests) and hot/index data on the LEAST worn one (it keeps
    // cycling, catching up).
    const bool want_max = stream == Stream::kCold;
    for (auto cand = free_.begin(); cand != free_.end(); ++cand) {
      const std::uint64_t e = nand_->erase_count(*cand);
      const std::uint64_t best = nand_->erase_count(*it);
      if (want_max ? e > best : e < best) it = cand;
    }
  }
  const std::uint32_t b = *it;
  free_.erase(it);
  blocks_[b] = {BlockState::kActive, stream, 0, 0, alloc_seq_};
  return b;
}

void PageAllocator::seal(std::uint32_t block) {
  assert(blocks_[block].state == BlockState::kActive);
  blocks_[block].state = BlockState::kSealed;
  const auto s = static_cast<std::size_t>(blocks_[block].stream);
  if (active_[s] == block) active_[s] = kNoBlock;
}

Result<Ppa> PageAllocator::allocate(Stream stream, bool for_gc) {
  const auto s = static_cast<std::size_t>(stream);
  if (active_[s] == kNoBlock) {
    auto blk = open_block(stream, for_gc);
    if (!blk) return blk.status();
    active_[s] = *blk;
  }
  BlockInfo& info = blocks_[active_[s]];
  const Ppa ppa = flash::make_ppa(nand_->geometry(), active_[s], info.next_page);
  info.next_page++;
  info.write_stamp = ++alloc_seq_;
  if (info.next_page == nand_->geometry().pages_per_block) seal(active_[s]);
  return ppa;
}

Result<Ppa> PageAllocator::allocate_extent(Stream stream, std::uint32_t npages,
                                           bool for_gc) {
  const auto& g = nand_->geometry();
  if (npages == 0 || npages > g.pages_per_block) return Status::kInvalidArgument;
  const auto s = static_cast<std::size_t>(stream);
  if (active_[s] != kNoBlock &&
      blocks_[active_[s]].next_page + npages > g.pages_per_block) {
    // Not enough room in the active block: abandon its unwritten tail.
    seal(active_[s]);
  }
  if (active_[s] == kNoBlock) {
    auto blk = open_block(stream, for_gc);
    if (!blk) return blk.status();
    active_[s] = *blk;
  }
  BlockInfo& info = blocks_[active_[s]];
  const Ppa base = flash::make_ppa(g, active_[s], info.next_page);
  info.next_page += npages;
  alloc_seq_ += npages;
  info.write_stamp = alloc_seq_;
  if (info.next_page == g.pages_per_block) seal(active_[s]);
  return base;
}

void PageAllocator::add_live(Ppa ppa, std::uint64_t bytes) {
  blocks_[flash::ppa_block(nand_->geometry(), ppa)].live_bytes += bytes;
}

void PageAllocator::sub_live(Ppa ppa, std::uint64_t bytes) {
  auto& live = blocks_[flash::ppa_block(nand_->geometry(), ppa)].live_bytes;
  live = bytes > live ? 0 : live - bytes;
}

std::optional<std::uint32_t> PageAllocator::pick_victim(GcPolicy policy) const {
  if (policy == GcPolicy::kGreedy) {
    std::optional<std::uint32_t> best;
    std::uint64_t best_live = UINT64_MAX;
    for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
      if (blocks_[b].state != BlockState::kSealed) continue;
      if (blocks_[b].live_bytes < best_live) {
        best_live = blocks_[b].live_bytes;
        best = b;
      }
    }
    return best;
  }

  // Cost-benefit (Rosenblum & Ousterhout): benefit/cost = (1-u)/(2u)·age.
  // Reading costs u, writing back costs u again (hence 2u), and `age`
  // rewards blocks whose survivors have proven cold. The score saturates
  // for u == 0 blocks (free space for the price of one erase).
  const auto score_of = [&](std::uint32_t b) -> double {
    const double cap = static_cast<double>(nand_->geometry().block_bytes());
    const double u =
        std::min(1.0, static_cast<double>(blocks_[b].live_bytes) / cap);
    const double age =
        1.0 + static_cast<double>(alloc_seq_ - blocks_[b].write_stamp);
    if (u <= 0.0) return 1e18 * age;
    return (1.0 - u) / (2.0 * u) * age;
  };
  double best_score = -1.0;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].state != BlockState::kSealed) continue;
    best_score = std::max(best_score, score_of(b));
  }
  if (best_score < 0.0) return std::nullopt;
  // Wear tiebreak: among candidates within 10% of the best score, take
  // the least-erased block so reclamation pressure levels wear.
  std::optional<std::uint32_t> best;
  std::uint64_t best_erase = UINT64_MAX;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].state != BlockState::kSealed) continue;
    if (score_of(b) < best_score * 0.9) continue;
    const std::uint64_t e = nand_->erase_count(b);
    if (e < best_erase) {
      best_erase = e;
      best = b;
    }
  }
  return best;
}

BlockCounts PageAllocator::block_counts() const noexcept {
  BlockCounts c;
  for (const BlockInfo& b : blocks_) {
    switch (b.state) {
      case BlockState::kFree: c.free++; break;
      case BlockState::kActive: c.active++; break;
      case BlockState::kSealed: c.sealed++; break;
      case BlockState::kReserved: c.reserved++; break;
    }
  }
  return c;
}

Status PageAllocator::reclaim_block(std::uint32_t block) {
  if (block >= blocks_.size()) return Status::kInvalidArgument;
  if (blocks_[block].state != BlockState::kSealed) return Status::kInvalidArgument;
  if (pre_erase_hook_) pre_erase_hook_(block);
  if (Status s = nand_->erase_block(block); !ok(s)) return s;
  blocks_[block] = {};
  free_.push_back(block);
  return Status::kOk;
}

Status PageAllocator::adopt_block(std::uint32_t block, Stream stream,
                                  std::uint32_t pages_used) {
  // pages_used == 0 is legal: a block whose every programmed page was
  // torn by a power cut holds nothing parseable, but its write point is
  // non-zero, so it cannot rejoin the free list (in-order programming
  // would fail). It is adopted sealed with zero liveness — first in
  // line for GC.
  if (block >= blocks_.size() || pages_used > nand_->geometry().pages_per_block) {
    return Status::kInvalidArgument;
  }
  if (blocks_[block].state != BlockState::kFree) return Status::kInvalidArgument;
  const auto it = std::find(free_.begin(), free_.end(), block);
  if (it == free_.end()) return Status::kInvalidArgument;
  free_.erase(it);
  blocks_[block] = {BlockState::kSealed, stream, pages_used, 0};
  return Status::kOk;
}

std::uint64_t PageAllocator::free_bytes_estimate() const noexcept {
  const auto& g = nand_->geometry();
  std::uint64_t pages = std::uint64_t{g.pages_per_block} *
                        (free_.size() > gc_reserve_ ? free_.size() - gc_reserve_ : 0);
  for (std::size_t s = 0; s < kNumStreams; ++s) {
    if (active_[s] != kNoBlock) {
      pages += g.pages_per_block - blocks_[active_[s]].next_page;
    }
  }
  return pages * g.page_size;
}

}  // namespace rhik::ftl
