#include "ftl/mvcc.hpp"

#include <algorithm>

namespace rhik::ftl {

SnapshotRegistry::Pin SnapshotRegistry::open() {
  std::lock_guard lk(mu_);
  // Order matters: the pin count must be visible (seq_cst) before the
  // epoch advance, so a mutation that reads pin_count == 0 provably
  // stamped at-or-above this pin's epoch. See the header comment.
  pin_count_.fetch_add(1, std::memory_order_seq_cst);
  const std::uint64_t e = epochs_->advance() - 1;  // pre-advance value
  const std::uint64_t id = next_id_++;
  pins_.emplace(id, Entry{e, false});
  stats_.opened++;
  recompute_floor_locked();
  return Pin{id, e};
}

Status SnapshotRegistry::release(std::uint64_t id, std::uint64_t epoch) {
  std::lock_guard lk(mu_);
  auto it = pins_.find(id);
  if (it == pins_.end()) return Status::kSnapshotTooOld;
  if (epoch != 0 && it->second.epoch != epoch) return Status::kSnapshotTooOld;
  if (!it->second.expired) {
    pin_count_.fetch_sub(1, std::memory_order_seq_cst);
  }
  pins_.erase(it);
  stats_.released++;
  recompute_floor_locked();
  return Status::kOk;
}

Result<std::uint64_t> SnapshotRegistry::epoch_of(std::uint64_t id) const {
  std::lock_guard lk(mu_);
  auto it = pins_.find(id);
  if (it == pins_.end() || it->second.expired) return Status::kSnapshotTooOld;
  return it->second.epoch;
}

std::uint64_t SnapshotRegistry::floor() const {
  const std::uint64_t f = floor_.load(std::memory_order_seq_cst);
  // No valid pin: everything up to the CURRENT epoch is reclaimable.
  // Reading the epoch after the floor is conservative — a pin opened in
  // between raises the floor only above this value.
  return f == kEpochMax ? epochs_->current() : f;
}

void SnapshotRegistry::add_retained(std::uint64_t bytes) {
  const std::uint64_t cap = retention_cap_.load(std::memory_order_relaxed);
  const std::uint64_t now =
      retained_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (cap == 0 || now <= cap) return;
  // Over budget: expire the OLDEST valid pin. The bytes it was holding
  // free on its retainers' next reclaim pass, so only one pin is evicted
  // per capture that finds the budget exceeded — gradual pressure, and a
  // quiescent over-budget state drains as the floor rises.
  std::lock_guard lk(mu_);
  auto oldest = pins_.end();
  for (auto it = pins_.begin(); it != pins_.end(); ++it) {
    if (it->second.expired) continue;
    if (oldest == pins_.end() || it->second.epoch < oldest->second.epoch) {
      oldest = it;
    }
  }
  if (oldest == pins_.end()) return;  // no valid pin to evict
  oldest->second.expired = true;
  pin_count_.fetch_sub(1, std::memory_order_seq_cst);
  stats_.expired++;
  recompute_floor_locked();
}

void SnapshotRegistry::recompute_floor_locked() {
  std::uint64_t f = kEpochMax;
  for (const auto& [id, e] : pins_) {
    if (!e.expired) f = std::min(f, e.epoch);
  }
  floor_.store(f, std::memory_order_seq_cst);
}

std::size_t SnapshotRegistry::open_pins() const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const auto& [id, e] : pins_) {
    if (!e.expired) ++n;
  }
  return n;
}

SnapshotStats SnapshotRegistry::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

// -- VersionRetainer -----------------------------------------------------------

void VersionRetainer::capture(std::uint64_t sig, const RetainedVersion& v) {
  entries_[sig].push_back(v);
  total_versions_++;
  stats_.captured++;
  registry_->add_retained(v.total_bytes);
}

const RetainedVersion* VersionRetainer::resolve(std::uint64_t sig,
                                                std::uint64_t e) {
  auto it = entries_.find(sig);
  if (it == entries_.end()) return nullptr;
  for (const RetainedVersion& v : it->second) {
    if (v.begin_epoch <= e && e < v.end_epoch) {
      stats_.resolved++;
      return &v;
    }
  }
  return nullptr;
}

bool VersionRetainer::is_retained(std::uint64_t sig,
                                  flash::Ppa ppa) const noexcept {
  auto it = entries_.find(sig);
  if (it == entries_.end()) return false;
  for (const RetainedVersion& v : it->second) {
    if (v.ppa == ppa) return true;
  }
  return false;
}

std::vector<RetainedVersion> VersionRetainer::versions_at(
    std::uint64_t sig, flash::Ppa ppa) const {
  std::vector<RetainedVersion> out;
  auto it = entries_.find(sig);
  if (it == entries_.end()) return out;
  for (const RetainedVersion& v : it->second) {
    if (v.ppa == ppa) out.push_back(v);
  }
  return out;
}

void VersionRetainer::repoint(std::uint64_t sig, std::uint64_t begin_epoch,
                              flash::Ppa to) {
  auto it = entries_.find(sig);
  if (it == entries_.end()) return;
  for (RetainedVersion& v : it->second) {
    if (v.begin_epoch == begin_epoch) {
      v.ppa = to;
      stats_.repointed++;
      return;
    }
  }
}

void VersionRetainer::for_each_covering(
    std::uint64_t e,
    const std::function<void(std::uint64_t, const RetainedVersion&)>& fn)
    const {
  for (const auto& [sig, versions] : entries_) {
    for (const RetainedVersion& v : versions) {
      if (v.begin_epoch <= e && e < v.end_epoch) fn(sig, v);
    }
  }
}

void VersionRetainer::reclaim(
    const std::function<void(flash::Ppa, std::uint64_t)>& note_stale) {
  if (entries_.empty()) return;
  const std::uint64_t floor = registry_->floor();
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto& versions = it->second;
    for (auto vit = versions.begin(); vit != versions.end();) {
      if (vit->end_epoch <= floor) {
        note_stale(vit->ppa, vit->total_bytes);
        registry_->sub_retained(vit->total_bytes);
        total_versions_--;
        stats_.reclaimed++;
        vit = versions.erase(vit);
      } else {
        ++vit;
      }
    }
    it = versions.empty() ? entries_.erase(it) : std::next(it);
  }
}

}  // namespace rhik::ftl
