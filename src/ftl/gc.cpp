#include "ftl/gc.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "ftl/mvcc.hpp"

namespace rhik::ftl {

using flash::Ppa;

double erase_spread(const flash::NandDevice& nand, std::uint32_t nblocks) {
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const std::uint64_t e = nand.erase_count(b);
    max = std::max(max, e);
    sum += e;
  }
  if (nblocks == 0 || sum == 0) return 1.0;
  return static_cast<double>(max) * nblocks / static_cast<double>(sum);
}

GarbageCollector::GarbageCollector(flash::NandDevice* nand, PageAllocator* alloc,
                                   FlashKvStore* store, GcIndexHooks* hooks,
                                   GcTuning tuning)
    : nand_(nand), alloc_(alloc), store_(store), hooks_(hooks), tuning_(tuning) {
  assert(nand_ && alloc_ && store_ && hooks_);
}

Status GarbageCollector::collect(std::uint32_t target_free) {
  while (alloc_->free_blocks() < target_free) {
    const std::uint32_t before = alloc_->free_blocks();
    if (Status s = collect_one(); !ok(s)) return s;
    if (alloc_->free_blocks() <= before) {
      // The victim was (almost) fully live: relocation consumed as much
      // as the erase freed. No net progress is possible — the device is
      // genuinely out of reclaimable space.
      return Status::kDeviceFull;
    }
  }
  return Status::kOk;
}

Status GarbageCollector::collect_one() {
  if (bg_) {
    // Foreground pressure overtook the background pace: finish the
    // in-flight victim synchronously rather than double-collecting a
    // second block (its already-relocated pages must not be re-scanned).
    const InProgress ip = *bg_;
    bg_.reset();
    std::uint32_t pg = ip.next_page;
    if (Status s = relocate_pages(ip.block, &pg, UINT32_MAX); !ok(s)) return s;
    return finish_victim(ip.block, ip.pairs_before);
  }
  const auto victim = alloc_->pick_victim(tuning_.policy);
  if (!victim) return Status::kDeviceFull;
  return collect_block(*victim);
}

Status GarbageCollector::collect_block(std::uint32_t block) {
  stats_.runs++;
  victim_sigs_.clear();
  // The store's open write buffers may target the victim block's final
  // page (a block seals the moment its last page is handed out, possibly
  // before that page is programmed). Persist such a buffer so the scan
  // sees it and its pairs can be relocated before the erase.
  if (Status s = store_->flush_block(block); !ok(s)) return s;
  const std::uint64_t pairs_before = stats_.pairs_relocated;
  std::uint32_t pg = 0;
  if (Status s = relocate_pages(block, &pg, UINT32_MAX); !ok(s)) return s;
  return finish_victim(block, pairs_before);
}

Status GarbageCollector::finish_victim(std::uint32_t block,
                                       std::uint64_t pairs_before) {
  // If the victim holds the durable copy of a signature whose newest
  // version is still buffered in the hot open page (a put or delete the
  // host was already acknowledged for), that record was skipped as
  // stale above — but until the buffer programs, the victim's copy is
  // the only durable trace of the key. Persist the buffer before the
  // erase, or a power cut would roll the key back past its durability
  // floor (or resurrect a deleted one).
  for (const std::uint64_t sig : victim_sigs_) {
    if (store_->hot_buffer_contains(sig)) {
      if (Status s = store_->flush_hot(); !ok(s)) return s;
      break;
    }
  }
  victim_sigs_.clear();
  // Relocated pairs and tombstones may still sit in the store's open
  // write buffer. Persist them BEFORE erasing the victim: a power cut
  // between the erase and the eventual flush would otherwise destroy
  // the only durable copy of data the host was long ago acknowledged
  // for. Flushing first leaves duplicates across source and destination
  // at worst, and recovery resolves those by sequence number.
  if (stats_.pairs_relocated > pairs_before) {
    if (Status s = store_->flush_relocations(); !ok(s)) return s;
  }
  if (Status s = alloc_->reclaim_block(block); !ok(s)) return s;
  stats_.blocks_reclaimed++;
  return Status::kOk;
}

Status GarbageCollector::background_tick(bool* did_work) {
  if (did_work) *did_work = false;
  if (tuning_.background_free_blocks == 0 || tuning_.quantum_pages == 0) {
    return Status::kOk;
  }
  if (!bg_) {
    // Periodic static wear pass: long-lived cold blocks freeze their
    // erase counts while hot blocks cycle; when the spread exceeds the
    // threshold, migrate the coldest block so its low-wear cells rejoin
    // the free pool. Checked rarely — a migration moves a whole block.
    if (tuning_.wear_leveling_threshold > 0.0 &&
        ++wear_check_countdown_ >= tuning_.wear_check_quanta) {
      wear_check_countdown_ = 0;
      if (const auto b = wear_victim()) {
        if (Status s = collect_block(*b); !ok(s)) return s;
        stats_.wear_migrations++;
        if (did_work) *did_work = true;
        return Status::kOk;
      }
    }
    if (alloc_->free_blocks() >= tuning_.background_free_blocks) {
      return Status::kOk;
    }
    const auto victim = alloc_->pick_victim(tuning_.policy);
    if (!victim) return Status::kOk;  // nothing sealed yet
    // A (nearly) fully live victim frees almost nothing: collecting it
    // in the background would churn writes forever on a genuinely full
    // device. Leave it to foreground pressure, whose no-progress check
    // turns that condition into kDeviceFull for the host.
    const std::uint64_t cap = nand_->geometry().block_bytes();
    if (alloc_->block_live_bytes(*victim) * 10 >= cap * 9) return Status::kOk;
    if (Status s = store_->flush_block(*victim); !ok(s)) return s;
    stats_.runs++;
    victim_sigs_.clear();
    bg_ = InProgress{*victim, 0, stats_.pairs_relocated};
  }
  std::uint32_t pg = bg_->next_page;
  const Status s = relocate_pages(bg_->block, &pg, tuning_.quantum_pages);
  if (!ok(s)) {
    bg_.reset();
    return s;
  }
  bg_->next_page = pg;
  stats_.background_quanta++;
  if (did_work) *did_work = true;
  if (pg >= alloc_->pages_used(bg_->block)) {
    const InProgress ip = *bg_;
    bg_.reset();
    return finish_victim(ip.block, ip.pairs_before);
  }
  return Status::kOk;
}

std::optional<std::uint32_t> GarbageCollector::wear_victim() const {
  const std::uint32_t nblocks = alloc_->first_reserved_block();
  if (erase_spread(*nand_, nblocks) <= tuning_.wear_leveling_threshold) {
    return std::nullopt;
  }
  std::uint64_t sum = 0;
  for (std::uint32_t b = 0; b < nblocks; ++b) sum += nand_->erase_count(b);
  const double mean = static_cast<double>(sum) / nblocks;
  // The coldest sealed block: least erased (strictly below the mean, so
  // migrating it actually narrows the spread).
  std::optional<std::uint32_t> best;
  std::uint64_t best_erase = UINT64_MAX;
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    if (!alloc_->is_sealed(b)) continue;
    const std::uint64_t e = nand_->erase_count(b);
    if (static_cast<double>(e) >= mean) continue;
    if (e < best_erase) {
      best_erase = e;
      best = b;
    }
  }
  return best;
}

Status GarbageCollector::relocate_pages(std::uint32_t block, std::uint32_t* page,
                                        std::uint32_t max_pages) {
  const auto& g = nand_->geometry();
  const std::uint32_t used = alloc_->pages_used(block);
  Bytes spare(g.spare_size());

  std::uint32_t budget = max_pages;
  std::uint32_t pg = *page;
  for (; pg < used && budget > 0; ++pg, --budget) {
    const Ppa ppa = flash::make_ppa(g, block, pg);
    if (!nand_->is_programmed(ppa)) continue;  // abandoned extent tail
    if (Status s = nand_->read_page(ppa, {}, spare); !ok(s)) {
      *page = pg;
      return s;
    }
    const SpareTag tag = SpareTag::decode(spare);
    switch (tag.kind) {
      case PageKind::kDataHead:
        if (Status s = relocate_data_head(ppa); !ok(s)) {
          *page = pg;
          return s;
        }
        break;
      case PageKind::kDataCont:
        break;  // moved with its head page
      case PageKind::kIndexRecord:
      case PageKind::kIndexDir:
        if (hooks_->gc_is_live_index_page(ppa)) {
          if (Status s = hooks_->gc_relocate_index_page(ppa); !ok(s)) {
            *page = pg;
            return s;
          }
          stats_.index_pages_relocated++;
        }
        break;
      case PageKind::kFree:
        break;
      case PageKind::kCkptSuper:
      case PageKind::kCkptJournal:
        break;  // live only in the reserved tail, never in a victim
    }
  }
  *page = pg;
  return Status::kOk;
}

Status GarbageCollector::relocate_data_head(Ppa ppa) {
  const auto& g = nand_->geometry();
  Bytes page(g.page_size);
  if (Status s = nand_->read_page(ppa, page); !ok(s)) return s;
  const auto pairs = parse_head_page(page, g.page_size);
  if (!pairs) return Status::kCorruption;

  // A page can hold several versions of the same signature (in-page
  // update); only the newest can be live, so deduplicate keeping order.
  std::unordered_set<std::uint64_t> seen;
  for (auto it = pairs->rbegin(); it != pairs->rend(); ++it) {
    victim_sigs_.insert(it->header.sig);
    if (!seen.insert(it->header.sig).second) continue;  // older duplicate
    const auto mapped = hooks_->gc_lookup(it->header.sig);

    // Snapshot-retained versions of this signature living in this page
    // (possibly several, the key's history) move out before the erase,
    // each rewritten with its ORIGINAL epoch stamp so the version order
    // survives relocation. The retainer follows them to their new homes;
    // their deferred stale credit moves with them (write_pair credits
    // the new location; reclaim later debits it there).
    if (retainer_ != nullptr) {
      for (const RetainedVersion& v :
           retainer_->versions_at(it->header.sig, ppa)) {
        Bytes key, value;
        bool tomb = false;
        if (Status s = store_->read_pair_at(ppa, it->header.sig, v.begin_epoch,
                                            &key, &value, &tomb);
            !ok(s)) {
          return s;
        }
        auto new_ppa =
            tomb ? store_->write_tombstone(it->header.sig, key, /*for_gc=*/true,
                                           v.begin_epoch)
                 : store_->write_pair(it->header.sig, key, value,
                                      /*for_gc=*/true, v.begin_epoch);
        if (!new_ppa) return new_ppa.status();
        retainer_->repoint(it->header.sig, v.begin_epoch, *new_ppa);
        stats_.pairs_relocated++;
        stats_.retained_relocated++;
        stats_.bytes_relocated += v.total_bytes;
      }
    }

    if (it->header.tombstone) {
      // A deletion record stays durable until a newer version of the
      // signature exists; only then is it obsolete and droppable.
      if (mapped) continue;
      const std::size_t key_off = it->offset + PairHeader::kSize;
      auto new_ppa = store_->write_tombstone(
          it->header.sig,
          ByteSpan{page.data() + key_off, it->header.key_len},
          /*for_gc=*/true, it->header.epoch);
      if (!new_ppa) return new_ppa.status();
      stats_.pairs_relocated++;
      stats_.bytes_relocated += it->header.pair_bytes();
      continue;
    }

    if (!mapped || *mapped != ppa) continue;  // stale pair
    Bytes key, value;
    std::uint64_t epoch = 0;
    if (Status s = store_->read_pair(ppa, it->header.sig, &key, &value, &epoch);
        !ok(s)) {
      return s;
    }
    auto new_ppa = store_->write_pair(it->header.sig, key, value, /*for_gc=*/true,
                                      epoch);
    if (!new_ppa) return new_ppa.status();
    if (Status s = hooks_->gc_update_location(it->header.sig, *new_ppa); !ok(s)) {
      return s;
    }
    stats_.pairs_relocated++;
    stats_.bytes_relocated += it->header.pair_bytes();
  }
  return Status::kOk;
}

}  // namespace rhik::ftl
