#include "ftl/gc.hpp"

#include <cassert>
#include <unordered_set>

namespace rhik::ftl {

using flash::Ppa;

GarbageCollector::GarbageCollector(flash::NandDevice* nand, PageAllocator* alloc,
                                   FlashKvStore* store, GcIndexHooks* hooks)
    : nand_(nand), alloc_(alloc), store_(store), hooks_(hooks) {
  assert(nand_ && alloc_ && store_ && hooks_);
}

Status GarbageCollector::collect(std::uint32_t target_free) {
  while (alloc_->free_blocks() < target_free) {
    const std::uint32_t before = alloc_->free_blocks();
    if (Status s = collect_one(); !ok(s)) return s;
    if (alloc_->free_blocks() <= before) {
      // The victim was (almost) fully live: relocation consumed as much
      // as the erase freed. No net progress is possible — the device is
      // genuinely out of reclaimable space.
      return Status::kDeviceFull;
    }
  }
  return Status::kOk;
}

Status GarbageCollector::collect_one() {
  const auto victim = alloc_->pick_victim();
  if (!victim) return Status::kDeviceFull;
  stats_.runs++;
  // The store's open write buffer may target the victim block's final
  // page (a block seals the moment its last page is handed out, possibly
  // before that page is programmed). Persist it so the scan sees it and
  // its pairs can be relocated before the erase.
  if (const auto open = store_->open_page();
      open && flash::ppa_block(nand_->geometry(), *open) == *victim) {
    if (Status s = store_->flush(); !ok(s)) return s;
  }
  const std::uint64_t pairs_before = stats_.pairs_relocated;
  if (Status s = relocate_block(*victim); !ok(s)) return s;
  // Relocated pairs and tombstones may still sit in the store's open
  // write buffer. Persist them BEFORE erasing the victim: a power cut
  // between the erase and the eventual flush would otherwise destroy
  // the only durable copy of data the host was long ago acknowledged
  // for. Flushing first leaves duplicates across source and destination
  // at worst, and recovery resolves those by sequence number.
  if (stats_.pairs_relocated > pairs_before && store_->open_page()) {
    if (Status s = store_->flush(); !ok(s)) return s;
  }
  if (Status s = alloc_->reclaim_block(*victim); !ok(s)) return s;
  stats_.blocks_reclaimed++;
  return Status::kOk;
}

Status GarbageCollector::relocate_block(std::uint32_t block) {
  const auto& g = nand_->geometry();
  const std::uint32_t used = alloc_->pages_used(block);
  Bytes spare(g.spare_size());

  for (std::uint32_t pg = 0; pg < used; ++pg) {
    const Ppa ppa = flash::make_ppa(g, block, pg);
    if (!nand_->is_programmed(ppa)) continue;  // abandoned extent tail
    if (Status s = nand_->read_page(ppa, {}, spare); !ok(s)) return s;
    const SpareTag tag = SpareTag::decode(spare);
    switch (tag.kind) {
      case PageKind::kDataHead:
        if (Status s = relocate_data_head(ppa); !ok(s)) return s;
        break;
      case PageKind::kDataCont:
        break;  // moved with its head page
      case PageKind::kIndexRecord:
      case PageKind::kIndexDir:
        if (hooks_->gc_is_live_index_page(ppa)) {
          if (Status s = hooks_->gc_relocate_index_page(ppa); !ok(s)) return s;
          stats_.index_pages_relocated++;
        }
        break;
      case PageKind::kFree:
        break;
    }
  }
  return Status::kOk;
}

Status GarbageCollector::relocate_data_head(Ppa ppa) {
  const auto& g = nand_->geometry();
  Bytes page(g.page_size);
  if (Status s = nand_->read_page(ppa, page); !ok(s)) return s;
  const auto pairs = parse_head_page(page, g.page_size);
  if (!pairs) return Status::kCorruption;

  // A page can hold several versions of the same signature (in-page
  // update); only the newest can be live, so deduplicate keeping order.
  std::unordered_set<std::uint64_t> seen;
  for (auto it = pairs->rbegin(); it != pairs->rend(); ++it) {
    if (!seen.insert(it->header.sig).second) continue;  // older duplicate
    const auto mapped = hooks_->gc_lookup(it->header.sig);

    if (it->header.tombstone) {
      // A deletion record stays durable until a newer version of the
      // signature exists; only then is it obsolete and droppable.
      if (mapped) continue;
      const std::size_t key_off = it->offset + PairHeader::kSize;
      auto new_ppa = store_->write_tombstone(
          it->header.sig,
          ByteSpan{page.data() + key_off, it->header.key_len},
          /*for_gc=*/true);
      if (!new_ppa) return new_ppa.status();
      stats_.pairs_relocated++;
      stats_.bytes_relocated += it->header.pair_bytes();
      continue;
    }

    if (!mapped || *mapped != ppa) continue;  // stale pair

    Bytes key, value;
    if (Status s = store_->read_pair(ppa, it->header.sig, &key, &value); !ok(s)) {
      return s;
    }
    auto new_ppa = store_->write_pair(it->header.sig, key, value, /*for_gc=*/true);
    if (!new_ppa) return new_ppa.status();
    if (Status s = hooks_->gc_update_location(it->header.sig, *new_ppa); !ok(s)) {
      return s;
    }
    stats_.pairs_relocated++;
    stats_.bytes_relocated += it->header.pair_bytes();
  }
  return Status::kOk;
}

}  // namespace rhik::ftl
