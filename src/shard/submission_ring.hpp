// Bounded submission ring between the sharded front-end and one shard
// worker thread.
//
// The storage is a fixed circular buffer and the interface is
// deliberately SPSC-shaped — push one / pop everything, no random
// access, capacity fixed at construction — so this mutex+condvar
// implementation can later be swapped for a lock-free single-producer /
// single-consumer ring without touching callers. The lock additionally
// makes multi-producer use safe today, which the sharded front-end's
// concurrent submitters rely on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace rhik::shard {

template <typename T>
class SubmissionRing {
 public:
  explicit SubmissionRing(std::size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  SubmissionRing(const SubmissionRing&) = delete;
  SubmissionRing& operator=(const SubmissionRing&) = delete;

  /// Blocks while the ring is full (back-pressure on the producer).
  /// Returns false once the ring has been closed; `item` is dropped.
  bool push(T item) {
    bool wake;
    {
      std::unique_lock lk(mu_);
      while (size_ == buf_.size() && !closed_) {
        ++waiting_producers_;
        not_full_.wait(lk);
        --waiting_producers_;
      }
      if (closed_) return false;
      buf_[(head_ + size_) % buf_.size()] = std::move(item);
      ++size_;
      // Signal only when the consumer is actually parked: a busy worker
      // re-checks the ring anyway, and an unconditional notify_one per
      // push costs a futex wake on the submission hot path.
      wake = waiting_consumers_ > 0;
    }
    if (wake) not_empty_.notify_one();
    return true;
  }

  /// Blocks until at least one item is available or the ring is closed;
  /// appends everything queued to `out`. Returns false only when the
  /// ring is closed AND empty (consumer shutdown signal).
  bool pop_all(std::vector<T>& out) {
    bool wake;
    {
      std::unique_lock lk(mu_);
      while (size_ == 0 && !closed_) {
        ++waiting_consumers_;
        not_empty_.wait(lk);
        --waiting_consumers_;
      }
      if (size_ == 0) return false;
      drain_locked(out);
      wake = waiting_producers_ > 0;
    }
    if (wake) not_full_.notify_all();
    return true;
  }

  /// Non-blocking variant; true if anything was popped.
  bool try_pop_all(std::vector<T>& out) {
    bool wake;
    {
      std::unique_lock lk(mu_);
      if (size_ == 0) return false;
      drain_locked(out);
      wake = waiting_producers_ > 0;
    }
    if (wake) not_full_.notify_all();
    return true;
  }

  /// Unblocks everyone; subsequent pushes fail, pops drain the residue.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

 private:
  void drain_locked(std::vector<T>& out) {
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(std::move(buf_[(head_ + i) % buf_.size()]));
    }
    head_ = (head_ + size_) % buf_.size();
    size_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t waiting_consumers_ = 0;  ///< parked in pop_all
  std::size_t waiting_producers_ = 0;  ///< parked in push (ring full)
  bool closed_ = false;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
};

}  // namespace rhik::shard
