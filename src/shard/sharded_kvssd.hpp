// Sharded multi-device front-end.
//
// Hash-partitions the keyspace — by the same 64-bit key signature the
// index uses (§IV-A), remixed so the shard choice is independent of the
// directory bits — across N KvssdDevice instances. Each shard is owned
// by a dedicated worker thread fed through a bounded submission ring;
// only that worker ever touches the shard's device, so the
// single-threaded emulator needs no internal locking. Completions flow
// back via callbacks executed on the worker thread.
//
// The front-end exposes the device's put/get/del/exist + batch verbs
// (sync verbs block on their own completion and stay ordered behind
// previously submitted async commands on the same shard) plus drain()
// and flush() barriers across all shards. Whole-array figures:
// DeviceStats are merged (histograms included) and simulated time is
// the MAX across shard clocks — shards advance their clocks
// concurrently, so the slowest shard defines array wall-clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/backend.hpp"
#include "ftl/mvcc.hpp"
#include "kvssd/device.hpp"
#include "obs/metrics.hpp"
#include "shard/submission_ring.hpp"

namespace rhik::shard {

struct ShardedConfig {
  /// Per-shard device configuration: geometry and DRAM budget describe
  /// ONE shard (callers slicing a fixed array budget divide first).
  kvssd::DeviceConfig device{};
  std::uint32_t num_shards = 1;
  /// Bounded submission-ring depth per shard (producer back-pressure).
  std::size_t ring_capacity = 4096;
};

class ShardedKvssd : public api::IKvsBackend {
 public:
  using Callback = kvssd::KvssdDevice::Callback;
  using GetCallback = kvssd::KvssdDevice::GetCallback;
  using BatchOp = kvssd::KvssdDevice::BatchOp;

  explicit ShardedKvssd(ShardedConfig cfg);
  ~ShardedKvssd() override;

  ShardedKvssd(const ShardedKvssd&) = delete;
  ShardedKvssd& operator=(const ShardedKvssd&) = delete;

  /// Power-loss recovery of a whole array: one NAND per shard, in shard
  /// order (as returned by release_nands()). Each shard's device is
  /// rebuilt via KvssdDevice::recover, per-shard RecoveryStats are
  /// merged into `stats_out` (when non-null), and every shard clock is
  /// re-seeded to the maximum adopted clock so post-recovery array time
  /// stays the max across shards. `nands.size()` must equal
  /// max(1, cfg.num_shards).
  static Result<std::unique_ptr<ShardedKvssd>> recover(
      ShardedConfig cfg, std::vector<std::unique_ptr<flash::NandDevice>> nands,
      kvssd::RecoveryStats* stats_out = nullptr);

  /// Power-off of the whole array: stops every worker thread (each
  /// drains its remaining queue first) and relinquishes each shard's
  /// NAND array, in shard order. The front-end must not be used
  /// afterwards. Call flush() first for a clean shutdown; arm a
  /// FaultInjector on a shard's NAND to model an abrupt cut instead.
  std::vector<std::unique_ptr<flash::NandDevice>> release_nands();

  // -- Synchronous verbs (block until the op completes on its shard) ----------
  Status put(ByteSpan key, ByteSpan value) override;
  Status get(ByteSpan key, Bytes* value_out) override;
  Status del(ByteSpan key) override;
  Status exist(ByteSpan key) override;
  /// Prefix scan across the whole array: every shard scans its keyspace
  /// slice (behind its queued work), results are merged, sorted
  /// lexicographically for a deterministic order, and truncated to
  /// `limit`. kUnsupported unless the shard devices keep prefix
  /// signatures (DeviceConfig::prefix_signatures).
  Status iterate_prefix(ByteSpan prefix, std::vector<Bytes>* keys_out,
                        std::size_t limit = SIZE_MAX) override;
  /// Compound command across the array: ops are partitioned by shard
  /// (relative order preserved within each shard), executed as one
  /// sub-batch per shard, and per-op status/value written back in place.
  Status execute_batch(std::vector<BatchOp>& ops);

  // -- MVCC snapshots (DESIGN.md §13) ----------------------------------------
  /// Pins ONE device-global epoch: every shard stamps from the same
  /// shared EpochSource, so a snapshot is a consistent cut across the
  /// whole array — a cross-shard scan at the pin never mixes epochs.
  Result<api::SnapshotHandle> open_snapshot() override;
  Status release_snapshot(const api::SnapshotHandle& snap) override;
  /// Point read as of the snapshot, routed to the key's shard (behind
  /// that shard's queued work, like the other sync verbs).
  Status read_at(const api::SnapshotHandle& snap, ByteSpan key,
                 Bytes* value_out) override;

  // -- Streaming iterator handles (SNIA-style; §II-A) ------------------------
  /// Array-wide key iterator: walks the shards in shard order, holding
  /// one device iterator at a time, all bound to the same pinned epoch
  /// (the caller's snapshot, or an internal pin when `snap` is null).
  /// Keys stream in per-shard candidate order, shard-major — a stable,
  /// deterministic order, but not lexicographic across shards.
  Result<std::uint64_t> kvs_open_iterator(ByteSpan prefix,
                                          const api::SnapshotHandle* snap) override;
  Status kvs_iterator_next(std::uint64_t handle, std::size_t max_keys,
                           std::vector<Bytes>* keys_out) override;
  Status kvs_close_iterator(std::uint64_t handle) override;

  /// The array-shared snapshot context (epoch source + pin registry).
  [[nodiscard]] ftl::SnapshotContext& snapshots() noexcept { return *snaps_; }

  // -- Asynchronous submission (callbacks run on the shard's worker) ----------
  void submit_put(Bytes key, Bytes value, Callback cb = {}) override;
  void submit_get(Bytes key, GetCallback cb) override;
  void submit_get(Bytes key, Callback cb = {});
  void submit_del(Bytes key, Callback cb = {}) override;

  // -- Tagged submission (batched completion fast path) ------------------------
  /// Installs the sink on every shard device — each fires it from its
  /// own worker, one call per drained batch, so the sink must be
  /// thread-safe. Blocks until every worker has adopted the sink (a
  /// cross-shard barrier); install before the first tagged submit.
  void set_completion_sink(api::IKvsBackend::CompletionSink sink) override;
  void submit_put_tagged(std::uint64_t tag, Bytes key, Bytes value) override;
  void submit_get_tagged(std::uint64_t tag, Bytes key) override;
  void submit_del_tagged(std::uint64_t tag, Bytes key) override;

  /// Idle-window maintenance is already owned by the shard workers —
  /// each pumps its own device whenever its submission ring is empty
  /// (see worker_loop), including under event-loop dispatch where the
  /// serving layer never blocks in a worker. Nothing for an outside
  /// caller to drive, so this reports "no work" unconditionally.
  bool pump_background() override { return false; }

  /// Cross-shard barrier: waits until every command submitted before the
  /// call has completed on its shard. Returns how many commands
  /// completed since the previous barrier (approximate under concurrent
  /// submitters).
  std::size_t drain() override;
  /// drain() + persists buffered data and index state on every shard.
  Status flush() override;
  /// Checkpoints every shard's index (DESIGN.md §8); first non-kOk shard
  /// status wins. kUnsupported when checkpointing is disabled.
  Status checkpoint() override;

  // -- Whole-array introspection (each implies a cross-shard barrier) ---------
  /// Merged DeviceStats (counters summed, histograms merged).
  kvssd::DeviceStats stats();
  kvssd::DeviceStats stats_snapshot() override { return stats(); }
  /// Array time: max across shard clocks (shards advance concurrently).
  SimTime sim_time();
  /// Max stall time across shards.
  SimTime total_stall();
  /// Live KV pairs across all shards.
  std::uint64_t key_count();

  /// One coherent metrics view of the whole array: a cross-shard barrier
  /// captures every shard's KvssdDevice::metrics_snapshot() on its own
  /// worker (so nothing is dropped or double-counted under concurrent
  /// drains), merges them (counters/timers summed, clock gauges maxed),
  /// and overlays the front-end's own `frontend.*` metrics (submission
  /// counts, barrier counts, shard count).
  obs::MetricsSnapshot metrics_snapshot() override;
  /// The per-shard snapshots behind metrics_snapshot(), in shard order
  /// (same barrier semantics). The merged view equals merging these and
  /// adding the front-end overlay — tests assert exactly that.
  std::vector<obs::MetricsSnapshot> shard_metrics_snapshots();

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const ShardedConfig& config() const noexcept { return cfg_; }
  /// Key signature (identical to every shard device's computation).
  [[nodiscard]] std::uint64_t signature(ByteSpan key) const;
  /// Owning shard for a key.
  [[nodiscard]] std::uint32_t shard_of(ByteSpan key) const;
  /// Direct access to a shard's device, for tests and benches. Only safe
  /// when the array is quiescent (after drain() with no concurrent
  /// submitters) — the worker thread owns the device otherwise.
  [[nodiscard]] kvssd::KvssdDevice& shard_device(std::uint32_t shard);

 private:
  /// Wiring over pre-built shard devices (the recovery path); starts the
  /// worker threads. `devices.size()` defines the shard count. `ctx` is
  /// the shared snapshot context every device was built against.
  ShardedKvssd(ShardedConfig cfg, std::unique_ptr<ftl::SnapshotContext> ctx,
               std::vector<std::unique_ptr<kvssd::KvssdDevice>> devices);

  /// One array-level streaming iterator: a cursor over the shards,
  /// holding at most one device iterator at a time, bound to one pin.
  struct ArrayIter {
    Bytes prefix;
    api::SnapshotHandle snap{};
    bool owns_snap = false;  ///< internal pin, released on close
    std::uint32_t shard = 0;
    std::uint64_t dev_handle = 0;
    bool dev_open = false;
  };

  /// Worker round trips for the array-iterator cursor (caller-side).
  Result<std::uint64_t> dev_iter_open(std::uint32_t shard, ByteSpan prefix,
                                      const api::SnapshotHandle& snap);
  Status dev_iter_next(std::uint32_t shard, std::uint64_t handle,
                       std::size_t max_keys, std::vector<Bytes>* keys_out);
  Status dev_iter_close(std::uint32_t shard, std::uint64_t handle);

  struct Snapshot {
    kvssd::DeviceStats stats;
    SimTime now = 0;
    SimTime stall = 0;
    std::uint64_t keys = 0;
    obs::MetricsSnapshot metrics;  ///< filled by kMetrics only
  };

  struct ShardOp {
    enum class Kind : std::uint8_t {
      kPut,
      kGet,
      kDel,
      kExist,
      kIterate,
      kBatch,
      kFlush,
      kCheckpoint,
      kSnapshot,
      kMetrics,
      kBarrier,
      kReadAt,     ///< snapshot point read (key + snap + get_cb)
      kIterOpen,   ///< open a device iterator (key = prefix, snap, handle_out)
      kIterNext,   ///< stream keys (tag = device handle, limit, keys)
      kIterClose,  ///< close a device iterator (tag = device handle)
    };
    Kind kind = Kind::kBarrier;
    Bytes key;
    Bytes value;
    Callback cb;                 ///< put/del/exist/iterate/flush/ckpt completion
    GetCallback get_cb;                   ///< get completion
    std::uint64_t tag = 0;                ///< tagged path: echoed on completion
    bool tagged = false;                  ///< complete via the device's sink
    std::vector<BatchOp>* batch = nullptr;  ///< sub-batch, owned by waiter
    std::vector<Bytes>* keys = nullptr;   ///< iterate: per-shard key sink
    std::size_t limit = 0;                ///< iterate: per-shard result cap
    api::SnapshotHandle snap{};           ///< kReadAt / kIterOpen pin
    std::uint64_t* handle_out = nullptr;  ///< kIterOpen: device handle sink
    Snapshot* snap_out = nullptr;
    std::function<void()> done;           ///< control-op completion
  };

  struct Shard {
    std::unique_ptr<kvssd::KvssdDevice> dev;
    std::unique_ptr<SubmissionRing<ShardOp>> ring;
    std::thread worker;
    std::atomic<std::uint64_t> completed{0};
  };

  void worker_loop(Shard& s);
  void submit_to(std::uint32_t shard, ShardOp op);
  [[nodiscard]] std::uint32_t shard_of_sig(std::uint64_t sig) const;
  /// Pushes a barrier-like op (kind + done) to every shard and waits.
  void control_all(ShardOp::Kind kind, std::vector<Snapshot>* snaps);
  [[nodiscard]] std::uint64_t completed_total() const;

  ShardedConfig cfg_;

  /// Shared snapshot context: owned unless the caller installed one via
  /// cfg.device.snapshots (then `snaps_` aliases it). Declared before
  /// `shards_` so it outlives the devices, whose destructors still
  /// checkpoint through the shared epoch source.
  std::unique_ptr<ftl::SnapshotContext> owned_snaps_;
  ftl::SnapshotContext* snaps_ = nullptr;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Array-iterator table. The mutex serializes cursor advancement —
  /// concurrent next() calls on different handles take worker round
  /// trips one at a time, which keeps the cursor logic trivially safe.
  std::mutex iter_mu_;
  std::unordered_map<std::uint64_t, ArrayIter> array_iters_;
  std::uint64_t next_iter_handle_ = 1;

  /// Front-end-side metrics (`frontend.*`): striped counters, so the
  /// many producer threads and the caller of the sync verbs never
  /// contend. Overlaid onto the merged shard view by metrics_snapshot().
  obs::MetricsRegistry front_metrics_;
  obs::Counter* fe_puts_ = nullptr;    ///< frontend.puts (sync + async)
  obs::Counter* fe_gets_ = nullptr;    ///< frontend.gets
  obs::Counter* fe_dels_ = nullptr;    ///< frontend.dels
  obs::Counter* fe_exists_ = nullptr;  ///< frontend.exists
  obs::Counter* fe_batch_ops_ = nullptr;  ///< frontend.batch_ops
  obs::Counter* fe_barriers_ = nullptr;   ///< frontend.barriers
};

}  // namespace rhik::shard
