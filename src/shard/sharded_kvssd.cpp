#include "shard/sharded_kvssd.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>

namespace rhik::shard {

namespace {

/// One-shot completion gate for sync verbs and cross-shard barriers.
class Gate {
 public:
  void open() {
    // Notify under the lock: the gate lives on the waiter's stack and is
    // destroyed the moment wait() returns, so the waiter must not be able
    // to re-acquire the mutex (and return) until we are done with cv_.
    std::lock_guard lk(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

Bytes owned(ByteSpan span) { return Bytes(span.begin(), span.end()); }

std::vector<std::unique_ptr<kvssd::KvssdDevice>> build_devices(
    const ShardedConfig& cfg) {
  const std::uint32_t n = std::max<std::uint32_t>(1, cfg.num_shards);
  std::vector<std::unique_ptr<kvssd::KvssdDevice>> devs;
  devs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    devs.push_back(std::make_unique<kvssd::KvssdDevice>(cfg.device));
  }
  return devs;
}

/// Ensures every shard device shares ONE snapshot context (so a snapshot
/// pins a single device-global epoch): honors a caller-installed context
/// on cfg.device.snapshots, else creates one the array will own.
std::unique_ptr<ftl::SnapshotContext> adopt_context(ShardedConfig& cfg) {
  if (cfg.device.snapshots != nullptr) return nullptr;  // caller-owned
  auto ctx = std::make_unique<ftl::SnapshotContext>();
  cfg.device.snapshots = ctx.get();
  return ctx;
}

}  // namespace

ShardedKvssd::ShardedKvssd(ShardedConfig cfg)
    : ShardedKvssd(std::move(cfg), nullptr, {}) {}

ShardedKvssd::ShardedKvssd(
    ShardedConfig cfg, std::unique_ptr<ftl::SnapshotContext> ctx,
    std::vector<std::unique_ptr<kvssd::KvssdDevice>> devices)
    : cfg_(std::move(cfg)), owned_snaps_(std::move(ctx)) {
  if (devices.empty()) {
    // Fresh array (public constructor): share one context, then build.
    if (owned_snaps_ == nullptr) owned_snaps_ = adopt_context(cfg_);
    devices = build_devices(cfg_);
  }
  snaps_ = cfg_.device.snapshots != nullptr ? cfg_.device.snapshots
                                            : owned_snaps_.get();
  assert(snaps_ != nullptr);
  cfg_.num_shards = static_cast<std::uint32_t>(devices.size());
  fe_puts_ = &front_metrics_.counter("frontend.puts");
  fe_gets_ = &front_metrics_.counter("frontend.gets");
  fe_dels_ = &front_metrics_.counter("frontend.dels");
  fe_exists_ = &front_metrics_.counter("frontend.exists");
  fe_batch_ops_ = &front_metrics_.counter("frontend.batch_ops");
  fe_barriers_ = &front_metrics_.counter("frontend.barriers");
  shards_.reserve(devices.size());
  for (auto& dev : devices) {
    auto s = std::make_unique<Shard>();
    s->dev = std::move(dev);
    s->ring = std::make_unique<SubmissionRing<ShardOp>>(cfg_.ring_capacity);
    shards_.push_back(std::move(s));
  }
  // Workers start after every shard exists, so a fast worker can never
  // observe a partially built array.
  for (auto& s : shards_) {
    s->worker = std::thread([this, sp = s.get()] { worker_loop(*sp); });
  }
}

ShardedKvssd::~ShardedKvssd() {
  for (auto& s : shards_) s->ring->close();
  for (auto& s : shards_) {
    if (s->worker.joinable()) s->worker.join();
  }
}

Result<std::unique_ptr<ShardedKvssd>> ShardedKvssd::recover(
    ShardedConfig cfg, std::vector<std::unique_ptr<flash::NandDevice>> nands,
    kvssd::RecoveryStats* stats_out) {
  const std::uint32_t n = std::max<std::uint32_t>(1, cfg.num_shards);
  if (nands.size() != n) return Status::kInvalidArgument;

  // One shared snapshot context across the recovered shards; each
  // shard's recover() raises its epoch past every stamp found on flash,
  // so the shared source ends above the whole array's high-water.
  std::unique_ptr<ftl::SnapshotContext> ctx = adopt_context(cfg);

  std::vector<std::unique_ptr<kvssd::KvssdDevice>> devices;
  devices.reserve(n);
  kvssd::RecoveryStats merged;
  for (auto& nand : nands) {
    kvssd::RecoveryStats shard_stats;
    auto dev = kvssd::KvssdDevice::recover(cfg.device, std::move(nand),
                                           &shard_stats);
    if (!dev) return dev.status();
    merged.merge_from(shard_stats);
    devices.push_back(std::move(*dev));
  }

  // Shards advance their clocks concurrently and array time is their
  // max; re-seed every clock to the slowest recovery scan so per-shard
  // deltas stay comparable after the restart.
  SimTime max_clock = 0;
  for (auto& dev : devices) max_clock = std::max(max_clock, dev->clock().now());
  for (auto& dev : devices) dev->clock().advance(max_clock - dev->clock().now());

  if (stats_out) *stats_out = merged;
  return std::unique_ptr<ShardedKvssd>(new ShardedKvssd(
      std::move(cfg), std::move(ctx), std::move(devices)));
}

std::vector<std::unique_ptr<flash::NandDevice>> ShardedKvssd::release_nands() {
  // Stop the workers (each drains its remaining queue on close, exactly
  // as the destructor does), then strip each shard's NAND array. An
  // *abrupt* cut is modeled by arming a FaultInjector on a shard's NAND
  // instead — once power dies, drained commands fail like real
  // in-flight ones.
  for (auto& s : shards_) s->ring->close();
  for (auto& s : shards_) {
    if (s->worker.joinable()) s->worker.join();
  }
  std::vector<std::unique_ptr<flash::NandDevice>> nands;
  nands.reserve(shards_.size());
  for (auto& s : shards_) nands.push_back(s->dev->release_nand());
  return nands;
}

void ShardedKvssd::worker_loop(Shard& s) {
  std::vector<ShardOp> batch;
  bool open = true;
  while (open) {
    batch.clear();
    if (!s.ring->try_pop_all(batch)) {
      // Ring idle: fold background GC and index-migration quanta into
      // the window — one bounded quantum per ring re-check, so a
      // submitter never waits behind more than quantum_pages of
      // relocation (or incremental_batch buckets of migration). Block
      // for new work only once the device has nothing pending.
      if (s.dev->pump_background()) continue;
      open = s.ring->pop_all(batch);
    }
    for (ShardOp& op : batch) {
      switch (op.kind) {
        case ShardOp::Kind::kPut:
          if (op.tagged) {
            s.dev->submit_put_tagged(op.tag, std::move(op.key),
                                     std::move(op.value));
          } else {
            s.dev->submit_put(std::move(op.key), std::move(op.value),
                              std::move(op.cb));
          }
          break;
        case ShardOp::Kind::kGet:
          if (op.tagged) {
            s.dev->submit_get_tagged(op.tag, std::move(op.key));
          } else if (op.get_cb) {
            s.dev->submit_get(std::move(op.key), std::move(op.get_cb));
          } else {
            s.dev->submit_get(std::move(op.key), std::move(op.cb));
          }
          break;
        case ShardOp::Kind::kDel:
          if (op.tagged) {
            s.dev->submit_del_tagged(op.tag, std::move(op.key));
          } else {
            s.dev->submit_del(std::move(op.key), std::move(op.cb));
          }
          break;
        case ShardOp::Kind::kExist: {
          // Not queueable on the device; flush queued work first so
          // command order on this shard is preserved.
          s.completed += s.dev->drain();
          const Status st = s.dev->exist(op.key);
          s.completed += 1;
          if (op.cb) op.cb(st);
          break;
        }
        case ShardOp::Kind::kIterate: {
          // Scans the live index, so queued work must land first.
          s.completed += s.dev->drain();
          const Status st = s.dev->iterate_prefix(op.key, op.keys, op.limit);
          s.completed += 1;
          if (op.cb) op.cb(st);
          break;
        }
        case ShardOp::Kind::kBatch: {
          s.completed += s.dev->drain();
          s.dev->execute_batch(*op.batch);
          s.completed += op.batch->size();
          if (op.done) op.done();
          break;
        }
        case ShardOp::Kind::kFlush: {
          s.completed += s.dev->drain();
          const Status st = s.dev->flush();
          if (op.cb) op.cb(st);
          break;
        }
        case ShardOp::Kind::kCheckpoint: {
          s.completed += s.dev->drain();
          const Status st = s.dev->checkpoint();
          if (op.cb) op.cb(st);
          break;
        }
        case ShardOp::Kind::kSnapshot: {
          s.completed += s.dev->drain();
          op.snap_out->stats = s.dev->stats();
          op.snap_out->now = s.dev->clock().now();
          op.snap_out->stall = s.dev->clock().total_stall();
          op.snap_out->keys = s.dev->key_count();
          if (op.done) op.done();
          break;
        }
        case ShardOp::Kind::kMetrics: {
          s.completed += s.dev->drain();
          op.snap_out->metrics = s.dev->metrics_snapshot();
          if (op.done) op.done();
          break;
        }
        case ShardOp::Kind::kBarrier:
          s.completed += s.dev->drain();
          if (op.done) op.done();
          break;
        case ShardOp::Kind::kReadAt: {
          // Snapshot reads resolve against the live index + retainer;
          // queued work lands first so "behind queued commands" holds
          // like the other sync verbs (the pinned epoch, not the drain,
          // decides visibility).
          s.completed += s.dev->drain();
          Bytes value;
          const Status st = s.dev->read_at(op.snap, op.key, &value);
          s.completed += 1;
          if (op.get_cb) op.get_cb(st, std::move(value));
          break;
        }
        case ShardOp::Kind::kIterOpen: {
          s.completed += s.dev->drain();
          const auto h = s.dev->kvs_open_iterator(op.key, &op.snap);
          s.completed += 1;
          if (h && op.handle_out != nullptr) *op.handle_out = *h;
          if (op.cb) op.cb(h ? Status::kOk : h.status());
          break;
        }
        case ShardOp::Kind::kIterNext: {
          s.completed += s.dev->drain();
          const Status st = s.dev->kvs_iterator_next(op.tag, op.limit, op.keys);
          s.completed += 1;
          if (op.cb) op.cb(st);
          break;
        }
        case ShardOp::Kind::kIterClose: {
          const Status st = s.dev->kvs_close_iterator(op.tag);
          s.completed += 1;
          if (op.cb) op.cb(st);
          break;
        }
      }
    }
    // One ring batch ingested: drain the device queue. This is the
    // window the index-aware grouped drain amortizes record-page loads
    // over — the deeper the ring backlog, the better the grouping.
    s.completed += s.dev->drain();
  }
  s.completed += s.dev->drain();
}

void ShardedKvssd::submit_to(std::uint32_t shard, ShardOp op) {
  const bool pushed = shards_[shard]->ring->push(std::move(op));
  assert(pushed && "submission after shutdown");
  (void)pushed;
}

std::uint64_t ShardedKvssd::signature(ByteSpan key) const {
  return kvssd::KvssdDevice::signature_for(cfg_.device, key);
}

std::uint32_t ShardedKvssd::shard_of_sig(std::uint64_t sig) const {
  if (shards_.size() == 1) return 0;
  // Fibonacci remix so the shard choice uses different bits than the
  // per-shard index directory (which partitions on sig & dir_mask).
  const std::uint64_t h = sig * 0x9E3779B97F4A7C15ull;
  return static_cast<std::uint32_t>((h >> 32) % shards_.size());
}

std::uint32_t ShardedKvssd::shard_of(ByteSpan key) const {
  return shard_of_sig(signature(key));
}

kvssd::KvssdDevice& ShardedKvssd::shard_device(std::uint32_t shard) {
  return *shards_[shard]->dev;
}

// -- Synchronous verbs ---------------------------------------------------------

Status ShardedKvssd::put(ByteSpan key, ByteSpan value) {
  fe_puts_->inc();
  Gate gate;
  Status st = Status::kIoError;
  ShardOp op;
  op.kind = ShardOp::Kind::kPut;
  op.key = owned(key);
  op.value = owned(value);
  op.cb = [&](Status s) {
    st = s;
    gate.open();
  };
  submit_to(shard_of(key), std::move(op));
  gate.wait();
  return st;
}

Status ShardedKvssd::get(ByteSpan key, Bytes* value_out) {
  fe_gets_->inc();
  Gate gate;
  Status st = Status::kIoError;
  ShardOp op;
  op.kind = ShardOp::Kind::kGet;
  op.key = owned(key);
  op.get_cb = [&](Status s, Bytes&& v) {
    st = s;
    if (value_out) *value_out = std::move(v);
    gate.open();
  };
  submit_to(shard_of(key), std::move(op));
  gate.wait();
  return st;
}

Status ShardedKvssd::del(ByteSpan key) {
  fe_dels_->inc();
  Gate gate;
  Status st = Status::kIoError;
  ShardOp op;
  op.kind = ShardOp::Kind::kDel;
  op.key = owned(key);
  op.cb = [&](Status s) {
    st = s;
    gate.open();
  };
  submit_to(shard_of(key), std::move(op));
  gate.wait();
  return st;
}

Status ShardedKvssd::exist(ByteSpan key) {
  fe_exists_->inc();
  Gate gate;
  Status st = Status::kIoError;
  ShardOp op;
  op.kind = ShardOp::Kind::kExist;
  op.key = owned(key);
  op.cb = [&](Status s) {
    st = s;
    gate.open();
  };
  submit_to(shard_of(key), std::move(op));
  gate.wait();
  return st;
}

Status ShardedKvssd::iterate_prefix(ByteSpan prefix,
                                    std::vector<Bytes>* keys_out,
                                    std::size_t limit) {
  // Every shard owns a hash slice of the keyspace, so a prefix scan has
  // to fan out to all of them. Each shard caps at `limit` (it can never
  // contribute more than the final result holds); the merged set is
  // sorted so the caller sees one deterministic order regardless of
  // shard count or worker timing.
  Gate gate;
  std::atomic<std::uint32_t> remaining{
      static_cast<std::uint32_t>(shards_.size())};
  std::vector<Status> statuses(shards_.size(), Status::kOk);
  std::vector<std::vector<Bytes>> parts(shards_.size());
  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    ShardOp op;
    op.kind = ShardOp::Kind::kIterate;
    op.key = owned(prefix);
    op.keys = &parts[sh];
    op.limit = limit;
    op.cb = [&, sh](Status s) {
      statuses[sh] = s;
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) gate.open();
    };
    submit_to(sh, std::move(op));
  }
  gate.wait();
  for (const Status s : statuses) {
    if (!ok(s)) return s;
  }

  std::vector<Bytes> merged;
  for (auto& p : parts) {
    merged.insert(merged.end(), std::make_move_iterator(p.begin()),
                  std::make_move_iterator(p.end()));
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > limit) merged.resize(limit);
  if (keys_out) *keys_out = std::move(merged);
  return Status::kOk;
}

// -- MVCC snapshots and array iterators ----------------------------------------

Result<api::SnapshotHandle> ShardedKvssd::open_snapshot() {
  // The registry is shared and internally synchronized; no worker round
  // trip. Pinning is linearizable against every shard's stamps through
  // the shared EpochSource (see ftl/mvcc.hpp's ordering argument).
  const ftl::SnapshotRegistry::Pin pin = snaps_->registry.open();
  return api::SnapshotHandle{pin.id, pin.epoch};
}

Status ShardedKvssd::release_snapshot(const api::SnapshotHandle& snap) {
  return snaps_->registry.release(snap.id, snap.epoch);
}

Status ShardedKvssd::read_at(const api::SnapshotHandle& snap, ByteSpan key,
                             Bytes* value_out) {
  fe_gets_->inc();
  Gate gate;
  Status st = Status::kIoError;
  ShardOp op;
  op.kind = ShardOp::Kind::kReadAt;
  op.key = owned(key);
  op.snap = snap;
  op.get_cb = [&](Status s, Bytes&& v) {
    st = s;
    if (value_out) *value_out = std::move(v);
    gate.open();
  };
  submit_to(shard_of(key), std::move(op));
  gate.wait();
  return st;
}

Result<std::uint64_t> ShardedKvssd::dev_iter_open(
    std::uint32_t shard, ByteSpan prefix, const api::SnapshotHandle& snap) {
  Gate gate;
  Status st = Status::kIoError;
  std::uint64_t handle = 0;
  ShardOp op;
  op.kind = ShardOp::Kind::kIterOpen;
  op.key = owned(prefix);
  op.snap = snap;
  op.handle_out = &handle;
  op.cb = [&](Status s) {
    st = s;
    gate.open();
  };
  submit_to(shard, std::move(op));
  gate.wait();
  if (!ok(st)) return st;
  return handle;
}

Status ShardedKvssd::dev_iter_next(std::uint32_t shard, std::uint64_t handle,
                                   std::size_t max_keys,
                                   std::vector<Bytes>* keys_out) {
  Gate gate;
  Status st = Status::kIoError;
  ShardOp op;
  op.kind = ShardOp::Kind::kIterNext;
  op.tag = handle;
  op.limit = max_keys;
  op.keys = keys_out;
  op.cb = [&](Status s) {
    st = s;
    gate.open();
  };
  submit_to(shard, std::move(op));
  gate.wait();
  return st;
}

Status ShardedKvssd::dev_iter_close(std::uint32_t shard,
                                    std::uint64_t handle) {
  Gate gate;
  Status st = Status::kIoError;
  ShardOp op;
  op.kind = ShardOp::Kind::kIterClose;
  op.tag = handle;
  op.cb = [&](Status s) {
    st = s;
    gate.open();
  };
  submit_to(shard, std::move(op));
  gate.wait();
  return st;
}

Result<std::uint64_t> ShardedKvssd::kvs_open_iterator(
    ByteSpan prefix, const api::SnapshotHandle* snap) {
  if (!cfg_.device.prefix_signatures) return Status::kUnsupported;
  if (prefix.empty()) return Status::kInvalidArgument;

  ArrayIter it;
  it.prefix = owned(prefix);
  if (snap != nullptr) {
    // Caller-owned pin: validate it up front so a dead handle fails at
    // open, not on the first next(). The epoch cross-check catches a
    // pin id recycled across a power cycle (recovery raises the epoch
    // source past every durable stamp, so epochs never collide).
    const auto epoch = snaps_->registry.epoch_of(snap->id);
    if (!epoch) return epoch.status();
    if (snap->epoch != 0 && *epoch != snap->epoch) {
      return Status::kSnapshotTooOld;
    }
    it.snap = *snap;
  } else {
    const ftl::SnapshotRegistry::Pin pin = snaps_->registry.open();
    it.snap = api::SnapshotHandle{pin.id, pin.epoch};
    it.owns_snap = true;
  }

  std::lock_guard lk(iter_mu_);
  if (array_iters_.size() >= kvssd::IteratorManager::kMaxOpenIterators) {
    if (it.owns_snap) (void)snaps_->registry.release(it.snap.id);
    return Status::kIteratorMax;
  }
  const std::uint64_t handle = next_iter_handle_++;
  array_iters_.emplace(handle, std::move(it));
  return handle;
}

Status ShardedKvssd::kvs_iterator_next(std::uint64_t handle,
                                       std::size_t max_keys,
                                       std::vector<Bytes>* keys_out) {
  if (keys_out == nullptr || max_keys == 0) return Status::kInvalidArgument;
  std::lock_guard lk(iter_mu_);
  const auto found = array_iters_.find(handle);
  if (found == array_iters_.end()) return Status::kInvalidArgument;
  ArrayIter& it = found->second;

  keys_out->clear();
  std::vector<Bytes> batch;
  while (keys_out->size() < max_keys && it.shard < shards_.size()) {
    if (!it.dev_open) {
      // Lazy per-shard open: one device handle lives at a time, bound to
      // the iterator's pin (still valid or open_at fails with the pin's
      // error — kSnapshotTooOld once expired).
      const auto h = dev_iter_open(it.shard, it.prefix, it.snap);
      if (!h) return h.status();
      it.dev_handle = *h;
      it.dev_open = true;
    }
    const Status st = dev_iter_next(it.shard, it.dev_handle,
                                    max_keys - keys_out->size(), &batch);
    if (st == Status::kNotFound) {
      // Shard exhausted: advance the cursor.
      (void)dev_iter_close(it.shard, it.dev_handle);
      it.dev_open = false;
      it.dev_handle = 0;
      it.shard++;
      continue;
    }
    if (!ok(st)) return st;
    for (Bytes& k : batch) keys_out->push_back(std::move(k));
    batch.clear();
  }
  if (keys_out->empty() && it.shard >= shards_.size()) {
    return Status::kNotFound;  // ITERATOR_END
  }
  return Status::kOk;
}

Status ShardedKvssd::kvs_close_iterator(std::uint64_t handle) {
  std::lock_guard lk(iter_mu_);
  const auto found = array_iters_.find(handle);
  if (found == array_iters_.end()) return Status::kInvalidArgument;
  ArrayIter& it = found->second;
  if (it.dev_open) (void)dev_iter_close(it.shard, it.dev_handle);
  if (it.owns_snap) (void)snaps_->registry.release(it.snap.id);
  array_iters_.erase(found);
  return Status::kOk;
}

Status ShardedKvssd::execute_batch(std::vector<BatchOp>& ops) {
  fe_batch_ops_->inc(ops.size());
  // Partition by shard, keeping relative order within each shard (the
  // only order a compound command defines between ops on the same key).
  std::vector<std::vector<BatchOp>> sub(shards_.size());
  std::vector<std::vector<std::size_t>> origin(shards_.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::uint32_t sh = shard_of(ops[i].key);
    sub[sh].push_back(std::move(ops[i]));
    origin[sh].push_back(i);
  }

  Gate gate;
  std::atomic<std::uint32_t> remaining{0};
  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    if (!sub[sh].empty()) remaining.fetch_add(1, std::memory_order_relaxed);
  }
  if (remaining.load(std::memory_order_relaxed) == 0) return Status::kOk;

  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    if (sub[sh].empty()) continue;
    ShardOp op;
    op.kind = ShardOp::Kind::kBatch;
    op.batch = &sub[sh];
    op.done = [&] {
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) gate.open();
    };
    submit_to(sh, std::move(op));
  }
  gate.wait();

  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    for (std::size_t j = 0; j < sub[sh].size(); ++j) {
      ops[origin[sh][j]] = std::move(sub[sh][j]);
    }
  }
  return Status::kOk;
}

// -- Asynchronous submission ---------------------------------------------------

void ShardedKvssd::submit_put(Bytes key, Bytes value, Callback cb) {
  fe_puts_->inc();
  const std::uint32_t sh = shard_of(key);
  ShardOp op;
  op.kind = ShardOp::Kind::kPut;
  op.key = std::move(key);
  op.value = std::move(value);
  op.cb = std::move(cb);
  submit_to(sh, std::move(op));
}

void ShardedKvssd::submit_get(Bytes key, GetCallback cb) {
  fe_gets_->inc();
  const std::uint32_t sh = shard_of(key);
  ShardOp op;
  op.kind = ShardOp::Kind::kGet;
  op.key = std::move(key);
  op.get_cb = std::move(cb);
  submit_to(sh, std::move(op));
}

void ShardedKvssd::submit_get(Bytes key, Callback cb) {
  fe_gets_->inc();
  const std::uint32_t sh = shard_of(key);
  ShardOp op;
  op.kind = ShardOp::Kind::kGet;
  op.key = std::move(key);
  op.cb = std::move(cb);
  submit_to(sh, std::move(op));
}

void ShardedKvssd::submit_del(Bytes key, Callback cb) {
  fe_dels_->inc();
  const std::uint32_t sh = shard_of(key);
  ShardOp op;
  op.kind = ShardOp::Kind::kDel;
  op.key = std::move(key);
  op.cb = std::move(cb);
  submit_to(sh, std::move(op));
}

void ShardedKvssd::set_completion_sink(api::IKvsBackend::CompletionSink sink) {
  // Each shard device is touched only by its worker, so the install rides
  // a barrier op whose `done` hook runs worker-side; the gate makes the
  // call synchronous so callers may submit tagged ops right after.
  Gate gate;
  std::atomic<std::uint32_t> remaining{
      static_cast<std::uint32_t>(shards_.size())};
  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    ShardOp op;
    op.kind = ShardOp::Kind::kBarrier;
    op.done = [&, dev = shards_[sh]->dev.get()] {
      dev->set_completion_sink(sink);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) gate.open();
    };
    submit_to(sh, std::move(op));
  }
  gate.wait();
}

void ShardedKvssd::submit_put_tagged(std::uint64_t tag, Bytes key, Bytes value) {
  fe_puts_->inc();
  const std::uint32_t sh = shard_of(key);
  ShardOp op;
  op.kind = ShardOp::Kind::kPut;
  op.key = std::move(key);
  op.value = std::move(value);
  op.tag = tag;
  op.tagged = true;
  submit_to(sh, std::move(op));
}

void ShardedKvssd::submit_get_tagged(std::uint64_t tag, Bytes key) {
  fe_gets_->inc();
  const std::uint32_t sh = shard_of(key);
  ShardOp op;
  op.kind = ShardOp::Kind::kGet;
  op.key = std::move(key);
  op.tag = tag;
  op.tagged = true;
  submit_to(sh, std::move(op));
}

void ShardedKvssd::submit_del_tagged(std::uint64_t tag, Bytes key) {
  fe_dels_->inc();
  const std::uint32_t sh = shard_of(key);
  ShardOp op;
  op.kind = ShardOp::Kind::kDel;
  op.key = std::move(key);
  op.tag = tag;
  op.tagged = true;
  submit_to(sh, std::move(op));
}

// -- Barriers and whole-array introspection ------------------------------------

void ShardedKvssd::control_all(ShardOp::Kind kind,
                               std::vector<Snapshot>* snaps) {
  fe_barriers_->inc();
  Gate gate;
  std::atomic<std::uint32_t> remaining{
      static_cast<std::uint32_t>(shards_.size())};
  if (snaps) snaps->assign(shards_.size(), Snapshot{});
  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    ShardOp op;
    op.kind = kind;
    if (snaps) op.snap_out = &(*snaps)[sh];
    op.done = [&] {
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) gate.open();
    };
    submit_to(sh, std::move(op));
  }
  gate.wait();
}

std::uint64_t ShardedKvssd::completed_total() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->completed.load(std::memory_order_acquire);
  }
  return total;
}

std::size_t ShardedKvssd::drain() {
  const std::uint64_t before = completed_total();
  control_all(ShardOp::Kind::kBarrier, nullptr);
  return static_cast<std::size_t>(completed_total() - before);
}

Status ShardedKvssd::flush() {
  Gate gate;
  std::atomic<std::uint32_t> remaining{
      static_cast<std::uint32_t>(shards_.size())};
  std::vector<Status> statuses(shards_.size(), Status::kOk);
  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    ShardOp op;
    op.kind = ShardOp::Kind::kFlush;
    op.cb = [&, sh](Status s) {
      statuses[sh] = s;
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) gate.open();
    };
    submit_to(sh, std::move(op));
  }
  gate.wait();
  for (const Status s : statuses) {
    if (!ok(s)) return s;
  }
  return Status::kOk;
}

Status ShardedKvssd::checkpoint() {
  Gate gate;
  std::atomic<std::uint32_t> remaining{
      static_cast<std::uint32_t>(shards_.size())};
  std::vector<Status> statuses(shards_.size(), Status::kOk);
  for (std::uint32_t sh = 0; sh < shards_.size(); ++sh) {
    ShardOp op;
    op.kind = ShardOp::Kind::kCheckpoint;
    op.cb = [&, sh](Status s) {
      statuses[sh] = s;
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) gate.open();
    };
    submit_to(sh, std::move(op));
  }
  gate.wait();
  for (const Status s : statuses) {
    if (!ok(s)) return s;
  }
  return Status::kOk;
}

kvssd::DeviceStats ShardedKvssd::stats() {
  std::vector<Snapshot> snaps;
  control_all(ShardOp::Kind::kSnapshot, &snaps);
  kvssd::DeviceStats agg;
  for (const Snapshot& s : snaps) agg.merge_from(s.stats);
  return agg;
}

SimTime ShardedKvssd::sim_time() {
  std::vector<Snapshot> snaps;
  control_all(ShardOp::Kind::kSnapshot, &snaps);
  SimTime t = 0;
  for (const Snapshot& s : snaps) t = std::max(t, s.now);
  return t;
}

SimTime ShardedKvssd::total_stall() {
  std::vector<Snapshot> snaps;
  control_all(ShardOp::Kind::kSnapshot, &snaps);
  SimTime t = 0;
  for (const Snapshot& s : snaps) t = std::max(t, s.stall);
  return t;
}

std::uint64_t ShardedKvssd::key_count() {
  std::vector<Snapshot> snaps;
  control_all(ShardOp::Kind::kSnapshot, &snaps);
  std::uint64_t n = 0;
  for (const Snapshot& s : snaps) n += s.keys;
  return n;
}

std::vector<obs::MetricsSnapshot> ShardedKvssd::shard_metrics_snapshots() {
  std::vector<Snapshot> snaps;
  control_all(ShardOp::Kind::kMetrics, &snaps);
  std::vector<obs::MetricsSnapshot> out;
  out.reserve(snaps.size());
  for (Snapshot& s : snaps) out.push_back(std::move(s.metrics));
  return out;
}

obs::MetricsSnapshot ShardedKvssd::metrics_snapshot() {
  obs::MetricsSnapshot merged;
  for (const obs::MetricsSnapshot& s : shard_metrics_snapshots()) {
    merged.merge_from(s);
  }
  front_metrics_.snapshot_into(merged);
  merged.set_gauge("frontend.shards",
                   static_cast<std::int64_t>(shards_.size()));
  return merged;
}

}  // namespace rhik::shard
