#include "flash/nand.hpp"

#include <cassert>
#include <cstring>

#include "common/crc32.hpp"

namespace rhik::flash {

bool page_crc_ok(const Geometry& g, ByteSpan data, ByteSpan spare) noexcept {
  if (data.size() < g.page_size || spare.size() < g.spare_size()) return false;
  const std::uint32_t covered = g.spare_size() - 4;
  std::uint32_t state = crc32_init();
  state = crc32_update(state, data.subspan(0, g.page_size));
  state = crc32_update(state, spare.subspan(0, covered));
  return crc32_final(state) == get_u32(spare, covered);
}

std::uint32_t spare_wear_stamp(const Geometry& g, ByteSpan spare) noexcept {
  if (spare.size() < g.spare_size()) return 0;
  return get_u32(spare, g.spare_size() - kSpareReservedTail);
}

NandDevice::NandDevice(Geometry geometry, NandLatency latency, SimClock* clock)
    : geometry_(geometry), latency_(latency), clock_(clock), blocks_(geometry.num_blocks) {
  assert(geometry_.valid());
  assert(geometry_.spare_size() >= kSpareReservedTail + 2);  // room for tag + tail
  assert(clock_ != nullptr);
}

void NandDevice::power_cycle() noexcept {
  for (auto& b : blocks_) b.erase_count = 0;
  stats_ = {};
  if (injector_) injector_->power_on();
}

Status NandDevice::read_page(Ppa ppa, MutByteSpan data_out, MutByteSpan spare_out) {
  if (injector_ && injector_->reject_op()) return Status::kIoError;
  if (!ppa_in_range(geometry_, ppa)) return Status::kInvalidArgument;
  if (data_out.size() > geometry_.page_size || spare_out.size() > geometry_.spare_size()) {
    return Status::kInvalidArgument;
  }
  const std::uint32_t blk = ppa_block(geometry_, ppa);
  const std::uint32_t pg = ppa_page(geometry_, ppa);
  const Block& b = blocks_[blk];
  if (pg >= b.write_point || !b.store) return Status::kIoError;  // unwritten page

  const std::uint8_t* src = page_ptr(b, pg);
  if (!data_out.empty()) std::memcpy(data_out.data(), src, data_out.size());
  if (!spare_out.empty()) {
    std::memcpy(spare_out.data(), src + geometry_.page_size, spare_out.size());
  }

  stats_.page_reads++;
  stats_.bytes_read += data_out.size() + spare_out.size();
  clock_->advance(latency_.read_cost(
      static_cast<std::uint32_t>(data_out.size() + spare_out.size())));
  return Status::kOk;
}

Status NandDevice::read_page_view(Ppa ppa, ByteSpan* data_out, ByteSpan* spare_out,
                                  std::uint32_t data_len, std::uint32_t spare_len) {
  if (injector_ && injector_->reject_op()) return Status::kIoError;
  if (!ppa_in_range(geometry_, ppa)) return Status::kInvalidArgument;
  if (data_len == kFullArea) data_len = geometry_.page_size;
  if (spare_len == kFullArea) spare_len = geometry_.spare_size();
  if (data_len > geometry_.page_size || spare_len > geometry_.spare_size()) {
    return Status::kInvalidArgument;
  }
  const std::uint32_t blk = ppa_block(geometry_, ppa);
  const std::uint32_t pg = ppa_page(geometry_, ppa);
  const Block& b = blocks_[blk];
  if (pg >= b.write_point || !b.store) return Status::kIoError;  // unwritten page

  const std::uint8_t* src = page_ptr(b, pg);
#if defined(__GNUC__) || defined(__clang__)
  // The views point at cold storage and callers touch the spare tag and
  // the page tail (footer) first; start those lines now so their misses
  // overlap the bookkeeping below instead of serializing after return.
  if (spare_out != nullptr) __builtin_prefetch(src + geometry_.page_size);
  if (data_out != nullptr && data_len >= 64) {
    __builtin_prefetch(src + data_len - 64);
  }
#endif
  std::uint32_t bytes = 0;
  if (data_out) {
    *data_out = ByteSpan{src, data_len};
    bytes += data_len;
  }
  if (spare_out) {
    *spare_out = ByteSpan{src + geometry_.page_size, spare_len};
    bytes += spare_len;
  }

  stats_.page_reads++;
  stats_.bytes_read += bytes;
  clock_->advance(latency_.read_cost(bytes));
  return Status::kOk;
}

Status NandDevice::program_page(Ppa ppa, ByteSpan data, ByteSpan spare) {
  if (injector_ && injector_->reject_op()) return Status::kIoError;
  if (!ppa_in_range(geometry_, ppa)) return Status::kInvalidArgument;
  if (data.size() > geometry_.page_size || spare.size() > geometry_.spare_size()) {
    return Status::kInvalidArgument;
  }
  const std::uint32_t blk = ppa_block(geometry_, ppa);
  const std::uint32_t pg = ppa_page(geometry_, ppa);
  Block& b = blocks_[blk];
  // NAND discipline: in-order programming of erased pages only.
  if (pg != b.write_point) return Status::kIoError;

  if (!b.store) {
    const std::size_t bytes = page_stride() * geometry_.pages_per_block;
    b.store = std::make_unique<std::uint8_t[]>(bytes);
    std::memset(b.store.get(), 0xFF, bytes);  // erased state
  }
  std::uint8_t* dst = page_ptr(b, pg);
  std::uint8_t* sp = dst + geometry_.page_size;
  if (!data.empty()) std::memcpy(dst, data.data(), data.size());
  if (!spare.empty()) std::memcpy(sp, spare.data(), spare.size());

  // Controller stamp in the reserved spare tail: wear (for recovery of
  // the volatile wear RAM) and a CRC over the stored page image, the
  // only thing that can tell a torn page from a complete one.
  const std::uint32_t ssz = geometry_.spare_size();
  MutByteSpan sps{sp, ssz};
  put_u32(sps, ssz - kSpareReservedTail, b.erase_count);
  std::uint32_t state = crc32_init();
  state = crc32_update(state, ByteSpan{dst, geometry_.page_size});
  state = crc32_update(state, ByteSpan{sp, ssz - 4});
  put_u32(sps, ssz - 4, crc32_final(state));

  if (injector_ && injector_->cut_now()) {
    // Power died mid-program: the intended image may be partially or
    // garbage-latched (policy), the op is never acknowledged, and no
    // latency/stat accrues — the controller that would report it is off.
    if (injector_->tear_page(MutByteSpan{dst, geometry_.page_size}, sps)) {
      b.write_point = pg + 1;
    } else {
      std::memset(dst, 0xFF, page_stride());
    }
    return Status::kIoError;
  }
  b.write_point = pg + 1;

  stats_.page_programs++;
  stats_.bytes_programmed += data.size() + spare.size();
  clock_->advance(latency_.program_cost(
      static_cast<std::uint32_t>(data.size() + spare.size())));
  return Status::kOk;
}

Status NandDevice::erase_block(std::uint32_t block) {
  if (injector_ && injector_->reject_op()) return Status::kIoError;
  if (block >= geometry_.num_blocks) return Status::kInvalidArgument;
  Block& b = blocks_[block];

  if (injector_ && injector_->cut_now()) {
    // Partial-erase states are not modelled: the pulse either finished
    // (block reads erased) or never started. Either way the host never
    // saw an acknowledgement.
    if (injector_->erase_completed()) {
      b.store.reset();
      b.write_point = 0;
      b.erase_count++;
    }
    return Status::kIoError;
  }

  b.store.reset();
  b.write_point = 0;
  b.erase_count++;

  stats_.block_erases++;
  clock_->advance(latency_.erase_cost());
  return Status::kOk;
}

bool NandDevice::is_programmed(Ppa ppa) const {
  if (!ppa_in_range(geometry_, ppa)) return false;
  const Block& b = blocks_[ppa_block(geometry_, ppa)];
  return ppa_page(geometry_, ppa) < b.write_point;
}

}  // namespace rhik::flash
