#include "flash/nand.hpp"

#include <cassert>
#include <cstring>

namespace rhik::flash {

NandDevice::NandDevice(Geometry geometry, NandLatency latency, SimClock* clock)
    : geometry_(geometry), latency_(latency), clock_(clock), blocks_(geometry.num_blocks) {
  assert(geometry_.valid());
  assert(clock_ != nullptr);
}

Status NandDevice::read_page(Ppa ppa, MutByteSpan data_out, MutByteSpan spare_out) {
  if (!ppa_in_range(geometry_, ppa)) return Status::kInvalidArgument;
  if (data_out.size() > geometry_.page_size || spare_out.size() > geometry_.spare_size()) {
    return Status::kInvalidArgument;
  }
  const std::uint32_t blk = ppa_block(geometry_, ppa);
  const std::uint32_t pg = ppa_page(geometry_, ppa);
  const Block& b = blocks_[blk];
  if (pg >= b.write_point || !b.store) return Status::kIoError;  // unwritten page

  const std::uint8_t* src = page_ptr(b, pg);
  if (!data_out.empty()) std::memcpy(data_out.data(), src, data_out.size());
  if (!spare_out.empty()) {
    std::memcpy(spare_out.data(), src + geometry_.page_size, spare_out.size());
  }

  stats_.page_reads++;
  stats_.bytes_read += data_out.size() + spare_out.size();
  clock_->advance(latency_.read_cost(
      static_cast<std::uint32_t>(data_out.size() + spare_out.size())));
  return Status::kOk;
}

Status NandDevice::program_page(Ppa ppa, ByteSpan data, ByteSpan spare) {
  if (!ppa_in_range(geometry_, ppa)) return Status::kInvalidArgument;
  if (data.size() > geometry_.page_size || spare.size() > geometry_.spare_size()) {
    return Status::kInvalidArgument;
  }
  const std::uint32_t blk = ppa_block(geometry_, ppa);
  const std::uint32_t pg = ppa_page(geometry_, ppa);
  Block& b = blocks_[blk];
  // NAND discipline: in-order programming of erased pages only.
  if (pg != b.write_point) return Status::kIoError;

  if (!b.store) {
    const std::size_t bytes = page_stride() * geometry_.pages_per_block;
    b.store = std::make_unique<std::uint8_t[]>(bytes);
    std::memset(b.store.get(), 0xFF, bytes);  // erased state
  }
  std::uint8_t* dst = page_ptr(b, pg);
  if (!data.empty()) std::memcpy(dst, data.data(), data.size());
  if (!spare.empty()) std::memcpy(dst + geometry_.page_size, spare.data(), spare.size());
  b.write_point = pg + 1;

  stats_.page_programs++;
  stats_.bytes_programmed += data.size() + spare.size();
  clock_->advance(latency_.program_cost(
      static_cast<std::uint32_t>(data.size() + spare.size())));
  return Status::kOk;
}

Status NandDevice::erase_block(std::uint32_t block) {
  if (block >= geometry_.num_blocks) return Status::kInvalidArgument;
  Block& b = blocks_[block];
  b.store.reset();
  b.write_point = 0;
  b.erase_count++;

  stats_.block_erases++;
  clock_->advance(latency_.erase_cost());
  return Status::kOk;
}

bool NandDevice::is_programmed(Ppa ppa) const {
  if (!ppa_in_range(geometry_, ppa)) return false;
  const Block& b = blocks_[ppa_block(geometry_, ppa)];
  return ppa_page(geometry_, ppa) < b.write_point;
}

}  // namespace rhik::flash
