// NAND operation latency model.
//
// The emulator charges every flash array operation against the SimClock.
// Two presets: `nand_defaults()` uses datasheet-like TLC NAND timings, and
// `kvemu_defaults()` mirrors the paper's DRAM-backed OpenMPDK emulator,
// where array ops are cheap and command-level IOPS modelling dominates.
#pragma once

#include <cstdint>

#include "common/sim_clock.hpp"

namespace rhik::flash {

struct NandLatency {
  SimTime read_ns = 60 * kMicrosecond;      ///< tR: array -> page register
  SimTime program_ns = 600 * kMicrosecond;  ///< tPROG
  SimTime erase_ns = 3 * kMillisecond;      ///< tBERS
  /// Channel transfer cost per byte (page register <-> controller).
  SimTime transfer_ns_per_byte = 1;         ///< ~1 GB/s channel

  [[nodiscard]] SimTime read_cost(std::uint32_t bytes) const noexcept {
    return read_ns + transfer_ns_per_byte * bytes;
  }
  [[nodiscard]] SimTime program_cost(std::uint32_t bytes) const noexcept {
    return program_ns + transfer_ns_per_byte * bytes;
  }
  [[nodiscard]] SimTime erase_cost() const noexcept { return erase_ns; }

  static constexpr NandLatency nand_defaults() noexcept { return {}; }

  /// DRAM-backed emulator timings (OpenMPDK KVEMU runs in host memory;
  /// the IOPS model at the command layer provides the throughput shape).
  static constexpr NandLatency kvemu_defaults() noexcept {
    return {2 * kMicrosecond, 4 * kMicrosecond, 20 * kMicrosecond, 0};
  }
};

}  // namespace rhik::flash
