// Physical page addressing.
//
// A Ppa is a flat page index: block * pages_per_block + page. The on-flash
// encoding is 5 bytes (Eq. 1: ppa = 5 B), giving 2^40 addressable pages —
// vastly more than any geometry we emulate.
#pragma once

#include <cstdint>

#include "flash/geometry.hpp"

namespace rhik::flash {

using Ppa = std::uint64_t;

/// Sentinel for "no page". Encodable in 5 bytes (all-ones).
constexpr Ppa kInvalidPpa = (std::uint64_t{1} << 40) - 1;

constexpr Ppa make_ppa(const Geometry& g, std::uint32_t block, std::uint32_t page) noexcept {
  return std::uint64_t{block} * g.pages_per_block + page;
}

constexpr std::uint32_t ppa_block(const Geometry& g, Ppa ppa) noexcept {
  return static_cast<std::uint32_t>(ppa / g.pages_per_block);
}

constexpr std::uint32_t ppa_page(const Geometry& g, Ppa ppa) noexcept {
  return static_cast<std::uint32_t>(ppa % g.pages_per_block);
}

constexpr bool ppa_in_range(const Geometry& g, Ppa ppa) noexcept {
  return ppa < g.pages_total();
}

}  // namespace rhik::flash
