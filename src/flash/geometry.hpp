// NAND flash geometry.
//
// The paper's emulator is configured with "erase blocks consisting of 256
// flash pages of size 32KB each" (§V-A); each page carries a small spare
// area, "usually 1/32th of the main page" (§I fn. 1). All sizes here are
// configurable so tests can use tiny geometries.
#pragma once

#include <cstdint>

namespace rhik::flash {

struct Geometry {
  std::uint32_t page_size = 32 * 1024;   ///< main (data) area bytes per page
  std::uint32_t pages_per_block = 256;   ///< pages per erase block
  std::uint32_t num_blocks = 1024;       ///< erase blocks in the device
  std::uint32_t spare_divisor = 32;      ///< spare bytes = page_size / divisor

  [[nodiscard]] constexpr std::uint32_t spare_size() const noexcept {
    return page_size / spare_divisor;
  }
  [[nodiscard]] constexpr std::uint64_t pages_total() const noexcept {
    return std::uint64_t{num_blocks} * pages_per_block;
  }
  [[nodiscard]] constexpr std::uint64_t capacity_bytes() const noexcept {
    return pages_total() * page_size;
  }
  [[nodiscard]] constexpr std::uint64_t block_bytes() const noexcept {
    return std::uint64_t{pages_per_block} * page_size;
  }

  [[nodiscard]] constexpr bool valid() const noexcept {
    return page_size > 0 && pages_per_block > 0 && num_blocks > 0 &&
           spare_divisor > 0 && page_size % spare_divisor == 0;
  }

  /// Paper-default geometry scaled to a given capacity. `pages_per_block`
  /// overrides the paper's 256 when nonzero: small capacities need
  /// proportionally smaller erase blocks so the device keeps enough
  /// blocks (>= ~32) for GC to rotate — 256-page blocks on a 64 MiB
  /// device leave 8 monolithic blocks and permanent GC thrash.
  static constexpr Geometry with_capacity(
      std::uint64_t bytes, std::uint32_t pages_per_block = 0) noexcept {
    Geometry g;
    if (pages_per_block != 0) g.pages_per_block = pages_per_block;
    const std::uint64_t blocks = bytes / g.block_bytes();
    g.num_blocks = blocks == 0 ? 1 : static_cast<std::uint32_t>(blocks);
    return g;
  }

  /// Small geometry for unit tests (4 KiB pages, 16 pages/block).
  static constexpr Geometry tiny(std::uint32_t blocks = 64) noexcept {
    return Geometry{4096, 16, blocks, 32};
  }
};

}  // namespace rhik::flash
