// Power-cut fault injection for the NAND model.
//
// A FaultInjector is armed with a countdown of destructive operations
// (page programs and block erases). When the countdown hits zero, power
// dies *during* that operation: the in-flight page is left torn
// according to a torn-write policy, the operation is never acknowledged
// (kIoError to the caller), and every subsequent NAND operation —
// including reads — fails until `power_on()` simulates the next boot.
//
// Torn-write policies model what real NAND leaves behind when program
// current vanishes mid-pulse:
//  - kNone:    no cell changed; the page still reads as erased.
//  - kPartial: a prefix of the data area stuck, the rest stayed erased
//              (0xFF); the spare area landed intact, so the page looks
//              superficially valid — only the CRC exposes it.
//  - kGarbage: cells latched random garbage across data and spare.
//  - kRandom:  one of the above, chosen per cut.
//
// The injector is deterministic given its seed, so crash-point harnesses
// are reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace rhik::flash {

enum class TornWritePolicy : std::uint8_t {
  kNone,
  kPartial,
  kGarbage,
  kRandom,
};

struct FaultStats {
  std::uint64_t power_cuts = 0;
  std::uint64_t torn_pages = 0;         ///< pages left partially/garbage programmed
  std::uint64_t clean_cuts = 0;         ///< cuts that left the page erased
  std::uint64_t interrupted_erases = 0; ///< erases hit by a cut (completed or not)
  std::uint64_t ops_rejected = 0;       ///< NAND ops attempted while powered off

  /// Registers these counters into a metrics snapshot (`fault.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("fault.power_cuts", power_cuts);
    snap.add_counter("fault.torn_pages", torn_pages);
    snap.add_counter("fault.clean_cuts", clean_cuts);
    snap.add_counter("fault.interrupted_erases", interrupted_erases);
    snap.add_counter("fault.ops_rejected", ops_rejected);
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5248494Bu) : rng_(seed) {}

  /// Arms the injector: power dies during the `ops`-th destructive
  /// operation from now (ops >= 1; 0 is clamped to 1). Re-arming
  /// replaces any previous countdown.
  void arm_after(std::uint64_t ops, TornWritePolicy policy = TornWritePolicy::kRandom) {
    countdown_ = ops == 0 ? 1 : ops;
    policy_ = policy;
    armed_ = true;
  }

  void disarm() noexcept { armed_ = false; }

  /// The next boot: power is back, countdown disarmed. NAND contents
  /// are untouched — volatile device state is the NandDevice's to lose.
  void power_on() noexcept {
    powered_off_ = false;
    armed_ = false;
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool powered_off() const noexcept { return powered_off_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  // --- NandDevice hooks --------------------------------------------------

  /// Called on every NAND operation; true if the op must be rejected
  /// because power is off.
  bool reject_op() noexcept {
    if (!powered_off_) return false;
    stats_.ops_rejected++;
    return true;
  }

  /// Called on every destructive op; true exactly on the op during
  /// which power dies (the caller then applies the torn-write policy
  /// and fails the op).
  bool cut_now() noexcept {
    if (!armed_ || powered_off_) return false;
    if (--countdown_ > 0) return false;
    powered_off_ = true;
    armed_ = false;
    stats_.power_cuts++;
    return true;
  }

  /// Applies the torn-write policy to the in-flight page image. Returns
  /// true if the page counts as programmed (some cells changed), false
  /// if it still reads as erased — the caller restores 0xFF state.
  bool tear_page(MutByteSpan data, MutByteSpan spare);

  /// For a cut during an erase: whether the erase pulse finished before
  /// power died (coin flip). Partial-erase charge states are not
  /// modelled; an interrupted erase either completed or left the block
  /// untouched.
  bool erase_completed() noexcept {
    stats_.interrupted_erases++;
    return (rng_.next() & 1u) != 0;
  }

 private:
  Rng rng_;
  FaultStats stats_;
  std::uint64_t countdown_ = 0;
  TornWritePolicy policy_ = TornWritePolicy::kRandom;
  bool armed_ = false;
  bool powered_off_ = false;
};

}  // namespace rhik::flash
