// NAND flash array model.
//
// Models the SSD hardware primitives the paper's extended KV emulator
// imitates (§IV-C): erase blocks of program-once pages with a main data
// area and a spare (out-of-band) area, erase-before-program discipline,
// in-order page programming within a block, and per-operation latency
// charged to a simulated clock. Page storage is allocated lazily on first
// program and released on erase, so host memory tracks *live* emulated
// data, not raw device capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/sim_clock.hpp"
#include "common/status.hpp"
#include "flash/address.hpp"
#include "flash/fault_injector.hpp"
#include "flash/geometry.hpp"
#include "flash/latency.hpp"
#include "obs/metrics.hpp"

namespace rhik::flash {

/// Last bytes of every spare area are controller-owned: the block's
/// erase count at program time (u32) followed by a CRC-32 (u32) over the
/// stored data area plus the spare area up to the CRC slot. Caller spare
/// bytes that reach into this tail are overwritten by `program_page`.
constexpr std::uint32_t kSpareReservedTail = 8;

/// Validates the controller CRC of a page image already read from the
/// device. Both spans must cover the full data / spare areas.
[[nodiscard]] bool page_crc_ok(const Geometry& g, ByteSpan data, ByteSpan spare) noexcept;

/// The block erase count stamped into a full-size spare image.
[[nodiscard]] std::uint32_t spare_wear_stamp(const Geometry& g, ByteSpan spare) noexcept;

struct NandStats {
  std::uint64_t page_reads = 0;
  std::uint64_t page_programs = 0;
  std::uint64_t block_erases = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_programmed = 0;

  /// Registers these counters into a metrics snapshot (`nand.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("nand.page_reads", page_reads);
    snap.add_counter("nand.page_programs", page_programs);
    snap.add_counter("nand.block_erases", block_erases);
    snap.add_counter("nand.bytes_read", bytes_read);
    snap.add_counter("nand.bytes_programmed", bytes_programmed);
  }
};

class NandDevice {
 public:
  NandDevice(Geometry geometry, NandLatency latency, SimClock* clock);

  NandDevice(const NandDevice&) = delete;
  NandDevice& operator=(const NandDevice&) = delete;

  /// Reads the main area (and optionally the spare area) of a page.
  /// Output spans may be shorter than the areas; reads are prefix reads.
  /// Reading an unwritten page returns kIoError.
  Status read_page(Ppa ppa, MutByteSpan data_out, MutByteSpan spare_out = {});

  /// Zero-copy read: points `data_out`/`spare_out` (either may be null)
  /// at the stored page image instead of copying it out. `data_len` /
  /// `spare_len` choose prefix views (kFullArea = the whole area), and
  /// latency, stats and fault-injection are charged exactly as a
  /// read_page of the same lengths. The views are valid until the page's
  /// block is erased (or the device destroyed); callers that need the
  /// bytes past the next erase must copy.
  static constexpr std::uint32_t kFullArea = UINT32_MAX;
  Status read_page_view(Ppa ppa, ByteSpan* data_out, ByteSpan* spare_out = nullptr,
                        std::uint32_t data_len = kFullArea,
                        std::uint32_t spare_len = kFullArea);

  /// Programs a page. Enforces NAND discipline:
  ///  - the page must be in the erased state (program-once),
  ///  - pages within a block must be programmed in order.
  /// Inputs may be shorter than the areas; the rest stays 0xFF, except
  /// the reserved spare tail, which the controller stamps with the
  /// block's erase count and the page CRC (see kSpareReservedTail).
  Status program_page(Ppa ppa, ByteSpan data, ByteSpan spare = {});

  /// Erases a whole block, releasing its page storage.
  Status erase_block(std::uint32_t block);

  /// True if the page has been programmed since its block's last erase.
  [[nodiscard]] bool is_programmed(Ppa ppa) const;

  [[nodiscard]] const Geometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] const NandLatency& latency() const noexcept { return latency_; }
  [[nodiscard]] const NandStats& stats() const noexcept { return stats_; }
  [[nodiscard]] SimClock& clock() noexcept { return *clock_; }

  /// Per-block erase counts (wear), for endurance-oriented tests/benches.
  [[nodiscard]] std::uint32_t erase_count(std::uint32_t block) const {
    return blocks_[block].erase_count;
  }

  /// Pages programmed in `block` since its last erase (recovery scans).
  [[nodiscard]] std::uint32_t pages_programmed(std::uint32_t block) const {
    return blocks_[block].write_point;
  }

  /// Re-points the latency clock; used when a recovered device adopts a
  /// NAND array from a previous instance.
  void rebind_clock(SimClock* clock) noexcept { clock_ = clock; }

  void reset_stats() noexcept { stats_ = {}; }

  /// Installs (or removes, with nullptr) a power-cut fault injector. Not
  /// owned; must outlive the device or be detached first.
  void set_fault_injector(FaultInjector* injector) noexcept { injector_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Simulates the power-on after a power loss: volatile controller
  /// state — the per-block wear RAM and the transfer counters — is
  /// gone; cell contents and programmed-page counts survive. Re-powers
  /// an attached fault injector. Recovery re-derives wear from the
  /// spare stamps via `restore_erase_count`.
  void power_cycle() noexcept;

  /// Reinstates a block's erase count from a persisted wear stamp.
  void restore_erase_count(std::uint32_t block, std::uint32_t count) noexcept {
    if (block < blocks_.size()) blocks_[block].erase_count = count;
  }

 private:
  struct Block {
    /// Pages programmed so far since last erase (pages must be written
    /// in order, so this doubles as the programmed-page count).
    std::uint32_t write_point = 0;
    std::uint32_t erase_count = 0;
    /// Lazily allocated page storage: [page][data..spare] contiguous.
    std::unique_ptr<std::uint8_t[]> store;
  };

  [[nodiscard]] std::size_t page_stride() const noexcept {
    return geometry_.page_size + geometry_.spare_size();
  }
  std::uint8_t* page_ptr(Block& b, std::uint32_t page) noexcept {
    return b.store.get() + std::size_t{page} * page_stride();
  }
  const std::uint8_t* page_ptr(const Block& b, std::uint32_t page) const noexcept {
    return b.store.get() + std::size_t{page} * page_stride();
  }

  Geometry geometry_;
  NandLatency latency_;
  SimClock* clock_;
  std::vector<Block> blocks_;
  NandStats stats_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace rhik::flash
