#include "flash/fault_injector.hpp"

#include <cstring>

namespace rhik::flash {

bool FaultInjector::tear_page(MutByteSpan data, MutByteSpan spare) {
  TornWritePolicy p = policy_;
  if (p == TornWritePolicy::kRandom) {
    switch (rng_.next_below(3)) {
      case 0: p = TornWritePolicy::kNone; break;
      case 1: p = TornWritePolicy::kPartial; break;
      default: p = TornWritePolicy::kGarbage; break;
    }
  }

  switch (p) {
    case TornWritePolicy::kNone:
      stats_.clean_cuts++;
      return false;
    case TornWritePolicy::kPartial: {
      // A prefix [0, cut) of the data area latched; the rest reads
      // erased. The spare area is left exactly as intended — including
      // the CRC of the *complete* page — so the page can only be
      // rejected by actually checking that CRC against the data.
      const std::uint64_t cut = data.empty() ? 0 : rng_.next_below(data.size());
      std::memset(data.data() + cut, 0xFF, data.size() - cut);
      stats_.torn_pages++;
      return true;
    }
    case TornWritePolicy::kGarbage: {
      for (auto& byte : data) byte = static_cast<std::uint8_t>(rng_.next());
      for (auto& byte : spare) byte = static_cast<std::uint8_t>(rng_.next());
      stats_.torn_pages++;
      return true;
    }
    case TornWritePolicy::kRandom:
      break;  // unreachable: resolved above
  }
  stats_.clean_cuts++;
  return false;
}

}  // namespace rhik::flash
