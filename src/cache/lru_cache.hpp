// Byte-budgeted LRU cache modelling the scarce SSD-integrated DRAM.
//
// The paper's Fig. 5 experiment limits the FTL cache budget to 10 MB and
// measures the miss ratio of the index under it; both RHIK's record-layer
// tables and the baseline multi-level hash index share a cache of this
// shape. Entries carry a dirty bit: evicting a dirty entry invokes the
// owner's write-back handler (which programs a new flash page).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"

namespace rhik::cache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;

  [[nodiscard]] std::uint64_t lookups() const noexcept { return hits + misses; }
  [[nodiscard]] double miss_ratio() const noexcept {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(n);
  }

  /// Registers these counters into a metrics snapshot (`cache.*`).
  void publish(obs::MetricsSnapshot& snap) const {
    snap.add_counter("cache.hits", hits);
    snap.add_counter("cache.misses", misses);
    snap.add_counter("cache.evictions", evictions);
    snap.add_counter("cache.dirty_writebacks", dirty_writebacks);
  }
};

template <typename K, typename V>
class LruCache {
 public:
  /// Called when a dirty entry leaves the cache (eviction or flush); the
  /// owner persists it. Clean entries are dropped silently.
  using WritebackFn = std::function<void(const K&, V&)>;

  /// `budget_bytes` / `entry_charge` bounds the entry count (min 1).
  LruCache(std::uint64_t budget_bytes, std::uint64_t entry_charge)
      : capacity_(entry_charge == 0 ? 1 : budget_bytes / entry_charge) {
    if (capacity_ == 0) capacity_ = 1;
  }

  void set_writeback(WritebackFn fn) { writeback_ = std::move(fn); }

  /// Lookup; refreshes recency. Counts a hit or miss.
  V* get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      stats_.misses++;
      return nullptr;
    }
    stats_.hits++;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->value;
  }

  /// Lookup without stats/recency side effects (introspection).
  V* peek(const K& key) {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second->value;
  }

  [[nodiscard]] bool contains(const K& key) const { return map_.count(key) != 0; }

  /// Inserts (or replaces) an entry; evicts LRU entries over budget.
  /// Returns the cached value.
  V* insert(const K& key, V value, bool dirty = false) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->value = std::move(value);
      it->second->dirty = it->second->dirty || dirty;
      lru_.splice(lru_.begin(), lru_, it->second);
      return &it->second->value;
    }
    lru_.push_front(Node{key, std::move(value), dirty});
    map_[key] = lru_.begin();
    while (map_.size() > capacity_) evict_lru();
    return &lru_.begin()->value;
  }

  /// Evicts the LRU entry now (writing back if dirty) and hands its value
  /// to the caller for storage reuse; nullopt while under budget. Pairing
  /// this with the following insert() keeps the eviction count identical
  /// to letting insert() evict, but lets a miss path recycle the victim's
  /// heap allocations instead of freeing them and allocating afresh.
  std::optional<V> take_lru_if_full() {
    if (map_.size() < capacity_) return std::nullopt;
    assert(!lru_.empty());
    Node& victim = lru_.back();
    if (victim.dirty) {
      if (writeback_) writeback_(victim.key, victim.value);
      stats_.dirty_writebacks++;
    }
    stats_.evictions++;
    std::optional<V> out{std::move(victim.value)};
    map_.erase(victim.key);
    lru_.pop_back();
    return out;
  }

  void mark_dirty(const K& key) {
    auto it = map_.find(key);
    if (it != map_.end()) it->second->dirty = true;
  }

  /// Drops an entry without write-back (caller already persisted or the
  /// entry is obsolete, e.g. after a resize).
  void erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    lru_.erase(it->second);
    map_.erase(it);
  }

  /// Writes back every dirty entry; entries stay cached (now clean).
  void flush_all() {
    for (auto& node : lru_) {
      if (node.dirty) {
        if (writeback_) writeback_(node.key, node.value);
        stats_.dirty_writebacks++;
        node.dirty = false;
      }
    }
  }

  /// Drops everything, writing back dirty entries first.
  void clear() {
    flush_all();
    lru_.clear();
    map_.clear();
  }

  /// Changes the entry budget; evicts immediately if shrinking.
  void set_capacity_entries(std::uint64_t entries) {
    capacity_ = entries == 0 ? 1 : entries;
    while (map_.size() > capacity_) evict_lru();
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::uint64_t capacity_entries() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  struct Node {
    K key;
    V value;
    bool dirty = false;
  };

  void evict_lru() {
    assert(!lru_.empty());
    Node& victim = lru_.back();
    if (victim.dirty) {
      if (writeback_) writeback_(victim.key, victim.value);
      stats_.dirty_writebacks++;
    }
    stats_.evictions++;
    map_.erase(victim.key);
    lru_.pop_back();
  }

  std::uint64_t capacity_;
  std::list<Node> lru_;
  std::unordered_map<K, typename std::list<Node>::iterator> map_;
  WritebackFn writeback_;
  CacheStats stats_;
};

}  // namespace rhik::cache
