// Batched completion ring for the asynchronous verb path.
//
// The device drains queued commands in batches (kvssd::KvssdDevice::drain
// snapshots its queue; each shard worker drains once per popped ring
// batch). Dispatching one std::function per completed op wastes that
// batching: every completion pays a dispatch + a lock acquisition on the
// API-side queue. BatchRing is the alternative fast path: the backend
// hands a whole drained batch across with ONE sink call, and the ring
// takes ONE lock per batch on each side (push and pop).
//
// The ring is unbounded-by-growth: when a pushed batch does not fit it
// doubles (completions must never be dropped — the caller is owed one per
// submission). `capacity` only sizes the initial allocation, so steady
// state runs allocation-free once the ring has grown to the workload's
// in-flight high-water mark.
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace rhik::api {

template <typename T>
class BatchRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit BatchRing(std::size_t capacity = 4096) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
  }

  /// Moves a whole batch in under one lock. Grows (doubling) as needed.
  void push_batch(std::vector<T>&& batch) {
    if (batch.empty()) return;
    std::lock_guard lk(mu_);
    while (count_ + batch.size() > buf_.size()) grow_locked();
    const std::size_t mask = buf_.size() - 1;
    for (auto& item : batch) {
      buf_[(head_ + count_) & mask] = std::move(item);
      ++count_;
    }
  }

  /// Appends up to `max` items to `*out` (which may be null, discarding
  /// them) under one lock; returns how many were popped.
  std::size_t pop_batch(std::vector<T>* out, std::size_t max) {
    std::lock_guard lk(mu_);
    const std::size_t n = count_ < max ? count_ : max;
    const std::size_t mask = buf_.size() - 1;
    if (out) out->reserve(out->size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      if (out) out->push_back(std::move(buf_[head_]));
      head_ = (head_ + 1) & mask;
    }
    count_ -= n;
    if (count_ == 0) head_ = 0;
    return n;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return count_;
  }

  void clear() {
    std::lock_guard lk(mu_);
    head_ = count_ = 0;
  }

 private:
  void grow_locked() {
    std::vector<T> next(buf_.size() * 2);
    const std::size_t mask = buf_.size() - 1;
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  mutable std::mutex mu_;
  std::vector<T> buf_;    ///< power-of-two circular storage
  std::size_t head_ = 0;  ///< pop position
  std::size_t count_ = 0;
};

}  // namespace rhik::api
