#include "api/kvs.hpp"

#include <algorithm>
#include <utility>

namespace rhik::api {

KvsResult from_status(Status s) noexcept {
  switch (s) {
    case Status::kOk: return KvsResult::KVS_SUCCESS;
    case Status::kNotFound: return KvsResult::KVS_ERR_KEY_NOT_EXIST;
    case Status::kAlreadyExists: return KvsResult::KVS_ERR_OPTION_INVALID;
    case Status::kDeviceFull: return KvsResult::KVS_ERR_CONT_FULL;
    case Status::kIndexFull: return KvsResult::KVS_ERR_CONT_FULL;
    case Status::kCollisionAbort: return KvsResult::KVS_ERR_UNCORRECTIBLE;
    case Status::kInvalidArgument: return KvsResult::KVS_ERR_KEY_LENGTH_INVALID;
    case Status::kCorruption: return KvsResult::KVS_ERR_SYS_IO;
    case Status::kIoError: return KvsResult::KVS_ERR_SYS_IO;
    case Status::kBusy: return KvsResult::KVS_ERR_DEV_BUSY;
    case Status::kUnsupported: return KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED;
    case Status::kQueueFull: return KvsResult::KVS_ERR_QUEUE_FULL;
    case Status::kIteratorMax: return KvsResult::KVS_ERR_ITERATOR_MAX;
    case Status::kSnapshotTooOld: return KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD;
  }
  return KvsResult::KVS_ERR_SYS_IO;
}

const char* to_string(KvsResult r) noexcept {
  switch (r) {
    case KvsResult::KVS_SUCCESS: return "KVS_SUCCESS";
    case KvsResult::KVS_ERR_KEY_NOT_EXIST: return "KVS_ERR_KEY_NOT_EXIST";
    case KvsResult::KVS_ERR_KEY_LENGTH_INVALID: return "KVS_ERR_KEY_LENGTH_INVALID";
    case KvsResult::KVS_ERR_VALUE_LENGTH_INVALID:
      return "KVS_ERR_VALUE_LENGTH_INVALID";
    case KvsResult::KVS_ERR_CONT_FULL: return "KVS_ERR_CONT_FULL";
    case KvsResult::KVS_ERR_UNCORRECTIBLE: return "KVS_ERR_UNCORRECTIBLE";
    case KvsResult::KVS_ERR_DEV_BUSY: return "KVS_ERR_DEV_BUSY";
    case KvsResult::KVS_ERR_SYS_IO: return "KVS_ERR_SYS_IO";
    case KvsResult::KVS_ERR_OPTION_INVALID: return "KVS_ERR_OPTION_INVALID";
    case KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED:
      return "KVS_ERR_ITERATOR_NOT_SUPPORTED";
    case KvsResult::KVS_ERR_QUEUE_FULL: return "KVS_ERR_QUEUE_FULL";
    case KvsResult::KVS_ERR_ITERATOR_MAX: return "KVS_ERR_ITERATOR_MAX";
    case KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD:
      return "KVS_ERR_SNAPSHOT_TOO_OLD";
  }
  return "KVS_ERR_UNKNOWN";
}

KvsDevice::KvsDevice(const KvsDeviceOptions& opts)
    : ring_(opts.completion_ring_capacity) {
  num_shards_ = std::max<std::uint32_t>(1, opts.num_shards);
  iterator_enabled_ = opts.enable_iterator;
  kvssd::DeviceConfig cfg;
  // With num_shards > 1 each shard gets an even slice of the array's
  // capacity, DRAM budget and sizing hint.
  cfg.geometry = flash::Geometry::with_capacity(
      opts.capacity_bytes / num_shards_, opts.pages_per_block);
  cfg.dram_cache_bytes = opts.dram_cache_bytes / num_shards_;
  cfg.prefix_signatures = opts.enable_iterator;
  cfg.checkpoint.enabled = opts.enable_checkpoints;
  cfg.checkpoint.dirty_pages = opts.checkpoint_dirty_pages;
  cfg.checkpoint.slot_blocks = opts.checkpoint_slot_blocks;
  cfg.checkpoint.journal_blocks = opts.checkpoint_journal_blocks;
  cfg.snapshot_retention_bytes = opts.snapshot_retention_bytes;
  const std::uint64_t keys_hint = opts.anticipated_keys / num_shards_;
  if (opts.use_rhik) {
    cfg.index_kind = kvssd::IndexKind::kRhik;
    cfg.rhik.anticipated_keys = keys_hint;
    cfg.rhik.incremental_resize = opts.incremental_resize;
  } else {
    cfg.index_kind = kvssd::IndexKind::kMlHash;
    if (keys_hint != 0) {
      cfg.mlhash = index::MlHashConfig::for_keys(keys_hint,
                                                 cfg.geometry.page_size);
    }
  }
  cfg_ = cfg;
  if (num_shards_ == 1) {
    dev_ = std::make_unique<kvssd::KvssdDevice>(cfg);
    backend_ = dev_.get();
  } else {
    shard::ShardedConfig sc;
    sc.device = cfg;
    sc.num_shards = num_shards_;
    array_ = std::make_unique<shard::ShardedKvssd>(sc);
    backend_ = array_.get();
  }
  install_sink();
}

KvsDevice::~KvsDevice() = default;

KvsResult KvsDevice::store(std::string_view key, ByteSpan value) {
  return from_status(backend_->put(key_span(key), value));
}

KvsResult KvsDevice::retrieve(std::string_view key, Bytes* value_out) {
  return from_status(backend_->get(key_span(key), value_out));
}

KvsResult KvsDevice::remove(std::string_view key) {
  return from_status(backend_->del(key_span(key)));
}

KvsResult KvsDevice::exist(std::string_view key) {
  return from_status(backend_->exist(key_span(key)));
}

// -- MVCC snapshots ------------------------------------------------------------

KvsResult KvsDevice::open_snapshot(SnapshotHandle* snap_out) {
  if (snap_out == nullptr) return KvsResult::KVS_ERR_OPTION_INVALID;
  auto snap = backend_->open_snapshot();
  if (!snap) return from_status(snap.status());
  *snap_out = *snap;
  return KvsResult::KVS_SUCCESS;
}

KvsResult KvsDevice::release_snapshot(const SnapshotHandle& snap) {
  return from_status(backend_->release_snapshot(snap));
}

KvsResult KvsDevice::retrieve_at(const SnapshotHandle& snap,
                                 std::string_view key, Bytes* value_out) {
  return from_status(backend_->read_at(snap, key_span(key), value_out));
}

// -- Streaming iterators -------------------------------------------------------

KvsResult KvsDevice::kvs_open_iterator(std::string_view prefix,
                                       std::uint64_t* iter_out,
                                       const SnapshotHandle* snap) {
  // Opened without the iterator option: the request is invalid, not the
  // device incapable — distinct result codes so callers can tell a
  // missing open flag from a backend that cannot iterate at all.
  if (!iterator_enabled_) return KvsResult::KVS_ERR_OPTION_INVALID;
  if (iter_out == nullptr) return KvsResult::KVS_ERR_OPTION_INVALID;
  auto handle = backend_->kvs_open_iterator(key_span(prefix), snap);
  if (!handle) return from_status(handle.status());
  *iter_out = *handle;
  return KvsResult::KVS_SUCCESS;
}

KvsResult KvsDevice::kvs_iterator_next(std::uint64_t iter,
                                       std::size_t max_keys,
                                       std::vector<std::string>* keys_out) {
  if (keys_out == nullptr) return KvsResult::KVS_ERR_OPTION_INVALID;
  std::vector<Bytes> keys;
  const Status s = backend_->kvs_iterator_next(iter, max_keys, &keys);
  keys_out->clear();
  if (!ok(s)) return from_status(s);
  keys_out->reserve(keys.size());
  for (const auto& k : keys) keys_out->push_back(rhik::to_string(k));
  return KvsResult::KVS_SUCCESS;
}

KvsResult KvsDevice::kvs_close_iterator(std::uint64_t iter) {
  return from_status(backend_->kvs_close_iterator(iter));
}

KvsResult KvsDevice::iterate(std::string_view prefix,
                             std::vector<std::string>* keys_out) {
  // Deprecated collect-all wrapper: one consistent streamed scan over
  // the handle API, drained to completion.
  std::uint64_t handle = 0;
  const KvsResult opened = kvs_open_iterator(prefix, &handle);
  if (opened != KvsResult::KVS_SUCCESS) return opened;
  keys_out->clear();
  std::vector<std::string> batch;
  KvsResult r = KvsResult::KVS_SUCCESS;
  for (;;) {
    r = kvs_iterator_next(handle, 256, &batch);
    if (r != KvsResult::KVS_SUCCESS) break;
    keys_out->insert(keys_out->end(), std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
  }
  (void)kvs_close_iterator(handle);
  if (r != KvsResult::KVS_ERR_KEY_NOT_EXIST) return r;
  // The single device enumerates in index (hash) order and the sharded
  // backend in shard-major order. Sort here so the facade's order is
  // deterministic and identical across shard counts — networked ITER
  // responses must be stable regardless of deployment.
  std::sort(keys_out->begin(), keys_out->end());
  return KvsResult::KVS_SUCCESS;
}

// -- Asynchronous verbs --------------------------------------------------------

void KvsDevice::install_sink() {
  // The backend hands whole drained batches across; convert in place and
  // land them in the ring under one lock per batch. This is the only
  // completion path — per-op callback dispatch is gone from the facade.
  backend_->set_completion_sink([this](std::vector<TaggedCompletion>&& batch) {
    std::vector<KvsCompletion> out;
    out.reserve(batch.size());
    for (TaggedCompletion& tc : batch) {
      KvsCompletion c;
      c.id = tc.tag;
      c.op = tc.op == TaggedCompletion::Op::kPut ? KvsCompletion::Op::kStore
             : tc.op == TaggedCompletion::Op::kGet
                 ? KvsCompletion::Op::kRetrieve
                 : KvsCompletion::Op::kRemove;
      c.result = from_status(tc.status);
      c.key = std::move(tc.key);
      c.value = std::move(tc.value);
      out.push_back(std::move(c));
    }
    ring_.push_batch(std::move(out));
    std::lock_guard lk(notify_mu_);
    if (notify_) notify_();
  });
}

void KvsDevice::set_completion_notify(std::function<void()> notify) {
  std::lock_guard lk(notify_mu_);
  notify_ = std::move(notify);
}

std::uint64_t KvsDevice::store_async(std::string_view key, ByteSpan value) {
  return store_async(key, Bytes(value.begin(), value.end()));
}

std::uint64_t KvsDevice::store_async(std::string_view key, Bytes&& value) {
  return store_async(Bytes(key_span(key).begin(), key_span(key).end()),
                     std::move(value));
}

std::uint64_t KvsDevice::store_async(Bytes&& key, Bytes&& value) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  backend_->submit_put_tagged(id, std::move(key), std::move(value));
  return id;
}

std::uint64_t KvsDevice::retrieve_async(std::string_view key) {
  return retrieve_async(Bytes(key_span(key).begin(), key_span(key).end()));
}

std::uint64_t KvsDevice::retrieve_async(Bytes&& key) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  backend_->submit_get_tagged(id, std::move(key));
  return id;
}

std::uint64_t KvsDevice::remove_async(std::string_view key) {
  return remove_async(Bytes(key_span(key).begin(), key_span(key).end()));
}

std::uint64_t KvsDevice::remove_async(Bytes&& key) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  backend_->submit_del_tagged(id, std::move(key));
  return id;
}

std::size_t KvsDevice::poll_completions(std::vector<KvsCompletion>* out,
                                        std::size_t max) {
  std::size_t n = ring_.pop_batch(out, max);
  if (n != 0) return n;
  // Nothing finished yet: drive the backend queue (a cross-shard barrier
  // on an array), so submit → poll always makes progress.
  backend_->drain();
  return ring_.pop_batch(out, max);
}

std::size_t KvsDevice::try_poll_completions(std::vector<KvsCompletion>* out,
                                            std::size_t max) {
  return ring_.pop_batch(out, max);
}

// -- Durability / maintenance --------------------------------------------------

KvsResult KvsDevice::flush() { return from_status(backend_->flush()); }

KvsResult KvsDevice::checkpoint() {
  const Status s = backend_->checkpoint();
  // Checkpointing disabled at open is a missing option, not an IO-level
  // iterator error.
  if (s == Status::kUnsupported) return KvsResult::KVS_ERR_OPTION_INVALID;
  return from_status(s);
}

KvsResult KvsDevice::recover(kvssd::RecoveryStats* stats_out) {
  // recover() replaces the backend object wholesale, so this is the one
  // member that touches dev_/array_ directly rather than the seam.
  ring_.clear();  // pending completions died with the old backend
  if (array_) {
    shard::ShardedConfig sc;
    sc.device = cfg_;
    sc.num_shards = num_shards_;
    auto nands = array_->release_nands();
    array_.reset();
    backend_ = nullptr;
    auto rebuilt = shard::ShardedKvssd::recover(sc, std::move(nands), stats_out);
    if (!rebuilt) return from_status(rebuilt.status());
    array_ = std::move(*rebuilt);
    backend_ = array_.get();
  } else {
    auto nand = dev_->release_nand();
    dev_.reset();
    backend_ = nullptr;
    auto rebuilt = kvssd::KvssdDevice::recover(cfg_, std::move(nand), stats_out);
    if (!rebuilt) return from_status(rebuilt.status());
    dev_ = std::move(*rebuilt);
    backend_ = dev_.get();
  }
  install_sink();  // the sink died with the old backend
  return KvsResult::KVS_SUCCESS;
}

}  // namespace rhik::api
