#include "api/kvs.hpp"

#include <algorithm>

namespace rhik::api {

KvsResult from_status(Status s) noexcept {
  switch (s) {
    case Status::kOk: return KvsResult::KVS_SUCCESS;
    case Status::kNotFound: return KvsResult::KVS_ERR_KEY_NOT_EXIST;
    case Status::kAlreadyExists: return KvsResult::KVS_ERR_OPTION_INVALID;
    case Status::kDeviceFull: return KvsResult::KVS_ERR_CONT_FULL;
    case Status::kIndexFull: return KvsResult::KVS_ERR_CONT_FULL;
    case Status::kCollisionAbort: return KvsResult::KVS_ERR_UNCORRECTIBLE;
    case Status::kInvalidArgument: return KvsResult::KVS_ERR_KEY_LENGTH_INVALID;
    case Status::kCorruption: return KvsResult::KVS_ERR_SYS_IO;
    case Status::kIoError: return KvsResult::KVS_ERR_SYS_IO;
    case Status::kBusy: return KvsResult::KVS_ERR_DEV_BUSY;
    case Status::kUnsupported: return KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED;
  }
  return KvsResult::KVS_ERR_SYS_IO;
}

const char* to_string(KvsResult r) noexcept {
  switch (r) {
    case KvsResult::KVS_SUCCESS: return "KVS_SUCCESS";
    case KvsResult::KVS_ERR_KEY_NOT_EXIST: return "KVS_ERR_KEY_NOT_EXIST";
    case KvsResult::KVS_ERR_KEY_LENGTH_INVALID: return "KVS_ERR_KEY_LENGTH_INVALID";
    case KvsResult::KVS_ERR_VALUE_LENGTH_INVALID:
      return "KVS_ERR_VALUE_LENGTH_INVALID";
    case KvsResult::KVS_ERR_CONT_FULL: return "KVS_ERR_CONT_FULL";
    case KvsResult::KVS_ERR_UNCORRECTIBLE: return "KVS_ERR_UNCORRECTIBLE";
    case KvsResult::KVS_ERR_DEV_BUSY: return "KVS_ERR_DEV_BUSY";
    case KvsResult::KVS_ERR_SYS_IO: return "KVS_ERR_SYS_IO";
    case KvsResult::KVS_ERR_OPTION_INVALID: return "KVS_ERR_OPTION_INVALID";
    case KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED:
      return "KVS_ERR_ITERATOR_NOT_SUPPORTED";
  }
  return "KVS_ERR_UNKNOWN";
}

KvsDevice::KvsDevice(const KvsDeviceOptions& opts) {
  const std::uint32_t shards = std::max<std::uint32_t>(1, opts.num_shards);
  kvssd::DeviceConfig cfg;
  // With num_shards > 1 each shard gets an even slice of the array's
  // capacity, DRAM budget and sizing hint.
  cfg.geometry = flash::Geometry::with_capacity(opts.capacity_bytes / shards);
  cfg.dram_cache_bytes = opts.dram_cache_bytes / shards;
  cfg.prefix_signatures = opts.enable_iterator;
  const std::uint64_t keys_hint = opts.anticipated_keys / shards;
  if (opts.use_rhik) {
    cfg.index_kind = kvssd::IndexKind::kRhik;
    cfg.rhik.anticipated_keys = keys_hint;
    cfg.rhik.incremental_resize = opts.incremental_resize;
  } else {
    cfg.index_kind = kvssd::IndexKind::kMlHash;
    if (keys_hint != 0) {
      cfg.mlhash = index::MlHashConfig::for_keys(keys_hint,
                                                 cfg.geometry.page_size);
    }
  }
  if (shards == 1) {
    dev_ = std::make_unique<kvssd::KvssdDevice>(cfg);
  } else {
    shard::ShardedConfig sc;
    sc.device = cfg;
    sc.num_shards = shards;
    array_ = std::make_unique<shard::ShardedKvssd>(sc);
  }
}

KvsResult KvsDevice::store(std::string_view key, ByteSpan value) {
  const Status s = array_ ? array_->put(key_span(key), value)
                          : dev_->put(key_span(key), value);
  return from_status(s);
}

KvsResult KvsDevice::retrieve(std::string_view key, Bytes* value_out) {
  const Status s = array_ ? array_->get(key_span(key), value_out)
                          : dev_->get(key_span(key), value_out);
  return from_status(s);
}

KvsResult KvsDevice::remove(std::string_view key) {
  const Status s =
      array_ ? array_->del(key_span(key)) : dev_->del(key_span(key));
  return from_status(s);
}

KvsResult KvsDevice::exist(std::string_view key) {
  const Status s =
      array_ ? array_->exist(key_span(key)) : dev_->exist(key_span(key));
  return from_status(s);
}

KvsResult KvsDevice::iterate(std::string_view prefix,
                             std::vector<std::string>* keys_out) {
  if (array_) return KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED;
  std::vector<Bytes> keys;
  const Status s = dev_->iterate_prefix(key_span(prefix), &keys);
  if (!ok(s)) return from_status(s);
  keys_out->clear();
  keys_out->reserve(keys.size());
  for (const auto& k : keys) keys_out->push_back(rhik::to_string(k));
  return KvsResult::KVS_SUCCESS;
}

}  // namespace rhik::api
