// The backend seam of the host-side KV API.
//
// `api::KvsDevice` fronts either a single emulated device
// (`kvssd::KvssdDevice`) or the sharded multi-device array
// (`shard::ShardedKvssd`). Both implement this narrow interface, so the
// API layer issues every verb through one call path instead of branching
// per backend. The interface is intentionally small: the SNIA-style verb
// set (including the snapshot / streaming-iterator handles), the async
// submission queue, and the durability / introspection hooks the facade
// exposes. Anything richer (value-carrying iterators, GC internals,
// per-shard access) stays on the concrete classes.
//
// Header-only and dependency-light on purpose: the emulated device
// implements it, so it must not pull API-layer or device-layer headers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace rhik::kvssd {
struct DeviceStats;
}

namespace rhik::api {

/// One finished tagged command, delivered batch-wise to the completion
/// sink. `tag` is whatever the submitter passed — the facade uses its
/// submission id. The key buffer travels down with the op and comes back
/// here, so the fast path never re-copies it; `value` is filled for gets.
struct TaggedCompletion {
  enum class Op : std::uint8_t { kPut, kGet, kDel };
  std::uint64_t tag = 0;
  Op op = Op::kPut;
  Status status = Status::kOk;
  Bytes key;
  Bytes value;
};

/// An MVCC snapshot: one device-global epoch pinned against GC and
/// version reclaim until released (DESIGN.md §13). `read_at` and
/// snapshot-bound iterators resolve every key as of this epoch, across
/// all shards of an array. A pin that outlives the retention budget or a
/// power cycle yields kSnapshotTooOld — retryable with a fresh snapshot;
/// a snapshot read never returns torn (mixed-epoch) data.
struct SnapshotHandle {
  std::uint64_t id = 0;     ///< pin-registry id (0 is never a valid pin)
  std::uint64_t epoch = 0;  ///< pinned epoch (diagnostics / wire echo)
};

class IKvsBackend {
 public:
  using Callback = std::function<void(Status)>;
  /// Value-carrying completion for asynchronous gets.
  using GetCallback = std::function<void(Status, Bytes&&)>;
  /// Batch completion sink: invoked ONCE per drained batch with every
  /// tagged completion the batch produced, in execution order. Sharded
  /// backends call it from worker threads (possibly concurrently), so
  /// sinks must be thread-safe.
  using CompletionSink = std::function<void(std::vector<TaggedCompletion>&&)>;

  virtual ~IKvsBackend() = default;

  // -- Synchronous verbs ----------------------------------------------------
  virtual Status put(ByteSpan key, ByteSpan value) = 0;
  virtual Status get(ByteSpan key, Bytes* value_out) = 0;
  virtual Status del(ByteSpan key) = 0;
  virtual Status exist(ByteSpan key) = 0;
  /// Enumerates stored keys sharing `prefix` (prefix-signature devices
  /// only; kUnsupported otherwise).
  virtual Status iterate_prefix(ByteSpan prefix, std::vector<Bytes>* keys_out,
                                std::size_t limit) = 0;

  // -- MVCC snapshots (DESIGN.md §13) ----------------------------------------
  /// Pins the current epoch; the snapshot stays readable until released,
  /// expired by the retention budget, or lost to a power cycle.
  virtual Result<SnapshotHandle> open_snapshot() = 0;
  /// Releases a pin (idempotent: releasing an expired pin is kOk-ish —
  /// kSnapshotTooOld only ever comes from reads). Unknown ids error.
  virtual Status release_snapshot(const SnapshotHandle& snap) = 0;
  /// Point read as of the snapshot's epoch: the value the key had when
  /// the snapshot was opened, regardless of later puts/deletes.
  /// kNotFound when the key did not exist then; kSnapshotTooOld when the
  /// pin expired.
  virtual Status read_at(const SnapshotHandle& snap, ByteSpan key,
                         Bytes* value_out) = 0;

  // -- Streaming iterator handles (SNIA-style; §II-A) ------------------------
  /// Opens a streaming key iterator over `prefix`. With `snap` the view
  /// is the snapshot's epoch; with nullptr an internal snapshot is
  /// pinned for the iterator's lifetime, so every iterator is consistent
  /// (keys mutated mid-scan resolve to their as-of-open versions).
  /// kIteratorMax when all handles are in use; kUnsupported without
  /// prefix signatures.
  virtual Result<std::uint64_t> kvs_open_iterator(ByteSpan prefix,
                                                  const SnapshotHandle* snap) = 0;
  /// Appends up to `max_keys` further keys. kOk while keys remain;
  /// kNotFound once exhausted (the SNIA ITERATOR_END condition);
  /// kSnapshotTooOld when the backing pin expired mid-scan.
  virtual Status kvs_iterator_next(std::uint64_t handle, std::size_t max_keys,
                                   std::vector<Bytes>* keys_out) = 0;
  /// Closes the handle (and releases an internally pinned snapshot).
  virtual Status kvs_close_iterator(std::uint64_t handle) = 0;

  // -- Asynchronous submission ----------------------------------------------
  virtual void submit_put(Bytes key, Bytes value, Callback cb) = 0;
  virtual void submit_get(Bytes key, GetCallback cb) = 0;
  virtual void submit_del(Bytes key, Callback cb) = 0;
  /// Executes queued commands; returns how many completed.
  virtual std::size_t drain() = 0;

  // -- Tagged submission (batched completion fast path) -----------------------
  /// Tagged verbs complete through the completion sink instead of a
  /// per-op callback: the backend collects every tagged completion a
  /// drain batch produces and fires the sink once for the whole batch.
  /// Install the sink before the first tagged submit; with no sink
  /// installed, tagged completions are dropped.
  virtual void set_completion_sink(CompletionSink sink) = 0;
  virtual void submit_put_tagged(std::uint64_t tag, Bytes key, Bytes value) = 0;
  virtual void submit_get_tagged(std::uint64_t tag, Bytes key) = 0;
  virtual void submit_del_tagged(std::uint64_t tag, Bytes key) = 0;

  /// Runs one bounded quantum of background maintenance (GC relocation,
  /// incremental index migration) if any is pending; returns true when
  /// work was done, so idle callers may keep pumping until false. The
  /// serving layer calls this from its event loop's idle windows — a
  /// single device has no other thread to make background progress, and
  /// a sharded array's workers already pump when their rings are idle
  /// (its override is a no-op returning false).
  virtual bool pump_background() = 0;

  // -- Durability -----------------------------------------------------------
  virtual Status flush() = 0;
  /// Synchronous index checkpoint (DESIGN.md §8); kUnsupported when
  /// checkpointing is disabled.
  virtual Status checkpoint() = 0;

  // -- Introspection ---------------------------------------------------------
  /// Whole-backend operation counters (shard-merged for an array).
  virtual kvssd::DeviceStats stats_snapshot() = 0;
  /// One coherent metrics view (shard-merged for an array; implies a
  /// cross-shard barrier there).
  virtual obs::MetricsSnapshot metrics_snapshot() = 0;
};

}  // namespace rhik::api
