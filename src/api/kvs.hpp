// Host-side KV API in the style of the SNIA Key Value Storage API 1.0
// (paper §II-A): the library applications link against. It wraps the
// emulated device behind SNIA-flavoured result codes and string keys,
// which is what the examples/ programs use.
//
// Internally every verb goes through one `IKvsBackend` call path
// (backend.hpp), whether the device was opened as a single emulated
// KVSSD or as a sharded multi-device array — the facade itself never
// branches per backend.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/backend.hpp"
#include "api/completion_ring.hpp"
#include "kvssd/device.hpp"
#include "shard/sharded_kvssd.hpp"

namespace rhik::api {

/// SNIA-flavoured result codes.
enum class KvsResult {
  KVS_SUCCESS = 0,
  KVS_ERR_KEY_NOT_EXIST,
  KVS_ERR_KEY_LENGTH_INVALID,
  KVS_ERR_VALUE_LENGTH_INVALID,
  KVS_ERR_CONT_FULL,        ///< device out of space
  KVS_ERR_UNCORRECTIBLE,    ///< index collision abort (§IV-A1)
  KVS_ERR_DEV_BUSY,         ///< reconfiguration in progress
  KVS_ERR_SYS_IO,
  KVS_ERR_OPTION_INVALID,
  KVS_ERR_ITERATOR_NOT_SUPPORTED,
  /// Admission control / per-tenant quota rejection (serving layer,
  /// DESIGN.md §12). Transient by contract: the request was never
  /// executed and retrying after backoff is expected to succeed —
  /// unlike KVS_ERR_CONT_FULL, which says the device/index itself is
  /// out of room and retrying is pointless.
  KVS_ERR_QUEUE_FULL,
  /// All iterator handles are in use (SNIA caps concurrently open
  /// iterators per device). Close one and retry.
  KVS_ERR_ITERATOR_MAX,
  /// The pinned snapshot outlived the version-retention budget (or did
  /// not survive a power cycle) and its versions were reclaimed
  /// (DESIGN.md §13). Retryable by contract: release the handle, open a
  /// fresh snapshot and restart the scan.
  KVS_ERR_SNAPSHOT_TOO_OLD,
};

[[nodiscard]] KvsResult from_status(Status s) noexcept;
[[nodiscard]] const char* to_string(KvsResult r) noexcept;

/// Simplified device-open options; maps onto kvssd::DeviceConfig.
struct KvsDeviceOptions {
  std::uint64_t capacity_bytes = std::uint64_t{4} << 30;  ///< emulated size
  std::uint64_t dram_cache_bytes = 10ull << 20;
  /// Erase-block granularity (pages per block); 0 keeps the paper
  /// default (256). Small emulated capacities must scale this down with
  /// them: a 64 MiB shard at the default is 8 monolithic blocks, which
  /// leaves GC no room to rotate and degrades every write to thrash.
  std::uint32_t pages_per_block = 0;
  bool use_rhik = true;               ///< false: multi-level hash baseline
  std::uint64_t anticipated_keys = 0; ///< Eq. 2 initial sizing hint
  bool enable_iterator = false;       ///< §VI prefix-signature iteration
  /// §VI real-time scaling: doublings migrate in bounded background
  /// quanta (halt-free, the default) instead of stalling the queue.
  /// Tracks the RHIK default (RHIK_STW_RESIZE=1 flips it back).
  bool incremental_resize = index::default_incremental_resize();
  /// >1: sharded multi-device front-end — the keyspace is hash-
  /// partitioned across this many emulated devices, each with its own
  /// worker thread; capacity_bytes and dram_cache_bytes are split
  /// evenly. 1 (default) keeps today's single, thread-free device.
  std::uint32_t num_shards = 1;

  /// Index checkpointing + delta journaling (DESIGN.md §8): restart
  /// replays only the delta journal instead of scanning the whole
  /// device. Costs a small reserved flash tail per device/shard.
  bool enable_checkpoints = false;
  /// Pages written since the last checkpoint before a new one starts.
  std::uint32_t checkpoint_dirty_pages = 4096;
  /// Blocks per checkpoint slot (two slots are reserved).
  std::uint32_t checkpoint_slot_blocks = 1;
  /// Blocks in the delta-journal ring.
  std::uint32_t checkpoint_journal_blocks = 2;

  /// Initial capacity of the async completion ring (rounded up to a
  /// power of two). The ring grows on demand — completions are never
  /// dropped — so this only sets the allocation-free steady state;
  /// size it to the expected in-flight command count.
  std::size_t completion_ring_capacity = 4096;

  /// Byte budget for superseded versions retained only because a
  /// snapshot pins them (DESIGN.md §13). When retention would exceed
  /// this, the OLDEST pin is expired and its holder gets
  /// KVS_ERR_SNAPSHOT_TOO_OLD on next use — a retryable eviction, never
  /// torn data. 0 = unbounded. Shared across shards of an array (the
  /// pin registry is device-global), so it is NOT divided per shard.
  std::uint64_t snapshot_retention_bytes = 64ull << 20;
};

/// One finished asynchronous command, as returned by poll_completions().
struct KvsCompletion {
  enum class Op : std::uint8_t { kStore, kRetrieve, kRemove };
  std::uint64_t id = 0;  ///< the submission id the *_async call returned
  Op op = Op::kStore;
  KvsResult result = KvsResult::KVS_SUCCESS;
  /// The submitted key, returned by move — the buffer travels down with
  /// the command and comes back here, never re-copied.
  Bytes key;
  Bytes value;  ///< retrieve only; empty unless result == KVS_SUCCESS
};

/// An open KVSSD with the SNIA-style verb set.
class KvsDevice {
 public:
  explicit KvsDevice(const KvsDeviceOptions& opts);
  ~KvsDevice();

  KvsResult store(std::string_view key, ByteSpan value);
  KvsResult store(std::string_view key, std::string_view value) {
    return store(key, key_span(value));
  }
  KvsResult retrieve(std::string_view key, Bytes* value_out);
  KvsResult remove(std::string_view key);
  KvsResult exist(std::string_view key);

  // -- MVCC snapshots (DESIGN.md §13) -----------------------------------------
  /// Pins the current epoch: retrieve_at() and iterators opened against
  /// the handle observe exactly the device state at open time, sharded
  /// or not, no matter how much churn follows. Pins hold superseded
  /// versions alive — release promptly.
  KvsResult open_snapshot(SnapshotHandle* snap_out);
  /// Releases a pin; retained versions it alone kept alive become
  /// reclaimable at the next GC/background tick.
  KvsResult release_snapshot(const SnapshotHandle& snap);
  /// Point read at a pinned epoch. KVS_ERR_SNAPSHOT_TOO_OLD when the
  /// pin expired (retention budget) or did not survive a power cycle.
  KvsResult retrieve_at(const SnapshotHandle& snap, std::string_view key,
                        Bytes* value_out);

  // -- Streaming iterators (SNIA-style handle API) -----------------------------
  /// Opens a prefix iterator and returns its handle. With `snap`
  /// non-null the scan is bound to that pinned epoch; otherwise it pins
  /// its own snapshot internally (released on close), so every scan is
  /// a consistent cut even under concurrent writers. Results:
  /// KVS_ERR_OPTION_INVALID when the device was opened without
  /// enable_iterator; KVS_ERR_ITERATOR_MAX when too many iterators are
  /// already open; KVS_ERR_SNAPSHOT_TOO_OLD when `snap` has expired.
  KvsResult kvs_open_iterator(std::string_view prefix, std::uint64_t* iter_out,
                              const SnapshotHandle* snap = nullptr);
  /// Streams up to `max_keys` further keys into `keys_out` (replaced,
  /// not appended). KVS_SUCCESS with a non-empty batch while keys
  /// remain; KVS_ERR_KEY_NOT_EXIST once the iterator is exhausted;
  /// KVS_ERR_SNAPSHOT_TOO_OLD if the backing pin expired mid-scan (the
  /// scan errors rather than silently mixing epochs).
  KvsResult kvs_iterator_next(std::uint64_t iter, std::size_t max_keys,
                              std::vector<std::string>* keys_out);
  /// Closes the iterator and releases its internally-pinned snapshot
  /// (caller-supplied snapshots stay open — the caller releases those).
  KvsResult kvs_close_iterator(std::uint64_t iter);

  /// Deprecated collect-all scan, kept as a thin wrapper over the
  /// handle API above: opens an iterator, drains it into `keys_out`
  /// (sorted), closes it. Prefer the handle verbs — they stream in
  /// bounded batches and can share one snapshot across scans.
  /// KVS_ERR_OPTION_INVALID when the device was opened without
  /// enable_iterator (the capability exists but was not requested);
  /// KVS_ERR_ITERATOR_NOT_SUPPORTED only when the backend genuinely
  /// cannot iterate.
  KvsResult iterate(std::string_view prefix, std::vector<std::string>* keys_out);

  // -- Asynchronous verbs (SNIA-style submit + poll) --------------------------
  /// Queue a store/retrieve/remove; returns the submission id echoed in
  /// the matching KvsCompletion. Completions surface via
  /// poll_completions(), never from the *_async call itself.
  std::uint64_t store_async(std::string_view key, ByteSpan value);
  std::uint64_t store_async(std::string_view key, std::string_view value) {
    return store_async(key, key_span(value));
  }
  /// Move overload: hands the value buffer straight down the submission
  /// path — zero copies between the caller and the flash write buffer.
  std::uint64_t store_async(std::string_view key, Bytes&& value);
  /// Full move overload: both buffers travel down without a copy. The
  /// serving layer builds the tenant-prefixed key once and moves it
  /// here, so a networked op costs no more key copies than a local one.
  std::uint64_t store_async(Bytes&& key, Bytes&& value);
  std::uint64_t retrieve_async(std::string_view key);
  std::uint64_t retrieve_async(Bytes&& key);
  std::uint64_t remove_async(std::string_view key);
  std::uint64_t remove_async(Bytes&& key);
  /// Harvests up to `max` finished commands into `out` (appended);
  /// returns how many were harvested. When nothing has finished yet the
  /// backend's queue is driven first, so a submit → poll loop always
  /// makes progress. Completions cross from the backend in whole drained
  /// batches (one ring lock per batch), not one callback at a time.
  std::size_t poll_completions(std::vector<KvsCompletion>* out,
                               std::size_t max = SIZE_MAX);
  /// Non-blocking poll_completions: harvests whatever the backend has
  /// already pushed into the ring, never driving the queue. On a sharded
  /// backend poll_completions' drive is a cross-shard *barrier* — an
  /// event loop that only wants "what's finished so far" (the serving
  /// layer) must use this instead and rely on set_completion_notify.
  std::size_t try_poll_completions(std::vector<KvsCompletion>* out,
                                   std::size_t max = SIZE_MAX);
  /// Registers a callback fired after each completion batch lands in the
  /// ring — from a shard worker thread on a sharded backend, so it must
  /// be thread-safe and cheap (an eventfd write, not work). Pass nullptr
  /// to clear. The serving layer uses this to wake its epoll loop
  /// instead of timer-polling the ring.
  void set_completion_notify(std::function<void()> notify);

  // -- Durability / maintenance -----------------------------------------------
  /// Persists buffered data, index state and journal records.
  KvsResult flush();
  /// Synchronous index checkpoint (DESIGN.md §8). KVS_ERR_OPTION_INVALID
  /// when the device was opened without enable_checkpoints.
  KvsResult checkpoint();
  /// Simulated power cycle + restart: tears the device (or every shard)
  /// down abruptly, then rebuilds it from flash — the checkpoint fast
  /// path when one is durable, the full-device scan otherwise. Fills
  /// `stats_out` (merged across shards) when non-null.
  KvsResult recover(kvssd::RecoveryStats* stats_out = nullptr);

  /// True when opened with num_shards > 1.
  [[nodiscard]] bool sharded() const noexcept { return array_ != nullptr; }

  // -- Introspection (single call path, sharded or not) ------------------------
  /// Whole-device operation counters (shard-merged for an array).
  [[nodiscard]] kvssd::DeviceStats stats_snapshot() {
    return backend_->stats_snapshot();
  }
  /// Unified metrics view, sharded or not: the single device's snapshot,
  /// or the shard-merged array snapshot (implies a cross-shard barrier).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() {
    return backend_->metrics_snapshot();
  }
  /// The backend seam itself, for advanced callers that want the raw
  /// verb set without the string-key / KvsResult dressing.
  [[nodiscard]] IKvsBackend& backend() noexcept { return *backend_; }

  /// Access to the underlying emulated device. Only valid for a
  /// non-sharded device (num_shards == 1).
  [[deprecated("use backend()/stats_snapshot()/metrics_snapshot()")]]
  [[nodiscard]] kvssd::KvssdDevice& device() noexcept { return *dev_; }
  /// Access to the shard array (only valid when sharded()).
  [[deprecated("use backend()/stats_snapshot()/metrics_snapshot()")]]
  [[nodiscard]] shard::ShardedKvssd& shard_array() noexcept { return *array_; }

 private:
  static ByteSpan key_span(std::string_view key) noexcept {
    return {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()};
  }
  /// Installs the batched completion sink on backend_ (construction and
  /// after recover() rebuilds the backend).
  void install_sink();

  kvssd::DeviceConfig cfg_;      ///< per-device (= per-shard) config
  std::uint32_t num_shards_ = 1;
  bool iterator_enabled_ = false;

  /// Harvested-but-unpolled completions. Sharded backends push from
  /// worker threads (the ring locks per batch, not per op). Declared
  /// before the backends so it outlives their worker shutdown.
  BatchRing<KvsCompletion> ring_;
  /// Post-push wakeup hook (serving layer). Swapped under a mutex so
  /// install/clear races with in-flight sink batches stay defined.
  std::mutex notify_mu_;
  std::function<void()> notify_;

  std::unique_ptr<kvssd::KvssdDevice> dev_;
  std::unique_ptr<shard::ShardedKvssd> array_;
  IKvsBackend* backend_ = nullptr;  ///< == dev_ or array_

  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace rhik::api
