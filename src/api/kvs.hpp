// Host-side KV API in the style of the SNIA Key Value Storage API 1.0
// (paper §II-A): the library applications link against. It wraps the
// emulated device behind SNIA-flavoured result codes and string keys,
// which is what the examples/ programs use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kvssd/device.hpp"
#include "shard/sharded_kvssd.hpp"

namespace rhik::api {

/// SNIA-flavoured result codes.
enum class KvsResult {
  KVS_SUCCESS = 0,
  KVS_ERR_KEY_NOT_EXIST,
  KVS_ERR_KEY_LENGTH_INVALID,
  KVS_ERR_VALUE_LENGTH_INVALID,
  KVS_ERR_CONT_FULL,        ///< device out of space
  KVS_ERR_UNCORRECTIBLE,    ///< index collision abort (§IV-A1)
  KVS_ERR_DEV_BUSY,         ///< reconfiguration in progress
  KVS_ERR_SYS_IO,
  KVS_ERR_OPTION_INVALID,
  KVS_ERR_ITERATOR_NOT_SUPPORTED,
};

[[nodiscard]] KvsResult from_status(Status s) noexcept;
[[nodiscard]] const char* to_string(KvsResult r) noexcept;

/// Simplified device-open options; maps onto kvssd::DeviceConfig.
struct KvsDeviceOptions {
  std::uint64_t capacity_bytes = std::uint64_t{4} << 30;  ///< emulated size
  std::uint64_t dram_cache_bytes = 10ull << 20;
  bool use_rhik = true;               ///< false: multi-level hash baseline
  std::uint64_t anticipated_keys = 0; ///< Eq. 2 initial sizing hint
  bool enable_iterator = false;       ///< §VI prefix-signature iteration
  bool incremental_resize = false;    ///< §VI real-time scaling
  /// >1: sharded multi-device front-end — the keyspace is hash-
  /// partitioned across this many emulated devices, each with its own
  /// worker thread; capacity_bytes and dram_cache_bytes are split
  /// evenly. 1 (default) keeps today's single, thread-free device.
  /// Prefix iteration is not yet supported across shards.
  std::uint32_t num_shards = 1;
};

/// An open KVSSD with the SNIA-style verb set.
class KvsDevice {
 public:
  explicit KvsDevice(const KvsDeviceOptions& opts);

  KvsResult store(std::string_view key, ByteSpan value);
  KvsResult store(std::string_view key, std::string_view value) {
    return store(key, as_bytes(std::string(value)));
  }
  KvsResult retrieve(std::string_view key, Bytes* value_out);
  KvsResult remove(std::string_view key);
  KvsResult exist(std::string_view key);
  /// Enumerates stored keys with the given prefix (needs enable_iterator).
  KvsResult iterate(std::string_view prefix, std::vector<std::string>* keys_out);

  /// True when opened with num_shards > 1.
  [[nodiscard]] bool sharded() const noexcept { return array_ != nullptr; }
  /// Access to the underlying emulated device for stats/advanced use.
  /// Only valid for a non-sharded device (num_shards == 1).
  [[nodiscard]] kvssd::KvssdDevice& device() noexcept { return *dev_; }
  /// Access to the shard array (only valid when sharded()).
  [[nodiscard]] shard::ShardedKvssd& shard_array() noexcept { return *array_; }

  /// Unified metrics view, sharded or not: the single device's snapshot,
  /// or the shard-merged array snapshot (implies a cross-shard barrier).
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() {
    return array_ ? array_->metrics_snapshot() : dev_->metrics_snapshot();
  }

 private:
  static ByteSpan key_span(std::string_view key) noexcept {
    return {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()};
  }
  std::unique_ptr<kvssd::KvssdDevice> dev_;
  std::unique_ptr<shard::ShardedKvssd> array_;
};

}  // namespace rhik::api
