// Unit tests for the on-flash page layouts (paper Fig. 4).
#include <gtest/gtest.h>

#include "ftl/layout.hpp"

namespace rhik::ftl {
namespace {

constexpr std::uint32_t kPage = 4096;

PairHeader hdr(std::uint64_t sig, std::uint16_t klen, std::uint32_t vlen) {
  return {sig, klen, vlen};
}

TEST(SpareTag, RoundTrip) {
  Bytes spare(16, 0xFF);
  SpareTag{PageKind::kIndexRecord, Stream::kIndex}.encode(spare);
  const SpareTag got = SpareTag::decode(spare);
  EXPECT_EQ(got.kind, PageKind::kIndexRecord);
  EXPECT_EQ(got.stream, Stream::kIndex);
}

TEST(SpareTag, ErasedSpareDecodesAsFree) {
  Bytes spare(16, 0xFF);
  EXPECT_EQ(SpareTag::decode(spare).kind, PageKind::kFree);
}

TEST(PairHeader, RoundTrip) {
  Bytes buf(64, 0);
  const PairHeader h = hdr(0xABCDEF0123456789ull, 20, 5000);
  h.encode(buf, 3);
  const PairHeader got = PairHeader::decode(buf, 3);
  EXPECT_EQ(got.sig, h.sig);
  EXPECT_EQ(got.key_len, 20);
  EXPECT_EQ(got.val_len, 5000u);
  EXPECT_EQ(got.pair_bytes(), PairHeader::kSize + 20 + 5000);
}

TEST(PageFooter, EncodeDecode) {
  Bytes page(kPage, 0xFF);
  const std::vector<std::uint64_t> sigs{11, 22, 33};
  PageFooter::encode(page, sigs);
  const auto got = PageFooter::decode(page);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, sigs);
}

TEST(PageFooter, GarbageCountRejected) {
  Bytes page(kPage, 0xFF);  // erased page: count = 0xFFFF, too many sigs
  EXPECT_FALSE(PageFooter::decode(page).has_value());
}

TEST(DataPageBuilder, AppendAndParse) {
  DataPageBuilder b(kPage);
  EXPECT_TRUE(b.empty());

  const std::string k1 = "alpha";
  const std::string v1 = "value-one";
  const std::string k2 = "beta";
  const std::string v2(100, 'x');

  b.append(hdr(1, 5, 9), as_bytes(k1), as_bytes(v1));
  b.append(hdr(2, 4, 100), as_bytes(k2), as_bytes(v2));
  EXPECT_EQ(b.pair_count(), 2u);

  const ByteSpan page = b.finalize();
  const auto pairs = parse_head_page(page, kPage);
  ASSERT_TRUE(pairs.has_value());
  ASSERT_EQ(pairs->size(), 2u);
  EXPECT_EQ((*pairs)[0].header.sig, 1u);
  EXPECT_FALSE((*pairs)[0].spills);
  EXPECT_EQ((*pairs)[1].header.sig, 2u);
  EXPECT_EQ((*pairs)[1].offset,
            PairHeader::kSize + k1.size() + v1.size());
  // Key/value bytes are recoverable at the parsed offsets.
  const std::size_t key_off = (*pairs)[1].offset + PairHeader::kSize;
  EXPECT_EQ(rhik::to_string(page.subspan(key_off, 4)), k2);
}

TEST(DataPageBuilder, RemainingShrinksWithFooter) {
  DataPageBuilder b(kPage);
  const std::size_t r0 = b.remaining();
  // Empty page: footer reserve for 1 pair.
  EXPECT_EQ(r0, kPage - PageFooter::size_for(1));
  b.append(hdr(1, 4, 10), as_bytes(std::string("aaaa")), as_bytes(std::string(10, 'v')));
  // One pair stored: its bytes plus one more signature slot reserved.
  EXPECT_EQ(b.remaining(), kPage - PageFooter::size_for(2) -
                               (PairHeader::kSize + 4 + 10));
}

TEST(DataPageBuilder, FitsMatchesAppendCapacity) {
  DataPageBuilder b(kPage);
  const std::string key = "kkkkkkkk";
  int appended = 0;
  while (true) {
    const PairHeader h = hdr(appended + 1, 8, 100);
    if (!b.fits(h.pair_bytes())) break;
    b.append(h, as_bytes(key), as_bytes(std::string(100, 'z')));
    ++appended;
  }
  EXPECT_GT(appended, 25);  // 4096 / ~122 B pairs
  const auto pairs = parse_head_page(b.finalize(), kPage);
  ASSERT_TRUE(pairs.has_value());
  EXPECT_EQ(pairs->size(), static_cast<std::size_t>(appended));
}

TEST(DataPageBuilder, ExtentHeadPage) {
  DataPageBuilder b(kPage);
  const std::string key = "bigkey";
  const std::size_t head_cap = kPage - PageFooter::size_for(1);
  const std::size_t prefix = head_cap - PairHeader::kSize - key.size();
  const std::string value(prefix + 5000, 'V');  // spills

  b.begin_extent(hdr(99, 6, static_cast<std::uint32_t>(value.size())),
                 as_bytes(key), as_bytes(value).subspan(0, prefix));
  const auto pairs = parse_head_page(b.finalize(), kPage);
  ASSERT_TRUE(pairs.has_value());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_TRUE((*pairs)[0].spills);
  EXPECT_EQ((*pairs)[0].in_page_bytes, head_cap);
}

TEST(DataPageBuilder, ResetClearsState) {
  DataPageBuilder b(kPage);
  b.append(hdr(1, 4, 4), as_bytes(std::string("abcd")), as_bytes(std::string("efgh")));
  b.reset();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.remaining(), kPage - PageFooter::size_for(1));
}

TEST(ParseHeadPage, DetectsFooterDataMismatch) {
  DataPageBuilder b(kPage);
  b.append(hdr(7, 4, 4), as_bytes(std::string("abcd")), as_bytes(std::string("efgh")));
  Bytes page(b.finalize().begin(), b.finalize().end());
  // Corrupt the in-data signature so it disagrees with the footer.
  put_u64(page, 0, 0xBAD);
  EXPECT_FALSE(parse_head_page(page, kPage).has_value());
}

TEST(ExtentMath, ContinuationPageCount) {
  flash::Geometry g = flash::Geometry::tiny();  // 4 KiB pages
  const std::uint64_t head_cap = g.page_size - PageFooter::size_for(1);
  EXPECT_EQ(continuation_pages(g, head_cap), 0u);
  EXPECT_EQ(continuation_pages(g, head_cap + 1), 1u);
  EXPECT_EQ(continuation_pages(g, head_cap + g.page_size), 1u);
  EXPECT_EQ(continuation_pages(g, head_cap + g.page_size + 1), 2u);
  EXPECT_EQ(extent_pages(g, head_cap), 1u);
  EXPECT_EQ(extent_pages(g, head_cap + 1), 2u);
}

TEST(ExtentMath, PaperGeometry32K) {
  flash::Geometry g;  // 32 KiB pages
  // A 2 MiB value (paper's largest test size) needs 65 pages.
  const std::uint64_t pair = PairHeader::kSize + 16 + (2ull << 20);
  EXPECT_EQ(extent_pages(g, pair), 65u);
  EXPECT_LE(extent_pages(g, pair), g.pages_per_block);  // fits one block
}

}  // namespace
}  // namespace rhik::ftl
