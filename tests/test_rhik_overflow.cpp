// Tests for the §VI "hyper-local scaling" extension: per-bucket overflow
// record pages that absorb uncorrectable local collisions instead of
// rejecting keys.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "index/rhik/rhik_index.hpp"
#include "index_test_rig.hpp"

namespace rhik::index {
namespace {

using Rig = testutil::IndexRig<RhikIndex, RhikConfig>;

RhikConfig overflow_config() {
  RhikConfig cfg;
  cfg.local_overflow = true;
  // Pathologically tight neighbourhood + no resizing: collisions are
  // frequent, so overflow engages heavily.
  cfg.hop_range = 2;
  cfg.resize_threshold = 1.1;
  return cfg;
}

TEST(RhikOverflow, AbsorbsCollisionsThatWouldAbort) {
  // Identical workload, with and without the extension.
  Rig plain([] {
    RhikConfig c = overflow_config();
    c.local_overflow = false;
    return c;
  }());
  Rig extended(overflow_config());
  Rng rng_a(4), rng_b(4);
  int plain_aborts = 0, extended_aborts = 0;
  for (int i = 0; i < 2000; ++i) {
    if (plain.index.put(rng_a.next(), i) == Status::kCollisionAbort) ++plain_aborts;
    if (extended.index.put(rng_b.next(), i) == Status::kCollisionAbort) {
      ++extended_aborts;
    }
  }
  EXPECT_GT(plain_aborts, 0);
  // The overflow page absorbs the vast majority; only collisions inside
  // an H=2 overflow table itself can still abort.
  EXPECT_LT(extended_aborts, plain_aborts / 3);
  EXPECT_GT(extended.index.op_stats().overflow_inserts, 0u);
}

TEST(RhikOverflow, OverflowRecordsFullyFunctional) {
  Rig rig(overflow_config());
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  ASSERT_GT(rig.index.op_stats().overflow_inserts, 0u);
  EXPECT_EQ(rig.index.size(), ref.size());
  // Every mapping — primary or overflow — resolves, updates and erases.
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
  for (const auto& [sig, ppa] : ref) {
    ASSERT_EQ(rig.index.put(sig, ppa + 1), Status::kOk);
    EXPECT_EQ(*rig.index.get(sig), ppa + 1);
  }
  for (const auto& [sig, _] : ref) {
    ASSERT_EQ(rig.index.erase(sig), Status::kOk);
  }
  EXPECT_EQ(rig.index.size(), 0u);
}

TEST(RhikOverflow, LookupsCostAtMostTwoReads) {
  RhikConfig cfg = overflow_config();
  cfg.anticipated_keys = 240 * 8;
  Rig rig(cfg, /*cache_bytes=*/4096);  // one cached page: everything misses
  Rng rng(9);
  std::vector<std::uint64_t> sigs;
  for (int i = 0; i < 1500; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) sigs.push_back(sig);
    rig.maybe_gc();
  }
  ASSERT_GT(rig.index.op_stats().overflow_inserts, 0u);
  rig.index.reset_op_stats();
  Rng pick(11);
  for (int i = 0; i < 500; ++i) {
    rig.index.get(sigs[pick.next_below(sigs.size())]);
  }
  const auto& h = rig.index.op_stats().reads_per_lookup;
  EXPECT_LE(h.max(), 2u);   // the documented trade-off: <= 2, not <= 1
  EXPECT_GT(h.max(), 1u);   // and overflowed buckets do pay the 2nd read
}

TEST(RhikOverflow, UpdateWithSinglePageCacheKeepsCountsExact) {
  // Regression: with a one-page cache the update path's overflow probe
  // evicts the primary table between the `existed` probe and the final
  // insert. The reloaded primary must be re-verified rather than trusting
  // the stale probe, or updates of primary-resident keys drift num_keys_.
  Rig rig(overflow_config(), /*cache_bytes=*/4096);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(29);
  for (int i = 0; i < 1500; ++i) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  ASSERT_GT(rig.index.op_stats().overflow_inserts, 0u);
  ASSERT_EQ(rig.index.size(), ref.size());
  for (auto& [sig, ppa] : ref) {
    rig.maybe_gc();
    ASSERT_EQ(rig.index.put(sig, ppa + 100), Status::kOk) << sig;
    ppa += 100;
  }
  // An update is not an insert: the key count must not drift.
  EXPECT_EQ(rig.index.size(), ref.size());
  rig.expect_no_lost_writebacks();
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

TEST(RhikOverflow, ScanCoversOverflowRecords) {
  Rig rig(overflow_config());
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(13);
  for (int i = 0; i < 2500; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  ASSERT_GT(rig.index.op_stats().overflow_inserts, 0u);
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  ASSERT_EQ(rig.index.scan([&](std::uint64_t sig, flash::Ppa ppa) {
    seen[sig] = ppa;
  }), Status::kOk);
  EXPECT_EQ(seen, ref);
}

TEST(RhikOverflow, ResizeDrainsOverflowPages) {
  // With the normal threshold, resizing halves occupancy; the split
  // should land (almost) everything back in primaries.
  RhikConfig cfg;
  cfg.local_overflow = true;
  cfg.hop_range = 8;          // collide occasionally
  cfg.resize_threshold = 0.8; // and resize normally
  Rig rig(cfg);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(17);
  while (rig.index.op_stats().resizes < 3) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, 1))) ref[sig] = 1;
  }
  EXPECT_EQ(rig.index.op_stats().collision_aborts, 0u);
  for (const auto& [sig, _] : ref) {
    EXPECT_TRUE(rig.index.get(sig).has_value()) << sig;
  }
}

TEST(RhikOverflow, SerializationRoundTripsOverflowDirectory) {
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::tiny(128),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 2);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Bytes image;
  RhikConfig cfg = overflow_config();
  {
    RhikIndex index(&nand, &alloc, cfg, 1 << 20);
    Rng rng(19);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t sig = rng.next();
      if (ok(index.put(sig, i))) ref[sig] = i;
    }
    ASSERT_GT(index.op_stats().overflow_inserts, 0u);
    ASSERT_EQ(index.flush(), Status::kOk);
    EXPECT_GT(index.overflow_pages(), 0u);
    image = index.serialize_directory();
  }
  RhikIndex restored(&nand, &alloc, cfg, 1 << 20);
  ASSERT_EQ(restored.load_directory(image), Status::kOk);
  EXPECT_EQ(restored.size(), ref.size());
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(restored.get(sig).has_value()) << sig;
    EXPECT_EQ(*restored.get(sig), ppa);
  }
}

TEST(RhikOverflow, GcRelocatesOverflowPages) {
  Rig rig(overflow_config(), /*cache_bytes=*/4096, /*blocks=*/64);
  Rng rng(23);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int i = 0; i < 4000; ++i) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  ASSERT_GT(rig.gc.stats().blocks_reclaimed, 0u);
  rig.expect_no_lost_writebacks();
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

}  // namespace
}  // namespace rhik::index
