// Unit tests for the log-structured page allocator (streams, extents,
// victim selection, liveness accounting, GC reserve).
#include <gtest/gtest.h>

#include "common/sim_clock.hpp"
#include "ftl/page_allocator.hpp"

namespace rhik::ftl {
namespace {

using flash::Geometry;
using flash::NandLatency;

class AllocTest : public ::testing::Test {
 protected:
  AllocTest() : nand_(Geometry::tiny(8), NandLatency::kvemu_defaults(), &clock_) {}
  SimClock clock_;
  flash::NandDevice nand_;
};

TEST_F(AllocTest, SequentialWithinBlock) {
  PageAllocator alloc(&nand_, 2);
  auto p0 = alloc.allocate(Stream::kData);
  auto p1 = alloc.allocate(Stream::kData);
  ASSERT_TRUE(p0 && p1);
  EXPECT_EQ(*p1, *p0 + 1);
  const auto& g = nand_.geometry();
  EXPECT_EQ(flash::ppa_block(g, *p0), flash::ppa_block(g, *p1));
}

TEST_F(AllocTest, StreamsUseDistinctBlocks) {
  PageAllocator alloc(&nand_, 2);
  auto d = alloc.allocate(Stream::kData);
  auto i = alloc.allocate(Stream::kIndex);
  ASSERT_TRUE(d && i);
  const auto& g = nand_.geometry();
  EXPECT_NE(flash::ppa_block(g, *d), flash::ppa_block(g, *i));
  EXPECT_EQ(alloc.block_stream(flash::ppa_block(g, *d)), Stream::kData);
  EXPECT_EQ(alloc.block_stream(flash::ppa_block(g, *i)), Stream::kIndex);
}

TEST_F(AllocTest, BlockSealsWhenFull) {
  PageAllocator alloc(&nand_, 2);
  const auto& g = nand_.geometry();
  std::uint32_t first_block = UINT32_MAX;
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    auto ppa = alloc.allocate(Stream::kData);
    ASSERT_TRUE(ppa);
    if (first_block == UINT32_MAX) first_block = flash::ppa_block(g, *ppa);
  }
  EXPECT_TRUE(alloc.is_sealed(first_block));
  auto next = alloc.allocate(Stream::kData);
  ASSERT_TRUE(next);
  EXPECT_NE(flash::ppa_block(g, *next), first_block);
}

TEST_F(AllocTest, ExtentContiguousWithinOneBlock) {
  PageAllocator alloc(&nand_, 2);
  const auto& g = nand_.geometry();
  // Consume most of the active block, then ask for an extent that cannot
  // fit: the tail is abandoned and the extent starts a fresh block.
  for (std::uint32_t p = 0; p < g.pages_per_block - 2; ++p) {
    ASSERT_TRUE(alloc.allocate(Stream::kData));
  }
  auto base = alloc.allocate_extent(Stream::kData, 5);
  ASSERT_TRUE(base);
  EXPECT_EQ(flash::ppa_page(g, *base), 0u);  // fresh block
  // The 5 pages are physically consecutive and inside one block.
  EXPECT_EQ(flash::ppa_block(g, *base), flash::ppa_block(g, *base + 4));
}

TEST_F(AllocTest, ExtentLargerThanBlockRejected) {
  PageAllocator alloc(&nand_, 2);
  EXPECT_EQ(alloc.allocate_extent(Stream::kData, nand_.geometry().pages_per_block + 1)
                .status(),
            Status::kInvalidArgument);
  EXPECT_EQ(alloc.allocate_extent(Stream::kData, 0).status(),
            Status::kInvalidArgument);
}

TEST_F(AllocTest, GcReserveEnforced) {
  PageAllocator alloc(&nand_, 4);  // 8 blocks total, 4 reserved
  const auto& g = nand_.geometry();
  // Normal allocation can open only 4 blocks.
  for (std::uint32_t b = 0; b < 4; ++b) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      ASSERT_TRUE(alloc.allocate(Stream::kData)) << b << ":" << p;
    }
  }
  EXPECT_EQ(alloc.allocate(Stream::kData).status(), Status::kDeviceFull);
  // GC-mode allocation can dip into the reserve.
  EXPECT_TRUE(alloc.allocate(Stream::kData, /*for_gc=*/true));
}

TEST_F(AllocTest, LiveAccounting) {
  PageAllocator alloc(&nand_, 2);
  auto ppa = alloc.allocate(Stream::kData);
  ASSERT_TRUE(ppa);
  const std::uint32_t blk = flash::ppa_block(nand_.geometry(), *ppa);
  alloc.add_live(*ppa, 500);
  alloc.add_live(*ppa, 300);
  EXPECT_EQ(alloc.block_live_bytes(blk), 800u);
  alloc.sub_live(*ppa, 300);
  EXPECT_EQ(alloc.block_live_bytes(blk), 500u);
  alloc.sub_live(*ppa, 10000);  // clamps at zero
  EXPECT_EQ(alloc.block_live_bytes(blk), 0u);
}

TEST_F(AllocTest, VictimIsSealedBlockWithLeastLive) {
  PageAllocator alloc(&nand_, 2);
  const auto& g = nand_.geometry();
  EXPECT_FALSE(alloc.pick_victim().has_value());  // nothing sealed yet

  // Fill two blocks with different live amounts.
  std::uint32_t blocks[2];
  for (int b = 0; b < 2; ++b) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      auto ppa = alloc.allocate(Stream::kData);
      ASSERT_TRUE(ppa);
      blocks[b] = flash::ppa_block(g, *ppa);
      alloc.add_live(*ppa, b == 0 ? 10 : 1000);
    }
  }
  const auto victim = alloc.pick_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, blocks[0]);
}

TEST_F(AllocTest, ReclaimReturnsBlockToPool) {
  PageAllocator alloc(&nand_, 2);
  const auto& g = nand_.geometry();
  const std::uint32_t before = alloc.free_blocks();
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    Bytes buf(8, 1);
    auto ppa = alloc.allocate(Stream::kData);
    ASSERT_TRUE(ppa);
    ASSERT_EQ(nand_.program_page(*ppa, buf), Status::kOk);
  }
  const auto victim = alloc.pick_victim();
  ASSERT_TRUE(victim);
  ASSERT_EQ(alloc.reclaim_block(*victim), Status::kOk);
  EXPECT_EQ(alloc.free_blocks(), before);  // block returned
  EXPECT_TRUE(alloc.is_free(*victim));
  EXPECT_EQ(nand_.erase_count(*victim), 1u);
}

TEST_F(AllocTest, ReclaimRejectsNonSealed) {
  PageAllocator alloc(&nand_, 2);
  auto ppa = alloc.allocate(Stream::kData);
  ASSERT_TRUE(ppa);
  const std::uint32_t blk = flash::ppa_block(nand_.geometry(), *ppa);
  EXPECT_EQ(alloc.reclaim_block(blk), Status::kInvalidArgument);  // active
  EXPECT_EQ(alloc.reclaim_block(999), Status::kInvalidArgument);
}

TEST_F(AllocTest, PagesUsedTracksHandout) {
  PageAllocator alloc(&nand_, 2);
  auto ppa = alloc.allocate(Stream::kData);
  ASSERT_TRUE(ppa);
  const std::uint32_t blk = flash::ppa_block(nand_.geometry(), *ppa);
  EXPECT_EQ(alloc.pages_used(blk), 1u);
  ASSERT_TRUE(alloc.allocate_extent(Stream::kData, 3));
  EXPECT_EQ(alloc.pages_used(blk), 4u);
}

TEST_F(AllocTest, NeedsGcSignal) {
  PageAllocator alloc(&nand_, 4);
  EXPECT_FALSE(alloc.needs_gc());
  const auto& g = nand_.geometry();
  for (std::uint32_t b = 0; b < 4; ++b) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      ASSERT_TRUE(alloc.allocate(Stream::kData));
    }
  }
  EXPECT_TRUE(alloc.needs_gc());
}

TEST_F(AllocTest, FreeBytesEstimateDecreases) {
  PageAllocator alloc(&nand_, 2);
  const std::uint64_t e0 = alloc.free_bytes_estimate();
  ASSERT_TRUE(alloc.allocate(Stream::kData));
  const std::uint64_t e1 = alloc.free_bytes_estimate();
  EXPECT_LT(e1, e0);
}

}  // namespace
}  // namespace rhik::ftl
