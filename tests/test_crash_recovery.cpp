// Power-cut fault injection × recovery: torn head pages truncated by
// CRC, incomplete extents dropped, interrupted GC and resize tolerated,
// sharded array recovery — capped by a randomized crash-point harness
// that cuts power at hundreds of random operations and verifies every
// key against its durability floor.
//
// Durability contract being checked (matches real hardware with a RAM
// write buffer): an acknowledged operation is guaranteed durable once a
// flush() has succeeded after it; between flushes, recovery may surface
// any acknowledged state at-or-after the last flush — never an older
// one, never a made-up one, and a deleted-and-flushed key never
// resurrects.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flash/fault_injector.hpp"
#include "kvssd/device.hpp"
#include "kvssd/recovery.hpp"
#include "shard/sharded_kvssd.hpp"
#include "test_seed.hpp"

namespace rhik::kvssd {
namespace {

DeviceConfig crash_config() {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(64);  // 4 MiB: GC pressure comes fast
  cfg.dram_cache_bytes = 32 * 1024;
  return cfg;
}

ByteSpan key(const std::string& s) { return as_bytes(s); }

// --- Deterministic torn-write scenarios --------------------------------------

TEST(CrashRecovery, TornHeadPageTruncatedByCrc) {
  auto dev = std::make_unique<KvssdDevice>(crash_config());
  ASSERT_EQ(dev->put(key("durable"), key(std::string(300, 'd'))), Status::kOk);
  ASSERT_EQ(dev->flush(), Status::kOk);

  // The next data-page program is garbage-torn: a buffered pair's page
  // dies mid-program with random bytes in data AND spare — without the
  // CRC, those spare bytes could decode as any tag.
  flash::FaultInjector fi(21);
  dev->nand().set_fault_injector(&fi);
  ASSERT_EQ(dev->put(key("victim"), key(std::string(200, 'v'))), Status::kOk);
  fi.arm_after(1, flash::TornWritePolicy::kGarbage);
  EXPECT_NE(dev->flush(), Status::kOk);  // the cut kills the flush
  EXPECT_TRUE(fi.powered_off());

  auto nand = dev->release_nand();
  dev.reset();
  RecoveryStats stats;
  auto recovered = KvssdDevice::recover(crash_config(), std::move(nand), &stats);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_GE(stats.torn_pages_dropped, 1u);  // detected and truncated, not parsed

  Bytes value;
  EXPECT_EQ((*recovered)->get(key("durable"), &value), Status::kOk);
  EXPECT_EQ((*recovered)->get(key("victim"), &value), Status::kNotFound);
}

TEST(CrashRecovery, PartialTearWithIntactSpareStillDetected) {
  // The nastier torn-write flavour: the spare area (tag + seq + CRC of
  // the INTENDED image) lands intact while the data area is cut short.
  // Only the CRC check can reject this page.
  auto dev = std::make_unique<KvssdDevice>(crash_config());
  ASSERT_EQ(dev->put(key("before"), key(std::string(500, 'b'))), Status::kOk);
  ASSERT_EQ(dev->flush(), Status::kOk);

  flash::FaultInjector fi(1235);  // seed picked so the cut bites mid-data
  dev->nand().set_fault_injector(&fi);
  ASSERT_EQ(dev->put(key("torn"), key(std::string(2000, 't'))), Status::kOk);
  fi.arm_after(1, flash::TornWritePolicy::kPartial);
  EXPECT_NE(dev->flush(), Status::kOk);

  auto nand = dev->release_nand();
  dev.reset();
  RecoveryStats stats;
  auto recovered = KvssdDevice::recover(crash_config(), std::move(nand), &stats);
  ASSERT_TRUE(recovered.has_value());

  Bytes value;
  EXPECT_EQ((*recovered)->get(key("before"), &value), Status::kOk);
  // The torn pair either vanished with its page or — if the random cut
  // happened to land in the page's 0xFF padding — survived complete.
  // What it must never do is come back mangled.
  const Status st = (*recovered)->get(key("torn"), &value);
  if (st == Status::kOk) {
    EXPECT_EQ(rhik::to_string(value), std::string(2000, 't'));
  } else {
    EXPECT_EQ(st, Status::kNotFound);
    EXPECT_GE(stats.torn_pages_dropped, 1u);
  }
}

TEST(CrashRecovery, IncompleteExtentDroppedOldVersionWins) {
  auto dev = std::make_unique<KvssdDevice>(crash_config());
  ASSERT_EQ(dev->put(key("k"), key("small-v1")), Status::kOk);
  ASSERT_EQ(dev->flush(), Status::kOk);

  // Overwrite with a multi-page extent and cut power on the SECOND
  // destructive op: the head page programs fine, its first continuation
  // page is torn. The head is CRC-valid and newer — but adopting it
  // would serve a truncated value, so recovery must drop the extent and
  // let v1 win.
  flash::FaultInjector fi(7);
  dev->nand().set_fault_injector(&fi);
  fi.arm_after(2, flash::TornWritePolicy::kGarbage);
  EXPECT_NE(dev->put(key("k"), key(std::string(9000, 'X'))), Status::kOk);
  EXPECT_TRUE(fi.powered_off());

  auto nand = dev->release_nand();
  dev.reset();
  RecoveryStats stats;
  auto recovered = KvssdDevice::recover(crash_config(), std::move(nand), &stats);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(stats.incomplete_extents_dropped, 1u);

  Bytes value;
  ASSERT_EQ((*recovered)->get(key("k"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "small-v1");
}

TEST(CrashRecovery, CutDuringGcKeepsFlushedStateIntact) {
  auto dev = std::make_unique<KvssdDevice>(crash_config());
  std::map<std::string, std::string> ref;
  Rng rng(17);
  // Build up stale churn so GC has real relocation work, then flush:
  // everything in ref is now the durability floor.
  for (int i = 0; i < 4000; ++i) {
    const std::string k = "g" + std::to_string(rng.next_below(80));
    const std::string v(rng.next_range(150, 900), static_cast<char>('a' + i % 26));
    ASSERT_EQ(dev->put(key(k), key(v)), Status::kOk) << i;
    ref[k] = v;
  }
  ASSERT_EQ(dev->flush(), Status::kOk);

  // Kill power inside the collector: relocation programs + the victim
  // erase are all destructive ops the countdown can land on.
  flash::FaultInjector fi(4242);
  dev->nand().set_fault_injector(&fi);
  fi.arm_after(5);
  const Status gc_st =
      dev->gc().collect(dev->config().geometry.num_blocks);  // unreachable target
  EXPECT_NE(gc_st, Status::kOk);
  EXPECT_TRUE(fi.powered_off());

  auto nand = dev->release_nand();
  dev.reset();
  auto recovered = KvssdDevice::recover(crash_config(), std::move(nand));
  ASSERT_TRUE(recovered.has_value());
  for (const auto& [k, v] : ref) {
    Bytes value;
    ASSERT_EQ((*recovered)->get(key(k), &value), Status::kOk) << k;
    EXPECT_EQ(rhik::to_string(value), v) << k;
  }
}

TEST(CrashRecovery, CutInsideBackgroundQuantumKeepsFloor) {
  // Incremental GC stretches one victim across many quanta, so a power
  // cut routinely lands in the half-collected window: some pairs already
  // copied to the cold stream (index repointed), the victim not yet
  // erased. Recovery then sees BOTH copies and must resolve every
  // duplicate by sequence number without losing a single flushed key.
  DeviceConfig cfg = crash_config();
  cfg.gc.background_free_blocks = cfg.geometry.num_blocks;  // always pending
  cfg.gc.quantum_pages = 2;  // 16-page victims span ~8 quanta: wide window
  auto dev = std::make_unique<KvssdDevice>(cfg);
  std::map<std::string, std::string> ref;
  Rng rng(23);
  // Churn through the batch API: per-op puts would tick a GC quantum
  // each (the collector outruns the write stream and drains every stale
  // block before we can observe it), but a batch ticks once at the end —
  // so the stale blocks it creates are still standing afterwards.
  std::vector<KvssdDevice::BatchOp> batch(4000);
  for (auto& op : batch) {
    const std::string k = "b" + std::to_string(rng.next_below(80));
    const std::string v(rng.next_range(150, 900),
                        static_cast<char>('a' + rng.next_below(26)));
    op.key = Bytes(k.begin(), k.end());
    op.value = Bytes(v.begin(), v.end());
    ref[k] = v;
  }
  ASSERT_EQ(dev->execute_batch(batch), Status::kOk);
  for (const auto& op : batch) ASSERT_EQ(op.status, Status::kOk);
  ASSERT_EQ(dev->flush(), Status::kOk);  // ref is now the durability floor

  // Pump idle-window quanta until a victim is provably mid-flight.
  bool in_flight = dev->gc().background_in_progress();
  for (int i = 0; i < 1000 && !in_flight; ++i) {
    (void)dev->pump_background();
    in_flight = dev->gc().background_in_progress();
  }
  ASSERT_TRUE(in_flight);

  // Cut power on the next destructive op the quanta issue: a relocation
  // page program, or the victim erase at the end of the last quantum.
  flash::FaultInjector fi(777);
  dev->nand().set_fault_injector(&fi);
  fi.arm_after(1);
  for (int i = 0; i < 1000 && !fi.powered_off(); ++i) {
    (void)dev->pump_background();
  }
  EXPECT_TRUE(fi.powered_off());

  auto nand = dev->release_nand();
  dev.reset();
  auto recovered = KvssdDevice::recover(cfg, std::move(nand));
  ASSERT_TRUE(recovered.has_value());
  for (const auto& [k, v] : ref) {
    Bytes value;
    ASSERT_EQ((*recovered)->get(key(k), &value), Status::kOk) << k;
    EXPECT_EQ(rhik::to_string(value), v) << k;
  }
}

TEST(CrashRecovery, CutDuringPreEraseJournalFlushKeepsFloor) {
  // With checkpointing on, every victim erase is preceded by a journal
  // flush (store-first: data pages, then the journal page) so GC
  // repoints are durable before the old locations vanish. Walk the cut
  // across that window — the journal page program itself, the erase
  // right after it, and one op beyond — and require the floor intact and
  // unflushed ops all-or-nothing at every landing point.
  for (const std::uint32_t arm : {1u, 2u, 3u}) {
    DeviceConfig cfg = crash_config();
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.slot_blocks = 2;
    cfg.checkpoint.journal_blocks = 2;
    cfg.checkpoint.dirty_pages = 48;
    cfg.checkpoint.pump_pages = 4;
    cfg.gc.background_free_blocks = 0;  // keep collect_one() synchronous
    auto dev = std::make_unique<KvssdDevice>(cfg);
    std::map<std::string, std::string> ref;
    Rng rng(29);
    for (int i = 0; i < 2000; ++i) {
      const std::string k = "j" + std::to_string(rng.next_below(60));
      const std::string v(rng.next_range(150, 900),
                          static_cast<char>('a' + i % 26));
      ASSERT_EQ(dev->put(key(k), key(v)), Status::kOk) << i;
      ref[k] = v;
    }
    ASSERT_EQ(dev->flush(), Status::kOk);  // journal buffer drained, floor set

    // Buffer fresh journal records so the pre-erase flush has a page to
    // program. These keys are acked but unflushed: recovery may keep or
    // drop them, but must never mangle them.
    std::map<std::string, std::string> pending;
    for (int i = 0; i < 8; ++i) {
      const std::string k = "jp" + std::to_string(i);
      const std::string v = "pending-" + std::to_string(i);
      ASSERT_EQ(dev->put(key(k), key(v)), Status::kOk);
      pending[k] = v;
    }

    flash::FaultInjector fi(888 + arm);
    dev->nand().set_fault_injector(&fi);
    fi.arm_after(arm);
    for (int i = 0; i < 64 && !fi.powered_off(); ++i) {
      (void)dev->gc().collect_one();
    }
    EXPECT_TRUE(fi.powered_off()) << "arm=" << arm;

    auto nand = dev->release_nand();
    dev.reset();
    RecoveryStats stats;
    auto recovered = KvssdDevice::recover(cfg, std::move(nand), &stats);
    ASSERT_TRUE(recovered.has_value()) << "arm=" << arm;
    for (const auto& [k, v] : ref) {
      Bytes value;
      ASSERT_EQ((*recovered)->get(key(k), &value), Status::kOk)
          << k << " arm=" << arm;
      EXPECT_EQ(rhik::to_string(value), v) << k << " arm=" << arm;
    }
    for (const auto& [k, v] : pending) {
      Bytes value;
      const Status st = (*recovered)->get(key(k), &value);
      if (st == Status::kOk) {
        EXPECT_EQ(rhik::to_string(value), v) << k << " arm=" << arm;
      } else {
        EXPECT_EQ(st, Status::kNotFound) << k << " arm=" << arm;
      }
    }
  }
}

TEST(CrashRecovery, CutDuringResizeStormKeepsFlushedKeys) {
  // Tiny values drive the index hard: with anticipated_keys = 0 the
  // directory starts at one entry and doubles repeatedly as keys pour
  // in, so cuts keep landing around record-page writes and migrations.
  DeviceConfig cfg = crash_config();
  auto dev = std::make_unique<KvssdDevice>(cfg);
  flash::FaultInjector fi(31337);
  dev->nand().set_fault_injector(&fi);
  Rng rng(99);

  std::map<std::string, std::string> floor;  // flushed state
  std::uint64_t resizes_seen = 0;
  int next_key = 0;
  for (int life = 0; life < 6; ++life) {
    const std::uint64_t resizes_at_start = dev->index().op_stats().resizes;
    const int life_start = next_key;  // keys acked in prior lives but never
                                      // flushed died with the cut — only keys
                                      // acked since recovery can join the floor
    fi.arm_after(rng.next_range(20, 200));
    int since_flush = 0;
    while (!fi.powered_off()) {
      const std::string k = "r" + std::to_string(next_key++);
      const std::string v = "val-" + k;
      if (dev->put(key(k), key(v)) != Status::kOk) continue;
      if (++since_flush >= 50 && ok(dev->flush())) {
        since_flush = 0;
        for (int i = life_start; i < next_key; ++i) {
          const std::string fk = "r" + std::to_string(i);
          floor[fk] = "val-" + fk;
        }
      }
    }
    resizes_seen += dev->index().op_stats().resizes - resizes_at_start;

    auto nand = dev->release_nand();
    dev.reset();
    RecoveryStats rs;
    auto recovered = KvssdDevice::recover(cfg, std::move(nand), &rs);
    ASSERT_TRUE(recovered.has_value()) << "life " << life;
    dev = std::move(recovered).value();
    // Without the dead-weight sweep the stale index generations from
    // these resize storms wedge the device within a few lives and the
    // index rebuild starts shedding entries on failed write-backs.
    EXPECT_GT(rs.dead_blocks_reclaimed, 0u) << "life " << life;
    for (const auto& [k, v] : floor) {
      Bytes value;
      ASSERT_EQ(dev->get(key(k), &value), Status::kOk) << k << " life " << life;
      EXPECT_EQ(rhik::to_string(value), v);
    }
  }
  // The workload must actually have been resizing when cuts landed.
  EXPECT_GT(resizes_seen, 0u);
  EXPECT_GT(floor.size(), 200u);
}

TEST(CrashRecovery, CutInsideIndexMigrationQuantumKeepsFloor) {
  // Incremental doubling drains in background quanta, so a cut routinely
  // lands between bucket migrations: the resize record journaled, some
  // buckets' migrate records durable, others not. Walk the cut across
  // the first destructive ops of the drain (record-page write-backs,
  // journal flushes, directory checkpoints) and require the floor intact
  // whichever restart path the surviving state allows.
  for (const std::uint32_t arm : {1u, 2u, 3u, 4u}) {
    DeviceConfig cfg = crash_config();
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.slot_blocks = 2;
    cfg.checkpoint.journal_blocks = 2;
    cfg.checkpoint.dirty_pages = 48;
    cfg.checkpoint.pump_pages = 4;
    cfg.rhik.incremental_resize = true;  // pin, regardless of RHIK_STW_RESIZE
    cfg.rhik.incremental_batch = 1;      // one bucket per quantum: wide window
    auto dev = std::make_unique<KvssdDevice>(cfg);
    std::map<std::string, std::string> ref;
    int next = 0;
    for (int i = 0; i < 600; ++i) {
      const std::string k = "m" + std::to_string(next++);
      ASSERT_EQ(dev->put(key(k), key("mv-" + k)), Status::kOk);
      ref[k] = "mv-" + k;
    }
    ASSERT_EQ(dev->flush(), Status::kOk);  // drains any window: clean floor
    ASSERT_FALSE(dev->index().maintenance_active());

    // Acked-but-unflushed puts until a doubling opens its window.
    std::map<std::string, std::string> pending;
    while (!dev->index().maintenance_active()) {
      const std::string k = "m" + std::to_string(next++);
      ASSERT_EQ(dev->put(key(k), key("mv-" + k)), Status::kOk);
      pending[k] = "mv-" + k;
    }

    flash::FaultInjector fi(4100 + arm);
    dev->nand().set_fault_injector(&fi);
    fi.arm_after(arm);
    for (int i = 0; i < 5000 && !fi.powered_off(); ++i) {
      (void)dev->pump_background();
    }
    EXPECT_TRUE(fi.powered_off()) << "arm=" << arm;

    auto nand = dev->release_nand();
    dev.reset();
    RecoveryStats rs;
    auto recovered = KvssdDevice::recover(cfg, std::move(nand), &rs);
    ASSERT_TRUE(recovered.has_value()) << "arm=" << arm;
    dev = std::move(recovered).value();
    EXPECT_EQ(rs.checkpoint_restored + rs.full_scan_fallback, 1u);
    // A fast restore may legitimately re-open the window (the cut left
    // it half-drained on flash); the restored device finishes it in the
    // background, exactly like the live one would.
    for (int i = 0; i < 20000 && dev->index().maintenance_active(); ++i) {
      (void)dev->pump_background();
    }
    EXPECT_FALSE(dev->index().maintenance_active()) << "arm=" << arm;
    for (const auto& [k, v] : ref) {
      Bytes value;
      ASSERT_EQ(dev->get(key(k), &value), Status::kOk) << k << " arm=" << arm;
      EXPECT_EQ(rhik::to_string(value), v) << k << " arm=" << arm;
    }
    for (const auto& [k, v] : pending) {
      Bytes value;
      const Status st = dev->get(key(k), &value);
      if (st == Status::kOk) {
        EXPECT_EQ(rhik::to_string(value), v) << k << " arm=" << arm;
      } else {
        EXPECT_EQ(st, Status::kNotFound) << k << " arm=" << arm;
      }
    }
  }
}

TEST(CrashRecovery, FastRestoreReplaysAcrossResizeWithoutFullScan) {
  // Acceptance check for generation-tagged journaling: a doubling that
  // happens entirely AFTER the last checkpoint rides on the journal —
  // the resize record, per-bucket migrate records and generation-tagged
  // repoints replay on restart with no full-scan fallback.
  DeviceConfig cfg = crash_config();
  cfg.checkpoint.enabled = true;
  cfg.checkpoint.slot_blocks = 2;
  cfg.checkpoint.journal_blocks = 2;
  cfg.checkpoint.dirty_pages = 1u << 30;  // explicit checkpoints only
  cfg.rhik.incremental_resize = true;  // pin, regardless of RHIK_STW_RESIZE
  cfg.rhik.incremental_batch = 1;
  auto dev = std::make_unique<KvssdDevice>(cfg);
  std::map<std::string, std::string> ref;
  int next = 0;
  const auto put_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const std::string k = "f" + std::to_string(next++);
      ASSERT_EQ(dev->put(key(k), key("fv-" + k)), Status::kOk);
      ref[k] = "fv-" + k;
    }
  };
  put_n(200);
  ASSERT_EQ(dev->flush(), Status::kOk);
  ASSERT_EQ(dev->checkpoint_now(), Status::kOk);  // durable image, clean journal

  // Grow through a full doubling, drained by the background pump.
  const std::uint64_t resizes0 = dev->index().op_stats().resizes;
  while (dev->index().op_stats().resizes == resizes0 ||
         dev->index().maintenance_active()) {
    put_n(10);
    (void)dev->pump_background();
  }
  ASSERT_EQ(dev->flush(), Status::kOk);  // journal durable, not rotated

  auto nand = dev->release_nand();
  dev.reset();
  RecoveryStats rs;
  auto recovered = KvssdDevice::recover(cfg, std::move(nand), &rs);
  ASSERT_TRUE(recovered.has_value());
  dev = std::move(recovered).value();
  EXPECT_EQ(rs.checkpoint_restored, 1u);
  EXPECT_EQ(rs.full_scan_fallback, 0u);  // the doubling rode on the journal
  EXPECT_GT(rs.journal_records_replayed, 0u);
  for (const auto& [k, v] : ref) {
    Bytes value;
    ASSERT_EQ(dev->get(key(k), &value), Status::kOk) << k;
    EXPECT_EQ(rhik::to_string(value), v) << k;
  }
}

// --- Sharded array recovery --------------------------------------------------

TEST(ShardedRecovery, FlushedStateSurvivesAcrossAllShards) {
  shard::ShardedConfig cfg;
  cfg.num_shards = 4;
  cfg.device = crash_config();
  auto arr = std::make_unique<shard::ShardedKvssd>(cfg);

  const auto value_of = [](int i) {
    std::string v = "value-" + std::to_string(i);
    v.resize(400, 'x');  // big enough that shards span several blocks
    return v;
  };
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(arr->put(key("key-" + std::to_string(i)), key(value_of(i))),
              Status::kOk);
  }
  for (int i = 0; i < 300; i += 3) {
    ASSERT_EQ(arr->del(key("key-" + std::to_string(i))), Status::kOk);
  }
  ASSERT_EQ(arr->flush(), Status::kOk);
  // Post-flush tail: acked but possibly still in shard RAM buffers.
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(arr->put(key("tail-" + std::to_string(i)), key("tail-value")),
              Status::kOk);
  }

  auto nands = arr->release_nands();
  ASSERT_EQ(nands.size(), 4u);
  arr.reset();

  RecoveryStats stats;
  auto recovered =
      shard::ShardedKvssd::recover(cfg, std::move(nands), &stats);
  ASSERT_TRUE(recovered.has_value());
  arr = std::move(recovered).value();

  for (int i = 0; i < 300; ++i) {
    Bytes value;
    const Status st = arr->get(key("key-" + std::to_string(i)), &value);
    if (i % 3 == 0) {
      EXPECT_EQ(st, Status::kNotFound) << i;  // deletion stayed deleted
    } else {
      ASSERT_EQ(st, Status::kOk) << i;
      EXPECT_EQ(rhik::to_string(value), value_of(i));
    }
  }
  for (int i = 0; i < 40; ++i) {
    Bytes value;
    const Status st = arr->get(key("tail-" + std::to_string(i)), &value);
    if (st == Status::kOk) {
      EXPECT_EQ(rhik::to_string(value), "tail-value");
    } else {
      EXPECT_EQ(st, Status::kNotFound);  // lost with a shard's RAM buffer
    }
  }

  // Merged stats cover every shard's scan.
  EXPECT_GE(stats.keys_recovered, 200u);
  EXPECT_GE(stats.tombstones_seen, 100u);
  EXPECT_GT(stats.blocks_adopted, 4u);  // more than one block per shard

  // The array stays fully operational.
  ASSERT_EQ(arr->put(key("post"), key("recovery")), Status::kOk);
  Bytes value;
  ASSERT_EQ(arr->get(key("post"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "recovery");
}

TEST(ShardedRecovery, ShardClocksReseededToMax) {
  shard::ShardedConfig cfg;
  cfg.num_shards = 3;
  cfg.device = crash_config();
  auto arr = std::make_unique<shard::ShardedKvssd>(cfg);
  // Skewed load → skewed shard clocks at power-off.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(arr->put(key("skew-" + std::to_string(i % 17)),
                       key(std::string(600, 's'))),
              Status::kOk);
  }
  ASSERT_EQ(arr->flush(), Status::kOk);

  auto nands = arr->release_nands();
  arr.reset();
  auto recovered = shard::ShardedKvssd::recover(cfg, std::move(nands));
  ASSERT_TRUE(recovered.has_value());
  arr = std::move(recovered).value();

  // Quiescent right after recovery: every shard clock sits at the max
  // adopted clock, so array time == each shard's time.
  const SimTime t0 = arr->shard_device(0).clock().now();
  EXPECT_GT(t0, 0u);
  for (std::uint32_t s = 1; s < arr->num_shards(); ++s) {
    EXPECT_EQ(arr->shard_device(s).clock().now(), t0) << "shard " << s;
  }
  EXPECT_EQ(arr->sim_time(), t0);
}

TEST(ShardedRecovery, ShardCountMismatchRejected) {
  shard::ShardedConfig cfg;
  cfg.num_shards = 4;
  cfg.device = crash_config();
  auto arr = std::make_unique<shard::ShardedKvssd>(cfg);
  ASSERT_EQ(arr->flush(), Status::kOk);
  auto nands = arr->release_nands();
  arr.reset();

  shard::ShardedConfig wrong = cfg;
  wrong.num_shards = 3;
  auto recovered = shard::ShardedKvssd::recover(wrong, std::move(nands));
  EXPECT_FALSE(recovered.has_value());
  EXPECT_EQ(recovered.status(), Status::kInvalidArgument);
}

TEST(ShardedRecovery, PowerCutOnOneShardRecoversArrayWide) {
  shard::ShardedConfig cfg;
  cfg.num_shards = 4;
  cfg.device = crash_config();
  auto arr = std::make_unique<shard::ShardedKvssd>(cfg);

  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(arr->put(key("floor-" + std::to_string(i)),
                       key("fv-" + std::to_string(i))),
              Status::kOk);
  }
  ASSERT_EQ(arr->flush(), Status::kOk);  // quiescent: safe to poke a shard

  flash::FaultInjector fi(77);
  arr->shard_device(2).nand().set_fault_injector(&fi);
  fi.arm_after(5);
  // Keep writing; ops routed to shard 2 start failing once its power
  // dies, the other shards keep acking.
  for (int i = 0; i < 400; ++i) {
    (void)arr->put(key("burst-" + std::to_string(i)), key(std::string(300, 'b')));
  }
  EXPECT_EQ(fi.stats().power_cuts, 1u);

  auto nands = arr->release_nands();
  arr.reset();
  RecoveryStats stats;
  auto recovered = shard::ShardedKvssd::recover(cfg, std::move(nands), &stats);
  ASSERT_TRUE(recovered.has_value());
  arr = std::move(recovered).value();

  for (int i = 0; i < 200; ++i) {
    Bytes value;
    ASSERT_EQ(arr->get(key("floor-" + std::to_string(i)), &value), Status::kOk) << i;
    EXPECT_EQ(rhik::to_string(value), "fv-" + std::to_string(i));
  }
}

// --- Randomized crash-point harness ------------------------------------------

/// Per-key durability model. `floor` is the key's state at the last
/// successful flush (nullopt = absent); `pending` every acknowledged
/// state since, oldest first; `maybe` states whose operation FAILED at
/// the power cut — unacknowledged, so they may or may not be durable
/// (e.g. a partial tear that landed entirely in page padding).
struct KeyHistory {
  std::optional<std::string> floor;
  std::vector<std::optional<std::string>> pending;
  std::vector<std::optional<std::string>> maybe;
};

std::string make_value(const std::string& k, int life, int op, std::size_t len) {
  std::string v = k + "#" + std::to_string(life) + "." + std::to_string(op) + ":";
  if (v.size() < len) v.resize(len, static_cast<char>('a' + op % 26));
  return v;
}

/// What the randomized harness accumulated across all its lives; the
/// meta-assertions differ between the plain and the checkpointed run.
struct HarnessTotals {
  std::uint64_t gc_runs = 0;
  std::uint64_t live_resizes = 0;
  std::uint64_t torn_dropped = 0;
  std::uint64_t extents_dropped = 0;
  std::uint64_t fast_restores = 0;
  std::uint64_t full_scans = 0;
  std::uint64_t journal_records_replayed = 0;
  std::uint64_t torn_injected = 0;
  std::uint64_t power_cuts = 0;
  std::size_t keys_touched = 0;
};

void run_crash_harness(const DeviceConfig& cfg, int crash_points,
                       HarnessTotals* totals) {
  const std::uint64_t seed = rhik::test::harness_seed(0xC0FFEE);
  Rng rng(seed);
  // XORing with (default_rng ^ default_fi) keeps the historical injector
  // seed for the default run while still varying it with RHIK_TEST_SEED.
  flash::FaultInjector fi(seed ^ (0xC0FFEEULL ^ 0xFA17ULL));

  auto dev = std::make_unique<KvssdDevice>(cfg);
  dev->nand().set_fault_injector(&fi);

  std::map<std::string, KeyHistory> model;
  std::uint64_t universe = 40;  // grows every life → keeps forcing resizes
  std::uint64_t gc_runs = 0;
  std::uint64_t live_resizes = 0;
  std::uint64_t torn_dropped = 0;
  std::uint64_t extents_dropped = 0;

  for (int life = 0; life < crash_points; ++life) {
    universe += 4;
    const std::uint64_t resizes_at_start = dev->index().op_stats().resizes;
    fi.arm_after(rng.next_range(1, 120));

    int op = 0;
    while (!fi.powered_off()) {
      ASSERT_LT(++op, 200000) << "life " << life << ": injector never fired"
                              << " (seed 0x" << std::hex << seed << ")";
      const std::string k = "key-" + std::to_string(rng.next_below(universe));
      const std::uint64_t dice = rng.next_below(100);
      if (dice < 55) {
        const std::size_t len = rng.next_below(100) < 6
                                    ? rng.next_range(6000, 9000)  // extent
                                    : rng.next_range(80, 1200);
        const std::string v = make_value(k, life, op, len);
        const Status st = dev->put(key(k), key(v));
        if (st == Status::kOk) {
          model[k].pending.emplace_back(v);
        } else {
          model[k].maybe.emplace_back(v);  // unacked, possibly durable
        }
      } else if (dice < 72) {
        const Status st = dev->del(key(k));
        if (st == Status::kOk) {
          model[k].pending.emplace_back(std::nullopt);
        } else if (st != Status::kNotFound) {
          model[k].maybe.emplace_back(std::nullopt);
        }
      } else if (dice < 92) {
        Bytes out;
        (void)dev->get(key(k), &out);
      } else if (dice < 93) {
        // Explicit GC pass: relocation + victim erase are destructive
        // ops, so cuts land inside the collector too. Logically a no-op
        // (duplicates across source/dest resolve by seq), so the
        // durability model needs no update.
        (void)dev->gc().collect_one();
      } else if (dice < 95) {
        // Background GC quantum, exactly as a shard worker's idle-window
        // pump would issue it: cuts land inside a bounded work slice —
        // pair copied but victim not yet erased, relocation buffer
        // mid-program, victim erase at quantum end. Also logically a
        // no-op for the durability model.
        (void)dev->pump_background();
      } else if (ok(dev->flush())) {
        for (auto& [mk, h] : model) {
          if (!h.pending.empty()) {
            h.floor = h.pending.back();
            h.pending.clear();
          }
        }
      }
    }
    gc_runs += dev->gc().stats().runs;
    live_resizes += dev->index().op_stats().resizes - resizes_at_start;

    // --- power is gone: rebuild from flash ------------------------------
    auto nand = dev->release_nand();
    dev.reset();
    RecoveryStats rstats;
    auto recovered = KvssdDevice::recover(cfg, std::move(nand), &rstats);
    ASSERT_TRUE(recovered.has_value())
        << "life " << life << ": " << to_string(recovered.status());
    dev = std::move(recovered).value();
    torn_dropped += rstats.torn_pages_dropped;
    extents_dropped += rstats.incomplete_extents_dropped;
    totals->fast_restores += rstats.checkpoint_restored;
    totals->full_scans += rstats.full_scan_fallback;
    totals->journal_records_replayed += rstats.journal_records_replayed;

    // Every key must read back as SOME acknowledged state at-or-after
    // its durability floor (or an unacked maybe-state from the cut).
    for (auto& [k, h] : model) {
      Bytes out;
      const Status st = dev->get(key(k), &out);
      std::optional<std::string> observed;
      if (st == Status::kOk) {
        observed = rhik::to_string(out);
      } else {
        ASSERT_EQ(st, Status::kNotFound) << "life " << life << " key " << k;
      }
      bool allowed = observed == h.floor;
      for (const auto& s : h.pending) allowed = allowed || observed == s;
      for (const auto& s : h.maybe) allowed = allowed || observed == s;
      ASSERT_TRUE(allowed) << "life " << life << " key " << k << ": recovered "
                           << (observed ? ("\"" + observed->substr(0, 40) + "\"")
                                        : std::string("<absent>"))
                           << " which was never an admissible state (floor "
                           << (h.floor ? h.floor->substr(0, 40)
                                       : std::string("<absent>"))
                           << ", " << h.pending.size() << " pending, "
                           << h.maybe.size() << " maybe, seed 0x" << std::hex
                           << seed << ")";
      // Whatever recovery surfaced is durable now: it is the new floor.
      h.floor = std::move(observed);
      h.pending.clear();
      h.maybe.clear();
    }
  }

  totals->gc_runs = gc_runs;
  totals->live_resizes = live_resizes;
  totals->torn_dropped = torn_dropped;
  totals->extents_dropped = extents_dropped;
  totals->torn_injected = fi.stats().torn_pages;
  totals->power_cuts = fi.stats().power_cuts;
  totals->keys_touched = model.size();
}

TEST(CrashHarness, RandomizedCrashPoints) {
  constexpr int kCrashPoints = 220;
  HarnessTotals t;
  run_crash_harness(crash_config(), kCrashPoints, &t);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(t.power_cuts, static_cast<std::uint64_t>(kCrashPoints));
  // The mixed workload really exercised what the harness claims: GC ran,
  // the index resized mid-life, and torn pages were detected + dropped.
  EXPECT_GT(t.gc_runs, 0u);
  EXPECT_GT(t.live_resizes, 0u);
  EXPECT_GT(t.torn_dropped, 0u);
  EXPECT_GT(t.torn_injected, 0u);
  EXPECT_GT(t.extents_dropped, 0u);
  EXPECT_GT(t.keys_touched, 200u);  // universe growth kept adding fresh keys
  // No checkpoint region: every restart was a full-device scan.
  EXPECT_EQ(t.fast_restores, 0u);
  EXPECT_EQ(t.full_scans, static_cast<std::uint64_t>(kCrashPoints));
}

TEST(CrashHarness, RandomizedCrashPointsWithCheckpointing) {
  // The same 220-cut gauntlet with the checkpoint + journal machinery
  // live: checkpoints race the cuts (slot programs, journal flushes and
  // superblock commits are all destructive ops the countdown can land
  // on), and restarts take whichever path the surviving on-flash state
  // allows. The durability model is path-agnostic, so admissibility of
  // every recovered key is checked exactly as in the plain run.
  constexpr int kCrashPoints = 220;
  DeviceConfig cfg = crash_config();
  cfg.checkpoint.enabled = true;
  cfg.checkpoint.slot_blocks = 2;    // payload cap: 32 tiny pages per slot
  cfg.checkpoint.journal_blocks = 2;
  cfg.checkpoint.dirty_pages = 48;   // checkpoint often → both paths exercised
  cfg.checkpoint.pump_pages = 4;     // incremental pumping mid-workload
  HarnessTotals t;
  run_crash_harness(cfg, kCrashPoints, &t);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(t.power_cuts, static_cast<std::uint64_t>(kCrashPoints));
  EXPECT_GT(t.gc_runs, 0u);
  EXPECT_GT(t.live_resizes, 0u);
  EXPECT_GT(t.torn_injected, 0u);
  EXPECT_GT(t.keys_touched, 200u);
  // Both restart paths must really have run: fast restores with journal
  // replay when a durable checkpoint survived the cut, and the full-scan
  // fallback when one didn't (torn slot, torn journal tail, barrier).
  EXPECT_GT(t.fast_restores, 0u);
  EXPECT_GT(t.full_scans, 0u);
  EXPECT_GT(t.journal_records_replayed, 0u);
  EXPECT_EQ(t.fast_restores + t.full_scans,
            static_cast<std::uint64_t>(kCrashPoints));
}

}  // namespace
}  // namespace rhik::kvssd
