// Tests for the SNIA-style host API wrapper.
#include <gtest/gtest.h>

#include "api/kvs.hpp"

namespace rhik::api {
namespace {

KvsDeviceOptions small_opts() {
  KvsDeviceOptions opts;
  opts.capacity_bytes = 64ull << 20;  // 64 MiB emulated device
  opts.dram_cache_bytes = 1 << 20;
  return opts;
}

TEST(KvsApi, StatusMapping) {
  EXPECT_EQ(from_status(Status::kOk), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(from_status(Status::kNotFound), KvsResult::KVS_ERR_KEY_NOT_EXIST);
  EXPECT_EQ(from_status(Status::kDeviceFull), KvsResult::KVS_ERR_CONT_FULL);
  EXPECT_EQ(from_status(Status::kCollisionAbort),
            KvsResult::KVS_ERR_UNCORRECTIBLE);
  EXPECT_EQ(from_status(Status::kUnsupported),
            KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED);
}

TEST(KvsApi, ResultStrings) {
  EXPECT_STREQ(to_string(KvsResult::KVS_SUCCESS), "KVS_SUCCESS");
  EXPECT_STREQ(to_string(KvsResult::KVS_ERR_KEY_NOT_EXIST),
               "KVS_ERR_KEY_NOT_EXIST");
}

TEST(KvsApi, StoreRetrieveRemove) {
  KvsDevice dev(small_opts());
  EXPECT_EQ(dev.store("user:1", "alice"), KvsResult::KVS_SUCCESS);
  Bytes value;
  EXPECT_EQ(dev.retrieve("user:1", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "alice");
  EXPECT_EQ(dev.exist("user:1"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(dev.remove("user:1"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(dev.retrieve("user:1", &value), KvsResult::KVS_ERR_KEY_NOT_EXIST);
  EXPECT_EQ(dev.exist("user:1"), KvsResult::KVS_ERR_KEY_NOT_EXIST);
}

TEST(KvsApi, InvalidKeyRejected) {
  KvsDevice dev(small_opts());
  EXPECT_EQ(dev.store("", "v"), KvsResult::KVS_ERR_KEY_LENGTH_INVALID);
}

TEST(KvsApi, IteratorDisabledByDefault) {
  KvsDevice dev(small_opts());
  std::vector<std::string> keys;
  EXPECT_EQ(dev.iterate("user", &keys),
            KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED);
}

TEST(KvsApi, IteratorEnumeratesPrefix) {
  KvsDeviceOptions opts = small_opts();
  opts.enable_iterator = true;
  KvsDevice dev(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(dev.store("sess:" + std::to_string(i), "s"), KvsResult::KVS_SUCCESS);
    ASSERT_EQ(dev.store("blob:" + std::to_string(i), "b"), KvsResult::KVS_SUCCESS);
  }
  std::vector<std::string> keys;
  ASSERT_EQ(dev.iterate("sess", &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 10u);
  for (const auto& k : keys) EXPECT_EQ(k.substr(0, 5), "sess:");
}

TEST(KvsApi, MlHashBackendSelectable) {
  KvsDeviceOptions opts = small_opts();
  opts.use_rhik = false;
  opts.anticipated_keys = 10000;
  KvsDevice dev(opts);
  EXPECT_EQ(dev.store("a", "1"), KvsResult::KVS_SUCCESS);
  Bytes value;
  EXPECT_EQ(dev.retrieve("a", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "1");
}

TEST(KvsApi, AnticipatedKeysSizesRhik) {
  KvsDeviceOptions opts = small_opts();
  opts.anticipated_keys = 100000;
  KvsDevice dev(opts);
  // Eq. 2: 100000 keys / (32768/17 = 1927 records per 32 KiB page) ->
  // 52 pages -> 64 directory entries.
  EXPECT_GE(dev.device().index().capacity(), 100000u);
}

TEST(KvsApi, UnderlyingDeviceAccessible) {
  KvsDevice dev(small_opts());
  ASSERT_EQ(dev.store("x", "y"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(dev.device().key_count(), 1u);
  EXPECT_GT(dev.device().clock().now(), 0u);
}

}  // namespace
}  // namespace rhik::api
