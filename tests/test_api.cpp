// Tests for the SNIA-style host API wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "api/kvs.hpp"

namespace rhik::api {
namespace {

KvsDeviceOptions small_opts() {
  KvsDeviceOptions opts;
  opts.capacity_bytes = 64ull << 20;  // 64 MiB emulated device
  opts.dram_cache_bytes = 1 << 20;
  return opts;
}

TEST(KvsApi, StatusMappingExhaustive) {
  // Every Status has a deliberate KvsResult; a new Status enumerator
  // must be added here (and to from_status) or this table goes stale.
  const struct {
    Status in;
    KvsResult want;
  } kTable[] = {
      {Status::kOk, KvsResult::KVS_SUCCESS},
      {Status::kNotFound, KvsResult::KVS_ERR_KEY_NOT_EXIST},
      {Status::kAlreadyExists, KvsResult::KVS_ERR_OPTION_INVALID},
      {Status::kDeviceFull, KvsResult::KVS_ERR_CONT_FULL},
      {Status::kIndexFull, KvsResult::KVS_ERR_CONT_FULL},
      {Status::kCollisionAbort, KvsResult::KVS_ERR_UNCORRECTIBLE},
      {Status::kInvalidArgument, KvsResult::KVS_ERR_KEY_LENGTH_INVALID},
      {Status::kCorruption, KvsResult::KVS_ERR_SYS_IO},
      {Status::kIoError, KvsResult::KVS_ERR_SYS_IO},
      {Status::kBusy, KvsResult::KVS_ERR_DEV_BUSY},
      {Status::kUnsupported, KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED},
      {Status::kQueueFull, KvsResult::KVS_ERR_QUEUE_FULL},
      {Status::kIteratorMax, KvsResult::KVS_ERR_ITERATOR_MAX},
      {Status::kSnapshotTooOld, KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD},
  };
  for (const auto& row : kTable) {
    EXPECT_EQ(from_status(row.in), row.want)
        << "status " << static_cast<int>(row.in);
  }
}

TEST(KvsApi, ResultStringsExhaustive) {
  const KvsResult kAll[] = {
      KvsResult::KVS_SUCCESS,
      KvsResult::KVS_ERR_KEY_NOT_EXIST,
      KvsResult::KVS_ERR_KEY_LENGTH_INVALID,
      KvsResult::KVS_ERR_VALUE_LENGTH_INVALID,
      KvsResult::KVS_ERR_CONT_FULL,
      KvsResult::KVS_ERR_UNCORRECTIBLE,
      KvsResult::KVS_ERR_DEV_BUSY,
      KvsResult::KVS_ERR_SYS_IO,
      KvsResult::KVS_ERR_OPTION_INVALID,
      KvsResult::KVS_ERR_ITERATOR_NOT_SUPPORTED,
      KvsResult::KVS_ERR_QUEUE_FULL,
      KvsResult::KVS_ERR_ITERATOR_MAX,
      KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD,
  };
  std::set<std::string> seen;
  for (const KvsResult r : kAll) {
    const char* s = to_string(r);
    ASSERT_NE(s, nullptr);
    EXPECT_STRNE(s, "KVS_ERR_UNKNOWN") << static_cast<int>(r);
    EXPECT_TRUE(seen.insert(s).second) << "duplicate string " << s;
  }
  EXPECT_STREQ(to_string(KvsResult::KVS_SUCCESS), "KVS_SUCCESS");
  EXPECT_STREQ(to_string(KvsResult::KVS_ERR_KEY_NOT_EXIST),
               "KVS_ERR_KEY_NOT_EXIST");
  EXPECT_STREQ(to_string(KvsResult::KVS_ERR_QUEUE_FULL),
               "KVS_ERR_QUEUE_FULL");
  EXPECT_STREQ(to_string(KvsResult::KVS_ERR_ITERATOR_MAX),
               "KVS_ERR_ITERATOR_MAX");
  EXPECT_STREQ(to_string(KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD),
               "KVS_ERR_SNAPSHOT_TOO_OLD");
}

TEST(KvsApi, StoreRetrieveRemove) {
  KvsDevice dev(small_opts());
  EXPECT_EQ(dev.store("user:1", "alice"), KvsResult::KVS_SUCCESS);
  Bytes value;
  EXPECT_EQ(dev.retrieve("user:1", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "alice");
  EXPECT_EQ(dev.exist("user:1"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(dev.remove("user:1"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(dev.retrieve("user:1", &value), KvsResult::KVS_ERR_KEY_NOT_EXIST);
  EXPECT_EQ(dev.exist("user:1"), KvsResult::KVS_ERR_KEY_NOT_EXIST);
}

TEST(KvsApi, InvalidKeyRejected) {
  KvsDevice dev(small_opts());
  EXPECT_EQ(dev.store("", "v"), KvsResult::KVS_ERR_KEY_LENGTH_INVALID);
}

TEST(KvsApi, IteratorDisabledAtOpenIsOptionInvalid) {
  // The device *could* iterate, the caller just didn't ask for it at
  // open — a missing option, not a missing capability.
  KvsDevice dev(small_opts());
  std::vector<std::string> keys;
  EXPECT_EQ(dev.iterate("user", &keys), KvsResult::KVS_ERR_OPTION_INVALID);
}

TEST(KvsApi, IteratorEnumeratesPrefix) {
  KvsDeviceOptions opts = small_opts();
  opts.enable_iterator = true;
  KvsDevice dev(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(dev.store("sess:" + std::to_string(i), "s"), KvsResult::KVS_SUCCESS);
    ASSERT_EQ(dev.store("blob:" + std::to_string(i), "b"), KvsResult::KVS_SUCCESS);
  }
  std::vector<std::string> keys;
  ASSERT_EQ(dev.iterate("sess", &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 10u);
  for (const auto& k : keys) EXPECT_EQ(k.substr(0, 5), "sess:");
}

TEST(KvsApi, MlHashBackendSelectable) {
  KvsDeviceOptions opts = small_opts();
  opts.use_rhik = false;
  opts.anticipated_keys = 10000;
  KvsDevice dev(opts);
  EXPECT_EQ(dev.store("a", "1"), KvsResult::KVS_SUCCESS);
  Bytes value;
  EXPECT_EQ(dev.retrieve("a", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "1");
}

TEST(KvsApi, AnticipatedKeysSizesRhik) {
  KvsDeviceOptions opts = small_opts();
  opts.anticipated_keys = 100000;
  KvsDevice dev(opts);
  // Eq. 2: 100000 keys / (32768/17 = 1927 records per 32 KiB page) ->
  // 52 pages -> 64 directory entries.
  EXPECT_GE(dev.metrics_snapshot().gauge("index.capacity"), 100000);
}

TEST(KvsApi, IntrospectionWithoutRawDevice) {
  KvsDevice dev(small_opts());
  ASSERT_EQ(dev.store("x", "y"), KvsResult::KVS_SUCCESS);
  const auto snap = dev.metrics_snapshot();
  EXPECT_EQ(snap.gauge("device.key_count"), 1);
  EXPECT_GT(snap.gauge("clock.now_ns"), 0);
  EXPECT_EQ(dev.stats_snapshot().puts, 1u);
}

TEST(KvsApi, ShardedIterateMergesShards) {
  KvsDeviceOptions opts = small_opts();
  opts.capacity_bytes = 1ull << 30;  // 32 8-MiB blocks per shard
  opts.enable_iterator = true;
  opts.num_shards = 4;
  KvsDevice dev(opts);
  ASSERT_TRUE(dev.sharded());
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(dev.store("sess:" + std::to_string(i), "s"),
              KvsResult::KVS_SUCCESS);
    ASSERT_EQ(dev.store("blob:" + std::to_string(i), "b"),
              KvsResult::KVS_SUCCESS);
  }
  std::vector<std::string> keys;
  ASSERT_EQ(dev.iterate("sess", &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 32u);
  for (const auto& k : keys) EXPECT_EQ(k.substr(0, 5), "sess:");
  // Deterministic order: the merged result is sorted.
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(KvsApi, IterateOrderDeterministicAcrossShardCounts) {
  // iterate() promises the same sorted key order no matter how the
  // keyspace is partitioned — a single device must not leak its hash
  // order where a 2- or 4-shard array would return sorted output.
  std::vector<std::vector<std::string>> per_config;
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    KvsDeviceOptions opts = small_opts();
    opts.capacity_bytes = 1ull << 30;
    opts.enable_iterator = true;
    opts.num_shards = shards;
    KvsDevice dev(opts);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(dev.store("ord:" + std::to_string(i), "v"),
                KvsResult::KVS_SUCCESS);
    }
    std::vector<std::string> keys;
    ASSERT_EQ(dev.iterate("ord:", &keys), KvsResult::KVS_SUCCESS);
    ASSERT_EQ(keys.size(), 64u) << shards << " shards";
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()))
        << shards << " shards";
    per_config.push_back(std::move(keys));
  }
  EXPECT_EQ(per_config[0], per_config[1]);
  EXPECT_EQ(per_config[0], per_config[2]);
}

TEST(KvsApi, AsyncStoreRetrievePoll) {
  KvsDevice dev(small_opts());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(dev.store_async("k" + std::to_string(i),
                                  "v" + std::to_string(i)));
  }
  std::vector<KvsCompletion> done;
  while (done.size() < ids.size()) {
    ASSERT_GT(dev.poll_completions(&done), 0u);
  }
  ASSERT_EQ(done.size(), ids.size());
  for (std::size_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i].id, ids[i]);  // single device completes in order
    EXPECT_EQ(done[i].op, KvsCompletion::Op::kStore);
    EXPECT_EQ(done[i].result, KvsResult::KVS_SUCCESS);
  }

  const std::uint64_t gid = dev.retrieve_async("k3");
  const std::uint64_t did = dev.remove_async("k5");
  done.clear();
  while (done.size() < 2) ASSERT_GT(dev.poll_completions(&done), 0u);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].id, gid);
  EXPECT_EQ(done[0].op, KvsCompletion::Op::kRetrieve);
  EXPECT_EQ(done[0].result, KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(done[0].value), "v3");
  EXPECT_EQ(done[1].id, did);
  EXPECT_EQ(done[1].op, KvsCompletion::Op::kRemove);
  EXPECT_EQ(done[1].result, KvsResult::KVS_SUCCESS);
  Bytes gone;
  EXPECT_EQ(dev.retrieve("k5", &gone), KvsResult::KVS_ERR_KEY_NOT_EXIST);
}

TEST(KvsApi, AsyncOnShardedArray) {
  KvsDeviceOptions opts = small_opts();
  opts.capacity_bytes = 512ull << 20;  // 32 8-MiB blocks per shard
  opts.num_shards = 2;
  KvsDevice dev(opts);
  std::set<std::uint64_t> pending;
  for (int i = 0; i < 16; ++i) {
    pending.insert(dev.store_async("k" + std::to_string(i), "v"));
  }
  std::vector<KvsCompletion> done;
  while (done.size() < 16) dev.poll_completions(&done);
  for (const auto& c : done) {
    EXPECT_EQ(c.result, KvsResult::KVS_SUCCESS);
    EXPECT_EQ(pending.erase(c.id), 1u);
  }
  EXPECT_TRUE(pending.empty());
}

TEST(KvsApi, CheckpointDisabledIsOptionInvalid) {
  KvsDevice dev(small_opts());
  EXPECT_EQ(dev.checkpoint(), KvsResult::KVS_ERR_OPTION_INVALID);
}

TEST(KvsApi, CheckpointRestartRoundTrip) {
  KvsDeviceOptions opts = small_opts();
  // The checkpoint tail reserves 4 of the device's 8-MiB blocks; leave
  // plenty for data + GC headroom.
  opts.capacity_bytes = 512ull << 20;
  opts.enable_checkpoints = true;
  KvsDevice dev(opts);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(dev.store("k" + std::to_string(i), "v" + std::to_string(i)),
              KvsResult::KVS_SUCCESS);
  }
  ASSERT_EQ(dev.checkpoint(), KvsResult::KVS_SUCCESS);
  kvssd::RecoveryStats stats;
  ASSERT_EQ(dev.recover(&stats), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(stats.checkpoint_restored, 1u);
  EXPECT_EQ(stats.full_scan_fallback, 0u);
  for (int i = 0; i < 200; ++i) {
    Bytes value;
    ASSERT_EQ(dev.retrieve("k" + std::to_string(i), &value),
              KvsResult::KVS_SUCCESS);
    EXPECT_EQ(rhik::to_string(value), "v" + std::to_string(i));
  }
}

TEST(KvsApi, CheckpointRestartRoundTripSharded) {
  KvsDeviceOptions opts = small_opts();
  opts.capacity_bytes = 1ull << 30;  // each shard reserves its own ckpt tail
  opts.enable_checkpoints = true;
  opts.num_shards = 2;
  KvsDevice dev(opts);
  ASSERT_TRUE(dev.sharded());
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(dev.store("k" + std::to_string(i), "v" + std::to_string(i)),
              KvsResult::KVS_SUCCESS);
  }
  ASSERT_EQ(dev.checkpoint(), KvsResult::KVS_SUCCESS);
  kvssd::RecoveryStats stats;
  ASSERT_EQ(dev.recover(&stats), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(stats.checkpoint_restored, 2u);  // merged across both shards
  EXPECT_EQ(stats.full_scan_fallback, 0u);
  for (int i = 0; i < 200; ++i) {
    Bytes value;
    ASSERT_EQ(dev.retrieve("k" + std::to_string(i), &value),
              KvsResult::KVS_SUCCESS);
    EXPECT_EQ(rhik::to_string(value), "v" + std::to_string(i));
  }
}

// -- MVCC snapshots + handle iterators (DESIGN.md §13) -------------------------

TEST(KvsApiSnapshot, RetrieveAtSeesPinnedVersions) {
  KvsDevice dev(small_opts());
  ASSERT_EQ(dev.store("k", "old"), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.store("doomed", "d"), KvsResult::KVS_SUCCESS);
  SnapshotHandle snap;
  ASSERT_EQ(dev.open_snapshot(&snap), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.store("k", "new"), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.remove("doomed"), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.store("later", "l"), KvsResult::KVS_SUCCESS);

  Bytes value;
  EXPECT_EQ(dev.retrieve_at(snap, "k", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "old");
  EXPECT_EQ(dev.retrieve_at(snap, "doomed", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "d");
  // A key born after the pin is invisible at the pinned epoch.
  EXPECT_EQ(dev.retrieve_at(snap, "later", &value),
            KvsResult::KVS_ERR_KEY_NOT_EXIST);
  // Live reads are unaffected by the pin.
  EXPECT_EQ(dev.retrieve("k", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "new");
  EXPECT_EQ(dev.retrieve("doomed", &value), KvsResult::KVS_ERR_KEY_NOT_EXIST);

  ASSERT_EQ(dev.release_snapshot(snap), KvsResult::KVS_SUCCESS);
  // A released pin is a stale handle, not a live view.
  EXPECT_EQ(dev.retrieve_at(snap, "k", &value),
            KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD);
}

TEST(KvsApiSnapshot, HandleIteratorStreamsInBatches) {
  KvsDeviceOptions opts = small_opts();
  opts.enable_iterator = true;
  KvsDevice dev(opts);
  std::vector<std::string> expect;
  for (int i = 0; i < 50; ++i) {
    const std::string k = "scan:" + std::to_string(i);
    ASSERT_EQ(dev.store(k, "v"), KvsResult::KVS_SUCCESS);
    expect.push_back(k);
  }
  std::uint64_t it = 0;
  ASSERT_EQ(dev.kvs_open_iterator("scan", &it), KvsResult::KVS_SUCCESS);
  std::vector<std::string> got;
  std::vector<std::string> batch;
  KvsResult r;
  while ((r = dev.kvs_iterator_next(it, 7, &batch)) ==
         KvsResult::KVS_SUCCESS) {
    EXPECT_LE(batch.size(), 7u);
    got.insert(got.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(r, KvsResult::KVS_ERR_KEY_NOT_EXIST);  // exhaustion, not error
  ASSERT_EQ(dev.kvs_close_iterator(it), KvsResult::KVS_SUCCESS);
  // A closed handle is dead.
  EXPECT_NE(dev.kvs_iterator_next(it, 7, &batch), KvsResult::KVS_SUCCESS);
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

TEST(KvsApiSnapshot, OpenIteratorWithoutOptionIsOptionInvalid) {
  KvsDevice dev(small_opts());
  std::uint64_t it = 0;
  EXPECT_EQ(dev.kvs_open_iterator("p", &it), KvsResult::KVS_ERR_OPTION_INVALID);
}

TEST(KvsApiSnapshot, SnapshotBoundIteratorIgnoresLaterChurn) {
  KvsDeviceOptions opts = small_opts();
  opts.enable_iterator = true;
  KvsDevice dev(opts);
  std::vector<std::string> expect;
  for (int i = 0; i < 16; ++i) {
    const std::string k = "pin:" + std::to_string(i);
    ASSERT_EQ(dev.store(k, "v0"), KvsResult::KVS_SUCCESS);
    expect.push_back(k);
  }
  SnapshotHandle snap;
  ASSERT_EQ(dev.open_snapshot(&snap), KvsResult::KVS_SUCCESS);
  std::uint64_t it = 0;
  ASSERT_EQ(dev.kvs_open_iterator("pin:", &it, &snap), KvsResult::KVS_SUCCESS);
  // Churn after the pin: new keys, overwrites, a delete. None of it may
  // leak into the pinned scan.
  for (int i = 16; i < 32; ++i) {
    ASSERT_EQ(dev.store("pin:" + std::to_string(i), "late"),
              KvsResult::KVS_SUCCESS);
  }
  ASSERT_EQ(dev.store("pin:0", "v1"), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.remove("pin:1"), KvsResult::KVS_SUCCESS);

  std::vector<std::string> got;
  std::vector<std::string> batch;
  KvsResult r;
  while ((r = dev.kvs_iterator_next(it, 5, &batch)) == KvsResult::KVS_SUCCESS) {
    got.insert(got.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(r, KvsResult::KVS_ERR_KEY_NOT_EXIST);
  ASSERT_EQ(dev.kvs_close_iterator(it), KvsResult::KVS_SUCCESS);
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
  // Closing a caller-pinned iterator must NOT release the caller's
  // snapshot — it is still readable.
  Bytes value;
  EXPECT_EQ(dev.retrieve_at(snap, "pin:1", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "v0");
  ASSERT_EQ(dev.release_snapshot(snap), KvsResult::KVS_SUCCESS);
}

TEST(KvsApiSnapshot, ShardedSnapshotIsOneConsistentCut) {
  KvsDeviceOptions opts = small_opts();
  opts.capacity_bytes = 1ull << 30;
  opts.enable_iterator = true;
  opts.num_shards = 4;
  KvsDevice dev(opts);
  ASSERT_TRUE(dev.sharded());
  std::vector<std::string> expect;
  for (int i = 0; i < 32; ++i) {
    const std::string k = "cut:" + std::to_string(i);
    ASSERT_EQ(dev.store(k, "before"), KvsResult::KVS_SUCCESS);
    expect.push_back(k);
  }
  SnapshotHandle snap;
  ASSERT_EQ(dev.open_snapshot(&snap), KvsResult::KVS_SUCCESS);
  // Overwrite everything and add more, hitting every shard.
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(dev.store("cut:" + std::to_string(i), "after"),
              KvsResult::KVS_SUCCESS);
  }
  // Point reads at the pin return the pre-churn values on every shard.
  for (int i = 0; i < 32; ++i) {
    Bytes value;
    ASSERT_EQ(dev.retrieve_at(snap, "cut:" + std::to_string(i), &value),
              KvsResult::KVS_SUCCESS);
    EXPECT_EQ(rhik::to_string(value), "before") << i;
  }
  Bytes value;
  EXPECT_EQ(dev.retrieve_at(snap, "cut:40", &value),
            KvsResult::KVS_ERR_KEY_NOT_EXIST);
  // A pinned scan sees exactly the 32 pre-churn keys.
  std::uint64_t it = 0;
  ASSERT_EQ(dev.kvs_open_iterator("cut:", &it, &snap), KvsResult::KVS_SUCCESS);
  std::vector<std::string> got;
  std::vector<std::string> batch;
  KvsResult r;
  while ((r = dev.kvs_iterator_next(it, 9, &batch)) == KvsResult::KVS_SUCCESS) {
    got.insert(got.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(r, KvsResult::KVS_ERR_KEY_NOT_EXIST);
  ASSERT_EQ(dev.kvs_close_iterator(it), KvsResult::KVS_SUCCESS);
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
  ASSERT_EQ(dev.release_snapshot(snap), KvsResult::KVS_SUCCESS);
}

TEST(KvsApiSnapshot, RetentionBudgetExpiresOldestPin) {
  KvsDeviceOptions opts = small_opts();
  opts.snapshot_retention_bytes = 4096;  // one overwritten page busts it
  KvsDevice dev(opts);
  const std::string big(2048, 'x');
  ASSERT_EQ(dev.store("hot", big), KvsResult::KVS_SUCCESS);
  SnapshotHandle snap;
  ASSERT_EQ(dev.open_snapshot(&snap), KvsResult::KVS_SUCCESS);
  // Overwrite the pinned version repeatedly: each dead version is
  // retained for the pin until the budget trips and expires it.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(dev.store("hot", big), KvsResult::KVS_SUCCESS);
  }
  Bytes value;
  EXPECT_EQ(dev.retrieve_at(snap, "hot", &value),
            KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD);
  // Expired is still released normally; a fresh pin works again.
  EXPECT_EQ(dev.release_snapshot(snap), KvsResult::KVS_SUCCESS);
  SnapshotHandle fresh;
  ASSERT_EQ(dev.open_snapshot(&fresh), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(dev.retrieve_at(fresh, "hot", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(dev.release_snapshot(fresh), KvsResult::KVS_SUCCESS);
}

TEST(KvsApiSnapshot, PinDroppedAcrossPowerCycleErrorsNotTears) {
  KvsDevice dev(small_opts());
  ASSERT_EQ(dev.store("k", "v"), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.flush(), KvsResult::KVS_SUCCESS);
  SnapshotHandle snap;
  ASSERT_EQ(dev.open_snapshot(&snap), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.recover(), KvsResult::KVS_SUCCESS);
  // Pins are in-memory state: the handle did not survive the power
  // cycle, and even if its pin id gets recycled the epoch cross-check
  // rejects it — an error, never a view at the wrong epoch.
  Bytes value;
  EXPECT_EQ(dev.retrieve_at(snap, "k", &value),
            KvsResult::KVS_ERR_SNAPSHOT_TOO_OLD);
  EXPECT_EQ(dev.retrieve("k", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "v");
}

TEST(KvsApi, RecoverWithoutCheckpointFallsBackToScan) {
  KvsDevice dev(small_opts());
  ASSERT_EQ(dev.store("a", "1"), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(dev.flush(), KvsResult::KVS_SUCCESS);
  kvssd::RecoveryStats stats;
  ASSERT_EQ(dev.recover(&stats), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(stats.checkpoint_restored, 0u);
  Bytes value;
  EXPECT_EQ(dev.retrieve("a", &value), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(value), "1");
}

}  // namespace
}  // namespace rhik::api
