// Unit tests for the NAND flash model: geometry, addressing, program/
// erase discipline, latency accounting, wear tracking.
#include <gtest/gtest.h>

#include <random>

#include <string>

#include "common/crc32.hpp"
#include "common/sim_clock.hpp"
#include "flash/address.hpp"
#include "flash/fault_injector.hpp"
#include "flash/geometry.hpp"
#include "flash/latency.hpp"
#include "flash/nand.hpp"

namespace rhik::flash {
namespace {

Geometry tiny() { return Geometry::tiny(8); }  // 4 KiB pages, 16/block, 8 blocks

class NandTest : public ::testing::Test {
 protected:
  SimClock clock_;
  NandDevice nand_{tiny(), NandLatency::kvemu_defaults(), &clock_};
};

TEST(Geometry, PaperDefaults) {
  Geometry g;
  EXPECT_EQ(g.page_size, 32u * 1024);      // §V-A: 32 KB pages
  EXPECT_EQ(g.pages_per_block, 256u);      // §V-A: 256 pages per erase block
  EXPECT_EQ(g.spare_size(), 1024u);        // 1/32 of the main area (§I fn 1)
  EXPECT_TRUE(g.valid());
}

TEST(Geometry, CapacityMath) {
  Geometry g = tiny();
  EXPECT_EQ(g.pages_total(), 8u * 16);
  EXPECT_EQ(g.block_bytes(), 16u * 4096);
  EXPECT_EQ(g.capacity_bytes(), 8u * 16 * 4096);
}

TEST(Geometry, WithCapacityRounds) {
  const Geometry g = Geometry::with_capacity(1ull << 30);
  EXPECT_EQ(std::uint64_t{g.num_blocks} * g.block_bytes(), 1ull << 30);
}

TEST(Address, PackUnpackRoundTrip) {
  const Geometry g = tiny();
  for (std::uint32_t b = 0; b < g.num_blocks; ++b) {
    for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
      const Ppa ppa = make_ppa(g, b, p);
      EXPECT_EQ(ppa_block(g, ppa), b);
      EXPECT_EQ(ppa_page(g, ppa), p);
      EXPECT_TRUE(ppa_in_range(g, ppa));
    }
  }
  EXPECT_FALSE(ppa_in_range(g, g.pages_total()));
}

TEST(Address, InvalidPpaIs40Bit) {
  EXPECT_EQ(kInvalidPpa, (std::uint64_t{1} << 40) - 1);
}

TEST_F(NandTest, ProgramThenRead) {
  Bytes data(4096, 0x5A);
  Bytes spare(128, 0x7B);
  ASSERT_EQ(nand_.program_page(0, data, spare), Status::kOk);

  Bytes rdata(4096), rspare(128);
  ASSERT_EQ(nand_.read_page(0, rdata, rspare), Status::kOk);
  EXPECT_EQ(rdata, data);
  // Caller spare bytes round-trip except the controller-reserved tail,
  // which is stamped with the wear count and page CRC.
  for (std::size_t i = 0; i < rspare.size() - kSpareReservedTail; ++i) {
    EXPECT_EQ(rspare[i], 0x7B) << "spare byte " << i;
  }
  EXPECT_TRUE(page_crc_ok(tiny(), rdata, rspare));
  EXPECT_EQ(spare_wear_stamp(tiny(), rspare), 0u);  // block never erased yet
}

TEST_F(NandTest, PartialWriteLeavesErasedBytes) {
  Bytes data(100, 0x11);
  ASSERT_EQ(nand_.program_page(0, data), Status::kOk);
  Bytes rdata(4096);
  ASSERT_EQ(nand_.read_page(0, rdata), Status::kOk);
  EXPECT_EQ(rdata[0], 0x11);
  EXPECT_EQ(rdata[99], 0x11);
  EXPECT_EQ(rdata[100], 0xFF);  // erased state
  EXPECT_EQ(rdata[4095], 0xFF);
}

TEST_F(NandTest, ReadUnwrittenPageFails) {
  Bytes buf(16);
  EXPECT_EQ(nand_.read_page(0, buf), Status::kIoError);
  ASSERT_EQ(nand_.program_page(0, buf), Status::kOk);
  EXPECT_EQ(nand_.read_page(1, buf), Status::kIoError);  // next page still blank
}

TEST_F(NandTest, OutOfOrderProgramRejected) {
  Bytes buf(16, 1);
  // Pages within a block must be programmed in order (NAND discipline).
  EXPECT_EQ(nand_.program_page(1, buf), Status::kIoError);
  ASSERT_EQ(nand_.program_page(0, buf), Status::kOk);
  EXPECT_EQ(nand_.program_page(0, buf), Status::kIoError);  // program-once
  EXPECT_EQ(nand_.program_page(1, buf), Status::kOk);
}

TEST_F(NandTest, EraseResetsBlock) {
  Bytes buf(16, 2);
  const Geometry g = tiny();
  for (std::uint32_t p = 0; p < 3; ++p) {
    ASSERT_EQ(nand_.program_page(make_ppa(g, 1, p), buf), Status::kOk);
  }
  EXPECT_TRUE(nand_.is_programmed(make_ppa(g, 1, 0)));
  ASSERT_EQ(nand_.erase_block(1), Status::kOk);
  EXPECT_FALSE(nand_.is_programmed(make_ppa(g, 1, 0)));
  Bytes rbuf(16);
  EXPECT_EQ(nand_.read_page(make_ppa(g, 1, 0), rbuf), Status::kIoError);
  // After erase, programming restarts from page 0.
  EXPECT_EQ(nand_.program_page(make_ppa(g, 1, 0), buf), Status::kOk);
}

TEST_F(NandTest, EraseCountsTrackWear) {
  EXPECT_EQ(nand_.erase_count(3), 0u);
  ASSERT_EQ(nand_.erase_block(3), Status::kOk);
  ASSERT_EQ(nand_.erase_block(3), Status::kOk);
  EXPECT_EQ(nand_.erase_count(3), 2u);
  EXPECT_EQ(nand_.erase_count(2), 0u);
}

TEST_F(NandTest, BoundsChecked) {
  Bytes buf(16);
  EXPECT_EQ(nand_.read_page(tiny().pages_total(), buf), Status::kInvalidArgument);
  EXPECT_EQ(nand_.erase_block(tiny().num_blocks), Status::kInvalidArgument);
  Bytes too_big(4097);
  EXPECT_EQ(nand_.program_page(0, too_big), Status::kInvalidArgument);
  Bytes spare_too_big(200);
  EXPECT_EQ(nand_.program_page(0, Bytes(16), spare_too_big),
            Status::kInvalidArgument);
}

TEST_F(NandTest, StatsAndClockAdvance) {
  const NandLatency lat = NandLatency::kvemu_defaults();
  Bytes buf(4096, 3);
  ASSERT_EQ(nand_.program_page(0, buf), Status::kOk);
  EXPECT_EQ(nand_.stats().page_programs, 1u);
  EXPECT_EQ(nand_.stats().bytes_programmed, 4096u);
  EXPECT_EQ(clock_.now(), lat.program_cost(4096));

  Bytes rbuf(4096);
  ASSERT_EQ(nand_.read_page(0, rbuf), Status::kOk);
  EXPECT_EQ(nand_.stats().page_reads, 1u);
  EXPECT_EQ(clock_.now(), lat.program_cost(4096) + lat.read_cost(4096));

  ASSERT_EQ(nand_.erase_block(0), Status::kOk);
  EXPECT_EQ(nand_.stats().block_erases, 1u);
}

TEST(NandLatency, CostModel) {
  const NandLatency lat = NandLatency::nand_defaults();
  EXPECT_EQ(lat.read_cost(0), lat.read_ns);
  EXPECT_EQ(lat.read_cost(1024), lat.read_ns + 1024 * lat.transfer_ns_per_byte);
  EXPECT_GT(lat.program_cost(0), lat.read_cost(0));
  EXPECT_GT(lat.erase_cost(), lat.program_cost(0));
}

TEST(Nand, LazyAllocationReleasesOnErase) {
  // Erase releases page storage, so host memory tracks live data only.
  SimClock clock;
  NandDevice nand(tiny(), NandLatency::kvemu_defaults(), &clock);
  Bytes buf(4096, 1);
  for (std::uint32_t p = 0; p < 16; ++p) {
    ASSERT_EQ(nand.program_page(make_ppa(tiny(), 0, p), buf), Status::kOk);
  }
  ASSERT_EQ(nand.erase_block(0), Status::kOk);
  // Re-program works and reads back the new content.
  Bytes buf2(4096, 9);
  ASSERT_EQ(nand.program_page(make_ppa(tiny(), 0, 0), buf2), Status::kOk);
  Bytes r(4096);
  ASSERT_EQ(nand.read_page(make_ppa(tiny(), 0, 0), r), Status::kOk);
  EXPECT_EQ(r[0], 9);
}

// --- CRC stamp and power-cut fault injection ---------------------------------

TEST(Crc32, KnownAnswer) {
  const std::string s = "123456789";
  EXPECT_EQ(crc32(as_bytes(s)), 0xCBF43926u);  // the standard check value
  // Streaming over split buffers matches the one-shot result.
  std::uint32_t st = crc32_init();
  st = crc32_update(st, as_bytes(s).subspan(0, 4));
  st = crc32_update(st, as_bytes(s).subspan(4));
  EXPECT_EQ(crc32_final(st), 0xCBF43926u);
}

// The folded (PCLMUL) path only engages on inputs >= 64 bytes; feeding
// the same data through sub-64-byte updates pins it against the pure
// table path, bit for bit, across lengths, alignments and split points.
TEST(Crc32, FoldedPathMatchesTablePath) {
  std::mt19937_64 rng(0x5EEDu);
  Bytes buf(4096 + 3);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());

  const auto table_only = [&](ByteSpan data) {
    std::uint32_t st = crc32_init();
    for (std::size_t off = 0; off < data.size(); off += 48) {
      st = crc32_update(st, data.subspan(off, std::min<std::size_t>(48, data.size() - off)));
    }
    return crc32_final(st);
  };

  for (const std::size_t len :
       {std::size_t{64}, std::size_t{65}, std::size_t{79}, std::size_t{80},
        std::size_t{127}, std::size_t{128}, std::size_t{129}, std::size_t{1024},
        std::size_t{4096}, buf.size()}) {
    for (const std::size_t shift : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      const ByteSpan data = ByteSpan{buf}.subspan(shift, len - shift);
      EXPECT_EQ(crc32(data), table_only(data)) << len << "+" << shift;
    }
  }

  // A non-zero incoming state must seed the folded path the same way.
  const ByteSpan all{buf};
  std::uint32_t split = crc32_update(crc32_init(), all.subspan(0, 37));
  split = crc32_update(split, all.subspan(37));  // >= 64 bytes: folded
  EXPECT_EQ(crc32_final(split), table_only(all));
}

TEST_F(NandTest, WearStampFollowsEraseCount) {
  ASSERT_EQ(nand_.erase_block(0), Status::kOk);
  ASSERT_EQ(nand_.erase_block(0), Status::kOk);
  ASSERT_EQ(nand_.program_page(0, Bytes(64, 0x21)), Status::kOk);
  Bytes data(4096), spare(128);
  ASSERT_EQ(nand_.read_page(0, data, spare), Status::kOk);
  EXPECT_EQ(spare_wear_stamp(tiny(), spare), 2u);
  EXPECT_TRUE(page_crc_ok(tiny(), data, spare));
}

TEST_F(NandTest, PowerCycleClearsVolatileWearAndRestoreReinstates) {
  ASSERT_EQ(nand_.erase_block(5), Status::kOk);
  ASSERT_EQ(nand_.erase_block(5), Status::kOk);
  ASSERT_EQ(nand_.erase_block(5), Status::kOk);
  nand_.power_cycle();
  EXPECT_EQ(nand_.erase_count(5), 0u);  // wear RAM is volatile
  EXPECT_EQ(nand_.stats().block_erases, 0u);
  nand_.restore_erase_count(5, 3);
  EXPECT_EQ(nand_.erase_count(5), 3u);
}

TEST_F(NandTest, CutProgramPowersDeviceOff) {
  FaultInjector fi(42);
  nand_.set_fault_injector(&fi);
  fi.arm_after(1, TornWritePolicy::kNone);

  EXPECT_EQ(nand_.program_page(0, Bytes(4096, 0xA5)), Status::kIoError);
  EXPECT_TRUE(fi.powered_off());
  EXPECT_EQ(fi.stats().power_cuts, 1u);
  EXPECT_EQ(nand_.pages_programmed(0), 0u);  // kNone: no cell changed

  // Everything — reads included — fails until the next power-on.
  Bytes buf(16);
  EXPECT_EQ(nand_.read_page(0, buf), Status::kIoError);
  EXPECT_EQ(nand_.program_page(0, Bytes(16, 1)), Status::kIoError);
  EXPECT_EQ(nand_.erase_block(0), Status::kIoError);
  EXPECT_GE(fi.stats().ops_rejected, 3u);

  nand_.power_cycle();
  EXPECT_FALSE(fi.powered_off());
  EXPECT_EQ(nand_.program_page(0, Bytes(16, 1)), Status::kOk);
}

TEST_F(NandTest, CountdownSparesEarlierPrograms) {
  FaultInjector fi(7);
  nand_.set_fault_injector(&fi);
  fi.arm_after(3, TornWritePolicy::kNone);
  ASSERT_EQ(nand_.program_page(0, Bytes(64, 1)), Status::kOk);
  ASSERT_EQ(nand_.program_page(1, Bytes(64, 2)), Status::kOk);
  EXPECT_EQ(nand_.program_page(2, Bytes(64, 3)), Status::kIoError);
  EXPECT_TRUE(fi.powered_off());
  EXPECT_EQ(nand_.pages_programmed(0), 2u);
}

TEST_F(NandTest, PartialTearKeepsSpareButFailsCrc) {
  FaultInjector fi(1234);
  nand_.set_fault_injector(&fi);
  fi.arm_after(1, TornWritePolicy::kPartial);

  Bytes spare_in(32, 0x7B);
  EXPECT_EQ(nand_.program_page(0, Bytes(4096, 0xA5), spare_in), Status::kIoError);
  ASSERT_EQ(nand_.pages_programmed(0), 1u);  // torn cells latched
  EXPECT_EQ(fi.stats().torn_pages, 1u);

  nand_.power_cycle();
  Bytes data(4096), spare(128);
  ASSERT_EQ(nand_.read_page(0, data, spare), Status::kOk);
  // The spare landed exactly as intended — superficially valid...
  EXPECT_EQ(spare[0], 0x7B);
  // ...but the data area is cut short, and only the CRC can tell.
  EXPECT_EQ(data[4095], 0xFF);
  EXPECT_FALSE(page_crc_ok(tiny(), data, spare));
}

TEST_F(NandTest, GarbageTearFailsCrc) {
  FaultInjector fi(99);
  nand_.set_fault_injector(&fi);
  fi.arm_after(1, TornWritePolicy::kGarbage);
  EXPECT_EQ(nand_.program_page(0, Bytes(4096, 0x33)), Status::kIoError);
  ASSERT_EQ(nand_.pages_programmed(0), 1u);

  nand_.power_cycle();
  Bytes data(4096), spare(128);
  ASSERT_EQ(nand_.read_page(0, data, spare), Status::kOk);
  EXPECT_FALSE(page_crc_ok(tiny(), data, spare));
}

TEST_F(NandTest, CutEraseEitherCompletesOrLeavesBlockIntact) {
  ASSERT_EQ(nand_.program_page(0, Bytes(64, 0xEE)), Status::kOk);
  FaultInjector fi(5);
  nand_.set_fault_injector(&fi);
  fi.arm_after(1);
  EXPECT_EQ(nand_.erase_block(0), Status::kIoError);
  EXPECT_EQ(fi.stats().interrupted_erases, 1u);
  // Atomic outcome: all pages gone or all still there.
  const std::uint32_t left = nand_.pages_programmed(0);
  EXPECT_TRUE(left == 0u || left == 1u);
  if (left == 1u) {
    nand_.power_cycle();
    Bytes data(4096), spare(128);
    ASSERT_EQ(nand_.read_page(0, data, spare), Status::kOk);
    EXPECT_EQ(data[0], 0xEE);
    EXPECT_TRUE(page_crc_ok(tiny(), data, spare));
  }
}

}  // namespace
}  // namespace rhik::flash
