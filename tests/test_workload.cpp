// Tests for the workload module: Table-I size distributions, key/value
// material, trace I/O, IBM COS synthesis, and replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "workload/ibm_cos.hpp"
#include "workload/keygen.hpp"
#include "workload/replay.hpp"
#include "workload/size_dist.hpp"
#include "workload/trace.hpp"

namespace rhik::workload {
namespace {

TEST(SizeDist, SamplesWithinBuckets) {
  const SizeDistribution d({{10, 20, 1.0}, {100, 200, 1.0}});
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t s = d.sample(rng);
    EXPECT_TRUE((s >= 10 && s <= 20) || (s >= 100 && s <= 200)) << s;
  }
}

TEST(SizeDist, WeightsRespected) {
  const SizeDistribution d({{1, 1, 9.0}, {1000, 1000, 1.0}});
  Rng rng(2);
  int small = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) small += (d.sample(rng) == 1);
  EXPECT_NEAR(small, n * 0.9, n * 0.02);
}

TEST(SizeDist, MeanMatchesAnalytic) {
  const SizeDistribution d({{10, 20, 1.0}, {100, 200, 3.0}});
  EXPECT_NEAR(d.mean(), 0.25 * 15.0 + 0.75 * 150.0, 1e-9);
}

TEST(SizeDist, AtlasWriteMatchesTableI) {
  // 94.1% of Baidu Atlas writes are 128-256 KB (Table I).
  const auto d = SizeDistribution::atlas_write();
  Rng rng(3);
  int large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) large += (d.sample(rng) > 128 * 1024);
  EXPECT_NEAR(large, n * 0.941, n * 0.02);
  EXPECT_GT(d.mean(), 100.0 * 1024);  // dominated by the large bucket
}

TEST(SizeDist, FbEtcMatchesTableI) {
  // 40% of ETC requests are tiny (<= 11 B), 5% are 1 KB-1 MB.
  const auto d = SizeDistribution::fb_memcached_etc();
  Rng rng(4);
  int tiny = 0, huge = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = d.sample(rng);
    tiny += (s <= 11);
    huge += (s > 1024);
  }
  EXPECT_NEAR(tiny, n * 0.40, n * 0.02);
  EXPECT_NEAR(huge, n * 0.05, n * 0.01);
}

TEST(SizeDist, TableIPairProjections) {
  // Table I key-count projections for a 4 TB device: the Atlas range is
  // tens of millions to billions; the ETC upper bound is hundreds of
  // billions (mean of the 0-11 B bucket).
  constexpr std::uint64_t k4TB = 4ull << 40;
  const auto atlas = SizeDistribution::atlas_write().pair_count_range(k4TB);
  EXPECT_GT(atlas.min_pairs, 10e6);
  EXPECT_LT(atlas.min_pairs, 100e6);
  EXPECT_GT(atlas.max_pairs, 1e9);

  const auto etc = SizeDistribution::fb_memcached_etc().pair_count_range(k4TB);
  EXPECT_GT(etc.max_pairs, 100e9);  // paper: up to 744 billion
}

TEST(SizeDist, RocksdbPresetsMatchFast20Averages) {
  // FAST'20: average pair sizes between 57 B and 153 B.
  EXPECT_NEAR(SizeDistribution::rocksdb_udb().mean(), 153.0, 10.0);
  EXPECT_NEAR(SizeDistribution::rocksdb_up2x().mean(), 57.0, 10.0);
  EXPECT_GT(SizeDistribution::rocksdb_zippydb().mean(), 57.0);
  EXPECT_LT(SizeDistribution::rocksdb_zippydb().mean(), 153.0);
}

TEST(SizeDist, FixedAndUniform) {
  Rng rng(5);
  EXPECT_EQ(SizeDistribution::fixed(777).sample(rng), 777u);
  const auto u = SizeDistribution::uniform(5, 10);
  for (int i = 0; i < 100; ++i) {
    const auto s = u.sample(rng);
    EXPECT_GE(s, 5u);
    EXPECT_LE(s, 10u);
  }
}

TEST(KeyGen, DeterministicAndSized) {
  const Bytes a = key_for_id(12345, 16);
  const Bytes b = key_for_id(12345, 16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(key_for_id(1, 128).size(), 128u);
  EXPECT_NE(key_for_id(1, 16), key_for_id(2, 16));
}

TEST(KeyGen, DistinctAcrossWideIdRange) {
  std::set<Bytes> keys;
  for (std::uint64_t id = 0; id < 10000; ++id) keys.insert(key_for_id(id, 16));
  EXPECT_EQ(keys.size(), 10000u);
}

TEST(KeyGen, ValuesVerifiable) {
  Bytes v(100);
  fill_value(42, v);
  EXPECT_TRUE(check_value(42, v));
  EXPECT_FALSE(check_value(43, v));
  v[50] ^= 1;
  EXPECT_FALSE(check_value(42, v));
}

TEST(KeyGen, StreamPatterns) {
  KeyIdStream seq(KeyPattern::kSequential, 5);
  EXPECT_EQ(seq.next(), 0u);
  EXPECT_EQ(seq.next(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_LT(seq.next(), 5u);

  KeyIdStream uni(KeyPattern::kUniform, 100, 7);
  KeyIdStream zipf(KeyPattern::kZipfian, 100, 7);
  std::set<std::uint64_t> uvals, zvals;
  for (int i = 0; i < 1000; ++i) {
    const auto u = uni.next();
    const auto z = zipf.next();
    EXPECT_LT(u, 100u);
    EXPECT_LT(z, 100u);
    uvals.insert(u);
    zvals.insert(z);
  }
  // Zipfian concentrates on fewer distinct keys than uniform.
  EXPECT_LT(zvals.size(), uvals.size());
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace t{{OpType::kPut, 1, 100},
          {OpType::kGet, 2, 0},
          {OpType::kDel, 3, 0},
          {OpType::kExist, 4, 0}};
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  ASSERT_EQ(save_trace(t, path), Status::kOk);
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*loaded)[i].type, t[i].type);
    EXPECT_EQ((*loaded)[i].key_id, t[i].key_id);
    EXPECT_EQ((*loaded)[i].value_size, t[i].value_size);
  }
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileFails) {
  EXPECT_EQ(load_trace("/nonexistent/path/t.csv").status(), Status::kIoError);
}

TEST(IbmCos, EightClustersSpanTheCacheBudget) {
  const auto profiles = ibm_cos_profiles();
  ASSERT_EQ(profiles.size(), 8u);
  // Fig. 5 structure: >= 4 clusters whose index is well under 10 MB and
  // >= 2 whose index far exceeds it (at 32 KiB pages, R = 1927).
  int small = 0, large = 0;
  for (const auto& p : profiles) {
    const auto bytes = p.index_bytes(32 * 1024, 1927);
    if (bytes < 5ull << 20) ++small;
    if (bytes > 20ull << 20) ++large;
    EXPECT_GT(p.read_fraction, 0.5);  // object stores are read-heavy
  }
  EXPECT_GE(small, 4);
  EXPECT_GE(large, 2);
}

TEST(IbmCos, TracesMatchProfiles) {
  auto profiles = ibm_cos_profiles(/*scale=*/0.01);
  const auto& p = profiles[1];  // cluster 022, small
  const Trace load = cos_load_trace(p, 1);
  EXPECT_EQ(load.size(), p.num_keys);
  for (const auto& op : load) {
    EXPECT_EQ(op.type, OpType::kPut);
    EXPECT_GE(op.value_size, p.value_lo);
    EXPECT_LE(op.value_size, p.value_hi);
  }
  const Trace measure = cos_measure_trace(p, 2);
  EXPECT_EQ(measure.size(), p.measured_ops);
  std::uint64_t gets = 0;
  for (const auto& op : measure) {
    EXPECT_LT(op.key_id, p.num_keys);
    gets += (op.type == OpType::kGet);
  }
  EXPECT_NEAR(static_cast<double>(gets) / measure.size(), p.read_fraction, 0.05);
}

TEST(Replay, SyncRunProducesStats) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(64);
  kvssd::KvssdDevice dev(cfg);
  Trace t;
  for (std::uint64_t i = 0; i < 200; ++i) t.push_back({OpType::kPut, i, 64});
  for (std::uint64_t i = 0; i < 200; ++i) t.push_back({OpType::kGet, i, 0});

  ReplayOptions opts;
  opts.verify_values = true;
  const ReplayResult r = replay(dev, t, opts);
  EXPECT_EQ(r.ops, 400u);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_EQ(r.not_found, 0u);
  EXPECT_EQ(r.bytes_written, 200u * 64);
  EXPECT_EQ(r.bytes_read, 200u * 64);
  EXPECT_GT(r.elapsed, 0u);
  EXPECT_GT(r.throughput_ops(), 0.0);
}

TEST(Replay, AsyncRunFasterThanSync) {
  const auto mk = [] {
    kvssd::DeviceConfig cfg;
    cfg.geometry = flash::Geometry::tiny(64);
    cfg.cmd_overhead_ns = 20 * kMicrosecond;
    return cfg;
  };
  Trace t;
  for (std::uint64_t i = 0; i < 300; ++i) t.push_back({OpType::kPut, i, 128});

  kvssd::KvssdDevice sync_dev(mk());
  kvssd::KvssdDevice async_dev(mk());
  ReplayOptions sync_opts;
  ReplayOptions async_opts;
  async_opts.async = true;
  const auto rs = replay(sync_dev, t, sync_opts);
  const auto ra = replay(async_dev, t, async_opts);
  EXPECT_LT(ra.elapsed, rs.elapsed);
}

TEST(Replay, GetsOfMissingKeysCountNotFound) {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(64);
  kvssd::KvssdDevice dev(cfg);
  Trace t{{OpType::kGet, 999, 0}, {OpType::kDel, 998, 0}, {OpType::kExist, 997, 0}};
  const ReplayResult r = replay(dev, t, {});
  EXPECT_EQ(r.not_found, 3u);
  EXPECT_EQ(r.failed_ops, 0u);
}

}  // namespace
}  // namespace rhik::workload
