// Tests for the iterator command set (§II-A, §VI) and the compound
// (batch) command extension.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kvssd/device.hpp"

namespace rhik::kvssd {
namespace {

DeviceConfig iter_config() {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(64);
  cfg.prefix_signatures = true;  // §VI signature scheme
  return cfg;
}

ByteSpan key(const std::string& s) { return as_bytes(s); }

class IteratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 25; ++i) {
      ASSERT_EQ(dev_.put(key("user:" + std::to_string(i)),
                         key("u" + std::to_string(i))),
                Status::kOk);
      ASSERT_EQ(dev_.put(key("item:" + std::to_string(i)), key("i")), Status::kOk);
    }
  }
  KvssdDevice dev_{iter_config()};
};

TEST_F(IteratorTest, EnumeratesPrefixInBatches) {
  auto handle = dev_.open_iterator(key("user"));
  ASSERT_TRUE(handle);
  std::set<std::string> seen;
  std::vector<IteratorEntry> batch;
  Status s;
  while ((s = dev_.iterator_next(*handle, 7, &batch)) == Status::kOk) {
    EXPECT_LE(batch.size(), 7u);
    for (const auto& e : batch) seen.insert(rhik::to_string(ByteSpan{e.key}));
  }
  EXPECT_EQ(s, Status::kNotFound);  // iterator end
  EXPECT_EQ(seen.size(), 25u);
  for (const auto& k : seen) EXPECT_EQ(k.substr(0, 5), "user:");
  EXPECT_EQ(dev_.close_iterator(*handle), Status::kOk);
}

TEST_F(IteratorTest, KeyValueIteratorReturnsValues) {
  auto handle = dev_.open_iterator(key("user"), {.include_values = true});
  ASSERT_TRUE(handle);
  std::vector<IteratorEntry> batch;
  std::size_t total = 0;
  while (dev_.iterator_next(*handle, 10, &batch) == Status::kOk) {
    for (const auto& e : batch) {
      const std::string k = rhik::to_string(ByteSpan{e.key});
      EXPECT_EQ(rhik::to_string(ByteSpan{e.value}), "u" + k.substr(5));
      ++total;
    }
  }
  EXPECT_EQ(total, 25u);
  dev_.close_iterator(*handle);
}

TEST_F(IteratorTest, KeyValueIteratorHandlesMultiPageValues) {
  // Values spanning several flash pages (extents) come back whole.
  const std::string big(15000, 'X');
  ASSERT_EQ(dev_.put(key("user:big"), key(big)), Status::kOk);
  auto handle = dev_.open_iterator(key("user:big"), {.include_values = true});
  ASSERT_TRUE(handle);
  std::vector<IteratorEntry> batch;
  ASSERT_EQ(dev_.iterator_next(*handle, 10, &batch), Status::kOk);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(rhik::to_string(ByteSpan{batch[0].value}), big);
  dev_.close_iterator(*handle);
}

TEST_F(IteratorTest, EmptyPrefixClassYieldsEnd) {
  auto handle = dev_.open_iterator(key("nothing-matches"));
  ASSERT_TRUE(handle);
  std::vector<IteratorEntry> batch;
  EXPECT_EQ(dev_.iterator_next(*handle, 10, &batch), Status::kNotFound);
  dev_.close_iterator(*handle);
}

TEST_F(IteratorTest, HandleLimitEnforced) {
  std::vector<std::uint32_t> handles;
  for (std::uint32_t i = 0; i < IteratorManager::kMaxOpenIterators; ++i) {
    auto h = dev_.open_iterator(key("user"));
    ASSERT_TRUE(h) << i;
    handles.push_back(*h);
  }
  EXPECT_EQ(dev_.open_iterator(key("user")).status(), Status::kIteratorMax);
  ASSERT_EQ(dev_.close_iterator(handles[0]), Status::kOk);
  EXPECT_TRUE(dev_.open_iterator(key("user")).has_value());
}

TEST_F(IteratorTest, InvalidHandlesRejected) {
  std::vector<IteratorEntry> batch;
  EXPECT_EQ(dev_.iterator_next(999, 10, &batch), Status::kInvalidArgument);
  EXPECT_EQ(dev_.close_iterator(999), Status::kInvalidArgument);
  EXPECT_EQ(dev_.open_iterator(key("")).status(), Status::kInvalidArgument);
  auto handle = dev_.open_iterator(key("user"));
  ASSERT_TRUE(handle);
  EXPECT_EQ(dev_.iterator_next(*handle, 0, &batch), Status::kInvalidArgument);
  EXPECT_EQ(dev_.iterator_next(*handle, 5, nullptr), Status::kInvalidArgument);
}

TEST_F(IteratorTest, SnapshotDoesNotSeeLaterInserts) {
  auto handle = dev_.open_iterator(key("user"));
  ASSERT_TRUE(handle);
  ASSERT_EQ(dev_.put(key("user:new"), key("x")), Status::kOk);
  std::set<std::string> seen;
  std::vector<IteratorEntry> batch;
  while (dev_.iterator_next(*handle, 10, &batch) == Status::kOk) {
    for (const auto& e : batch) seen.insert(rhik::to_string(ByteSpan{e.key}));
  }
  EXPECT_EQ(seen.count("user:new"), 0u);
  EXPECT_EQ(seen.size(), 25u);
  dev_.close_iterator(*handle);
}

TEST_F(IteratorTest, KeysDeletedBeforeOpenAreAbsent) {
  ASSERT_EQ(dev_.del(key("user:3")), Status::kOk);
  std::vector<Bytes> keys;
  ASSERT_EQ(dev_.iterate_prefix(key("user"), &keys), Status::kOk);
  EXPECT_EQ(keys.size(), 24u);
  for (const auto& k : keys) {
    EXPECT_NE(rhik::to_string(ByteSpan{k}), "user:3");
  }
}

TEST(Iterator, UnsupportedWithoutPrefixSignatures) {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(32);
  KvssdDevice dev(cfg);
  EXPECT_EQ(dev.open_iterator(as_bytes(std::string("a"))).status(),
            Status::kUnsupported);
  std::vector<IteratorEntry> batch;
  EXPECT_EQ(dev.iterator_next(1, 5, &batch), Status::kUnsupported);
  EXPECT_EQ(dev.close_iterator(1), Status::kUnsupported);
}

TEST(Batch, CompoundCommandExecutesGroup) {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(64);
  KvssdDevice dev(cfg);
  ASSERT_EQ(dev.put(key("pre"), key("existing")), Status::kOk);

  using Op = KvssdDevice::BatchOp;
  std::vector<Op> ops(5);
  ops[0] = {Op::Kind::kPut, Bytes{'a'}, Bytes{'1'}, Status::kOk};
  ops[1] = {Op::Kind::kGet, Bytes{'a'}, {}, Status::kOk};
  ops[2] = {Op::Kind::kExist, Bytes{'p', 'r', 'e'}, {}, Status::kOk};
  ops[3] = {Op::Kind::kDel, Bytes{'a'}, {}, Status::kOk};
  ops[4] = {Op::Kind::kGet, Bytes{'a'}, {}, Status::kOk};

  ASSERT_EQ(dev.execute_batch(ops), Status::kOk);
  EXPECT_EQ(ops[0].status, Status::kOk);
  EXPECT_EQ(ops[1].status, Status::kOk);
  EXPECT_EQ(rhik::to_string(ByteSpan{ops[1].value}), "1");
  EXPECT_EQ(ops[2].status, Status::kOk);
  EXPECT_EQ(ops[3].status, Status::kOk);
  EXPECT_EQ(ops[4].status, Status::kNotFound);
  EXPECT_EQ(dev.stats().batches, 1u);
}

TEST(Batch, AmortizesCommandOverhead) {
  // The compound-command motivation ([8]): N ops in one NVMe round trip
  // cost one fixed overhead instead of N.
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(64);
  cfg.cmd_overhead_ns = 50 * kMicrosecond;

  KvssdDevice singles(cfg);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(singles.put(key("k" + std::to_string(i)), key("v")), Status::kOk);
  }

  KvssdDevice batched(cfg);
  std::vector<KvssdDevice::BatchOp> ops;
  for (int i = 0; i < 50; ++i) {
    const std::string k = "k" + std::to_string(i);
    ops.push_back({KvssdDevice::BatchOp::Kind::kPut, Bytes(k.begin(), k.end()),
                   Bytes{'v'}, Status::kOk});
  }
  ASSERT_EQ(batched.execute_batch(ops), Status::kOk);
  for (const auto& op : ops) EXPECT_EQ(op.status, Status::kOk);

  EXPECT_LT(batched.clock().now(), singles.clock().now());
  // Specifically: ~49 fewer command overheads.
  EXPECT_LT(batched.clock().now() + 45 * cfg.cmd_overhead_ns,
            singles.clock().now());
}

}  // namespace
}  // namespace rhik::kvssd
